#!/bin/sh
# Metrics-catalogue lint: every metric family registered in non-test
# source must appear in DESIGN.md's catalogue (§12's table or §17's
# tracing/SLO additions). New instruments land with documentation or CI
# fails here — the catalogue is the contract dashboards are built on.
set -eu

DESIGN=${DESIGN:-DESIGN.md}
if [ ! -f "$DESIGN" ]; then
    echo "metrics lint: $DESIGN not found" >&2
    exit 1
fi

# Registration call sites only (Counter("seer_...", CounterVec, Gauge,
# GaugeFunc(Vec), Histogram(Vec)) — not every string mentioning a
# series — so derived _sum/_count/_bucket references don't count.
families=$(grep -rhoE \
    '(Counter|CounterVec|Gauge|GaugeFunc|GaugeFuncVec|Histogram|HistogramVec)\("seer_[a-z_]+"' \
    --include='*.go' --exclude='*_test.go' cmd/ internal/ \
    | sed 's/.*("\(seer_[a-z_]*\)"/\1/' | sort -u)

if [ -z "$families" ]; then
    echo "metrics lint: no registered families found (regex rot?)" >&2
    exit 1
fi

status=0
count=0
for f in $families; do
    count=$((count + 1))
    if ! grep -q "$f" "$DESIGN"; then
        echo "UNDOCUMENTED metric family: $f (add it to $DESIGN §12 or §17)" >&2
        status=1
    fi
done

if [ $status -ne 0 ]; then
    exit $status
fi
echo "metrics lint: all $count registered families documented in $DESIGN"
