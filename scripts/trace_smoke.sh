#!/bin/sh
# Trace smoke test: boot a 2-shard seerd pointed at a real rumord,
# drive mixed traffic through the closed-loop load harness, scrape an
# exemplar trace id off /metrics, and stitch that trace across both
# daemons with `seerctl trace` — failing if any expected hop (gateway
# root, retry attempt layer, shard stage, rumor client hop, rumord
# server hop) is missing from the rendered tree. This is the black-box
# proof that one request is reconstructable end to end from a bucket
# exemplar, using only the built binaries (DESIGN.md §17).
set -eu

BIN=${BIN:-bin/seerd}
RUMORBIN=${RUMORBIN:-bin/rumord}
CTLBIN=${CTLBIN:-bin/seerctl}
LOADBIN=${LOADBIN:-bin/seerload}
ADDR=${ADDR:-127.0.0.1:7397}
RUMOR_ADDR=${RUMOR_ADDR:-127.0.0.1:7398}
WORK=$(mktemp -d)
PID=""
RPID=""
trap 'kill $PID $RPID 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

wait_up() {
    i=0
    until curl -fsS "http://$1/healthz" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ $i -gt 50 ]; then
            echo "daemon on $1 never came up; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.2
    done
}

"$RUMORBIN" -listen "$RUMOR_ADDR" > "$WORK/rumord.log" 2>&1 &
RPID=$!
wait_up "$RUMOR_ADDR" "$WORK/rumord.log"

"$BIN" -shards 2 -shard-dir "$WORK/shards" -listen "$ADDR" \
    -rumor-url "http://$RUMOR_ADDR/rumor" > "$WORK/seerd.log" 2>&1 &
PID=$!
wait_up "$ADDR" "$WORK/seerd.log"

# Mixed /plan + /hoard + /miss traffic with per-user seed events, so
# the hoard path renders real contents and syncs them upstream.
"$LOADBIN" -target "http://$ADDR" -clients 8 -users 4 -seed 1 \
    -seed-events 50 -start-rps 40 -step-rps 0 -steps 1 -step-dur 2s \
    -q -o "$WORK/load.json"

curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt"

# At least one OpenMetrics exemplar must be present, and the hoard
# endpoint's exemplar hands us a trace id whose request crossed every
# layer: gateway -> attempt -> shard hoard -> rumor sync -> rumord.
if ! grep -q '# {trace_id=' "$WORK/metrics.txt"; then
    echo "MISSING exemplars on /metrics" >&2
    exit 1
fi
TID=$(sed -n 's/.*endpoint="hoard".*# {trace_id="\([0-9a-f]*\)".*/\1/p' \
    "$WORK/metrics.txt" | head -1)
if [ -z "$TID" ]; then
    echo "MISSING hoard exemplar on seer_gateway_request_seconds" >&2
    grep 'trace_id' "$WORK/metrics.txt" >&2 || true
    exit 1
fi

"$CTLBIN" -addr "http://$ADDR,http://$RUMOR_ADDR" trace "$TID" > "$WORK/trace.txt"
echo "--- seerctl trace $TID ---"
cat "$WORK/trace.txt"

status=0
for hop in 'gateway:hoard' 'attempt' 'hoard' 'rumor:' 'master:'; do
    if ! grep -q "$hop" "$WORK/trace.txt"; then
        echo "MISSING hop in stitched trace: $hop" >&2
        status=1
    fi
done
if [ $status -ne 0 ]; then
    echo "--- /debug/traces (seerd) ---" >&2
    curl -fsS "http://$ADDR/debug/traces?trace=$TID" >&2 || true
    echo "--- /debug/traces (rumord) ---" >&2
    curl -fsS "http://$RUMOR_ADDR/debug/traces?trace=$TID" >&2 || true
    exit $status
fi

# The SLO surface answers with both decision objectives.
"$CTLBIN" -addr "http://$ADDR" slo > "$WORK/slo.txt"
for obj in plan hoard; do
    if ! grep -q "^$obj " "$WORK/slo.txt"; then
        echo "MISSING SLO objective: $obj" >&2
        cat "$WORK/slo.txt" >&2
        exit 1
    fi
done

echo "trace smoke: exemplar trace $TID stitched across seerd + rumord; all hops present"
