#!/bin/sh
# Metrics smoke test: start a real seerd against a small strace sample,
# curl /metrics, and check the core series are exposed. This is the
# black-box counterpart of TestTraceFollowsBatchToPlan — it proves the
# built binary, not just the test harness, serves the exposition.
set -eu

BIN=${BIN:-bin/seerd}
ADDR=${ADDR:-127.0.0.1:7199}
DEBUG_ADDR=${DEBUG_ADDR:-127.0.0.1:7198}
WORK=$(mktemp -d)
trap 'kill $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

# A handful of valid strace lines so the daemon has events to learn.
i=0
while [ $i -lt 20 ]; do
    printf '100  12:00:%02d.000000 openat(AT_FDCWD, "/home/u/proj/f%03d.c", O_RDONLY) = 3\n' \
        $i $i >> "$WORK/seer.strace"
    i=$((i + 1))
done

"$BIN" -strace "$WORK/seer.strace" -listen "$ADDR" -debug-addr "$DEBUG_ADDR" \
    -rumor > "$WORK/seerd.log" 2>&1 &
PID=$!

# Wait for the listener.
i=0
until curl -fsS "http://$ADDR/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ $i -gt 50 ]; then
        echo "seerd never came up; log:" >&2
        cat "$WORK/seerd.log" >&2
        exit 1
    fi
    sleep 0.2
done

# A plan request populates the clustering and hoard series.
curl -fsS "http://$ADDR/plan" > /dev/null
curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt"

status=0
for series in \
    seer_events_ingested_total \
    seer_cluster_duration_seconds_bucket \
    seer_hoard_misses_total \
    seer_plans_built_total \
    seer_queue_depth \
    seer_stage_restarts_total \
    seer_health_state \
    seer_rumor_files; do
    if ! grep -q "^$series" "$WORK/metrics.txt"; then
        echo "MISSING series: $series" >&2
        status=1
    fi
done

# The expvar compat view must survive the registry migration (it lives
# on the debug listener, like pprof).
if ! curl -fsS "http://$DEBUG_ADDR/debug/vars" | grep -q '"seer.plans_built"'; then
    echo "MISSING expvar compat view (seer.plans_built)" >&2
    status=1
fi

# Recent spans are inspectable.
if ! curl -fsS "http://$ADDR/debug/traces" | grep -q '"stage"'; then
    echo "MISSING spans at /debug/traces" >&2
    status=1
fi

if [ $status -ne 0 ]; then
    echo "--- /metrics ---" >&2
    cat "$WORK/metrics.txt" >&2
    exit $status
fi
echo "metrics smoke: all core series present"
