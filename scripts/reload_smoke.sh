#!/bin/sh
# Reload smoke test: start a real seerd with a watched config file,
# hot-reload it (valid edit, then a structural edit that must be
# rejected), and verify the outcomes through /debug/config and
# /metrics. This is the black-box counterpart of TestReloadRaceUnderLoad
# and TestAdmissionChaosShedAndRecover — it proves the built binary,
# not just the test harness, applies and refuses reloads with zero
# restarts. Needs curl.
set -eu

BIN=${BIN:-bin/seerd}
ADDR=${ADDR:-127.0.0.1:7197}
WORK=$(mktemp -d)
trap 'kill $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

# A handful of valid strace lines so the daemon has events to learn.
i=0
while [ $i -lt 20 ]; do
    printf '100  12:00:%02d.000000 openat(AT_FDCWD, "/home/u/proj/f%03d.c", O_RDONLY) = 3\n' \
        $i $i >> "$WORK/seer.strace"
    i=$((i + 1))
done

CONF="$WORK/seerd.conf"
printf 'admit-plan-inflight 8\n' > "$CONF"

"$BIN" -strace "$WORK/seer.strace" -listen "$ADDR" -config "$CONF" \
    > "$WORK/seerd.log" 2>&1 &
PID=$!

# wait_debug polls /debug/config until it contains the pattern.
wait_debug() {
    want=$1
    i=0
    until curl -fsS "http://$ADDR/debug/config" 2>/dev/null | grep -q "$want"; do
        i=$((i + 1))
        if [ $i -gt 50 ]; then
            echo "timed out waiting for $want in /debug/config; log:" >&2
            cat "$WORK/seerd.log" >&2
            curl -fsS "http://$ADDR/debug/config" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
}

# Wait for the listener; the startup config file is generation 1.
i=0
until curl -fsS "http://$ADDR/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    if [ $i -gt 50 ]; then
        echo "seerd never came up; log:" >&2
        cat "$WORK/seerd.log" >&2
        exit 1
    fi
    sleep 0.2
done
wait_debug '"generation": 1'
curl -fsS "http://$ADDR/debug/config" | grep -A1 '"key": "admit-plan-inflight"' \
    | grep -q '"value": "8"' || {
    echo "startup config did not apply admit-plan-inflight 8" >&2
    exit 1
}

# Hot reload: tighten the admission limit and raise the log level.
# SIGHUP forces an immediate re-check instead of waiting out the poll.
printf 'admit-plan-inflight 2\nlog-level debug\n' > "$CONF"
kill -HUP $PID
wait_debug '"generation": 2'
curl -fsS "http://$ADDR/debug/config" | grep -A1 '"key": "admit-plan-inflight"' \
    | grep -q '"value": "2"' || {
    echo "reload did not apply admit-plan-inflight 2" >&2
    exit 1
}

# A structural edit (listen address) must be rejected: the error shows
# up in last_reload, the generation does not move, and serving goes on.
printf 'admit-plan-inflight 2\nlisten 127.0.0.1:9\n' > "$CONF"
kill -HUP $PID
wait_debug '"ok": false'
curl -fsS "http://$ADDR/debug/config" > "$WORK/debug.json"
status=0
grep -q '"generation": 2' "$WORK/debug.json" || {
    echo "generation moved on a rejected reload" >&2
    status=1
}
grep -q 'structural' "$WORK/debug.json" || {
    echo "rejection reason missing from last_reload" >&2
    status=1
}
curl -fsS "http://$ADDR/plan" > /dev/null || {
    echo "/plan stopped serving after a rejected reload" >&2
    status=1
}

# Both outcomes are counted, and the daemon never restarted a stage.
curl -fsS "http://$ADDR/metrics" > "$WORK/metrics.txt"
grep -q 'seer_config_reloads_total{result="applied"} 1' "$WORK/metrics.txt" || {
    echo "applied reload not counted" >&2
    status=1
}
grep -q 'seer_config_reloads_total{result="rejected"} 1' "$WORK/metrics.txt" || {
    echo "rejected reload not counted" >&2
    status=1
}
grep -q '^seer_config_generation 2' "$WORK/metrics.txt" || {
    echo "seer_config_generation != 2" >&2
    status=1
}
if grep '^seer_stage_restarts_total' "$WORK/metrics.txt" | grep -qv ' 0$'; then
    echo "stage restarted during reloads" >&2
    status=1
fi

if [ $status -ne 0 ]; then
    echo "--- /debug/config ---" >&2
    cat "$WORK/debug.json" >&2
    echo "--- /metrics ---" >&2
    cat "$WORK/metrics.txt" >&2
    echo "--- seerd.log ---" >&2
    cat "$WORK/seerd.log" >&2
    exit $status
fi
echo "reload smoke: hot reload applied, structural reload rejected, zero restarts"
