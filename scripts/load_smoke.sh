#!/bin/sh
# Load smoke test: run the closed-loop capacity harness (seerload)
# against a real seerd twice — single-tenant with the replication
# master enabled, then a 4-shard gateway — with a short ramp each, and
# prove the whole capacity pipeline end to end: overload-free steps,
# a USL fit, BENCH_load.json emission through benchcmp, and the -check
# path against the just-recorded baseline. Budgeted to finish well
# under 60s; CI runs it on every push.
#
# Env knobs:
#   BIN, LOADBIN          seerd / seerload binaries (default bin/…)
#   STEPS, STEP_DUR       ramp shape (default 3 × 1s)
#   CLIENTS, START_RPS, STEP_RPS
#                         pool size and offered-load ramp; `make
#                         load-bench` raises these until the daemon
#                         saturates so the USL fit means something
#   BASELINE_OUT          also copy the merged BENCH_load.json here
set -eu

BIN=${BIN:-bin/seerd}
LOADBIN=${LOADBIN:-bin/seerload}
ADDR=${ADDR:-127.0.0.1:7297}
SHARD_ADDR=${SHARD_ADDR:-127.0.0.1:7298}
STEPS=${STEPS:-3}
STEP_DUR=${STEP_DUR:-1s}
CLIENTS=${CLIENTS:-16}
START_RPS=${START_RPS:-40}
STEP_RPS=${STEP_RPS:-40}
WORK=$(mktemp -d)
PID=""
trap 'kill $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT INT TERM

BASE="$WORK/BENCH_load.json"

wait_up() {
    i=0
    until curl -fsS "http://$1/healthz" > /dev/null 2>&1; do
        i=$((i + 1))
        if [ $i -gt 50 ]; then
            echo "seerd on $1 never came up; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# --- Phase 1: plain seerd + rumor master -------------------------------
# A strace fixture gives the single-tenant daemon a reference history so
# /plan and /miss exercise real clustering work.
i=0
while [ $i -lt 200 ]; do
    printf '100  12:00:%02d.%06d openat(AT_FDCWD, "/home/u/proj/f%03d.c", O_RDONLY) = 3\n' \
        $((i / 60 % 60)) $((i % 1000000)) $((i % 400)) >> "$WORK/seer.strace"
    i=$((i + 1))
done

"$BIN" -strace "$WORK/seer.strace" -listen "$ADDR" -rumor \
    > "$WORK/seerd.log" 2>&1 &
PID=$!
wait_up "$ADDR" "$WORK/seerd.log"

echo "== plain seerd ramp (with rumor sync ops) =="
"$LOADBIN" -target "http://$ADDR" -rumor "http://$ADDR/rumor" \
    -clients "$CLIENTS" -seed 1 -start-rps "$START_RPS" -step-rps "$STEP_RPS" \
    -steps "$STEPS" -step-dur "$STEP_DUR" -sync-files 32 \
    -prefix Load -record "$BASE" -o "$WORK/load_plain.json"

# The recorded baseline must carry per-step throughput/latency/error
# entries plus the peak.
for name in 'Load/peak_rps' 'Load/step0'; do
    if ! grep -q "\"$name\"" "$BASE"; then
        echo "MISSING baseline entry: $name" >&2
        cat "$BASE" >&2
        exit 1
    fi
done

# The -check path against the baseline we just recorded: a generous
# tolerance absorbs run-to-run noise; what's being proven is that the
# compare path loads the baseline and passes on a healthy re-run.
echo "== plain seerd re-check =="
"$LOADBIN" -target "http://$ADDR" -rumor "http://$ADDR/rumor" \
    -clients "$CLIENTS" -seed 2 -start-rps "$START_RPS" -step-rps "$STEP_RPS" \
    -steps "$STEPS" -step-dur "$STEP_DUR" -sync-files 32 \
    -prefix Load -check "$BASE" -rps-tolerance 0.8 -p99-tolerance 20

kill $PID
wait $PID 2>/dev/null || true

# --- Phase 2: 4-shard gateway ------------------------------------------
"$BIN" -shards 4 -listen "$SHARD_ADDR" -shard-dir "$WORK/shards" \
    > "$WORK/seerd_shards.log" 2>&1 &
PID=$!
wait_up "$SHARD_ADDR" "$WORK/seerd_shards.log"

echo "== 4-shard gateway ramp =="
"$LOADBIN" -target "http://$SHARD_ADDR" \
    -clients "$CLIENTS" -users 8 -seed 1 -seed-events 100 \
    -start-rps "$START_RPS" -step-rps "$STEP_RPS" \
    -steps "$STEPS" -step-dur "$STEP_DUR" \
    -prefix Load/shards4 -record "$BASE" -o "$WORK/load_shards.json"

# Both prefixes must now coexist in the merged baseline.
for name in 'Load/peak_rps' 'Load/shards4/peak_rps' 'Load/shards4/step0'; do
    if ! grep -q "\"$name\"" "$BASE"; then
        echo "MISSING merged baseline entry: $name" >&2
        cat "$BASE" >&2
        exit 1
    fi
done

kill $PID
wait $PID 2>/dev/null || true

# --- Phase 3: tracing overhead bound -----------------------------------
# The same sharded ramp with span recording off, then on, from fresh
# daemons each time. Tracing is advertised as cheap enough to leave on
# in production (DESIGN.md §17); hold it to a <=5% peak-RPS cost here
# so a regression in the span hot path fails the smoke, not a user.
"$BIN" -shards 4 -listen "$SHARD_ADDR" -shard-dir "$WORK/shards_off" \
    -tracing=false > "$WORK/seerd_off.log" 2>&1 &
PID=$!
wait_up "$SHARD_ADDR" "$WORK/seerd_off.log"

echo "== tracing-off ramp =="
"$LOADBIN" -target "http://$SHARD_ADDR" \
    -clients "$CLIENTS" -users 8 -seed 1 -seed-events 100 \
    -start-rps "$START_RPS" -step-rps "$STEP_RPS" \
    -steps "$STEPS" -step-dur "$STEP_DUR" \
    -prefix Load/trace_off -record "$BASE" -o "$WORK/load_off.json"

kill $PID
wait $PID 2>/dev/null || true

"$BIN" -shards 4 -listen "$SHARD_ADDR" -shard-dir "$WORK/shards_on" \
    > "$WORK/seerd_on.log" 2>&1 &
PID=$!
wait_up "$SHARD_ADDR" "$WORK/seerd_on.log"

echo "== tracing-on ramp =="
"$LOADBIN" -target "http://$SHARD_ADDR" \
    -clients "$CLIENTS" -users 8 -seed 1 -seed-events 100 \
    -start-rps "$START_RPS" -step-rps "$STEP_RPS" \
    -steps "$STEPS" -step-dur "$STEP_DUR" \
    -prefix Load/trace_on -record "$BASE" -o "$WORK/load_on.json"

peak() {
    awk -v n="\"$1\"" '
        index($0, n) { f = 1 }
        f && /"rps"/ { gsub(/,/, ""); print $2; exit }' "$BASE"
}
OFF=$(peak Load/trace_off/peak_rps)
ON=$(peak Load/trace_on/peak_rps)
if [ -z "$OFF" ] || [ -z "$ON" ]; then
    echo "MISSING tracing-ramp peaks (off=$OFF on=$ON)" >&2
    exit 1
fi
if ! awk -v on="$ON" -v off="$OFF" 'BEGIN { exit !(on >= 0.95 * off) }'; then
    echo "TRACING OVERHEAD over bound: peak $ON rps on vs $OFF rps off (>5% drop)" >&2
    exit 1
fi
echo "tracing overhead OK: peak $ON rps on vs $OFF rps off"

if [ -n "${BASELINE_OUT:-}" ]; then
    cp "$BASE" "$BASELINE_OUT"
    echo "baseline written to $BASELINE_OUT"
fi

echo "load smoke OK"
