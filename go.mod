module github.com/fmg/seer

go 1.22
