// Integration tests exercising whole pipelines across module
// boundaries: workload generation → trace codecs → observer →
// correlator → plans, persistence through the public API, and
// robustness of the correlator against arbitrary event streams.
package seer

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/fmg/seer/internal/core"
	"github.com/fmg/seer/internal/sim"
	"github.com/fmg/seer/internal/trace"
	"github.com/fmg/seer/internal/workload"
)

// A generated workload must survive a round-trip through both trace
// codecs and produce the identical hoard plan when replayed.
func TestTraceCodecsPreserveBehaviour(t *testing.T) {
	prof, _ := workload.ProfileByName("C")
	gen := workload.NewGenerator(prof.Light(10), 3)
	tr := gen.Generate()

	replay := func(events []trace.Event) []PlanEntry {
		s := New(WithSeed(9), WithDirSize(gen.DirSize))
		s.ObserveAll(events)
		return s.HoardPlan()
	}
	direct := replay(tr.Events)

	// Text round trip.
	var text bytes.Buffer
	tw := trace.NewWriter(&text)
	for _, ev := range tr.Events {
		if err := tw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	tw.Flush()
	textEvents, err := trace.ReadAuto(&text)
	if err != nil {
		t.Fatal(err)
	}
	if got := replay(textEvents); !reflect.DeepEqual(got, direct) {
		t.Error("text codec changed the hoard plan")
	}

	// Binary round trip.
	var bin bytes.Buffer
	bw := trace.NewBinaryWriter(&bin)
	for _, ev := range tr.Events {
		if err := bw.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	binEvents, err := trace.ReadAuto(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if got := replay(binEvents); !reflect.DeepEqual(got, direct) {
		t.Error("binary codec changed the hoard plan")
	}
}

// Persistence through the public API: a saved and restored Seer produces
// the same plan and keeps learning identically.
func TestPublicSaveLoad(t *testing.T) {
	prof, _ := workload.ProfileByName("C")
	gen := workload.NewGenerator(prof.Light(8), 1)
	tr := gen.Generate()
	s := New(WithSeed(2), WithDirSize(gen.DirSize))
	s.ObserveAll(tr.Events)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, WithSeed(2), WithDirSize(gen.DirSize))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.HoardPlan(), restored.HoardPlan()) {
		t.Fatal("restored plan differs")
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage database accepted")
	}
}

// The correlator must never panic, whatever event stream arrives —
// malformed pid relationships, unbalanced opens, renames of missing
// files, connectivity chatter.
func TestCorrelatorRobustness(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		s := New(WithSeed(seed))
		rng := rand.New(rand.NewSource(seed))
		clk := trace.NewClock(time.Unix(0, 0))
		for _, op := range ops {
			ev := trace.Event{
				PID:  trace.PID(op % 5),
				PPID: trace.PID(op / 5 % 5),
				Op:   trace.Op(op%16 + 1),
				Path: fmt.Sprintf("/p%d/f%d", op%3, op%13),
				Uid:  int32(op % 2 * 1000),
			}
			if rng.Intn(10) == 0 {
				ev.Path2 = fmt.Sprintf("/q/f%d", op%7)
			}
			if rng.Intn(15) == 0 {
				ev.Failed = true
			}
			clk.Advance(time.Duration(rng.Intn(1000)) * time.Millisecond)
			s.Observe(clk.Stamp(ev))
		}
		s.Clusters()
		s.HoardPlan()
		s.Hoard(1 << 20)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The same machine replayed through sim and through the public API must
// agree on the set of known files (two independent wiring paths over
// the same substrate).
func TestSimAndAPIAgree(t *testing.T) {
	prof, _ := workload.ProfileByName("E")
	opts := sim.Options{Profile: prof.Light(10), WorkloadSeed: 4, SizeSeed: 5}
	m := sim.NewMachine(opts)
	for _, ev := range m.Tr.Events {
		m.Corr.Feed(ev)
	}

	params := sim.DefaultParams()
	c2 := core.New(core.Options{Params: &params, Seed: 5, DirSize: m.Gen.DirSize})
	for _, ev := range m.Tr.Events {
		c2.Feed(ev)
	}
	// The machine pre-creates ground files (different sizes), so plans
	// differ in bytes; but both must know the same referenced files and
	// produce plans covering them.
	p1, p2 := m.Corr.Plan(), c2.Plan()
	if p1.Len() == 0 || p2.Len() == 0 {
		t.Fatal("empty plans")
	}
	diff := p1.Len() - p2.Len()
	if diff < -2 || diff > 2 {
		t.Errorf("plan lengths diverge: %d vs %d", p1.Len(), p2.Len())
	}
}

// Live replay must be reproducible end to end: identical options give
// identical miss logs.
func TestLiveReplayReproducible(t *testing.T) {
	prof, _ := workload.ProfileByName("D")
	opts := sim.Options{Profile: prof.Light(20), WorkloadSeed: 2, SizeSeed: 3}
	r1 := sim.Live(opts, 30<<20)
	r2 := sim.Live(opts, 30<<20)
	if len(r1.Disconnections) != len(r2.Disconnections) {
		t.Fatalf("disconnection counts differ")
	}
	for i := range r1.Disconnections {
		m1, m2 := r1.Disconnections[i].Misses.Misses, r2.Disconnections[i].Misses.Misses
		if len(m1) != len(m2) {
			t.Fatalf("disconnection %d: miss counts differ", i)
		}
		for j := range m1 {
			if m1[j].Path != m2[j].Path || m1[j].Severity != m2[j].Severity {
				t.Fatalf("disconnection %d miss %d differs", i, j)
			}
		}
	}
}
