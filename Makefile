# Development targets. `make check` is the gate for every change: it
# vets, builds, and race-tests the whole tree (the daemon's concurrent
# paths — HTTP handlers vs. the tailing goroutine — only misbehave
# under the race detector).

GO ?= go

.PHONY: check vet build test test-race fuzz

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Short fuzz pass over the snapshot loader; extend -fuzztime for a
# deeper run.
fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s ./internal/core/
