# Development targets. `make check` is the gate for every change: it
# vets, builds, and race-tests the whole tree (the daemon's concurrent
# paths — HTTP handlers vs. the tailing goroutine — only misbehave
# under the race detector).

GO ?= go

# Benchmark regression gate. `make bench` re-records the committed
# baselines; `make bench-check` reruns the same benchmarks and fails on
# >BENCH_TOLERANCE ns/op growth (or >BENCH_ALLOC_TOLERANCE allocs/op
# growth) against them. allocs/op is machine-independent, so its
# tolerance stays tight even where wall-clock comparisons need slack
# (CI runs with BENCH_TOLERANCE=2.0 for that reason).
BENCH_TOLERANCE ?= 0.15
BENCH_ALLOC_TOLERANCE ?= 0.15
BENCH_TIME ?= 5x
BENCH_CLUSTER = BenchmarkCluster2k$$|BenchmarkCluster20k$$|BenchmarkHoardPlan$$|BenchmarkFeedEvent$$|BenchmarkClusterIncremental20k$$|BenchmarkClusterIncremental200k$$|BenchmarkClusterIncremental1M$$
BENCH_SIM = BenchmarkFigure3$$|BenchmarkTable3$$|BenchmarkWorkloadGenerate$$|BenchmarkSemanticDistance$$

.PHONY: check vet build test test-race fuzz fuzz-strace chaos shard-chaos rumor-chaos metrics-smoke reload-smoke trace-smoke metrics-lint bench bench-check load-smoke load-bench

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Short fuzz pass over the snapshot loader; extend -fuzztime for a
# deeper run.
fuzz:
	$(GO) test -fuzz=FuzzLoad -fuzztime=30s ./internal/core/

# Fuzz the strace line parser (escape decoding, fd tracking, timestamp
# rollover all chew on untrusted text). CI runs this briefly on every
# push; extend -fuzztime locally for a deeper run.
FUZZTIME_STRACE ?= 10s
fuzz-strace:
	$(GO) test -fuzz=FuzzParseLine -fuzztime=$(FUZZTIME_STRACE) -run '^$$' ./internal/strace/

# Chaos gate: run a real seerd pipeline under injected faults (stage
# panics, stalled tail reads, failing checkpoints, wedged clustering)
# with the race detector on, plus the supervisor and fault-injector unit
# suites backing it. CHAOS_COUNT repeats the run to shake out timing
# flakes.
CHAOS_COUNT ?= 1
chaos: vet
	$(GO) test -race -count=$(CHAOS_COUNT) \
		-run 'TestChaosPipeline|TestUnavailableRefusesPlans|TestFollowFailureMatrix|TestAdmissionChaosShedAndRecover|TestReloadRaceUnderLoad|TestSLOBreachDegradesHealthAndCapturesFlight' \
		./cmd/seerd/
	$(GO) test -race -count=$(CHAOS_COUNT) ./internal/supervise/ ./internal/fault/

# Metrics smoke: run a built seerd against a sample strace file and
# verify /metrics exposes the core series, the expvar compat view
# survives, and /debug/traces answers. Needs curl.
metrics-smoke:
	$(GO) build -o bin/seerd ./cmd/seerd
	sh scripts/metrics_smoke.sh

# Reload smoke: run a built seerd with a watched config file, hot-apply
# a valid edit, confirm a structural edit is rejected without moving the
# active generation, and check the reload counters — all with zero
# stage restarts. Needs curl.
reload-smoke:
	$(GO) build -o bin/seerd ./cmd/seerd
	sh scripts/reload_smoke.sh

# Trace smoke: a 2-shard seerd syncing hoards to a real rumord under
# load-harness traffic; scrape an exemplar trace id off /metrics and
# stitch it across both daemons with `seerctl trace`, failing if any
# hop (gateway, attempt, shard, rumor client, rumord server) is
# missing (DESIGN.md §17). Needs curl.
trace-smoke:
	$(GO) build -o bin/seerd ./cmd/seerd
	$(GO) build -o bin/rumord ./cmd/rumord
	$(GO) build -o bin/seerctl ./cmd/seerctl
	$(GO) build -o bin/seerload ./cmd/seerload
	sh scripts/trace_smoke.sh

# Metrics-catalogue lint: every metric family registered in the source
# must be documented in DESIGN.md's catalogue (§12/§17), so the
# catalogue cannot silently rot as instruments are added.
metrics-lint:
	sh scripts/metrics_lint.sh

# Shard-isolation chaos gate: 8 shards behind the gateway under
# concurrent /plan + /events load while one shard at a time takes a
# panic, a wedged correlator, or a corrupt SEERDB — every other shard
# must keep answering 200 with zero cross-shard stage restarts, and a
# mid-traffic drain/migrate must replay a byte-identical plan with zero
# event loss (DESIGN.md §15). Race detector on; CHAOS_COUNT repeats.
shard-chaos: vet
	$(GO) test -race -count=$(CHAOS_COUNT) \
		-run 'TestChaosShardIsolation|TestGatewayRetryAcrossDrain|TestTraceRetryAcrossDrain|TestGatewayHonorsAdmission|TestDrainReplayByteIdentical|TestApplyRuntimeOnlyWhileServing|TestQueueResizeRacesShedOldest' \
		./internal/shard/ ./internal/supervise/

# Replication chaos gate: the networked CheapRumor substrate under 30%
# injected request loss and repeated partitions must converge to the
# same hoard contents and conflict counts as the in-memory reference,
# with zero lost dirty updates — under the race detector.
rumor-chaos: vet
	$(GO) test -race -count=$(CHAOS_COUNT) \
		-run 'TestRemoteRumor' ./internal/replic/
	$(GO) test -race -count=$(CHAOS_COUNT) \
		-run 'TestRefillSyncOverRemote' ./internal/hoard/

# Capacity smoke: the closed-loop harness (cmd/seerload) ramps mixed
# /plan + /hoard + /miss + rumor-sync load against a real seerd (plain
# with -rumor, then -shards 4), records BENCH_load.json through
# benchcmp, and re-checks a second ramp against it — the whole capacity
# pipeline, black-box, in well under a minute. DESIGN.md §16.
load-smoke:
	$(GO) build -o bin/seerd ./cmd/seerd
	$(GO) build -o bin/seerload ./cmd/seerload
	sh scripts/load_smoke.sh

# Re-record the committed capacity baseline with a longer, harder ramp
# (6 steps × 3s, offered load climbing to several thousand req/s) so
# the daemon actually saturates and the USL fit means something — a
# ramp that never pushes Little's-law concurrency past 1 has no
# contention signal and produces no ceiling entry. Capacity is
# machine-dependent: re-record on the machine that checks.
load-bench:
	$(GO) build -o bin/seerd ./cmd/seerd
	$(GO) build -o bin/seerload ./cmd/seerload
	BASELINE_OUT=BENCH_load.json STEPS=6 STEP_DUR=3s \
		CLIENTS=64 START_RPS=500 STEP_RPS=700 sh scripts/load_smoke.sh

bench:
	$(GO) build -o bin/benchcmp ./cmd/benchcmp
	$(GO) test -run '^$$' -bench '$(BENCH_CLUSTER)' -benchmem -benchtime=$(BENCH_TIME) . \
		| bin/benchcmp -record BENCH_cluster.json
	$(GO) test -run '^$$' -bench '$(BENCH_SIM)' -benchmem -benchtime=1x . \
		| bin/benchcmp -record BENCH_sim.json

bench-check:
	$(GO) build -o bin/benchcmp ./cmd/benchcmp
	$(GO) test -run '^$$' -bench '$(BENCH_CLUSTER)' -benchmem -benchtime=$(BENCH_TIME) . \
		| bin/benchcmp -check BENCH_cluster.json \
			-tolerance $(BENCH_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE)
	$(GO) test -run '^$$' -bench '$(BENCH_SIM)' -benchmem -benchtime=1x . \
		| bin/benchcmp -check BENCH_sim.json \
			-tolerance $(BENCH_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE)
