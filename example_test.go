package seer_test

import (
	"fmt"
	"strings"
	"time"

	seer "github.com/fmg/seer"
)

// Example demonstrates the core loop: observe references, inspect the
// inferred projects, choose hoard contents.
func Example() {
	// Small demo groups need looser clustering thresholds than the
	// paper-scale defaults (kn=4 shared neighbors needs larger projects).
	p := seer.DefaultParams()
	p.KNear, p.KFar = 2, 1
	s := seer.New(seer.WithSeed(1), seer.WithParams(p))

	// Files edited together, repeatedly.
	clock := time.Date(1997, 10, 5, 9, 0, 0, 0, time.UTC)
	var seq uint64
	emit := func(op seer.Op, path string) {
		seq++
		clock = clock.Add(time.Second)
		s.Observe(seer.Event{Seq: seq, Time: clock, PID: 1, Op: op, Path: path, Uid: 1000})
	}
	for i := 0; i < 4; i++ {
		emit(seer.OpOpen, "/home/u/doc/report.tex")
		for _, f := range []string{"/home/u/doc/figs.eps", "/home/u/doc/refs.bib", "/home/u/doc/style.sty"} {
			emit(seer.OpOpen, f)
			emit(seer.OpClose, f)
		}
		emit(seer.OpClose, "/home/u/doc/report.tex")
	}

	for _, c := range s.Clusters() {
		if len(c.Files) > 1 {
			fmt.Println(strings.Join(c.Files, " + "))
		}
	}
	// Output:
	// /home/u/doc/report.tex + /home/u/doc/figs.eps + /home/u/doc/refs.bib + /home/u/doc/style.sty
}

// ExampleSeer_ObserveStrace feeds real strace output to the correlator.
func ExampleSeer_ObserveStrace() {
	s := seer.New(seer.WithSeed(1))
	log := `100 openat(AT_FDCWD, "/etc/motd", O_RDONLY) = 3
100 close(3) = 0
`
	if err := s.ObserveStrace(strings.NewReader(log)); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("events:", s.Events())
	// Output:
	// events: 2
}

// ExampleSeer_RecordMiss shows the §4.4 miss-recording mechanism: one
// call records the miss and forces the file's whole project into future
// hoards.
func ExampleSeer_RecordMiss() {
	p := seer.DefaultParams()
	p.KNear, p.KFar = 2, 1
	s := seer.New(seer.WithSeed(1), seer.WithParams(p))
	clock := time.Date(1997, 10, 5, 9, 0, 0, 0, time.UTC)
	var seq uint64
	emit := func(op seer.Op, path string) {
		seq++
		clock = clock.Add(time.Second)
		s.Observe(seer.Event{Seq: seq, Time: clock, PID: 1, Op: op, Path: path, Uid: 1000})
	}
	for i := 0; i < 4; i++ {
		emit(seer.OpOpen, "/home/u/p/a.c")
		for _, f := range []string{"/home/u/p/b.c", "/home/u/p/c.h", "/home/u/p/d.h"} {
			emit(seer.OpOpen, f)
			emit(seer.OpClose, f)
		}
		emit(seer.OpClose, "/home/u/p/a.c")
	}
	mates := s.RecordMiss("/home/u/p/a.c")
	fmt.Println("also forced:", strings.Join(mates, ", "))
	// Output:
	// also forced: /home/u/p/b.c, /home/u/p/c.h, /home/u/p/d.h
}
