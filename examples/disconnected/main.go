// Disconnected: the full disconnected-operation lifecycle over the
// CheapRumor replication substrate — the paper's operational setting.
//
//  1. While connected, SEER observes work and the user's projects
//     replicate to the server.
//
//  2. Before disconnection, SEER fills the hoard and the substrate
//     fetches it.
//
//  3. While disconnected, work on hoarded projects succeeds; a reference
//     outside the hoard is a miss, recorded with a severity (§4.4);
//     local edits accumulate as dirty replicas.
//
//  4. On reconnection, the substrate propagates local updates and
//     detects any conflicting server-side changes.
//
//     go run ./examples/disconnected
package main

import (
	"fmt"
	"time"

	"github.com/fmg/seer/internal/core"
	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/trace"
)

func main() {
	corr := core.New(core.Options{Seed: 11})
	rum := replic.NewCheapRumor(corr.FS())
	clk := trace.NewClock(time.Date(1997, 3, 3, 9, 0, 0, 0, time.UTC))

	emit := func(pid trace.PID, op trace.Op, path string) {
		clk.Advance(2 * time.Second)
		corr.Feed(clk.Stamp(trace.Event{PID: pid, Op: op, Path: path, Uid: 1000}))
	}
	session := func(pid trace.PID, files []string) {
		emit(pid, trace.OpOpen, files[0])
		for _, f := range files[1:] {
			emit(pid, trace.OpOpen, f)
			emit(pid, trace.OpClose, f)
		}
		emit(pid, trace.OpClose, files[0])
	}

	thesis := []string{
		"/home/u/thesis/ch1.tex", "/home/u/thesis/ch2.tex",
		"/home/u/thesis/refs.bib", "/home/u/thesis/macros.sty",
	}
	taxes := []string{
		"/home/u/taxes/1996.dat", "/home/u/taxes/receipts.txt",
		"/home/u/taxes/notes.txt", "/home/u/taxes/forms.txt",
	}

	// 1. Connected work: the thesis is the active project; taxes were
	// touched long ago.
	for i := 0; i < 2; i++ {
		session(1, taxes)
	}
	for i := 0; i < 8; i++ {
		session(2, thesis)
	}
	for _, f := range corr.FS().Files() {
		rum.ServerCreate(f.ID)
	}
	fmt.Printf("connected: %d files known, all replicated to the server\n",
		corr.FS().Len())

	// 2. Hoard fill before leaving. The budget fits one project.
	var thesisBytes int64
	for _, p := range thesis {
		thesisBytes += corr.FS().Lookup(p).Size
	}
	budget := thesisBytes + 2048
	plan := corr.Plan()
	contents := plan.Fill(budget, true)
	fetch, _ := hoard.Diff(nil, contents)
	failed := rum.Sync(fetch, nil)
	fmt.Printf("hoard fill at %d B: %d files fetched (%d failed)\n",
		budget, contents.Len(), failed)
	rum.SetConnected(false)
	fmt.Println("--- disconnected ---")

	// 3. Disconnected work.
	log := hoard.NewMissLog()
	access := func(path string, sev hoard.Severity) {
		f := corr.FS().Lookup(path)
		res := rum.Access(f.ID)
		fmt.Printf("  access %-28s → %s\n", path, res)
		if res == replic.AccessMiss {
			log.Record(hoard.Miss{File: f.ID, Path: path, Severity: sev})
		}
	}
	access("/home/u/thesis/ch2.tex", hoard.Severity1)
	rum.WriteLocal(corr.FS().Lookup("/home/u/thesis/ch2.tex").ID)
	fmt.Println("  (edited ch2.tex locally)")
	access("/home/u/taxes/1996.dat", hoard.Severity2) // not hoarded: miss

	// Meanwhile, a colleague updates refs.bib on the server.
	rum.ServerUpdate(corr.FS().Lookup("/home/u/thesis/refs.bib").ID)

	// 4. Reconnect and reconcile.
	fmt.Println("--- reconnected ---")
	rep := rum.SetConnected(true)
	fmt.Printf("reconcile: %d propagated, %d refreshed, %d conflicts\n",
		rep.Propagated, rep.Refreshed, rep.Conflicts)
	user, auto := log.Failed()
	fmt.Printf("misses this disconnection: %d (user-reported %t, auto %t)\n",
		len(log.Misses), user, auto)
	for _, m := range log.Misses {
		fmt.Printf("  severity %s: %s\n", m.Severity, m.Path)
	}
}
