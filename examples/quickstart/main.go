// Quickstart: feed SEER a small hand-built reference stream and print
// the inferred project clusters and a hoard plan.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	seer "github.com/fmg/seer"
)

func main() {
	s := seer.New(seer.WithSeed(42))

	// Two work streams in two processes: a paper being written (pid 1)
	// and a program being hacked on (pid 2). Each stream opens its
	// "driver" file and touches the others while it is open — the
	// semantic-locality signal SEER exploits.
	paper := []string{
		"/home/u/paper/draft.tex", "/home/u/paper/refs.bib",
		"/home/u/paper/fig1.eps", "/home/u/paper/fig2.eps",
		"/home/u/paper/macros.sty", "/home/u/paper/notes.txt",
	}
	code := []string{
		"/home/u/hack/main.c", "/home/u/hack/util.c", "/home/u/hack/util.h",
		"/home/u/hack/Makefile", "/home/u/hack/parse.c", "/home/u/hack/parse.h",
	}

	clock := time.Date(1997, 10, 5, 9, 0, 0, 0, time.UTC)
	var seq uint64
	emit := func(pid seer.PID, op seer.Op, path string) {
		seq++
		clock = clock.Add(time.Second)
		s.Observe(seer.Event{Seq: seq, Time: clock, PID: pid, Op: op, Path: path, Uid: 1000})
	}
	session := func(pid seer.PID, files []string) {
		emit(pid, seer.OpOpen, files[0])
		for _, f := range files[1:] {
			emit(pid, seer.OpOpen, f)
			emit(pid, seer.OpClose, f)
		}
		emit(pid, seer.OpClose, files[0])
	}
	for i := 0; i < 5; i++ {
		session(1, paper)
		session(2, code)
	}

	fmt.Println("Inferred projects:")
	for _, c := range s.Clusters() {
		if len(c.Files) < 2 {
			continue
		}
		fmt.Printf("  project %d:\n", c.ID)
		for _, f := range c.Files {
			fmt.Printf("    %s\n", f)
		}
	}

	fmt.Println("\nHoard plan (priority order):")
	for _, e := range s.HoardPlan() {
		fmt.Printf("  %-8s %6d B  %s\n", e.Reason, e.Size, e.Path)
	}

	fmt.Println("\nHoarded at a 120 KB budget:")
	for _, path := range s.Hoard(120 << 10) {
		fmt.Printf("  %s\n", path)
	}
}
