// Webprefetch: the paper's §7 future work, realized — SEER's semantic
// distance and clustering applied to Web caching.
//
// A synthetic browsing workload (sites with page sets, Zipf site
// popularity, session locality) is replayed twice through a
// byte-budgeted cache: once as plain LRU, once with a SEER predictor
// that clusters co-browsed pages and prefetches a page's cluster mates
// on every demand miss.
//
//	go run ./examples/webprefetch
package main

import (
	"fmt"

	"github.com/fmg/seer/internal/sim"
	"github.com/fmg/seer/internal/webcache"
)

func main() {
	prof := webcache.DefaultBrowseProfile()
	fetches := webcache.GenerateBrowsing(prof, 7)
	fmt.Printf("browsing workload: %d fetches over %d sessions, %d sites × %d pages\n\n",
		len(fetches), prof.Sessions, prof.Sites, prof.PagesPerSite)

	for _, budgetKB := range []int64{512, 1024, 2048, 4096} {
		budget := budgetKB << 10
		plain := webcache.Evaluate(fetches, budget, nil)
		pred := webcache.NewPredictor(sim.DefaultParams(), 3)
		predictive := webcache.Evaluate(fetches, budget, pred)
		fmt.Printf("cache %4d KB:  LRU hit rate %.3f   SEER-prefetch %.3f   (+%.1f%%, %d prefetches, %d useful)\n",
			budgetKB, plain.HitRate(), predictive.HitRate(),
			100*(predictive.HitRate()-plain.HitRate()),
			predictive.Prefetches, predictive.PrefetchHit)
	}
	fmt.Println("\nthe predictor clusters co-browsed pages exactly as SEER clusters")
	fmt.Println("co-referenced files, and prefetches whole clusters as SEER hoards")
	fmt.Println("whole projects (paper §7).")
}
