// Softwaredev: run a calibrated software-development workload (machine
// D, 30 days) and compare SEER's miss-free hoard size against strict
// LRU across daily disconnections — the paper's headline comparison.
//
// The workload includes the phenomena that sink LRU: find scans that
// touch every file, shared libraries referenced by every program, and
// attention shifts back to projects that have been idle for days.
//
//	go run ./examples/softwaredev
package main

import (
	"fmt"
	"time"

	"github.com/fmg/seer/internal/sim"
	"github.com/fmg/seer/internal/workload"
)

func main() {
	prof, _ := workload.ProfileByName("D")
	prof = prof.Light(30)
	opts := sim.Options{Profile: prof, WorkloadSeed: 1, SizeSeed: 2}

	const mb = 1024 * 1024
	day := 24 * time.Hour
	r := sim.MissFree(opts, day, 5*day)

	fmt.Printf("Machine %s, %d daily disconnection periods\n", prof.Name, len(r.Periods))
	fmt.Printf("%-12s %12s %12s %12s\n", "period", "workingset", "seer", "lru")
	for _, p := range r.Periods {
		fmt.Printf("%-12s %9.1f MB %9.1f MB %9.1f MB\n",
			p.Start.Format("2006-01-02"),
			float64(p.WorkingSetBytes)/mb,
			float64(p.MissFree[sim.SeerName])/mb,
			float64(p.MissFree["lru"])/mb)
	}

	ws, by := r.Means()
	fmt.Printf("\nmeans: working set %.1f MB, SEER %.1f MB, LRU %.1f MB\n",
		ws/mb, by[sim.SeerName]/mb, by["lru"]/mb)
	seerExtra := by[sim.SeerName] - ws
	lruExtra := by["lru"] - ws
	fmt.Printf("extra space beyond the working set: SEER %.1f MB, LRU %.1f MB (%.1f:1)\n",
		seerExtra/mb, lruExtra/mb, lruExtra/seerExtra)
}
