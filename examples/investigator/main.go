// Investigator: demonstrate external investigators (paper §3.2, §3.3.3).
//
// Two source files are never referenced in the same session, so the
// reference stream alone gives SEER no reason to relate them. A C
// #include investigator reads their contents, discovers they share a
// header, and forces them into one project cluster.
//
//	go run ./examples/investigator
package main

import (
	"fmt"
	"time"

	seer "github.com/fmg/seer"
)

func main() {
	s := seer.New(seer.WithSeed(7))

	sources := map[string][]byte{
		"/home/u/net/socket.c": []byte("#include \"proto.h\"\n#include <stdio.h>\nint s;\n"),
		"/home/u/rpc/stub.c":   []byte("#include \"proto.h\"\nint r;\n"),
	}

	// Reference the two sources far apart, in different processes, with
	// unrelated noise between them.
	clock := time.Date(1997, 10, 5, 9, 0, 0, 0, time.UTC)
	var seq uint64
	emit := func(pid seer.PID, op seer.Op, path string) {
		seq++
		clock = clock.Add(2 * time.Second)
		s.Observe(seer.Event{Seq: seq, Time: clock, PID: pid, Op: op, Path: path, Uid: 1000})
	}
	emit(1, seer.OpOpen, "/home/u/net/socket.c")
	emit(1, seer.OpClose, "/home/u/net/socket.c")
	for i := 0; i < 40; i++ {
		p := fmt.Sprintf("/home/u/misc/note%02d", i)
		emit(3, seer.OpOpen, p)
		emit(3, seer.OpClose, p)
	}
	emit(2, seer.OpOpen, "/home/u/rpc/stub.c")
	emit(2, seer.OpClose, "/home/u/rpc/stub.c")

	report := func(title string) {
		fmt.Println(title)
		together := false
		for _, c := range s.Clusters() {
			hasA, hasB := false, false
			for _, f := range c.Files {
				if f == "/home/u/net/socket.c" {
					hasA = true
				}
				if f == "/home/u/rpc/stub.c" {
					hasB = true
				}
			}
			if hasA && hasB {
				together = true
				fmt.Printf("  cluster %d holds both sources (+%d more files)\n",
					c.ID, len(c.Files)-2)
			}
		}
		if !together {
			fmt.Println("  the two sources are in separate clusters")
		}
	}

	report("Before investigation (reference stream only):")

	// The investigator scans the sources; the shared proto.h include is
	// strong evidence of a real relationship. The relation strength is
	// added to the clustering algorithm's shared-neighbor counts, so a
	// high strength forces the grouping (paper §3.3.3). Registering the
	// header's true location lets quoted includes from other directories
	// resolve to it.
	s.SetFileSize("/home/u/net/proto.h", 2048)
	s.InvestigateC(sources, []string{"/home/u/net"}, 10)
	report("\nAfter the C #include investigator:")
}
