// Straced: parse strace(1) output — the real-world observer path — and
// produce a hoard plan from it.
//
// The embedded log is the (abridged) trace of a make-driven build: make
// stats the targets, forks a compiler per source, the compiler holds
// each source open while reading its headers, and the linker produces
// the binary. SEER recovers the project structure from nothing but the
// system calls.
//
//	go run ./examples/straced
package main

import (
	"fmt"
	"strings"

	seer "github.com/fmg/seer"
)

const straceLog = `
100 09:00:00.000100 execve("/usr/bin/make", ["make"], 0x7ffd /* 20 vars */) = 0
100 09:00:00.001000 openat(AT_FDCWD, "/home/u/ed/Makefile", O_RDONLY) = 3
100 09:00:00.002000 stat("/home/u/ed/main.c", {st_mode=S_IFREG|0644}) = 0
100 09:00:00.002100 stat("/home/u/ed/main.o", 0x7ffd) = -1 ENOENT (No such file or directory)
100 09:00:00.002200 stat("/home/u/ed/buffer.c", {st_mode=S_IFREG|0644}) = 0
100 09:00:00.002300 stat("/home/u/ed/buffer.o", 0x7ffd) = -1 ENOENT (No such file or directory)
100 09:00:00.010000 clone(child_stack=NULL, flags=SIGCHLD) = 101
101 09:00:00.011000 execve("/usr/bin/cc", ["cc", "-c", "main.c"], 0x55 /* 20 vars */) = 0
101 09:00:00.012000 openat(AT_FDCWD, "/home/u/ed/main.c", O_RDONLY) = 3
101 09:00:00.013000 openat(AT_FDCWD, "/home/u/ed/ed.h", O_RDONLY) = 4
101 09:00:00.013500 close(4) = 0
101 09:00:00.014000 openat(AT_FDCWD, "/home/u/ed/term.h", O_RDONLY) = 4
101 09:00:00.014500 close(4) = 0
101 09:00:00.020000 openat(AT_FDCWD, "/home/u/ed/main.o", O_WRONLY|O_CREAT|O_TRUNC, 0666) = 5
101 09:00:00.021000 close(5) = 0
101 09:00:00.021500 close(3) = 0
101 09:00:00.022000 exit_group(0) = ?
101 09:00:00.022100 +++ exited with 0 +++
100 09:00:00.030000 clone(child_stack=NULL, flags=SIGCHLD) = 102
102 09:00:00.031000 execve("/usr/bin/cc", ["cc", "-c", "buffer.c"], 0x55 /* 20 vars */) = 0
102 09:00:00.032000 openat(AT_FDCWD, "/home/u/ed/buffer.c", O_RDONLY) = 3
102 09:00:00.033000 openat(AT_FDCWD, "/home/u/ed/ed.h", O_RDONLY) = 4
102 09:00:00.033500 close(4) = 0
102 09:00:00.040000 openat(AT_FDCWD, "/home/u/ed/buffer.o", O_WRONLY|O_CREAT|O_TRUNC, 0666) = 5
102 09:00:00.041000 close(5) = 0
102 09:00:00.041500 close(3) = 0
102 09:00:00.042000 exit_group(0) = ?
102 09:00:00.042100 +++ exited with 0 +++
100 09:00:00.050000 clone(child_stack=NULL, flags=SIGCHLD) = 103
103 09:00:00.051000 execve("/usr/bin/ld", ["ld", "-o", "ed"], 0x55 /* 20 vars */) = 0
103 09:00:00.052000 openat(AT_FDCWD, "/home/u/ed/main.o", O_RDONLY) = 3
103 09:00:00.053000 openat(AT_FDCWD, "/home/u/ed/buffer.o", O_RDONLY) = 4
103 09:00:00.054000 openat(AT_FDCWD, "/home/u/ed/ed.tmp", O_WRONLY|O_CREAT, 0777) = 5
103 09:00:00.055000 close(5) = 0
103 09:00:00.055500 close(4) = 0
103 09:00:00.055600 close(3) = 0
103 09:00:00.056000 rename("/home/u/ed/ed.tmp", "/home/u/ed/ed") = 0
103 09:00:00.057000 exit_group(0) = ?
103 09:00:00.057100 +++ exited with 0 +++
100 09:00:00.060000 close(3) = 0
100 09:00:00.061000 exit_group(0) = ?
`

func main() {
	s := seer.New(seer.WithSeed(3))
	if err := s.ObserveStrace(strings.NewReader(straceLog)); err != nil {
		fmt.Println("parse error:", err)
		return
	}
	fmt.Printf("observed %d events, %d known files\n\n", s.Events(), s.KnownFiles())

	fmt.Println("Inferred clusters:")
	for _, c := range s.Clusters() {
		if len(c.Files) < 2 {
			continue
		}
		fmt.Printf("  cluster %d:\n", c.ID)
		for _, f := range c.Files {
			fmt.Printf("    %s\n", f)
		}
	}

	fmt.Println("\nHoard plan:")
	for _, e := range s.HoardPlan() {
		fmt.Printf("  %-8s %8d B  %s\n", e.Reason, e.Size, e.Path)
	}
}
