// Package seer is a Go implementation of SEER, the automated predictive
// hoarding system of Kuenning & Popek, "Automated Hoarding for Mobile
// Computers" (SOSP 1997).
//
// SEER watches a user's file references, infers semantic relationships
// between files using lifetime semantic distance, clusters files into
// projects with a modified shared-neighbor algorithm, and selects whole
// projects for local storage ("hoarding") so that work can continue
// while disconnected from the network.
//
// The top-level API wraps the correlator: feed it trace events (from
// the synthetic workload generator, from strace output, or built by
// hand), then ask for clusters and hoard plans:
//
//	s := seer.New()
//	s.ObserveStrace(straceOutput)         // or s.Observe(event)
//	for _, c := range s.Clusters() { ... }
//	plan := s.HoardPlan()
//	files := s.Hoard(50 << 20)            // 50 MB hoard
//
// Subpackages under internal implement the pieces: the observer with
// the paper's real-world heuristics (meaningless processes, shared
// libraries, critical files, temporary files), per-process reference
// streams, the semantic-distance tables, the clustering algorithm,
// external investigators, the CheapRumor replication substrate, the LRU
// and CODA-style baselines, the calibrated workload generator, and the
// simulation harness that regenerates the paper's tables and figures.
package seer

import (
	"io"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/core"
	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/investigate"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/strace"
	"github.com/fmg/seer/internal/trace"
)

// Event is one observed file reference; see the Op constants.
type Event = trace.Event

// PID identifies a traced process.
type PID = trace.PID

// Op is the kind of file reference.
type Op = trace.Op

// The event operation kinds.
const (
	OpOpen       = trace.OpOpen
	OpClose      = trace.OpClose
	OpExec       = trace.OpExec
	OpExit       = trace.OpExit
	OpFork       = trace.OpFork
	OpStat       = trace.OpStat
	OpCreate     = trace.OpCreate
	OpDelete     = trace.OpDelete
	OpRename     = trace.OpRename
	OpMkdir      = trace.OpMkdir
	OpReadDir    = trace.OpReadDir
	OpChdir      = trace.OpChdir
	OpDisconnect = trace.OpDisconnect
	OpReconnect  = trace.OpReconnect
	OpSuspend    = trace.OpSuspend
	OpResume     = trace.OpResume
)

// Params are the algorithm tunables (neighbor table size n, window M,
// clustering thresholds kn/kf, and so on).
type Params = config.Params

// DefaultParams returns the paper's parameter values where stated and
// calibrated values elsewhere.
func DefaultParams() Params { return config.Defaults() }

// Control is the system control file: meaningless programs, critical
// paths, temporary directories, ignored objects.
type Control = config.Control

// DefaultControl mirrors the paper's deployment defaults.
func DefaultControl() *Control { return config.DefaultControl() }

// Relation is an external-investigator finding: a group of related
// files with a strength that is added to the clustering evidence.
type Relation = investigate.Relation

// Cluster is one inferred project.
type Cluster struct {
	ID    int
	Files []string
}

// PlanEntry is one file in the hoard inclusion order.
type PlanEntry struct {
	Path string
	// Size is the file size in bytes; Cum the cumulative plan size
	// through this entry.
	Size, Cum int64
	// Reason is "always", "cluster" or "recency".
	Reason string
	// Cluster is the project id for cluster entries.
	Cluster int
}

// Seer is the top-level hoarding engine. It is not safe for concurrent
// use.
type Seer struct {
	corr *core.Correlator
}

// Option configures New.
type Option func(*core.Options)

// WithParams overrides the parameter set.
func WithParams(p Params) Option {
	return func(o *core.Options) { o.Params = &p }
}

// WithControl overrides the control file.
func WithControl(c *Control) Option {
	return func(o *core.Options) { o.Control = c }
}

// WithSeed fixes the random seed used for tie-breaking and for sizes of
// files whose true size is unknown.
func WithSeed(seed int64) Option {
	return func(o *core.Options) { o.Seed = seed }
}

// WithDirSize supplies the directory fan-out oracle used by the
// meaningless-process heuristic.
func WithDirSize(fn func(path string) int) Option {
	return func(o *core.Options) { o.DirSize = fn }
}

// New returns a Seer with the given options.
func New(opts ...Option) *Seer {
	var co core.Options
	for _, opt := range opts {
		opt(&co)
	}
	return &Seer{corr: core.New(co)}
}

// Observe feeds one trace event.
func (s *Seer) Observe(ev Event) { s.corr.Feed(ev) }

// ObserveAll feeds a slice of events in order.
func (s *Seer) ObserveAll(evs []Event) {
	for _, ev := range evs {
		s.corr.Feed(ev)
	}
}

// ObserveStrace parses strace(1) output and feeds every recognized
// event. See internal/strace for the strace invocation to use.
func (s *Seer) ObserveStrace(r io.Reader) error {
	p := strace.NewParser()
	evs, err := p.Parse(r)
	if err != nil {
		return err
	}
	s.ObserveAll(evs)
	return nil
}

// AddRelations registers external-investigator findings (paper §3.3.3).
func (s *Seer) AddRelations(rels []Relation) { s.corr.AddRelations(rels) }

// InvestigateC runs the C #include investigator over the given source
// files (path → contents) and registers the resulting relations.
func (s *Seer) InvestigateC(files map[string][]byte, includeDirs []string, strength float64) {
	exists := func(p string) bool { return s.corr.FS().Lookup(p) != nil }
	s.AddRelations(investigate.CRelations(files, includeDirs, strength, exists))
}

// InvestigateMakefile runs the makefile investigator over one makefile
// and registers the resulting relations.
func (s *Seer) InvestigateMakefile(path string, content []byte, strength float64) {
	s.AddRelations(investigate.MakefileRelations(path, content, strength))
}

// Events returns the number of events observed.
func (s *Seer) Events() uint64 { return s.corr.Events() }

// KnownFiles returns the number of pathnames in the file table.
func (s *Seer) KnownFiles() int { return s.corr.FS().Len() }

// Clusters runs the clustering algorithm and returns the projects with
// member pathnames.
func (s *Seer) Clusters() []Cluster {
	res := s.corr.Clusters()
	out := make([]Cluster, 0, len(res.Clusters))
	for _, cl := range res.Clusters {
		c := Cluster{ID: cl.ID, Files: make([]string, 0, len(cl.Members))}
		for _, m := range cl.Members {
			if f := s.corr.FS().Get(m); f != nil {
				c.Files = append(c.Files, f.Path)
			}
		}
		out = append(out, c)
	}
	return out
}

// HoardPlan returns the full hoard inclusion order: every known file by
// decreasing priority with cumulative sizes.
func (s *Seer) HoardPlan() []PlanEntry {
	plan := s.corr.Plan()
	out := make([]PlanEntry, 0, plan.Len())
	for _, e := range plan.Entries {
		out = append(out, PlanEntry{
			Path:    e.File.Path,
			Size:    e.File.Size,
			Cum:     e.Cum,
			Reason:  e.Reason.String(),
			Cluster: e.Cluster,
		})
	}
	return out
}

// Hoard selects hoard contents for a byte budget and returns the chosen
// pathnames in hoard-priority order. Only complete projects are hoarded
// (paper §2).
func (s *Seer) Hoard(budgetBytes int64) []string {
	plan := s.corr.Plan()
	contents := plan.Fill(budgetBytes, s.corr.Params().SkipUnfittingClusters)
	var out []string
	for _, e := range plan.Entries {
		if contents.Has(e.File.ID) {
			out = append(out, e.File.Path)
		}
	}
	return out
}

// SetFileSize records the true size of a file, overriding the geometric
// draw used when sizes are unknown (paper §5.1.2).
func (s *Seer) SetFileSize(path string, size int64) {
	f := s.corr.FS().Lookup(path)
	if f == nil {
		f = s.corr.FS().Intern(path, simfs.Regular, 0)
	}
	s.corr.FS().Resize(f.ID, size)
}

// MissLogSeverity re-exports the hoard severity scale for callers that
// record manual misses (paper §4.4).
type MissLogSeverity = hoard.Severity

// RecordMiss implements the user side of the paper's miss-recording
// mechanism (§4.4): the missed file — and every member of its project —
// is marked for unconditional inclusion in future hoard plans. It
// returns the project mates that were pulled in alongside.
func (s *Seer) RecordMiss(path string) []string { return s.corr.ForceHoard(path) }

// Save checkpoints the learned state (file table, semantic-distance
// tables, observer counters and histories) so a restarted process can
// resume with months of learned relationships intact. Per-process
// transient state is not saved; a restore behaves like a reboot.
func (s *Seer) Save(w io.Writer) error { return s.corr.Save(w) }

// Load restores a Seer saved with Save. Options supply configuration
// (parameters, control file, directory sizer), which is not part of the
// saved state.
func Load(r io.Reader, opts ...Option) (*Seer, error) {
	var co core.Options
	for _, opt := range opts {
		opt(&co)
	}
	corr, err := core.Load(r, co)
	if err != nil {
		return nil, err
	}
	return &Seer{corr: corr}, nil
}
