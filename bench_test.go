// Benchmarks regenerating each of the paper's tables and figures (in
// scaled form — cmd/seersim produces the full-length numbers recorded in
// EXPERIMENTS.md) plus the §5.3 implementation-cost microbenchmarks:
// per-event tracking cost (the paper: ~35 µs per traced call on a
// 133 MHz Pentium) and clustering time (the paper: ~2 CPU minutes for
// ~20 000 files).
package seer

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/fmg/seer/internal/cluster"
	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/core"
	"github.com/fmg/seer/internal/semdist"
	"github.com/fmg/seer/internal/sim"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/strace"
	"github.com/fmg/seer/internal/trace"
	"github.com/fmg/seer/internal/webcache"
	"github.com/fmg/seer/internal/workload"
)

const benchDay = 24 * time.Hour

func benchOpts(b *testing.B, machine string, days int) sim.Options {
	b.Helper()
	p, ok := workload.ProfileByName(machine)
	if !ok {
		b.Fatalf("no profile %s", machine)
	}
	return sim.Options{Profile: p.Light(days), WorkloadSeed: 1, SizeSeed: 2}
}

// BenchmarkFeedEvent measures the per-event cost of the full observer +
// correlator pipeline (§5.3: the paper's tracing cost was ~35 µs/event;
// the correlator work reported here happens on every traced call).
func BenchmarkFeedEvent(b *testing.B) {
	gen := workload.NewGenerator(mustProfile(b, "D").Light(20), 1)
	tr := gen.Generate()
	b.ResetTimer()
	var corr *core.Correlator
	for i := 0; i < b.N; i++ {
		if i%len(tr.Events) == 0 {
			b.StopTimer()
			params := sim.DefaultParams()
			corr = core.New(core.Options{Seed: 1, DirSize: gen.DirSize, Params: &params})
			b.StartTimer()
		}
		corr.Feed(tr.Events[i%len(tr.Events)])
	}
}

func mustProfile(b *testing.B, name string) workload.Profile {
	b.Helper()
	p, ok := workload.ProfileByName(name)
	if !ok {
		b.Fatalf("no profile %s", name)
	}
	return p
}

// BenchmarkCluster20k measures clustering 20 000 files with full
// neighbor tables — the paper's hoard-time cost (~2 CPU minutes in
// 1997, §5.3).
func BenchmarkCluster20k(b *testing.B) {
	benchCluster(b, 20000)
}

// BenchmarkCluster2k is the same at a smaller scale, for quick runs.
func BenchmarkCluster2k(b *testing.B) {
	benchCluster(b, 2000)
}

func benchCluster(b *testing.B, n int) {
	p := config.Defaults()
	tbl := semdist.NewTable(p, stats.NewRand(1))
	rng := stats.NewRand(2)
	// ~50-file projects with full in-project neighbor lists.
	for f := 0; f < n; f++ {
		proj := f / 50
		for k := 0; k < p.NeighborTableSize; k++ {
			nb := proj*50 + rng.Intn(50)
			if nb == f {
				continue
			}
			tbl.Observe(simfs.FileID(f+1), simfs.FileID(nb+1), float64(rng.Intn(10)), false)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := cluster.Build(tbl, cluster.Options{}, float64(p.KNear), float64(p.KFar))
		if len(res.Clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkClusterIncremental20k measures folding a 16-file churn into
// a cached 20 000-file clustering with cluster.Patch instead of
// rebuilding — the hoard-time cost once the daemon is warm. The paper
// reclustered from scratch (~2 CPU minutes in 1997); the incremental
// path makes the steady-state update proportional to the churn, not
// the table.
func BenchmarkClusterIncremental20k(b *testing.B) {
	benchClusterIncremental(b, 20000)
}

// BenchmarkClusterIncremental200k is the same churn against a 10×
// larger table: patch time should stay flat while full-rebuild time
// grows with the table.
func BenchmarkClusterIncremental200k(b *testing.B) {
	benchClusterIncremental(b, 200000)
}

// BenchmarkClusterIncremental1M pushes the table to a million interned
// files — far past anything the paper's hardware could recluster — to
// pin the claim that patch cost depends on churn size only.
func BenchmarkClusterIncremental1M(b *testing.B) {
	benchClusterIncremental(b, 1000000)
}

func benchClusterIncremental(b *testing.B, n int) {
	p := config.Defaults()
	tbl := semdist.NewTable(p, stats.NewRand(1))
	rng := stats.NewRand(2)
	for f := 0; f < n; f++ {
		proj := f / 50
		for k := 0; k < p.NeighborTableSize; k++ {
			nb := proj*50 + rng.Intn(50)
			if nb == f {
				continue
			}
			tbl.Observe(simfs.FileID(f+1), simfs.FileID(nb+1), float64(rng.Intn(10)), false)
		}
	}
	opts := cluster.Options{Incremental: true}
	kn, kf := float64(p.KNear), float64(p.KFar)
	res := cluster.Build(tbl, opts, kn, kf)
	if len(res.Clusters) == 0 {
		b.Fatal("no clusters")
	}
	tbl.TakeChanged(nil) // drain the construction-time journal

	// Each iteration churns 16 files spread over 4 projects: new strong
	// observations move their neighbor lists, alternating between two
	// targets so every round really changes list contents. The changed
	// set comes from the table's own journal, exactly as the correlator
	// drains it.
	projStride := n / 50 / 4
	var changed []simfs.FileID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 16; k++ {
			base := (k % 4) * projStride * 50
			f := simfs.FileID(base + k/4 + 1)
			nb := simfs.FileID(base + 45 + (i+k)%2 + 1)
			tbl.Observe(f, nb, 0, false)
		}
		changed = tbl.TakeChanged(changed[:0])
		if !cluster.Patch(res, tbl, changed, opts, kn, kf) {
			b.Fatal("patch refused")
		}
	}
	if len(res.Clusters) == 0 {
		b.Fatal("no clusters after patching")
	}
}

// BenchmarkHoardPlan measures plan construction (clustering + ranking)
// over a replayed machine state.
func BenchmarkHoardPlan(b *testing.B) {
	m := sim.NewMachine(benchOpts(b, "D", 20))
	for _, ev := range m.Tr.Events {
		m.Corr.Feed(ev)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Corr.Plan().Len() == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkFigure2 regenerates one Figure 2 cell (machine D, daily).
func BenchmarkFigure2(b *testing.B) {
	opts := benchOpts(b, "D", 30)
	for i := 0; i < b.N; i++ {
		cell := sim.Fig2Aggregate(opts, benchDay, 5*benchDay, []int64{1, 2})
		if cell.SeerMB <= 0 || cell.LruMB < cell.SeerMB {
			b.Fatalf("shape violated: %+v", cell)
		}
	}
}

// BenchmarkFigure3 regenerates the Figure 3 series (weekly periods,
// machine F scaled down).
func BenchmarkFigure3(b *testing.B) {
	opts := benchOpts(b, "F", 35)
	for i := 0; i < b.N; i++ {
		series := sim.Fig3Series(opts, 7*benchDay, 7*benchDay)
		if len(series) == 0 {
			b.Fatal("empty series")
		}
	}
}

// BenchmarkTable3 regenerates the disconnection statistics via live
// replay (machine D scaled down).
func BenchmarkTable3(b *testing.B) {
	opts := benchOpts(b, "D", 30)
	for i := 0; i < b.N; i++ {
		r := sim.Live(opts, 50<<20)
		row := r.Table3(30)
		if row.Disconnections == 0 {
			b.Fatal("no disconnections")
		}
	}
}

// BenchmarkTable4 regenerates the failed-disconnection counts for the
// heavily used machine F at the paper's 50 MB hoard size.
func BenchmarkTable4(b *testing.B) {
	opts := benchOpts(b, "F", 30)
	for i := 0; i < b.N; i++ {
		r := sim.Live(opts, 50<<20)
		row := r.Table4()
		if row.BySeverity[0] != 0 {
			b.Fatal("severity-0 failure — should be impossible")
		}
	}
}

// BenchmarkTable5 regenerates the time-to-first-miss statistics.
func BenchmarkTable5(b *testing.B) {
	opts := benchOpts(b, "F", 30)
	for i := 0; i < b.N; i++ {
		r := sim.Live(opts, 50<<20)
		_ = r.Table5()
	}
}

// BenchmarkAblationThresholds sweeps the clustering thresholds — the
// parameter sensitivity the paper flags in §4.9 and §7.
func BenchmarkAblationThresholds(b *testing.B) {
	for _, kn := range []int{3, 6, 9} {
		b.Run(fmt.Sprintf("kn=%d", kn), func(b *testing.B) {
			p := sim.DefaultParams()
			p.KNear, p.KFar = kn, kn/2
			if p.KFar < 1 {
				p.KFar = 1
			}
			opts := benchOpts(b, "D", 20)
			opts.Params = &p
			for i := 0; i < b.N; i++ {
				r := sim.MissFree(opts, benchDay, 5*benchDay)
				if len(r.Periods) == 0 {
					b.Fatal("no periods")
				}
			}
		})
	}
}

// BenchmarkWorkloadGenerate measures synthetic trace generation.
func BenchmarkWorkloadGenerate(b *testing.B) {
	prof := mustProfile(b, "D").Light(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := workload.NewGenerator(prof, int64(i))
		if len(gen.Generate().Events) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkStraceParse measures the real-world observer path.
func BenchmarkStraceParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "%d 12:00:%02d.%06d openat(AT_FDCWD, \"/home/u/f%03d\", O_RDONLY) = 3\n",
			100+i%4, i%60, i, i)
		fmt.Fprintf(&sb, "%d 12:00:%02d.%06d close(3) = 0\n", 100+i%4, i%60, i)
	}
	src := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := strace.NewParser()
		evs, err := p.Parse(strings.NewReader(src))
		if err != nil || len(evs) == 0 {
			b.Fatalf("parse: %v (%d events)", err, len(evs))
		}
	}
}

// BenchmarkWebPrefetch measures the §7 Web-caching application: the
// predictive cache over a browsing workload, validating that prediction
// still beats plain LRU at bench time.
func BenchmarkWebPrefetch(b *testing.B) {
	prof := webcache.DefaultBrowseProfile()
	prof.Sessions = 150
	fetches := webcache.GenerateBrowsing(prof, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred := webcache.NewPredictor(sim.DefaultParams(), int64(i))
		c := webcache.Evaluate(fetches, 2<<20, pred)
		plain := webcache.Evaluate(fetches, 2<<20, nil)
		if c.HitRate() <= plain.HitRate() {
			b.Fatalf("prediction lost: %.3f vs %.3f", c.HitRate(), plain.HitRate())
		}
	}
}

// BenchmarkSaveLoad measures database checkpoint and restore (§5.3's
// on-disk database).
func BenchmarkSaveLoad(b *testing.B) {
	prof := mustProfile(b, "D").Light(20)
	gen := workload.NewGenerator(prof, 1)
	tr := gen.Generate()
	params := sim.DefaultParams()
	opts := core.Options{Params: &params, Seed: 1, DirSize: gen.DirSize}
	corr := core.New(opts)
	for _, ev := range tr.Events {
		corr.Feed(ev)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := corr.Save(&buf); err != nil {
			b.Fatal(err)
		}
		size := buf.Len()
		if _, err := core.Load(&buf, opts); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(size), "bytes/snapshot")
	}
}

// BenchmarkBinaryTraceCodec measures binary trace encode+decode.
func BenchmarkBinaryTraceCodec(b *testing.B) {
	prof := mustProfile(b, "C").Light(10)
	tr := workload.NewGenerator(prof, 1).Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		bw := trace.NewBinaryWriter(&buf)
		for _, ev := range tr.Events {
			if err := bw.Write(ev); err != nil {
				b.Fatal(err)
			}
		}
		bw.Flush()
		got, err := trace.NewBinaryReader(&buf).ReadAll()
		if err != nil || len(got) != len(tr.Events) {
			b.Fatalf("%v (%d events)", err, len(got))
		}
	}
}

// BenchmarkMemoryPerFile measures the resident database cost per
// tracked file (§5.3: the paper reports ~1 KB per file for ~20 000
// files, deliberately unoptimized).
func BenchmarkMemoryPerFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		p := config.Defaults()
		tbl := semdist.NewTable(p, stats.NewRand(1))
		rng := stats.NewRand(2)
		const files = 20000
		for f := 0; f < files; f++ {
			proj := f / 50
			for k := 0; k < p.NeighborTableSize; k++ {
				nb := proj*50 + rng.Intn(50)
				if nb == f {
					continue
				}
				tbl.Observe(simfs.FileID(f+1), simfs.FileID(nb+1), float64(rng.Intn(10)), false)
			}
		}
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		perFile := float64(after.HeapAlloc-before.HeapAlloc) / files
		b.ReportMetric(perFile, "bytes/file")
		if tbl.Len() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSemanticDistance measures the per-open cost of the pipeline
// on a hot 40-file loop (the worst case for the window scan).
func BenchmarkSemanticDistance(b *testing.B) {
	corr := core.New(core.Options{Seed: 1})
	evs := make([]trace.Event, 0, 1000)
	clk := trace.NewClock(time.Unix(0, 0))
	for i := 0; i < 500; i++ {
		path := fmt.Sprintf("/home/u/p/f%02d", i%40)
		evs = append(evs, clk.Stamp(trace.Event{PID: 1, Op: trace.OpOpen, Path: path, Uid: 1000}))
		evs = append(evs, clk.Stamp(trace.Event{PID: 1, Op: trace.OpClose, Path: path, Uid: 1000}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corr.Feed(evs[i%len(evs)])
	}
}
