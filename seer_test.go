package seer

import (
	"strings"
	"testing"
	"time"
)

// feedProject emits an edit session over the given files in one process.
func feedProject(s *Seer, pid PID, seq *uint64, base time.Time, files []string) {
	emit := func(op Op, path string) {
		*seq++
		s.Observe(Event{
			Seq: *seq, Time: base.Add(time.Duration(*seq) * time.Second),
			PID: pid, Op: op, Path: path, Uid: 1000,
		})
	}
	emit(OpOpen, files[0])
	for _, f := range files[1:] {
		emit(OpOpen, f)
		emit(OpClose, f)
	}
	emit(OpClose, files[0])
}

func TestPublicAPIEndToEnd(t *testing.T) {
	s := New(WithSeed(7))
	base := time.Unix(1_000_000, 0)
	var seq uint64
	alpha := []string{"/home/u/alpha/a.c", "/home/u/alpha/a.h", "/home/u/alpha/b.c", "/home/u/alpha/Makefile2"}
	beta := []string{"/home/u/beta/x.c", "/home/u/beta/y.c", "/home/u/beta/z.h", "/home/u/beta/doc.txt"}
	for i := 0; i < 6; i++ {
		feedProject(s, 1, &seq, base, alpha)
		feedProject(s, 2, &seq, base, beta)
	}
	if s.Events() == 0 || s.KnownFiles() < 8 {
		t.Fatalf("events=%d known=%d", s.Events(), s.KnownFiles())
	}
	clusters := s.Clusters()
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	var alphaCluster *Cluster
	for i := range clusters {
		for _, f := range clusters[i].Files {
			if f == alpha[0] {
				alphaCluster = &clusters[i]
			}
		}
	}
	if alphaCluster == nil {
		t.Fatal("alpha file not clustered")
	}
	found := 0
	for _, f := range alphaCluster.Files {
		if strings.HasPrefix(f, "/home/u/alpha/") {
			found++
		}
		if strings.HasPrefix(f, "/home/u/beta/") {
			t.Errorf("beta file %s in alpha's cluster", f)
		}
	}
	if found < len(alpha) {
		t.Errorf("alpha cluster holds %d alpha files, want %d", found, len(alpha))
	}

	plan := s.HoardPlan()
	if len(plan) < 8 {
		t.Fatalf("plan entries = %d", len(plan))
	}
	var cum int64
	for _, e := range plan {
		cum += e.Size
		if e.Cum != cum {
			t.Fatalf("cumulative size mismatch at %s", e.Path)
		}
		if e.Reason == "" {
			t.Fatalf("entry without reason: %+v", e)
		}
	}

	hoarded := s.Hoard(plan[len(plan)-1].Cum)
	if len(hoarded) != len(plan) {
		t.Errorf("full-budget hoard = %d files, want %d", len(hoarded), len(plan))
	}
	if got := s.Hoard(0); len(got) != 0 {
		t.Errorf("zero-budget hoard = %v", got)
	}
}

func TestObserveStrace(t *testing.T) {
	s := New(WithSeed(1))
	src := `100 execve("/usr/bin/cc", ["cc"], ...) = 0
100 openat(AT_FDCWD, "/home/u/p/main.c", O_RDONLY) = 3
100 openat(AT_FDCWD, "/home/u/p/defs.h", O_RDONLY) = 4
100 close(4) = 0
100 close(3) = 0
100 exit_group(0) = ?
`
	if err := s.ObserveStrace(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if s.KnownFiles() < 3 {
		t.Errorf("known files = %d", s.KnownFiles())
	}
	plan := s.HoardPlan()
	var sawMain bool
	for _, e := range plan {
		if e.Path == "/home/u/p/main.c" {
			sawMain = true
		}
	}
	if !sawMain {
		t.Error("strace-observed file missing from plan")
	}
}

func TestInvestigators(t *testing.T) {
	s := New(WithSeed(1))
	s.InvestigateC(map[string][]byte{
		"/p/a.c": []byte("#include \"shared.h\"\n"),
		"/p/b.c": []byte("#include \"shared.h\"\n"),
	}, nil, 50)
	s.InvestigateMakefile("/p/Makefile", []byte("prog: a.o b.o\n\tcc -o prog\n"), 50)
	clusters := s.Clusters()
	var together bool
	for _, c := range clusters {
		hasA, hasB := false, false
		for _, f := range c.Files {
			if f == "/p/a.c" {
				hasA = true
			}
			if f == "/p/b.c" {
				hasB = true
			}
		}
		if hasA && hasB {
			together = true
		}
	}
	if !together {
		t.Error("investigated files not clustered together")
	}
}

func TestSetFileSize(t *testing.T) {
	s := New(WithSeed(1))
	s.SetFileSize("/big/file", 12345)
	var seq uint64
	feedProject(s, 1, &seq, time.Unix(0, 0), []string{"/big/file", "/other"})
	for _, e := range s.HoardPlan() {
		if e.Path == "/big/file" && e.Size != 12345 {
			t.Errorf("size = %d, want 12345", e.Size)
		}
	}
}

func TestOptions(t *testing.T) {
	p := DefaultParams()
	p.KNear = 7
	ctl := DefaultControl()
	s := New(WithParams(p), WithControl(ctl), WithSeed(3),
		WithDirSize(func(string) int { return 5 }))
	if s == nil {
		t.Fatal("New returned nil")
	}
	if s.Events() != 0 {
		t.Error("fresh Seer has events")
	}
}
