// Package replic provides the replication substrate underneath SEER.
//
// SEER deliberately does not move files itself: "a separate replication
// system manages the actual transport of data; any of a number of
// replication systems may be used" (paper abstract, §2). The correlator
// only issues fetch/evict instructions and asks the substrate about
// availability; propagation, update conflicts and reconciliation are the
// substrate's problem.
//
// CheapRumor is this repository's stand-in for the paper's custom
// master–slave service of the same name: a server (master) holds the
// authoritative replica of every file; the laptop (slave) holds the
// hoarded subset. Local updates made while disconnected are reconciled
// at reconnection, with conflicts detected when the server copy advanced
// independently.
package replic

import (
	"errors"
	"fmt"

	"github.com/fmg/seer/internal/simfs"
)

// ErrDisconnected is returned when an operation needs the network while
// the laptop is disconnected.
var ErrDisconnected = errors.New("replic: disconnected")

// ErrNotReplicated is returned when the server has no such file.
var ErrNotReplicated = errors.New("replic: file not replicated on server")

// AccessResult describes what happened when the user accessed a file.
type AccessResult uint8

// The access outcomes.
const (
	// AccessLocal: the file was in the hoard.
	AccessLocal AccessResult = iota
	// AccessRemote: not hoarded, but the network was available and the
	// access was transparently serviced remotely (FICUS-style remote
	// access, paper §4.4); the file should be marked for hoarding.
	AccessRemote
	// AccessMiss: not hoarded and disconnected — a hoard miss.
	AccessMiss
	// AccessUnknown: the file does not exist on the server either; not
	// a hoard miss (paper §4.4: failed accesses to nonexistent files
	// must not be counted).
	AccessUnknown
)

// String names the access result.
func (r AccessResult) String() string {
	switch r {
	case AccessLocal:
		return "local"
	case AccessRemote:
		return "remote"
	case AccessMiss:
		return "miss"
	case AccessUnknown:
		return "unknown"
	}
	return fmt.Sprintf("access(%d)", uint8(r))
}

// Replicator is the substrate contract SEER depends on (paper §2): it
// can hoard and evict files, report availability, and service accesses.
type Replicator interface {
	// Fetch brings the file into the local store. It fails when
	// disconnected or when the server has no replica.
	Fetch(id simfs.FileID) error
	// Evict drops the file from the local store. Dirty files are kept
	// until reconciliation and evicted afterwards.
	Evict(id simfs.FileID)
	// HasLocal reports whether the file is locally available.
	HasLocal(id simfs.FileID) bool
	// Access services a user access to the file.
	Access(id simfs.FileID) AccessResult
	// Connected reports network availability.
	Connected() bool
	// SetConnected changes network availability; reconnecting triggers
	// reconciliation.
	SetConnected(bool) ReconcileReport
}

// replica is the laptop-side state of one file.
type replica struct {
	// baseVersion is the server version this copy derives from.
	baseVersion uint64
	// dirty marks local updates not yet propagated.
	dirty bool
	// evictWanted defers an eviction of a dirty file.
	evictWanted bool
}

// BatchSyncer is implemented by substrates that can apply a whole
// fetch/evict diff in one operation — for the networked substrate, one
// round trip instead of one per file. failed lists files the server
// does not replicate (permanent); a non-nil err means nothing was
// fetched and the whole batch may be retried.
type BatchSyncer interface {
	SyncBatch(fetch, evict []simfs.FileID) (failed []simfs.FileID, err error)
}

// ReconcileReport summarizes a reconciliation pass.
type ReconcileReport struct {
	// Propagated counts local updates pushed to the server.
	Propagated int
	// Conflicts counts files whose server copy advanced independently
	// while the laptop held dirty local changes.
	Conflicts int
	// Refreshed counts hoarded files whose newer server version was
	// pulled down.
	Refreshed int
	// Evicted counts deferred evictions completed.
	Evicted int
}

// merge accumulates o into r.
func (r *ReconcileReport) merge(o ReconcileReport) {
	r.Propagated += o.Propagated
	r.Conflicts += o.Conflicts
	r.Refreshed += o.Refreshed
	r.Evicted += o.Evicted
}

// CheapRumor is the in-memory master–slave replication service.
type CheapRumor struct {
	fs        *simfs.FS
	server    map[simfs.FileID]uint64 // authoritative version per file
	local     map[simfs.FileID]*replica
	connected bool
	totals    ReconcileReport
	// ConflictPolicy: true keeps the local version on conflict (and
	// pushes it), false keeps the server version.
	KeepLocalOnConflict bool
}

var _ Replicator = (*CheapRumor)(nil)
var _ BatchSyncer = (*CheapRumor)(nil)

// NewCheapRumor returns a connected, empty replication pair over the
// given file table.
func NewCheapRumor(fs *simfs.FS) *CheapRumor {
	return &CheapRumor{
		fs:        fs,
		server:    make(map[simfs.FileID]uint64),
		local:     make(map[simfs.FileID]*replica),
		connected: true,
	}
}

// ServerCreate registers a file on the master (version 1). Workloads
// call this when a file comes into existence while connected.
func (r *CheapRumor) ServerCreate(id simfs.FileID) {
	if _, ok := r.server[id]; !ok {
		r.server[id] = 1
	}
}

// ServerUpdate bumps the master version, as another replica would.
func (r *CheapRumor) ServerUpdate(id simfs.FileID) error {
	if _, ok := r.server[id]; !ok {
		return ErrNotReplicated
	}
	r.server[id]++
	return nil
}

// ServerVersion returns the master version (0 when absent).
func (r *CheapRumor) ServerVersion(id simfs.FileID) uint64 { return r.server[id] }

// Connected implements Replicator.
func (r *CheapRumor) Connected() bool { return r.connected }

// Fetch implements Replicator.
func (r *CheapRumor) Fetch(id simfs.FileID) error {
	if !r.connected {
		return ErrDisconnected
	}
	v, ok := r.server[id]
	if !ok {
		return ErrNotReplicated
	}
	rep := r.local[id]
	if rep == nil {
		rep = &replica{}
		r.local[id] = rep
	}
	if !rep.dirty {
		rep.baseVersion = v
	}
	rep.evictWanted = false
	return nil
}

// Evict implements Replicator. Evicting a dirty file is deferred until
// the update has been propagated, so no local work is ever lost.
func (r *CheapRumor) Evict(id simfs.FileID) {
	rep := r.local[id]
	if rep == nil {
		return
	}
	if rep.dirty {
		rep.evictWanted = true
		return
	}
	delete(r.local, id)
}

// HasLocal implements Replicator.
func (r *CheapRumor) HasLocal(id simfs.FileID) bool {
	return r.local[id] != nil
}

// Access implements Replicator.
func (r *CheapRumor) Access(id simfs.FileID) AccessResult {
	if r.local[id] != nil {
		return AccessLocal
	}
	if _, ok := r.server[id]; !ok {
		return AccessUnknown
	}
	if r.connected {
		return AccessRemote
	}
	return AccessMiss
}

// WriteLocal records a local modification of a hoarded file (creating
// the local replica if the file is being created locally). While
// connected the update propagates to the server immediately — creation
// or update alike — so DirtyCount stays zero online; dirty state only
// accumulates while disconnected. (A connected write over a stale base
// is a conflict, resolved by the same policy reconciliation uses.)
func (r *CheapRumor) WriteLocal(id simfs.FileID) {
	rep := r.local[id]
	if rep == nil {
		rep = &replica{}
		r.local[id] = rep
	}
	rep.dirty = true
	if !r.connected {
		return
	}
	sv, ok := r.server[id]
	switch {
	case !ok:
		r.server[id] = 1
		rep.baseVersion = 1
		r.totals.Propagated++
	case sv == rep.baseVersion:
		r.server[id] = sv + 1
		rep.baseVersion = sv + 1
		r.totals.Propagated++
	default:
		r.totals.Conflicts++
		if r.KeepLocalOnConflict {
			r.server[id] = sv + 1
			rep.baseVersion = sv + 1
		} else {
			rep.baseVersion = sv
		}
	}
	rep.dirty = false
}

// DirtyCount returns the number of unpropagated local updates.
func (r *CheapRumor) DirtyCount() int {
	n := 0
	for _, rep := range r.local {
		if rep.dirty {
			n++
		}
	}
	return n
}

// LocalCount returns the number of locally stored files.
func (r *CheapRumor) LocalCount() int { return len(r.local) }

// SetConnected implements Replicator. A transition to connected runs
// reconciliation: dirty local files are pushed (detecting conflicts),
// stale hoarded files are refreshed, deferred evictions complete.
func (r *CheapRumor) SetConnected(up bool) ReconcileReport {
	wasUp := r.connected
	r.connected = up
	if !up || wasUp {
		return ReconcileReport{}
	}
	rep := r.reconcile()
	r.totals.merge(rep)
	return rep
}

// Totals returns the cumulative reconciliation outcomes, including
// connected write-through pushes (which never appear in a
// SetConnected report).
func (r *CheapRumor) Totals() ReconcileReport { return r.totals }

func (r *CheapRumor) reconcile() ReconcileReport {
	var rep ReconcileReport
	for id, loc := range r.local {
		sv, onServer := r.server[id]
		switch {
		case loc.dirty && !onServer:
			// Created locally while disconnected.
			r.server[id] = 1
			loc.baseVersion = 1
			loc.dirty = false
			rep.Propagated++
		case loc.dirty && sv == loc.baseVersion:
			// Clean fast-forward push.
			r.server[id] = sv + 1
			loc.baseVersion = sv + 1
			loc.dirty = false
			rep.Propagated++
		case loc.dirty && sv != loc.baseVersion:
			// Concurrent updates: conflict (paper delegates resolution
			// to the substrate [17]).
			rep.Conflicts++
			if r.KeepLocalOnConflict {
				r.server[id] = sv + 1
				loc.baseVersion = sv + 1
			} else {
				loc.baseVersion = sv
			}
			loc.dirty = false
		case !loc.dirty && onServer && sv != loc.baseVersion:
			// Server advanced: refresh the hoarded copy.
			loc.baseVersion = sv
			rep.Refreshed++
		}
		if loc.evictWanted && !loc.dirty {
			delete(r.local, id)
			rep.Evicted++
		}
	}
	return rep
}

// Sync applies a hoard-fill diff: fetch the listed files and evict the
// others. Fetch failures (files the server never saw) are counted, not
// fatal — SEER must tolerate substrate refusal.
func (r *CheapRumor) Sync(fetch, evict []simfs.FileID) (failed int) {
	for _, id := range fetch {
		if err := r.Fetch(id); err != nil {
			failed++
		}
	}
	for _, id := range evict {
		r.Evict(id)
	}
	return failed
}

// SyncBatch implements BatchSyncer: in memory every fetch either
// succeeds or is permanently refused, so the whole diff applies in one
// call — except while disconnected, which is the retryable condition.
func (r *CheapRumor) SyncBatch(fetch, evict []simfs.FileID) (failed []simfs.FileID, err error) {
	if !r.connected {
		return nil, ErrDisconnected
	}
	for _, id := range fetch {
		if err := r.Fetch(id); err != nil {
			failed = append(failed, id)
		}
	}
	for _, id := range evict {
		r.Evict(id)
	}
	return failed, nil
}
