package replic_test

import (
	"net/http"
	"strings"
	"testing"

	"github.com/fmg/seer/internal/obs"
)

// scrape renders a registry and parses it back into a key → value map.
func scrape(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	m, err := obs.ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, b.String())
	}
	return m
}

// TestMasterMetrics verifies the op counters that used to be private
// ints are now scrapeable, agree with Stats(), and that the handler
// counts per-endpoint requests and errors.
func TestMasterMetrics(t *testing.T) {
	m, rr, ts := newMasterServer(t, nil)
	m.Create(1)
	rr.WriteLocal(1) // push: base 0 against master v1 → conflict
	rr.WriteLocal(2) // push: unknown file → created
	if _, err := rr.Reconcile(); err != nil {
		t.Fatal(err)
	}
	// A bad body on a known endpoint is a per-endpoint error.
	resp, err := ts.Client().Post(ts.URL+"/rumor/push", "application/x-seer-rumor",
		strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage push returned %d, want 400", resp.StatusCode)
	}

	vals := scrape(t, m.Metrics())
	files, creates, pushes, conflicts, reconciles := m.Stats()
	checks := map[string]float64{
		"seer_rumor_files":                                float64(files),
		"seer_rumor_creates_total":                        float64(creates),
		"seer_rumor_pushes_total":                         float64(pushes),
		"seer_rumor_conflicts_total":                      float64(conflicts),
		"seer_rumor_reconciles_total":                     float64(reconciles),
		`seer_rumor_requests_total{endpoint="push"}`:      3, // 2 writes + 1 garbage
		`seer_rumor_requests_total{endpoint="reconcile"}`: 1,
		`seer_rumor_errors_total{endpoint="push"}`:        1,
	}
	for k, want := range checks {
		if got := vals[k]; got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
	if creates != 1 || pushes != 2 || conflicts != 1 || reconciles != 1 {
		t.Errorf("Stats = creates %d pushes %d conflicts %d reconciles %d, want 1 2 1 1",
			creates, pushes, conflicts, reconciles)
	}
}

// TestRemoteRumorMetrics verifies the client-side instruments: RTT
// samples per round trip, transition counters, and the dirty gauge.
func TestRemoteRumorMetrics(t *testing.T) {
	_, rr, ts := newMasterServer(t, nil)
	reg := obs.NewRegistry()
	rr.InstrumentOn(reg)

	rr.WriteLocal(1) // one /push round trip
	rr.SetConnected(false)
	rr.WriteLocal(2) // stays dirty while partitioned
	vals := scrape(t, reg)
	if got := vals["seer_replication_rtt_seconds_count"]; got != 1 {
		t.Errorf("rtt count = %v, want 1", got)
	}
	if got := vals["seer_replication_disconnects_total"]; got != 1 {
		t.Errorf("disconnects = %v, want 1", got)
	}
	if got := vals["seer_replication_dirty_files"]; got != 1 {
		t.Errorf("dirty gauge = %v, want 1", got)
	}

	rr.SetConnected(true) // reconcile round trip
	vals = scrape(t, reg)
	if got := vals["seer_replication_reconnects_total"]; got != 1 {
		t.Errorf("reconnects = %v, want 1", got)
	}
	if got := vals["seer_replication_dirty_files"]; got != 0 {
		t.Errorf("dirty gauge after reconcile = %v, want 0", got)
	}

	// Kill the master: the next round trip fails and the reconnect
	// attempt leaves the client disconnected. The Retry hook re-invokes
	// each failed round trip once, and every re-attempt is counted.
	ts.Close()
	rr.Retry = func(op func() error) error {
		if err := op(); err == nil {
			return nil
		}
		return op()
	}
	rr.SetConnected(false)
	rr.SetConnected(true)
	vals = scrape(t, reg)
	if got := vals["seer_replication_errors_total"]; got < 1 {
		t.Errorf("errors = %v, want >= 1", got)
	}
	if got := vals["seer_replication_retries_total"]; got < 1 {
		t.Errorf("retries = %v, want >= 1", got)
	}
	if got := vals["seer_replication_disconnects_total"]; got != 3 {
		// one deliberate + one failed-reconcile + one deliberate above
		t.Errorf("disconnects = %v, want 3", got)
	}
	if rr.Connected() {
		t.Error("client connected after failed reconcile")
	}
}
