package replic

import (
	"fmt"
	"net/http"
	"strings"
	"sync"

	"github.com/fmg/seer/internal/obs"
	"github.com/fmg/seer/internal/simfs"
)

// Master is the server half of the networked CheapRumor substrate: the
// authoritative version table every laptop reconciles against. It holds
// the same state as the in-memory CheapRumor's server map and applies
// the same reconciliation rules, so a RemoteRumor client over HTTP and
// a CheapRumor in one process converge to identical outcomes — the
// property the chaos tests assert.
//
// Master is safe for concurrent use: every mutation happens under one
// lock, and a batched reconcile is atomic with respect to concurrent
// pushes from other clients.
type Master struct {
	mu       sync.Mutex
	versions map[simfs.FileID]uint64

	// Operation counters live on the registry so they are scrapeable at
	// /metrics (and still feed rumord's /healthz via Stats()). They are
	// atomics, so reading them never contends with the version-table
	// lock.
	reg         *obs.Registry
	mFiles      *obs.Gauge
	mCreates    *obs.Counter
	mPushes     *obs.Counter
	mConflicts  *obs.Counter
	mReconciles *obs.Counter
}

// NewMaster returns an empty master with a private metrics registry.
func NewMaster() *Master { return NewMasterOn(nil) }

// NewMasterOn returns an empty master registering its instruments on
// reg (nil creates a private registry, retrievable via Metrics()).
func NewMasterOn(reg *obs.Registry) *Master {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Master{versions: make(map[simfs.FileID]uint64), reg: reg}
	m.mFiles = reg.Gauge("seer_rumor_files",
		"Files in the master's replicated version table.")
	m.mCreates = reg.Counter("seer_rumor_creates_total",
		"Files registered through Create.")
	m.mPushes = reg.Counter("seer_rumor_pushes_total",
		"Local updates pushed to the master (direct or via reconcile).")
	m.mConflicts = reg.Counter("seer_rumor_conflicts_total",
		"Pushes that found the master's version diverged from the client's base.")
	m.mReconciles = reg.Counter("seer_rumor_reconciles_total",
		"Batched reconciliation rounds served.")
	return m
}

// Metrics returns the registry the master's instruments live on.
func (m *Master) Metrics() *obs.Registry { return m.reg }

// Create registers a file at version 1 (idempotent) and returns its
// version.
func (m *Master) Create(id simfs.FileID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v, ok := m.versions[id]; ok {
		return v
	}
	m.versions[id] = 1
	m.mFiles.Set(int64(len(m.versions)))
	m.mCreates.Inc()
	return 1
}

// Update bumps the version, as another replica pushing through the
// master would; it fails when the file is unknown.
func (m *Master) Update(id simfs.FileID) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.versions[id]
	if !ok {
		return 0, ErrNotReplicated
	}
	m.versions[id] = v + 1
	return v + 1, nil
}

// Version returns the file's version and whether it is replicated.
func (m *Master) Version(id simfs.FileID) (uint64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.versions[id]
	return v, ok
}

// Len returns the number of replicated files.
func (m *Master) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.versions)
}

// Fetch answers a batched version query.
func (m *Master) Fetch(ids []simfs.FileID) []VersionInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]VersionInfo, len(ids))
	for i, id := range ids {
		v, ok := m.versions[id]
		out[i] = VersionInfo{ID: id, Version: v, Found: ok}
	}
	return out
}

// Push applies one propagated local update. base is the master version
// the client's copy derives from (0 for a locally created file). The
// outcome mirrors CheapRumor.reconcile's dirty cases: absent → created
// at 1; base current → fast-forward; otherwise a conflict resolved by
// keepLocal (push over) or not (adopt the master's version).
func (m *Master) Push(id simfs.FileID, base uint64, keepLocal bool) PushResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pushLocked(id, base, keepLocal)
}

func (m *Master) pushLocked(id simfs.FileID, base uint64, keepLocal bool) PushResult {
	m.mPushes.Inc()
	sv, ok := m.versions[id]
	switch {
	case !ok:
		m.versions[id] = 1
		m.mFiles.Set(int64(len(m.versions)))
		return PushResult{Outcome: PushCreated, Version: 1}
	case sv == base:
		m.versions[id] = sv + 1
		return PushResult{Outcome: PushFastForward, Version: sv + 1}
	default:
		m.mConflicts.Inc()
		if keepLocal {
			m.versions[id] = sv + 1
			return PushResult{Outcome: PushConflict, Version: sv + 1}
		}
		return PushResult{Outcome: PushConflict, Version: sv}
	}
}

// Reconcile applies a batched reconciliation atomically: every dirty
// file is pushed and every clean file's current version is reported so
// the client can refresh stale hoarded copies.
func (m *Master) Reconcile(req ReconcileRequest) ReconcileResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mReconciles.Inc()
	resp := ReconcileResponse{
		Dirty: make([]PushResult, len(req.Dirty)),
		Clean: make([]VersionInfo, len(req.Clean)),
	}
	for i, e := range req.Dirty {
		resp.Dirty[i] = m.pushLocked(e.ID, e.Base, req.KeepLocal)
	}
	for i, e := range req.Clean {
		v, ok := m.versions[e.ID]
		resp.Clean[i] = VersionInfo{ID: e.ID, Version: v, Found: ok}
	}
	return resp
}

// Stats returns the master's operation counters.
func (m *Master) Stats() (files int, creates, pushes, conflicts, reconciles uint64) {
	m.mu.Lock()
	files = len(m.versions)
	m.mu.Unlock()
	return files, m.mCreates.Value(), m.mPushes.Value(),
		m.mConflicts.Value(), m.mReconciles.Value()
}

// MasterHandler serves the CheapRumor wire protocol for m. prefix is
// the mount point without trailing slash (e.g. "/rumor"); register the
// handler at prefix+"/". Bodies that fail to decode (truncation, CRC
// mismatch, oversized counts) get 400; unknown paths 404; non-POST 405.
func MasterHandler(prefix string, m *Master) http.Handler {
	return TracedMasterHandler(prefix, m, nil)
}

// TracedMasterHandler is MasterHandler with server-side spans: each
// request carrying a traceparent header records a "master:<endpoint>"
// span in tracer, parented on the client's span, so the hop stitches
// into the caller's distributed trace. tracer nil disables spans.
func TracedMasterHandler(prefix string, m *Master, tracer *obs.Tracer) http.Handler {
	mux := http.NewServeMux()
	// Per-endpoint traffic counters; endpoint values come from the fixed
	// protocol path set, never from request data.
	reqs := m.reg.CounterVec("seer_rumor_requests_total",
		"Wire-protocol requests served, by endpoint.", "endpoint")
	errs := m.reg.CounterVec("seer_rumor_errors_total",
		"Wire-protocol requests rejected (bad method or undecodable body), by endpoint.", "endpoint")
	handle := func(path string, fn func(w http.ResponseWriter, req *http.Request) error) {
		endpoint := strings.TrimPrefix(path, "/")
		mReq, mErr := reqs.With(endpoint), errs.With(endpoint)
		mux.HandleFunc(prefix+path, func(w http.ResponseWriter, req *http.Request) {
			mReq.Inc()
			if req.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				http.Error(w, "method not allowed; use POST", http.StatusMethodNotAllowed)
				mErr.Inc()
				return
			}
			var sp *obs.ActiveSpan
			if sc, ok := obs.Extract(req.Header); ok {
				sp = tracer.StartChild(sc, "master:"+endpoint)
			}
			if err := fn(w, req); err != nil {
				http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
				mErr.Inc()
				sp.Attr("outcome", "error")
			}
			sp.End()
		})
	}

	reply := func(w http.ResponseWriter, body []byte, err error) error {
		if err != nil {
			return err
		}
		w.Header().Set("Content-Type", "application/x-seer-rumor")
		_, err = w.Write(body)
		return err
	}

	handle("/create", func(w http.ResponseWriter, req *http.Request) error {
		id, err := decodeID(req.Body)
		if err != nil {
			return err
		}
		v := m.Create(id)
		body, err := encodeVersionResp(VersionInfo{ID: id, Version: v, Found: true})
		return reply(w, body, err)
	})
	handle("/update", func(w http.ResponseWriter, req *http.Request) error {
		id, err := decodeID(req.Body)
		if err != nil {
			return err
		}
		v, uerr := m.Update(id)
		if uerr != nil {
			body, err := encodeStatusResp(statusNotReplicated)
			return reply(w, body, err)
		}
		body, err := encodeVersionResp(VersionInfo{ID: id, Version: v, Found: true})
		return reply(w, body, err)
	})
	handle("/version", func(w http.ResponseWriter, req *http.Request) error {
		id, err := decodeID(req.Body)
		if err != nil {
			return err
		}
		v, ok := m.Version(id)
		body, err := encodeVersionResp(VersionInfo{ID: id, Version: v, Found: ok})
		return reply(w, body, err)
	})
	handle("/fetch", func(w http.ResponseWriter, req *http.Request) error {
		ids, err := decodeIDList(req.Body)
		if err != nil {
			return err
		}
		body, err := encodeFetchResp(m.Fetch(ids))
		return reply(w, body, err)
	})
	handle("/push", func(w http.ResponseWriter, req *http.Request) error {
		id, base, keepLocal, err := decodePushReq(req.Body)
		if err != nil {
			return err
		}
		body, err := encodePushResp(m.Push(id, base, keepLocal))
		return reply(w, body, err)
	})
	handle("/reconcile", func(w http.ResponseWriter, req *http.Request) error {
		rreq, err := decodeReconcileReq(req.Body)
		if err != nil {
			return err
		}
		body, err := encodeReconcileResp(m.Reconcile(rreq))
		return reply(w, body, err)
	})

	// Anything else under the prefix is unknown.
	mux.HandleFunc(strings.TrimSuffix(prefix, "/")+"/", func(w http.ResponseWriter, req *http.Request) {
		http.NotFound(w, req)
	})
	return mux
}
