package replic_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/fmg/seer/internal/fault"
	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
)

// chaosEnv drives an in-memory CheapRumor (the reference) and a
// networked RemoteRumor (the subject, behind a 30%-lossy transport)
// through the same operation schedule. Because the master applies the
// same reconciliation rules as CheapRumor and every lost request is
// dropped before the server sees it, the two must converge to
// identical hoard contents, master versions, and reconcile totals —
// with zero dirty updates lost, however often the link flaps.
type chaosEnv struct {
	t   *testing.T
	rng *stats.Rand

	ref *replic.CheapRumor
	sub *replic.RemoteRumor
	m   *replic.Master
	ft  *fault.FlakyTransport

	ids       []simfs.FileID
	connected bool
}

const chaosRetries = 200 // loop bound: 0.3^200 is never

func newChaosEnv(t *testing.T, seed int64, keepLocal bool) *chaosEnv {
	t.Helper()
	fs := simfs.New(stats.NewRand(seed))
	ref := replic.NewCheapRumor(fs)
	ref.KeepLocalOnConflict = keepLocal

	m := replic.NewMaster()
	mux := http.NewServeMux()
	mux.Handle("/rumor/", replic.MasterHandler("/rumor", m))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	ft := &fault.FlakyTransport{FailProb: 0.3, Rand: stats.NewRand(seed + 1)}
	sub := replic.NewRemoteRumor(ts.URL+"/rumor", &http.Client{Transport: ft})
	sub.KeepLocalOnConflict = keepLocal
	sub.Retry = hoard.RetryPolicy{MaxAttempts: 4, Sleep: func(time.Duration) {}}.Do

	env := &chaosEnv{
		t: t, rng: stats.NewRand(seed + 2),
		ref: ref, sub: sub, m: m, ft: ft,
		connected: true,
	}
	for i := 0; i < 8; i++ {
		env.serverCreate()
	}
	return env
}

func (e *chaosEnv) pick() simfs.FileID {
	return e.ids[e.rng.Intn(len(e.ids))]
}

// serverCreate registers a brand-new file on both masters, as a
// connected workstation would.
func (e *chaosEnv) serverCreate() {
	id := simfs.FileID(len(e.ids) + 1)
	e.ids = append(e.ids, id)
	e.m.Create(id)
	e.ref.ServerCreate(id)
}

// serverUpdate plays another replica pushing through the master.
func (e *chaosEnv) serverUpdate() {
	id := e.pick()
	_, errM := e.m.Update(id)
	errR := e.ref.ServerUpdate(id)
	if (errM == nil) != (errR == nil) {
		e.t.Fatalf("server update divergence on %d: master %v, ref %v", id, errM, errR)
	}
}

// fetch hoards one file on both, riding out transport failures.
func (e *chaosEnv) fetch() {
	id := e.pick()
	errR := e.ref.Fetch(id)
	var errS error
	for i := 0; ; i++ {
		errS = e.sub.Fetch(id)
		if !errors.Is(errS, replic.ErrUnavailable) {
			break
		}
		if i >= chaosRetries {
			e.t.Fatalf("fetch %d never succeeded", id)
		}
	}
	if (errR == nil) != (errS == nil) || (errR != nil && !errors.Is(errS, errR)) {
		e.t.Fatalf("fetch divergence on %d: ref %v, sub %v", id, errR, errS)
	}
}

// write modifies a file locally on both. While connected, a subject
// push that lost the retry lottery is flushed with on-demand
// reconciliations (mirrored on the reference by a reconnect cycle, the
// same code path) — the substrate's promise is convergence, not
// per-call success.
func (e *chaosEnv) write() {
	id := e.pick()
	e.ref.WriteLocal(id)
	e.sub.WriteLocal(id)
	if !e.connected {
		return
	}
	if e.sub.DirtyCount() == 0 {
		return
	}
	e.flushSub()
	e.ref.SetConnected(false)
	e.ref.SetConnected(true)
}

// flushSub reconciles the subject until nothing is dirty.
func (e *chaosEnv) flushSub() {
	for i := 0; e.sub.DirtyCount() > 0; i++ {
		if i >= chaosRetries {
			e.t.Fatal("subject flush never converged")
		}
		e.sub.Reconcile()
	}
}

func (e *chaosEnv) evict() {
	id := e.pick()
	e.ref.Evict(id)
	e.sub.Evict(id)
}

// syncBatch applies one hoard-fill diff to both.
func (e *chaosEnv) syncBatch() {
	var fetch, evict []simfs.FileID
	for i := 0; i < 1+e.rng.Intn(3); i++ {
		fetch = append(fetch, e.pick())
	}
	for i := 0; i < e.rng.Intn(2); i++ {
		evict = append(evict, e.pick())
	}
	failR, errR := e.ref.SyncBatch(fetch, evict)
	var failS []simfs.FileID
	var errS error
	for i := 0; ; i++ {
		failS, errS = e.sub.SyncBatch(fetch, evict)
		if !errors.Is(errS, replic.ErrUnavailable) {
			break
		}
		if i >= chaosRetries {
			e.t.Fatal("batch sync never succeeded")
		}
	}
	if (errR == nil) != (errS == nil) {
		e.t.Fatalf("batch divergence: ref %v, sub %v", errR, errS)
	}
	if len(failR) != len(failS) {
		e.t.Fatalf("batch failed-list divergence: ref %v, sub %v", failR, failS)
	}
}

func (e *chaosEnv) disconnect() {
	if !e.connected {
		return
	}
	e.connected = false
	e.ref.SetConnected(false)
	e.sub.SetConnected(false)
}

// reconnect brings both sides back; the subject may need several
// attempts when the reconciliation round trip keeps getting dropped,
// and must then report exactly what the reference reported.
func (e *chaosEnv) reconnect() {
	if e.connected {
		return
	}
	e.connected = true
	repR := e.ref.SetConnected(true)
	var repS replic.ReconcileReport
	for i := 0; !e.sub.Connected(); i++ {
		if i >= chaosRetries {
			e.t.Fatal("subject reconnect never succeeded")
		}
		repS = e.sub.SetConnected(true)
	}
	if repR != repS {
		e.t.Fatalf("reconcile report divergence: ref %+v, sub %+v", repR, repS)
	}
}

// settle forces both sides connected and flushed, then checks full
// state equivalence.
func (e *chaosEnv) settle() {
	e.reconnect()
	e.flushSub()

	if n := e.ref.DirtyCount(); n != 0 {
		e.t.Errorf("reference DirtyCount = %d after settle", n)
	}
	if n := e.sub.DirtyCount(); n != 0 {
		e.t.Errorf("subject DirtyCount = %d after settle", n)
	}
	if e.ref.LocalCount() != e.sub.LocalCount() {
		e.t.Errorf("LocalCount divergence: ref %d, sub %d",
			e.ref.LocalCount(), e.sub.LocalCount())
	}
	for _, id := range e.ids {
		if e.ref.HasLocal(id) != e.sub.HasLocal(id) {
			e.t.Errorf("HasLocal divergence on %d: ref %v, sub %v",
				id, e.ref.HasLocal(id), e.sub.HasLocal(id))
		}
		vM, okM := e.m.Version(id)
		vR := e.ref.ServerVersion(id)
		if okM != (vR != 0) || (okM && vM != vR) {
			e.t.Errorf("master version divergence on %d: master %d/%v, ref %d",
				id, vM, okM, vR)
		}
	}
	if tr, ts := e.ref.Totals(), e.sub.Totals(); tr != ts {
		e.t.Errorf("totals divergence: ref %+v, sub %+v", tr, ts)
	}
	// Access answers match once the link is quiet.
	e.ft.FailProb = 0
	for _, id := range e.ids {
		if gr, gs := e.ref.Access(id), e.sub.Access(id); gr != gs {
			e.t.Errorf("access divergence on %d: ref %v, sub %v", id, gr, gs)
		}
	}
}

// step runs one random operation.
func (e *chaosEnv) step() {
	if !e.connected {
		// Disconnected: only local operations and reconnection.
		switch e.rng.Intn(4) {
		case 0:
			e.write()
		case 1:
			e.evict()
		case 2:
			e.serverUpdate() // the world moves on without the laptop
		case 3:
			e.reconnect()
		}
		return
	}
	switch e.rng.Intn(8) {
	case 0:
		e.serverCreate()
	case 1:
		e.serverUpdate()
	case 2:
		e.fetch()
	case 3:
		e.write()
	case 4:
		e.evict()
	case 5:
		e.syncBatch()
	case 6:
		e.disconnect()
	case 7:
		e.reconnect() // no-op while connected
	}
}

// TestRemoteRumorChaosEquivalence is the tentpole's acceptance test: a
// random schedule of writes, fetches, evictions, server-side updates,
// and repeated partitions, with 30% of all HTTP requests dropped, must
// leave the networked substrate byte-for-byte equivalent to the
// in-memory CheapRumor — same hoard contents, same master versions,
// same conflict counts, zero lost dirty updates.
func TestRemoteRumorChaosEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d/keepLocal=%v", seed, seed%2 == 0), func(t *testing.T) {
			t.Parallel()
			env := newChaosEnv(t, seed, seed%2 == 0)
			for op := 0; op < 300 && !t.Failed(); op++ {
				env.step()
			}
			if !t.Failed() {
				env.settle()
			}
			if env.ft.Injected() == 0 {
				t.Error("no faults injected — chaos test proves nothing")
			}
			t.Logf("seed %d: %d calls, %d injected failures, totals %+v",
				seed, env.ft.Calls(), env.ft.Injected(), env.sub.Totals())
		})
	}
}

// TestRemoteRumorPartitionFlap hammers the link with hard partitions
// mid-write: every update issued while the master is unreachable must
// survive as dirty state and land on the master after the next heal —
// none lost, ever.
func TestRemoteRumorPartitionFlap(t *testing.T) {
	m := replic.NewMaster()
	mux := http.NewServeMux()
	mux.Handle("/rumor/", replic.MasterHandler("/rumor", m))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	ft := &fault.FlakyTransport{}
	rr := replic.NewRemoteRumor(ts.URL+"/rumor", &http.Client{Transport: ft})
	rr.Retry = hoard.RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}}.Do

	rng := stats.NewRand(7)
	writes := make(map[simfs.FileID]uint64) // id → writes issued
	const files = 10
	for id := simfs.FileID(1); id <= files; id++ {
		m.Create(id)
		if err := rr.Fetch(id); err != nil {
			t.Fatal(err)
		}
	}

	down := false
	for round := 0; round < 40; round++ {
		// Flap the link at random — including mid-burst.
		if rng.Bool(0.4) {
			down = !down
			ft.SetDown(down)
		}
		for i := 0; i < 5; i++ {
			id := simfs.FileID(1 + rng.Intn(files))
			rr.WriteLocal(id)
			writes[id]++
		}
		if rng.Bool(0.3) {
			rr.SetConnected(false)
			rr.SetConnected(true) // may fail while down; state held
		}
	}

	// Heal and settle.
	ft.SetDown(false)
	if !rr.Connected() {
		rr.SetConnected(true)
	}
	for i := 0; rr.DirtyCount() > 0; i++ {
		if i > 100 {
			t.Fatalf("never converged: %d dirty", rr.DirtyCount())
		}
		rr.Reconcile()
	}

	// Every file written at least once must have advanced past its
	// fetch base: the update reached the master. (Consecutive dirty
	// writes coalesce — CheapRumor semantics — so the version floor is
	// base+1, not base+writes.)
	for id, n := range writes {
		if n == 0 {
			continue
		}
		v, ok := m.Version(id)
		if !ok || v < 2 {
			t.Errorf("file %d: %d writes issued but master version %d/%v — update lost",
				id, n, v, ok)
		}
	}
	if rr.DirtyCount() != 0 {
		t.Errorf("DirtyCount = %d after settle", rr.DirtyCount())
	}
	if ft.Injected() == 0 {
		t.Error("no faults injected")
	}
}
