package replic

import (
	"testing"
	"time"

	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
)

func newRumor() (*CheapRumor, *simfs.FS) {
	fs := simfs.New(stats.NewRand(1))
	return NewCheapRumor(fs), fs
}

func TestFetchAndAccess(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	if got := r.Access(f.ID); got != AccessRemote {
		t.Errorf("unhoarded connected access = %v, want remote", got)
	}
	if err := r.Fetch(f.ID); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !r.HasLocal(f.ID) {
		t.Error("fetched file not local")
	}
	if got := r.Access(f.ID); got != AccessLocal {
		t.Errorf("hoarded access = %v, want local", got)
	}
}

func TestAccessOutcomes(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	ghost := fs.Create("/ghost", simfs.Regular, 10, 2)
	r.SetConnected(false)
	if got := r.Access(f.ID); got != AccessMiss {
		t.Errorf("disconnected unhoarded access = %v, want miss", got)
	}
	if got := r.Access(ghost.ID); got != AccessUnknown {
		t.Errorf("nonexistent access = %v, want unknown (not a miss)", got)
	}
}

func TestFetchErrors(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	if err := r.Fetch(f.ID); err != ErrNotReplicated {
		t.Errorf("fetch unreplicated = %v", err)
	}
	r.ServerCreate(f.ID)
	r.SetConnected(false)
	if err := r.Fetch(f.ID); err != ErrDisconnected {
		t.Errorf("fetch disconnected = %v", err)
	}
}

func TestDisconnectedUpdatePropagates(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	if err := r.Fetch(f.ID); err != nil {
		t.Fatal(err)
	}
	r.SetConnected(false)
	r.WriteLocal(f.ID)
	if r.DirtyCount() != 1 {
		t.Fatalf("dirty = %d", r.DirtyCount())
	}
	rep := r.SetConnected(true)
	if rep.Propagated != 1 || rep.Conflicts != 0 {
		t.Errorf("report = %+v, want 1 propagated", rep)
	}
	if r.ServerVersion(f.ID) != 2 {
		t.Errorf("server version = %d, want 2", r.ServerVersion(f.ID))
	}
	if r.DirtyCount() != 0 {
		t.Error("still dirty after reconcile")
	}
}

func TestConflictDetection(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	r.Fetch(f.ID)
	r.SetConnected(false)
	r.WriteLocal(f.ID)
	// Another replica updates the master meanwhile.
	if err := r.ServerUpdate(f.ID); err != nil {
		t.Fatal(err)
	}
	rep := r.SetConnected(true)
	if rep.Conflicts != 1 || rep.Propagated != 0 {
		t.Errorf("report = %+v, want 1 conflict", rep)
	}
	// Default policy keeps the server version.
	if r.ServerVersion(f.ID) != 2 {
		t.Errorf("server version = %d, want 2 (server wins)", r.ServerVersion(f.ID))
	}
}

func TestConflictKeepLocal(t *testing.T) {
	r, fs := newRumor()
	r.KeepLocalOnConflict = true
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	r.Fetch(f.ID)
	r.SetConnected(false)
	r.WriteLocal(f.ID)
	r.ServerUpdate(f.ID)
	rep := r.SetConnected(true)
	if rep.Conflicts != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if r.ServerVersion(f.ID) != 3 {
		t.Errorf("server version = %d, want 3 (local pushed over)", r.ServerVersion(f.ID))
	}
}

func TestDisconnectedCreation(t *testing.T) {
	r, fs := newRumor()
	r.SetConnected(false)
	f := fs.Create("/new", simfs.Regular, 10, 1)
	r.WriteLocal(f.ID)
	rep := r.SetConnected(true)
	if rep.Propagated != 1 {
		t.Errorf("report = %+v, want created file propagated", rep)
	}
	if r.ServerVersion(f.ID) != 1 {
		t.Errorf("server version = %d, want 1", r.ServerVersion(f.ID))
	}
}

func TestConnectedCreationPropagatesImmediately(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/new", simfs.Regular, 10, 1)
	r.WriteLocal(f.ID)
	if r.ServerVersion(f.ID) != 1 {
		t.Errorf("server version = %d, want immediate propagation", r.ServerVersion(f.ID))
	}
	if r.DirtyCount() != 0 {
		t.Error("connected creation left dirty state")
	}
}

func TestEvictDirtyDeferred(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	r.Fetch(f.ID)
	r.SetConnected(false)
	r.WriteLocal(f.ID)
	r.Evict(f.ID)
	if !r.HasLocal(f.ID) {
		t.Fatal("dirty file evicted immediately — local work lost")
	}
	rep := r.SetConnected(true)
	if rep.Propagated != 1 || rep.Evicted != 1 {
		t.Errorf("report = %+v, want propagate then evict", rep)
	}
	if r.HasLocal(f.ID) {
		t.Error("deferred eviction did not complete")
	}
}

func TestEvictClean(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	r.Fetch(f.ID)
	r.Evict(f.ID)
	if r.HasLocal(f.ID) {
		t.Error("clean eviction failed")
	}
	r.Evict(f.ID) // double evict: no-op
}

func TestRefreshStaleOnReconnect(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	r.Fetch(f.ID)
	r.SetConnected(false)
	r.ServerUpdate(f.ID)
	rep := r.SetConnected(true)
	if rep.Refreshed != 1 {
		t.Errorf("report = %+v, want 1 refreshed", rep)
	}
}

func TestSetConnectedIdempotent(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	r.Fetch(f.ID)
	r.SetConnected(false)
	r.WriteLocal(f.ID)
	// Repeated connect-while-connected must not re-reconcile.
	rep := r.SetConnected(true)
	if rep.Propagated != 1 {
		t.Fatalf("first reconcile = %+v", rep)
	}
	rep = r.SetConnected(true)
	if rep.Propagated != 0 {
		t.Errorf("second reconcile = %+v, want empty", rep)
	}
}

func TestSync(t *testing.T) {
	r, fs := newRumor()
	a := fs.Create("/a", simfs.Regular, 10, 1)
	b := fs.Create("/b", simfs.Regular, 10, 2)
	c := fs.Create("/c", simfs.Regular, 10, 3)
	r.ServerCreate(a.ID)
	r.ServerCreate(b.ID)
	r.Fetch(c.ID) // will fail inside Sync below instead
	failed := r.Sync([]simfs.FileID{a.ID, b.ID, c.ID}, nil)
	if failed != 1 {
		t.Errorf("failed = %d, want 1 (unreplicated /c)", failed)
	}
	if !r.HasLocal(a.ID) || !r.HasLocal(b.ID) {
		t.Error("sync did not fetch")
	}
	failed = r.Sync(nil, []simfs.FileID{a.ID})
	if failed != 0 || r.HasLocal(a.ID) {
		t.Error("sync did not evict")
	}
	if r.LocalCount() != 1 {
		t.Errorf("local count = %d, want 1", r.LocalCount())
	}
}

func TestAccessResultString(t *testing.T) {
	for r, want := range map[AccessResult]string{
		AccessLocal: "local", AccessRemote: "remote",
		AccessMiss: "miss", AccessUnknown: "unknown",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestLinkTransferTime(t *testing.T) {
	// 1 MB over a 28.8k modem: ~291 seconds of transfer plus latency.
	d := Modem28k.TransferTime(1<<20, 10)
	if d < 280*time.Second || d > 310*time.Second {
		t.Errorf("modem transfer = %v, want ≈291s", d)
	}
	// The same megabyte over broadband is under a second of transfer.
	if d := Broadband.TransferTime(1<<20, 10); d > time.Second {
		t.Errorf("broadband transfer = %v", d)
	}
	if (Link{}).TransferTime(1<<20, 1) != 0 {
		t.Error("zero-bandwidth link should report 0")
	}
	// Many small files are latency-dominated.
	few := ISDN.TransferTime(100_000, 1)
	many := ISDN.TransferTime(100_000, 500)
	if many-few < 20*time.Second {
		t.Errorf("latency domination missing: %v vs %v", few, many)
	}
}

func TestEstimateSync(t *testing.T) {
	r, fs := newRumor()
	a := fs.Create("/a", simfs.Regular, 1000, 1)
	b := fs.Create("/b", simfs.Regular, 2000, 2)
	fs.Create("/gone", simfs.Regular, 500, 3)
	fs.Remove("/gone")
	gone := fs.Lookup("/gone")
	est := EstimateSync(fs, []simfs.FileID{a.ID, b.ID, gone.ID, 9999}, ISDN)
	if est.Files != 2 || est.Bytes != 3000 {
		t.Errorf("estimate = %+v, want 2 files 3000 bytes", est)
	}
	if est.Duration <= 0 {
		t.Error("no duration estimated")
	}
	_ = r
}

// Regression: a WriteLocal on an already-replicated file while
// connected must push through immediately — before the fix it stayed
// dirty until the next disconnect/reconnect cycle even though the
// substrate was reachable the whole time.
func TestConnectedWritePropagatesImmediately(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	if err := r.Fetch(f.ID); err != nil {
		t.Fatal(err)
	}
	r.WriteLocal(f.ID)
	if n := r.DirtyCount(); n != 0 {
		t.Fatalf("connected update left DirtyCount = %d, want 0 (not pushed)", n)
	}
	if v := r.ServerVersion(f.ID); v != 2 {
		t.Errorf("server version after connected update = %d, want 2", v)
	}
	if got := r.Totals(); got.Propagated != 1 {
		t.Errorf("Totals().Propagated = %d, want 1", got.Propagated)
	}
	// A reconnect cycle finds nothing left to do.
	r.SetConnected(false)
	if rep := r.SetConnected(true); rep != (ReconcileReport{}) {
		t.Errorf("reconcile after connected write = %+v, want zero", rep)
	}
}

func TestConnectedWriteConflict(t *testing.T) {
	// Another replica advanced the server while the laptop held a
	// hoarded copy: a connected write over the stale base is a conflict,
	// resolved by the same policy reconciliation uses.
	r, fs := newRumor()
	f := fs.Create("/a", simfs.Regular, 10, 1)
	r.ServerCreate(f.ID)
	if err := r.Fetch(f.ID); err != nil { // base 1
		t.Fatal(err)
	}
	if err := r.ServerUpdate(f.ID); err != nil { // now 2
		t.Fatal(err)
	}
	r.WriteLocal(f.ID)
	if n := r.DirtyCount(); n != 0 {
		t.Fatalf("DirtyCount = %d, want 0", n)
	}
	if got := r.Totals().Conflicts; got != 1 {
		t.Errorf("Totals().Conflicts = %d, want 1", got)
	}
	// Default policy keeps the server version: no push, base adopted.
	if v := r.ServerVersion(f.ID); v != 2 {
		t.Errorf("server version = %d, want 2 (server copy kept)", v)
	}

	r2, fs2 := newRumor()
	r2.KeepLocalOnConflict = true
	g := fs2.Create("/b", simfs.Regular, 10, 1)
	r2.ServerCreate(g.ID)
	if err := r2.Fetch(g.ID); err != nil {
		t.Fatal(err)
	}
	if err := r2.ServerUpdate(g.ID); err != nil {
		t.Fatal(err)
	}
	r2.WriteLocal(g.ID)
	if v := r2.ServerVersion(g.ID); v != 3 {
		t.Errorf("keep-local conflict server version = %d, want 3 (pushed over)", v)
	}
}

func TestConnectedCreateRegistersOnServer(t *testing.T) {
	r, fs := newRumor()
	f := fs.Create("/new", simfs.Regular, 10, 1)
	r.WriteLocal(f.ID) // local creation while connected
	if v := r.ServerVersion(f.ID); v != 1 {
		t.Errorf("server version after connected create = %d, want 1", v)
	}
	if n := r.DirtyCount(); n != 0 {
		t.Errorf("DirtyCount = %d, want 0", n)
	}
}
