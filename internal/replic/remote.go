package replic

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fmg/seer/internal/obs"
	"github.com/fmg/seer/internal/simfs"
)

// ErrUnavailable wraps transport-level failures talking to the master:
// connection refused, a partition, a 5xx, a corrupt response frame. It
// is transient — retry policies treat it as retryable, unlike
// ErrNotReplicated which is a definitive master answer.
var ErrUnavailable = errors.New("replic: master unreachable")

// RemoteRumor is the laptop side of the networked CheapRumor substrate:
// a Replicator whose authoritative state lives in a Master reached over
// HTTP. Local replica state (dirty flags, base versions, deferred
// evictions) is identical to the in-memory CheapRumor's, and every
// reconciliation decision is made by the master with the same rules, so
// the two implementations converge to the same hoard contents and
// conflict counts — the chaos suite asserts exactly that.
//
// Network discipline: hoard fills go through SyncBatch (one /fetch
// round trip for the whole diff, not one per file), and reconnection
// reconciliation is a single /reconcile round trip carrying every dirty
// and clean file. Connected writes push through immediately (/push);
// if the push fails the update simply stays dirty and the next
// reconciliation retries it — a dirty update is never dropped.
//
// Failure handling: every round trip returns an error wrapping
// ErrUnavailable on transport failure. The optional Retry hook wraps
// each round trip (wire hoard.RetryPolicy.Do into it for exponential
// backoff); a reconnect whose reconciliation still fails after retries
// leaves the client disconnected so a later SetConnected(true) runs a
// full reconciliation again. RemoteRumor is safe for concurrent use.
type RemoteRumor struct {
	// KeepLocalOnConflict mirrors CheapRumor's conflict policy: true
	// pushes the local version over a conflicting master copy.
	KeepLocalOnConflict bool
	// Retry, when non-nil, wraps every network round trip; it should
	// invoke its argument until nil or give up (hoard.RetryPolicy.Do
	// fits). Nil means single-attempt.
	Retry func(op func() error) error

	baseURL string
	hc      *http.Client

	mu        sync.Mutex
	local     map[simfs.FileID]*replica
	known     map[simfs.FileID]bool // ids the master has confirmed replicated
	connected bool
	totals    ReconcileReport

	// Optional instruments (nil until InstrumentOn); obs instruments are
	// nil-safe, so the hot paths record unconditionally.
	mRTT         *obs.Histogram
	mErrs        *obs.Counter
	mRetries     *obs.Counter
	mReconnects  *obs.Counter
	mDisconnects *obs.Counter

	// tracer (nil until TraceOn) records one client span per round trip
	// and injects the traceparent header so the master's server spans
	// stitch into the same trace.
	tracer *obs.Tracer
}

var _ Replicator = (*RemoteRumor)(nil)
var _ BatchSyncer = (*RemoteRumor)(nil)

// NewRemoteRumor returns a connected client for the master mounted at
// baseURL (e.g. "http://host:7078/rumor"). client nil means
// http.DefaultClient.
func NewRemoteRumor(baseURL string, client *http.Client) *RemoteRumor {
	if client == nil {
		client = http.DefaultClient
	}
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	return &RemoteRumor{
		baseURL:   baseURL,
		hc:        client,
		local:     make(map[simfs.FileID]*replica),
		known:     make(map[simfs.FileID]bool),
		connected: true,
	}
}

// InstrumentOn registers the client's replication instruments on reg:
// round-trip latency, transport errors, Retry-hook re-attempts,
// partition/reconnect transitions, and the dirty-replica depth (a
// scrape-time gauge over DirtyCount). Call it once, before the client
// carries traffic; it returns r for chaining.
func (r *RemoteRumor) InstrumentOn(reg *obs.Registry) *RemoteRumor {
	r.mRTT = reg.Histogram("seer_replication_rtt_seconds",
		"Round-trip time of master protocol requests.", nil)
	r.mErrs = reg.Counter("seer_replication_errors_total",
		"Master round trips that failed (transport, status, or frame).")
	r.mRetries = reg.Counter("seer_replication_retries_total",
		"Round trips re-attempted by the Retry hook after a failure.")
	r.mReconnects = reg.Counter("seer_replication_reconnects_total",
		"Disconnected-to-connected transitions that reconciled successfully.")
	r.mDisconnects = reg.Counter("seer_replication_disconnects_total",
		"Connected-to-disconnected transitions (deliberate or reconcile failure).")
	reg.GaugeFunc("seer_replication_dirty_files",
		"Local updates not yet propagated to the master.",
		func() float64 { return float64(r.DirtyCount()) })
	r.mRTT.RetainExemplars(r.tracer)
	return r
}

// TraceOn attaches a tracer: every round trip made under a traced
// context records a client span and carries the traceparent header, so
// the master's half of the hop lands in the same trace. Call order
// with InstrumentOn does not matter; it returns r for chaining.
func (r *RemoteRumor) TraceOn(t *obs.Tracer) *RemoteRumor {
	r.tracer = t
	r.mRTT.RetainExemplars(t)
	return r
}

// RTTHist returns the round-trip latency histogram (nil before
// InstrumentOn) — the rumor-sync SLO's latency source.
func (r *RemoteRumor) RTTHist() *obs.Histogram { return r.mRTT }

// ErrorCount returns the cumulative failed round trips — the rumor-sync
// SLO's error source (obs counters are nil-safe).
func (r *RemoteRumor) ErrorCount() uint64 { return r.mErrs.Value() }

// retry applies the configured retry hook around one round trip,
// counting every re-attempt beyond the first so any hook (a
// hoard.RetryPolicy, a test stub) is measured without knowing about
// the registry.
func (r *RemoteRumor) retry(op func() error) error {
	if r.Retry == nil {
		return op()
	}
	attempts := 0
	return r.Retry(func() error {
		attempts++
		if attempts > 1 {
			r.mRetries.Inc()
		}
		return op()
	})
}

// post performs one protocol round trip and hands the response body to
// decode. Transport failures, non-200 statuses, and frame corruption
// all come back wrapping ErrUnavailable. sc, when valid, parents a
// client span over the round trip and rides the wire as traceparent.
func (r *RemoteRumor) post(sc obs.SpanContext, path string, body []byte, decode func(io.Reader) error) error {
	sp := r.tracer.StartChild(sc, "rumor:"+strings.TrimPrefix(path, "/"))
	start := time.Now()
	err := r.postOnce(sp.Context(), path, body, decode)
	r.mRTT.ObserveTrace(time.Since(start).Seconds(), sc.Trace)
	if err != nil {
		r.mErrs.Inc()
		sp.Attr("outcome", "error")
	}
	sp.End()
	return err
}

func (r *RemoteRumor) postOnce(sc obs.SpanContext, path string, body []byte, decode func(io.Reader) error) error {
	req, err := http.NewRequest(http.MethodPost, r.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrUnavailable, path, err)
	}
	req.Header.Set("Content-Type", "application/x-seer-rumor")
	obs.Inject(req.Header, sc)
	resp, err := r.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrUnavailable, path, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: %s: http %d", ErrUnavailable, path, resp.StatusCode)
	}
	if err := decode(resp.Body); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrUnavailable, path, err)
	}
	return nil
}

// Connected implements Replicator.
func (r *RemoteRumor) Connected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.connected
}

// ensureLocked returns the replica record for id, creating it.
func (r *RemoteRumor) ensureLocked(id simfs.FileID) *replica {
	rep := r.local[id]
	if rep == nil {
		rep = &replica{}
		r.local[id] = rep
	}
	return rep
}

// applyFetchLocked records a successful fetch of id at master version v
// (CheapRumor.Fetch's state transition).
func (r *RemoteRumor) applyFetchLocked(id simfs.FileID, v uint64) {
	rep := r.ensureLocked(id)
	if !rep.dirty {
		rep.baseVersion = v
	}
	rep.evictWanted = false
	r.known[id] = true
}

// Fetch implements Replicator: one /version round trip, retried per the
// policy; a master that answers "not replicated" is permanent.
func (r *RemoteRumor) Fetch(id simfs.FileID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.connected {
		return ErrDisconnected
	}
	req, err := encodeID(id)
	if err != nil {
		return err
	}
	var info VersionInfo
	err = r.retry(func() error {
		return r.post(obs.SpanContext{}, "/version", req, func(body io.Reader) error {
			var derr error
			info, derr = decodeVersionResp(body)
			return derr
		})
	})
	if err != nil {
		return err
	}
	if !info.Found {
		return ErrNotReplicated
	}
	r.applyFetchLocked(id, info.Version)
	return nil
}

// SyncBatch implements BatchSyncer: the whole fetch list goes to the
// master in one /fetch round trip; evictions are local. failed lists
// the files the master does not replicate; err is a transport failure
// (retryable — no state changed).
func (r *RemoteRumor) SyncBatch(fetch, evict []simfs.FileID) (failed []simfs.FileID, err error) {
	return r.syncBatch(obs.SpanContext{}, fetch, evict)
}

// SyncBatchCtx is SyncBatch carrying the caller's trace context: the
// /fetch round trip records a client span parented on ctx's span, so a
// hoard fill triggered by a traced request shows up inside that trace.
func (r *RemoteRumor) SyncBatchCtx(ctx context.Context, fetch, evict []simfs.FileID) (failed []simfs.FileID, err error) {
	sc, _ := obs.SpanFromContext(ctx)
	return r.syncBatch(sc, fetch, evict)
}

func (r *RemoteRumor) syncBatch(sc obs.SpanContext, fetch, evict []simfs.FileID) (failed []simfs.FileID, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.connected {
		return nil, ErrDisconnected
	}
	if len(fetch) > 0 {
		req, eerr := encodeIDList(fetch)
		if eerr != nil {
			return nil, eerr
		}
		var infos []VersionInfo
		err = r.retry(func() error {
			return r.post(sc, "/fetch", req, func(body io.Reader) error {
				var derr error
				infos, derr = decodeFetchResp(body)
				return derr
			})
		})
		if err != nil {
			return nil, err
		}
		if len(infos) != len(fetch) {
			return nil, fmt.Errorf("%w: /fetch: %d answers for %d files",
				ErrUnavailable, len(infos), len(fetch))
		}
		for _, info := range infos {
			if !info.Found {
				failed = append(failed, info.ID)
				continue
			}
			r.applyFetchLocked(info.ID, info.Version)
		}
	}
	for _, id := range evict {
		r.evictLocked(id)
	}
	return failed, nil
}

// Sync mirrors CheapRumor.Sync's signature: apply a hoard-fill diff,
// returning the number of files that could not be fetched. A transport
// failure that outlasts the retry policy counts the whole fetch list.
func (r *RemoteRumor) Sync(fetch, evict []simfs.FileID) (failedN int) {
	failed, err := r.SyncBatch(fetch, evict)
	if err != nil {
		// Evictions are local; honor them even when the master is
		// unreachable so the hoard does not leak space.
		r.mu.Lock()
		for _, id := range evict {
			r.evictLocked(id)
		}
		r.mu.Unlock()
		return len(fetch)
	}
	return len(failed)
}

// evictLocked is Evict's body (CheapRumor semantics: dirty files defer).
func (r *RemoteRumor) evictLocked(id simfs.FileID) {
	rep := r.local[id]
	if rep == nil {
		return
	}
	if rep.dirty {
		rep.evictWanted = true
		return
	}
	delete(r.local, id)
}

// Evict implements Replicator.
func (r *RemoteRumor) Evict(id simfs.FileID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evictLocked(id)
}

// HasLocal implements Replicator.
func (r *RemoteRumor) HasLocal(id simfs.FileID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.local[id] != nil
}

// Access implements Replicator. While connected the master is asked
// whether the file exists (AccessRemote vs AccessUnknown). While
// disconnected — or when the master cannot be reached — the client
// falls back to what it has learned: a file the master ever confirmed
// is a miss; a file never seen anywhere is unknown.
func (r *RemoteRumor) Access(id simfs.FileID) AccessResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.local[id] != nil {
		return AccessLocal
	}
	if r.connected {
		if req, err := encodeID(id); err == nil {
			var info VersionInfo
			err := r.retry(func() error {
				return r.post(obs.SpanContext{}, "/version", req, func(body io.Reader) error {
					var derr error
					info, derr = decodeVersionResp(body)
					return derr
				})
			})
			if err == nil {
				if info.Found {
					r.known[id] = true
					return AccessRemote
				}
				return AccessUnknown
			}
		}
	}
	if r.known[id] {
		return AccessMiss
	}
	return AccessUnknown
}

// WriteLocal records a local modification. While connected the update
// pushes through to the master immediately (create or update), so
// DirtyCount stays zero online; a failed push leaves the file dirty for
// the next reconciliation instead of losing the update.
func (r *RemoteRumor) WriteLocal(id simfs.FileID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := r.ensureLocked(id)
	rep.dirty = true
	if !r.connected {
		return
	}
	req, err := encodePushReq(id, rep.baseVersion, r.KeepLocalOnConflict)
	if err != nil {
		return
	}
	var res PushResult
	err = r.retry(func() error {
		return r.post(obs.SpanContext{}, "/push", req, func(body io.Reader) error {
			var derr error
			res, derr = decodePushResp(body)
			return derr
		})
	})
	if err != nil {
		return // still dirty; reconciliation will retry
	}
	rep.baseVersion = res.Version
	rep.dirty = false
	r.known[id] = true
	if res.Outcome == PushConflict {
		r.totals.Conflicts++
	} else {
		r.totals.Propagated++
	}
}

// DirtyCount returns the number of unpropagated local updates.
func (r *RemoteRumor) DirtyCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rep := range r.local {
		if rep.dirty {
			n++
		}
	}
	return n
}

// LocalCount returns the number of locally stored files.
func (r *RemoteRumor) LocalCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.local)
}

// LocalIDs returns the sorted ids of locally stored files.
func (r *RemoteRumor) LocalIDs() []simfs.FileID {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]simfs.FileID, 0, len(r.local))
	for id := range r.local {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Totals returns the cumulative reconciliation outcomes, including
// connected write-through pushes.
func (r *RemoteRumor) Totals() ReconcileReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totals
}

// SetConnected implements Replicator. Reconnecting runs a batched
// reconciliation; if the master cannot be reached even after retries
// the client stays disconnected (and reports nothing), so a later
// SetConnected(true) reconciles from scratch — dirty state is held, not
// dropped.
func (r *RemoteRumor) SetConnected(up bool) ReconcileReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	wasUp := r.connected
	r.connected = up
	if wasUp && !up {
		r.mDisconnects.Inc()
	}
	if !up || wasUp {
		return ReconcileReport{}
	}
	rep, err := r.reconcileLocked()
	if err != nil {
		r.connected = false
		r.mDisconnects.Inc()
		return ReconcileReport{}
	}
	r.mReconnects.Inc()
	return rep
}

// Reconcile runs a reconciliation round trip on demand while connected
// — flushing updates whose connected push failed transiently — and
// returns the outcome. It is SetConnected(true)'s working half.
func (r *RemoteRumor) Reconcile() (ReconcileReport, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.connected {
		return ReconcileReport{}, ErrDisconnected
	}
	return r.reconcileLocked()
}

func (r *RemoteRumor) reconcileLocked() (ReconcileReport, error) {
	req := ReconcileRequest{KeepLocal: r.KeepLocalOnConflict}
	for id, rep := range r.local {
		e := BaseEntry{ID: id, Base: rep.baseVersion}
		if rep.dirty {
			req.Dirty = append(req.Dirty, e)
		} else {
			req.Clean = append(req.Clean, e)
		}
	}
	// Deterministic request layout (map order is random).
	sort.Slice(req.Dirty, func(i, j int) bool { return req.Dirty[i].ID < req.Dirty[j].ID })
	sort.Slice(req.Clean, func(i, j int) bool { return req.Clean[i].ID < req.Clean[j].ID })

	body, err := encodeReconcileReq(req)
	if err != nil {
		return ReconcileReport{}, err
	}
	var resp ReconcileResponse
	err = r.retry(func() error {
		return r.post(obs.SpanContext{}, "/reconcile", body, func(rd io.Reader) error {
			var derr error
			resp, derr = decodeReconcileResp(rd)
			return derr
		})
	})
	if err != nil {
		return ReconcileReport{}, err
	}
	if len(resp.Dirty) != len(req.Dirty) || len(resp.Clean) != len(req.Clean) {
		return ReconcileReport{}, fmt.Errorf("%w: /reconcile: misaligned response", ErrUnavailable)
	}

	var report ReconcileReport
	for i, res := range resp.Dirty {
		id := req.Dirty[i].ID
		rep := r.local[id]
		if rep == nil {
			continue
		}
		rep.baseVersion = res.Version
		rep.dirty = false
		r.known[id] = true
		if res.Outcome == PushConflict {
			report.Conflicts++
		} else {
			report.Propagated++
		}
	}
	for i, info := range resp.Clean {
		id := req.Clean[i].ID
		rep := r.local[id]
		if rep == nil || !info.Found {
			continue
		}
		r.known[id] = true
		if info.Version != rep.baseVersion {
			rep.baseVersion = info.Version
			report.Refreshed++
		}
	}
	for id, rep := range r.local {
		if rep.evictWanted && !rep.dirty {
			delete(r.local, id)
			report.Evicted++
		}
	}
	r.totals.merge(report)
	return report, nil
}
