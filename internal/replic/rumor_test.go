package replic

import (
	"testing"
	"testing/quick"

	"github.com/fmg/seer/internal/simfs"
)

func TestVersionVectorCompare(t *testing.T) {
	cases := []struct {
		name string
		a, b VersionVector
		want Ordering
	}{
		{"equal empty", VersionVector{}, VersionVector{}, Equal},
		{"equal", VersionVector{1: 2}, VersionVector{1: 2}, Equal},
		{"before", VersionVector{1: 1}, VersionVector{1: 2}, Before},
		{"after", VersionVector{1: 2, 2: 1}, VersionVector{1: 2}, After},
		{"concurrent", VersionVector{1: 2}, VersionVector{2: 1}, Concurrent},
		{"concurrent mixed", VersionVector{1: 2, 2: 1}, VersionVector{1: 1, 2: 2}, Concurrent},
		{"missing is zero", VersionVector{}, VersionVector{5: 1}, Before},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%s: Compare = %v, want %v", c.name, got, c.want)
		}
		// Antisymmetry.
		rev := c.b.Compare(c.a)
		switch c.want {
		case Before:
			if rev != After {
				t.Errorf("%s: reverse = %v, want after", c.name, rev)
			}
		case After:
			if rev != Before {
				t.Errorf("%s: reverse = %v, want before", c.name, rev)
			}
		default:
			if rev != c.want {
				t.Errorf("%s: reverse = %v, want %v", c.name, rev, c.want)
			}
		}
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Before: "before", Equal: "equal", After: "after", Concurrent: "concurrent",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}

func TestCreateUpdatePropagate(t *testing.T) {
	server := NewReplica(1, true)
	laptop := NewReplica(2, true)
	f := simfs.FileID(10)
	server.Create(f)
	Sync(laptop, server)
	if !laptop.Has(f) {
		t.Fatal("create did not propagate")
	}
	if !SameContent(server, laptop, f) {
		t.Fatal("contents differ after sync")
	}
	// Disconnected update on the laptop.
	if !laptop.Update(f) {
		t.Fatal("update failed")
	}
	if SameContent(server, laptop, f) {
		t.Fatal("contents equal before reconcile")
	}
	rep := server.ReconcileFrom(laptop)
	if rep.Pulled != 1 || rep.Conflicts != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if !SameContent(server, laptop, f) {
		t.Fatal("contents differ after reconcile")
	}
}

func TestConcurrentUpdateConflictConverges(t *testing.T) {
	a := NewReplica(1, true)
	b := NewReplica(2, true)
	f := simfs.FileID(1)
	a.Create(f)
	Sync(a, b)
	// Both update independently.
	a.Update(f)
	b.Update(f)
	ra, rb := Sync(a, b)
	if ra.Conflicts+rb.Conflicts == 0 {
		t.Fatal("concurrent updates not detected as conflict")
	}
	// One more round settles the resolution everywhere.
	Sync(a, b)
	if !SameContent(a, b, f) {
		t.Fatal("replicas did not converge after conflict resolution")
	}
	if a.Version(f).Compare(b.Version(f)) != Equal {
		t.Fatalf("version vectors differ: %v vs %v", a.Version(f), b.Version(f))
	}
}

func TestDeletePropagatesAsTombstone(t *testing.T) {
	a := NewReplica(1, true)
	b := NewReplica(2, true)
	f := simfs.FileID(1)
	a.Create(f)
	Sync(a, b)
	if !a.Delete(f) {
		t.Fatal("delete failed")
	}
	if a.Delete(f) {
		t.Fatal("double delete succeeded")
	}
	rep := b.ReconcileFrom(a)
	if rep.Deleted != 1 {
		t.Fatalf("report = %+v, want 1 deletion", rep)
	}
	if b.Has(f) {
		t.Fatal("deleted file still present at peer")
	}
	// The tombstone must not resurrect via the other direction.
	rep = a.ReconcileFrom(b)
	if a.Has(f) {
		t.Fatal("tombstone resurrected")
	}
	_ = rep
}

func TestConcurrentUpdateVsDelete(t *testing.T) {
	a := NewReplica(1, true)
	b := NewReplica(2, true)
	f := simfs.FileID(1)
	a.Create(f)
	Sync(a, b)
	a.Delete(f)
	b.Update(f) // concurrent interest in the file
	Sync(a, b)
	Sync(a, b)
	// The update wins: deletion loses to concurrent modification.
	if !a.Has(f) || !b.Has(f) {
		t.Fatal("concurrent update did not survive the delete")
	}
	if !SameContent(a, b, f) {
		t.Fatal("replicas diverged")
	}
}

func TestHoardSubsetReplica(t *testing.T) {
	server := NewReplica(1, true)
	laptop := NewReplica(2, false)
	f1, f2 := simfs.FileID(1), simfs.FileID(2)
	server.Create(f1)
	server.Create(f2)
	laptop.SetHoard([]simfs.FileID{f1})
	rep := laptop.ReconcileFrom(server)
	if rep.Created != 1 || rep.Skipped != 1 {
		t.Fatalf("report = %+v, want 1 created 1 skipped", rep)
	}
	if !laptop.Has(f1) || laptop.Has(f2) {
		t.Fatal("hoard subset not respected")
	}
	// Shrinking the hoard evicts local copies.
	laptop.SetHoard(nil)
	if laptop.Has(f1) {
		t.Fatal("eviction on hoard change failed")
	}
	if !server.Has(f1) {
		t.Fatal("server lost the file")
	}
}

func TestThreeReplicaGossipConvergence(t *testing.T) {
	a := NewReplica(1, true)
	b := NewReplica(2, true)
	c := NewReplica(3, true)
	files := []simfs.FileID{1, 2, 3, 4}
	a.Create(files[0])
	b.Create(files[1])
	c.Create(files[2])
	a.Create(files[3])
	// Gossip ring: a↔b, b↔c, then a↔b again closes the loop.
	Sync(a, b)
	Sync(b, c)
	Sync(a, b)
	Sync(b, c)
	for _, f := range files {
		if !a.Has(f) || !b.Has(f) || !c.Has(f) {
			t.Fatalf("file %d did not reach every replica", f)
		}
		if !SameContent(a, b, f) || !SameContent(b, c, f) {
			t.Fatalf("file %d content diverged", f)
		}
	}
	if a.Len() != 4 || c.Len() != 4 {
		t.Fatalf("replica lengths %d/%d, want 4", a.Len(), c.Len())
	}
}

// Property: for any interleaving of updates at two replicas followed by
// repeated syncs, the replicas converge to identical content.
func TestRumorConvergenceQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		a := NewReplica(1, true)
		b := NewReplica(2, true)
		ids := []simfs.FileID{1, 2, 3}
		for _, id := range ids {
			a.Create(id)
		}
		Sync(a, b)
		for _, op := range ops {
			r := a
			if op&1 == 1 {
				r = b
			}
			id := ids[int(op>>1)%len(ids)]
			switch (op >> 4) % 3 {
			case 0:
				r.Update(id)
			case 1:
				r.Delete(id)
			case 2:
				if !r.Has(id) {
					r.Create(id)
				}
			}
			if op%7 == 0 {
				Sync(a, b)
			}
		}
		// Sync until stable (two full rounds suffice: resolution then
		// propagation).
		Sync(a, b)
		Sync(a, b)
		for _, id := range ids {
			if !SameContent(a, b, id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVersionOfAbsentFile(t *testing.T) {
	r := NewReplica(1, true)
	if r.Version(99) != nil {
		t.Error("absent file has a version")
	}
	if r.Update(99) {
		t.Error("update of absent file succeeded")
	}
	if r.Delete(99) {
		t.Error("delete of absent file succeeded")
	}
}

func TestSyncReportTotal(t *testing.T) {
	s := SyncReport{Pulled: 1, Created: 2, Deleted: 3, Conflicts: 4}
	if s.Total() != 6 {
		t.Errorf("Total = %d, want 6", s.Total())
	}
}
