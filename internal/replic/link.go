package replic

import (
	"time"

	"github.com/fmg/seer/internal/simfs"
)

// Link models the network connection a hoard fill must traverse. The
// paper's setting (§1) is a laptop that is "significantly restricted by
// battery power, bandwidth, or cost"; whether a pre-disconnection fill
// is practical depends on how long it holds the link.
type Link struct {
	// Bandwidth in bytes per second.
	Bandwidth int64
	// Latency is the per-file round-trip overhead (request + metadata).
	Latency time.Duration
}

// Common link presets of the paper's era and later.
var (
	// Modem28k is a 28.8 kbit/s dial-up modem, the mobile norm in 1997.
	Modem28k = Link{Bandwidth: 28800 / 8, Latency: 150 * time.Millisecond}
	// ISDN is a 128 kbit/s ISDN line.
	ISDN = Link{Bandwidth: 128000 / 8, Latency: 50 * time.Millisecond}
	// Ethernet10 is 10 Mbit/s office Ethernet.
	Ethernet10 = Link{Bandwidth: 10_000_000 / 8, Latency: 2 * time.Millisecond}
	// Broadband is a 100 Mbit/s connection.
	Broadband = Link{Bandwidth: 100_000_000 / 8, Latency: time.Millisecond}
)

// TransferTime estimates moving totalBytes across the link in nFiles
// pieces.
func (l Link) TransferTime(totalBytes int64, nFiles int) time.Duration {
	if l.Bandwidth <= 0 {
		return 0
	}
	transfer := time.Duration(float64(totalBytes) / float64(l.Bandwidth) * float64(time.Second))
	return transfer + time.Duration(nFiles)*l.Latency
}

// FetchEstimate describes the cost of a planned hoard synchronization.
type FetchEstimate struct {
	Files    int
	Bytes    int64
	Duration time.Duration
}

// EstimateSync sizes a fetch list against the file table and link.
func EstimateSync(fs *simfs.FS, fetch []simfs.FileID, link Link) FetchEstimate {
	var est FetchEstimate
	for _, id := range fetch {
		f := fs.Get(id)
		if f == nil || !f.Exists {
			continue
		}
		est.Files++
		est.Bytes += f.Size
	}
	est.Duration = link.TransferTime(est.Bytes, est.Files)
	return est
}
