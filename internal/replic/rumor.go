package replic

import (
	"fmt"
	"sort"

	"github.com/fmg/seer/internal/simfs"
)

// Rumor is a peer-to-peer, reconciliation-based optimistic replication
// service modeled on RUMOR, the system SEER primarily ran atop (paper
// §2; Guy et al., Reiher et al.). Unlike the master–slave CheapRumor,
// every replica may be updated independently; pairs of replicas
// reconcile opportunistically, exchanging updates and detecting
// concurrent-update conflicts with per-file version vectors.
//
// SEER needs only the Replicator contract from it; the peer-to-peer
// machinery below exists so that laptop↔laptop synchronization (the
// paper's nomadic-computing setting) can be exercised realistically.

// ReplicaID identifies one replica site.
type ReplicaID int

// VersionVector is the standard optimistic-replication clock: one
// counter per replica that has ever updated the file.
type VersionVector map[ReplicaID]uint64

// Copy returns an independent copy of v.
func (v VersionVector) Copy() VersionVector {
	out := make(VersionVector, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Compare returns the causal relation of v to w: -1 if v dominates w
// is false and w dominates v (v happened before w), +1 for the reverse,
// 0 if equal, and Concurrent for conflicting histories.
func (v VersionVector) Compare(w VersionVector) Ordering {
	vLess, wLess := false, false
	for k, n := range v {
		if n > w[k] {
			wLess = true
		}
	}
	for k, n := range w {
		if n > v[k] {
			vLess = true
		}
	}
	switch {
	case vLess && wLess:
		return Concurrent
	case wLess:
		return After
	case vLess:
		return Before
	}
	return Equal
}

// Ordering is the result of a version-vector comparison.
type Ordering int

// The orderings.
const (
	Before     Ordering = -1
	Equal      Ordering = 0
	After      Ordering = 1
	Concurrent Ordering = 2
)

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case Before:
		return "before"
	case Equal:
		return "equal"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	}
	return fmt.Sprintf("ordering(%d)", int(o))
}

// rumorFile is one file's state at one replica.
type rumorFile struct {
	vv VersionVector
	// data is an opaque version tag standing in for content; equal tags
	// mean identical content.
	data uint64
	// deleted is a tombstone (RUMOR keeps tombstones so deletions
	// propagate rather than resurrect).
	deleted bool
}

// Replica is one site in a Rumor network.
type Replica struct {
	ID ReplicaID
	// files holds only locally stored files (a laptop hoards a subset;
	// a server typically stores everything).
	files map[simfs.FileID]*rumorFile
	// full marks a replica that stores every file it hears about (a
	// server); non-full replicas only accept files they hoard.
	full    bool
	hoarded map[simfs.FileID]bool
	nextTag uint64
}

// NewReplica returns an empty replica. full replicas (servers) accept
// every file during reconciliation; non-full replicas (laptops) accept
// only hoarded files.
func NewReplica(id ReplicaID, full bool) *Replica {
	return &Replica{
		ID:      id,
		files:   make(map[simfs.FileID]*rumorFile),
		full:    full,
		hoarded: make(map[simfs.FileID]bool),
	}
}

// Len returns the number of locally stored live files.
func (r *Replica) Len() int {
	n := 0
	for _, f := range r.files {
		if !f.deleted {
			n++
		}
	}
	return n
}

// Has reports whether the file is stored live locally.
func (r *Replica) Has(id simfs.FileID) bool {
	f := r.files[id]
	return f != nil && !f.deleted
}

// SetHoard replaces the hoard set of a non-full replica; files outside
// the set are dropped locally (they remain at other replicas).
func (r *Replica) SetHoard(ids []simfs.FileID) {
	want := make(map[simfs.FileID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	r.hoarded = want
	if r.full {
		return
	}
	for id := range r.files {
		if !want[id] {
			delete(r.files, id)
		}
	}
}

// Create makes a new file at this replica. Recreating a pathname that
// has a tombstone extends the existing version history — a fresh vector
// would be dominated by the tombstone and the new file would be
// silently deleted at the next reconciliation.
func (r *Replica) Create(id simfs.FileID) {
	r.nextTag++
	tag := r.nextTag<<8 | uint64(r.ID)
	if f := r.files[id]; f != nil {
		f.vv[r.ID]++
		f.data = tag
		f.deleted = false
		return
	}
	r.files[id] = &rumorFile{
		vv:   VersionVector{r.ID: 1},
		data: tag,
	}
}

// Update modifies the file locally, advancing this replica's component
// of the version vector. It reports whether the file was present.
func (r *Replica) Update(id simfs.FileID) bool {
	f := r.files[id]
	if f == nil || f.deleted {
		return false
	}
	f.vv[r.ID]++
	r.nextTag++
	f.data = r.nextTag<<8 | uint64(r.ID)
	return true
}

// Delete removes the file locally, leaving a tombstone that propagates.
func (r *Replica) Delete(id simfs.FileID) bool {
	f := r.files[id]
	if f == nil || f.deleted {
		return false
	}
	f.vv[r.ID]++
	f.deleted = true
	return true
}

// Version returns the file's version vector (nil when absent).
func (r *Replica) Version(id simfs.FileID) VersionVector {
	if f := r.files[id]; f != nil {
		return f.vv.Copy()
	}
	return nil
}

// SyncReport summarizes one reconciliation direction.
type SyncReport struct {
	Pulled    int // files updated from the peer
	Created   int // files newly stored locally
	Deleted   int // tombstones applied
	Conflicts int // concurrent updates detected
	Skipped   int // files the local replica does not hoard
}

// Total returns the number of changes applied.
func (s SyncReport) Total() int { return s.Pulled + s.Created + s.Deleted }

// ReconcileFrom pulls the peer's state into r (RUMOR's one-way pull;
// run both directions for a full sync). Conflicts are resolved
// deterministically in favour of the lexicographically larger data tag,
// and the merged version vector dominates both histories so the
// resolution propagates without re-conflicting.
func (r *Replica) ReconcileFrom(peer *Replica) SyncReport {
	var rep SyncReport
	ids := make([]simfs.FileID, 0, len(peer.files))
	for id := range peer.files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		pf := peer.files[id]
		if !r.full && !r.hoarded[id] {
			rep.Skipped++
			continue
		}
		lf := r.files[id]
		if lf == nil {
			// New to this replica.
			nf := &rumorFile{vv: pf.vv.Copy(), data: pf.data, deleted: pf.deleted}
			r.files[id] = nf
			if pf.deleted {
				rep.Deleted++
			} else {
				rep.Created++
			}
			continue
		}
		switch lf.vv.Compare(pf.vv) {
		case Before:
			wasDeleted := lf.deleted
			lf.vv = pf.vv.Copy()
			lf.data = pf.data
			lf.deleted = pf.deleted
			if pf.deleted && !wasDeleted {
				rep.Deleted++
			} else {
				rep.Pulled++
			}
		case After, Equal:
			// Local is newer or identical: nothing to pull.
		case Concurrent:
			rep.Conflicts++
			// Deterministic resolution: larger data tag wins; deletion
			// loses to a concurrent update (an update proves interest).
			winner := lf.data
			winnerDel := lf.deleted
			if pf.deleted != lf.deleted {
				winnerDel = false
				if lf.deleted {
					winner = pf.data
				}
			} else if pf.data > lf.data {
				winner = pf.data
				winnerDel = pf.deleted
			}
			merged := lf.vv.Copy()
			for k, n := range pf.vv {
				if n > merged[k] {
					merged[k] = n
				}
			}
			// Bump our component so the resolution dominates both.
			merged[r.ID]++
			lf.vv = merged
			lf.data = winner
			lf.deleted = winnerDel
		}
	}
	return rep
}

// Sync performs a bidirectional reconciliation between two replicas.
func Sync(a, b *Replica) (fromB, fromA SyncReport) {
	fromB = a.ReconcileFrom(b)
	fromA = b.ReconcileFrom(a)
	return fromB, fromA
}

// SameContent reports whether both replicas store the file with
// identical content (including both-absent and both-tombstoned).
func SameContent(a, b *Replica, id simfs.FileID) bool {
	fa, fb := a.files[id], b.files[id]
	if fa == nil || fb == nil {
		return fa == fb
	}
	return fa.data == fb.data && fa.deleted == fb.deleted
}
