package replic_test

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/fmg/seer/internal/fault"
	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
)

// newMasterServer starts a Master behind httptest with the given
// transport decorating the client, returning the pieces.
func newMasterServer(t *testing.T, rt http.RoundTripper) (*replic.Master, *replic.RemoteRumor, *httptest.Server) {
	t.Helper()
	m := replic.NewMaster()
	mux := http.NewServeMux()
	mux.Handle("/rumor/", replic.MasterHandler("/rumor", m))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	hc := &http.Client{Transport: rt}
	if rt == nil {
		hc = ts.Client()
	}
	rr := replic.NewRemoteRumor(ts.URL+"/rumor/", hc) // trailing slash trimmed
	return m, rr, ts
}

// instantRetry is a backoff policy that never sleeps, for tests.
func instantRetry(attempts int) func(func() error) error {
	pol := hoard.RetryPolicy{MaxAttempts: attempts, Sleep: func(time.Duration) {}}
	return pol.Do
}

func TestRemoteFetchAndAccess(t *testing.T) {
	m, rr, _ := newMasterServer(t, nil)
	m.Create(7)
	if got := rr.Access(7); got != replic.AccessRemote {
		t.Errorf("unhoarded access = %v, want remote", got)
	}
	if err := rr.Fetch(7); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if !rr.HasLocal(7) {
		t.Error("fetched file not local")
	}
	if got := rr.Access(7); got != replic.AccessLocal {
		t.Errorf("hoarded access = %v, want local", got)
	}
	if got := rr.Access(999); got != replic.AccessUnknown {
		t.Errorf("nonexistent access = %v, want unknown", got)
	}
	if err := rr.Fetch(999); !errors.Is(err, replic.ErrNotReplicated) {
		t.Errorf("fetch unreplicated = %v", err)
	}

	// Disconnected: a file the master ever confirmed is a miss, an
	// unknown one stays unknown.
	rr.SetConnected(false)
	if got := rr.Access(7); got != replic.AccessLocal {
		t.Errorf("disconnected hoarded access = %v", got)
	}
	rr.Evict(7)
	if got := rr.Access(7); got != replic.AccessMiss {
		t.Errorf("disconnected evicted access = %v, want miss", got)
	}
	if got := rr.Access(999); got != replic.AccessUnknown {
		t.Errorf("disconnected unknown access = %v, want unknown", got)
	}
	if err := rr.Fetch(7); !errors.Is(err, replic.ErrDisconnected) {
		t.Errorf("disconnected fetch = %v", err)
	}
}

func TestRemoteWritePushesThrough(t *testing.T) {
	m, rr, _ := newMasterServer(t, nil)
	m.Create(3)
	if err := rr.Fetch(3); err != nil {
		t.Fatal(err)
	}
	rr.WriteLocal(3)
	if n := rr.DirtyCount(); n != 0 {
		t.Fatalf("connected write DirtyCount = %d, want 0", n)
	}
	if v, ok := m.Version(3); !ok || v != 2 {
		t.Errorf("master version = %d/%v, want 2", v, ok)
	}
	// Local creation while connected registers on the master.
	rr.WriteLocal(44)
	if v, ok := m.Version(44); !ok || v != 1 {
		t.Errorf("created master version = %d/%v, want 1", v, ok)
	}
	if got := rr.Totals().Propagated; got != 2 {
		t.Errorf("Totals().Propagated = %d, want 2", got)
	}
}

func TestRemoteWriteConflict(t *testing.T) {
	m, rr, _ := newMasterServer(t, nil)
	m.Create(3)
	if err := rr.Fetch(3); err != nil { // base 1
		t.Fatal(err)
	}
	if _, err := m.Update(3); err != nil { // another replica: now 2
		t.Fatal(err)
	}
	rr.WriteLocal(3)
	if got := rr.Totals().Conflicts; got != 1 {
		t.Errorf("Totals().Conflicts = %d, want 1", got)
	}
	if v, _ := m.Version(3); v != 2 {
		t.Errorf("master version = %d, want 2 (server copy kept)", v)
	}

	// Keep-local policy pushes over.
	m2, rr2, _ := newMasterServer(t, nil)
	rr2.KeepLocalOnConflict = true
	m2.Create(5)
	if err := rr2.Fetch(5); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Update(5); err != nil {
		t.Fatal(err)
	}
	rr2.WriteLocal(5)
	if v, _ := m2.Version(5); v != 3 {
		t.Errorf("keep-local master version = %d, want 3", v)
	}
}

func TestRemoteOfflineWriteReconciles(t *testing.T) {
	m, rr, _ := newMasterServer(t, nil)
	m.Create(3)
	if err := rr.Fetch(3); err != nil {
		t.Fatal(err)
	}
	rr.SetConnected(false)
	rr.WriteLocal(3)
	rr.WriteLocal(10) // disconnected creation
	if n := rr.DirtyCount(); n != 2 {
		t.Fatalf("offline DirtyCount = %d, want 2", n)
	}
	rep := rr.SetConnected(true)
	if rep.Propagated != 2 || rep.Conflicts != 0 {
		t.Errorf("reconcile report = %+v, want 2 propagated", rep)
	}
	if n := rr.DirtyCount(); n != 0 {
		t.Errorf("post-reconcile DirtyCount = %d", n)
	}
	if v, _ := m.Version(3); v != 2 {
		t.Errorf("master version of 3 = %d, want 2", v)
	}
	if v, ok := m.Version(10); !ok || v != 1 {
		t.Errorf("master version of 10 = %d/%v, want 1", v, ok)
	}
}

func TestRemoteEvictDeferredWhileDirty(t *testing.T) {
	m, rr, _ := newMasterServer(t, nil)
	m.Create(3)
	if err := rr.Fetch(3); err != nil {
		t.Fatal(err)
	}
	rr.SetConnected(false)
	rr.WriteLocal(3)
	rr.Evict(3)
	if !rr.HasLocal(3) {
		t.Fatal("dirty file evicted before propagation — update lost")
	}
	rep := rr.SetConnected(true)
	if rep.Propagated != 1 || rep.Evicted != 1 {
		t.Errorf("reconcile report = %+v, want 1 propagated 1 evicted", rep)
	}
	if rr.HasLocal(3) {
		t.Error("deferred eviction did not complete")
	}
	if v, _ := m.Version(3); v != 2 {
		t.Errorf("master version = %d, want 2 (update propagated before eviction)", v)
	}
}

func TestRemoteSyncBatch(t *testing.T) {
	m, rr, _ := newMasterServer(t, nil)
	m.Create(1)
	m.Create(2)
	if err := rr.Fetch(9); !errors.Is(err, replic.ErrNotReplicated) {
		t.Fatal(err)
	}
	failed, err := rr.SyncBatch([]simfs.FileID{1, 2, 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0] != 9 {
		t.Errorf("failed = %v, want [9]", failed)
	}
	if !rr.HasLocal(1) || !rr.HasLocal(2) || rr.HasLocal(9) {
		t.Error("batch fetch results wrong")
	}
	if _, err := rr.SyncBatch(nil, []simfs.FileID{1}); err != nil {
		t.Fatal(err)
	}
	if rr.HasLocal(1) {
		t.Error("batch eviction not applied")
	}
	rr.SetConnected(false)
	if _, err := rr.SyncBatch([]simfs.FileID{2}, nil); !errors.Is(err, replic.ErrDisconnected) {
		t.Errorf("disconnected batch = %v", err)
	}
}

func TestRemoteUnavailable(t *testing.T) {
	ft := &fault.FlakyTransport{}
	m, rr, _ := newMasterServer(t, ft)
	m.Create(3)
	if err := rr.Fetch(3); err != nil {
		t.Fatal(err)
	}
	ft.SetDown(true)

	if err := rr.Fetch(3); !errors.Is(err, replic.ErrUnavailable) {
		t.Errorf("partitioned fetch = %v, want ErrUnavailable", err)
	}
	if _, err := rr.SyncBatch([]simfs.FileID{3}, nil); !errors.Is(err, replic.ErrUnavailable) {
		t.Errorf("partitioned batch = %v, want ErrUnavailable", err)
	}
	// Sync applies evictions locally even when the master is gone.
	if failed := rr.Sync([]simfs.FileID{5}, []simfs.FileID{3}); failed != 1 {
		t.Errorf("partitioned Sync failed = %d, want 1", failed)
	}
	if rr.HasLocal(3) {
		t.Error("partitioned Sync did not apply local eviction")
	}

	// A write during the partition stays dirty — never dropped.
	rr.WriteLocal(7)
	if n := rr.DirtyCount(); n != 1 {
		t.Fatalf("partitioned write DirtyCount = %d, want 1", n)
	}
	// Reconnecting while still partitioned fails and stays disconnected.
	rr.SetConnected(false)
	if rep := rr.SetConnected(true); rep != (replic.ReconcileReport{}) || rr.Connected() {
		t.Errorf("partitioned reconnect: report %+v connected %v", rep, rr.Connected())
	}
	// Heal: the next reconnect propagates the held update.
	ft.SetDown(false)
	rep := rr.SetConnected(true)
	if !rr.Connected() || rep.Propagated != 1 {
		t.Errorf("healed reconnect: report %+v connected %v", rep, rr.Connected())
	}
	if v, ok := m.Version(7); !ok || v != 1 {
		t.Errorf("held update not propagated: %d/%v", v, ok)
	}
}

func TestRemoteOutageWindowRetry(t *testing.T) {
	// A deterministic outage covering the first two calls: the retry
	// policy rides it out and the third attempt lands.
	ft := &fault.FlakyTransport{FailFrom: 0, FailTo: 2}
	m, rr, _ := newMasterServer(t, ft)
	rr.Retry = instantRetry(4)
	m.Create(3)
	if err := rr.Fetch(3); err != nil {
		t.Fatalf("fetch through outage = %v", err)
	}
	if got := ft.Calls(); got != 3 {
		t.Errorf("calls = %d, want 3 (two failures + success)", got)
	}
	if got := ft.Injected(); got != 2 {
		t.Errorf("injected = %d, want 2", got)
	}
}

func TestRemoteRetryExhaustion(t *testing.T) {
	ft := &fault.FlakyTransport{}
	m, rr, _ := newMasterServer(t, ft)
	rr.Retry = instantRetry(3)
	m.Create(3)
	ft.SetDown(true)
	if err := rr.Fetch(3); !errors.Is(err, replic.ErrUnavailable) {
		t.Fatalf("fetch = %v", err)
	}
	if got := ft.Calls(); got != 3 {
		t.Errorf("calls = %d, want 3 (policy exhausted)", got)
	}
}

func TestRemoteProbabilisticFaults(t *testing.T) {
	// 30% injected failures, retried: every operation still converges.
	ft := &fault.FlakyTransport{FailProb: 0.3, Rand: stats.NewRand(42)}
	m, rr, _ := newMasterServer(t, ft)
	rr.Retry = instantRetry(10)
	for id := simfs.FileID(1); id <= 50; id++ {
		m.Create(id)
		if err := rr.Fetch(id); err != nil {
			t.Fatalf("fetch %d: %v", id, err)
		}
		rr.WriteLocal(id)
	}
	// Flush any writes whose push lost the retry lottery.
	for i := 0; rr.DirtyCount() > 0 && i < 100; i++ {
		rr.Reconcile()
	}
	if n := rr.DirtyCount(); n != 0 {
		t.Fatalf("DirtyCount = %d after flush", n)
	}
	for id := simfs.FileID(1); id <= 50; id++ {
		if v, _ := m.Version(id); v != 2 {
			t.Errorf("master version of %d = %d, want 2", id, v)
		}
	}
	if ft.Injected() == 0 {
		t.Error("no faults injected — test proves nothing")
	}
}

func TestMasterHandlerErrors(t *testing.T) {
	_, _, ts := newMasterServer(t, nil)

	resp, err := http.Get(ts.URL + "/rumor/version")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/rumor/version", "application/x-seer-rumor",
		nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body status = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/rumor/nonsense", "application/x-seer-rumor", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}
}

func TestMasterCreateUpdateIdempotence(t *testing.T) {
	m := replic.NewMaster()
	if v := m.Create(1); v != 1 {
		t.Errorf("create = %d", v)
	}
	if v := m.Create(1); v != 1 {
		t.Errorf("re-create = %d, want 1 (idempotent)", v)
	}
	if v, err := m.Update(1); err != nil || v != 2 {
		t.Errorf("update = %d, %v", v, err)
	}
	if _, err := m.Update(99); !errors.Is(err, replic.ErrNotReplicated) {
		t.Errorf("update unknown = %v", err)
	}
	if m.Len() != 1 {
		t.Errorf("len = %d", m.Len())
	}
	files, creates, pushes, _, _ := m.Stats()
	if files != 1 || creates != 1 || pushes != 0 {
		t.Errorf("stats = %d %d %d", files, creates, pushes)
	}
}
