package replic

import (
	"fmt"
	"io"

	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/wire"
)

// The CheapRumor wire protocol. Every HTTP request and response body is
// exactly one CRC32-framed wire message (wire.EncodeFrame), so a
// truncated or bit-flipped transfer is rejected before any field is
// trusted — the same discipline the on-disk database format uses.
//
// Endpoints (all POST, relative to the mount prefix):
//
//	/create     register a file on the master (idempotent, version 1)
//	/update     bump the master version, as another replica would
//	/version    query one file's version
//	/fetch      batch version query for a hoard fill (one round trip)
//	/push       propagate one local update (connected write-through)
//	/reconcile  batch reconciliation after a disconnection: dirty
//	            pushes + staleness checks in one round trip
//
// Versions are scalar master versions — the degenerate master–slave
// form of a version vector (one component per site, and only the master
// accepts pushes), which is exactly the in-memory CheapRumor's model.
// A client push carries the base version its copy derives from; the
// master compares base against its current version to distinguish a
// fast-forward from a conflict, matching CheapRumor.reconcile.

// reqTag and respTag frame every protocol message.
const (
	reqTag  = "rumor.rq"
	respTag = "rumor.rs"
)

// maxRumorFrame bounds protocol message payloads: a reconcile of a
// million files is ~16 MB; anything larger is corruption.
const maxRumorFrame = 64 << 20

// PushOutcome is the master's verdict on one propagated update.
type PushOutcome uint8

// The push outcomes, mirroring CheapRumor.reconcile's dirty cases.
const (
	// PushCreated: the master had no replica; it now has version 1.
	PushCreated PushOutcome = iota
	// PushFastForward: the base matched; the master advanced by one.
	PushFastForward
	// PushConflict: the master copy advanced independently since base.
	PushConflict
)

// String names the outcome.
func (o PushOutcome) String() string {
	switch o {
	case PushCreated:
		return "created"
	case PushFastForward:
		return "fast-forward"
	case PushConflict:
		return "conflict"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// VersionInfo is one file's master-side version ("found" false when the
// master has no replica).
type VersionInfo struct {
	ID      simfs.FileID
	Version uint64
	Found   bool
}

// BaseEntry names a file and the master version the local copy derives
// from.
type BaseEntry struct {
	ID   simfs.FileID
	Base uint64
}

// PushResult is the master's answer to one push: the outcome and the
// resulting base version for the client's replica.
type PushResult struct {
	Outcome PushOutcome
	Version uint64
}

// ReconcileRequest is the batched reconciliation message: every dirty
// local file with its base version, and every clean hoarded file so the
// master can report staleness — one round trip per reconnection.
type ReconcileRequest struct {
	KeepLocal bool
	Dirty     []BaseEntry
	Clean     []BaseEntry
}

// ReconcileResponse answers a ReconcileRequest; Dirty and Clean align
// index-for-index with the request slices.
type ReconcileResponse struct {
	Dirty []PushResult
	Clean []VersionInfo
}

func writeBaseEntries(w *wire.Writer, es []BaseEntry) {
	w.U64(uint64(len(es)))
	for _, e := range es {
		w.I64(int64(e.ID))
		w.U64(e.Base)
	}
}

func readBaseEntries(r *wire.Reader, limit uint64) ([]BaseEntry, error) {
	n := r.U64()
	if n > limit {
		return nil, fmt.Errorf("replic: entry count %d exceeds limit %d", n, limit)
	}
	es := make([]BaseEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		es = append(es, BaseEntry{ID: simfs.FileID(r.I64()), Base: r.U64()})
	}
	return es, r.Err()
}

func writeVersionInfos(w *wire.Writer, vs []VersionInfo) {
	w.U64(uint64(len(vs)))
	for _, v := range vs {
		w.I64(int64(v.ID))
		w.U64(v.Version)
		w.Bool(v.Found)
	}
}

func readVersionInfos(r *wire.Reader, limit uint64) ([]VersionInfo, error) {
	n := r.U64()
	if n > limit {
		return nil, fmt.Errorf("replic: entry count %d exceeds limit %d", n, limit)
	}
	vs := make([]VersionInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		vs = append(vs, VersionInfo{
			ID:      simfs.FileID(r.I64()),
			Version: r.U64(),
			Found:   r.Bool(),
		})
	}
	return vs, r.Err()
}

func writePushResults(w *wire.Writer, ps []PushResult) {
	w.U64(uint64(len(ps)))
	for _, p := range ps {
		w.U64(uint64(p.Outcome))
		w.U64(p.Version)
	}
}

func readPushResults(r *wire.Reader, limit uint64) ([]PushResult, error) {
	n := r.U64()
	if n > limit {
		return nil, fmt.Errorf("replic: entry count %d exceeds limit %d", n, limit)
	}
	ps := make([]PushResult, 0, n)
	for i := uint64(0); i < n; i++ {
		out := PushOutcome(r.U64())
		if out > PushConflict {
			return nil, fmt.Errorf("replic: invalid push outcome %d", out)
		}
		ps = append(ps, PushResult{Outcome: out, Version: r.U64()})
	}
	return ps, r.Err()
}

// entryLimit bounds list lengths inside protocol messages against
// corrupt counts (the frame CRC catches noise; this catches a hostile
// or buggy peer).
const entryLimit = 1 << 22

// encodeIDList renders a request carrying only a list of file ids
// (/fetch).
func encodeIDList(ids []simfs.FileID) ([]byte, error) {
	return wire.EncodeFrame(reqTag, func(w *wire.Writer) {
		w.U64(uint64(len(ids)))
		for _, id := range ids {
			w.I64(int64(id))
		}
	})
}

func decodeIDList(r io.Reader) ([]simfs.FileID, error) {
	var ids []simfs.FileID
	err := wire.DecodeFrame(r, reqTag, maxRumorFrame, func(rd *wire.Reader) error {
		n := rd.U64()
		if n > entryLimit {
			return fmt.Errorf("replic: id count %d exceeds limit %d", n, entryLimit)
		}
		ids = make([]simfs.FileID, 0, n)
		for i := uint64(0); i < n; i++ {
			ids = append(ids, simfs.FileID(rd.I64()))
		}
		return rd.Err()
	})
	return ids, err
}

// encodeID renders a single-file request (/create, /update, /version).
func encodeID(id simfs.FileID) ([]byte, error) {
	return wire.EncodeFrame(reqTag, func(w *wire.Writer) { w.I64(int64(id)) })
}

func decodeID(r io.Reader) (simfs.FileID, error) {
	var id simfs.FileID
	err := wire.DecodeFrame(r, reqTag, maxRumorFrame, func(rd *wire.Reader) error {
		id = simfs.FileID(rd.I64())
		return rd.Err()
	})
	return id, err
}

// encodePushReq renders a /push request.
func encodePushReq(id simfs.FileID, base uint64, keepLocal bool) ([]byte, error) {
	return wire.EncodeFrame(reqTag, func(w *wire.Writer) {
		w.I64(int64(id))
		w.U64(base)
		w.Bool(keepLocal)
	})
}

func decodePushReq(r io.Reader) (id simfs.FileID, base uint64, keepLocal bool, err error) {
	err = wire.DecodeFrame(r, reqTag, maxRumorFrame, func(rd *wire.Reader) error {
		id = simfs.FileID(rd.I64())
		base = rd.U64()
		keepLocal = rd.Bool()
		return rd.Err()
	})
	return id, base, keepLocal, err
}

// encodeReconcileReq renders a /reconcile request.
func encodeReconcileReq(req ReconcileRequest) ([]byte, error) {
	return wire.EncodeFrame(reqTag, func(w *wire.Writer) {
		w.Bool(req.KeepLocal)
		writeBaseEntries(w, req.Dirty)
		writeBaseEntries(w, req.Clean)
	})
}

func decodeReconcileReq(r io.Reader) (ReconcileRequest, error) {
	var req ReconcileRequest
	err := wire.DecodeFrame(r, reqTag, maxRumorFrame, func(rd *wire.Reader) error {
		req.KeepLocal = rd.Bool()
		var err error
		if req.Dirty, err = readBaseEntries(rd, entryLimit); err != nil {
			return err
		}
		req.Clean, err = readBaseEntries(rd, entryLimit)
		return err
	})
	return req, err
}

// Response encoders/decoders. Every response starts with a status
// varint so application-level refusals (file not replicated) survive
// the round trip distinctly from transport failures.
const (
	statusOK            = 0
	statusNotReplicated = 1
)

func encodeVersionResp(v VersionInfo) ([]byte, error) {
	return wire.EncodeFrame(respTag, func(w *wire.Writer) {
		w.U64(statusOK)
		writeVersionInfos(w, []VersionInfo{v})
	})
}

func decodeVersionResp(r io.Reader) (VersionInfo, error) {
	var v VersionInfo
	err := wire.DecodeFrame(r, respTag, maxRumorFrame, func(rd *wire.Reader) error {
		if st := rd.U64(); st != statusOK {
			return fmt.Errorf("replic: status %d", st)
		}
		vs, err := readVersionInfos(rd, 1)
		if err != nil {
			return err
		}
		if len(vs) != 1 {
			return fmt.Errorf("replic: want 1 version, got %d", len(vs))
		}
		v = vs[0]
		return nil
	})
	return v, err
}

func encodeFetchResp(vs []VersionInfo) ([]byte, error) {
	return wire.EncodeFrame(respTag, func(w *wire.Writer) {
		w.U64(statusOK)
		writeVersionInfos(w, vs)
	})
}

func decodeFetchResp(r io.Reader) ([]VersionInfo, error) {
	var vs []VersionInfo
	err := wire.DecodeFrame(r, respTag, maxRumorFrame, func(rd *wire.Reader) error {
		if st := rd.U64(); st != statusOK {
			return fmt.Errorf("replic: status %d", st)
		}
		var err error
		vs, err = readVersionInfos(rd, entryLimit)
		return err
	})
	return vs, err
}

func encodePushResp(p PushResult) ([]byte, error) {
	return wire.EncodeFrame(respTag, func(w *wire.Writer) {
		w.U64(statusOK)
		writePushResults(w, []PushResult{p})
	})
}

func decodePushResp(r io.Reader) (PushResult, error) {
	var p PushResult
	err := wire.DecodeFrame(r, respTag, maxRumorFrame, func(rd *wire.Reader) error {
		if st := rd.U64(); st != statusOK {
			return fmt.Errorf("replic: status %d", st)
		}
		ps, err := readPushResults(rd, 1)
		if err != nil {
			return err
		}
		if len(ps) != 1 {
			return fmt.Errorf("replic: want 1 push result, got %d", len(ps))
		}
		p = ps[0]
		return nil
	})
	return p, err
}

func encodeStatusResp(status uint64) ([]byte, error) {
	return wire.EncodeFrame(respTag, func(w *wire.Writer) { w.U64(status) })
}

func decodeStatusResp(r io.Reader) (uint64, error) {
	var st uint64
	err := wire.DecodeFrame(r, respTag, maxRumorFrame, func(rd *wire.Reader) error {
		st = rd.U64()
		return rd.Err()
	})
	return st, err
}

func encodeReconcileResp(resp ReconcileResponse) ([]byte, error) {
	return wire.EncodeFrame(respTag, func(w *wire.Writer) {
		w.U64(statusOK)
		writePushResults(w, resp.Dirty)
		writeVersionInfos(w, resp.Clean)
	})
}

func decodeReconcileResp(r io.Reader) (ReconcileResponse, error) {
	var resp ReconcileResponse
	err := wire.DecodeFrame(r, respTag, maxRumorFrame, func(rd *wire.Reader) error {
		if st := rd.U64(); st != statusOK {
			return fmt.Errorf("replic: status %d", st)
		}
		var err error
		if resp.Dirty, err = readPushResults(rd, entryLimit); err != nil {
			return err
		}
		resp.Clean, err = readVersionInfos(rd, entryLimit)
		return err
	})
	return resp, err
}
