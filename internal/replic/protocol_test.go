package replic

import (
	"bytes"
	"errors"
	"testing"

	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/wire"
)

func TestProtocolRoundTrips(t *testing.T) {
	// Single id.
	b, err := encodeID(42)
	if err != nil {
		t.Fatal(err)
	}
	if id, err := decodeID(bytes.NewReader(b)); err != nil || id != 42 {
		t.Errorf("id round trip = %d, %v", id, err)
	}

	// Id list, including empty.
	ids := []simfs.FileID{7, 1, 99}
	b, err = encodeIDList(ids)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeIDList(bytes.NewReader(b))
	if err != nil || len(got) != 3 || got[0] != 7 || got[1] != 1 || got[2] != 99 {
		t.Errorf("id list round trip = %v, %v", got, err)
	}
	b, _ = encodeIDList(nil)
	if got, err := decodeIDList(bytes.NewReader(b)); err != nil || len(got) != 0 {
		t.Errorf("empty id list round trip = %v, %v", got, err)
	}

	// Push request.
	b, err = encodePushReq(5, 9, true)
	if err != nil {
		t.Fatal(err)
	}
	id, base, keep, err := decodePushReq(bytes.NewReader(b))
	if err != nil || id != 5 || base != 9 || !keep {
		t.Errorf("push req round trip = %d %d %v %v", id, base, keep, err)
	}

	// Version response, found and not-found.
	for _, v := range []VersionInfo{{ID: 3, Version: 17, Found: true}, {ID: 8}} {
		b, err := encodeVersionResp(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeVersionResp(bytes.NewReader(b))
		if err != nil || got != v {
			t.Errorf("version resp round trip = %+v, %v (want %+v)", got, err, v)
		}
	}

	// Fetch response.
	vs := []VersionInfo{{ID: 1, Version: 2, Found: true}, {ID: 2, Found: false}}
	b, err = encodeFetchResp(vs)
	if err != nil {
		t.Fatal(err)
	}
	gvs, err := decodeFetchResp(bytes.NewReader(b))
	if err != nil || len(gvs) != 2 || gvs[0] != vs[0] || gvs[1] != vs[1] {
		t.Errorf("fetch resp round trip = %+v, %v", gvs, err)
	}

	// Push response.
	pr := PushResult{Outcome: PushConflict, Version: 12}
	b, err = encodePushResp(pr)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := decodePushResp(bytes.NewReader(b)); err != nil || got != pr {
		t.Errorf("push resp round trip = %+v, %v", got, err)
	}

	// Status response.
	b, err = encodeStatusResp(statusNotReplicated)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := decodeStatusResp(bytes.NewReader(b)); err != nil || st != statusNotReplicated {
		t.Errorf("status resp round trip = %d, %v", st, err)
	}

	// Reconcile request/response.
	req := ReconcileRequest{
		KeepLocal: true,
		Dirty:     []BaseEntry{{ID: 1, Base: 0}, {ID: 2, Base: 5}},
		Clean:     []BaseEntry{{ID: 3, Base: 1}},
	}
	b, err = encodeReconcileReq(req)
	if err != nil {
		t.Fatal(err)
	}
	greq, err := decodeReconcileReq(bytes.NewReader(b))
	if err != nil || !greq.KeepLocal || len(greq.Dirty) != 2 || len(greq.Clean) != 1 ||
		greq.Dirty[1] != req.Dirty[1] || greq.Clean[0] != req.Clean[0] {
		t.Errorf("reconcile req round trip = %+v, %v", greq, err)
	}

	resp := ReconcileResponse{
		Dirty: []PushResult{{Outcome: PushFastForward, Version: 6}},
		Clean: []VersionInfo{{ID: 3, Version: 4, Found: true}},
	}
	b, err = encodeReconcileResp(resp)
	if err != nil {
		t.Fatal(err)
	}
	gresp, err := decodeReconcileResp(bytes.NewReader(b))
	if err != nil || len(gresp.Dirty) != 1 || len(gresp.Clean) != 1 ||
		gresp.Dirty[0] != resp.Dirty[0] || gresp.Clean[0] != resp.Clean[0] {
		t.Errorf("reconcile resp round trip = %+v, %v", gresp, err)
	}
}

func TestProtocolRejectsCorruption(t *testing.T) {
	b, err := encodePushReq(5, 9, false)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped payload byte fails the frame CRC.
	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x40
		if _, _, _, err := decodePushReq(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupted byte %d accepted", i)
		}
	}

	// Truncation at every boundary fails.
	for n := 0; n < len(b); n++ {
		if _, _, _, err := decodePushReq(bytes.NewReader(b[:n])); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}

	// A response tag is not a request.
	resp, err := encodeStatusResp(statusOK)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := decodePushReq(bytes.NewReader(resp)); err == nil {
		t.Error("response frame accepted as request")
	}
}

func TestProtocolRejectsOversizedCounts(t *testing.T) {
	// A count field beyond entryLimit is refused before allocation even
	// though the frame itself checks out.
	huge, err := wire.EncodeFrame(reqTag, func(w *wire.Writer) {
		w.U64(entryLimit + 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeIDList(bytes.NewReader(huge)); err == nil {
		t.Error("oversized count accepted")
	}
}

func TestProtocolRejectsInvalidOutcome(t *testing.T) {
	if PushCreated.String() != "created" || PushConflict.String() != "conflict" {
		t.Error("outcome names")
	}
	if PushOutcome(9).String() == "" {
		t.Error("unknown outcome unnamed")
	}
	// A well-framed response carrying an out-of-range outcome is refused.
	bad, err := wire.EncodeFrame(respTag, func(w *wire.Writer) {
		w.U64(statusOK)
		w.U64(1) // one push result
		w.U64(uint64(PushConflict) + 1)
		w.U64(7)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodePushResp(bytes.NewReader(bad)); err == nil {
		t.Error("invalid outcome accepted")
	}
	if !errors.Is(ErrUnavailable, ErrUnavailable) {
		t.Error("sentinel identity")
	}
}
