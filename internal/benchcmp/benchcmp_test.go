package benchcmp

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/fmg/seer
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCluster20k 	       5	  72805107 ns/op	14367603 B/op	     919 allocs/op
BenchmarkHoardPlan-8	       5	   2084914 ns/op	  273537 B/op	     521 allocs/op
BenchmarkMemoryPerFile 	       2	  37679119 ns/op	       692.8 bytes/file	16693432 B/op	   20177 allocs/op
BenchmarkCluster20k 	       5	  70000000 ns/op	14367603 B/op	     919 allocs/op
PASS
ok  	github.com/fmg/seer	0.854s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	c := rep.Find("BenchmarkCluster20k")
	if c == nil {
		t.Fatal("Cluster20k missing")
	}
	// Duplicate lines keep the faster run.
	if c.NsPerOp != 70000000 {
		t.Errorf("ns/op = %g, want the min of the two runs", c.NsPerOp)
	}
	if c.AllocsPerOp != 919 || c.BytesPerOp != 14367603 {
		t.Errorf("allocs/bytes = %g/%g", c.AllocsPerOp, c.BytesPerOp)
	}
	// The -8 GOMAXPROCS suffix is stripped.
	if rep.Find("BenchmarkHoardPlan") == nil {
		t.Error("HoardPlan (suffixed) missing")
	}
	// Custom metrics (bytes/file) are skipped but the line still parses.
	m := rep.Find("BenchmarkMemoryPerFile")
	if m == nil || m.AllocsPerOp != 20177 {
		t.Errorf("MemoryPerFile = %+v", m)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) {
		t.Fatalf("round trip lost benchmarks: %d != %d",
			len(back.Benchmarks), len(rep.Benchmarks))
	}
	for i := range rep.Benchmarks {
		if back.Benchmarks[i] != rep.Benchmarks[i] {
			t.Errorf("benchmark %d changed: %+v != %+v",
				i, back.Benchmarks[i], rep.Benchmarks[i])
		}
	}
}

func TestCompareThresholds(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "B", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "Gone", NsPerOp: 100},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 114, AllocsPerOp: 11},  // within 15%
		{Name: "B", NsPerOp: 200, AllocsPerOp: 100}, // both regressed
		{Name: "New", NsPerOp: 999},                 // no baseline: ignored
	}}
	regs := Compare(base, cur, 0.15, 0.15)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want ns/op and allocs/op of B", regs)
	}
	for _, r := range regs {
		if r.Name != "B" {
			t.Errorf("unexpected regression %v", r)
		}
	}
	// Exactly at the boundary is not a regression (0.5 is exactly
	// representable, so 100*(1+0.5) == 150 with no rounding).
	cur2 := &Report{Benchmarks: []Benchmark{{Name: "A", NsPerOp: 150, AllocsPerOp: 10}}}
	if regs := Compare(base, cur2, 0.5, 0.5); len(regs) != 0 {
		t.Errorf("boundary flagged: %v", regs)
	}
}

// The mixed old/new case: a run whose report contains both entries the
// committed baseline knows (compared normally) and brand-new capacity
// entries the baseline predates (e.g. the first BENCH_load.json). The
// new entries must come back as additions to record — a regression
// list that faulted on unknown names would break CI on every newly
// introduced benchmark before its baseline could ever be committed.
func TestDiffMixedOldAndNewEntries(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "Old", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "LoadPeak", RPS: 1000},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "Old", NsPerOp: 105, AllocsPerOp: 10}, // within tolerance
		{Name: "LoadPeak", RPS: 950},                 // -5%: within tolerance
		{Name: "LoadPeak/shards4", RPS: 800},         // new: addition, not failure
		{Name: "LoadP99", NsPerOp: 5e6},              // new: addition, not failure
	}}
	regs, adds := Diff(base, cur, Tolerances{Ns: 0.15, Alloc: 0.15, RPS: 0.15})
	if len(regs) != 0 {
		t.Fatalf("mixed old/new flagged regressions: %v", regs)
	}
	if len(adds) != 2 {
		t.Fatalf("additions = %+v, want the two new entries", adds)
	}
	if adds[0].Name != "LoadPeak/shards4" || adds[1].Name != "LoadP99" {
		t.Errorf("additions misidentified: %+v", adds)
	}

	// A real capacity drop beyond tolerance still fails.
	cur2 := &Report{Benchmarks: []Benchmark{{Name: "LoadPeak", RPS: 500}}}
	regs2, _ := Diff(base, cur2, Tolerances{RPS: 0.15})
	if len(regs2) != 1 || regs2[0].Metric != "rps" {
		t.Fatalf("halved throughput not flagged: %v", regs2)
	}
	if regs2[0].Ratio >= 1 {
		t.Errorf("rps regression ratio %v should be < 1 (a drop)", regs2[0].Ratio)
	}

	// RPS entries round-trip through JSON.
	var buf bytes.Buffer
	if err := cur.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Find("LoadPeak/shards4"); got == nil || got.RPS != 800 {
		t.Errorf("RPS lost in round trip: %+v", got)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBad abc def\nnot a line\nBenchmarkNoNs 3 5 widgets/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("garbage parsed as %+v", rep.Benchmarks)
	}
}
