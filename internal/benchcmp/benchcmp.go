// Package benchcmp parses `go test -bench -benchmem` output into a
// JSON-serializable report and compares a current run against a
// committed baseline, flagging regressions beyond a tolerance. It is
// the engine behind `make bench` (record) and `make bench-check`
// (compare); the baselines live in BENCH_*.json at the repo root.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured costs. The classic entries
// come from `go test -bench` output (ns/op, B/op, allocs/op — lower is
// better); capacity entries come from the seerload harness and carry a
// throughput instead (RPS — higher is better). An entry may mix kinds:
// a load measurement records its peak RPS alongside the p99 latency in
// NsPerOp, and each metric is compared with its own direction.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// RPS is a sustained-throughput measurement (requests per second);
	// zero means "not a capacity entry". Regressions are drops.
	RPS float64 `json:"rps,omitempty"`
	// ErrRate records the failure rate observed at that throughput —
	// informational context for reviewers, never compared.
	ErrRate float64 `json:"err_rate,omitempty"`
}

// Report is a set of benchmark results, ordered as emitted.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Find returns the named benchmark, or nil.
func (r *Report) Find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// Parse extracts benchmark result lines from `go test -bench` output.
// Lines look like
//
//	BenchmarkCluster20k     10   63136654 ns/op   14359405 B/op   919 allocs/op
//
// possibly with a -N GOMAXPROCS suffix on the name and extra custom
// metrics (e.g. "bytes/file") interleaved; only ns/op, B/op and
// allocs/op are kept. When a benchmark appears more than once, the run
// with the lowest ns/op wins (benchstat's "best observed" convention
// for single-shot comparisons).
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev := rep.Find(b.Name); prev != nil {
			if b.NsPerOp < prev.NsPerOp {
				*prev = b
			}
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}

func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -N parallelism suffix go test appends when GOMAXPROCS>1.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return Benchmark{}, false // iteration count must be an integer
	}
	b := Benchmark{Name: name}
	seenNs := false
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seenNs = true
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, seenNs
}

// Regression is one metric of one benchmark exceeding its tolerance.
type Regression struct {
	Name      string
	Metric    string
	Base, Cur float64
	Ratio     float64
	Tolerance float64
}

func (r Regression) String() string {
	// Throughput regresses downward; cost metrics regress upward.
	floor := 1 + r.Tolerance
	if r.Metric == "rps" {
		floor = 1 - r.Tolerance
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%.2fx, tolerance %.2fx)",
		r.Name, r.Metric, r.Base, r.Cur, r.Ratio, floor)
}

// Tolerances are the allowed fractional movements per metric before a
// comparison becomes a regression: Ns and Alloc bound growth of ns/op
// and allocs/op, RPS bounds the drop of a throughput entry (0.15 =
// losing more than 15% of baseline capacity fails).
type Tolerances struct {
	Ns    float64
	Alloc float64
	RPS   float64
}

// Diff compares cur against base. Regressions are metrics that moved
// beyond their tolerance in the bad direction. Benchmarks present in
// cur but absent from base are returned as additions — brand-new
// measurements with no baseline yet (e.g. the first BENCH_load.json
// entries on a tree whose committed baseline predates them). They are
// recorded for the caller to surface, NEVER treated as failures: a
// check gate that faulted on unknown names would make every new
// benchmark a chicken-and-egg CI breakage. Benchmarks present only in
// base (deleted ones) have nothing to regress and are ignored.
func Diff(base, cur *Report, tol Tolerances) (regs []Regression, additions []Benchmark) {
	for _, c := range cur.Benchmarks {
		b := base.Find(c.Name)
		if b == nil {
			additions = append(additions, c)
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol.Ns) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "ns/op",
				Base: b.NsPerOp, Cur: c.NsPerOp,
				Ratio: c.NsPerOp / b.NsPerOp, Tolerance: tol.Ns,
			})
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > b.AllocsPerOp*(1+tol.Alloc) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "allocs/op",
				Base: b.AllocsPerOp, Cur: c.AllocsPerOp,
				Ratio: c.AllocsPerOp / b.AllocsPerOp, Tolerance: tol.Alloc,
			})
		}
		if b.RPS > 0 && c.RPS < b.RPS*(1-tol.RPS) {
			regs = append(regs, Regression{
				Name: c.Name, Metric: "rps",
				Base: b.RPS, Cur: c.RPS,
				Ratio: c.RPS / b.RPS, Tolerance: tol.RPS,
			})
		}
	}
	return regs, additions
}

// Compare flags every benchmark of cur whose ns/op or allocs/op grew
// beyond the respective tolerance relative to base (0.15 = 15%), or
// whose RPS dropped more than nsTol. Benchmarks present on only one
// side are ignored: a new benchmark has no baseline yet, and a deleted
// one has nothing to regress. Diff additionally reports the additions.
func Compare(base, cur *Report, nsTol, allocTol float64) []Regression {
	regs, _ := Diff(base, cur, Tolerances{Ns: nsTol, Alloc: allocTol, RPS: nsTol})
	return regs
}

// WriteJSON serializes the report, indented for reviewable diffs.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON loads a report written by WriteJSON.
func ReadJSON(r io.Reader) (*Report, error) {
	rep := &Report{}
	if err := json.NewDecoder(r).Decode(rep); err != nil {
		return nil, fmt.Errorf("benchcmp: decode baseline: %w", err)
	}
	return rep, nil
}
