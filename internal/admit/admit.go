// Package admit implements per-endpoint admission control for SEER's
// daemons: concurrency-limit middleware that sheds excess requests with
// 429 + Retry-After instead of queueing them.
//
// The design follows the overload lesson from the request-cloning
// queueing literature (PAPERS.md): once a server saturates, admitting
// less beats buffering more — every queued request adds latency for all
// of them and holds memory hostage. A Limiter therefore refuses early
// on three signals, each individually optional:
//
//   - in-flight count: more than MaxInFlight concurrent requests;
//   - external queue pressure: the daemon's ingestion queue is fuller
//     than MaxQueuePct (wired from supervise.Queue.FillPct);
//   - recent latency: the endpoint's EWMA service time exceeds
//     MaxLatency (always letting one request through so the estimate
//     keeps refreshing as the backend recovers).
//
// Every decision is counted on the shared obs registry
// (seer_admit_admitted_total / seer_admit_shed_total per endpoint), and
// ShedRecently feeds the daemon health probe so sustained shedding
// surfaces as "degraded" without any extra bookkeeping in the daemons.
// Limits are atomically settable, so a hot config reload retunes a live
// limiter between two requests.
package admit

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/fmg/seer/internal/obs"
)

// Limits configures one Limiter. Zero values disable the corresponding
// signal.
type Limits struct {
	// MaxInFlight bounds concurrently admitted requests (0 = unlimited).
	MaxInFlight int
	// MaxQueuePct sheds while the external queue-pressure signal is at
	// least this percent (0 = disabled; needs a pressure func).
	MaxQueuePct int
	// MaxLatency sheds requests beyond the first in-flight one while
	// the EWMA service time exceeds it (0 = disabled).
	MaxLatency time.Duration
	// RetryAfter is advertised on 429 responses (0 = 1s).
	RetryAfter time.Duration
}

// ewmaAlpha weights the most recent latency sample: high enough to
// track a recovering backend within a few requests, low enough that one
// outlier does not trip the latency signal.
const ewmaAlpha = 0.3

// Limiter admission-controls one endpoint group. All methods are safe
// for concurrent use; the zero value is not useful — construct with
// New.
type Limiter struct {
	name     string
	pressure func() int // external queue fill percent; nil = no signal

	maxInFlight  atomic.Int64
	maxQueuePct  atomic.Int64
	maxLatencyUS atomic.Int64
	retryAfter   atomic.Int64 // nanoseconds

	inflight atomic.Int64
	ewmaUS   atomic.Int64
	lastShed atomic.Int64 // unix nanos of the most recent shed (0 = never)

	admitted *obs.Counter
	shed     *obs.Counter
}

// New returns a Limiter named name (the endpoint label on its metrics),
// registering its instruments on reg. pressure, when non-nil, reports
// external queue fill in percent (supervise.Queue.FillPct) for the
// MaxQueuePct signal. Apply limits with SetLimits; until then nothing
// is shed.
func New(name string, reg *obs.Registry, pressure func() int) *Limiter {
	l := &Limiter{name: name, pressure: pressure}
	if reg != nil {
		l.admitted = reg.CounterVec("seer_admit_admitted_total",
			"Requests admitted by admission control.", "endpoint").With(name)
		l.shed = reg.CounterVec("seer_admit_shed_total",
			"Requests shed (429) by admission control.", "endpoint").With(name)
		reg.CounterFuncVec("seer_admit_inflight",
			"Requests currently in flight (sampled at scrape time).", "endpoint").
			Register(func() float64 { return float64(l.InFlight()) }, name)
	}
	l.SetLimits(Limits{})
	return l
}

// Name returns the endpoint label.
func (l *Limiter) Name() string { return l.name }

// SetLimits atomically replaces the limits; in-flight requests are
// unaffected.
func (l *Limiter) SetLimits(lim Limits) {
	l.maxInFlight.Store(int64(lim.MaxInFlight))
	l.maxQueuePct.Store(int64(lim.MaxQueuePct))
	l.maxLatencyUS.Store(lim.MaxLatency.Microseconds())
	ra := lim.RetryAfter
	if ra <= 0 {
		ra = time.Second
	}
	l.retryAfter.Store(int64(ra))
}

// InFlight returns the number of currently admitted requests.
func (l *Limiter) InFlight() int64 { return l.inflight.Load() }

// Sheds returns the total number of shed requests.
func (l *Limiter) Sheds() uint64 { return l.shed.Value() }

// Admitted returns the total number of admitted requests.
func (l *Limiter) Admitted() uint64 { return l.admitted.Value() }

// EWMALatency returns the current latency estimate.
func (l *Limiter) EWMALatency() time.Duration {
	return time.Duration(l.ewmaUS.Load()) * time.Microsecond
}

// ShedRecently reports whether any request was shed within the last
// window — the "sustained shedding" signal behind the daemon health
// probe: while true the daemon should report degraded, and it heals
// itself one window after the last shed.
func (l *Limiter) ShedRecently(window time.Duration) bool {
	at := l.lastShed.Load()
	return at != 0 && time.Since(time.Unix(0, at)) < window
}

// acquire admits or sheds one request.
func (l *Limiter) acquire() bool {
	n := l.inflight.Add(1)
	if max := l.maxInFlight.Load(); max > 0 && n > max {
		l.refuse()
		return false
	}
	if pct := l.maxQueuePct.Load(); pct > 0 && l.pressure != nil && int64(l.pressure()) >= pct {
		l.refuse()
		return false
	}
	// The latency signal never sheds the only in-flight request: that
	// one refreshes the EWMA, so recovery is observable.
	if lat := l.maxLatencyUS.Load(); lat > 0 && n > 1 && l.ewmaUS.Load() > lat {
		l.refuse()
		return false
	}
	l.admitted.Inc()
	return true
}

// refuse counts a shed and undoes the in-flight reservation.
func (l *Limiter) refuse() {
	l.inflight.Add(-1)
	l.shed.Inc()
	l.lastShed.Store(time.Now().UnixNano())
}

// release finishes an admitted request, folding its service time into
// the EWMA.
func (l *Limiter) release(elapsed time.Duration) {
	l.inflight.Add(-1)
	sample := elapsed.Microseconds()
	for {
		old := l.ewmaUS.Load()
		next := old + int64(float64(sample-old)*ewmaAlpha)
		if old == 0 {
			next = sample
		}
		if l.ewmaUS.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfterSeconds renders the Retry-After header value (whole
// seconds, minimum 1).
func (l *Limiter) retryAfterSeconds() string {
	s := int64(time.Duration(l.retryAfter.Load()).Round(time.Second) / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

// TryAcquire admits or sheds one request outside the HTTP middleware
// path — the hook a routing layer (the shard gateway) uses when the
// limiter guards a shard rather than an endpoint. On true the caller
// owns one in-flight slot and must call Release with the observed
// service time; on false the request was shed (counted, with the
// recent-shed clock touched) and RetryAfterSeconds advertises the
// backoff to propagate.
func (l *Limiter) TryAcquire() bool { return l.acquire() }

// Release finishes a TryAcquire'd request, folding its service time
// into the latency EWMA.
func (l *Limiter) Release(elapsed time.Duration) { l.release(elapsed) }

// RetryAfterSeconds renders the configured Retry-After value in whole
// seconds (minimum 1) for callers building their own 429 responses.
func (l *Limiter) RetryAfterSeconds() string { return l.retryAfterSeconds() }

// Wrap admission-controls next: shed requests get 429 with Retry-After
// and never reach it.
func (l *Limiter) Wrap(next http.Handler) http.Handler {
	return l.WrapFunc(next.ServeHTTP)
}

// WrapFunc is Wrap for handler functions.
func (l *Limiter) WrapFunc(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if !l.acquire() {
			w.Header().Set("Retry-After", l.retryAfterSeconds())
			http.Error(w, "overloaded: request shed by admission control",
				http.StatusTooManyRequests)
			return
		}
		start := time.Now()
		defer func() { l.release(time.Since(start)) }()
		next(w, req)
	}
}

// Set is a named group of limiters — one per daemon — so health probes
// and reload plumbing can address "all the daemon's limiters" at once.
type Set struct {
	limiters []*Limiter
}

// NewSet returns an empty Set.
func NewSet() *Set { return &Set{} }

// Add constructs a Limiter via New and tracks it in the set.
func (s *Set) Add(name string, reg *obs.Registry, pressure func() int) *Limiter {
	l := New(name, reg, pressure)
	s.limiters = append(s.limiters, l)
	return l
}

// Limiters returns the tracked limiters.
func (s *Set) Limiters() []*Limiter { return s.limiters }

// ShedRecently reports whether any tracked limiter shed within the
// window, naming the offenders.
func (s *Set) ShedRecently(window time.Duration) (bool, []string) {
	var names []string
	for _, l := range s.limiters {
		if l.ShedRecently(window) {
			names = append(names, l.name)
		}
	}
	return len(names) > 0, names
}
