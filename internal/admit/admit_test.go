package admit

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fmg/seer/internal/obs"
)

// get issues one GET through the handler and returns the recorder.
func get(h http.HandlerFunc) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	h(w, httptest.NewRequest(http.MethodGet, "/x", nil))
	return w
}

func TestNoLimitsAdmitsEverything(t *testing.T) {
	l := New("plan", obs.NewRegistry(), nil)
	h := l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	for i := 0; i < 50; i++ {
		if w := get(h); w.Code != http.StatusOK {
			t.Fatalf("request %d: code %d", i, w.Code)
		}
	}
	if l.Admitted() != 50 || l.Sheds() != 0 {
		t.Fatalf("admitted=%d sheds=%d", l.Admitted(), l.Sheds())
	}
}

func TestInFlightLimitSheds(t *testing.T) {
	reg := obs.NewRegistry()
	l := New("plan", reg, nil)
	l.SetLimits(Limits{MaxInFlight: 2, RetryAfter: 3 * time.Second})

	release := make(chan struct{})
	started := make(chan struct{}, 8)
	h := l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})

	var wg sync.WaitGroup
	codes := make([]int, 8)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = get(h).Code
		}(i)
	}
	<-started
	<-started // both slots occupied

	// Every further request is shed with 429 + Retry-After.
	for i := 2; i < 8; i++ {
		w := get(h)
		codes[i] = w.Code
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("request %d: code %d, want 429", i, w.Code)
		}
		if ra := w.Header().Get("Retry-After"); ra != "3" {
			t.Fatalf("Retry-After = %q, want 3", ra)
		}
	}
	if got := l.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d during saturation, want 2", got)
	}
	close(release)
	wg.Wait()
	if codes[0] != http.StatusOK || codes[1] != http.StatusOK {
		t.Fatalf("admitted requests got %d,%d", codes[0], codes[1])
	}
	if l.Admitted() != 2 || l.Sheds() != 6 {
		t.Fatalf("admitted=%d sheds=%d", l.Admitted(), l.Sheds())
	}
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", l.InFlight())
	}

	// The metrics surface carries the per-endpoint series.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`seer_admit_admitted_total{endpoint="plan"} 2`,
		`seer_admit_shed_total{endpoint="plan"} 6`,
		`seer_admit_inflight{endpoint="plan"} 0`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestQueuePressureSheds(t *testing.T) {
	var pct atomic.Int64
	l := New("miss", obs.NewRegistry(), func() int { return int(pct.Load()) })
	l.SetLimits(Limits{MaxQueuePct: 95})
	h := l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {})

	pct.Store(40)
	if w := get(h); w.Code != http.StatusOK {
		t.Fatalf("below threshold: code %d", w.Code)
	}
	pct.Store(95)
	if w := get(h); w.Code != http.StatusTooManyRequests {
		t.Fatalf("at threshold: code %d, want 429", w.Code)
	}
	pct.Store(120) // over-capacity after a queue shrink
	if w := get(h); w.Code != http.StatusTooManyRequests {
		t.Fatalf("over threshold: code %d, want 429", w.Code)
	}
	pct.Store(10)
	if w := get(h); w.Code != http.StatusOK {
		t.Fatalf("after recovery: code %d", w.Code)
	}
}

func TestLatencySignalSpairesLoneRequest(t *testing.T) {
	l := New("plan", obs.NewRegistry(), nil)
	l.SetLimits(Limits{MaxLatency: time.Millisecond})
	// Seed the EWMA with a slow request.
	slow := l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond)
	})
	get(slow)
	if l.EWMALatency() < time.Millisecond {
		t.Fatalf("EWMA %v did not capture slow sample", l.EWMALatency())
	}

	// A lone request is still admitted (it refreshes the estimate)...
	fast := l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {})
	if w := get(fast); w.Code != http.StatusOK {
		t.Fatalf("lone request shed: %d", w.Code)
	}

	// ...but concurrent ones beyond the first are shed while the EWMA is
	// above the limit.
	l.SetLimits(Limits{MaxLatency: time.Millisecond})
	get(slow) // push EWMA back up
	release := make(chan struct{})
	started := make(chan struct{})
	bgDone := make(chan struct{})
	go func() {
		defer close(bgDone)
		h := l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {
			close(started)
			<-release
		})
		get(h)
	}()
	<-started
	if w := get(fast); w.Code != http.StatusTooManyRequests {
		t.Fatalf("second concurrent request under high EWMA: %d, want 429", w.Code)
	}
	close(release)
	<-bgDone // back to zero in flight before measuring recovery

	// Lone fast requests eventually pull the EWMA back under the limit.
	for i := 0; i < 50 && l.EWMALatency() > time.Millisecond; i++ {
		get(fast)
	}
	if l.EWMALatency() > time.Millisecond {
		t.Fatalf("EWMA stuck at %v", l.EWMALatency())
	}
}

func TestShedRecently(t *testing.T) {
	l := New("rumor", obs.NewRegistry(), nil)
	if l.ShedRecently(time.Hour) {
		t.Fatal("fresh limiter reports shedding")
	}
	l.SetLimits(Limits{MaxQueuePct: 1})
	l.pressure = func() int { return 100 }
	get(l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {}))
	if !l.ShedRecently(time.Hour) {
		t.Fatal("shed not recorded")
	}
	if l.ShedRecently(time.Nanosecond) {
		t.Fatal("nanosecond window still matches")
	}

	s := NewSet()
	a := s.Add("a", nil, nil)
	s.Add("b", nil, nil)
	if hit, _ := s.ShedRecently(time.Hour); hit {
		t.Fatal("empty set sheds")
	}
	a.lastShed.Store(time.Now().UnixNano())
	hit, names := s.ShedRecently(time.Hour)
	if !hit || len(names) != 1 || names[0] != "a" {
		t.Fatalf("hit=%v names=%v", hit, names)
	}
}

func TestHotLimitChangeTakesEffect(t *testing.T) {
	l := New("plan", obs.NewRegistry(), nil)
	l.SetLimits(Limits{MaxInFlight: 1})

	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		get(l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {
			close(started)
			<-release
		}))
	}()
	<-started
	fast := l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {})
	if w := get(fast); w.Code != http.StatusTooManyRequests {
		t.Fatalf("over limit 1: code %d", w.Code)
	}
	// Raising the limit live admits the next request with no restart.
	l.SetLimits(Limits{MaxInFlight: 8})
	if w := get(fast); w.Code != http.StatusOK {
		t.Fatalf("after raise: code %d", w.Code)
	}
	close(release)
}

func TestConcurrentHammerRespectsBound(t *testing.T) {
	const limit = 4
	l := New("plan", obs.NewRegistry(), nil)
	l.SetLimits(Limits{MaxInFlight: limit})

	var inHandler, maxSeen atomic.Int64
	h := l.WrapFunc(func(w http.ResponseWriter, r *http.Request) {
		n := inHandler.Add(1)
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inHandler.Add(-1)
	})

	var wg sync.WaitGroup
	var ok2, shed atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				switch c := get(h).Code; c {
				case http.StatusOK:
					ok2.Add(1)
				case http.StatusTooManyRequests:
					shed.Add(1)
				default:
					panic(fmt.Sprintf("unexpected code %d", c))
				}
			}
		}()
	}
	wg.Wait()
	if maxSeen.Load() > limit {
		t.Fatalf("handler concurrency reached %d, limit %d", maxSeen.Load(), limit)
	}
	if ok2.Load() == 0 || shed.Load() == 0 {
		t.Fatalf("ok=%d shed=%d — hammer did not exercise both paths", ok2.Load(), shed.Load())
	}
	if got := ok2.Load() + shed.Load(); got != 64*20 {
		t.Fatalf("accounted %d of %d requests", got, 64*20)
	}
	if l.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", l.InFlight())
	}
}
