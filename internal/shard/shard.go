// Package shard turns seerd into a fault-isolated multi-tenant host:
// N independent user shards live in one process, each one a bulkhead
// owning its own supervised pipeline — bounded ingestion queue,
// correlator with its warm cluster cache, admission limiter, and SEERDB
// checkpoint path — so a panic, wedged clustering, or corrupt database
// in one tenant's shard degrades only that tenant and never restarts or
// stalls its neighbors.
//
// The paper's predictive hoarding is inherently per-user (each mobile
// client has its own observed accesses, clusters, and hoard plan, §3
// and §5); a shard is the failure-containment unit wrapped around one
// partition of those users. Shards have an explicit lifecycle,
//
//	opening → serving → draining → closed,
//
// with graceful drain over the fsync'd snapshot ladder: stop the
// stages, fold everything still queued into the correlator, write a
// final checkpoint, and let a replacement shard replay it — zero event
// loss, byte-identical plans on the other side. A Manager hosts the
// shards behind a consistent-hash ring and a Gateway fronts them with
// per-request timeouts, bounded retry with backoff and jitter on
// transient shard states, and health-aware routing (draining shards
// serve their stale plan cache; closed slots are rerouted to the
// replacement).
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/fmg/seer/internal/admit"
	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/core"
	"github.com/fmg/seer/internal/obs"
	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/strace"
	"github.com/fmg/seer/internal/supervise"
	"github.com/fmg/seer/internal/trace"
)

// State is a shard's lifecycle position. Transitions only move forward:
// opening → serving → draining → closed; a "restart" is a fresh Shard in
// the same slot, never a resurrected one.
type State int32

const (
	// Opening means the shard is restoring its snapshot and starting
	// stages; requests are refused as transient.
	Opening State = iota
	// Serving is the steady state: ingesting, planning, checkpointing.
	Serving
	// Draining means a drain is in progress: reads fall back to the
	// stale plan cache, writes are refused as transient (the gateway
	// retries them against the replacement).
	Draining
	// Closed means the final checkpoint is on disk and the shard will
	// never serve again; the manager routes its slot to a replacement.
	Closed
)

// String returns the lowercase wire name used in /shards JSON.
func (s State) String() string {
	switch s {
	case Opening:
		return "opening"
	case Serving:
		return "serving"
	case Draining:
		return "draining"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// Transient shard errors: the gateway retries these with backoff, since
// a draining or closed slot is moments from having a serving
// replacement. Everything else a shard returns is terminal for the
// request.
var (
	// ErrDraining refuses a mutation while the shard drains.
	ErrDraining = errors.New("shard draining")
	// ErrClosed refuses everything after the final checkpoint; the
	// caller should re-route (the slot's replacement answers).
	ErrClosed = errors.New("shard closed")
	// ErrOpening refuses requests while the snapshot restore is still
	// running.
	ErrOpening = errors.New("shard opening")
	// ErrNoPlan means a plan could not be built in time and no last-good
	// plan exists to fall back to — a terminal 503.
	ErrNoPlan = errors.New("no plan available yet")
)

// errDrainConflict marks a Drain refused because the shard was not in
// the serving state (another drain owns it, or it is already closed).
var errDrainConflict = errors.New("drain requires a serving shard")

// IsTransient reports whether err names a shard state the gateway
// should retry through rather than surface.
func IsTransient(err error) bool {
	return errors.Is(err, ErrDraining) || errors.Is(err, ErrClosed) || errors.Is(err, ErrOpening)
}

// Config builds one Shard.
type Config struct {
	// ID is the slot index (stable across drain/replace); the metric
	// label and snapshot filename derive from it.
	ID int
	// Dir is the snapshot directory; "" disables checkpointing.
	Dir string
	// Params are the correlator tunables for this shard.
	Params config.Params
	// Seed drives the correlator's tie-breaking.
	Seed int64
	// Metrics is the shared registry (shards share aggregate families
	// and label the per-shard ones).
	Metrics *obs.Registry
	// Tracer records ingestion/plan spans (shared across shards; spans
	// carry a shard attribute).
	Tracer *obs.Tracer
	// Logger is the parent logger; the shard derives a tagged child.
	Logger *obs.Logger

	// QueueCap / QueueBlock bound the shard's ingestion queue.
	QueueCap   int
	QueueBlock time.Duration
	// BudgetBytes is the hoard budget for /hoard answers.
	BudgetBytes int64
	// CheckpointEvery is the periodic snapshot interval.
	CheckpointEvery time.Duration
	// Supervisor tunes the shard's private supervision tree.
	Supervisor supervise.Config
	// Limits is the shard's admission-control policy.
	Limits admit.Limits
	// Rumor, when set, is the shard's replication client: a fresh /hoard
	// answer triggers a bounded hoard-fill sync against the rumor master,
	// traced as a child of the request span.
	Rumor *replic.RemoteRumor
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.QueueBlock <= 0 {
		c.QueueBlock = 50 * time.Millisecond
	}
	if c.BudgetBytes <= 0 {
		c.BudgetBytes = 512 << 20
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5 * time.Minute
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(64)
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogger(io.Discard)
	}
	return c
}

// event is one parsed trace event in flight between ingestion and the
// shard's feeder, tagged with its batch trace id and the ingest span
// that enqueued it, so the feeder's span nests under the right parent.
type event struct {
	ev     trace.Event
	tid    obs.TraceID
	parent obs.SpanID
}

// planCache is the shard's last-good rendered /plan and /hoard bodies.
type planCache struct {
	mu    sync.Mutex
	plan  []byte
	hoard []byte
	at    time.Time
}

func (c *planCache) set(hoard bool, b []byte) {
	c.mu.Lock()
	if hoard {
		c.hoard = b
	} else {
		c.plan = b
	}
	c.at = time.Now()
	c.mu.Unlock()
}

func (c *planCache) get(hoard bool) ([]byte, time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hoard {
		return c.hoard, c.at
	}
	return c.plan, c.at
}

// Shard is one tenant partition's bulkhead: correlator, queue, stages,
// limiter, plan cache, snapshot path. All exported methods are safe for
// concurrent use.
type Shard struct {
	id   int
	name string
	cfg  Config
	log  *obs.Logger

	state  atomic.Int32
	stateG *obs.Gauge // seer_shard_state{shard}

	// sem is the correlator lock, acquirable with a context so a plan
	// request can give up on a wedged clustering and serve stale.
	sem  chan struct{}
	corr *core.Correlator

	queue  *supervise.Queue[event]
	sup    *supervise.Supervisor
	lim    *admit.Limiter
	tracer *obs.Tracer

	// parser is the shard's strace line parser (stateful: per-pid fd
	// tables), serialized under parserMu.
	parserMu sync.Mutex
	parser   *strace.Parser

	budget    atomic.Int64
	plans     planCache
	lastTrace atomic.Uint64
	staleSrv  atomic.Int64

	// Shared aggregate counters (deduped by name on the registry).
	mPlans  *obs.Counter
	mStale  *obs.Counter
	mMisses *obs.Counter

	// feedHook, when set, runs before each event is fed — the chaos
	// tests' panic-injection point (atomic: injected while the feeder
	// runs).
	feedHook atomic.Pointer[func(trace.Event)]
	// wrapSave, when set, decorates the checkpoint op (fault.Sink).
	wrapSave atomic.Pointer[func(func() error) error]

	cancel  context.CancelFunc
	started atomic.Bool
}

// Open restores the shard's snapshot through the recovery ladder,
// starts its supervised stages under ctx, and transitions it to
// serving. A corrupt or missing snapshot is contained: the shard starts
// from its backup or a fresh database, logged, never fatal.
func Open(ctx context.Context, cfg Config) *Shard {
	cfg = cfg.withDefaults()
	s := &Shard{
		id:     cfg.ID,
		name:   strconv.Itoa(cfg.ID),
		cfg:    cfg,
		log:    cfg.Logger.With("component", "shard", "shard", strconv.Itoa(cfg.ID)),
		sem:    make(chan struct{}, 1),
		queue:  supervise.NewQueue[event](cfg.QueueCap, cfg.QueueBlock),
		tracer: cfg.Tracer,
		parser: strace.NewParser(),
	}
	s.state.Store(int32(Opening))
	s.stateG = cfg.Metrics.GaugeVec("seer_shard_state",
		"Shard lifecycle state (0 opening, 1 serving, 2 draining, 3 closed).",
		"shard").With(s.name)
	s.stateG.Set(int64(Opening))
	s.budget.Store(cfg.BudgetBytes)
	s.lim = admit.New("shard"+s.name, cfg.Metrics, s.queue.FillPct)
	s.lim.SetLimits(cfg.Limits)
	s.mPlans = cfg.Metrics.Counter("seer_plans_built_total",
		"Hoard-plan constructions (the /plan and /hoard endpoints plus one-shot mode).")
	s.mStale = cfg.Metrics.Counter("seer_stale_plans_served_total",
		"Plan/hoard responses served from the last-good cache.")
	s.mMisses = cfg.Metrics.Counter("seer_hoard_misses_total",
		"Hoard misses recorded through /miss (paper §4.4).")

	opts := core.Options{Params: &cfg.Params, Seed: cfg.Seed, Metrics: cfg.Metrics}
	s.corr = RestoreSnapshot(s.dbPath(), opts, s.log)

	sc := cfg.Supervisor
	if sc.OnEvent == nil {
		slog := s.log
		sc.OnEvent = func(e supervise.Event) {
			if e.Err != nil {
				slog.Error("stage failure", "stage", e.Stage, "kind", e.Kind,
					"err", firstLine(e.Err.Error()))
			}
		}
	}
	s.sup = supervise.New(sc)
	s.sup.Add("feeder", s.feedStage)
	if s.dbPath() != "" {
		s.sup.Add("checkpointer", s.checkpointStage)
	}

	sctx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	s.sup.Start(sctx)
	s.started.Store(true)
	s.setState(Serving)
	return s
}

// dbPath is the shard's snapshot path ("" when checkpointing is off).
func (s *Shard) dbPath() string {
	if s.cfg.Dir == "" {
		return ""
	}
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("shard-%03d.db", s.id))
}

// ID returns the slot index.
func (s *Shard) ID() int { return s.id }

// Name returns the metric label ("3").
func (s *Shard) Name() string { return s.name }

// State returns the current lifecycle state.
func (s *Shard) State() State { return State(s.state.Load()) }

func (s *Shard) setState(to State) {
	s.state.Store(int32(to))
	s.stateG.Set(int64(to))
}

// Limiter returns the shard's admission limiter (the gateway acquires
// through it before touching the shard).
func (s *Shard) Limiter() *admit.Limiter { return s.lim }

// Health returns the shard's supervised health; a closed shard reports
// healthy (its replacement carries the slot).
func (s *Shard) Health() supervise.HealthState {
	if s.State() == Closed {
		return supervise.Healthy
	}
	return s.sup.Health()
}

// Restarts returns the shard's total stage restarts.
func (s *Shard) Restarts() uint64 { return s.sup.Restarts() }

// QueueStats returns the ingestion queue depth, capacity, and drops.
func (s *Shard) QueueStats() (depth, capacity int, drops uint64) {
	return s.queue.Len(), s.queue.Cap(), s.queue.Drops()
}

// Events returns the correlator's fed-event count (atomic in the
// correlator, so no lock needed for an operator view).
func (s *Shard) Events() uint64 { return s.corr.Events() }

// StaleServed returns how many reads the shard answered from its
// last-good cache.
func (s *Shard) StaleServed() int64 { return s.staleSrv.Load() }

// lock acquires the correlator lock unconditionally.
func (s *Shard) lock() { s.sem <- struct{}{} }

// unlock releases it.
func (s *Shard) unlock() { <-s.sem }

// lockCtx acquires the correlator lock unless ctx ends first.
func (s *Shard) lockCtx(ctx context.Context) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// stateErr maps a non-serving state to its transient error (nil while
// serving).
func (s *Shard) stateErr() error {
	switch s.State() {
	case Opening:
		return ErrOpening
	case Draining:
		return ErrDraining
	case Closed:
		return ErrClosed
	}
	return nil
}

// feedCtx applies one event under the correlator lock, giving up when
// ctx ends first (a stage shutdown racing a wedged correlator) — the
// caller re-queues the event so the drain fold still sees it.
func (s *Shard) feedCtx(ctx context.Context, ev trace.Event) bool {
	if h := s.feedHook.Load(); h != nil {
		(*h)(ev)
	}
	if !s.lockCtx(ctx) {
		return false
	}
	s.corr.Feed(ev)
	s.unlock()
	return true
}

// feedStage drains the queue into the correlator, one span per
// contiguous same-trace run (mirrors the single-tenant feeder). On
// shutdown an event the stage could not feed goes back into the queue
// rather than being dropped: Drain folds whatever is left.
func (s *Shard) feedStage(ctx context.Context) error {
	for {
		qe, ok := s.queue.Get(ctx)
		if !ok {
			return nil
		}
		var (
			sp   *obs.ActiveSpan
			cur  obs.TraceID
			curP obs.SpanID
			n    int64
		)
		end := func() {
			if sp != nil {
				sp.AttrInt("events", n).End()
			}
			sp, n = nil, 0
		}
		for {
			if sp == nil || qe.tid != cur || qe.parent != curP {
				end()
				cur, curP = qe.tid, qe.parent
				if curP != 0 {
					sp = s.tracer.StartChild(obs.SpanContext{Trace: cur, Span: curP}, "feed")
				} else {
					sp = s.tracer.StartSpan(cur, "feed")
				}
				sp = sp.Attr("shard", s.name)
			}
			if !s.feedCtx(ctx, qe.ev) {
				s.queue.Put(context.Background(), qe)
				end()
				return nil
			}
			n++
			next, more := s.queue.TryGet()
			if !more {
				break
			}
			qe = next
		}
		end()
	}
}

// checkpointStage periodically snapshots the shard's database; failures
// are logged and retried next interval, never fatal to the stage.
func (s *Shard) checkpointStage(ctx context.Context) error {
	t := time.NewTicker(s.cfg.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
		if err := s.save(); err != nil {
			s.log.Warn("checkpoint failed", "err", err)
		}
	}
}

// save writes the fsync'd snapshot under the correlator lock.
func (s *Shard) save() error {
	op := func() error {
		s.lock()
		defer s.unlock()
		return SaveSnapshot(s.corr, s.dbPath())
	}
	if wrap := s.wrapSave.Load(); wrap != nil {
		return (*wrap)(op)
	}
	return op()
}

// IngestLines parses strace lines and enqueues the resulting events as
// one traced batch. A gateway-propagated span context on ctx parents
// the ingest span (and through it the feed span) inside the request's
// distributed trace; without one the batch mints its own trace id.
// Only a serving shard ingests; any other state is a transient error
// the gateway retries against the slot's replacement.
func (s *Shard) IngestLines(ctx context.Context, lines []string) (int, error) {
	if err := s.stateErr(); err != nil {
		return 0, err
	}
	var (
		tid obs.TraceID
		sp  *obs.ActiveSpan
	)
	if sc, ok := obs.SpanFromContext(ctx); ok && sc.Valid() {
		tid = sc.Trace
		sp = s.tracer.StartChild(sc, "ingest")
	} else {
		tid = s.tracer.NewTrace()
		sp = s.tracer.StartSpan(tid, "ingest")
	}
	sp = sp.Attr("shard", s.name).Attr("source", "gateway")
	var n int
	s.parserMu.Lock()
	evs := make([]trace.Event, 0, len(lines))
	for _, line := range lines {
		if ev, ok := s.parser.ParseLine(line); ok {
			evs = append(evs, ev)
		}
	}
	s.parserMu.Unlock()
	parent := sp.Context().Span
	for _, ev := range evs {
		if !s.queue.Put(ctx, event{ev: ev, tid: tid, parent: parent}) {
			break
		}
		n++
	}
	sp.AttrInt("events", int64(n)).End()
	s.lastTrace.Store(uint64(tid))
	return n, nil
}

// serveStale answers from the last-good cache; ErrNoPlan without one.
func (s *Shard) serveStale(hoard bool) ([]byte, bool, error) {
	body, _ := s.plans.get(hoard)
	if body == nil {
		return nil, false, ErrNoPlan
	}
	s.staleSrv.Add(1)
	s.mStale.Inc()
	return body, true, nil
}

// Plan renders the full inclusion order. A draining shard serves its
// stale cache (reads keep answering through a drain); a wedged or
// deadline-bound clustering falls back to the cache too. The stale
// return reports whether the body came from the cache.
func (s *Shard) Plan(ctx context.Context) (body []byte, stale bool, err error) {
	switch s.State() {
	case Opening:
		return nil, false, ErrOpening
	case Closed:
		return nil, false, ErrClosed
	case Draining:
		return s.serveStale(false)
	}
	sp := s.reqSpan(ctx, "plan")
	defer sp.End()
	if !s.lockCtx(ctx) {
		sp.Attr("outcome", "stale")
		return s.serveStale(false)
	}
	s.mPlans.Inc()
	plan, perr := s.corr.PlanContext(ctx)
	if perr != nil {
		s.unlock()
		sp.Attr("outcome", "stale")
		return s.serveStale(false)
	}
	var buf bytes.Buffer
	for i, e := range plan.Entries {
		fmt.Fprintf(&buf, "%5d %8s %10d %12d %s\n",
			i, e.Reason, e.File.Size, e.Cum, e.File.Path)
	}
	s.unlock()
	sp.Attr("outcome", "fresh").AttrInt("entries", int64(len(plan.Entries)))
	s.plans.set(false, buf.Bytes())
	return buf.Bytes(), false, nil
}

// Hoard renders the chosen files at the shard's budget with the same
// stale-fallback discipline as Plan.
func (s *Shard) Hoard(ctx context.Context) (body []byte, stale bool, err error) {
	switch s.State() {
	case Opening:
		return nil, false, ErrOpening
	case Closed:
		return nil, false, ErrClosed
	case Draining:
		return s.serveStale(true)
	}
	sp := s.reqSpan(ctx, "hoard")
	defer sp.End()
	if !s.lockCtx(ctx) {
		sp.Attr("outcome", "stale")
		return s.serveStale(true)
	}
	var buf bytes.Buffer
	ids, herr := s.renderHoard(ctx, &buf)
	s.unlock()
	if herr != nil {
		sp.Attr("outcome", "stale")
		return s.serveStale(true)
	}
	sp.Attr("outcome", "fresh")
	s.plans.set(true, buf.Bytes())
	s.hoardFill(ctx, sp, ids)
	return buf.Bytes(), false, nil
}

// hoardFillMax bounds how many files one /hoard answer pre-fetches from
// the rumor master — the sync is best-effort warm-up, not a transfer
// protocol, and must never turn a plan request into a bulk copy.
const hoardFillMax = 64

// hoardFill pre-fetches a fresh hoard's head from the rumor master (one
// batched /fetch round trip, traced as a child of the request span).
// Failures are recorded on the span and otherwise ignored: the hoard
// listing already went to the client.
func (s *Shard) hoardFill(ctx context.Context, sp *obs.ActiveSpan, ids []simfs.FileID) {
	if s.cfg.Rumor == nil || len(ids) == 0 {
		return
	}
	if len(ids) > hoardFillMax {
		ids = ids[:hoardFillMax]
	}
	fctx := obs.ContextWithSpan(ctx, sp.Context())
	failed, err := s.cfg.Rumor.SyncBatchCtx(fctx, ids, nil)
	switch {
	case err != nil:
		sp.Attr("rumor", "error")
	case len(failed) > 0:
		sp.Attr("rumor", "partial").AttrInt("rumor_failed", int64(len(failed)))
	default:
		sp.Attr("rumor", "filled").AttrInt("rumor_files", int64(len(ids)))
	}
}

// reqSpan opens the span for a read request: parented on the gateway's
// propagated span context when ctx carries one, else tagged onto the
// shard's last ingest trace (the single-tenant daemon's convention).
func (s *Shard) reqSpan(ctx context.Context, stage string) *obs.ActiveSpan {
	if sc, ok := obs.SpanFromContext(ctx); ok && sc.Valid() {
		return s.tracer.StartChild(sc, stage).Attr("shard", s.name)
	}
	return s.tracer.StartSpan(obs.TraceID(s.lastTrace.Load()), stage).Attr("shard", s.name)
}

// renderHoard writes the hoard listing and returns the chosen file ids
// (caller holds the lock).
func (s *Shard) renderHoard(ctx context.Context, w io.Writer) ([]simfs.FileID, error) {
	s.mPlans.Inc()
	plan, err := s.corr.PlanContext(ctx)
	if err != nil {
		return nil, err
	}
	contents := plan.Fill(s.budget.Load(), s.corr.Params().SkipUnfittingClusters)
	fmt.Fprintf(w, "# hoard: %d files, %d bytes of %d budget\n",
		contents.Len(), contents.UsedBytes(), contents.Budget())
	for _, l := range []struct {
		name string
		link replic.Link
	}{
		{"28.8k modem", replic.Modem28k},
		{"ISDN", replic.ISDN},
		{"10M ethernet", replic.Ethernet10},
	} {
		est := replic.EstimateSync(s.corr.FS(), contents.IDs(), l.link)
		fmt.Fprintf(w, "# cold fill over %-12s %v\n", l.name+":", est.Duration.Round(time.Second))
	}
	for _, id := range contents.IDs() {
		if f := s.corr.FS().Get(id); f != nil {
			fmt.Fprintln(w, f.Path)
		}
	}
	return contents.IDs(), nil
}

// Clusters renders the multi-member clusters; busy shards refuse rather
// than block (there is no cluster cache to fall back to).
func (s *Shard) Clusters(ctx context.Context) ([]byte, error) {
	if err := s.stateErr(); err != nil {
		return nil, err
	}
	if !s.lockCtx(ctx) {
		return nil, ErrNoPlan
	}
	defer s.unlock()
	res, err := s.corr.ClustersContext(ctx)
	if err != nil {
		return nil, ErrNoPlan
	}
	var buf bytes.Buffer
	for _, cl := range res.Clusters {
		if len(cl.Members) < 2 {
			continue
		}
		fmt.Fprintf(&buf, "cluster %d (%d files):\n", cl.ID, len(cl.Members))
		for _, m := range cl.Members {
			if f := s.corr.FS().Get(m); f != nil {
				fmt.Fprintf(&buf, "  %s\n", f.Path)
			}
		}
	}
	return buf.Bytes(), nil
}

// Miss records a hoard miss (§4.4), forcing the file and its project
// mates into future plans. Mutations need a serving shard.
func (s *Shard) Miss(ctx context.Context, path string) ([]string, error) {
	if err := s.stateErr(); err != nil {
		return nil, err
	}
	if !s.lockCtx(ctx) {
		return nil, context.DeadlineExceeded
	}
	s.mMisses.Inc()
	mates := s.corr.ForceHoard(path)
	s.unlock()
	return mates, nil
}

// Stats renders the observer statistics.
func (s *Shard) Stats(ctx context.Context) ([]byte, error) {
	if s.State() == Closed {
		return nil, ErrClosed
	}
	if !s.lockCtx(ctx) {
		return nil, context.DeadlineExceeded
	}
	defer s.unlock()
	st := s.corr.Observer().Stats()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "events %d\nreferences %d\nknown %d\ntracked %d\nfrequent %d\n",
		st.Events, st.References, s.corr.FS().Len(), s.corr.Table().Len(),
		len(s.corr.Observer().FrequentFiles()))
	return buf.Bytes(), nil
}

// ApplyRuntime pushes the hot-reloadable settings into the shard — but
// only while it is serving. A draining or closed shard must never see
// new Params (that would resurrect a retiring pipeline or mutate a
// state that is already checkpointed for handoff); the replacement
// shard in the slot picks up the new runtime instead. Reports whether
// the settings were applied.
func (s *Shard) ApplyRuntime(rt config.Runtime) bool {
	if s.State() != Serving {
		return false
	}
	s.queue.SetCap(rt.Daemon.QueueCap)
	s.queue.SetBlock(time.Duration(rt.Daemon.QueueBlockMS) * time.Millisecond)
	s.budget.Store(rt.Daemon.HoardBudgetMB << 20)
	lat := time.Duration(rt.Admit.MaxLatencyMS) * time.Millisecond
	s.lim.SetLimits(admit.Limits{
		MaxInFlight: rt.Admit.PlanMaxInFlight,
		MaxQueuePct: rt.Admit.MaxQueuePct,
		MaxLatency:  lat,
		RetryAfter:  time.Duration(rt.Admit.RetryAfterSec) * time.Second,
	})
	// Params need the correlator lock. Bounded: one wedged shard may
	// cost the reload paramApplyTimeout, never block neighbors forever
	// (the hot non-param knobs above applied already). Re-check the
	// state under the lock: a drain that began between the test above
	// and here must not have new Params applied beneath it — the state
	// flips before Drain touches the correlator, so Serving observed
	// while holding the lock is authoritative.
	ctx, cancel := context.WithTimeout(context.Background(), paramApplyTimeout)
	defer cancel()
	if s.lockCtx(ctx) {
		if s.State() == Serving {
			s.corr.SetParams(rt.Params)
		}
		s.unlock()
	} else {
		s.log.Warn("reload: params not applied, correlator busy past deadline")
	}
	return true
}

// paramApplyTimeout bounds how long a reload waits on one shard's
// correlator lock before skipping its Params push (a variable so tests
// can tighten it).
var paramApplyTimeout = 5 * time.Second

// Drain executes the shard's half of the drain protocol: flip to
// draining (ingest refused, reads go stale), stop the supervised
// stages, fold every queued event into the correlator, write the final
// fsync'd checkpoint, and close. ctx bounds the fold — a wedged
// correlator cannot hang a drain forever, but a timed-out drain
// reports how many events it abandoned. After Drain returns nil, the
// snapshot at the shard's path replays into a byte-identical plan.
func (s *Shard) Drain(ctx context.Context) error {
	if !s.state.CompareAndSwap(int32(Serving), int32(Draining)) {
		return fmt.Errorf("shard %s: %w (state %s)", s.name, errDrainConflict, s.State())
	}
	s.stateG.Set(int64(Draining))
	s.log.Info("drain started", "queued", s.queue.Len())
	s.cancel()
	s.sup.Wait()
	// Fold the tail of the queue under the drain deadline: events it
	// cannot fold are lost only on a wedged shard, and counted.
	lost := 0
	for {
		qe, ok := s.queue.TryGet()
		if !ok {
			break
		}
		if !s.lockCtx(ctx) {
			lost = 1 + s.queue.Len()
			break
		}
		s.corr.Feed(qe.ev)
		s.unlock()
	}
	var err error
	if s.dbPath() != "" {
		if !s.lockCtx(ctx) {
			err = fmt.Errorf("shard %s: final checkpoint: correlator wedged past drain deadline", s.name)
		} else {
			err = SaveSnapshot(s.corr, s.dbPath())
			s.unlock()
		}
	}
	s.setState(Closed)
	if lost > 0 && err == nil {
		err = fmt.Errorf("shard %s: drain abandoned %d queued events (correlator wedged)", s.name, lost)
	}
	if err != nil {
		s.log.Error("drain finished with error", "err", err)
	} else {
		s.log.Info("drain complete", "events", s.corr.Events())
	}
	return err
}

// Close runs the drain protocol for process shutdown (final checkpoint
// included). If another goroutine's Drain already owns the shard, Close
// just waits for it to reach closed.
func (s *Shard) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := s.Drain(ctx)
	if errors.Is(err, errDrainConflict) {
		// A concurrent drain owns the shutdown (or already finished);
		// wait for the final checkpoint rather than double-draining.
		for s.State() != Closed && ctx.Err() == nil {
			time.Sleep(5 * time.Millisecond)
		}
		if s.State() == Closed {
			return nil
		}
	}
	return err
}

// bakSuffix names the rotated previous snapshot kept beside the
// primary.
const bakSuffix = ".bak"

// RestoreSnapshot climbs the startup recovery ladder: the primary
// snapshot, then its .bak rotation, then a fresh database. Corruption
// is downgraded and logged — a poisoned SEERDB costs one shard at most
// one checkpoint interval of learning, never the process.
func RestoreSnapshot(path string, opts core.Options, log *obs.Logger) *core.Correlator {
	if path == "" {
		return core.New(opts)
	}
	sawAny := false
	for _, cand := range []string{path, path + bakSuffix} {
		f, err := os.Open(cand)
		if err != nil {
			if !os.IsNotExist(err) {
				log.Warn("cannot open snapshot", "path", cand, "err", err)
				sawAny = true
			}
			continue
		}
		sawAny = true
		c, lerr := core.Load(f, opts)
		f.Close()
		if lerr != nil {
			log.Warn("snapshot unusable", "path", cand, "err", lerr)
			continue
		}
		if cand != path {
			log.Warn("primary snapshot lost; recovered from backup", "path", cand)
		}
		log.Info("database restored", "path", cand,
			"events", c.Events(), "files", c.FS().Len())
		return c
	}
	if sawAny {
		log.Warn("no usable snapshot; starting with a fresh database")
	}
	return core.New(opts)
}

// SaveSnapshot writes an fsync'd snapshot next to path and rotates it
// into place: serialize to a temp file, fsync, move the previous
// snapshot to .bak, rename the temp over path, fsync the directory. A
// crash at any step leaves a loadable snapshot at path or path.bak —
// exactly the ladder RestoreSnapshot climbs.
func SaveSnapshot(c *core.Correlator, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+bakSuffix); err != nil {
			os.Remove(tmp)
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so completed renames survive power loss;
// best effort on filesystems that refuse directory fsync.
func syncDir(dir string) {
	df, err := os.Open(dir)
	if err != nil {
		return
	}
	df.Sync()
	df.Close()
}

// firstLine truncates s at its first newline (panic errors carry full
// stack traces).
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// unused guard so simfs stays imported if renderHoard changes shape.
var _ = simfs.FileID(0)
