package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/obs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/supervise"
)

// contentText is the Content-Type of every text endpoint.
const contentText = "text/plain; charset=utf-8"

// StaleHeader marks a response served from a shard's last-good plan
// cache rather than a fresh clustering (same header the single-tenant
// daemon uses).
const StaleHeader = "X-Seer-Stale"

// maxIngestBody bounds one POST /events body: big enough for a day of
// strace, small enough that a hostile client cannot balloon the heap.
const maxIngestBody = 32 << 20

// Policy is the gateway's hot-reloadable request discipline.
type Policy struct {
	// MaxAttempts bounds tries per request across re-routes (minimum 1).
	MaxAttempts int
	// BaseDelay/MaxDelay/Jitter shape the retry backoff.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	Jitter    float64
	// Timeout bounds one whole request including retries.
	Timeout time.Duration
	// DrainTimeout bounds a POST /shards/drain migration.
	DrainTimeout time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Timeout <= 0 {
		p.Timeout = 30 * time.Second
	}
	if p.DrainTimeout <= 0 {
		p.DrainTimeout = 60 * time.Second
	}
	return p
}

// PolicyFromRuntime maps the hot gateway knobs onto a Policy.
func PolicyFromRuntime(rt config.Runtime) Policy {
	return Policy{
		MaxAttempts:  rt.Daemon.GatewayRetries,
		BaseDelay:    time.Duration(rt.Daemon.GatewayRetryBaseMS) * time.Millisecond,
		Timeout:      time.Duration(rt.Daemon.GatewayTimeoutMS) * time.Millisecond,
		DrainTimeout: time.Duration(rt.Daemon.DrainTimeoutMS) * time.Millisecond,
	}
}

// Gateway fronts a Manager with user→shard routing plus the failure
// discipline the bulkheads need to pay off: per-request timeouts,
// bounded retry with backoff+jitter on transient shard states (via
// hoard.RetryPolicy — the same backoff core the replication paths use),
// 429/Retry-After propagation from per-shard admission, and
// health-aware routing that never hangs a caller on a draining or
// replaced shard.
type Gateway struct {
	mgr    *Manager
	pol    atomic.Pointer[Policy]
	rand   *stats.Rand
	log    *obs.Logger
	tracer *obs.Tracer

	mRetries   *obs.CounterVec   // seer_gateway_retries_total{endpoint}
	mRouteErrs *obs.CounterVec   // seer_gateway_route_errors_total{endpoint}
	mLatency   *obs.HistogramVec // seer_gateway_request_seconds{endpoint}

	// sleep is the backoff delay hook (tests replace it).
	sleep func(context.Context, time.Duration)
}

// gatewayEndpoints are the routed endpoints, the closed label set of
// the per-endpoint instruments.
var gatewayEndpoints = []string{"plan", "hoard", "clusters", "stats", "miss", "events"}

// NewGateway wires a gateway over mgr. pol zero-values get defaults.
func NewGateway(mgr *Manager, pol Policy) *Gateway {
	g := &Gateway{
		mgr: mgr,
		// Locked: one gateway rand feeds backoff jitter for every
		// concurrent request goroutine.
		rand:   stats.NewLockedRand(mgr.cfg.Seed ^ 0x6761746577617973), // "gateways"
		log:    mgr.cfg.Logger.With("component", "gateway"),
		tracer: mgr.cfg.Tracer,
		mRetries: mgr.cfg.Metrics.CounterVec("seer_gateway_retries_total",
			"Gateway retries of transient shard errors.", "endpoint"),
		mRouteErrs: mgr.cfg.Metrics.CounterVec("seer_gateway_route_errors_total",
			"Gateway requests that exhausted retries or found no usable shard.", "endpoint"),
		mLatency: mgr.cfg.Metrics.HistogramVec("seer_gateway_request_seconds",
			"Successful gateway request latency (includes retries and backoff).",
			nil, "endpoint"),
		sleep: sleepCtx,
	}
	// Exemplar-referenced traces stay pinned in the span ring, so
	// following a p99 exemplar to /debug/traces never comes back empty.
	for _, ep := range gatewayEndpoints {
		g.mLatency.With(ep).RetainExemplars(g.tracer)
	}
	g.SetPolicy(pol)
	return g
}

// RequestHist returns the latency histogram for one endpoint (the SLO
// monitors sample it).
func (g *Gateway) RequestHist(endpoint string) *obs.Histogram {
	return g.mLatency.With(endpoint)
}

// RouteErrors returns the cumulative route-error count for one
// endpoint (requests that exhausted retries or timed out — the SLO
// monitors' bad-event feed).
func (g *Gateway) RouteErrors(endpoint string) uint64 {
	return g.mRouteErrs.With(endpoint).Value()
}

// SetPolicy hot-swaps the request discipline (config reload hook).
func (g *Gateway) SetPolicy(pol Policy) {
	p := pol.withDefaults()
	g.pol.Store(&p)
}

// Policy returns the current discipline.
func (g *Gateway) Policy() Policy { return *g.pol.Load() }

// Manager returns the routed manager.
func (g *Gateway) Manager() *Manager { return g.mgr }

// sleepCtx waits d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Handler returns the gateway mux: the single-tenant endpoints, each
// taking ?user= for routing, plus the /shards operations surface.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", g.handlePlan)
	mux.HandleFunc("/hoard", g.handleHoard)
	mux.HandleFunc("/clusters", g.handleClusters)
	mux.HandleFunc("/miss", g.handleMiss)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/events", g.handleEvents)
	mux.HandleFunc("/shards", g.handleShards)
	mux.HandleFunc("/shards/drain", g.handleDrain)
	mux.HandleFunc("/healthz", g.healthHandler(false))
	mux.HandleFunc("/readyz", g.healthHandler(true))
	return mux
}

// outcome is one routed request's terminal result.
type outcome struct {
	status     int
	body       []byte
	stale      bool
	retryAfter string
	err        string
	trace      obs.TraceID // request trace, echoed as TraceHeader
}

// shardOp runs one attempt against the routed shard. A transient
// error return means "retry through the gateway's backoff"; anything
// else must be folded into the outcome and returned nil.
type shardOp func(ctx context.Context, s *Shard) (body []byte, stale bool, err error)

// boundCtx derives the request context bounded by the policy timeout
// (or a shorter client ?timeout_ms).
func (g *Gateway) boundCtx(req *http.Request) (context.Context, context.CancelFunc) {
	d := g.Policy().Timeout
	if ms := req.URL.Query().Get("timeout_ms"); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 &&
			time.Duration(v)*time.Millisecond < d {
			d = time.Duration(v) * time.Millisecond
		}
	}
	return context.WithTimeout(req.Context(), d)
}

// route runs op against user's shard with the full discipline: timeout,
// bounded backoff+jitter retry on transient states (re-routing each
// attempt, so a replaced shard is picked up mid-request), admission
// shed → terminal 429 with the shard's Retry-After, terminal errors
// classified to status codes. Never hangs: every path is ctx-bounded.
func (g *Gateway) route(ctx context.Context, endpoint, user string, op shardOp) outcome {
	pol := g.Policy()
	var out outcome
	rp := hoard.RetryPolicy{
		MaxAttempts: pol.MaxAttempts,
		BaseDelay:   pol.BaseDelay,
		MaxDelay:    pol.MaxDelay,
		Jitter:      pol.Jitter,
		Rand:        g.rand,
		Sleep:       func(d time.Duration) { g.sleep(ctx, d) },
		OnRetry: func(int, error) {
			g.mRetries.With(endpoint).Inc()
		},
	}
	// Every attempt becomes a child of the request's root span, so
	// retries show up as sibling spans under one parent in the stitched
	// trace tree.
	parent, _ := obs.SpanFromContext(ctx)
	attempt := 0
	// DoCtx, not Do: when the client disconnects or the request deadline
	// expires mid-backoff, the retry loop must stop right there — not
	// sleep through the rest of its schedule and burn another attempt on
	// a dead request.
	err := rp.DoCtx(ctx, func() error {
		attempt++
		sp := g.tracer.StartChild(parent, "attempt").AttrInt("attempt", int64(attempt))
		defer sp.End()
		if cerr := ctx.Err(); cerr != nil {
			sp.Attr("outcome", "timeout")
			out = outcome{status: http.StatusGatewayTimeout, err: "request timed out"}
			return nil
		}
		s := g.mgr.Route(user)
		if s == nil {
			sp.Attr("outcome", "no_shard")
			out = outcome{status: http.StatusServiceUnavailable, err: "no shard for user"}
			return nil
		}
		sp.Attr("shard", s.name)
		lim := s.Limiter()
		if !lim.TryAcquire() {
			// Honor per-shard admission: the shard is overloaded, not
			// broken — propagate the shed verbatim, don't hammer it
			// with retries.
			sp.Attr("outcome", "shed")
			out = outcome{
				status:     http.StatusTooManyRequests,
				retryAfter: lim.RetryAfterSeconds(),
				err:        "overloaded: request shed by shard admission control",
			}
			return nil
		}
		start := time.Now()
		body, stale, oerr := op(obs.ContextWithSpan(ctx, sp.Context()), s)
		lim.Release(time.Since(start))
		if oerr == nil {
			if stale {
				sp.Attr("outcome", "stale")
			} else {
				sp.Attr("outcome", "ok")
			}
			out = outcome{status: http.StatusOK, body: body, stale: stale}
			return nil
		}
		if IsTransient(oerr) && ctx.Err() == nil {
			sp.Attr("outcome", "retry")
			return oerr // back off, re-route, retry
		}
		sp.Attr("outcome", "error")
		out = outcome{status: http.StatusServiceUnavailable, err: oerr.Error()}
		if ctx.Err() != nil {
			out.status = http.StatusGatewayTimeout
		}
		return nil
	})
	if err != nil {
		if ctx.Err() != nil {
			// The request died mid-backoff; DoCtx aborted the sleep.
			out = outcome{status: http.StatusGatewayTimeout,
				err: fmt.Sprintf("request timed out retrying transient shard state: %v", err)}
		} else {
			// Retries exhausted while the slot was still in transition.
			out = outcome{status: http.StatusServiceUnavailable,
				err: fmt.Sprintf("shard unavailable after %d attempts: %v", pol.MaxAttempts, err)}
		}
	}
	if out.status == http.StatusServiceUnavailable || out.status == http.StatusGatewayTimeout {
		g.mRouteErrs.With(endpoint).Inc()
	}
	return out
}

// write renders an outcome.
func (g *Gateway) write(w http.ResponseWriter, out outcome) {
	if out.retryAfter != "" {
		w.Header().Set("Retry-After", out.retryAfter)
	}
	if out.trace != 0 {
		w.Header().Set(TraceHeader, out.trace.String())
	}
	if out.status != http.StatusOK {
		http.Error(w, out.err, out.status)
		return
	}
	if out.stale {
		w.Header().Set(StaleHeader, "true")
	}
	w.Write(out.body)
}

// user extracts the routing key; "" means the caller forgot it.
func user(req *http.Request) string { return req.URL.Query().Get("user") }

// TraceHeader echoes the request's trace id back to the client, so
// `curl -i` hands the operator the id to feed `seerctl trace`.
const TraceHeader = "X-Seer-Trace"

// rootSpan opens the request's root span at the gateway edge, adopting
// an inbound traceparent when an upstream already began the trace and
// minting a fresh trace otherwise.
func (g *Gateway) rootSpan(req *http.Request, endpoint string) *obs.ActiveSpan {
	if sc, ok := obs.Extract(req.Header); ok {
		return g.tracer.StartChild(sc, "gateway:"+endpoint)
	}
	return g.tracer.StartRoot("gateway:" + endpoint)
}

// traced runs the routed request under its root span and records the
// per-endpoint latency (successes only — errors feed the route-error
// counter instead) with the trace id as the bucket exemplar.
func (g *Gateway) traced(ctx context.Context, req *http.Request, endpoint, user string, op shardOp) outcome {
	root := g.rootSpan(req, endpoint)
	start := time.Now()
	out := g.route(obs.ContextWithSpan(ctx, root.Context()), endpoint, user, op)
	if out.status == http.StatusOK {
		g.mLatency.With(endpoint).ObserveTrace(time.Since(start).Seconds(), root.Context().Trace)
	}
	root.AttrInt("status", int64(out.status)).End()
	if sc := root.Context(); sc.Valid() {
		out.trace = sc.Trace
	}
	return out
}

// serve is the common GET wrapper: extract user, bound the context,
// route under the root span, render.
func (g *Gateway) serve(w http.ResponseWriter, req *http.Request, endpoint string, op shardOp) {
	w.Header().Set("Content-Type", contentText)
	u := user(req)
	if u == "" {
		http.Error(w, "missing user parameter", http.StatusBadRequest)
		return
	}
	ctx, cancel := g.boundCtx(req)
	defer cancel()
	g.write(w, g.traced(ctx, req, endpoint, u, op))
}

func (g *Gateway) handlePlan(w http.ResponseWriter, req *http.Request) {
	g.serve(w, req, "plan", func(ctx context.Context, s *Shard) ([]byte, bool, error) {
		return s.Plan(ctx)
	})
}

func (g *Gateway) handleHoard(w http.ResponseWriter, req *http.Request) {
	g.serve(w, req, "hoard", func(ctx context.Context, s *Shard) ([]byte, bool, error) {
		return s.Hoard(ctx)
	})
}

func (g *Gateway) handleClusters(w http.ResponseWriter, req *http.Request) {
	g.serve(w, req, "clusters", func(ctx context.Context, s *Shard) ([]byte, bool, error) {
		b, err := s.Clusters(ctx)
		return b, false, err
	})
}

func (g *Gateway) handleStats(w http.ResponseWriter, req *http.Request) {
	g.serve(w, req, "stats", func(ctx context.Context, s *Shard) ([]byte, bool, error) {
		b, err := s.Stats(ctx)
		return b, false, err
	})
}

// handleMiss records a hoard miss on the user's shard: POST
// /miss?user=alice&path=/home/alice/file.c (method discipline matches
// the single-tenant daemon).
func (g *Gateway) handleMiss(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", contentText)
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed; use POST", http.StatusMethodNotAllowed)
		return
	}
	path := req.URL.Query().Get("path")
	if path == "" {
		http.Error(w, "missing path parameter", http.StatusBadRequest)
		return
	}
	g.serve(w, req, "miss", func(ctx context.Context, s *Shard) ([]byte, bool, error) {
		mates, err := s.Miss(ctx, path)
		if err != nil {
			return nil, false, err
		}
		var buf []byte
		buf = fmt.Appendf(buf, "recorded miss of %s; forced %d project mates:\n", path, len(mates))
		for _, m := range mates {
			buf = fmt.Appendf(buf, "  %s\n", m)
		}
		return buf, false, nil
	})
}

// handleEvents ingests strace lines for one user: POST
// /events?user=alice with the raw lines as the body. The write is
// routed with the full retry discipline, so a drain in progress on the
// user's slot delays the ingest by a backoff instead of losing it.
func (g *Gateway) handleEvents(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", contentText)
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed; use POST", http.StatusMethodNotAllowed)
		return
	}
	u := user(req)
	if u == "" {
		http.Error(w, "missing user parameter", http.StatusBadRequest)
		return
	}
	var lines []string
	sc := bufio.NewScanner(io.LimitReader(req.Body, maxIngestBody))
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := g.boundCtx(req)
	defer cancel()
	out := g.traced(ctx, req, "events", u, func(ctx context.Context, s *Shard) ([]byte, bool, error) {
		n, err := s.IngestLines(ctx, lines)
		if err != nil {
			return nil, false, err
		}
		return fmt.Appendf(nil, "ingested %d events\n", n), false, nil
	})
	g.write(w, out)
}

// handleShards renders the manager report as JSON.
func (g *Gateway) handleShards(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Shards []Info `json:"shards"`
		Health string `json:"health"`
	}{g.mgr.Report(), g.mgr.Health().String()})
}

// handleDrain executes a drain/migrate: POST /shards/drain?shard=N.
// The drain runs on a background context bounded by the policy's
// DrainTimeout — once started it must finish (or fail) even if the
// requesting client gives up, or the slot would wedge half-drained.
func (g *Gateway) handleDrain(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", contentText)
	if req.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed; use POST", http.StatusMethodNotAllowed)
		return
	}
	idx, err := strconv.Atoi(req.URL.Query().Get("shard"))
	if err != nil {
		http.Error(w, "missing or bad shard parameter", http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.Policy().DrainTimeout)
	defer cancel()
	if derr := g.mgr.Drain(ctx, idx); derr != nil {
		http.Error(w, derr.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "shard %d drained and replaced; replacement replayed %d events\n",
		idx, g.mgr.Shard(idx).Events())
}

// healthHandler serves the aggregated multi-shard health: the process
// verdict plus every shard's own state, so an operator sees which
// bulkhead is hurting. ready additionally requires Healthy (readiness
// gates rollouts harder than liveness).
func (g *Gateway) healthHandler(ready bool) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		h := g.mgr.Health()
		w.Header().Set("Content-Type", "application/json")
		code := http.StatusOK
		if h == supervise.Unavailable || (ready && h != supervise.Healthy) {
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(struct {
			State  string `json:"state"`
			Shards []Info `json:"shards"`
		}{h.String(), g.mgr.Report()})
	}
}
