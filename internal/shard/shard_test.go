package shard

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/core"
	"github.com/fmg/seer/internal/obs"
	"github.com/fmg/seer/internal/supervise"
)

// testLine renders one valid strace openat line with a distinct path.
func testLine(i int) string {
	return fmt.Sprintf(`100  12:00:%02d.%06d openat(AT_FDCWD, "/home/u/proj/f%03d.c", O_RDONLY) = 3`,
		i/60%60, i%1_000_000, i%400)
}

// testLines renders n distinct lines starting at off.
func testLines(off, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = testLine(off + i)
	}
	return out
}

// fastSupervisor is a backoff policy tight enough for tests.
func fastSupervisor() supervise.Config {
	return supervise.Config{
		Backoff:    supervise.Backoff{Initial: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.1},
		BreakAfter: 50,
		Window:     time.Minute,
	}
}

// testConfig returns a shard Config with fast knobs.
func testConfig(t *testing.T, id int, dir string) Config {
	t.Helper()
	params := config.Defaults()
	return Config{
		ID:              id,
		Dir:             dir,
		Params:          params,
		Seed:            1,
		QueueCap:        256,
		QueueBlock:      10 * time.Millisecond,
		BudgetBytes:     1 << 20,
		CheckpointEvery: time.Hour, // periodic checkpoints off; drains still save
		Supervisor:      fastSupervisor(),
	}
}

// waitFor polls cond for up to 10s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ingest pushes lines into s and waits until the feeder has applied
// them all.
func ingest(t *testing.T, s *Shard, lines []string) {
	t.Helper()
	before := s.Events()
	n, err := s.IngestLines(context.Background(), lines)
	if err != nil {
		t.Fatalf("IngestLines: %v", err)
	}
	if n != len(lines) {
		t.Fatalf("ingested %d of %d lines", n, len(lines))
	}
	waitFor(t, "events fed", func() bool { return s.Events() >= before+uint64(len(lines)) })
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1, r2 := NewRing(8, 0), NewRing(8, 0)
	counts := make([]int, 8)
	for i := 0; i < 4000; i++ {
		u := fmt.Sprintf("user-%d", i)
		s := r1.Slot(u)
		if s != r2.Slot(u) {
			t.Fatalf("ring not deterministic for %q", u)
		}
		if s < 0 || s >= 8 {
			t.Fatalf("slot %d out of range", s)
		}
		counts[s]++
	}
	for slot, c := range counts {
		// 4000 users over 8 slots ≈ 500 each; vnode balance should keep
		// every slot within a loose 4x band.
		if c < 125 || c > 2000 {
			t.Errorf("slot %d badly balanced: %d of 4000 users", slot, c)
		}
	}
}

func TestShardLifecycleAndPlan(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := Open(ctx, testConfig(t, 0, t.TempDir()))
	defer s.Close()
	if got := s.State(); got != Serving {
		t.Fatalf("state after Open = %s, want serving", got)
	}
	ingest(t, s, testLines(0, 12))
	body, stale, err := s.Plan(context.Background())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if stale {
		t.Error("first plan marked stale")
	}
	if len(body) == 0 {
		t.Error("plan body empty after 12 events")
	}
}

func TestDrainReplayByteIdentical(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := t.TempDir()
	s := Open(ctx, testConfig(t, 3, dir))
	ingest(t, s, testLines(0, 30))
	want, _, err := s.Plan(context.Background())
	if err != nil {
		t.Fatalf("pre-drain Plan: %v", err)
	}
	events := s.Events()

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := s.State(); got != Closed {
		t.Fatalf("state after Drain = %s, want closed", got)
	}
	// Closed shard refuses everything with transient errors.
	if _, err := s.IngestLines(context.Background(), testLines(100, 1)); !IsTransient(err) {
		t.Errorf("ingest on closed shard: err = %v, want transient", err)
	}

	// Replay on the target: a replacement in the same slot restores the
	// final checkpoint and must answer with the byte-identical plan.
	repl := Open(ctx, testConfig(t, 3, dir))
	defer repl.Close()
	if got := repl.Events(); got != events {
		t.Fatalf("replacement replayed %d events, want %d (zero loss)", got, events)
	}
	got, _, err := repl.Plan(context.Background())
	if err != nil {
		t.Fatalf("replacement Plan: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("replayed plan differs from pre-drain plan:\n--- want\n%s--- got\n%s", want, got)
	}
}

func TestDrainServesStaleReads(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := Open(ctx, testConfig(t, 0, t.TempDir()))
	ingest(t, s, testLines(0, 10))
	if _, _, err := s.Plan(context.Background()); err != nil {
		t.Fatalf("warm Plan: %v", err)
	}
	// Flip to draining by hand (mid-drain window) and verify reads fall
	// back to the cache while writes bounce transient.
	if !s.state.CompareAndSwap(int32(Serving), int32(Draining)) {
		t.Fatal("CAS to draining failed")
	}
	body, stale, err := s.Plan(context.Background())
	if err != nil || !stale || len(body) == 0 {
		t.Fatalf("draining Plan = (%d bytes, stale=%v, err=%v), want stale cache hit",
			len(body), stale, err)
	}
	if _, err := s.IngestLines(context.Background(), testLines(50, 1)); err != ErrDraining {
		t.Fatalf("draining ingest err = %v, want ErrDraining", err)
	}
	s.state.Store(int32(Serving))
	s.Close()
}

func TestRestoreSnapshotLadder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-000.db")
	log := obs.NewLogger(io.Discard)

	// Build a checkpoint mid-stream, then Close: the final drain
	// checkpoint rotates the mid-stream one into .bak, leaving the
	// primary with all 12 events and the backup with the first 8.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := Open(ctx, testConfig(t, 0, dir))
	ingest(t, s, testLines(0, 8))
	if err := s.save(); err != nil {
		t.Fatalf("save: %v", err)
	}
	ingest(t, s, testLines(8, 4))
	events := s.Events()
	s.Close()

	params := config.Defaults()
	opts := core.Options{Params: &params, Seed: 1}
	// Ladder rung 1: pristine primary restores everything.
	if got := RestoreSnapshot(path, opts, log).Events(); got != events {
		t.Fatalf("primary restore: %d events, want %d", got, events)
	}
	// Ladder rung 2: corrupt primary falls back to .bak.
	if err := os.WriteFile(path, []byte("garbage, not a SEERDB"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := RestoreSnapshot(path, opts, log)
	if got := c.Events(); got == 0 || got >= events {
		t.Fatalf(".bak restore: %d events, want the older checkpoint (0 < n < %d)", got, events)
	}
	// Ladder rung 3: both corrupt starts fresh, never fails.
	if err := os.WriteFile(path+bakSuffix, []byte("also garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := RestoreSnapshot(path, opts, log).Events(); got != 0 {
		t.Fatalf("fresh restore: %d events, want 0", got)
	}
}

// Satellite regression: a reload landing while a shard drains must not
// resurrect it or apply new Params to a closed shard — ApplyRuntime is
// a no-op outside the serving state.
func TestApplyRuntimeOnlyWhileServing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := Open(ctx, testConfig(t, 0, t.TempDir()))
	ingest(t, s, testLines(0, 6))

	rt := config.DefaultRuntime()
	rt.Daemon.QueueCap = 99
	rt.Params.KNear = 7

	// Serving: applied.
	if !s.ApplyRuntime(rt) {
		t.Fatal("ApplyRuntime refused a serving shard")
	}
	if got := s.queue.Cap(); got != 99 {
		t.Fatalf("queue cap after serving reload = %d, want 99", got)
	}
	if got := s.corr.Params().KNear; got != 7 {
		t.Fatalf("KNear after serving reload = %d, want 7", got)
	}

	// Draining: refused, nothing touched, state untouched.
	if !s.state.CompareAndSwap(int32(Serving), int32(Draining)) {
		t.Fatal("CAS to draining failed")
	}
	rt2 := rt
	rt2.Daemon.QueueCap = 123
	rt2.Params.KNear = 9
	if s.ApplyRuntime(rt2) {
		t.Error("ApplyRuntime accepted a draining shard")
	}
	if got := s.queue.Cap(); got != 99 {
		t.Errorf("queue cap changed on a draining shard: %d", got)
	}
	if got := s.corr.Params().KNear; got != 7 {
		t.Errorf("Params applied to a draining shard: KNear = %d", got)
	}
	if got := s.State(); got != Draining {
		t.Errorf("reload resurrected a draining shard: state = %s", got)
	}

	// Closed: same guarantee.
	s.state.Store(int32(Serving))
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if s.ApplyRuntime(rt2) {
		t.Error("ApplyRuntime accepted a closed shard")
	}
	if got := s.State(); got != Closed {
		t.Errorf("reload resurrected a closed shard: state = %s", got)
	}
	if got := s.corr.Params().KNear; got != 7 {
		t.Errorf("Params applied to a closed shard: KNear = %d", got)
	}
}

// The params double-check inside ApplyRuntime: a drain that flips the
// state after the initial Serving test but before the lock is acquired
// must still not see new Params.
func TestApplyRuntimeDrainRace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := Open(ctx, testConfig(t, 0, t.TempDir()))
	defer s.Close()
	ingest(t, s, testLines(0, 6))

	old := paramApplyTimeout
	paramApplyTimeout = 200 * time.Millisecond
	defer func() { paramApplyTimeout = old }()

	// Hold the correlator lock, start the reload (it will pass the
	// Serving check then block on the lock), flip to draining, release.
	s.lock()
	done := make(chan bool)
	rt := config.DefaultRuntime()
	rt.Params.KNear = 11
	go func() { done <- s.ApplyRuntime(rt) }()
	time.Sleep(20 * time.Millisecond) // let ApplyRuntime reach lockCtx
	s.state.Store(int32(Draining))
	s.unlock()
	<-done
	if got := s.corr.Params().KNear; got == 11 {
		t.Error("Params applied under a racing drain")
	}
	s.state.Store(int32(Serving))
}

func TestTransientClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{ErrDraining, true},
		{ErrClosed, true},
		{ErrOpening, true},
		{ErrNoPlan, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrapped: %w", ErrDraining), true},
	} {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{Opening: "opening", Serving: "serving", Draining: "draining", Closed: "closed"}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("State(%d).String() = %q, want %q", st, st.String(), name)
		}
	}
	if !strings.Contains(State(42).String(), "42") {
		t.Error("unknown state should render its number")
	}
}
