package shard

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring mapping user names onto shard slots.
// Each slot projects vnodes virtual points onto the 64-bit hash circle;
// a user lands on the first point at or after its own hash. Slots are
// stable identities — a drained shard's replacement occupies the same
// slot, so routing never moves users around a drain — but the ring
// keeps the assignment balanced and, unlike user_hash % N, minimizes
// reassignment if the slot count ever changes between process
// generations (users keep their snapshot partitions).
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	slot int
}

// defaultVnodes balances well past ~8 slots without bloating lookup.
const defaultVnodes = 64

// NewRing builds a ring over slots shard slots with vnodes virtual
// points each (0 means a sensible default).
func NewRing(slots, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, slots*vnodes)}
	for s := 0; s < slots; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("slot-%d-vnode-%d", s, v)),
				slot: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].slot < r.points[j].slot
	})
	return r
}

// Slot returns the slot index owning user.
func (r *Ring) Slot(user string) int {
	if len(r.points) == 0 {
		return 0
	}
	h := hash64(user)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].slot
}

// hash64 hashes a string onto the ring circle: 64-bit FNV-1a followed
// by a murmur3-style finalizer. The finalizer matters — FNV-1a alone is
// linear, so names differing only in a trailing digit ("user-120",
// "user-121", …) land within ~2^44 of each other on the 2^64 circle and
// would collapse onto the same vnode arc, starving slots. The avalanche
// step spreads suffix changes across all 64 bits. Inline so the ring
// stays dependency-free and stable across builds.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
