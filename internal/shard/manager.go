package shard

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"github.com/fmg/seer/internal/admit"
	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/obs"
	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/supervise"
)

// ManagerConfig builds a Manager.
type ManagerConfig struct {
	// Shards is the slot count (≥1).
	Shards int
	// Dir holds every shard's snapshot ("" disables checkpointing).
	Dir string
	// Runtime supplies the per-shard tunables (queue, budget, params,
	// admission); the manager derives each shard's Config from it.
	Runtime config.Runtime
	// Seed drives correlator tie-breaking (shard i uses Seed+i so equal
	// inputs on different shards stay deterministic but uncorrelated).
	Seed int64
	// Metrics, Tracer, Logger are shared across every shard.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	Logger  *obs.Logger
	// Supervisor tunes each shard's private tree.
	Supervisor supervise.Config
	// CheckpointEvery is each shard's snapshot interval.
	CheckpointEvery time.Duration
	// Vnodes overrides the ring's virtual-node count (0 = default).
	Vnodes int
	// Rumor, when set, is the shared replication client handed to every
	// shard for traced hoard-fill syncs.
	Rumor *replic.RemoteRumor
}

// Manager hosts N shard bulkheads behind a consistent-hash ring. Each
// slot holds the current Shard for that partition; Drain retires a
// slot's shard and replays its final snapshot into a replacement, so
// slot identity (and user routing) survives the migration. All methods
// are safe for concurrent use.
type Manager struct {
	cfg  ManagerConfig
	ring *Ring
	log  *obs.Logger

	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.RWMutex
	slots []*Shard
	// retired accumulates restart counts from each slot's retired
	// shards so seer_shard_restarts_total survives a drain/replace.
	retired []uint64
	// replaced counts completed drain/replace cycles per slot.
	replaced []uint64
	// draining marks slots with a drain in flight (refuses a second).
	draining []bool
}

// NewManager opens cfg.Shards shards and returns the manager routing
// over them. Shards open concurrently — a slow or corrupt snapshot in
// one slot does not delay the others.
func NewManager(ctx context.Context, cfg ManagerConfig) *Manager {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(256)
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NewLogger(io.Discard)
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 5 * time.Minute
	}
	mctx, cancel := context.WithCancel(ctx)
	m := &Manager{
		cfg:      cfg,
		ring:     NewRing(cfg.Shards, cfg.Vnodes),
		log:      cfg.Logger.With("component", "shardmgr"),
		ctx:      mctx,
		cancel:   cancel,
		slots:    make([]*Shard, cfg.Shards),
		retired:  make([]uint64, cfg.Shards),
		replaced: make([]uint64, cfg.Shards),
		draining: make([]bool, cfg.Shards),
	}
	var wg sync.WaitGroup
	for i := range m.slots {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := Open(mctx, m.shardConfig(i))
			m.mu.Lock()
			m.slots[i] = s
			m.mu.Unlock()
		}(i)
	}
	wg.Wait()
	// One restarts series per slot, registered once: the func folds the
	// retired shards' restarts into the live shard's so the counter is
	// monotonic across drain/replace cycles.
	restarts := cfg.Metrics.CounterFuncVec("seer_shard_restarts_total",
		"Stage restarts within the shard's supervision tree (monotonic across drain/replace).",
		"shard")
	for i := range m.slots {
		i := i
		restarts.Register(func() float64 {
			m.mu.RLock()
			defer m.mu.RUnlock()
			return float64(m.retired[i] + m.slots[i].Restarts())
		}, strconv.Itoa(i))
	}
	m.log.Info("shards open", "count", cfg.Shards, "dir", cfg.Dir)
	return m
}

// shardConfig derives slot i's shard Config from the manager's Runtime.
func (m *Manager) shardConfig(i int) Config {
	rt := m.cfg.Runtime
	return Config{
		ID:              i,
		Dir:             m.cfg.Dir,
		Params:          rt.Params,
		Seed:            m.cfg.Seed + int64(i),
		Metrics:         m.cfg.Metrics,
		Tracer:          m.cfg.Tracer,
		Logger:          m.cfg.Logger,
		QueueCap:        rt.Daemon.QueueCap,
		QueueBlock:      time.Duration(rt.Daemon.QueueBlockMS) * time.Millisecond,
		BudgetBytes:     rt.Daemon.HoardBudgetMB << 20,
		CheckpointEvery: m.cfg.CheckpointEvery,
		Supervisor:      m.cfg.Supervisor,
		Rumor:           m.cfg.Rumor,
		Limits: admit.Limits{
			MaxInFlight: rt.Admit.PlanMaxInFlight,
			MaxQueuePct: rt.Admit.MaxQueuePct,
			MaxLatency:  time.Duration(rt.Admit.MaxLatencyMS) * time.Millisecond,
			RetryAfter:  time.Duration(rt.Admit.RetryAfterSec) * time.Second,
		},
	}
}

// Len returns the slot count.
func (m *Manager) Len() int { return m.cfg.Shards }

// Route returns the shard currently serving user's slot.
func (m *Manager) Route(user string) *Shard {
	return m.Shard(m.ring.Slot(user))
}

// SlotFor returns user's slot index (stable across drains).
func (m *Manager) SlotFor(user string) int { return m.ring.Slot(user) }

// Shard returns slot i's current shard (nil when out of range).
func (m *Manager) Shard(i int) *Shard {
	if i < 0 || i >= m.cfg.Shards {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.slots[i]
}

// Shards snapshots the current shard of every slot.
func (m *Manager) Shards() []*Shard {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Shard, len(m.slots))
	copy(out, m.slots)
	return out
}

// Drain retires slot i's shard — stop intake, fold the queue, final
// fsync'd checkpoint — then opens a replacement in the same slot that
// replays the checkpoint, and swaps it in. Reads during the drain serve
// the retiring shard's stale cache; writes bounce with a transient
// error until the replacement swaps in (the gateway's retry absorbs the
// gap — zero event loss end to end). ctx bounds the drain; on error the
// slot is left on the closed shard WITHOUT a replacement built from a
// suspect checkpoint, and a later Drain call may retry once the cause
// (typically a wedged correlator) clears.
func (m *Manager) Drain(ctx context.Context, i int) error {
	m.mu.Lock()
	if i < 0 || i >= m.cfg.Shards {
		m.mu.Unlock()
		return fmt.Errorf("no such shard %d", i)
	}
	if m.draining[i] {
		m.mu.Unlock()
		return fmt.Errorf("shard %d: drain already in progress", i)
	}
	old := m.slots[i]
	if st := old.State(); st != Serving {
		m.mu.Unlock()
		return fmt.Errorf("shard %d: not serving (%s)", i, st)
	}
	m.draining[i] = true
	m.mu.Unlock()

	defer func() {
		m.mu.Lock()
		m.draining[i] = false
		m.mu.Unlock()
	}()

	m.log.Info("draining shard", "shard", i)
	if err := old.Drain(ctx); err != nil {
		return err
	}

	// Replay on the target: the replacement opens from the final
	// checkpoint the drain just wrote, picking up every folded event.
	repl := Open(m.ctx, m.shardConfig(i))
	m.mu.Lock()
	m.retired[i] += old.Restarts()
	m.replaced[i]++
	m.slots[i] = repl
	m.mu.Unlock()
	m.log.Info("shard replaced", "shard", i, "events", repl.Events())
	return nil
}

// ApplyRuntime pushes hot-reloadable settings into every SERVING shard
// (a draining or closed shard is skipped — its replacement opens with
// the new runtime via shardConfig). Returns the slots skipped.
func (m *Manager) ApplyRuntime(rt config.Runtime) (skipped []int) {
	m.mu.Lock()
	m.cfg.Runtime = rt
	shards := make([]*Shard, len(m.slots))
	copy(shards, m.slots)
	m.mu.Unlock()
	for i, s := range shards {
		if !s.ApplyRuntime(rt) {
			skipped = append(skipped, i)
		}
	}
	return skipped
}

// Health aggregates shard health for the process probe. Bulkhead
// semantics: one bad shard degrades the process (operators should
// look), but only every shard being unavailable makes the process
// unavailable — neighbors are still answering.
func (m *Manager) Health() supervise.HealthState {
	worst, down := supervise.Healthy, 0
	shards := m.Shards()
	for _, s := range shards {
		switch s.Health() {
		case supervise.Unavailable:
			down++
			worst = supervise.Degraded
		case supervise.Degraded:
			worst = supervise.Degraded
		}
	}
	if len(shards) > 0 && down == len(shards) {
		return supervise.Unavailable
	}
	return worst
}

// Info is one slot's row in the /shards debug view.
type Info struct {
	Shard    int    `json:"shard"`
	State    string `json:"state"`
	Health   string `json:"health"`
	Events   uint64 `json:"events"`
	Queue    int    `json:"queue"`
	QueueCap int    `json:"queue_cap"`
	Drops    uint64 `json:"queue_drops"`
	Restarts uint64 `json:"restarts"`
	Replaced uint64 `json:"replaced"`
	Stale    int64  `json:"stale_served"`
	Sheds    uint64 `json:"sheds"`
	Draining bool   `json:"draining,omitempty"`
}

// Report snapshots every slot for /shards and seerctl shards.
func (m *Manager) Report() []Info {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Info, len(m.slots))
	for i, s := range m.slots {
		depth, capacity, drops := s.QueueStats()
		out[i] = Info{
			Shard:    i,
			State:    s.State().String(),
			Health:   s.Health().String(),
			Events:   s.Events(),
			Queue:    depth,
			QueueCap: capacity,
			Drops:    drops,
			Restarts: m.retired[i] + s.Restarts(),
			Replaced: m.replaced[i],
			Stale:    s.StaleServed(),
			Sheds:    s.Limiter().Sheds(),
			Draining: m.draining[i],
		}
	}
	return out
}

// Close drains every shard concurrently (process shutdown: each writes
// its final checkpoint) and releases the manager.
func (m *Manager) Close() {
	shards := m.Shards()
	var wg sync.WaitGroup
	for _, s := range shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			if err := s.Close(); err != nil {
				m.log.Warn("shard close", "shard", s.ID(), "err", err)
			}
		}(s)
	}
	wg.Wait()
	m.cancel()
}
