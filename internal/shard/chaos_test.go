package shard

// Shard-isolation chaos suite (run under -race; `make shard-chaos`
// loops it): a Manager with 8 shards serving concurrent /plan and
// /events load through the Gateway while faults land in individual
// shards — a corrupt SEERDB at open, a panicking feeder, a wedged
// correlator — and a healthy shard is drained and replaced mid-traffic.
// The bulkhead contract under test: every non-victim shard answers
// /plan with 200 throughout, no fault restarts a neighbor's stages, and
// the drain loses zero events (the replacement's replayed plan is
// byte-identical).

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/obs"
	"github.com/fmg/seer/internal/trace"
)

const chaosShards = 8

// chaosRuntime returns a Runtime tuned for the suite: admission
// generous enough that healthy shards never shed under test load.
func chaosRuntime() config.Runtime {
	rt := config.DefaultRuntime()
	rt.Daemon.QueueCap = 512
	rt.Daemon.QueueBlockMS = 10
	rt.Admit.PlanMaxInFlight = 64
	return rt
}

// newChaosHarness opens a manager + gateway + HTTP server over dir.
func newChaosHarness(t *testing.T, dir string) (*Manager, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	mgr := NewManager(ctx, ManagerConfig{
		Shards:          chaosShards,
		Dir:             dir,
		Runtime:         chaosRuntime(),
		Seed:            1,
		Supervisor:      fastSupervisor(),
		CheckpointEvery: time.Hour,
	})
	gw := NewGateway(mgr, Policy{
		MaxAttempts:  100,
		BaseDelay:    2 * time.Millisecond,
		MaxDelay:     20 * time.Millisecond,
		Timeout:      20 * time.Second,
		DrainTimeout: 30 * time.Second,
	})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return mgr, ts
}

// userForSlot finds a user name the ring maps onto slot.
func userForSlot(t *testing.T, mgr *Manager, slot int) string {
	t.Helper()
	for i := 0; i < 100_000; i++ {
		u := fmt.Sprintf("user-%d", i)
		if mgr.SlotFor(u) == slot {
			return u
		}
	}
	t.Fatalf("no user found for slot %d", slot)
	return ""
}

// postEvents sends lines to /events?user= and returns the HTTP status
// plus the ingested count parsed from the body.
func postEvents(t *testing.T, base, user string, lines []string) (int, int) {
	t.Helper()
	resp, err := http.Post(base+"/events?user="+user, contentText,
		strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		t.Fatalf("POST /events: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	n := 0
	fmt.Sscanf(string(body), "ingested %d events", &n)
	return resp.StatusCode, n
}

// getPlan fetches /plan?user= and returns status, body, stale flag.
func getPlan(t *testing.T, base, user string, timeoutMS int) (int, []byte, bool) {
	t.Helper()
	url := fmt.Sprintf("%s/plan?user=%s&timeout_ms=%d", base, user, timeoutMS)
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET /plan: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body, resp.Header.Get(StaleHeader) == "true"
}

func TestChaosShardIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	dir := t.TempDir()

	// Fault 1, planted before open: slot 0's snapshot is garbage. The
	// recovery ladder must contain it — shard 0 opens fresh and serves;
	// nothing else notices.
	if err := os.WriteFile(filepath.Join(dir, "shard-000.db"),
		[]byte("THIS IS NOT A SEERDB"), 0o644); err != nil {
		t.Fatal(err)
	}

	mgr, ts := newChaosHarness(t, dir)
	defer mgr.Close()

	const (
		panicSlot = 1 // fault 2: feeder panics
		wedgeSlot = 2 // fault 3: correlator wedges
		drainSlot = 5 // healthy shard drained mid-traffic
	)
	users := make([]string, chaosShards)
	for i := range users {
		users[i] = userForSlot(t, mgr, i)
	}

	// Seed every shard and warm every plan cache.
	seeded := make([]uint64, chaosShards)
	for i, u := range users {
		code, n := postEvents(t, ts.URL, u, testLines(40*i, 20))
		if code != http.StatusOK {
			t.Fatalf("seeding shard %d: HTTP %d", i, code)
		}
		seeded[i] = uint64(n)
	}
	for i, u := range users {
		s := mgr.Shard(i)
		want := seeded[i]
		waitFor(t, fmt.Sprintf("shard %d seeded", i), func() bool { return s.Events() >= want })
		if code, body, _ := getPlan(t, ts.URL, u, 5000); code != http.StatusOK || len(body) == 0 {
			t.Fatalf("warming shard %d plan: HTTP %d, %d bytes", i, code, len(body))
		}
	}
	if st := mgr.Shard(0).State(); st != Serving {
		t.Fatalf("corrupt-DB shard 0 not contained: state %s", st)
	}

	restartsBefore := make([]uint64, chaosShards)
	for i, info := range mgr.Report() {
		restartsBefore[i] = info.Restarts
	}

	// Concurrent load on every shard: planners on all users, ingesters
	// on all but the drain victim (quiesced so the drained plan is
	// reproducible). Failures on non-victim shards are recorded.
	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
		extra    [chaosShards]uint64 // events ingested by the load loops
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for i, u := range users {
		i, u := i, u
		wg.Add(1)
		go func() { // planner
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				code, _, _ := getPlan(t, ts.URL, u, 5000)
				if code != http.StatusOK && i != panicSlot && i != wedgeSlot {
					fail("plan for healthy shard %d: HTTP %d", i, code)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
		if i == drainSlot {
			continue
		}
		wg.Add(1)
		go func() { // ingester
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				code, n := postEvents(t, ts.URL, u, testLines(1000+7*seq, 3))
				if code == http.StatusOK {
					atomic.AddUint64(&extra[i], uint64(n))
				} else if i != panicSlot && i != wedgeSlot && code != http.StatusTooManyRequests {
					fail("events for healthy shard %d: HTTP %d", i, code)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	// Fault 2: the panic shard's feeder dies three times mid-load. Its
	// own supervisor absorbs the crashes; neighbors must not restart.
	var panics atomic.Int32
	hook := func(trace.Event) {
		if panics.Add(1) <= 3 {
			panic("chaos: injected feeder panic")
		}
	}
	mgr.Shard(panicSlot).feedHook.Store(&hook)

	// Fault 3: the wedge shard's correlator lock is held hostage for a
	// while; its reads block briefly or serve stale, neighbors keep
	// planning fresh.
	wedged := mgr.Shard(wedgeSlot)
	wedged.lock()
	wedgeOver := time.AfterFunc(300*time.Millisecond, wedged.unlock)
	defer wedgeOver.Stop()

	time.Sleep(250 * time.Millisecond) // let the faults land under load

	// Mid-traffic drain of a healthy shard. Its user is quiesced
	// (read-only), so zero loss has a crisp check: the replacement
	// replays exactly the events the retiring shard held, and its fresh
	// plan is byte-identical.
	preShard := mgr.Shard(drainSlot)
	waitFor(t, "drain shard queue empty", func() bool { return preShard.Events() >= seeded[drainSlot] })
	preEvents := preShard.Events()
	code, prePlan, stale := getPlan(t, ts.URL, users[drainSlot], 5000)
	if code != http.StatusOK || stale {
		t.Fatalf("pre-drain plan: HTTP %d stale=%v", code, stale)
	}
	resp, err := http.Post(ts.URL+"/shards/drain?shard="+fmt.Sprint(drainSlot), contentText, nil)
	if err != nil {
		t.Fatalf("POST /shards/drain: %v", err)
	}
	drainBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: HTTP %d: %s", resp.StatusCode, drainBody)
	}
	repl := mgr.Shard(drainSlot)
	if repl == preShard {
		t.Fatal("drain did not swap in a replacement shard")
	}
	if got := repl.Events(); got != preEvents {
		t.Errorf("replacement replayed %d events, want %d (zero loss)", got, preEvents)
	}
	code, postPlan, _ := getPlan(t, ts.URL, users[drainSlot], 5000)
	if code != http.StatusOK {
		t.Fatalf("post-drain plan: HTTP %d", code)
	}
	if string(postPlan) != string(prePlan) {
		t.Errorf("replayed plan differs from pre-drain plan:\n--- want\n%s--- got\n%s", prePlan, postPlan)
	}

	time.Sleep(250 * time.Millisecond) // more load after the faults
	close(stop)
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	if got := panics.Load(); got < 3 {
		t.Errorf("panic hook fired %d times, want ≥3 (fault not exercised)", got)
	}

	// Containment ledger: only the panic shard restarted; every other
	// slot (including the wedged, corrupt-DB, and drained ones) shows
	// zero new stage restarts.
	for i, info := range mgr.Report() {
		if info.State != "serving" {
			t.Errorf("shard %d finished %s, want serving", i, info.State)
		}
		delta := info.Restarts - restartsBefore[i]
		switch i {
		case panicSlot:
			if delta == 0 {
				t.Errorf("panic shard %d shows no restarts", i)
			}
		default:
			if delta != 0 {
				t.Errorf("fault leaked: shard %d restarted %d times", i, delta)
			}
		}
	}

	// The panic shard recovered: events past the poison still feed and
	// it answers fresh plans again.
	ps := mgr.Shard(panicSlot)
	waitFor(t, "panic shard recovered", func() bool {
		c, _, st := getPlan(t, ts.URL, users[panicSlot], 2000)
		return c == http.StatusOK && !st && ps.Events() > seeded[panicSlot]
	})
}

// A drain racing live ingestion: writes that land in the drain window
// are refused as transient, the gateway backs off and re-routes, and
// they commit on the replacement — nothing is lost, nothing hangs.
func TestGatewayRetryAcrossDrain(t *testing.T) {
	dir := t.TempDir()
	mgr, ts := newChaosHarness(t, dir)
	defer mgr.Close()

	u := userForSlot(t, mgr, 0)
	code, n := postEvents(t, ts.URL, u, testLines(0, 10))
	if code != http.StatusOK {
		t.Fatalf("seed: HTTP %d", code)
	}
	s0 := mgr.Shard(0)
	waitFor(t, "seed fed", func() bool { return s0.Events() >= uint64(n) })

	// Hold the correlator lock so the drain stalls at its final
	// checkpoint — a deterministic drain window to land writes in.
	s0.lock()
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- mgr.Drain(ctx, 0)
	}()
	waitFor(t, "shard draining", func() bool { return s0.State() == Draining })

	postDone := make(chan int, 1)
	go func() {
		c, _ := postEvents(t, ts.URL, u, testLines(100, 5))
		postDone <- c
	}()
	// The post is now cycling through ErrDraining retries. Release the
	// wedge: the drain finishes, the manager swaps the replacement, and
	// the retry must land there.
	time.Sleep(50 * time.Millisecond)
	s0.unlock()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if c := <-postDone; c != http.StatusOK {
		t.Fatalf("ingest across drain: HTTP %d, want 200", c)
	}
	repl := mgr.Shard(0)
	if repl == s0 {
		t.Fatal("no replacement after drain")
	}
	waitFor(t, "write committed on replacement", func() bool {
		return repl.Events() > uint64(n)
	})
}

// A request that dies mid-backoff — its deadline expires or the client
// disconnects — must abort the retry loop right there, not sleep
// through a multi-second backoff schedule against a shard that is
// still in transition. The policy below would retry for minutes if the
// context were ignored.
func TestGatewayBackoffAbortsOnDeadRequest(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	mgr := NewManager(ctx, ManagerConfig{
		Shards:          2,
		Dir:             dir,
		Runtime:         chaosRuntime(),
		Seed:            1,
		Supervisor:      fastSupervisor(),
		CheckpointEvery: time.Hour,
	})
	defer mgr.Close()
	gw := NewGateway(mgr, Policy{
		MaxAttempts: 1000,
		BaseDelay:   10 * time.Second,
		MaxDelay:    10 * time.Second,
		Timeout:     5 * time.Minute,
	})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	u := userForSlot(t, mgr, 0)
	s0 := mgr.Shard(0)

	// Wedge slot 0 in Draining so writes keep failing transiently: hold
	// the correlator lock, then start a drain that stalls on it.
	s0.lock()
	drainDone := make(chan error, 1)
	go func() {
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		drainDone <- mgr.Drain(dctx, 0)
	}()
	waitFor(t, "shard draining", func() bool { return s0.State() == Draining })

	// Server-side deadline: ?timeout_ms caps the request context; the
	// first 10s backoff must be cut short at ~100ms and answered 504.
	start := time.Now()
	resp, err := http.Post(ts.URL+"/miss?user="+u+"&path=/home/u/f.c&timeout_ms=100",
		contentText, nil)
	if err != nil {
		t.Fatalf("POST /miss: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline-bound request took %v; backoff ignored the context", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("dead request answered HTTP %d, want 504", resp.StatusCode)
	}

	// Client disconnect: cancel the request context mid-backoff; the
	// call must return promptly (the transport surfaces the cancel).
	rctx, rcancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(rctx, http.MethodPost,
		ts.URL+"/miss?user="+u+"&path=/home/u/f.c", nil)
	go func() {
		time.Sleep(100 * time.Millisecond)
		rcancel()
	}()
	start = time.Now()
	if resp2, err2 := http.DefaultClient.Do(req); err2 == nil {
		io.Copy(io.Discard, resp2.Body)
		resp2.Body.Close()
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("cancelled request took %v; backoff ignored the disconnect", elapsed)
	}

	// Unwedge and let the drain finish so Close doesn't fight it.
	s0.unlock()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// A request retried across a mid-drain shard must still reconstruct as
// ONE trace: a single gateway root span, every attempt a sibling child
// of that root (the failed tries annotated outcome=retry, the last
// outcome=ok), and the ingest span on the winning shard parented under
// the winning attempt. This is the cross-process propagation contract
// seerctl trace renders, exercised under the same drain race as
// TestGatewayRetryAcrossDrain.
func TestTraceRetryAcrossDrain(t *testing.T) {
	dir := t.TempDir()
	mgr, ts := newChaosHarness(t, dir)
	defer mgr.Close()
	tracer := mgr.cfg.Tracer

	u := userForSlot(t, mgr, 0)
	code, n := postEvents(t, ts.URL, u, testLines(0, 10))
	if code != http.StatusOK {
		t.Fatalf("seed: HTTP %d", code)
	}
	s0 := mgr.Shard(0)
	waitFor(t, "seed fed", func() bool { return s0.Events() >= uint64(n) })

	// Same deterministic drain window as TestGatewayRetryAcrossDrain:
	// hold the correlator lock so the drain wedges at its final
	// checkpoint while the traced write cycles through retries.
	s0.lock()
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- mgr.Drain(ctx, 0)
	}()
	waitFor(t, "shard draining", func() bool { return s0.State() == Draining })

	type post struct {
		code    int
		traceID string
	}
	postDone := make(chan post, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/events?user="+u, contentText,
			strings.NewReader(strings.Join(testLines(100, 5), "\n")))
		if err != nil {
			postDone <- post{code: -1}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		postDone <- post{code: resp.StatusCode, traceID: resp.Header.Get(TraceHeader)}
	}()
	time.Sleep(50 * time.Millisecond)
	s0.unlock()
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	got := <-postDone
	if got.code != http.StatusOK {
		t.Fatalf("ingest across drain: HTTP %d, want 200", got.code)
	}
	if got.traceID == "" {
		t.Fatalf("no %s header on the retried response", TraceHeader)
	}
	tid, err := obs.ParseTraceID(got.traceID)
	if err != nil {
		t.Fatalf("bad trace id %q: %v", got.traceID, err)
	}

	// The ingest span ends inside the request, but give the ring a
	// moment in case the racing drain reordered the final record.
	var spans []obs.Span
	waitFor(t, "trace spans recorded", func() bool {
		spans = spans[:0]
		for _, s := range tracer.Spans() {
			if s.Trace == tid {
				spans = append(spans, s)
			}
		}
		hasIngest := false
		for _, s := range spans {
			if s.Stage == "ingest" {
				hasIngest = true
			}
		}
		return hasIngest
	})

	attr := func(s obs.Span, key string) string {
		for _, a := range s.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}

	var root obs.Span
	var attempts, ingests []obs.Span
	for _, s := range spans {
		switch s.Stage {
		case "gateway:events":
			if root.ID != 0 {
				t.Fatalf("two gateway root spans in trace %s", got.traceID)
			}
			root = s
		case "attempt":
			attempts = append(attempts, s)
		case "ingest":
			ingests = append(ingests, s)
		}
	}
	if root.ID == 0 {
		t.Fatalf("no gateway:events root span in trace %s (got %d spans)", got.traceID, len(spans))
	}
	if root.Parent != 0 {
		t.Fatalf("gateway root has parent %s; the edge must mint the root", root.Parent)
	}
	if len(attempts) < 2 {
		t.Fatalf("got %d attempt spans, want >=2 (the drain window must force a retry)", len(attempts))
	}
	retried, ok := 0, 0
	for _, a := range attempts {
		if a.Parent != root.ID {
			t.Fatalf("attempt %s parented under %s, want sibling under root %s",
				a.ID, a.Parent, root.ID)
		}
		switch attr(a, "outcome") {
		case "retry":
			retried++
		case "ok":
			ok++
		}
	}
	if retried == 0 {
		t.Fatalf("no attempt annotated outcome=retry across the drain")
	}
	if ok != 1 {
		t.Fatalf("got %d outcome=ok attempts, want exactly 1", ok)
	}
	if len(ingests) != 1 {
		t.Fatalf("got %d ingest spans, want exactly 1 (only the winning attempt commits)", len(ingests))
	}
	winner := obs.Span{}
	for _, a := range attempts {
		if attr(a, "outcome") == "ok" {
			winner = a
		}
	}
	if ingests[0].Parent != winner.ID {
		t.Fatalf("ingest parented under %s, want the winning attempt %s",
			ingests[0].Parent, winner.ID)
	}
}

// Admission sheds surface as terminal 429s with the shard's
// Retry-After — the gateway must not burn retries hammering an
// overloaded shard.
func TestGatewayHonorsAdmission(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt := chaosRuntime()
	rt.Admit.PlanMaxInFlight = 1
	rt.Admit.RetryAfterSec = 7
	mgr := NewManager(ctx, ManagerConfig{
		Shards:     2,
		Runtime:    rt,
		Seed:       1,
		Supervisor: fastSupervisor(),
	})
	defer mgr.Close()
	gw := NewGateway(mgr, Policy{MaxAttempts: 10, BaseDelay: time.Millisecond})
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	u := userForSlot(t, mgr, 0)
	lim := mgr.Shard(0).Limiter()
	if !lim.TryAcquire() { // occupy the only admission slot
		t.Fatal("could not occupy the admission slot")
	}
	defer lim.Release(0)

	resp, err := http.Get(ts.URL + "/plan?user=" + u)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded shard: HTTP %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", got)
	}
	if lim.Sheds() == 0 {
		t.Error("shed not recorded on the shard's limiter")
	}
}

// Requests with no usable routing answer fast with a clear status —
// never a hang (here: a missing user parameter and an unknown drain
// index).
func TestGatewayInputDiscipline(t *testing.T) {
	mgr, ts := newChaosHarness(t, t.TempDir())
	defer mgr.Close()

	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("plan without user: HTTP %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/shards/drain?shard=99", contentText, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("drain of unknown shard: HTTP %d, want 409", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"state"`) {
		t.Errorf("healthz: HTTP %d body %s", resp.StatusCode, body)
	}
}
