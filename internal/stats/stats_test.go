package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", name, got, want, tol)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	approx(t, "Mean", s.Mean, 5, 1e-12)
	approx(t, "Median", s.Median, 4.5, 1e-12)
	// Sample stddev of this classic set is sqrt(32/7).
	approx(t, "Stddev", s.Stddev, math.Sqrt(32.0/7.0), 1e-12)
	approx(t, "Min", s.Min, 2, 0)
	approx(t, "Max", s.Max, 9, 0)
	approx(t, "Total", s.Total, 40, 0)
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.Median != 3 || s.Stddev != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, "q0", Quantile(xs, 0), 1, 0)
	approx(t, "q1", Quantile(xs, 1), 4, 0)
	approx(t, "median", Quantile(xs, 0.5), 2.5, 1e-12)
	approx(t, "q25", Quantile(xs, 0.25), 1.75, 1e-12)
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestGeometricMean(t *testing.T) {
	g, err := GeometricMean([]float64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "gm", g, math.Sqrt(8), 1e-12)
	if _, err := GeometricMean(nil); err == nil {
		t.Error("empty geometric mean should error")
	}
	if _, err := GeometricMean([]float64{1, 0}); err == nil {
		t.Error("zero value should error")
	}
}

// The paper's §3.1.2 motivating example: distances (1,1,1498) should
// reduce to something far smaller than (500,500,500) even though the
// arithmetic means are equal.
func TestGeometricMeanFavorsSmallValues(t *testing.T) {
	close3, err := GeometricMean([]float64{1, 1, 1498})
	if err != nil {
		t.Fatal(err)
	}
	far3, err := GeometricMean([]float64{500, 500, 500})
	if err != nil {
		t.Fatal(err)
	}
	if close3 >= far3/10 {
		t.Errorf("gm(1,1,1498) = %g not ≪ gm(500,500,500) = %g", close3, far3)
	}
	if a := Mean([]float64{1, 1, 1498}); math.Abs(a-500) > 1e-9 {
		t.Errorf("arithmetic mean = %g, want 500", a)
	}
}

func TestCI99(t *testing.T) {
	if CI99([]float64{1}) != 0 {
		t.Error("CI99 of one sample should be 0")
	}
	xs := []float64{10, 12, 8, 11, 9}
	ci := CI99(xs)
	s := Summarize(xs)
	// n=5 → df=4 → t = 4.604.
	want := 4.604 * s.Stddev / math.Sqrt(5)
	approx(t, "CI99", ci, want, 1e-9)
	if ci <= 0 {
		t.Error("CI99 should be positive for varied samples")
	}
	// Large samples converge to the normal critical value.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 7)
	}
	sb := Summarize(big)
	approx(t, "CI99 large-n", CI99(big), z99*sb.Stddev/10, 1e-9)
	// Critical values decrease with df and stay above the normal value.
	prev := math.Inf(1)
	for n := 2; n <= 40; n++ {
		c := tCrit99(n)
		if c > prev || c < z99 {
			t.Fatalf("tCrit99(%d) = %g not monotone toward %g", n, c, z99)
		}
		prev = c
	}
	if tCrit99(1) != 0 {
		t.Error("tCrit99(1) should be 0 (undefined)")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{-5, 0, 1, 5, 9, 15}, 0, 10, 2)
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("histogram = %v, want [3 3]", h)
	}
	if Histogram(nil, 0, 0, 2) != nil || Histogram(nil, 0, 1, 0) != nil {
		t.Error("degenerate histograms should be nil")
	}
}

func TestGeometricSamplerMean(t *testing.T) {
	r := NewRand(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(FileSizeP))
	}
	mean := sum / n
	// Mean of geometric(p) is 1/p ≈ 14285.7; the paper quotes 14284.
	if mean < 13000 || mean > 15500 {
		t.Errorf("geometric sampler mean = %g, want ≈14285", mean)
	}
}

func TestGeometricDegenerateParams(t *testing.T) {
	r := NewRand(2)
	if r.Geometric(0) != 1 || r.Geometric(1) != 1 || r.Geometric(-3) != 1 {
		t.Error("degenerate p should yield 1")
	}
}

func TestGeometricAlwaysPositive(t *testing.T) {
	r := NewRand(3)
	f := func(pRaw uint16) bool {
		p := float64(pRaw%9999+1) / 10000.0
		return r.Geometric(p) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLogNormalCalibration(t *testing.T) {
	mu, sigma := LogNormalFromMeanMedian(9.30, 2.00)
	r := NewRand(4)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(mu, sigma)
	}
	s := Summarize(xs)
	if s.Mean < 8.0 || s.Mean > 11.0 {
		t.Errorf("log-normal mean = %g, want ≈9.3", s.Mean)
	}
	sort.Float64s(xs)
	med := xs[n/2]
	if med < 1.8 || med > 2.2 {
		t.Errorf("log-normal median = %g, want ≈2.0", med)
	}
}

func TestLogNormalDegenerateParams(t *testing.T) {
	mu, sigma := LogNormalFromMeanMedian(1, 5) // mean below median
	if math.IsNaN(mu) || math.IsNaN(sigma) {
		t.Error("calibration produced NaN")
	}
	mu, sigma = LogNormalFromMeanMedian(2, -1) // non-positive median
	if math.IsNaN(mu) || math.IsNaN(sigma) {
		t.Error("calibration produced NaN for non-positive median")
	}
}

func TestZipfDistribution(t *testing.T) {
	z := NewZipf(10, 1.0)
	if z.N() != 10 {
		t.Fatalf("N = %d", z.N())
	}
	r := NewRand(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		k := z.Sample(r)
		if k < 0 || k >= 10 {
			t.Fatalf("sample out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 should be roughly twice as likely as rank 1 and the counts
	// should be monotone non-increasing up to noise.
	if counts[0] < counts[1] || counts[1] < counts[4] || counts[4] < counts[9] {
		t.Errorf("zipf counts not decreasing: %v", counts)
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("rank0/rank1 ratio = %g, want ≈2", ratio)
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(0, 1)
	if z.N() != 1 {
		t.Errorf("NewZipf(0) N = %d, want 1", z.N())
	}
	r := NewRand(6)
	if z.Sample(r) != 0 {
		t.Error("single-rank zipf must sample 0")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 100; i++ {
		if a.FileSize() != b.FileSize() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestBoolAndExp(t *testing.T) {
	r := NewRand(7)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.23 || frac > 0.27 {
		t.Errorf("Bool(0.25) frequency = %g", frac)
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	if m := sum / n; m < 2.8 || m > 3.2 {
		t.Errorf("Exp(3) mean = %g", m)
	}
}
