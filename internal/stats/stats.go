// Package stats provides the small statistical toolkit the SEER
// evaluation harness uses: descriptive summaries (mean, median, standard
// deviation), geometric means for the semantic-distance data reduction
// (paper §3.1.2), 99% confidence intervals for the Figure 2 error bars,
// and the random samplers (geometric file sizes with p = 0.00007,
// Zipf-like project popularity, log-normal durations) used by the
// workload generator and simulator.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper's Tables 3 and 5
// report: count, total, mean, median, standard deviation, min and max.
type Summary struct {
	N      int
	Total  float64
	Mean   float64
	Median float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty input.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		s.Total += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Total / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(xs, 0.5)
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeometricMean returns the geometric mean of xs computed in log space.
// All inputs must be positive; non-positive values are an error because
// the caller (the semantic-distance reducer) shifts distances by +1
// before calling.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geometric mean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean of non-positive value %g", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// z99 is the two-sided 99% standard-normal critical value, the limit of
// the t distribution as the sample size grows.
const z99 = 2.5758293035489004

// t99 holds two-sided 99% Student-t critical values for small degrees
// of freedom. The paper's Figure 2 reports 99% confidence intervals
// across a handful of simulation seeds, where the t correction is far
// from negligible (df=2: 9.92 vs the normal 2.58).
var t99 = [...]float64{
	1:  63.657,
	2:  9.925,
	3:  5.841,
	4:  4.604,
	5:  4.032,
	6:  3.707,
	7:  3.499,
	8:  3.355,
	9:  3.250,
	10: 3.169,
	11: 3.106,
	12: 3.055,
	13: 3.012,
	14: 2.977,
	15: 2.947,
	16: 2.921,
	17: 2.898,
	18: 2.878,
	19: 2.861,
	20: 2.845,
	21: 2.831,
	22: 2.819,
	23: 2.807,
	24: 2.797,
	25: 2.787,
	26: 2.779,
	27: 2.771,
	28: 2.763,
	29: 2.756,
	30: 2.750,
}

// tCrit99 returns the two-sided 99% t critical value for n-1 degrees of
// freedom, falling back to the normal value for large samples.
func tCrit99(n int) float64 {
	df := n - 1
	if df < 1 {
		return 0
	}
	if df < len(t99) {
		return t99[df]
	}
	return z99
}

// CI99 returns the half-width of the 99% confidence interval for the
// mean of xs (Student-t interval on the standard error). It returns 0
// for fewer than two samples.
func CI99(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	s := Summarize(xs)
	return tCrit99(n) * s.Stddev / math.Sqrt(float64(n))
}

// Histogram counts xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first/last bin. It is used by
// trace-analysis tooling to report file-size distributions.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}
