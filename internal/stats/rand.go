package stats

import (
	"math"
	"math/rand"
	"sync"
)

// Rand wraps math/rand with the domain-specific samplers the workload
// generator and simulator need. All experiment randomness flows through
// a seeded Rand so every table and figure is reproducible.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic Rand for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// lockedSource serializes a rand.Source64 so one Rand can be shared by
// concurrent goroutines (plain rand.NewSource is not safe for
// concurrent use).
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	v := s.src.Int63()
	s.mu.Unlock()
	return v
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	v := s.src.Uint64()
	s.mu.Unlock()
	return v
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	s.src.Seed(seed)
	s.mu.Unlock()
}

// NewLockedRand returns a deterministic Rand whose source is guarded by
// a mutex, safe for concurrent use. Retry jitter and other cross-
// goroutine randomness must use this variant: a shared unlocked Rand is
// a data race, and per-goroutine copies seeded identically would defeat
// the decorrelation jitter exists for.
func NewLockedRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)})}
}

// FileSizeP is the parameter of the geometric file-size distribution
// the paper's simulator used for files of unknown size (§5.1.2):
// p = 0.00007, for a mean of about 14 284 bytes.
const FileSizeP = 0.00007

// Geometric samples a geometric distribution with success probability
// p: the number of Bernoulli(p) trials up to and including the first
// success, so the mean is 1/p. It uses the standard inversion method.
func (r *Rand) Geometric(p float64) int64 {
	if p <= 0 || p >= 1 {
		return 1
	}
	u := r.Float64()
	// Avoid log(0).
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	k := int64(math.Ceil(math.Log(u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// FileSize samples a file size in bytes from the paper's geometric
// distribution (mean ≈ 14 284 bytes).
func (r *Rand) FileSize() int64 {
	return r.Geometric(FileSizeP)
}

// LogNormal samples exp(N(mu, sigma)). Disconnection durations in live
// usage (Table 3) are heavily right-skewed — medians of 1–3 hours with
// maxima of hundreds — which a log-normal captures.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// LogNormalFromMeanMedian returns (mu, sigma) such that a log-normal has
// the given median and mean (mean must exceed median). For a log-normal,
// median = exp(mu) and mean = exp(mu + sigma²/2).
func LogNormalFromMeanMedian(mean, median float64) (mu, sigma float64) {
	if median <= 0 {
		median = 1e-6
	}
	if mean <= median {
		mean = median * 1.0001
	}
	mu = math.Log(median)
	sigma = math.Sqrt(2 * math.Log(mean/median))
	return mu, sigma
}

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. Project popularity follows a Zipf-like law: users spend
// most time in a few projects and occasionally shift attention to the
// long tail — exactly the behaviour that separates clustering hoards
// from LRU hoards.
type Zipf struct {
	cum []float64
}

// NewZipf precomputes the cumulative distribution for n ranks with
// exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws a rank in [0, n).
func (z *Zipf) Sample(r *Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Exp samples an exponential with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}
