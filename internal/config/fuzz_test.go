package config

import (
	"strings"
	"testing"
)

// FuzzParseControl asserts the control-file parser never panics and
// that accepted files leave the Params valid or unchanged fields only.
func FuzzParseControl(f *testing.F) {
	f.Add("meaningless find\ncritical /etc\nparam KNear 5\n")
	f.Add("# only a comment\n")
	f.Add("param KNear notanumber\n")
	f.Add("dotfiles maybe\n")
	f.Fuzz(func(t *testing.T, src string) {
		p := Defaults()
		c, err := ParseControl(strings.NewReader(src), &p)
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil control without error")
		}
		// Methods must be callable on whatever parsed.
		c.IsCritical("/etc/passwd")
		c.IsTemp("/tmp/x")
		c.IsIgnored("/dev/null")
		c.IsMeaninglessProgram("find")
	})
}
