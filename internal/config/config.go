// Package config holds the SEER parameter set and the system control
// file. The paper's algorithms are governed by a number of constants
// (§4.9): the neighbor-table size n = 20, the lookahead window M = 100,
// the clustering thresholds kn and kf, the frequently-referenced-file
// threshold of 1% of all accesses, and so on. The system administrator
// additionally supplies a control file naming meaningless programs
// (§4.1), critical files and directories (§4.3), temporary directories
// (§4.5), and ignored filesystem objects (§4.6).
package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Params collects every tunable of the semantic-distance and clustering
// machinery. The zero value is not useful; start from Defaults().
type Params struct {
	// NeighborTableSize is n, the number of closest neighbors tracked
	// per file (paper: n = 20).
	NeighborTableSize int
	// Window is M, the maximum lookback (in file opens) when relating a
	// new reference to prior ones (paper: M = 100). Distances that would
	// exceed M for an already-known neighbor are clamped to M.
	Window int
	// KNear is kn: pairs sharing at least KNear neighbors have their
	// clusters combined.
	KNear int
	// KFar is kf (kf < kn): pairs sharing at least KFar but fewer than
	// KNear neighbors are cross-inserted into each other's clusters
	// without combining them.
	KFar int
	// FrequentFileFraction is the fraction of all accesses above which a
	// file is declared frequently-referenced (a shared library, paper
	// §4.2: 1%), excluded from distance computations, and always hoarded.
	FrequentFileFraction float64
	// FrequentFileMinRefs avoids declaring files frequent before enough
	// evidence accumulates (e.g. the very first referenced file is 100%
	// of all accesses).
	FrequentFileMinRefs int
	// AgeLimit is the number of file opens after which an un-refreshed
	// neighbor-table entry becomes eligible for replacement by a newer
	// relationship (paper §3.1.3: the aging system).
	AgeLimit uint64
	// DeletionDelay is the number of subsequent delete operations for
	// which a deleted file's relationship data is retained, because many
	// programs delete and immediately recreate files (paper §4.8).
	DeletionDelay int
	// MeaninglessRatio is the threshold on (files actually touched) /
	// (files learned about from directory reads) above which a program's
	// history marks it meaningless (paper §4.1, approach 4).
	MeaninglessRatio float64
	// MeaninglessMinLearned is the minimum number of directory-learned
	// files before the ratio is meaningful.
	MeaninglessMinLearned int
	// DirDistanceWeight scales the directory-distance penalty subtracted
	// from shared-neighbor counts (paper §3.3.3).
	DirDistanceWeight float64
	// InvestigatorWeight scales external-investigator relation strengths
	// added to shared-neighbor counts (paper §3.3.3).
	InvestigatorWeight float64
	// SkipUnfittingClusters selects hoard-filling behaviour: if true,
	// a cluster too large for the remaining budget is skipped and lower
	// priority clusters may still be added; if false, filling stops at
	// the first cluster that does not fit.
	SkipUnfittingClusters bool
	// HoardSize is the hoard budget in bytes used by live hoard filling
	// (Table 4 used 50 MB for most machines).
	HoardSize int64
	// AutoTempMinCreates enables automatic temporary-directory detection
	// (the future work of paper §4.5): a directory with at least this
	// many observed file creations and a delete/create ratio of at
	// least AutoTempRatio is treated as transient. 0 disables.
	AutoTempMinCreates int
	// AutoTempRatio is the delete/create threshold for automatic
	// temporary-directory detection.
	AutoTempRatio float64
	// DistanceMode selects the semantic-distance definition (§3.1.1):
	// 0 = lifetime (Definition 3, the paper's choice), 1 = sequence
	// (Definition 2), 2 = temporal (Definition 1, seconds). The
	// alternatives exist for the ablation that motivates Definition 3.
	DistanceMode int
	// ClusterChurnPct is the incremental-clustering churn threshold: when
	// the files whose neighbor lists changed since the last clustering
	// number at most this percentage of all tracked files, the correlator
	// patches the previous cluster result in place instead of rebuilding
	// it from scratch. 0 disables incremental clustering entirely (every
	// change pays a full rebuild). Exposed as the hot-reloadable
	// `cluster-churn-threshold` knob.
	ClusterChurnPct int
}

// Defaults returns the parameter values from the paper where it states
// them (n, M, 1%) and calibrated values where it defers to the thesis
// (kn, kf, aging, meaningless threshold).
func Defaults() Params {
	return Params{
		NeighborTableSize:     20,
		Window:                100,
		KNear:                 4,
		KFar:                  2,
		FrequentFileFraction:  0.01,
		FrequentFileMinRefs:   100,
		AgeLimit:              20000,
		DeletionDelay:         50,
		MeaninglessRatio:      0.7,
		MeaninglessMinLearned: 20,
		DirDistanceWeight:     0.25,
		InvestigatorWeight:    1.0,
		SkipUnfittingClusters: true,
		HoardSize:             50 << 20,
		AutoTempMinCreates:    25,
		AutoTempRatio:         0.8,
		ClusterChurnPct:       20,
	}
}

// Validate reports the first inconsistency in p, or nil.
func (p Params) Validate() error {
	switch {
	case p.NeighborTableSize < 1:
		return fmt.Errorf("config: NeighborTableSize %d < 1", p.NeighborTableSize)
	case p.Window < 1:
		return fmt.Errorf("config: Window %d < 1", p.Window)
	case p.KNear <= p.KFar:
		return fmt.Errorf("config: KNear %d must exceed KFar %d", p.KNear, p.KFar)
	case p.KFar < 1:
		return fmt.Errorf("config: KFar %d < 1", p.KFar)
	case p.KNear > p.NeighborTableSize:
		return fmt.Errorf("config: KNear %d exceeds neighbor table size %d",
			p.KNear, p.NeighborTableSize)
	case p.FrequentFileFraction <= 0 || p.FrequentFileFraction >= 1:
		return fmt.Errorf("config: FrequentFileFraction %g outside (0,1)",
			p.FrequentFileFraction)
	case p.MeaninglessRatio <= 0 || p.MeaninglessRatio > 1:
		return fmt.Errorf("config: MeaninglessRatio %g outside (0,1]",
			p.MeaninglessRatio)
	case p.HoardSize < 0:
		return fmt.Errorf("config: negative HoardSize %d", p.HoardSize)
	case p.DeletionDelay < 0:
		return fmt.Errorf("config: negative DeletionDelay %d", p.DeletionDelay)
	case p.AutoTempMinCreates > 0 && (p.AutoTempRatio <= 0 || p.AutoTempRatio > 1):
		return fmt.Errorf("config: AutoTempRatio %g outside (0,1]", p.AutoTempRatio)
	case p.DistanceMode < 0 || p.DistanceMode > 2:
		return fmt.Errorf("config: DistanceMode %d outside [0,2]", p.DistanceMode)
	case p.ClusterChurnPct < 0 || p.ClusterChurnPct > 100:
		return fmt.Errorf("config: ClusterChurnPct %d outside [0,100]", p.ClusterChurnPct)
	}
	return nil
}

// Control is the parsed system control file (paper §4.1, §4.3, §4.5,
// §4.6). A zero Control permits everything.
type Control struct {
	// Meaningless lists program names whose references are always
	// ignored (the paper hand-lists xargs, rdist, the replication
	// substrate, and the external investigators).
	Meaningless map[string]bool
	// Critical lists path prefixes (files or directories) that are kept
	// outside SEER's control and always hoarded, such as /etc.
	Critical []string
	// TempDirs lists directory prefixes whose files are completely
	// ignored, such as /tmp.
	TempDirs []string
	// Ignored lists path prefixes for non-file objects excluded from
	// distance and clustering calculations, such as /dev.
	Ignored []string
	// HoardDotFiles applies the UNIX-specific heuristic of §4.3: any
	// file whose name begins with a period is critical.
	HoardDotFiles bool
}

// DefaultControl mirrors the paper's deployment: /tmp is transient,
// /etc is critical, /dev and /proc are ignored non-files, dot files are
// hoarded, and the four hand-listed meaningless programs are filtered.
func DefaultControl() *Control {
	return &Control{
		Meaningless: map[string]bool{
			"xargs": true, "rdist": true, "rumor": true, "investigator": true,
		},
		Critical:      []string{"/etc"},
		TempDirs:      []string{"/tmp", "/var/tmp"},
		Ignored:       []string{"/dev", "/proc"},
		HoardDotFiles: true,
	}
}

// EmptyControl returns a Control that filters nothing.
func EmptyControl() *Control {
	return &Control{Meaningless: map[string]bool{}}
}

// IsMeaninglessProgram reports whether prog is hand-listed meaningless.
func (c *Control) IsMeaninglessProgram(prog string) bool {
	return c.Meaningless[prog]
}

// hasPrefixDir reports whether path is prefix or lies under prefix.
func hasPrefixDir(path, prefix string) bool {
	if !strings.HasPrefix(path, prefix) {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/' ||
		strings.HasSuffix(prefix, "/")
}

// IsCritical reports whether path is under a critical prefix or (when
// HoardDotFiles) has a basename beginning with a period.
func (c *Control) IsCritical(path string) bool {
	for _, p := range c.Critical {
		if hasPrefixDir(path, p) {
			return true
		}
	}
	if c.HoardDotFiles {
		// The paper's heuristic covers names beginning with a period;
		// we extend it to any path component so files inside dot
		// directories (e.g. ~/.config/app) are also protected.
		for _, comp := range strings.Split(path, "/") {
			if strings.HasPrefix(comp, ".") && comp != "." && comp != ".." {
				return true
			}
		}
	}
	return false
}

// IsTemp reports whether path lies in a transient directory.
func (c *Control) IsTemp(path string) bool {
	for _, p := range c.TempDirs {
		if hasPrefixDir(path, p) {
			return true
		}
	}
	return false
}

// IsIgnored reports whether path is an ignored non-file object.
func (c *Control) IsIgnored(path string) bool {
	for _, p := range c.Ignored {
		if hasPrefixDir(path, p) {
			return true
		}
	}
	return false
}

// ParseControl reads a control file. The format is line-oriented:
//
//	# comment
//	meaningless find
//	critical /etc
//	tempdir /tmp
//	ignore /dev
//	dotfiles on|off
//	param KNear 4
//
// param lines override Params fields by name; unknown names are errors
// so typos do not silently change behaviour.
func ParseControl(r io.Reader, p *Params) (*Control, error) {
	c := EmptyControl()
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("control: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "meaningless":
			if len(fields) != 2 {
				return nil, errf("meaningless wants 1 argument")
			}
			c.Meaningless[fields[1]] = true
		case "critical":
			if len(fields) != 2 {
				return nil, errf("critical wants 1 argument")
			}
			c.Critical = append(c.Critical, fields[1])
		case "tempdir":
			if len(fields) != 2 {
				return nil, errf("tempdir wants 1 argument")
			}
			c.TempDirs = append(c.TempDirs, fields[1])
		case "ignore":
			if len(fields) != 2 {
				return nil, errf("ignore wants 1 argument")
			}
			c.Ignored = append(c.Ignored, fields[1])
		case "dotfiles":
			if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
				return nil, errf("dotfiles wants on|off")
			}
			c.HoardDotFiles = fields[1] == "on"
		case "param":
			if len(fields) != 3 {
				return nil, errf("param wants name and value")
			}
			if p == nil {
				return nil, errf("param directive with no Params target")
			}
			if err := setParam(p, fields[1], fields[2]); err != nil {
				return nil, errf("%v", err)
			}
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return c, nil
}

func setParam(p *Params, name, value string) error {
	asInt := func(dst *int) error {
		v, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("param %s: %w", name, err)
		}
		*dst = v
		return nil
	}
	asFloat := func(dst *float64) error {
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("param %s: %w", name, err)
		}
		*dst = v
		return nil
	}
	switch name {
	case "NeighborTableSize":
		return asInt(&p.NeighborTableSize)
	case "Window":
		return asInt(&p.Window)
	case "KNear":
		return asInt(&p.KNear)
	case "KFar":
		return asInt(&p.KFar)
	case "FrequentFileFraction":
		return asFloat(&p.FrequentFileFraction)
	case "FrequentFileMinRefs":
		return asInt(&p.FrequentFileMinRefs)
	case "AgeLimit":
		v, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return fmt.Errorf("param AgeLimit: %w", err)
		}
		p.AgeLimit = v
		return nil
	case "DeletionDelay":
		return asInt(&p.DeletionDelay)
	case "MeaninglessRatio":
		return asFloat(&p.MeaninglessRatio)
	case "MeaninglessMinLearned":
		return asInt(&p.MeaninglessMinLearned)
	case "DirDistanceWeight":
		return asFloat(&p.DirDistanceWeight)
	case "InvestigatorWeight":
		return asFloat(&p.InvestigatorWeight)
	case "AutoTempMinCreates":
		return asInt(&p.AutoTempMinCreates)
	case "DistanceMode":
		return asInt(&p.DistanceMode)
	case "AutoTempRatio":
		return asFloat(&p.AutoTempRatio)
	case "SkipUnfittingClusters":
		v, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("param SkipUnfittingClusters: %w", err)
		}
		p.SkipUnfittingClusters = v
		return nil
	case "HoardSize":
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("param HoardSize: %w", err)
		}
		p.HoardSize = v
		return nil
	default:
		return fmt.Errorf("unknown param %q", name)
	}
}
