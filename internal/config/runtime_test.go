package config

import (
	"flag"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestDefaultRuntimeValidates(t *testing.T) {
	if err := DefaultRuntime().Validate(); err != nil {
		t.Fatalf("DefaultRuntime does not validate: %v", err)
	}
}

func TestRuntimeValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Runtime)
	}{
		{"queue<1", func(r *Runtime) { r.Daemon.QueueCap = 0 }},
		{"negative block", func(r *Runtime) { r.Daemon.QueueBlockMS = -1 }},
		{"negative budget", func(r *Runtime) { r.Daemon.HoardBudgetMB = -5 }},
		{"bad log level", func(r *Runtime) { r.Daemon.LogLevel = "loud" }},
		{"bad log format", func(r *Runtime) { r.Daemon.LogFormat = "xml" }},
		{"negative inflight", func(r *Runtime) { r.Admit.PlanMaxInFlight = -1 }},
		{"queue pct > 100", func(r *Runtime) { r.Admit.MaxQueuePct = 101 }},
		{"negative retry", func(r *Runtime) { r.Admit.RetryAfterSec = -1 }},
		{"bad params", func(r *Runtime) { r.Params.KNear = 1; r.Params.KFar = 2 }},
	}
	for _, tc := range cases {
		r := DefaultRuntime()
		tc.mut(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", tc.name)
		}
	}
}

func TestApplyFileOverridesAndParams(t *testing.T) {
	r := DefaultRuntime()
	src := `
# comment, then a blank line

queue 4096
queue-block-ms 50
budget 128
log-level debug
admit-plan-inflight 7
admit-queue-pct 80
param KNear 5
param SkipUnfittingClusters false
`
	if err := ApplyFile(&r, strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if r.Daemon.QueueCap != 4096 || r.Daemon.QueueBlockMS != 50 ||
		r.Daemon.HoardBudgetMB != 128 || r.Daemon.LogLevel != "debug" {
		t.Errorf("daemon fields not applied: %+v", r.Daemon)
	}
	if r.Admit.PlanMaxInFlight != 7 || r.Admit.MaxQueuePct != 80 {
		t.Errorf("admit fields not applied: %+v", r.Admit)
	}
	if r.Params.KNear != 5 || r.Params.SkipUnfittingClusters {
		t.Errorf("params not applied: KNear=%d Skip=%v", r.Params.KNear, r.Params.SkipUnfittingClusters)
	}
	// Untouched keys keep their base values.
	if r.Admit.MissMaxInFlight != DefaultRuntime().Admit.MissMaxInFlight {
		t.Errorf("untouched key changed: %d", r.Admit.MissMaxInFlight)
	}
}

func TestApplyFileRejectsUnknownAndMalformed(t *testing.T) {
	for _, src := range []string{
		"no-such-key 1\n",
		"queue\n",
		"queue 1 2\n",
		"queue notanumber\n",
		"param NoSuchParam 3\n",
		"param KNear\n",
	} {
		r := DefaultRuntime()
		if err := ApplyFile(&r, strings.NewReader(src)); err == nil {
			t.Errorf("ApplyFile accepted %q", src)
		}
	}
}

func TestRegisterFlagsRoundTrip(t *testing.T) {
	r := DefaultRuntime()
	fs := flag.NewFlagSet("seerd", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	RegisterFlags(fs, &r, ForSeerd)
	err := fs.Parse([]string{
		"-queue", "2048", "-budget", "64", "-log-level", "warn",
		"-follow", "-rumor", "-admit-plan-inflight", "3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Daemon.QueueCap != 2048 || r.Daemon.HoardBudgetMB != 64 ||
		r.Daemon.LogLevel != "warn" || !r.Daemon.Follow || !r.Daemon.Rumor ||
		r.Admit.PlanMaxInFlight != 3 {
		t.Errorf("flags not applied: %+v %+v", r.Daemon, r.Admit)
	}
}

func TestRumordFlagParity(t *testing.T) {
	// The PR-5 logging flags must exist on rumord via the shared knob
	// table, alongside its admission knobs.
	r := DefaultRuntime()
	fs := flag.NewFlagSet("rumord", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	RegisterFlags(fs, &r, ForRumord)
	for _, name := range []string{"listen", "debug-addr", "log-level", "log-format",
		"admit-rumor-inflight", "admit-retry-after"} {
		if fs.Lookup(name) == nil {
			t.Errorf("rumord flag set lacks -%s", name)
		}
	}
	if fs.Lookup("strace") != nil || fs.Lookup("db") != nil {
		t.Error("rumord flag set has seerd-only knobs")
	}
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	if r.Daemon.LogLevel != "debug" || r.Daemon.LogFormat != "json" {
		t.Errorf("log flags not applied: %+v", r.Daemon)
	}
}

func TestStructuralDiff(t *testing.T) {
	old := DefaultRuntime()
	next := old
	if d := StructuralDiff(old, next); len(d) != 0 {
		t.Fatalf("identical configs diff: %v", d)
	}
	// Hot changes are not structural.
	next.Daemon.QueueCap = 1
	next.Admit.PlanMaxInFlight = 99
	next.Params.KNear = 6
	if d := StructuralDiff(old, next); len(d) != 0 {
		t.Fatalf("hot changes flagged structural: %v", d)
	}
	// Structural knob and ingest-frozen param changes are.
	next.Daemon.Listen = ":9999"
	next.Params.NeighborTableSize = 30
	d := StructuralDiff(old, next)
	if len(d) != 2 {
		t.Fatalf("StructuralDiff = %v, want listen + param NeighborTableSize", d)
	}
}

func TestChangedLists(t *testing.T) {
	old := DefaultRuntime()
	next := old
	next.Daemon.QueueCap = 123
	next.Params.KFar = 3
	got := Changed(old, next)
	want := map[string]bool{"queue": true, "param KFar": true}
	if len(got) != len(want) {
		t.Fatalf("Changed = %v", got)
	}
	for _, name := range got {
		if !want[name] {
			t.Errorf("unexpected change %q", name)
		}
	}
}

func TestDescribeCoversEveryKnobAndParam(t *testing.T) {
	r := DefaultRuntime()
	kv := Describe(r)
	if len(kv) != len(Knobs())+len(ParamNames()) {
		t.Fatalf("Describe entries = %d, want %d", len(kv), len(Knobs())+len(ParamNames()))
	}
	for _, e := range kv {
		if e.Key == "" {
			t.Error("empty key in Describe")
		}
	}
}

func TestParamValueCoversEveryName(t *testing.T) {
	p := Defaults()
	for _, name := range ParamNames() {
		if ParamValue(p, name) == "" {
			t.Errorf("ParamValue(%s) empty", name)
		}
		// Every listed name must round-trip through setParam.
		if err := setParam(&p, name, ParamValue(p, name)); err != nil {
			t.Errorf("setParam(%s) rejects its own rendering: %v", name, err)
		}
	}
}

func TestStoreSwapAndStatus(t *testing.T) {
	s := NewStore(DefaultRuntime())
	if s.Generation() != 1 {
		t.Fatalf("initial generation = %d", s.Generation())
	}
	r2 := DefaultRuntime()
	r2.Daemon.QueueCap = 999
	if gen := s.Swap(r2); gen != 2 {
		t.Fatalf("Swap generation = %d", gen)
	}
	if s.Get().Daemon.QueueCap != 999 {
		t.Fatal("Get does not see swapped config")
	}
	s.RecordReload(nil)
	if st := s.LastReload(); !st.OK || st.Generation != 2 || st.At.IsZero() {
		t.Fatalf("LastReload = %+v", st)
	}
	s.RecordReload(io.ErrUnexpectedEOF)
	if st := s.LastReload(); st.OK || st.Err == "" {
		t.Fatalf("rejected LastReload = %+v", st)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(DefaultRuntime())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := s.Get()
				if err := r.Validate(); err != nil {
					t.Errorf("torn read: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		r := DefaultRuntime()
		r.Daemon.QueueCap = 1 + i
		s.Swap(r)
		s.RecordReload(nil)
	}
	close(stop)
	wg.Wait()
}
