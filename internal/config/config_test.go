package config

import (
	"strings"
	"testing"
)

func TestDefaultsAreValid(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("Defaults().Validate() = %v", err)
	}
}

func TestDefaultsMatchPaperConstants(t *testing.T) {
	p := Defaults()
	if p.NeighborTableSize != 20 {
		t.Errorf("n = %d, want 20 (paper §3.1.3)", p.NeighborTableSize)
	}
	if p.Window != 100 {
		t.Errorf("M = %d, want 100 (paper §3.1.3)", p.Window)
	}
	if p.FrequentFileFraction != 0.01 {
		t.Errorf("frequent threshold = %g, want 0.01 (paper §4.2)", p.FrequentFileFraction)
	}
	if p.KNear <= p.KFar {
		t.Errorf("kn %d must exceed kf %d (paper §3.3.2)", p.KNear, p.KFar)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.NeighborTableSize = 0 },
		func(p *Params) { p.Window = 0 },
		func(p *Params) { p.KNear = p.KFar },
		func(p *Params) { p.KFar = 0 },
		func(p *Params) { p.KNear = p.NeighborTableSize + 1 },
		func(p *Params) { p.FrequentFileFraction = 0 },
		func(p *Params) { p.FrequentFileFraction = 1 },
		func(p *Params) { p.MeaninglessRatio = 0 },
		func(p *Params) { p.MeaninglessRatio = 1.5 },
		func(p *Params) { p.HoardSize = -1 },
		func(p *Params) { p.DeletionDelay = -1 },
		func(p *Params) { p.AutoTempRatio = 0; p.AutoTempMinCreates = 1 },
	}
	for i, mutate := range mutations {
		p := Defaults()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestDefaultControl(t *testing.T) {
	c := DefaultControl()
	cases := []struct {
		path                          string
		critical, temp, ignored, note bool
	}{
		{path: "/etc/passwd", critical: true},
		{path: "/etc", critical: true},
		{path: "/etcetera/x", critical: false},
		{path: "/home/u/.login", critical: true},
		{path: "/home/u/.config/app", critical: true},
		{path: "/home/u/file", critical: false},
		{path: "/tmp/cc0001.o", temp: true},
		{path: "/tmpdir/x", temp: false},
		{path: "/var/tmp/y", temp: true},
		{path: "/dev/tty01", ignored: true},
		{path: "/proc/123/maps", ignored: true},
		{path: "/device/x", ignored: false},
	}
	for _, tc := range cases {
		if got := c.IsCritical(tc.path); got != tc.critical {
			t.Errorf("IsCritical(%q) = %t, want %t", tc.path, got, tc.critical)
		}
		if got := c.IsTemp(tc.path); got != tc.temp {
			t.Errorf("IsTemp(%q) = %t, want %t", tc.path, got, tc.temp)
		}
		if got := c.IsIgnored(tc.path); got != tc.ignored {
			t.Errorf("IsIgnored(%q) = %t, want %t", tc.path, got, tc.ignored)
		}
	}
	if !c.IsMeaninglessProgram("xargs") || !c.IsMeaninglessProgram("rdist") {
		t.Error("paper's hand-listed meaningless programs missing")
	}
	if c.IsMeaninglessProgram("emacs") {
		t.Error("emacs wrongly meaningless")
	}
}

func TestDotAndDotDotNotCritical(t *testing.T) {
	c := DefaultControl()
	if c.IsCritical(".") || c.IsCritical("..") {
		t.Error(". and .. must not be treated as dot files")
	}
}

func TestEmptyControlFiltersNothing(t *testing.T) {
	c := EmptyControl()
	for _, p := range []string{"/etc/passwd", "/tmp/x", "/dev/tty", "/home/u/.login"} {
		if c.IsCritical(p) || c.IsTemp(p) || c.IsIgnored(p) {
			t.Errorf("EmptyControl filtered %q", p)
		}
	}
}

func TestParseControl(t *testing.T) {
	src := `
# SEER control file
meaningless find
meaningless locate
critical /etc
critical /boot
tempdir /tmp
ignore /dev
dotfiles on
param KNear 5
param KFar 3
param FrequentFileFraction 0.02
param HoardSize 104857600
`
	p := Defaults()
	c, err := ParseControl(strings.NewReader(src), &p)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsMeaninglessProgram("find") || !c.IsMeaninglessProgram("locate") {
		t.Error("meaningless programs not parsed")
	}
	if !c.IsCritical("/boot/vmlinuz") {
		t.Error("critical /boot not parsed")
	}
	if !c.IsTemp("/tmp/x") || !c.IsIgnored("/dev/null") {
		t.Error("tempdir/ignore not parsed")
	}
	if !c.HoardDotFiles {
		t.Error("dotfiles on not parsed")
	}
	if p.KNear != 5 || p.KFar != 3 || p.FrequentFileFraction != 0.02 ||
		p.HoardSize != 104857600 {
		t.Errorf("params not overridden: %+v", p)
	}
}

func TestParseControlErrors(t *testing.T) {
	bad := []string{
		"meaningless",
		"critical a b",
		"dotfiles maybe",
		"param KNear",
		"param KNear x",
		"param NoSuchThing 3",
		"frobnicate /x",
		"param AgeLimit -2",
	}
	for _, src := range bad {
		p := Defaults()
		if _, err := ParseControl(strings.NewReader(src), &p); err == nil {
			t.Errorf("ParseControl(%q) succeeded, want error", src)
		}
	}
}

func TestParseControlAllParams(t *testing.T) {
	src := `param NeighborTableSize 30
param Window 200
param AgeLimit 5000
param DeletionDelay 10
param MeaninglessRatio 0.5
param MeaninglessMinLearned 5
param DirDistanceWeight 0.1
param InvestigatorWeight 2.0
param FrequentFileMinRefs 50
param AutoTempMinCreates 40
param AutoTempRatio 0.9
`
	p := Defaults()
	if _, err := ParseControl(strings.NewReader(src), &p); err != nil {
		t.Fatal(err)
	}
	if p.NeighborTableSize != 30 || p.Window != 200 || p.AgeLimit != 5000 ||
		p.DeletionDelay != 10 || p.MeaninglessRatio != 0.5 ||
		p.MeaninglessMinLearned != 5 || p.DirDistanceWeight != 0.1 ||
		p.InvestigatorWeight != 2.0 || p.FrequentFileMinRefs != 50 ||
		p.AutoTempMinCreates != 40 || p.AutoTempRatio != 0.9 {
		t.Errorf("params: %+v", p)
	}
}

func TestParseControlNilParams(t *testing.T) {
	if _, err := ParseControl(strings.NewReader("param KNear 4"), nil); err == nil {
		t.Error("param with nil Params should error")
	}
	if _, err := ParseControl(strings.NewReader("critical /etc"), nil); err != nil {
		t.Errorf("non-param directives should work with nil Params: %v", err)
	}
}
