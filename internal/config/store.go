package config

import (
	"sync"
	"sync/atomic"
	"time"
)

// ReloadStatus records the outcome of the most recent config reload
// attempt, served at /debug/config so operators can see whether their
// last edit took effect.
type ReloadStatus struct {
	// At is when the reload was attempted (zero = never reloaded).
	At time.Time `json:"at,omitempty"`
	// OK reports whether the reload was applied.
	OK bool `json:"ok"`
	// Err is the rejection reason when !OK.
	Err string `json:"error,omitempty"`
	// Generation is the active config generation after the attempt (a
	// rejected reload leaves it unchanged).
	Generation uint64 `json:"generation"`
}

// Store is the atomic holder of the active Runtime. Readers call Get on
// every use and never retain the pointer across a decision boundary;
// writers build a complete validated Runtime and Swap it in, so a
// reader sees either the old or the new configuration, never a torn
// mix. The stored Runtime is treated as immutable after Swap.
type Store struct {
	v   atomic.Pointer[Runtime]
	gen atomic.Uint64

	mu   sync.Mutex
	last ReloadStatus
}

// NewStore returns a Store whose active config is r (generation 1).
func NewStore(r Runtime) *Store {
	s := &Store{}
	s.v.Store(&r)
	s.gen.Store(1)
	return s
}

// Get returns the active config. The result must be treated as
// read-only.
func (s *Store) Get() *Runtime { return s.v.Load() }

// Swap atomically replaces the active config and returns the new
// generation.
func (s *Store) Swap(r Runtime) uint64 {
	s.v.Store(&r)
	return s.gen.Add(1)
}

// Generation returns the active config generation (1 = startup config).
func (s *Store) Generation() uint64 { return s.gen.Load() }

// RecordReload notes the outcome of a reload attempt; err == nil means
// applied.
func (s *Store) RecordReload(err error) {
	st := ReloadStatus{At: time.Now(), OK: err == nil, Generation: s.gen.Load()}
	if err != nil {
		st.Err = err.Error()
	}
	s.mu.Lock()
	s.last = st
	s.mu.Unlock()
}

// LastReload returns the most recent reload outcome (zero value if no
// reload has been attempted).
func (s *Store) LastReload() ReloadStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}
