package config

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Runtime is the complete declarative configuration of a SEER daemon:
// the paper's algorithm Params plus the daemon tuning that used to live
// in scattered per-command flags (queue bounds, hoard budget, log
// shape) and the admission-control limits. One Runtime value describes
// everything an operator can set; the same knob table drives the
// command-line flags of seerd/rumord/seerctl, the watched config file,
// and the reload diff, so the three can never drift apart.
type Runtime struct {
	Params Params    `json:"params"`
	Daemon Daemon    `json:"daemon"`
	Admit  Admission `json:"admit"`
}

// Daemon collects the process-level tuning shared by seerd and rumord.
// Structural fields (listen addresses, input bindings) are fixed at
// startup; the rest can change on a live reload.
type Daemon struct {
	// Strace is the trace input path ("-" = stdin). Structural.
	Strace string `json:"strace,omitempty"`
	// Listen is the main HTTP listen address. Structural.
	Listen string `json:"listen,omitempty"`
	// DebugAddr is the optional pprof/expvar listener. Structural.
	DebugAddr string `json:"debug_addr,omitempty"`
	// DB is the snapshot path (seerd only). Structural.
	DB string `json:"db,omitempty"`
	// Follow keeps tailing the strace file. Structural.
	Follow bool `json:"follow,omitempty"`
	// Rumor mounts the replication master under /rumor/. Structural.
	Rumor bool `json:"rumor,omitempty"`
	// Shards enables multi-tenant mode with this many user shards
	// behind the gateway (0 = classic single-tenant). Structural.
	Shards int `json:"shards,omitempty"`
	// ShardDir is the directory holding per-shard snapshots
	// (shard-NNN.db); "" disables shard checkpointing. Structural.
	ShardDir string `json:"shard_dir,omitempty"`
	// RumorURL points the daemon at an upstream replication master
	// (e.g. http://host:7078/rumor): fresh /hoard answers pre-fetch
	// their head against it, traced end to end. Structural.
	RumorURL string `json:"rumor_url,omitempty"`
	// Tracing toggles span recording; off, /debug/traces and exemplars
	// stop accumulating but keep serving what was recorded. Hot.
	Tracing bool `json:"tracing"`
	// SLOFastWindowSec / SLOSlowWindowSec are the burn-rate windows
	// (page-fast, confirm-slow). Structural.
	SLOFastWindowSec int `json:"slo_fast_window_sec,omitempty"`
	SLOSlowWindowSec int `json:"slo_slow_window_sec,omitempty"`
	// SLOBurnThreshold is the fast-window burn rate that marks an
	// objective breached (degraded health, flight capture). Structural.
	SLOBurnThreshold int `json:"slo_burn_threshold,omitempty"`
	// FlightDir is where flight-recorder bundles are written; ""
	// disables the recorder. Structural.
	FlightDir string `json:"flight_dir,omitempty"`
	// FlightMinIntervalSec debounces automatic (SLO-breach) flight
	// captures. Structural.
	FlightMinIntervalSec int `json:"flight_min_interval_sec,omitempty"`
	// GatewayRetries bounds gateway attempts per request across
	// re-routes on transient shard states. Hot.
	GatewayRetries int `json:"gateway_retries,omitempty"`
	// GatewayRetryBaseMS is the first retry backoff; it doubles per
	// attempt with jitter. Hot.
	GatewayRetryBaseMS int `json:"gateway_retry_base_ms,omitempty"`
	// GatewayTimeoutMS bounds one whole gateway request including
	// retries. Hot.
	GatewayTimeoutMS int `json:"gateway_timeout_ms,omitempty"`
	// DrainTimeoutMS bounds one shard drain/migrate. Hot.
	DrainTimeoutMS int `json:"drain_timeout_ms,omitempty"`
	// QueueCap bounds the tailer-to-feeder ingestion queue. Hot: a
	// reload resizes the live queue without dropping queued events.
	QueueCap int `json:"queue_cap"`
	// QueueBlockMS is how long an overflowing queue Put blocks before
	// shedding the oldest event. Hot.
	QueueBlockMS int `json:"queue_block_ms"`
	// HoardBudgetMB is the hoard budget served by /hoard, in MB. Hot.
	HoardBudgetMB int64 `json:"hoard_budget_mb"`
	// LogLevel is debug, info, warn, or error. Hot.
	LogLevel string `json:"log_level"`
	// LogFormat is text (key=value) or json. Hot.
	LogFormat string `json:"log_format"`
}

// Admission configures per-endpoint admission control: how many
// requests may run concurrently, which pressure signals shed early, and
// what the shed response advertises. Zero values disable a limit. All
// fields are hot-reloadable.
type Admission struct {
	// PlanMaxInFlight bounds concurrent /plan + /hoard + /clusters
	// requests (the clustering-heavy read path).
	PlanMaxInFlight int `json:"plan_max_inflight"`
	// MissMaxInFlight bounds concurrent /miss + /stats requests.
	MissMaxInFlight int `json:"miss_max_inflight"`
	// RumorMaxInFlight bounds concurrent /rumor/ requests.
	RumorMaxInFlight int `json:"rumor_max_inflight"`
	// MaxQueuePct sheds plan-path requests while the ingestion queue is
	// at least this percent full (0 disables; 100 = completely full).
	MaxQueuePct int `json:"max_queue_pct"`
	// MaxLatencyMS sheds requests beyond the first in-flight one while
	// the endpoint's recent-latency EWMA exceeds this (0 disables).
	MaxLatencyMS int `json:"max_latency_ms"`
	// RetryAfterSec is the Retry-After value on 429 responses.
	RetryAfterSec int `json:"retry_after_sec"`
}

// DefaultRuntime returns the paper Params defaults plus production
// daemon tuning matching the historical flag defaults.
func DefaultRuntime() Runtime {
	return Runtime{
		Params: Defaults(),
		Daemon: Daemon{
			Strace:               "-",
			QueueCap:             8192,
			QueueBlockMS:         100,
			HoardBudgetMB:        512,
			LogLevel:             "info",
			LogFormat:            "text",
			GatewayRetries:       4,
			GatewayRetryBaseMS:   25,
			GatewayTimeoutMS:     30_000,
			DrainTimeoutMS:       60_000,
			Tracing:              true,
			SLOFastWindowSec:     300,
			SLOSlowWindowSec:     3600,
			SLOBurnThreshold:     14,
			FlightMinIntervalSec: 60,
		},
		Admit: Admission{
			PlanMaxInFlight:  16,
			MissMaxInFlight:  64,
			RumorMaxInFlight: 256,
			// MaxQueuePct and MaxLatencyMS default off: a degraded feeder
			// already sheds ingestion via the bounded queue, and turning
			// queue pressure into plan 429s is an operator policy choice.
			MaxQueuePct:   0,
			MaxLatencyMS:  0,
			RetryAfterSec: 1,
		},
	}
}

// Validate reports the first inconsistency across the whole Runtime.
func (r Runtime) Validate() error {
	if err := r.Params.Validate(); err != nil {
		return err
	}
	d := r.Daemon
	switch {
	case d.QueueCap < 1:
		return fmt.Errorf("config: queue capacity %d < 1", d.QueueCap)
	case d.QueueBlockMS < 0:
		return fmt.Errorf("config: negative queue-block-ms %d", d.QueueBlockMS)
	case d.HoardBudgetMB < 0:
		return fmt.Errorf("config: negative hoard budget %d MB", d.HoardBudgetMB)
	case d.Shards < 0:
		return fmt.Errorf("config: negative shard count %d", d.Shards)
	case d.Shards > 1024:
		return fmt.Errorf("config: shard count %d > 1024", d.Shards)
	case d.GatewayRetries < 0:
		return fmt.Errorf("config: negative gateway retries %d", d.GatewayRetries)
	case d.GatewayRetryBaseMS < 0:
		return fmt.Errorf("config: negative gateway retry base %d ms", d.GatewayRetryBaseMS)
	case d.GatewayTimeoutMS < 0:
		return fmt.Errorf("config: negative gateway timeout %d ms", d.GatewayTimeoutMS)
	case d.DrainTimeoutMS < 0:
		return fmt.Errorf("config: negative drain timeout %d ms", d.DrainTimeoutMS)
	case d.SLOFastWindowSec < 0 || d.SLOSlowWindowSec < 0:
		return fmt.Errorf("config: negative SLO window")
	case d.SLOFastWindowSec > 0 && d.SLOSlowWindowSec > 0 && d.SLOFastWindowSec > d.SLOSlowWindowSec:
		return fmt.Errorf("config: SLO fast window %ds longer than slow window %ds",
			d.SLOFastWindowSec, d.SLOSlowWindowSec)
	case d.SLOBurnThreshold < 0:
		return fmt.Errorf("config: negative SLO burn threshold %d", d.SLOBurnThreshold)
	case d.FlightMinIntervalSec < 0:
		return fmt.Errorf("config: negative flight min interval %d", d.FlightMinIntervalSec)
	}
	switch d.LogLevel {
	case "debug", "info", "warn", "error":
	default:
		return fmt.Errorf("config: unknown log level %q", d.LogLevel)
	}
	switch d.LogFormat {
	case "", "text", "json":
	default:
		return fmt.Errorf("config: unknown log format %q (want text or json)", d.LogFormat)
	}
	a := r.Admit
	switch {
	case a.PlanMaxInFlight < 0 || a.MissMaxInFlight < 0 || a.RumorMaxInFlight < 0:
		return fmt.Errorf("config: negative admission in-flight limit")
	case a.MaxQueuePct < 0 || a.MaxQueuePct > 100:
		return fmt.Errorf("config: max-queue-pct %d outside [0,100]", a.MaxQueuePct)
	case a.MaxLatencyMS < 0:
		return fmt.Errorf("config: negative max-latency-ms %d", a.MaxLatencyMS)
	case a.RetryAfterSec < 0:
		return fmt.Errorf("config: negative retry-after %d", a.RetryAfterSec)
	}
	return nil
}

// DaemonMask selects which commands expose a knob.
type DaemonMask uint8

const (
	// ForSeerd marks knobs surfaced as seerd flags.
	ForSeerd DaemonMask = 1 << iota
	// ForRumord marks knobs surfaced as rumord flags.
	ForRumord
	// ForSeerctl marks knobs honoured when seerctl loads a config file.
	ForSeerctl
)

// Knob is one named tunable: the single definition behind a
// command-line flag, a config-file key, the /debug/config rendering,
// and the reload diff. Name doubles as both the flag name and the file
// key, so `seerd -queue 4096` and a `queue 4096` file line are the same
// setting.
type Knob struct {
	// Name is the flag name and config-file key.
	Name string
	// Usage is the flag help text.
	Usage string
	// Structural knobs cannot change on a live reload (listen
	// addresses, input bindings); a reload that alters one is rejected.
	Structural bool
	// Bool marks knobs registered as boolean flags (bare -follow).
	Bool bool
	// Secret knobs render as REDACTED at /debug/config. None of the
	// current knobs are secret; the hook exists so a future credential
	// field cannot leak by default.
	Secret bool
	// Daemons is the set of commands exposing this knob as a flag.
	Daemons DaemonMask
	// Set parses value into r; Get renders the current value.
	Set func(r *Runtime, value string) error
	Get func(r *Runtime) string
}

// intKnob builds a Set/Get pair over an int field.
func intKnob(f func(*Runtime) *int) (func(*Runtime, string) error, func(*Runtime) string) {
	return func(r *Runtime, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil {
				return err
			}
			*f(r) = n
			return nil
		}, func(r *Runtime) string {
			return strconv.Itoa(*f(r))
		}
}

// int64Knob builds a Set/Get pair over an int64 field.
func int64Knob(f func(*Runtime) *int64) (func(*Runtime, string) error, func(*Runtime) string) {
	return func(r *Runtime, v string) error {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return err
			}
			*f(r) = n
			return nil
		}, func(r *Runtime) string {
			return strconv.FormatInt(*f(r), 10)
		}
}

// strKnob builds a Set/Get pair over a string field.
func strKnob(f func(*Runtime) *string) (func(*Runtime, string) error, func(*Runtime) string) {
	return func(r *Runtime, v string) error {
			*f(r) = v
			return nil
		}, func(r *Runtime) string {
			return *f(r)
		}
}

// boolKnob builds a Set/Get pair over a bool field.
func boolKnob(f func(*Runtime) *bool) (func(*Runtime, string) error, func(*Runtime) string) {
	return func(r *Runtime, v string) error {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return err
			}
			*f(r) = b
			return nil
		}, func(r *Runtime) string {
			return strconv.FormatBool(*f(r))
		}
}

// knobs is the full knob table. Order is the /debug/config and
// flag-help order.
var knobs = buildKnobs()

func buildKnobs() []Knob {
	type spec struct {
		name, usage       string
		structural, bool_ bool
		daemons           DaemonMask
		set               func(*Runtime, string) error
		get               func(*Runtime) string
	}
	var out []Knob
	add := func(s spec) {
		out = append(out, Knob{
			Name: s.name, Usage: s.usage, Structural: s.structural,
			Bool: s.bool_, Daemons: s.daemons, Set: s.set, Get: s.get,
		})
	}
	var set func(*Runtime, string) error
	var get func(*Runtime) string

	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.Strace })
	add(spec{name: "strace", usage: "strace output file (- = stdin)",
		structural: true, daemons: ForSeerd, set: set, get: get})
	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.Listen })
	add(spec{name: "listen", usage: "HTTP listen address",
		structural: true, daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.DebugAddr })
	add(spec{name: "debug-addr", usage: "optional listen address for pprof and debug endpoints",
		structural: true, daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.DB })
	add(spec{name: "db", usage: "database file: restored at start, saved after input",
		structural: true, daemons: ForSeerd, set: set, get: get})
	set, get = boolKnob(func(r *Runtime) *bool { return &r.Daemon.Follow })
	add(spec{name: "follow", usage: "keep tailing the strace file for appended lines (requires -listen)",
		structural: true, bool_: true, daemons: ForSeerd, set: set, get: get})
	set, get = boolKnob(func(r *Runtime) *bool { return &r.Daemon.Rumor })
	add(spec{name: "rumor", usage: "serve the CheapRumor replication-master endpoints under /rumor/ (requires -listen)",
		structural: true, bool_: true, daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.Shards })
	add(spec{name: "shards", usage: "host this many fault-isolated user shards behind the gateway (0 = single-tenant; requires -listen)",
		structural: true, daemons: ForSeerd, set: set, get: get})
	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.ShardDir })
	add(spec{name: "shard-dir", usage: "directory for per-shard snapshot files (empty = no shard checkpoints)",
		structural: true, daemons: ForSeerd, set: set, get: get})
	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.RumorURL })
	add(spec{name: "rumor-url", usage: "upstream replication-master base URL for traced hoard-fill syncs (empty = no sync)",
		structural: true, daemons: ForSeerd, set: set, get: get})
	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.FlightDir })
	add(spec{name: "flight-dir", usage: "directory for flight-recorder bundles (empty = recorder disabled)",
		structural: true, daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.FlightMinIntervalSec })
	add(spec{name: "flight-min-interval-sec", usage: "min seconds between automatic (SLO-breach) flight captures",
		structural: true, daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.SLOFastWindowSec })
	add(spec{name: "slo-fast-window-sec", usage: "fast (paging) SLO burn-rate window in seconds",
		structural: true, daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.SLOSlowWindowSec })
	add(spec{name: "slo-slow-window-sec", usage: "slow (confirming) SLO burn-rate window in seconds",
		structural: true, daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.SLOBurnThreshold })
	add(spec{name: "slo-burn-threshold", usage: "fast-window burn rate that marks an SLO breached",
		structural: true, daemons: ForSeerd | ForRumord, set: set, get: get})

	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.QueueCap })
	add(spec{name: "queue", usage: "bounded ingestion queue capacity between the tailer and the correlator",
		daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.QueueBlockMS })
	add(spec{name: "queue-block-ms", usage: "how long an overflowing queue put blocks before shedding the oldest event",
		daemons: ForSeerd, set: set, get: get})
	set, get = int64Knob(func(r *Runtime) *int64 { return &r.Daemon.HoardBudgetMB })
	add(spec{name: "budget", usage: "hoard budget in MB",
		daemons: ForSeerd | ForSeerctl, set: set, get: get})
	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.LogLevel })
	add(spec{name: "log-level", usage: "log level: debug, info, warn, or error",
		daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = strKnob(func(r *Runtime) *string { return &r.Daemon.LogFormat })
	add(spec{name: "log-format", usage: "log format: text (key=value) or json",
		daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = boolKnob(func(r *Runtime) *bool { return &r.Daemon.Tracing })
	add(spec{name: "tracing", usage: "record request spans (-tracing=false disables; exemplars and /debug/traces stop accumulating)",
		bool_: true, daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.GatewayRetries })
	add(spec{name: "gateway-retries", usage: "max gateway attempts per request across shard re-routes on transient errors",
		daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.GatewayRetryBaseMS })
	add(spec{name: "gateway-retry-base-ms", usage: "first gateway retry backoff in ms (doubles per attempt, jittered)",
		daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.GatewayTimeoutMS })
	add(spec{name: "gateway-timeout-ms", usage: "whole-request gateway timeout in ms including retries",
		daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Daemon.DrainTimeoutMS })
	add(spec{name: "drain-timeout-ms", usage: "shard drain/migrate timeout in ms",
		daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Params.ClusterChurnPct })
	add(spec{name: "cluster-churn-threshold", usage: "incremental clustering churn threshold as a percent of tracked files; above it the correlator falls back to a full rebuild (0 = always rebuild)",
		daemons: ForSeerd, set: set, get: get})

	set, get = intKnob(func(r *Runtime) *int { return &r.Admit.PlanMaxInFlight })
	add(spec{name: "admit-plan-inflight", usage: "max concurrent /plan,/hoard,/clusters requests (0 = unlimited)",
		daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Admit.MissMaxInFlight })
	add(spec{name: "admit-miss-inflight", usage: "max concurrent /miss,/stats requests (0 = unlimited)",
		daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Admit.RumorMaxInFlight })
	add(spec{name: "admit-rumor-inflight", usage: "max concurrent /rumor/ requests (0 = unlimited)",
		daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Admit.MaxQueuePct })
	add(spec{name: "admit-queue-pct", usage: "shed plan requests while the ingestion queue is at least this percent full (0 = disabled)",
		daemons: ForSeerd, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Admit.MaxLatencyMS })
	add(spec{name: "admit-latency-ms", usage: "shed requests while recent endpoint latency exceeds this EWMA in ms (0 = disabled)",
		daemons: ForSeerd | ForRumord, set: set, get: get})
	set, get = intKnob(func(r *Runtime) *int { return &r.Admit.RetryAfterSec })
	add(spec{name: "admit-retry-after", usage: "Retry-After seconds advertised on shed (429) responses",
		daemons: ForSeerd | ForRumord, set: set, get: get})
	return out
}

// Knobs returns the knob table (shared; do not mutate).
func Knobs() []Knob { return knobs }

// KnobByName returns the named knob, or nil.
func KnobByName(name string) *Knob {
	for i := range knobs {
		if knobs[i].Name == name {
			return &knobs[i]
		}
	}
	return nil
}

// FlagSet is the subset of *flag.FlagSet RegisterFlags needs; it
// matches the standard library, so config does not import package flag.
type FlagSet interface {
	Func(name, usage string, fn func(string) error)
	BoolFunc(name, usage string, fn func(string) error)
}

// RegisterFlags binds every knob in mask onto fs, writing parsed values
// into r. Flag defaults in help text come from r's current values, so
// register after filling r with DefaultRuntime().
func RegisterFlags(fs FlagSet, r *Runtime, mask DaemonMask) {
	for i := range knobs {
		k := &knobs[i]
		if k.Daemons&mask == 0 {
			continue
		}
		usage := fmt.Sprintf("%s (default %q)", k.Usage, k.Get(r))
		if k.Bool {
			fs.BoolFunc(k.Name, usage, func(v string) error {
				if v == "" {
					v = "true"
				}
				return k.Set(r, v)
			})
		} else {
			fs.Func(k.Name, usage, func(v string) error { return k.Set(r, v) })
		}
	}
}

// ApplyFile applies a runtime config file to r: line-oriented
// `key value` pairs where key is any knob name, plus the control-file
// `param Name Value` directive for paper Params. Unknown keys are
// errors so typos cannot silently change production behaviour.
//
//	# seerd runtime config
//	queue 16384
//	budget 512
//	log-level debug
//	admit-plan-inflight 32
//	param KNear 4
func ApplyFile(r *Runtime, src io.Reader) error {
	sc := bufio.NewScanner(src)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("runtime config: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch {
		case fields[0] == "param":
			if len(fields) != 3 {
				return errf("param wants name and value")
			}
			if err := setParam(&r.Params, fields[1], fields[2]); err != nil {
				return errf("%v", err)
			}
		default:
			k := KnobByName(fields[0])
			if k == nil {
				return errf("unknown key %q", fields[0])
			}
			if len(fields) != 2 {
				return errf("%s wants exactly one value", fields[0])
			}
			if err := k.Set(r, fields[1]); err != nil {
				return errf("%s: %v", fields[0], err)
			}
		}
	}
	return sc.Err()
}

// hotParams names the Params fields that take effect on a live reload:
// they are read at clustering/plan/fill time (or when new investigator
// relations register), so a SetParams + cache invalidation suffices.
// Every other param is frozen into the observer or neighbor table at
// construction and is treated as structural.
var hotParams = map[string]bool{
	"KNear":                 true,
	"KFar":                  true,
	"DirDistanceWeight":     true,
	"InvestigatorWeight":    true,
	"SkipUnfittingClusters": true,
	"HoardSize":             true,
}

// paramNames lists every Params field accepted by the `param`
// directive, in rendering order.
var paramNames = []string{
	"NeighborTableSize", "Window", "KNear", "KFar",
	"FrequentFileFraction", "FrequentFileMinRefs", "AgeLimit",
	"DeletionDelay", "MeaninglessRatio", "MeaninglessMinLearned",
	"DirDistanceWeight", "InvestigatorWeight", "SkipUnfittingClusters",
	"HoardSize", "AutoTempMinCreates", "AutoTempRatio", "DistanceMode",
}

// ParamNames returns the accepted `param` directive names.
func ParamNames() []string { return append([]string(nil), paramNames...) }

// ParamValue renders the named Params field, or "" for unknown names.
func ParamValue(p Params, name string) string {
	switch name {
	case "NeighborTableSize":
		return strconv.Itoa(p.NeighborTableSize)
	case "Window":
		return strconv.Itoa(p.Window)
	case "KNear":
		return strconv.Itoa(p.KNear)
	case "KFar":
		return strconv.Itoa(p.KFar)
	case "FrequentFileFraction":
		return strconv.FormatFloat(p.FrequentFileFraction, 'g', -1, 64)
	case "FrequentFileMinRefs":
		return strconv.Itoa(p.FrequentFileMinRefs)
	case "AgeLimit":
		return strconv.FormatUint(p.AgeLimit, 10)
	case "DeletionDelay":
		return strconv.Itoa(p.DeletionDelay)
	case "MeaninglessRatio":
		return strconv.FormatFloat(p.MeaninglessRatio, 'g', -1, 64)
	case "MeaninglessMinLearned":
		return strconv.Itoa(p.MeaninglessMinLearned)
	case "DirDistanceWeight":
		return strconv.FormatFloat(p.DirDistanceWeight, 'g', -1, 64)
	case "InvestigatorWeight":
		return strconv.FormatFloat(p.InvestigatorWeight, 'g', -1, 64)
	case "SkipUnfittingClusters":
		return strconv.FormatBool(p.SkipUnfittingClusters)
	case "HoardSize":
		return strconv.FormatInt(p.HoardSize, 10)
	case "AutoTempMinCreates":
		return strconv.Itoa(p.AutoTempMinCreates)
	case "AutoTempRatio":
		return strconv.FormatFloat(p.AutoTempRatio, 'g', -1, 64)
	case "DistanceMode":
		return strconv.Itoa(p.DistanceMode)
	}
	return ""
}

// StructuralDiff lists the structural settings that differ between old
// and new: structural knobs plus ingest-frozen params. A non-empty
// result means a reload from old to new must be rejected.
func StructuralDiff(old, new Runtime) []string {
	var diffs []string
	for i := range knobs {
		k := &knobs[i]
		if k.Structural && k.Get(&old) != k.Get(&new) {
			diffs = append(diffs, k.Name)
		}
	}
	for _, name := range paramNames {
		if !hotParams[name] && ParamValue(old.Params, name) != ParamValue(new.Params, name) {
			diffs = append(diffs, "param "+name)
		}
	}
	return diffs
}

// Changed lists every setting (knob or param) that differs between old
// and new, for reload logging.
func Changed(old, new Runtime) []string {
	var diffs []string
	for i := range knobs {
		k := &knobs[i]
		if k.Get(&old) != k.Get(&new) {
			diffs = append(diffs, k.Name)
		}
	}
	for _, name := range paramNames {
		if ParamValue(old.Params, name) != ParamValue(new.Params, name) {
			diffs = append(diffs, "param "+name)
		}
	}
	sort.Strings(diffs)
	return diffs
}

// Describe renders the active settings as an ordered list of
// name→value pairs for /debug/config, with secret knobs redacted.
func Describe(r Runtime) []KV {
	out := make([]KV, 0, len(knobs)+len(paramNames))
	for i := range knobs {
		k := &knobs[i]
		v := k.Get(&r)
		if k.Secret {
			v = "REDACTED"
		}
		out = append(out, KV{Key: k.Name, Value: v})
	}
	for _, name := range paramNames {
		out = append(out, KV{Key: "param " + name, Value: ParamValue(r.Params, name)})
	}
	return out
}

// KV is one rendered setting.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}
