package simfs

import (
	"testing"
	"testing/quick"

	"github.com/fmg/seer/internal/stats"
)

func newFS() *FS { return New(stats.NewRand(1)) }

func TestInternAssignsUniqueIDs(t *testing.T) {
	fs := newFS()
	a := fs.Intern("/a", Regular, 1)
	b := fs.Intern("/b", Regular, 2)
	if a.ID == b.ID {
		t.Fatal("distinct paths share an ID")
	}
	if a2 := fs.Intern("/a", Regular, 3); a2 != a {
		t.Error("re-intern returned a different file")
	}
	if fs.Len() != 2 {
		t.Errorf("Len = %d, want 2", fs.Len())
	}
}

func TestInternDrawsGeometricSizes(t *testing.T) {
	fs := newFS()
	var total int64
	const n = 2000
	for i := 0; i < n; i++ {
		f := fs.Intern(pathN(i), Regular, uint64(i))
		if f.Size < 1 {
			t.Fatalf("file size %d < 1", f.Size)
		}
		total += f.Size
	}
	mean := float64(total) / n
	if mean < 10000 || mean > 20000 {
		t.Errorf("mean size = %g, want ≈14284", mean)
	}
	if fs.TotalBytes() != total {
		t.Errorf("TotalBytes = %d, want %d", fs.TotalBytes(), total)
	}
}

func pathN(i int) string {
	return "/data/file" + string(rune('a'+i%26)) + "/" + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)) + string(rune('0'+i%10))
}

func TestDirectoriesHaveZeroSize(t *testing.T) {
	fs := newFS()
	d := fs.Intern("/home/u", Directory, 1)
	if d.Size != 0 {
		t.Errorf("directory size = %d", d.Size)
	}
	if fs.TotalBytes() != 0 {
		t.Errorf("TotalBytes = %d after directory", fs.TotalBytes())
	}
}

func TestRemoveAndReintern(t *testing.T) {
	fs := newFS()
	f := fs.Create("/x", Regular, 100, 1)
	if !fs.Remove("/x") {
		t.Fatal("Remove returned false")
	}
	if f.Exists {
		t.Error("file still exists after Remove")
	}
	if fs.TotalBytes() != 0 {
		t.Errorf("TotalBytes = %d after remove", fs.TotalBytes())
	}
	if fs.Remove("/x") {
		t.Error("double Remove returned true")
	}
	if fs.Remove("/nope") {
		t.Error("Remove of unknown path returned true")
	}
	// Re-interning a deleted path revives the same File (deletion delay
	// semantics: relationship data follows the name).
	g := fs.Intern("/x", Regular, 5)
	if g.ID != f.ID {
		t.Error("re-intern of deleted path changed ID")
	}
	if !g.Exists || g.CreatedSeq != 5 {
		t.Errorf("revived file = %+v", g)
	}
	if fs.TotalBytes() != 100 {
		t.Errorf("TotalBytes = %d after revival, want 100", fs.TotalBytes())
	}
}

func TestCreateReplacesAndAccounts(t *testing.T) {
	fs := newFS()
	fs.Create("/x", Regular, 100, 1)
	fs.Create("/x", Regular, 300, 2)
	if fs.TotalBytes() != 300 {
		t.Errorf("TotalBytes = %d, want 300", fs.TotalBytes())
	}
	fs.Create("/x", Directory, 0, 3)
	if fs.TotalBytes() != 0 {
		t.Errorf("TotalBytes = %d after kind change, want 0", fs.TotalBytes())
	}
}

func TestRenameKeepsID(t *testing.T) {
	fs := newFS()
	f := fs.Create("/tmp/cc1.o", Regular, 50, 1)
	if !fs.Rename("/tmp/cc1.o", "/home/u/main.o", 2) {
		t.Fatal("Rename returned false")
	}
	if fs.Lookup("/tmp/cc1.o") != nil {
		t.Error("old path still resolves")
	}
	g := fs.Lookup("/home/u/main.o")
	if g == nil || g.ID != f.ID {
		t.Error("new path does not resolve to the same file")
	}
	if fs.Rename("/nope", "/other", 3) {
		t.Error("rename of missing file returned true")
	}
}

func TestRenameOverDisplacesTarget(t *testing.T) {
	fs := newFS()
	fs.Create("/a", Regular, 10, 1)
	old := fs.Create("/b", Regular, 20, 2)
	fs.Rename("/a", "/b", 3)
	if old.Exists {
		t.Error("displaced file still exists")
	}
	if fs.TotalBytes() != 10 {
		t.Errorf("TotalBytes = %d, want 10", fs.TotalBytes())
	}
	if got := fs.Lookup("/b"); got == nil || got.Size != 10 {
		t.Error("rename target wrong")
	}
}

func TestResize(t *testing.T) {
	fs := newFS()
	f := fs.Create("/x", Regular, 100, 1)
	fs.Resize(f.ID, 250)
	if f.Size != 250 || fs.TotalBytes() != 250 {
		t.Errorf("size = %d total = %d", f.Size, fs.TotalBytes())
	}
	d := fs.Create("/d", Directory, 0, 2)
	fs.Resize(d.ID, 99)
	if d.Size != 0 {
		t.Error("directory resize should be ignored")
	}
	fs.Resize(NoFile, 10) // must not panic
}

func TestFilesSortedAndLive(t *testing.T) {
	fs := newFS()
	fs.Create("/b", Regular, 1, 1)
	fs.Create("/a", Regular, 1, 2)
	fs.Create("/c", Regular, 1, 3)
	fs.Remove("/b")
	files := fs.Files()
	if len(files) != 2 || files[0].Path != "/a" || files[1].Path != "/c" {
		t.Errorf("Files() = %v", files)
	}
}

func TestGetByID(t *testing.T) {
	fs := newFS()
	f := fs.Create("/x", Regular, 1, 1)
	if fs.Get(f.ID) != f {
		t.Error("Get(ID) mismatch")
	}
	if fs.Get(FileID(9999)) != nil {
		t.Error("Get of unknown ID should be nil")
	}
}

func TestDir(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a/b/c", "/a/b"},
		{"/a", "/"},
		{"a", ""},
		{"/", "/"},
	}
	for _, c := range cases {
		if got := Dir(c.in); got != c.want {
			t.Errorf("Dir(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDirDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"/home/u/p/a.c", "/home/u/p/b.c", 0},
		{"/home/u/p/a.c", "/home/u/q/b.c", 2},
		{"/home/u/p/a.c", "/home/u/p/sub/b.c", 1},
		{"/home/u/p/a.c", "/usr/include/stdio.h", 5},
		{"/a", "/b", 0},
		{"/a/x", "/y", 1},
	}
	for _, c := range cases {
		if got := DirDistance(c.a, c.b); got != c.want {
			t.Errorf("DirDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDirDistanceProperties(t *testing.T) {
	// Symmetric and non-negative for arbitrary path-ish strings.
	f := func(a, b string) bool {
		pa, pb := "/"+sanitize(a), "/"+sanitize(b)
		d1, d2 := DirDistance(pa, pb), DirDistance(pb, pa)
		return d1 == d2 && d1 >= 0 && DirDistance(pa, pa) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == 0 {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

func TestTotalBytesNeverNegative(t *testing.T) {
	fs := newFS()
	fs.Create("/a", Regular, 10, 1)
	fs.Remove("/a")
	fs.Remove("/a")
	fs.Intern("/a", Regular, 2)
	fs.Remove("/a")
	if fs.TotalBytes() != 0 {
		t.Errorf("TotalBytes = %d, want 0", fs.TotalBytes())
	}
}
