package simfs

import (
	"bytes"
	"testing"

	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/wire"
)

func TestFSPersistRoundTrip(t *testing.T) {
	fs := New(stats.NewRand(1))
	fs.Create("/a", Regular, 100, 1)
	fs.Create("/dir", Directory, 0, 2)
	fs.Create("/dev/tty", Device, 0, 3)
	fs.Create("/link", Symlink, 0, 4)
	fs.Create("/gone", Regular, 50, 5)
	fs.Remove("/gone")
	fs.Create("/tmp/x", Regular, 10, 6)
	fs.Rename("/tmp/x", "/kept", 7)

	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	fs.Save(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFS(wire.NewReader(&buf), stats.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != fs.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), fs.Len())
	}
	if got.TotalBytes() != fs.TotalBytes() {
		t.Fatalf("total = %d, want %d", got.TotalBytes(), fs.TotalBytes())
	}
	for _, f := range fs.Files() {
		g := got.Lookup(f.Path)
		if g == nil || g.ID != f.ID || g.Kind != f.Kind || g.Size != f.Size ||
			g.CreatedSeq != f.CreatedSeq {
			t.Errorf("file %s mismatched: %+v vs %+v", f.Path, g, f)
		}
	}
	// Deleted files survive by ID (deletion-delay semantics).
	gone := got.Lookup("/gone")
	if gone == nil || gone.Exists {
		t.Errorf("tombstone lost: %+v", gone)
	}
	// New interns continue from the saved ID space without collision.
	fresh := got.Intern("/brand/new", Regular, 9)
	for _, f := range fs.Files() {
		if fresh.ID == f.ID {
			t.Fatal("ID collision after restore")
		}
	}
}

func TestLoadFSTruncated(t *testing.T) {
	fs := New(stats.NewRand(1))
	fs.Create("/a", Regular, 100, 1)
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	fs.Save(w)
	w.Flush()
	data := buf.Bytes()
	if _, err := LoadFS(wire.NewReader(bytes.NewReader(data[:len(data)/2])), nil); err == nil {
		t.Error("truncated table accepted")
	}
	if _, err := LoadFS(wire.NewReader(bytes.NewReader(nil)), nil); err == nil {
		t.Error("empty input accepted")
	}
}
