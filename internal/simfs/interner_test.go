package simfs

import "testing"

func TestInterner(t *testing.T) {
	in := NewInterner(4)
	if in.Len() != 0 {
		t.Fatalf("fresh interner Len = %d", in.Len())
	}
	a := in.Intern(100)
	b := in.Intern(7)
	if a != 0 || b != 1 {
		t.Fatalf("first-seen order broken: %d, %d", a, b)
	}
	if again := in.Intern(100); again != a {
		t.Errorf("re-intern gave %d, want %d", again, a)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if in.ID(a) != 100 || in.ID(b) != 7 {
		t.Errorf("ID round trip broken: %d, %d", in.ID(a), in.ID(b))
	}
	if i, ok := in.Lookup(7); !ok || i != b {
		t.Errorf("Lookup(7) = %d, %v", i, ok)
	}
	if _, ok := in.Lookup(999); ok {
		t.Error("Lookup of unseen id succeeded")
	}
}
