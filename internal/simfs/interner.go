package simfs

// Interner assigns dense small-integer indices to FileIDs. FileIDs are
// sparse (never reused, so a long-lived table's IDs drift far from 0),
// which forces map-keyed data structures everywhere they are used as
// keys. Hot algorithms — clustering above all — instead intern the IDs
// they touch into a dense 0..n-1 space once, then run entirely on
// slice-indexed state.
//
// Indices are assigned in first-Intern order, so a deterministic
// interning pass yields deterministic indices. An Interner is not safe
// for concurrent mutation; concurrent Lookup/ID calls are safe once
// interning is complete.
type Interner struct {
	idx map[FileID]int32
	ids []FileID
}

// NewInterner returns an empty interner sized for n files.
func NewInterner(n int) *Interner {
	return &Interner{idx: make(map[FileID]int32, n), ids: make([]FileID, 0, n)}
}

// Intern returns the dense index for id, assigning the next free index
// on first sight.
func (in *Interner) Intern(id FileID) int32 {
	if i, ok := in.idx[id]; ok {
		return i
	}
	i := int32(len(in.ids))
	in.idx[id] = i
	in.ids = append(in.ids, id)
	return i
}

// Lookup returns the dense index for id without interning it.
func (in *Interner) Lookup(id FileID) (int32, bool) {
	i, ok := in.idx[id]
	return i, ok
}

// ID returns the FileID at dense index i.
func (in *Interner) ID(i int32) FileID { return in.ids[i] }

// Len returns the number of interned ids.
func (in *Interner) Len() int { return len(in.ids) }
