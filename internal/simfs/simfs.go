// Package simfs provides the simulated file system underneath the SEER
// correlator, the replication substrate, and the trace-driven simulator.
//
// It is an inode table keyed by absolute pathname: each file has a small
// integer ID (used throughout the correlator in place of strings), a
// kind (regular, directory, symlink, device), and a size. Sizes may be
// assigned from the paper's geometric distribution when the true size is
// unknown (paper §5.1.2). The package also provides the
// directory-distance measure of paper §3.2: zero for files in the same
// directory, increasing for files in more widely-separated directories.
package simfs

import (
	"fmt"
	"sort"
	"strings"

	"github.com/fmg/seer/internal/stats"
)

// FileID identifies a file in an FS. IDs are never reused, so a deleted
// and recreated pathname gets a fresh ID once the correlator's deletion
// delay expires.
type FileID int32

// NoFile is the zero FileID, never assigned to a real file.
const NoFile FileID = 0

// Kind classifies a filesystem object (paper §4.6).
type Kind uint8

// The object kinds.
const (
	Regular Kind = iota
	Directory
	Symlink
	Device
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Regular:
		return "regular"
	case Directory:
		return "directory"
	case Symlink:
		return "symlink"
	case Device:
		return "device"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// File is one filesystem object.
type File struct {
	ID   FileID
	Path string
	Kind Kind
	// Size in bytes. Directories and devices report zero; the hoard
	// space calculation conservatively assumes all directories are
	// hoarded by the replication substrate (paper §4.6) so their size
	// does not count against the SEER budget.
	Size int64
	// Exists is false after deletion. The File struct survives deletion
	// so relationship data can be retained through the deletion delay.
	Exists bool
	// CreatedSeq is the trace sequence number at which the file first
	// appeared; files created during a disconnection cannot have been
	// hoarded and are excluded from miss accounting (paper §5.1.2).
	CreatedSeq uint64
}

// FS is the inode table. It is not safe for concurrent use; the
// correlator and simulator are single-threaded over a trace by design
// (trace order is the semantics).
type FS struct {
	byPath map[string]*File
	byID   map[FileID]*File
	nextID FileID
	rng    *stats.Rand
	// totalBytes tracks the sum of sizes of existing regular files.
	totalBytes int64
}

// New returns an empty FS. The rng is used to draw sizes for files whose
// size is not specified; pass a seeded stats.Rand for reproducibility.
func New(rng *stats.Rand) *FS {
	if rng == nil {
		rng = stats.NewRand(0)
	}
	return &FS{
		byPath: make(map[string]*File),
		byID:   make(map[FileID]*File),
		rng:    rng,
	}
}

// Len returns the number of pathnames ever seen (existing or deleted).
func (fs *FS) Len() int { return len(fs.byPath) }

// TotalBytes returns the total size of existing regular files.
func (fs *FS) TotalBytes() int64 { return fs.totalBytes }

// Lookup returns the file at path, or nil.
func (fs *FS) Lookup(path string) *File { return fs.byPath[path] }

// Get returns the file with the given ID, or nil.
func (fs *FS) Get(id FileID) *File { return fs.byID[id] }

// Intern returns the file at path, creating it (existing, with a size
// drawn from the geometric distribution if kind is Regular) when absent
// or previously deleted-and-forgotten. seq stamps CreatedSeq on new
// files.
func (fs *FS) Intern(path string, kind Kind, seq uint64) *File {
	if f := fs.byPath[path]; f != nil {
		if !f.Exists {
			f.Exists = true
			f.CreatedSeq = seq
			if f.Kind == Regular {
				fs.totalBytes += f.Size
			}
		}
		return f
	}
	var size int64
	if kind == Regular {
		size = fs.rng.FileSize()
	}
	return fs.create(path, kind, size, seq)
}

// Create adds a file with an explicit size, replacing any previous
// object at the path. Workload generation uses Create; trace replay
// uses Intern.
func (fs *FS) Create(path string, kind Kind, size int64, seq uint64) *File {
	if f := fs.byPath[path]; f != nil {
		if f.Exists && f.Kind == Regular {
			fs.totalBytes -= f.Size
		}
		f.Kind = kind
		f.Size = size
		f.Exists = true
		f.CreatedSeq = seq
		if kind == Regular {
			fs.totalBytes += size
		}
		return f
	}
	return fs.create(path, kind, size, seq)
}

func (fs *FS) create(path string, kind Kind, size int64, seq uint64) *File {
	fs.nextID++
	f := &File{
		ID:         fs.nextID,
		Path:       path,
		Kind:       kind,
		Size:       size,
		Exists:     true,
		CreatedSeq: seq,
	}
	fs.byPath[path] = f
	fs.byID[f.ID] = f
	if kind == Regular {
		fs.totalBytes += size
	}
	return f
}

// Remove marks the file at path deleted. It reports whether a live file
// was removed.
func (fs *FS) Remove(path string) bool {
	f := fs.byPath[path]
	if f == nil || !f.Exists {
		return false
	}
	f.Exists = false
	if f.Kind == Regular {
		fs.totalBytes -= f.Size
	}
	return true
}

// Rename moves the object at oldPath to newPath, keeping its FileID so
// relationship data follows the file (paper §4.8 treats rename as
// semantically meaningful). Any existing object at newPath is removed.
// It reports whether oldPath existed.
func (fs *FS) Rename(oldPath, newPath string, seq uint64) bool {
	f := fs.byPath[oldPath]
	if f == nil || !f.Exists {
		return false
	}
	if old := fs.byPath[newPath]; old != nil && old != f {
		if old.Exists && old.Kind == Regular {
			fs.totalBytes -= old.Size
		}
		old.Exists = false
		// The displaced file loses its pathname entry; it remains
		// reachable by ID until the correlator forgets it.
		delete(fs.byPath, newPath)
	}
	delete(fs.byPath, oldPath)
	f.Path = newPath
	fs.byPath[newPath] = f
	_ = seq
	return true
}

// Resize updates the size of an existing regular file (workloads grow
// object files, documents, and mailboxes over time).
func (fs *FS) Resize(id FileID, size int64) {
	f := fs.byID[id]
	if f == nil || f.Kind != Regular {
		return
	}
	if f.Exists {
		fs.totalBytes += size - f.Size
	}
	f.Size = size
}

// Files returns all existing files sorted by path (stable iteration for
// deterministic experiments).
func (fs *FS) Files() []*File {
	out := make([]*File, 0, len(fs.byPath))
	for _, f := range fs.byPath {
		if f.Exists {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Dir returns the directory component of path ("" for a bare name).
func Dir(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return ""
	}
	if i == 0 {
		return "/"
	}
	return path[:i]
}

// DirDistance implements the directory-distance measure of paper §3.2:
// zero for files in the same directory, and otherwise the number of
// path components by which the two directories differ (the length of
// the walk from one directory to the other through their lowest common
// ancestor).
func DirDistance(pathA, pathB string) int {
	da, db := Dir(pathA), Dir(pathB)
	if da == db {
		return 0
	}
	ca := splitComponents(da)
	cb := splitComponents(db)
	common := 0
	for common < len(ca) && common < len(cb) && ca[common] == cb[common] {
		common++
	}
	return (len(ca) - common) + (len(cb) - common)
}

func splitComponents(dir string) []string {
	if dir == "" || dir == "/" {
		return nil
	}
	dir = strings.TrimPrefix(dir, "/")
	return strings.Split(dir, "/")
}
