package simfs

import (
	"fmt"
	"sort"

	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/wire"
)

// Save serializes the file table.
func (fs *FS) Save(w *wire.Writer) {
	ids := make([]FileID, 0, len(fs.byID))
	for id := range fs.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U64(uint64(fs.nextID))
	w.Int(len(ids))
	for _, id := range ids {
		f := fs.byID[id]
		w.U64(uint64(f.ID))
		w.Str(f.Path)
		w.U64(uint64(f.Kind))
		w.I64(f.Size)
		w.Bool(f.Exists)
		w.U64(f.CreatedSeq)
	}
}

// LoadFS reconstructs a file table saved with Save. rng seeds future
// unknown-size draws.
func LoadFS(r *wire.Reader, rng *stats.Rand) (*FS, error) {
	fs := New(rng)
	fs.nextID = FileID(r.U64())
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n < 0 {
		return nil, fmt.Errorf("simfs: negative file count %d", n)
	}
	for i := 0; i < n; i++ {
		f := &File{
			ID:         FileID(r.U64()),
			Path:       r.Str(),
			Kind:       Kind(r.U64()),
			Size:       r.I64(),
			Exists:     r.Bool(),
			CreatedSeq: r.U64(),
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		fs.byID[f.ID] = f
		// Pathname entries: deleted files displaced by renames may have
		// lost their path slot; latest writer wins (IDs are saved in
		// increasing order so the live file, interned later, wins ties).
		if cur := fs.byPath[f.Path]; cur == nil || !cur.Exists {
			fs.byPath[f.Path] = f
		}
		if f.Exists && f.Kind == Regular {
			fs.totalBytes += f.Size
		}
	}
	return fs, r.Err()
}
