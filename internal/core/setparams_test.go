package core

import "testing"

// TestSetParamsInvalidatesCache: a live param change must drop the
// cached clustering so the next plan reflects the new knobs.
func TestSetParamsInvalidatesCache(t *testing.T) {
	d := newDriver(nil)
	d.session(1, projectFiles("alpha", 5))
	before := d.c.Clusters()
	_, missBefore := d.c.CacheStats()

	p := d.c.Params()
	p.KNear = p.KNear + 1
	if err := d.c.SetParams(p); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	if got := d.c.Params().KNear; got != p.KNear {
		t.Fatalf("KNear = %d after SetParams, want %d", got, p.KNear)
	}
	after := d.c.Clusters()
	_, missAfter := d.c.CacheStats()
	if missAfter <= missBefore {
		t.Error("SetParams did not invalidate the cluster cache")
	}
	_ = before
	_ = after
}

// TestSetParamsNonClusteringKnobsKeepCache: a reload that touches only
// knobs the clustering never reads (hoard budget, unfitting-cluster
// policy, the churn threshold itself) must NOT drop the cached
// clustering or its incremental state — otherwise every config
// hot-reload pays a full recluster for nothing.
func TestSetParamsNonClusteringKnobsKeepCache(t *testing.T) {
	d := newDriver(nil)
	d.session(1, projectFiles("alpha", 5))
	before := d.c.Clusters()
	_, missBefore := d.c.CacheStats()

	p := d.c.Params()
	p.HoardSize = p.HoardSize + 4096
	p.SkipUnfittingClusters = !p.SkipUnfittingClusters
	p.ClusterChurnPct = p.ClusterChurnPct/2 + 1
	if err := d.c.SetParams(p); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	after := d.c.Clusters()
	_, missAfter := d.c.CacheStats()
	if missAfter != missBefore {
		t.Errorf("non-clustering reload re-clustered (%d -> %d misses)", missBefore, missAfter)
	}
	if after != before {
		t.Error("non-clustering reload replaced the cached result object")
	}

	// And the cache is still properly live: a clustering knob change on
	// the very same correlator does invalidate.
	p.DirDistanceWeight = p.DirDistanceWeight + 0.25
	if err := d.c.SetParams(p); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	_, missAfterWeight := d.c.CacheStats()
	d.c.Clusters()
	_, missFinal := d.c.CacheStats()
	if missFinal <= missAfterWeight {
		t.Error("DirDistanceWeight change did not invalidate the cluster cache")
	}
}

// TestSetParamsRejectsInvalid: a bad param set is refused and the old
// one keeps serving.
func TestSetParamsRejectsInvalid(t *testing.T) {
	d := newDriver(nil)
	old := d.c.Params()
	bad := old
	bad.KNear = -1
	if err := d.c.SetParams(bad); err == nil {
		t.Fatal("SetParams accepted KNear = -1")
	}
	if d.c.Params() != old {
		t.Error("rejected SetParams still changed the active params")
	}
}
