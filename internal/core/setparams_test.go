package core

import "testing"

// TestSetParamsInvalidatesCache: a live param change must drop the
// cached clustering so the next plan reflects the new knobs.
func TestSetParamsInvalidatesCache(t *testing.T) {
	d := newDriver(nil)
	d.session(1, projectFiles("alpha", 5))
	before := d.c.Clusters()
	_, missBefore := d.c.CacheStats()

	p := d.c.Params()
	p.KNear = p.KNear + 1
	if err := d.c.SetParams(p); err != nil {
		t.Fatalf("SetParams: %v", err)
	}
	if got := d.c.Params().KNear; got != p.KNear {
		t.Fatalf("KNear = %d after SetParams, want %d", got, p.KNear)
	}
	after := d.c.Clusters()
	_, missAfter := d.c.CacheStats()
	if missAfter <= missBefore {
		t.Error("SetParams did not invalidate the cluster cache")
	}
	_ = before
	_ = after
}

// TestSetParamsRejectsInvalid: a bad param set is refused and the old
// one keeps serving.
func TestSetParamsRejectsInvalid(t *testing.T) {
	d := newDriver(nil)
	old := d.c.Params()
	bad := old
	bad.KNear = -1
	if err := d.c.SetParams(bad); err == nil {
		t.Fatal("SetParams accepted KNear = -1")
	}
	if d.c.Params() != old {
		t.Error("rejected SetParams still changed the active params")
	}
}
