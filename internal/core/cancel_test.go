package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/fmg/seer/internal/trace"
)

// grown returns a correlator with enough learned state that a
// clustering does real work.
func grown(t *testing.T, files int) *Correlator {
	t.Helper()
	c := New(Options{Seed: 1})
	clk := trace.NewClock(time.Unix(1_700_000_000, 0))
	paths := make([]string, files)
	for i := range paths {
		paths[i] = "/home/u/proj/file" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
	}
	for round := 0; round < 4; round++ {
		for _, p := range paths {
			c.Feed(clk.Stamp(trace.Event{PID: 9, Op: trace.OpOpen, Path: p, Uid: 1000}))
			c.Feed(clk.Stamp(trace.Event{PID: 9, Op: trace.OpClose, Path: p, Uid: 1000}))
		}
	}
	return c
}

func TestPlanContextCanceled(t *testing.T) {
	c := grown(t, 120)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.PlanContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("PlanContext(dead ctx) err = %v, want ErrCanceled", err)
	}
	if !errors.Is(func() error { _, err := c.ClustersContext(ctx); return err }(), context.Canceled) {
		t.Fatal("context cause not joined into the error")
	}
	// The failed attempt must not poison the cache: a live context now
	// produces a full plan.
	plan, err := c.PlanContext(context.Background())
	if err != nil || len(plan.Entries) == 0 {
		t.Fatalf("plan after canceled attempt: %v, %v", plan, err)
	}
}

func TestFillContextDeadline(t *testing.T) {
	c := grown(t, 120)
	// An already-expired deadline aborts; a generous one succeeds and
	// the result matches the uncancelled path.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.FillContext(ctx, 1<<20); err == nil {
		t.Fatal("FillContext with expired deadline succeeded")
	}
	got, err := c.FillContext(context.Background(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Fill(1 << 20)
	if got.Len() != want.Len() {
		t.Fatalf("FillContext len %d != Fill len %d", got.Len(), want.Len())
	}
}

func TestCanceledClusteringDoesNotPoisonCache(t *testing.T) {
	c := grown(t, 80)
	res1 := c.Clusters() // populate cache
	hits1, _ := c.CacheStats()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Cache is still valid (nothing mutated): even a dead context is
	// served from cache without touching the clustering pipeline.
	if res, err := c.ClustersContext(ctx); err != nil || res != res1 {
		t.Fatalf("cached result not served under dead ctx: %v %v", res, err)
	}
	hits2, _ := c.CacheStats()
	if hits2 != hits1+1 {
		t.Fatalf("cache hits %d -> %d, want +1", hits1, hits2)
	}
	// After a list-changing mutation the dead context aborts, and the
	// stale cache is not overwritten with a nil result. Two interleaved
	// opens make a new pair, so the table's journal really is non-empty.
	clk := trace.NewClock(time.Unix(1_800_000_000, 0))
	c.Feed(clk.Stamp(trace.Event{PID: 9, Op: trace.OpOpen, Path: "/home/u/proj/newa", Uid: 1000}))
	c.Feed(clk.Stamp(trace.Event{PID: 9, Op: trace.OpOpen, Path: "/home/u/proj/newb", Uid: 1000}))
	c.Feed(clk.Stamp(trace.Event{PID: 9, Op: trace.OpClose, Path: "/home/u/proj/newb", Uid: 1000}))
	c.Feed(clk.Stamp(trace.Event{PID: 9, Op: trace.OpClose, Path: "/home/u/proj/newa", Uid: 1000}))
	if c.PendingChanges() == 0 {
		t.Fatal("mutation produced no pending changes; test premise broken")
	}
	if _, err := c.ClustersContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res := c.Clusters(); res == nil {
		t.Fatal("clustering after canceled attempt returned nil")
	}
}
