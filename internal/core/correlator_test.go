package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/investigate"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/trace"
)

// driver feeds synthetic events with automatic sequencing.
type driver struct {
	c   *Correlator
	seq uint64
	now time.Time
}

func newDriver(mutate func(*config.Params)) *driver {
	p := config.Defaults()
	p.KNear = 3
	p.KFar = 2
	if mutate != nil {
		mutate(&p)
	}
	return &driver{
		c:   New(Options{Params: &p, Seed: 42}),
		now: time.Unix(10000, 0),
	}
}

func (d *driver) ev(op trace.Op, pid trace.PID, path string) {
	d.seq++
	d.now = d.now.Add(100 * time.Millisecond)
	d.c.Feed(trace.Event{
		Seq: d.seq, Time: d.now, PID: pid, Op: op, Path: path, Uid: 1000,
	})
}

// session simulates an edit/compile pass over a project's files: every
// file opened while the first stays open (like a driver source), giving
// strong mutual relationships.
func (d *driver) session(pid trace.PID, files []string) {
	d.ev(trace.OpOpen, pid, files[0])
	for _, f := range files[1:] {
		d.ev(trace.OpOpen, pid, f)
		d.ev(trace.OpClose, pid, f)
	}
	d.ev(trace.OpClose, pid, files[0])
}

func projectFiles(name string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("/home/u/%s/f%02d", name, i)
	}
	return out
}

func (d *driver) id(path string) simfs.FileID {
	f := d.c.FS().Lookup(path)
	if f == nil {
		return simfs.NoFile
	}
	return f.ID
}

func TestTwoProjectsSeparateClusters(t *testing.T) {
	d := newDriver(nil)
	alpha := projectFiles("alpha", 6)
	beta := projectFiles("beta", 6)
	for i := 0; i < 5; i++ {
		d.session(1, alpha)
		d.session(2, beta)
	}
	res := d.c.Clusters()
	// All alpha files must share a cluster; likewise beta; and no
	// cluster may contain both an alpha and a beta file.
	aCl := d.c.FS().Lookup(alpha[0])
	if aCl == nil {
		t.Fatal("alpha file not interned")
	}
	clustersOf := func(path string) map[int]bool {
		out := map[int]bool{}
		for _, ci := range res.ClustersOf(d.id(path)) {
			out[ci] = true
		}
		return out
	}
	a0 := clustersOf(alpha[0])
	for _, p := range alpha[1:] {
		shared := false
		for ci := range clustersOf(p) {
			if a0[ci] {
				shared = true
			}
		}
		if !shared {
			t.Errorf("alpha file %s not clustered with %s", p, alpha[0])
		}
	}
	for _, cl := range res.Clusters {
		hasAlpha, hasBeta := false, false
		for _, m := range cl.Members {
			path := d.c.FS().Get(m).Path
			if len(path) > 12 && path[8:13] == "alpha" {
				hasAlpha = true
			}
			if len(path) > 11 && path[8:12] == "beta" {
				hasBeta = true
			}
		}
		if hasAlpha && hasBeta {
			t.Errorf("cluster %d mixes projects: %v", cl.ID, cl.Members)
		}
	}
}

func TestPlanRanksActiveProjectFirst(t *testing.T) {
	d := newDriver(nil)
	alpha := projectFiles("alpha", 5)
	beta := projectFiles("beta", 5)
	for i := 0; i < 4; i++ {
		d.session(1, alpha)
	}
	for i := 0; i < 4; i++ {
		d.session(2, beta)
	}
	// beta is the most recently active project: all beta files must
	// outrank all alpha files in the plan.
	plan := d.c.Plan()
	worstBeta, bestAlpha := -1, 1<<30
	for _, p := range beta {
		if r := plan.Rank(d.id(p)); r > worstBeta {
			worstBeta = r
		}
	}
	for _, p := range alpha {
		if r := plan.Rank(d.id(p)); r >= 0 && r < bestAlpha {
			bestAlpha = r
		}
	}
	if worstBeta < 0 || bestAlpha == 1<<30 {
		t.Fatal("files missing from plan")
	}
	if worstBeta > bestAlpha {
		t.Errorf("beta worst rank %d > alpha best rank %d; active project not first",
			worstBeta, bestAlpha)
	}
}

// The attention-shift property (paper §6.1): after a single reference to
// a long-idle project, the whole project must be near the front of the
// plan — unlike LRU where each file must be individually re-referenced.
func TestAttentionShiftLoadsWholeProject(t *testing.T) {
	d := newDriver(nil)
	alpha := projectFiles("alpha", 8)
	beta := projectFiles("beta", 8)
	for i := 0; i < 5; i++ {
		d.session(1, alpha)
	}
	for i := 0; i < 5; i++ {
		d.session(2, beta)
	}
	// Attention shift: touch ONE alpha file.
	d.ev(trace.OpOpen, 1, alpha[2])
	d.ev(trace.OpClose, 1, alpha[2])
	plan := d.c.Plan()
	// Every alpha file — including the 7 untouched ones — must now rank
	// ahead of every beta file.
	for _, ap := range alpha {
		ar := plan.Rank(d.id(ap))
		for _, bp := range beta {
			br := plan.Rank(d.id(bp))
			if ar > br {
				t.Fatalf("after shift, alpha %s (rank %d) behind beta %s (rank %d)",
					ap, ar, bp, br)
			}
		}
	}
}

func TestFillRespectsBudget(t *testing.T) {
	d := newDriver(nil)
	alpha := projectFiles("alpha", 5)
	for i := 0; i < 3; i++ {
		d.session(1, alpha)
	}
	var total int64
	for _, p := range alpha {
		total += d.c.FS().Lookup(p).Size
	}
	c := d.c.Fill(total)
	for _, p := range alpha {
		if !c.Has(d.id(p)) {
			t.Errorf("file %s not hoarded at exact-fit budget", p)
		}
	}
	if c.UsedBytes() > total {
		t.Errorf("used %d > budget %d", c.UsedBytes(), total)
	}
	// A tiny budget hoards nothing from the project (whole clusters
	// only) but never overruns.
	small := d.c.Fill(1)
	if small.UsedBytes() > 1 {
		t.Errorf("tiny budget overrun: %d", small.UsedBytes())
	}
}

func TestInvestigatorForcesCluster(t *testing.T) {
	d := newDriver(nil)
	// Two files never referenced together.
	d.ev(trace.OpOpen, 1, "/home/u/x/a.c")
	d.ev(trace.OpClose, 1, "/home/u/x/a.c")
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("/home/u/junk/j%02d", i)
		d.ev(trace.OpOpen, 1, p)
		d.ev(trace.OpClose, 1, p)
	}
	d.ev(trace.OpOpen, 1, "/home/u/y/b.h")
	d.ev(trace.OpClose, 1, "/home/u/y/b.h")
	before := d.c.Clusters()
	sameCluster := func(res interface{ ClustersOf(simfs.FileID) []int }, a, b simfs.FileID) bool {
		set := map[int]bool{}
		for _, ci := range res.ClustersOf(a) {
			set[ci] = true
		}
		for _, ci := range res.ClustersOf(b) {
			if set[ci] {
				return true
			}
		}
		return false
	}
	aID, bID := d.id("/home/u/x/a.c"), d.id("/home/u/y/b.h")
	if sameCluster(before, aID, bID) {
		t.Fatal("files clustered before investigation")
	}
	d.c.AddRelations([]investigate.Relation{{
		Files:    []string{"/home/u/x/a.c", "/home/u/y/b.h"},
		Strength: 100,
	}})
	after := d.c.Clusters()
	if !sameCluster(after, aID, bID) {
		t.Error("investigator relation did not force clustering")
	}
	d.c.ClearRelations()
	cleared := d.c.Clusters()
	if sameCluster(cleared, aID, bID) {
		t.Error("ClearRelations did not drop the forced relation")
	}
}

func TestAddRelationsInternsUnknownPaths(t *testing.T) {
	d := newDriver(nil)
	d.c.AddRelations([]investigate.Relation{{
		Files:    []string{"/never/seen/a", "/never/seen/b"},
		Strength: 50,
	}})
	if d.c.FS().Lookup("/never/seen/a") == nil {
		t.Error("relation path not interned")
	}
	res := d.c.Clusters()
	a := d.id("/never/seen/a")
	if len(res.ClustersOf(a)) == 0 {
		t.Error("interned relation file not clustered")
	}
}

func TestAlwaysHoardLeadsPlan(t *testing.T) {
	d := newDriver(nil)
	// Critical dot file plus a project.
	d.ev(trace.OpOpen, 1, "/home/u/.profile")
	d.ev(trace.OpClose, 1, "/home/u/.profile")
	alpha := projectFiles("alpha", 4)
	d.session(1, alpha)
	plan := d.c.Plan()
	if plan.Len() == 0 {
		t.Fatal("empty plan")
	}
	if plan.Entries[0].Reason != hoard.ReasonAlways {
		t.Errorf("first entry reason = %v, want always", plan.Entries[0].Reason)
	}
	if plan.Entries[0].File.Path != "/home/u/.profile" {
		t.Errorf("first entry = %s", plan.Entries[0].File.Path)
	}
}

func TestDeletedFilesLeavePlan(t *testing.T) {
	d := newDriver(nil)
	alpha := projectFiles("alpha", 4)
	d.session(1, alpha)
	d.ev(trace.OpDelete, 1, alpha[1])
	plan := d.c.Plan()
	if plan.Rank(d.id(alpha[1])) != -1 {
		t.Error("deleted file still planned")
	}
	if plan.Rank(d.id(alpha[0])) == -1 {
		t.Error("surviving file missing from plan")
	}
}

func TestPlanFromReusesClustering(t *testing.T) {
	d := newDriver(nil)
	d.session(1, projectFiles("alpha", 4))
	res := d.c.Clusters()
	p1 := d.c.PlanFrom(res)
	p2 := d.c.PlanFrom(res)
	if p1.Len() != p2.Len() {
		t.Error("PlanFrom not deterministic")
	}
}

func TestEventsCounter(t *testing.T) {
	d := newDriver(nil)
	d.ev(trace.OpOpen, 1, "/a")
	d.ev(trace.OpClose, 1, "/a")
	if d.c.Events() != 2 {
		t.Errorf("Events = %d, want 2", d.c.Events())
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := New(Options{})
	if c.Params().NeighborTableSize != 20 {
		t.Error("defaults not applied")
	}
	if c.FS() == nil || c.Observer() == nil || c.Table() == nil {
		t.Error("accessors returned nil")
	}
}

func TestForceHoardAfterMiss(t *testing.T) {
	d := newDriver(nil)
	alpha := projectFiles("alpha", 5)
	beta := projectFiles("beta", 5)
	for i := 0; i < 5; i++ {
		d.session(1, alpha)
	}
	for i := 0; i < 5; i++ {
		d.session(2, beta)
	}
	// The user misses an alpha file while disconnected and records it;
	// the whole alpha project is forced into future plans.
	mates := d.c.ForceHoard(alpha[3])
	if len(mates) < 3 {
		t.Fatalf("project mates = %v, want the rest of alpha", mates)
	}
	plan := d.c.Plan()
	for _, p := range alpha {
		r := plan.Rank(d.id(p))
		if r < 0 {
			t.Fatalf("forced project member %s missing from plan", p)
		}
		if plan.Entries[r].Reason != hoard.ReasonAlways {
			t.Errorf("forced member %s has reason %v", p, plan.Entries[r].Reason)
		}
	}
	if got := d.c.ForcedFiles(); len(got) < 5 {
		t.Errorf("forced set = %d files", len(got))
	}
	d.c.ClearForced()
	if len(d.c.ForcedFiles()) != 0 {
		t.Error("ClearForced left state")
	}
}

func TestForceHoardUnknownPath(t *testing.T) {
	d := newDriver(nil)
	mates := d.c.ForceHoard("/never/seen/before")
	if len(mates) != 0 {
		t.Errorf("unknown file has mates %v", mates)
	}
	plan := d.c.Plan()
	if plan.Rank(d.id("/never/seen/before")) < 0 {
		t.Error("unknown forced file missing from plan")
	}
}
