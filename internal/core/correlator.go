// Package core implements SEER's correlator: the component that
// evaluates cleaned file references, maintains the semantic-distance
// tables, runs the clustering algorithm to group files into projects,
// and chooses hoard contents (paper §2).
//
// The correlator composes the other subsystems: internal/observer turns
// raw trace events into cleaned references, internal/proc computes
// per-process Definition-3 distance samples, internal/semdist reduces
// them into per-file neighbor tables, internal/cluster groups files into
// overlapping projects, internal/investigate contributes external
// relationship evidence, and internal/hoard materializes inclusion
// plans.
package core

import (
	"context"
	"errors"
	"sort"
	"sync/atomic"
	"time"

	"github.com/fmg/seer/internal/cluster"
	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/investigate"
	"github.com/fmg/seer/internal/obs"
	"github.com/fmg/seer/internal/observer"
	"github.com/fmg/seer/internal/semdist"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/trace"
)

// Correlator is the SEER engine. It is not safe for concurrent use; feed
// it a trace in order.
type Correlator struct {
	p   config.Params
	ctl *config.Control
	fs  *simfs.FS
	obs *observer.Observer
	tbl *semdist.Table

	// extraPairs accumulates investigator-reported relations.
	extraPairs []cluster.Pair
	// forced holds files the user demanded hoarded after a miss (§4.4).
	forced map[simfs.FileID]bool

	// events counts trace events fed; atomic so operator views (the
	// shard /shards report) can read it without the correlator lock.
	events atomic.Uint64

	// The cluster cache and its dirty state. fullDirty marks changes an
	// incremental patch cannot localize (renames moving the directory-
	// distance adjustment, relation edits, clustering-parameter changes,
	// exclusion reversals); per-file neighbor-list churn instead arrives
	// through the semdist/observer journals and accumulates in pending —
	// the dirty *set* — until a clustering consumes it. The cache is
	// valid while fullDirty is unset and pending is empty, so
	// back-to-back Plan()/Clusters() calls over an unchanged table — the
	// seerd HTTP pattern — reuse one clustering; a small pending set is
	// patched into the cached result in place, and only large churn or a
	// fullDirty signal pays a rebuild.
	fullDirty bool
	pending   []simfs.FileID
	cache     *cluster.Result
	cacheHits uint64
	cacheMiss uint64
	// fullRebuilds/incRebuilds/churnFallbacks mirror the rebuild
	// metrics for the daemon's expvar debug view.
	fullRebuilds   uint64
	incRebuilds    uint64
	churnFallbacks uint64
	// lastClusterTime is how long the most recent (uncached) clustering
	// took; surfaced by the daemon's debug endpoint.
	lastClusterTime time.Duration

	// reg and the instruments below are the correlator's telemetry. The
	// registry is shared with the embedding daemon (seerd mounts it at
	// /metrics); instruments are plain atomics, so recording them does
	// not perturb the single-threaded Feed discipline.
	reg          *obs.Registry
	mEvents      *obs.Counter
	mCacheHits   *obs.Counter
	mCacheMiss   *obs.Counter
	mClusterDur  *obs.Histogram
	mPhasePairs  *obs.Histogram
	mPhaseAssign *obs.Histogram
	mPhasePatch  *obs.Histogram
	mRebuildFull *obs.Counter
	mRebuildInc  *obs.Counter
	mPatchSize   *obs.Histogram
	mFallbacks   *obs.Counter
}

// Options configures a Correlator.
type Options struct {
	// Params are the algorithm tunables; zero means config.Defaults().
	Params *config.Params
	// Control is the system control file; nil means
	// config.DefaultControl().
	Control *config.Control
	// FS is the shared file table; nil creates a fresh one.
	FS *simfs.FS
	// Seed drives tie-breaking and unknown-size assignment.
	Seed int64
	// DirSize reports directory fan-out for the meaningless-process
	// heuristic; nil assumes observer.DefaultDirSize.
	DirSize func(path string) int
	// Metrics is the registry the correlator's instruments register on;
	// nil creates a private one (retrievable via Metrics()), so embedders
	// that do not care about telemetry pay only a few atomic increments.
	Metrics *obs.Registry
}

// New returns a Correlator.
func New(opts Options) *Correlator {
	p := config.Defaults()
	if opts.Params != nil {
		p = *opts.Params
	}
	ctl := opts.Control
	if ctl == nil {
		ctl = config.DefaultControl()
	}
	fs := opts.FS
	if fs == nil {
		fs = simfs.New(stats.NewRand(opts.Seed))
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Correlator{
		p:      p,
		ctl:    ctl,
		fs:     fs,
		obs:    observer.New(p, ctl, fs, opts.DirSize),
		tbl:    semdist.NewTable(p, stats.NewRand(opts.Seed+1)),
		forced: make(map[simfs.FileID]bool),
		reg:    reg,
	}
	c.mEvents = reg.Counter("seer_events_ingested_total",
		"Trace events fed to the correlator.")
	c.mCacheHits = reg.Counter("seer_cluster_cache_hits_total",
		"Clusterings served from the dirty-counter cache.")
	c.mCacheMiss = reg.Counter("seer_cluster_cache_misses_total",
		"Clusterings that had to re-run the algorithm.")
	// Clustering phases routinely finish in tens of microseconds on
	// small reference sets, so the default buckets would dump most
	// observations into the first one or two. clusterBuckets starts at
	// 10µs and doubles-by-2.5/4 up through 10s, giving real resolution
	// on both the incremental-patch fast path and a worst-case rebuild.
	clusterBuckets := []float64{
		0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
		0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
	c.mClusterDur = reg.Histogram("seer_cluster_duration_seconds",
		"Wall time of a full (uncached) clustering.", clusterBuckets)
	c.mPhasePairs = reg.Histogram("seer_cluster_pairs_duration_seconds",
		"Wall time of the pair-generation phase (BuildPairs).", clusterBuckets)
	c.mPhaseAssign = reg.Histogram("seer_cluster_assign_duration_seconds",
		"Wall time of the two-phase cluster-assignment pass.", clusterBuckets)
	c.mPhasePatch = reg.Histogram("seer_cluster_patch_duration_seconds",
		"Wall time of an incremental cluster patch.", clusterBuckets)
	rebuilds := reg.CounterVec("seer_cluster_rebuilds_total",
		"Clusterings that re-ran the algorithm, by kind (full rebuild vs incremental patch).",
		"kind")
	c.mRebuildFull = rebuilds.With("full")
	c.mRebuildInc = rebuilds.With("incremental")
	c.mPatchSize = reg.Histogram("seer_cluster_patch_size_files",
		"Changed files consumed by one incremental cluster patch.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096})
	c.mFallbacks = reg.Counter("seer_cluster_churn_fallbacks_total",
		"Incremental clusterings abandoned for a full rebuild (churn over the threshold, or an unpatchable change).")
	return c
}

// Metrics returns the registry the correlator's instruments live on —
// the one from Options.Metrics, or the private one created in its
// absence. Embedders (the seerd daemon) mount it at /metrics.
func (c *Correlator) Metrics() *obs.Registry { return c.reg }

// FS returns the underlying file table.
func (c *Correlator) FS() *simfs.FS { return c.fs }

// Observer returns the observation layer (inspection tooling).
func (c *Correlator) Observer() *observer.Observer { return c.obs }

// Table returns the semantic-distance table (inspection tooling).
func (c *Correlator) Table() *semdist.Table { return c.tbl }

// Params returns the active parameter set.
func (c *Correlator) Params() config.Params { return c.p }

// SetParams replaces the parameter set on a live correlator. Cached
// clusterings are invalidated only when a parameter the clustering
// actually reads (KNear, KFar, DirDistanceWeight) changed: a reload
// touching only non-clustering knobs — hoard budget, admission limits,
// the churn threshold itself — keeps the cache and its incremental
// state warm. Params read at plan/fill time (SkipUnfittingClusters,
// HoardSize) never feed the cluster cache, and observer- and
// table-construction params are frozen into those structures — a
// caller wanting them changed must rebuild. The caller must hold the
// same exclusion Feed callers use.
func (c *Correlator) SetParams(p config.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.KNear != c.p.KNear || p.KFar != c.p.KFar ||
		p.DirDistanceWeight != c.p.DirDistanceWeight {
		c.fullDirty = true
	}
	c.p = p
	return nil
}

// Events returns the number of trace events fed so far.
func (c *Correlator) Events() uint64 { return c.events.Load() }

// CacheStats returns how many Clusters() calls were served from the
// cached result and how many had to re-cluster.
func (c *Correlator) CacheStats() (hits, misses uint64) {
	return c.cacheHits, c.cacheMiss
}

// RebuildStats reports how the uncached clusterings were satisfied:
// full algorithm runs, incremental patches of the cached result, and
// incremental attempts abandoned for a full rebuild (churn over the
// threshold or an unpatchable change).
func (c *Correlator) RebuildStats() (full, incremental, fallbacks uint64) {
	return c.fullRebuilds, c.incRebuilds, c.churnFallbacks
}

// PendingChanges returns how many journaled per-file changes are
// waiting to be folded into the next clustering (inspection tooling;
// the count can over-report a file changed through both journals).
func (c *Correlator) PendingChanges() int {
	return len(c.pending) + c.tbl.PendingChanges()
}

// LastClusterDuration returns how long the most recent re-clustering
// took (zero before the first one).
func (c *Correlator) LastClusterDuration() time.Duration { return c.lastClusterTime }

// Feed processes one trace event.
func (c *Correlator) Feed(ev trace.Event) {
	if ev.Op == trace.OpRename {
		// A rename moves the file's pathname, and with it the
		// directory-distance adjustment applied to every pair the file
		// participates in. The old adjusted scores cannot be recovered
		// from the neighbor journals, so patching is off the table.
		c.fullDirty = true
	}
	c.events.Add(1)
	c.mEvents.Inc()
	for _, ref := range c.obs.Observe(ev) {
		c.apply(ev, ref)
	}
}

func (c *Correlator) apply(ev trace.Event, ref observer.Reference) {
	id := ref.File.ID
	switch ref.Kind {
	case observer.RefCreate:
		// Recreation within the deletion delay keeps the relationships.
		c.tbl.Revive(id)
	case observer.RefDelete:
		c.tbl.MarkDeleted(id)
	}
	c.tbl.TickOpen()
	for _, pr := range ref.Pairs {
		c.tbl.Observe(pr.From, id, pr.Dist, pr.Clamped)
	}
}

// AddRelations registers external-investigator findings; they influence
// every subsequent clustering (paper §3.3.3). Pathnames that are not yet
// known to the file table are interned so the relation can still force
// the files into a project.
func (c *Correlator) AddRelations(rels []investigate.Relation) {
	c.fullDirty = true
	resolve := func(path string) simfs.FileID {
		f := c.fs.Lookup(path)
		if f == nil {
			f = c.fs.Intern(path, simfs.Regular, 0)
		}
		return f.ID
	}
	c.extraPairs = append(c.extraPairs,
		investigate.Pairs(rels, resolve, c.p.InvestigatorWeight)...)
}

// ClearRelations drops all registered investigator relations.
func (c *Correlator) ClearRelations() {
	c.fullDirty = true
	c.extraPairs = nil
}

// ForceHoard marks a file for unconditional inclusion in future hoard
// plans. This is the back half of the paper's miss-recording mechanism
// (§4.4): "the same user action both records the miss and arranges for
// the file to be hoarded at the next reconnection." Unknown paths are
// interned so the file can be fetched even though SEER never observed
// it. It returns the file's project mates, which the caller should also
// consider hoarding ("add the file (and all other members of its
// project) to the hoard for future use").
func (c *Correlator) ForceHoard(path string) []string {
	// Forcing changes plan output, not clustering input: plans are
	// rebuilt from the cluster result every call, so the cache stays.
	f := c.fs.Lookup(path)
	if f == nil {
		f = c.fs.Intern(path, simfs.Regular, 0)
	}
	c.forced[f.ID] = true
	// The miss is also a meaningful reference: refresh recency so the
	// file's project ranks as currently active.
	res := c.Clusters()
	var mates []string
	for _, ci := range res.ClustersOf(f.ID) {
		for _, m := range res.Clusters[ci].Members {
			if m == f.ID {
				continue
			}
			if mf := c.fs.Get(m); mf != nil && mf.Exists {
				mates = append(mates, mf.Path)
				c.forced[m] = true
			}
		}
	}
	sort.Strings(mates)
	return mates
}

// ForcedFiles returns the currently forced hoard set.
func (c *Correlator) ForcedFiles() []simfs.FileID {
	out := make([]simfs.FileID, 0, len(c.forced))
	for id := range c.forced {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClearForced empties the forced hoard set (typically after the next
// successful hoard fill has serviced the recorded misses).
func (c *Correlator) ClearForced() {
	c.forced = make(map[simfs.FileID]bool)
}

// filteredSource exposes the semantic-distance table to the clustering
// algorithm with excluded files (frequent, critical, non-file) removed.
type filteredSource struct {
	tbl *semdist.Table
	obs *observer.Observer
}

func (s filteredSource) Files() []simfs.FileID {
	// The table's Files() result is cached inside the table; filter into
	// a fresh slice rather than compacting the shared one in place.
	all := s.tbl.Files()
	kept := make([]simfs.FileID, 0, len(all))
	for _, id := range all {
		if !s.obs.IsExcluded(id) {
			kept = append(kept, id)
		}
	}
	return kept
}

func (s filteredSource) Neighbors(id simfs.FileID) []simfs.FileID {
	if s.obs.IsExcluded(id) {
		return nil
	}
	all := s.tbl.Neighbors(id)
	kept := all[:0]
	for _, nb := range all {
		if !s.obs.IsExcluded(nb) {
			kept = append(kept, nb)
		}
	}
	return kept
}

// AppendNeighbors implements cluster.AppendSource: the table appends
// into the caller's buffer, and the exclusion filter compacts the
// just-appended region in place.
func (s filteredSource) AppendNeighbors(id simfs.FileID, dst []simfs.FileID) []simfs.FileID {
	if s.obs.IsExcluded(id) {
		return dst
	}
	start := len(dst)
	dst = s.tbl.AppendNeighbors(id, dst)
	kept := dst[:start]
	for _, nb := range dst[start:] {
		if !s.obs.IsExcluded(nb) {
			kept = append(kept, nb)
		}
	}
	return kept
}

// Has implements cluster.MembershipSource: a file is present when the
// table lists it and the exclusion filter does not hide it — exactly
// the membership Files() would report.
func (s filteredSource) Has(id simfs.FileID) bool {
	return s.tbl.Has(id) && !s.obs.IsExcluded(id)
}

// ErrCanceled is returned by the *Context planning entry points when
// the clustering was aborted by context cancellation before finishing.
var ErrCanceled = errors.New("core: clustering canceled")

// Clusters runs the clustering algorithm over the current relationship
// state and returns the project assignment. The result is cached: while
// no mutating entry point has run since the last call, the previous
// assignment is returned without re-clustering. Callers must treat the
// result as read-only.
func (c *Correlator) Clusters() *cluster.Result {
	res, _ := c.ClustersContext(context.Background())
	return res
}

// ClustersContext is Clusters with cancellation: a context deadline or
// cancellation aborts an in-flight clustering (the pair-generation
// workers observe it and exit; nothing leaks) and returns ErrCanceled
// wrapped with the context cause. The cache is left untouched on
// cancellation, so a later call still benefits from it.
func (c *Correlator) ClustersContext(ctx context.Context) (*cluster.Result, error) {
	// Drain the per-file change journals into the pending dirty set.
	// This happens on every call so a cache hit really means "nothing
	// changed", not "nobody looked".
	c.pending = c.tbl.TakeChanged(c.pending)
	var exclFull bool
	c.pending, exclFull = c.obs.TakeExclusionChanges(c.pending)
	if exclFull {
		c.fullDirty = true
	}
	if c.cache != nil && !c.fullDirty && len(c.pending) == 0 {
		c.cacheHits++
		c.mCacheHits.Inc()
		return c.cache, nil
	}
	c.cacheMiss++
	c.mCacheMiss.Inc()
	src := filteredSource{tbl: c.tbl, obs: c.obs}
	pct := c.p.ClusterChurnPct
	var thr int
	if pct > 0 {
		thr = c.tbl.Len() * pct / 100
		if thr < 1 {
			// A tiny table still deserves the incremental path: one
			// changed file is always within a nonzero churn budget.
			thr = 1
		}
	}
	opts := cluster.Options{
		Adjust: investigate.DirDistanceAdjust(c.p.DirDistanceWeight, func(id simfs.FileID) string {
			if f := c.fs.Get(id); f != nil {
				return f.Path
			}
			return ""
		}),
		ExtraPairs: c.extraPairs,
		Ctx:        ctx,
		OnPhase: func(phase string, d time.Duration) {
			switch phase {
			case "pairs":
				c.mPhasePairs.Observe(d.Seconds())
			case "assign":
				c.mPhaseAssign.Observe(d.Seconds())
			case "patch":
				c.mPhasePatch.Observe(d.Seconds())
			}
		},
		Incremental: pct > 0,
		MaxPatch:    thr,
	}
	kn, kf := float64(c.p.KNear), float64(c.p.KFar)
	overChurn := false
	if c.cache != nil && !c.fullDirty && thr > 0 {
		if len(c.pending) <= thr {
			// Patch refusal discards the cache (the result may be half
			// mutated), so check cancellation first: an aborted call must
			// leave the warm cache for the next one, like the full path.
			if err := ctx.Err(); err != nil {
				return nil, errors.Join(ErrCanceled, err)
			}
			start := time.Now()
			if cluster.Patch(c.cache, src, c.pending, opts, kn, kf) {
				c.lastClusterTime = time.Since(start)
				c.incRebuilds++
				c.mRebuildInc.Inc()
				c.mPatchSize.Observe(float64(len(c.pending)))
				c.pending = c.pending[:0]
				return c.cache, nil
			}
			c.cache = nil
			c.churnFallbacks++
			c.mFallbacks.Inc()
		} else {
			overChurn = true
		}
	}
	start := time.Now()
	res := cluster.Build(src, opts, kn, kf)
	if res == nil {
		if err := ctx.Err(); err != nil {
			return nil, errors.Join(ErrCanceled, err)
		}
		return nil, ErrCanceled
	}
	c.lastClusterTime = time.Since(start)
	c.mClusterDur.Observe(c.lastClusterTime.Seconds())
	if overChurn {
		c.churnFallbacks++
		c.mFallbacks.Inc()
	}
	c.fullRebuilds++
	c.mRebuildFull.Inc()
	c.cache = res
	c.fullDirty = false
	c.pending = c.pending[:0]
	return res, nil
}

// Plan builds the hoard inclusion order (paper §2): the always-hoard set
// first, then complete projects by activity, then the remaining known
// files in LRU order.
func (c *Correlator) Plan() *hoard.Plan {
	return c.planFrom(c.Clusters())
}

// PlanContext is Plan with cancellation: a cancelled or expired context
// aborts the underlying clustering and returns ErrCanceled instead of
// blocking until it completes.
func (c *Correlator) PlanContext(ctx context.Context) (*hoard.Plan, error) {
	res, err := c.ClustersContext(ctx)
	if err != nil {
		return nil, err
	}
	return c.planFrom(res), nil
}

// FillContext is Fill with cancellation, for deadline-bound hoard
// requests.
func (c *Correlator) FillContext(ctx context.Context, budget int64) (*hoard.Contents, error) {
	p, err := c.PlanContext(ctx)
	if err != nil {
		return nil, err
	}
	return p.Fill(budget, c.p.SkipUnfittingClusters), nil
}

// PlanFrom builds a plan from a previously computed cluster result,
// letting callers reuse one clustering for several budgets.
func (c *Correlator) PlanFrom(res *cluster.Result) *hoard.Plan {
	return c.planFrom(res)
}

func (c *Correlator) planFrom(res *cluster.Result) *hoard.Plan {
	b := hoard.NewBuilder()
	// Recency comes from the observer: it reflects meaningful user
	// references only, so a find scan does not refresh every file the
	// way it would under LRU (§4.1).
	lastRef := c.obs.LastRefs()

	// 1. Files hoarded regardless of behaviour (§4.2, §4.3, §4.6),
	// deterministically ordered by path.
	always := make([]*simfs.File, 0)
	for _, id := range c.obs.AlwaysHoard() {
		if f := c.fs.Get(id); f != nil {
			always = append(always, f)
		}
	}
	sortFilesByPath(always)
	for _, f := range always {
		b.Add(f, hoard.ReasonAlways, 0)
	}

	// 1b. Files forced after recorded misses (§4.4).
	forced := make([]*simfs.File, 0, len(c.forced))
	for id := range c.forced {
		if f := c.fs.Get(id); f != nil {
			forced = append(forced, f)
		}
	}
	sortFilesByPath(forced)
	for _, f := range forced {
		b.Add(f, hoard.ReasonAlways, 0)
	}

	// 2. Whole projects in activity order: a cluster is as active as
	// its most recently referenced member.
	type rankedCluster struct {
		id       int
		activity uint64
	}
	ranked := make([]rankedCluster, 0, len(res.Clusters))
	for _, cl := range res.Clusters {
		var act uint64
		for _, m := range cl.Members {
			if s := lastRef[m]; s > act {
				act = s
			}
		}
		ranked = append(ranked, rankedCluster{id: cl.ID, activity: act})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].activity != ranked[j].activity {
			return ranked[i].activity > ranked[j].activity
		}
		return ranked[i].id < ranked[j].id
	})
	for _, rc := range ranked {
		cl := &res.Clusters[rc.id]
		members := make([]*simfs.File, 0, len(cl.Members))
		for _, m := range cl.Members {
			if f := c.fs.Get(m); f != nil {
				members = append(members, f)
			}
		}
		// Within a cluster, most recent first (matters only when the
		// filler is in prefix mode).
		sortFilesByRecency(members, lastRef)
		for _, f := range members {
			b.Add(f, hoard.ReasonCluster, cl.ID)
		}
	}

	// 3. Remaining referenced files in LRU order.
	tail := make([]*simfs.File, 0)
	for id := range lastRef {
		if f := c.fs.Get(id); f != nil {
			tail = append(tail, f)
		}
	}
	sortFilesByRecency(tail, lastRef)
	for _, f := range tail {
		b.Add(f, hoard.ReasonRecency, 0)
	}
	return b.Plan()
}

// Fill computes hoard contents for the given byte budget.
func (c *Correlator) Fill(budget int64) *hoard.Contents {
	return c.Plan().Fill(budget, c.p.SkipUnfittingClusters)
}

func sortFilesByPath(files []*simfs.File) {
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
}

// sortFilesByRecency orders most recently referenced first, with path
// order breaking ties (including never-referenced files).
func sortFilesByRecency(files []*simfs.File, lastSeq map[simfs.FileID]uint64) {
	sort.Slice(files, func(i, j int) bool {
		si, sj := lastSeq[files[i].ID], lastSeq[files[j].ID]
		if si != sj {
			return si > sj
		}
		return files[i].Path < files[j].Path
	})
}
