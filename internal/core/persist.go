package core

import (
	"fmt"
	"io"

	"github.com/fmg/seer/internal/cluster"
	"github.com/fmg/seer/internal/semdist"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/wire"
)

// The database snapshot format. The paper left the on-disk database as
// a straightforward future optimization (§5.3); this is that feature:
// a daemon can checkpoint months of learned relationships and restore
// them at the next start.
const (
	dbMagic   = "SEERDB"
	dbVersion = 1
)

// Save checkpoints the correlator's durable state: the file table, the
// semantic-distance tables, and the observer's counters and histories.
// Per-process transient state is not saved (a restart behaves like a
// reboot). Investigator relations are saved so a restored daemon keeps
// its external evidence.
func (c *Correlator) Save(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Str(dbMagic)
	w.U64(dbVersion)
	w.U64(c.events)
	c.fs.Save(w)
	c.tbl.Save(w)
	c.obs.Save(w)
	w.Int(len(c.extraPairs))
	for _, p := range c.extraPairs {
		w.U64(uint64(p.From))
		w.U64(uint64(p.To))
		w.F64(p.Shared)
	}
	forced := c.ForcedFiles()
	w.Int(len(forced))
	for _, id := range forced {
		w.U64(uint64(id))
	}
	return w.Flush()
}

// Load restores a correlator saved with Save. The options supply the
// parameter set, control file and directory sizer, which are
// configuration rather than state.
func Load(in io.Reader, opts Options) (*Correlator, error) {
	r := wire.NewReader(in)
	if magic := r.Str(); magic != dbMagic {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("core: not a SEER database (magic %q)", magic)
	}
	if v := r.U64(); v != dbVersion {
		return nil, fmt.Errorf("core: unsupported database version %d", v)
	}
	events := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	seed := opts.Seed
	fs, err := simfs.LoadFS(r, stats.NewRand(seed))
	if err != nil {
		return nil, fmt.Errorf("core: load file table: %w", err)
	}
	opts.FS = fs
	c := New(opts)
	c.events = events
	tbl, err := semdist.LoadTable(r, c.p, stats.NewRand(seed+1))
	if err != nil {
		return nil, fmt.Errorf("core: load distance table: %w", err)
	}
	c.tbl = tbl
	if err := c.obs.Load(r); err != nil {
		return nil, fmt.Errorf("core: load observer: %w", err)
	}
	n := r.Int()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n < 0 {
		return nil, fmt.Errorf("core: negative relation count %d", n)
	}
	for i := 0; i < n; i++ {
		c.extraPairs = append(c.extraPairs, cluster.Pair{
			From:   simfs.FileID(r.U64()),
			To:     simfs.FileID(r.U64()),
			Shared: r.F64(),
		})
	}
	nf := r.Int()
	for i := 0; i < nf && r.Err() == nil; i++ {
		c.forced[simfs.FileID(r.U64())] = true
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return c, nil
}
