package core

import (
	"fmt"
	"io"

	"github.com/fmg/seer/internal/cluster"
	"github.com/fmg/seer/internal/semdist"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/wire"
)

// The database snapshot format. The paper left the on-disk database as
// a straightforward future optimization (§5.3); this is that feature:
// a daemon can checkpoint months of learned relationships and restore
// them at the next start.
//
// Version 1 was a bare concatenation of sections; a single flipped bit
// could misparse silently and a truncated file produced confusing
// errors. Version 2 wraps every section in a CRC32-C frame with a
// length header (wire.Frame), so corruption is detected at the section
// that suffered it. Version 1 snapshots remain readable.
const (
	dbMagic    = "SEERDB"
	dbVersion1 = 1
	dbVersion2 = 2
)

// CorruptError reports a structurally invalid value inside a snapshot —
// bytes that decode but cannot describe a correlator (negative counts,
// for example). Framing catches flipped bits; CorruptError catches
// well-formed nonsense.
type CorruptError struct {
	// Section names the snapshot section holding the bad value.
	Section string
	// Detail describes the invalid value.
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("core: corrupt snapshot: %s: %s", e.Section, e.Detail)
}

// Save checkpoints the correlator's durable state: the file table, the
// semantic-distance tables, and the observer's counters and histories.
// Per-process transient state is not saved (a restart behaves like a
// reboot). Investigator relations are saved so a restored daemon keeps
// its external evidence. The snapshot is written in the framed v2
// format.
func (c *Correlator) Save(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Str(dbMagic)
	w.U64(dbVersion2)
	w.Frame("meta", func(w *wire.Writer) {
		w.U64(c.events.Load())
	})
	w.Frame("fs", func(w *wire.Writer) {
		c.fs.Save(w)
	})
	w.Frame("tbl", func(w *wire.Writer) {
		c.tbl.Save(w)
	})
	w.Frame("obs", func(w *wire.Writer) {
		c.obs.Save(w)
	})
	w.Frame("rel", func(w *wire.Writer) {
		w.Int(len(c.extraPairs))
		for _, p := range c.extraPairs {
			w.U64(uint64(p.From))
			w.U64(uint64(p.To))
			w.F64(p.Shared)
		}
	})
	w.Frame("forced", func(w *wire.Writer) {
		forced := c.ForcedFiles()
		w.Int(len(forced))
		for _, id := range forced {
			w.U64(uint64(id))
		}
	})
	return w.Flush()
}

// saveV1 writes the legacy unframed v1 snapshot. Production code always
// writes v2; this writer is kept so tests (and the fuzz corpus) can
// prove that databases produced by earlier releases still load.
func (c *Correlator) saveV1(out io.Writer) error {
	w := wire.NewWriter(out)
	w.Str(dbMagic)
	w.U64(dbVersion1)
	w.U64(c.events.Load())
	c.fs.Save(w)
	c.tbl.Save(w)
	c.obs.Save(w)
	w.Int(len(c.extraPairs))
	for _, p := range c.extraPairs {
		w.U64(uint64(p.From))
		w.U64(uint64(p.To))
		w.F64(p.Shared)
	}
	forced := c.ForcedFiles()
	w.Int(len(forced))
	for _, id := range forced {
		w.U64(uint64(id))
	}
	return w.Flush()
}

// Load restores a correlator saved with Save. The options supply the
// parameter set, control file and directory sizer, which are
// configuration rather than state. Both the current framed v2 format
// and the legacy v1 format are accepted. Load never panics: arbitrary
// input yields an error (framing violations, checksum mismatches, or
// CorruptError for decodable nonsense).
func Load(in io.Reader, opts Options) (*Correlator, error) {
	r := wire.NewReader(in)
	if magic := r.Str(); magic != dbMagic {
		if r.Err() != nil {
			return nil, r.Err()
		}
		return nil, fmt.Errorf("core: not a SEER database (magic %q)", magic)
	}
	v := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	switch v {
	case dbVersion1:
		return loadV1(r, opts)
	case dbVersion2:
		return loadV2(r, opts)
	}
	return nil, fmt.Errorf("core: unsupported database version %d", v)
}

// loadV1 reads the legacy unframed section sequence.
func loadV1(r *wire.Reader, opts Options) (*Correlator, error) {
	events := r.U64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	seed := opts.Seed
	fs, err := simfs.LoadFS(r, stats.NewRand(seed))
	if err != nil {
		return nil, fmt.Errorf("core: load file table: %w", err)
	}
	opts.FS = fs
	c := New(opts)
	c.events.Store(events)
	tbl, err := semdist.LoadTable(r, c.p, stats.NewRand(seed+1))
	if err != nil {
		return nil, fmt.Errorf("core: load distance table: %w", err)
	}
	c.tbl = tbl
	if err := c.obs.Load(r); err != nil {
		return nil, fmt.Errorf("core: load observer: %w", err)
	}
	if err := c.loadRelations(r); err != nil {
		return nil, err
	}
	if err := c.loadForced(r); err != nil {
		return nil, err
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return c, nil
}

// loadV2 reads the framed section sequence, verifying each section's
// checksum before decoding it.
func loadV2(r *wire.Reader, opts Options) (*Correlator, error) {
	var events uint64
	if err := r.Frame("meta", func(sr *wire.Reader) error {
		events = sr.U64()
		return sr.Err()
	}); err != nil {
		return nil, fmt.Errorf("core: load meta: %w", err)
	}
	seed := opts.Seed
	var fs *simfs.FS
	if err := r.Frame("fs", func(sr *wire.Reader) error {
		var err error
		fs, err = simfs.LoadFS(sr, stats.NewRand(seed))
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: load file table: %w", err)
	}
	opts.FS = fs
	c := New(opts)
	c.events.Store(events)
	if err := r.Frame("tbl", func(sr *wire.Reader) error {
		tbl, err := semdist.LoadTable(sr, c.p, stats.NewRand(seed+1))
		if err == nil {
			c.tbl = tbl
		}
		return err
	}); err != nil {
		return nil, fmt.Errorf("core: load distance table: %w", err)
	}
	if err := r.Frame("obs", func(sr *wire.Reader) error {
		return c.obs.Load(sr)
	}); err != nil {
		return nil, fmt.Errorf("core: load observer: %w", err)
	}
	if err := r.Frame("rel", c.loadRelations); err != nil {
		return nil, err
	}
	if err := r.Frame("forced", c.loadForced); err != nil {
		return nil, err
	}
	return c, nil
}

// loadRelations decodes the investigator-relation section.
func (c *Correlator) loadRelations(r *wire.Reader) error {
	n := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 {
		return &CorruptError{Section: "rel", Detail: fmt.Sprintf("negative relation count %d", n)}
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		c.extraPairs = append(c.extraPairs, cluster.Pair{
			From:   simfs.FileID(r.U64()),
			To:     simfs.FileID(r.U64()),
			Shared: r.F64(),
		})
	}
	return r.Err()
}

// loadForced decodes the forced-file section.
func (c *Correlator) loadForced(r *wire.Reader) error {
	nf := r.Int()
	if r.Err() != nil {
		return r.Err()
	}
	if nf < 0 {
		return &CorruptError{Section: "forced", Detail: fmt.Sprintf("negative forced-file count %d", nf)}
	}
	for i := 0; i < nf && r.Err() == nil; i++ {
		c.forced[simfs.FileID(r.U64())] = true
	}
	return r.Err()
}
