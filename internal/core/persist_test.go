package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/investigate"
	"github.com/fmg/seer/internal/trace"
	"github.com/fmg/seer/internal/workload"
)

// replayWorkload feeds a scaled machine trace and returns the correlator
// plus the trace for further feeding.
func replayWorkload(t *testing.T, days int) (*Correlator, []trace.Event, Options) {
	t.Helper()
	prof, ok := workload.ProfileByName("C")
	if !ok {
		t.Fatal("no profile C")
	}
	gen := workload.NewGenerator(prof.Light(days), 1)
	tr := gen.Generate()
	p := config.Defaults()
	p.Window = 20
	opts := Options{Params: &p, Seed: 5, DirSize: gen.DirSize}
	c := New(opts)
	for _, ev := range tr.Events {
		c.Feed(ev)
	}
	return c, tr.Events, opts
}

func plansEqual(t *testing.T, a, b *Correlator) {
	t.Helper()
	pa, pb := a.Plan(), b.Plan()
	if pa.Len() != pb.Len() {
		t.Fatalf("plan lengths differ: %d vs %d", pa.Len(), pb.Len())
	}
	for i := range pa.Entries {
		ea, eb := pa.Entries[i], pb.Entries[i]
		if ea.File.Path != eb.File.Path || ea.Cum != eb.Cum || ea.Reason != eb.Reason {
			t.Fatalf("plan entry %d differs: %s/%d/%v vs %s/%d/%v",
				i, ea.File.Path, ea.Cum, ea.Reason, eb.File.Path, eb.Cum, eb.Reason)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, _, opts := replayWorkload(t, 10)
	orig.AddRelations([]investigate.Relation{{
		Files: []string{"/home/u/proj00/src00.c", "/home/u/proj00/hdr00.h"}, Strength: 5,
	}})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Events() != orig.Events() {
		t.Errorf("events = %d, want %d", restored.Events(), orig.Events())
	}
	if restored.FS().Len() != orig.FS().Len() {
		t.Errorf("files = %d, want %d", restored.FS().Len(), orig.FS().Len())
	}
	if restored.Table().Len() != orig.Table().Len() {
		t.Errorf("tracked = %d, want %d", restored.Table().Len(), orig.Table().Len())
	}
	plansEqual(t, orig, restored)

	// The restored correlator keeps learning: feed identical fresh
	// events to both and the plans must stay identical.
	clk := trace.NewClock(time.Unix(9_000_000, 0))
	for i := 0; i < 50; i++ {
		path := "/home/u/proj01/src00.c"
		if i%2 == 1 {
			path = "/home/u/proj01/hdr00.h"
		}
		ev := clk.Stamp(trace.Event{PID: 900, Op: trace.OpOpen, Path: path, Uid: 1000})
		orig.Feed(ev)
		restored.Feed(ev)
		ev = clk.Stamp(trace.Event{PID: 900, Op: trace.OpClose, Path: path, Uid: 1000})
		orig.Feed(ev)
		restored.Feed(ev)
	}
	plansEqual(t, orig, restored)
}

func TestSaveLoadPreservesObserverState(t *testing.T) {
	orig, _, opts := replayWorkload(t, 10)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	of := orig.Observer().FrequentFiles()
	rf := restored.Observer().FrequentFiles()
	if len(of) != len(rf) {
		t.Errorf("frequent sets differ: %d vs %d", len(of), len(rf))
	}
	// The meaningless-program history survives: find stays filtered.
	if orig.Observer().ProgramMeaningless("find") !=
		restored.Observer().ProgramMeaningless("find") {
		t.Error("program history lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a database"), Options{}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(""), Options{}); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated valid prefix.
	orig, _, opts := replayWorkload(t, 5)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := Load(bytes.NewReader(trunc), opts); err == nil {
		t.Error("truncated database accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	orig, _, opts := replayWorkload(t, 5)
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The version varint follows the 1-byte length + 6-byte magic.
	b[7] = 99
	if _, err := Load(bytes.NewReader(b), opts); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestSnapshotSizeReasonable(t *testing.T) {
	orig, _, _ := replayWorkload(t, 10)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	perFile := buf.Len() / orig.FS().Len()
	// The paper reports ~1 KB of memory per file (§5.3) and predicts an
	// easy on-disk encoding; ours should be well under that on disk.
	if perFile > 2048 {
		t.Errorf("snapshot uses %d bytes/file, want < 2048", perFile)
	}
}

// The invariant checker passes after a long replay and after a
// save/load cycle; a hand-corrupted table is caught.
func TestCheckInvariants(t *testing.T) {
	orig, _, opts := replayWorkload(t, 15)
	if problems := orig.CheckInvariants(); len(problems) != 0 {
		t.Fatalf("replayed correlator unhealthy: %v", problems)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if problems := restored.CheckInvariants(); len(problems) != 0 {
		t.Fatalf("restored correlator unhealthy: %v", problems)
	}
	// Corrupt: inject a relationship for a file the table never saw.
	restored.Table().Observe(99999, 99998, 1, false)
	if problems := restored.CheckInvariants(); len(problems) == 0 {
		t.Fatal("corruption not detected")
	}
}
