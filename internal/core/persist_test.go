package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/investigate"
	"github.com/fmg/seer/internal/trace"
	"github.com/fmg/seer/internal/wire"
	"github.com/fmg/seer/internal/workload"
)

// replayWorkload feeds a scaled machine trace and returns the correlator
// plus the trace for further feeding.
func replayWorkload(t *testing.T, days int) (*Correlator, []trace.Event, Options) {
	t.Helper()
	prof, ok := workload.ProfileByName("C")
	if !ok {
		t.Fatal("no profile C")
	}
	gen := workload.NewGenerator(prof.Light(days), 1)
	tr := gen.Generate()
	p := config.Defaults()
	p.Window = 20
	opts := Options{Params: &p, Seed: 5, DirSize: gen.DirSize}
	c := New(opts)
	for _, ev := range tr.Events {
		c.Feed(ev)
	}
	return c, tr.Events, opts
}

func plansEqual(t *testing.T, a, b *Correlator) {
	t.Helper()
	pa, pb := a.Plan(), b.Plan()
	if pa.Len() != pb.Len() {
		t.Fatalf("plan lengths differ: %d vs %d", pa.Len(), pb.Len())
	}
	for i := range pa.Entries {
		ea, eb := pa.Entries[i], pb.Entries[i]
		if ea.File.Path != eb.File.Path || ea.Cum != eb.Cum || ea.Reason != eb.Reason {
			t.Fatalf("plan entry %d differs: %s/%d/%v vs %s/%d/%v",
				i, ea.File.Path, ea.Cum, ea.Reason, eb.File.Path, eb.Cum, eb.Reason)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, _, opts := replayWorkload(t, 10)
	orig.AddRelations([]investigate.Relation{{
		Files: []string{"/home/u/proj00/src00.c", "/home/u/proj00/hdr00.h"}, Strength: 5,
	}})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Events() != orig.Events() {
		t.Errorf("events = %d, want %d", restored.Events(), orig.Events())
	}
	if restored.FS().Len() != orig.FS().Len() {
		t.Errorf("files = %d, want %d", restored.FS().Len(), orig.FS().Len())
	}
	if restored.Table().Len() != orig.Table().Len() {
		t.Errorf("tracked = %d, want %d", restored.Table().Len(), orig.Table().Len())
	}
	plansEqual(t, orig, restored)

	// The restored correlator keeps learning: feed identical fresh
	// events to both and the plans must stay identical.
	clk := trace.NewClock(time.Unix(9_000_000, 0))
	for i := 0; i < 50; i++ {
		path := "/home/u/proj01/src00.c"
		if i%2 == 1 {
			path = "/home/u/proj01/hdr00.h"
		}
		ev := clk.Stamp(trace.Event{PID: 900, Op: trace.OpOpen, Path: path, Uid: 1000})
		orig.Feed(ev)
		restored.Feed(ev)
		ev = clk.Stamp(trace.Event{PID: 900, Op: trace.OpClose, Path: path, Uid: 1000})
		orig.Feed(ev)
		restored.Feed(ev)
	}
	plansEqual(t, orig, restored)
}

func TestSaveLoadPreservesObserverState(t *testing.T) {
	orig, _, opts := replayWorkload(t, 10)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	of := orig.Observer().FrequentFiles()
	rf := restored.Observer().FrequentFiles()
	if len(of) != len(rf) {
		t.Errorf("frequent sets differ: %d vs %d", len(of), len(rf))
	}
	// The meaningless-program history survives: find stays filtered.
	if orig.Observer().ProgramMeaningless("find") !=
		restored.Observer().ProgramMeaningless("find") {
		t.Error("program history lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a database"), Options{}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(""), Options{}); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated valid prefix.
	orig, _, opts := replayWorkload(t, 5)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/3]
	if _, err := Load(bytes.NewReader(trunc), opts); err == nil {
		t.Error("truncated database accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	orig, _, opts := replayWorkload(t, 5)
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// The version varint follows the 1-byte length + 6-byte magic.
	b[7] = 99
	if _, err := Load(bytes.NewReader(b), opts); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestSnapshotSizeReasonable(t *testing.T) {
	orig, _, _ := replayWorkload(t, 10)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	perFile := buf.Len() / orig.FS().Len()
	// The paper reports ~1 KB of memory per file (§5.3) and predicts an
	// easy on-disk encoding; ours should be well under that on disk.
	if perFile > 2048 {
		t.Errorf("snapshot uses %d bytes/file, want < 2048", perFile)
	}
}

// tinyCorrelator builds a correlator small enough that its snapshot can
// be attacked byte by byte without the test taking noticeable time.
func tinyCorrelator() (*Correlator, Options) {
	p := config.Defaults()
	p.Window = 4
	opts := Options{Params: &p, Seed: 3}
	c := New(opts)
	clk := trace.NewClock(time.Unix(1_000_000, 0))
	paths := []string{"/a/x.c", "/a/y.h", "/b/z.txt"}
	for i := 0; i < 12; i++ {
		path := paths[i%len(paths)]
		c.Feed(clk.Stamp(trace.Event{PID: 7, Op: trace.OpOpen, Path: path, Uid: 1000}))
		c.Feed(clk.Stamp(trace.Event{PID: 7, Op: trace.OpClose, Path: path, Uid: 1000}))
	}
	return c, opts
}

func TestLoadV1Compat(t *testing.T) {
	// A v1 snapshot — what the seed release wrote — must still load and
	// reproduce the same plan.
	orig, _, opts := replayWorkload(t, 10)
	var buf bytes.Buffer
	if err := orig.saveV1(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Events() != orig.Events() {
		t.Errorf("events = %d, want %d", restored.Events(), orig.Events())
	}
	plansEqual(t, orig, restored)
}

func TestLoadTruncateEveryByte(t *testing.T) {
	// Every proper prefix of a snapshot must load with an error — never
	// a panic, never silent acceptance of partial state.
	orig, opts := tinyCorrelator()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		if _, err := Load(bytes.NewReader(data[:n]), opts); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(data))
		}
	}
	// The full snapshot still loads.
	if _, err := Load(bytes.NewReader(data), opts); err != nil {
		t.Fatalf("intact snapshot rejected: %v", err)
	}
}

func TestLoadDetectsEveryBitFlip(t *testing.T) {
	// The v2 framing checksums every section, so any single flipped bit
	// anywhere in the snapshot must be rejected.
	orig, opts := tinyCorrelator()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			flipped := bytes.Clone(data)
			flipped[i] ^= 1 << bit
			if _, err := Load(bytes.NewReader(flipped), opts); err == nil {
				t.Fatalf("flip of byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestLoadRejectsNegativeCounts(t *testing.T) {
	// Hand-craft v2 snapshots whose relation / forced-file counts are
	// negative: both must surface as CorruptError, not loop or panic.
	c, opts := tinyCorrelator()
	craft := func(relBody, forcedBody func(*wire.Writer)) []byte {
		var buf bytes.Buffer
		w := wire.NewWriter(&buf)
		w.Str(dbMagic)
		w.U64(dbVersion2)
		w.Frame("meta", func(w *wire.Writer) { w.U64(c.events.Load()) })
		w.Frame("fs", func(w *wire.Writer) { c.fs.Save(w) })
		w.Frame("tbl", func(w *wire.Writer) { c.tbl.Save(w) })
		w.Frame("obs", func(w *wire.Writer) { c.obs.Save(w) })
		w.Frame("rel", relBody)
		w.Frame("forced", forcedBody)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	empty := func(w *wire.Writer) { w.Int(0) }
	negative := func(w *wire.Writer) { w.Int(-1) }

	var ce *CorruptError
	_, err := Load(bytes.NewReader(craft(negative, empty)), opts)
	if !errors.As(err, &ce) || ce.Section != "rel" {
		t.Errorf("negative relation count: got %v, want CorruptError in rel", err)
	}
	_, err = Load(bytes.NewReader(craft(empty, negative)), opts)
	if !errors.As(err, &ce) || ce.Section != "forced" {
		t.Errorf("negative forced count: got %v, want CorruptError in forced", err)
	}
}

// The invariant checker passes after a long replay and after a
// save/load cycle; a hand-corrupted table is caught.
func TestCheckInvariants(t *testing.T) {
	orig, _, opts := replayWorkload(t, 15)
	if problems := orig.CheckInvariants(); len(problems) != 0 {
		t.Fatalf("replayed correlator unhealthy: %v", problems)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if problems := restored.CheckInvariants(); len(problems) != 0 {
		t.Fatalf("restored correlator unhealthy: %v", problems)
	}
	// Corrupt: inject a relationship for a file the table never saw.
	restored.Table().Observe(99999, 99998, 1, false)
	if problems := restored.CheckInvariants(); len(problems) == 0 {
		t.Fatal("corruption not detected")
	}
}
