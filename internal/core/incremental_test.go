package core

import (
	"slices"
	"testing"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/trace"
)

// TestIncrementalPatchMatchesFullRebuild drives two identical
// correlators through the same trace — one with the churn threshold
// wide open so small changes are patched into the cached clustering,
// one with incremental clustering disabled — and requires every
// clustering along the way to be identical. This pins the correlator's
// journal-drain + patch plumbing end to end, on top of the pure
// algorithm equivalence pinned in internal/cluster.
func TestIncrementalPatchMatchesFullRebuild(t *testing.T) {
	di := newDriver(func(p *config.Params) { p.ClusterChurnPct = 100 })
	df := newDriver(func(p *config.Params) { p.ClusterChurnPct = 0 })

	step := func(name string, f func(d *driver)) {
		t.Helper()
		f(di)
		f(df)
		ri, rf := di.c.Clusters(), df.c.Clusters()
		if len(ri.Clusters) != len(rf.Clusters) {
			t.Fatalf("%s: %d clusters incrementally, %d with full rebuilds",
				name, len(ri.Clusters), len(rf.Clusters))
		}
		for i := range rf.Clusters {
			if ri.Clusters[i].ID != rf.Clusters[i].ID ||
				!slices.Equal(ri.Clusters[i].Members, rf.Clusters[i].Members) {
				t.Fatalf("%s: cluster %d = %v incrementally, %v with full rebuilds",
					name, i, ri.Clusters[i], rf.Clusters[i])
			}
		}
	}

	step("warmup", func(d *driver) {
		for i := 0; i < 3; i++ {
			d.session(1, projectFiles("alpha", 5))
			d.session(2, projectFiles("beta", 4))
		}
	})
	step("alpha refresh", func(d *driver) { d.session(1, projectFiles("alpha", 5)) })
	step("new project", func(d *driver) { d.session(3, projectFiles("gamma", 3)) })
	step("delete", func(d *driver) { d.ev(trace.OpDelete, 1, "/home/u/alpha/f04") })
	step("beta refresh", func(d *driver) { d.session(2, projectFiles("beta", 4)) })

	if _, inc, _ := di.c.RebuildStats(); inc == 0 {
		t.Error("incremental correlator never took the patch path")
	}
	if full, inc, _ := df.c.RebuildStats(); inc != 0 || full == 0 {
		t.Errorf("disabled-churn correlator: %d full, %d incremental rebuilds", full, inc)
	}
}
