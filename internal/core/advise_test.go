package core

import (
	"testing"
)

// A file kept in a scratch directory but always used with one project
// should be suggested for relocation into that project's directory.
func TestAdviseReorgFindsStray(t *testing.T) {
	d := newDriver(nil)
	project := []string{
		"/home/u/proj/a.c", "/home/u/proj/b.c", "/home/u/proj/c.h",
		"/home/u/proj/d.h", "/home/u/scratch/notes.txt",
	}
	for i := 0; i < 6; i++ {
		d.session(1, project)
	}
	advice := d.c.AdviseReorg(3, 0.6)
	if len(advice) == 0 {
		t.Fatal("no advice for an obvious stray")
	}
	found := false
	for _, a := range advice {
		if a.Path == "/home/u/scratch/notes.txt" {
			found = true
			if a.TargetDir != "/home/u/proj" {
				t.Errorf("target = %s, want /home/u/proj", a.TargetDir)
			}
			if a.Mates < 4 || a.ClusterSize < 5 {
				t.Errorf("counts = %d/%d", a.Mates, a.ClusterSize)
			}
		}
		if a.Path != "/home/u/scratch/notes.txt" {
			t.Errorf("unexpected advice for %s", a.Path)
		}
	}
	if !found {
		t.Error("stray file not advised")
	}
}

// Files already co-located produce no advice.
func TestAdviseReorgQuietWhenTidy(t *testing.T) {
	d := newDriver(nil)
	project := projectFiles("tidy", 6)
	for i := 0; i < 6; i++ {
		d.session(1, project)
	}
	if advice := d.c.AdviseReorg(3, 0.6); len(advice) != 0 {
		t.Errorf("advice for a tidy project: %+v", advice)
	}
}

// An evenly split cluster has no semantic home; no advice.
func TestAdviseReorgNoDominance(t *testing.T) {
	d := newDriver(nil)
	mixed := []string{
		"/home/u/one/a.c", "/home/u/one/b.c",
		"/home/u/two/c.c", "/home/u/two/d.c",
	}
	for i := 0; i < 6; i++ {
		d.session(1, mixed)
	}
	if advice := d.c.AdviseReorg(3, 0.6); len(advice) != 0 {
		t.Errorf("advice without dominance: %+v", advice)
	}
}

func TestAdviseReorgDeterministic(t *testing.T) {
	build := func() []Advice {
		d := newDriver(nil)
		files := []string{
			"/home/u/p/a.c", "/home/u/p/b.c", "/home/u/p/c.c",
			"/home/u/x/stray1", "/home/u/p/d.c", "/home/u/p/e.c",
			"/home/u/p/f.c", "/home/u/p/g.c", "/home/u/y/stray2",
		}
		for i := 0; i < 5; i++ {
			d.session(1, files)
		}
		return d.c.AdviseReorg(3, 0.6)
	}
	a1, a2 := build(), build()
	if len(a1) != len(a2) {
		t.Fatalf("lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("advice %d differs", i)
		}
	}
}
