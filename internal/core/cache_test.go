package core

import (
	"testing"

	"github.com/fmg/seer/internal/investigate"
	"github.com/fmg/seer/internal/trace"
)

// TestClusterCacheReuse: back-to-back Clusters() calls over unchanged
// state return the same result object without re-clustering.
func TestClusterCacheReuse(t *testing.T) {
	d := newDriver(nil)
	d.session(1, projectFiles("alpha", 5))
	r1 := d.c.Clusters()
	r2 := d.c.Clusters()
	if r1 != r2 {
		t.Error("unchanged state did not reuse the cached result")
	}
	hits, misses := d.c.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits, %d misses, want 1/1", hits, misses)
	}
	if d.c.LastClusterDuration() <= 0 {
		t.Error("last clustering duration not recorded")
	}
	// Plan() goes through Clusters(), so repeated planning also hits.
	d.c.Plan()
	if hits, _ := d.c.CacheStats(); hits != 2 {
		t.Errorf("Plan did not reuse the cache (hits = %d)", hits)
	}
}

// TestClusterCacheInvalidation: every mutating correlator entry point
// must drop the cached clustering.
func TestClusterCacheInvalidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(d *driver)
	}{
		{"Feed", func(d *driver) { d.ev(trace.OpOpen, 9, "/home/u/new/file") }},
		{"AddRelations", func(d *driver) {
			d.c.AddRelations([]investigate.Relation{
				{Files: []string{"/home/u/alpha/f00", "/home/u/alpha/f01"}, Strength: 1},
			})
		}},
		{"ClearRelations", func(d *driver) { d.c.ClearRelations() }},
		{"ForceHoard", func(d *driver) { d.c.ForceHoard("/home/u/missed") }},
		{"ClearForced", func(d *driver) { d.c.ClearForced() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDriver(nil)
			d.session(1, projectFiles("alpha", 5))
			before := d.c.Clusters()
			_, missBefore := d.c.CacheStats()
			tc.mutate(d)
			after := d.c.Clusters()
			_, missAfter := d.c.CacheStats()
			if missAfter <= missBefore {
				t.Errorf("%s did not invalidate the cluster cache", tc.name)
			}
			_ = before
			_ = after
		})
	}
}
