package core

import (
	"testing"
	"time"

	"github.com/fmg/seer/internal/investigate"
	"github.com/fmg/seer/internal/trace"
)

// TestClusterCacheReuse: back-to-back Clusters() calls over unchanged
// state return the same result object without re-clustering.
func TestClusterCacheReuse(t *testing.T) {
	d := newDriver(nil)
	d.session(1, projectFiles("alpha", 5))
	r1 := d.c.Clusters()
	r2 := d.c.Clusters()
	if r1 != r2 {
		t.Error("unchanged state did not reuse the cached result")
	}
	hits, misses := d.c.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats = %d hits, %d misses, want 1/1", hits, misses)
	}
	if d.c.LastClusterDuration() <= 0 {
		t.Error("last clustering duration not recorded")
	}
	// Plan() goes through Clusters(), so repeated planning also hits.
	d.c.Plan()
	if hits, _ := d.c.CacheStats(); hits != 2 {
		t.Errorf("Plan did not reuse the cache (hits = %d)", hits)
	}
}

// TestClusterCacheInvalidation: every entry point that changes
// clustering input must drop (or patch) the cached clustering.
func TestClusterCacheInvalidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(d *driver)
	}{
		// Feeding events that change neighbor lists dirties the cache
		// through the table's change journal.
		{"Feed", func(d *driver) { d.session(3, projectFiles("gamma", 3)) }},
		// A rename moves the directory-distance adjustment; only a full
		// rebuild can re-score that.
		{"Rename", func(d *driver) {
			d.seq++
			d.now = d.now.Add(100 * time.Millisecond)
			d.c.Feed(trace.Event{Seq: d.seq, Time: d.now, PID: 1, Op: trace.OpRename,
				Path: "/home/u/alpha/f00", Path2: "/home/u/alpha/moved", Uid: 1000})
		}},
		{"AddRelations", func(d *driver) {
			d.c.AddRelations([]investigate.Relation{
				{Files: []string{"/home/u/alpha/f00", "/home/u/alpha/f01"}, Strength: 1},
			})
		}},
		{"ClearRelations", func(d *driver) { d.c.ClearRelations() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDriver(nil)
			d.session(1, projectFiles("alpha", 5))
			before := d.c.Clusters()
			_, missBefore := d.c.CacheStats()
			tc.mutate(d)
			after := d.c.Clusters()
			_, missAfter := d.c.CacheStats()
			if missAfter <= missBefore {
				t.Errorf("%s did not invalidate the cluster cache", tc.name)
			}
			_ = before
			_ = after
		})
	}
}

// TestClusterCachePlanOnlyMutations: entry points that change plan
// output but not clustering input (forced-hoard bookkeeping, events
// that touch no neighbor list) must keep the cached clustering.
func TestClusterCachePlanOnlyMutations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(d *driver)
	}{
		{"ForceHoard", func(d *driver) { d.c.ForceHoard("/home/u/missed") }},
		{"ClearForced", func(d *driver) { d.c.ClearForced() }},
		{"ListPreservingFeed", func(d *driver) { d.ev(trace.OpOpen, 9, "/home/u/alpha/f00") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newDriver(nil)
			d.session(1, projectFiles("alpha", 5))
			before := d.c.Clusters()
			_, missBefore := d.c.CacheStats()
			tc.mutate(d)
			after := d.c.Clusters()
			_, missAfter := d.c.CacheStats()
			if missAfter != missBefore {
				t.Errorf("%s re-clustered (%d -> %d misses); plan-only mutations should reuse the cache",
					tc.name, missBefore, missAfter)
			}
			if after != before {
				t.Errorf("%s replaced the cached result object", tc.name)
			}
		})
	}
}
