package core

import (
	"bytes"
	"testing"
)

// FuzzLoad throws arbitrary bytes at Load. The contract under test: Load
// may reject input with an error but must never panic or hang,
// regardless of what the bytes claim about section lengths or counts.
// The corpus is seeded with valid v1 and v2 snapshots so mutation
// explores the deep section decoders, not just the magic check.
func FuzzLoad(f *testing.F) {
	c, opts := tinyCorrelator()
	var v2 bytes.Buffer
	if err := c.Save(&v2); err != nil {
		f.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := c.saveV1(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add([]byte("SEERDB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := Load(bytes.NewReader(data), opts)
		if err == nil && restored == nil {
			t.Error("nil correlator without error")
		}
	})
}
