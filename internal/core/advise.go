package core

import (
	"sort"

	"github.com/fmg/seer/internal/simfs"
)

// Directory reorganization — the third application the paper proposes
// in §7. Semantic clusters reveal where files *behave* like they live;
// when a cluster's members are concentrated in one directory except for
// a few strays, those strays are candidates for relocation (or at least
// evidence that the namespace disagrees with actual use).

// Advice is one reorganization suggestion.
type Advice struct {
	// Path is the file that lives away from its semantic home.
	Path string
	// TargetDir is the directory where most of its cluster lives.
	TargetDir string
	// Mates is the number of cluster mates in TargetDir; ClusterSize is
	// the cluster's total membership.
	Mates       int
	ClusterSize int
}

// AdviseReorg inspects the current clusters and returns relocation
// suggestions: files whose cluster is dominated (by at least the given
// fraction, e.g. 0.6) by a single other directory. Files that are
// always-hoarded (tools, libraries, critical files) are never
// suggested — a compiler is expected to live outside the projects that
// use it.
func (c *Correlator) AdviseReorg(minClusterSize int, dominance float64) []Advice {
	if minClusterSize < 2 {
		minClusterSize = 2
	}
	res := c.Clusters()
	var out []Advice
	for _, cl := range res.Clusters {
		if len(cl.Members) < minClusterSize {
			continue
		}
		// Count members per directory.
		byDir := make(map[string]int)
		paths := make(map[simfs.FileID]string, len(cl.Members))
		for _, m := range cl.Members {
			f := c.fs.Get(m)
			if f == nil || !f.Exists {
				continue
			}
			paths[m] = f.Path
			byDir[simfs.Dir(f.Path)]++
		}
		domDir, domCount := "", 0
		for dir, n := range byDir {
			if n > domCount || (n == domCount && dir < domDir) {
				domDir, domCount = dir, n
			}
		}
		if float64(domCount) < dominance*float64(len(paths)) {
			continue // no clear semantic home
		}
		for _, m := range cl.Members {
			path, ok := paths[m]
			if !ok || simfs.Dir(path) == domDir {
				continue
			}
			if c.obs.IsExcluded(m) || c.obs.IsFrequent(m) {
				continue
			}
			out = append(out, Advice{
				Path:        path,
				TargetDir:   domDir,
				Mates:       domCount,
				ClusterSize: len(paths),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return out[i].TargetDir < out[j].TargetDir
	})
	return out
}
