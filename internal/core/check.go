package core

import (
	"fmt"

	"github.com/fmg/seer/internal/simfs"
)

// CheckInvariants validates the correlator's internal consistency and
// returns a description of every violation found (empty when healthy).
// A long-running daemon can run this after restoring a database or
// periodically; the test suite runs it after replays.
//
// Checked invariants:
//   - every neighbor list is within the configured size n and never
//     contains the file itself;
//   - neighbor distances are finite and non-negative;
//   - every file with relationship state resolves in the file table;
//   - forgotten files have no lingering entry;
//   - the hoard plan contains no duplicates, no deleted files, no
//     directories, and its cumulative sizes are consistent;
//   - every live file with a meaningful reference appears in the plan.
func (c *Correlator) CheckInvariants() []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	n := c.p.NeighborTableSize
	for _, id := range c.tbl.Files() {
		if c.tbl.Forgotten(id) {
			addf("file %d is both tracked and forgotten", id)
		}
		if c.fs.Get(id) == nil {
			addf("tracked file %d missing from the file table", id)
		}
		nbs := c.tbl.NeighborEntries(id)
		if len(nbs) > n {
			addf("file %d has %d neighbors (limit %d)", id, len(nbs), n)
		}
		seen := make(map[simfs.FileID]bool, len(nbs))
		for _, nb := range nbs {
			if nb.ID == id {
				addf("file %d lists itself as a neighbor", id)
			}
			if seen[nb.ID] {
				addf("file %d lists neighbor %d twice", id, nb.ID)
			}
			seen[nb.ID] = true
			d := nb.Distance()
			if d < 0 || d != d {
				addf("file %d → %d has invalid distance %g", id, nb.ID, d)
			}
		}
	}

	plan := c.Plan()
	var cum int64
	planned := make(map[simfs.FileID]bool, plan.Len())
	for i, e := range plan.Entries {
		if planned[e.File.ID] {
			addf("plan entry %d duplicates file %s", i, e.File.Path)
		}
		planned[e.File.ID] = true
		if !e.File.Exists {
			addf("plan entry %d is a deleted file %s", i, e.File.Path)
		}
		if e.File.Kind == simfs.Directory {
			addf("plan entry %d is a directory %s", i, e.File.Path)
		}
		cum += e.File.Size
		if e.Cum != cum {
			addf("plan entry %d cumulative size %d, want %d", i, e.Cum, cum)
		}
	}
	for id := range c.obs.LastRefs() {
		f := c.fs.Get(id)
		if f == nil || !f.Exists || f.Kind == simfs.Directory {
			continue
		}
		if !planned[id] {
			addf("referenced live file %s missing from the plan", f.Path)
		}
	}
	return problems
}
