package sim

import (
	"sort"
	"time"

	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/workload"
)

// PeriodResult is the outcome of one simulated disconnection period
// (paper §5.1.2): the working set and each manager's miss-free hoard
// size.
type PeriodResult struct {
	Start time.Time
	// WorkingSetBytes is the total size of distinct files meaningfully
	// referenced during the period that existed at its start — the need
	// of an optimal hoard manager.
	WorkingSetBytes int64
	// Refs is the number of distinct files in the working set.
	Refs int
	// MissFree maps manager name to the hoard size that would have
	// avoided every miss this period.
	MissFree map[string]int64
	// Unhoardable maps manager name to the count of referenced files
	// absent from its plan at hoard time.
	Unhoardable map[string]int
}

// MissFreeResult aggregates one replay's periods.
type MissFreeResult struct {
	Machine string
	Period  time.Duration
	Periods []PeriodResult
}

// Means returns the mean working set and mean miss-free size per
// manager, in bytes.
func (r *MissFreeResult) Means() (ws float64, byManager map[string]float64) {
	byManager = make(map[string]float64)
	if len(r.Periods) == 0 {
		return 0, byManager
	}
	counts := make(map[string]int)
	for _, p := range r.Periods {
		ws += float64(p.WorkingSetBytes)
		for name, v := range p.MissFree {
			byManager[name] += float64(v)
			counts[name]++
		}
	}
	ws /= float64(len(r.Periods))
	for name := range byManager {
		byManager[name] /= float64(counts[name])
	}
	return ws, byManager
}

// MissFree replays the machine's trace in fixed periods of the given
// length, recomputing every manager's hoard plan at each boundary (the
// "infinitesimal reconnection" of §5.1.2) and measuring the miss-free
// hoard size against the next period's references. Periods inside the
// warmup window, and periods with no meaningful references (machine
// unused — excluded by the paper), are dropped.
func MissFree(opts Options, period, warmup time.Duration) *MissFreeResult {
	m := NewMachine(opts)
	res := &MissFreeResult{Machine: opts.Profile.Name, Period: period}
	boundary := m.Tr.Start.Add(period)
	plans := m.plans()
	referenced := make(map[simfs.FileID]bool)
	boundarySeq := uint64(0)

	flush := func(start time.Time) {
		defer func() {
			plans = m.plans()
			referenced = make(map[simfs.FileID]bool)
		}()
		if len(referenced) == 0 || start.Before(m.Tr.Start.Add(warmup)) {
			return
		}
		ids := make([]simfs.FileID, 0, len(referenced))
		var ws int64
		for id := range referenced {
			ids = append(ids, id)
			if f := m.FS.Get(id); f != nil {
				ws += f.Size
			}
		}
		pr := PeriodResult{
			Start:           start,
			WorkingSetBytes: ws,
			Refs:            len(ids),
			MissFree:        make(map[string]int64),
			Unhoardable:     make(map[string]int),
		}
		for name, plan := range plans {
			size, un := plan.MissFreeSize(ids)
			pr.MissFree[name] = size
			pr.Unhoardable[name] = un
		}
		res.Periods = append(res.Periods, pr)
	}

	for _, ev := range m.Tr.Events {
		for !ev.Time.Before(boundary) {
			flush(boundary.Add(-period))
			boundary = boundary.Add(period)
			boundarySeq = ev.Seq
		}
		f := m.feed(ev)
		if m.meaningfulRef(ev, f) && f.CreatedSeq < maxU64(boundarySeq, 1) {
			referenced[f.ID] = true
		}
	}
	flush(boundary.Add(-period))
	return res
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Fig2Cell is one aggregated measurement for Figure 2: means across
// size seeds with 99% confidence half-widths, in megabytes.
type Fig2Cell struct {
	WorkingSetMB   float64
	WorkingSetCI   float64
	SeerMB         float64
	SeerCI         float64
	LruMB          float64
	LruCI          float64
	PeriodsPerSeed float64
}

// SeerOverheadMB returns the extra space SEER needs beyond the working
// set (the middle stack element of Figure 2).
func (c Fig2Cell) SeerOverheadMB() float64 { return c.SeerMB - c.WorkingSetMB }

// LruOverheadMB returns the extra space LRU needs beyond SEER (the top
// stack element of Figure 2).
func (c Fig2Cell) LruOverheadMB() float64 { return c.LruMB - c.SeerMB }

const mb = 1024 * 1024

// Fig2Aggregate repeats the miss-free simulation across the given size
// seeds (the paper's repetition methodology) and aggregates means and
// 99% confidence intervals.
func Fig2Aggregate(base Options, period, warmup time.Duration, sizeSeeds []int64) Fig2Cell {
	// Generate the trace once; size seeds only change file sizes.
	if base.Trace == nil {
		gen := workload.NewGenerator(base.Profile, base.WorkloadSeed)
		base.Generator = gen
		base.Trace = gen.Generate()
	}
	var wsMeans, seerMeans, lruMeans, periods []float64
	for _, seed := range sizeSeeds {
		opts := base
		opts.SizeSeed = seed
		r := MissFree(opts, period, warmup)
		ws, by := r.Means()
		wsMeans = append(wsMeans, ws/mb)
		seerMeans = append(seerMeans, by[SeerName]/mb)
		lruMeans = append(lruMeans, by["lru"]/mb)
		periods = append(periods, float64(len(r.Periods)))
	}
	return Fig2Cell{
		WorkingSetMB:   stats.Mean(wsMeans),
		WorkingSetCI:   stats.CI99(wsMeans),
		SeerMB:         stats.Mean(seerMeans),
		SeerCI:         stats.CI99(seerMeans),
		LruMB:          stats.Mean(lruMeans),
		LruCI:          stats.CI99(lruMeans),
		PeriodsPerSeed: stats.Mean(periods),
	}
}

// Fig3Series returns the per-period working set, SEER and LRU miss-free
// sizes for one machine, sorted by working-set size (the paper's Figure
// 3 sorts its X axis this way).
func Fig3Series(opts Options, period, warmup time.Duration) []PeriodResult {
	r := MissFree(opts, period, warmup)
	out := make([]PeriodResult, len(r.Periods))
	copy(out, r.Periods)
	sort.Slice(out, func(i, j int) bool {
		return out[i].WorkingSetBytes < out[j].WorkingSetBytes
	})
	return out
}
