package sim

import (
	"sort"
	"strings"

	"github.com/fmg/seer/internal/simfs"
)

// Cluster quality measurement. The paper's only complaint about SEER
// was analytical: "the clusters produced by SEER often have contents
// that are surprising to us, either by including apparently unrelated
// files or by separating a single project into a few clusters" (§5.2).
// With synthetic workloads we have the ground truth the authors lacked,
// so the surprise can be quantified: for each true project, find the
// inferred cluster that matches it best and report precision and recall.

// QualityReport summarizes cluster-vs-project agreement for one machine.
type QualityReport struct {
	Machine string
	// Projects is the number of ground-truth projects evaluated (those
	// with at least one referenced file).
	Projects int
	// MeanPrecision is the mean, over projects, of |best ∩ truth| /
	// |best| — how much of the matched cluster truly belongs.
	MeanPrecision float64
	// MeanRecall is the mean of |best ∩ truth| / |truth∩referenced| —
	// how much of the (referenced) project the matched cluster covers.
	MeanRecall float64
	// MeanJaccard is the mean best-match Jaccard index.
	MeanJaccard float64
	// Fragmentation is the mean number of clusters a project's
	// referenced files are spread across ("separating a single project
	// into a few clusters").
	Fragmentation float64
	// Clusters is the number of inferred multi-member clusters.
	Clusters int
}

// ClusterQuality replays the machine and scores the final clustering
// against the generator's ground-truth projects. Only files actually
// referenced during the trace count: SEER cannot know about files never
// touched.
func ClusterQuality(opts Options) QualityReport {
	m := NewMachine(opts)
	for _, ev := range m.Tr.Events {
		m.feed(ev)
	}
	res := m.Corr.Clusters()

	// Membership of every file id in multi-member clusters.
	clustersOf := make(map[simfs.FileID][]int)
	multi := 0
	for _, cl := range res.Clusters {
		if len(cl.Members) < 2 {
			continue
		}
		multi++
		for _, id := range cl.Members {
			clustersOf[id] = append(clustersOf[id], cl.ID)
		}
	}
	clusterMembers := make(map[int]map[simfs.FileID]bool)
	for _, cl := range res.Clusters {
		set := make(map[simfs.FileID]bool, len(cl.Members))
		for _, id := range cl.Members {
			set[id] = true
		}
		clusterMembers[cl.ID] = set
	}

	rep := QualityReport{Machine: opts.Profile.Name, Clusters: multi}
	var precSum, recSum, jacSum, fragSum float64
	lastRef := m.Corr.Observer().LastRefs()
	for _, files := range m.Gen.Projects() {
		// Referenced, non-excluded ground truth for this project.
		truth := make(map[simfs.FileID]bool)
		for _, path := range files {
			f := m.FS.Lookup(path)
			if f == nil || !f.Exists {
				continue
			}
			if lastRef[f.ID] == 0 || m.Corr.Observer().IsExcluded(f.ID) {
				continue
			}
			truth[f.ID] = true
		}
		if len(truth) < 3 {
			continue
		}
		// Best-matching cluster by intersection; fragmentation counts
		// the distinct clusters holding truth members.
		counts := make(map[int]int)
		for id := range truth {
			for _, ci := range clustersOf[id] {
				counts[ci]++
			}
		}
		frag := len(counts)
		bestCI, bestInter := -1, 0
		cis := make([]int, 0, len(counts))
		for ci := range counts {
			cis = append(cis, ci)
		}
		sort.Ints(cis)
		for _, ci := range cis {
			if counts[ci] > bestInter {
				bestCI, bestInter = ci, counts[ci]
			}
		}
		rep.Projects++
		if bestCI < 0 {
			fragSum += float64(frag)
			continue // project entirely unclustered: zero scores
		}
		best := clusterMembers[bestCI]
		// Precision counts only project-attributable members: files
		// under the user's project tree (tool binaries and mail that
		// legitimately join clusters are not penalized).
		attributable := 0
		for id := range best {
			if f := m.FS.Get(id); f != nil && strings.Contains(f.Path, "/proj") {
				attributable++
			}
		}
		if attributable > 0 {
			precSum += float64(bestInter) / float64(attributable)
		}
		recSum += float64(bestInter) / float64(len(truth))
		union := len(truth) + len(best) - bestInter
		jacSum += float64(bestInter) / float64(union)
		fragSum += float64(frag)
	}
	if rep.Projects > 0 {
		n := float64(rep.Projects)
		rep.MeanPrecision = precSum / n
		rep.MeanRecall = recSum / n
		rep.MeanJaccard = jacSum / n
		rep.Fragmentation = fragSum / n
	}
	return rep
}
