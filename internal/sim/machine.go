// Package sim is the trace-driven evaluation harness that regenerates
// the paper's tables and figures.
//
// It replays a generated workload trace simultaneously through the SEER
// correlator and the baseline managers over one shared simulated file
// system (so every manager sees identical file sizes, as in the paper's
// methodology, §5.1.2), and implements both evaluation modes:
//
//   - miss-free hoard size simulation over fixed 24-hour and 7-day
//     disconnection periods (Figures 2 and 3);
//   - live replay of the profile's own disconnection schedule at a fixed
//     hoard budget, with miss severities and time-to-first-miss
//     accounting (Tables 3, 4 and 5).
package sim

import (
	"strings"
	"time"

	"github.com/fmg/seer/internal/baseline"
	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/core"
	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/trace"
	"github.com/fmg/seer/internal/workload"
)

// SeerName is the manager name under which the correlator's results are
// reported.
const SeerName = "seer"

// DefaultParams returns the SEER parameter set calibrated for the
// synthetic workloads (the paper devoted "significant effort to
// searching the parameter space", §4.9; these are the values that search
// produced for this repository's generator). The synthetic traces are
// roughly an order of magnitude more compact than real system-call
// streams — one editor session is dozens of opens, not thousands — so
// the window M, the aging horizon, and the frequent-file threshold all
// scale down accordingly, and the clustering thresholds tighten to keep
// session-boundary adjacency from bridging projects.
func DefaultParams() config.Params {
	p := config.Defaults()
	p.Window = 20
	p.KNear = 6
	p.KFar = 3
	p.AgeLimit = 3000
	p.FrequentFileFraction = 0.005
	p.FrequentFileMinRefs = 2000
	p.DirDistanceWeight = 1.0
	return p
}

// Options configures one machine replay.
type Options struct {
	// Profile is the machine profile to simulate.
	Profile workload.Profile
	// WorkloadSeed drives trace generation.
	WorkloadSeed int64
	// SizeSeed drives the file-size assignment (the paper repeated each
	// simulation with several size seeds, §5.1.2).
	SizeSeed int64
	// Params overrides the SEER parameter set.
	Params *config.Params
	// Investigators enables the external-investigator relations drawn
	// from the workload's ground truth (the starred bars of Figure 2).
	Investigators bool
	// InvestigatorStrength is the relation strength (default 3).
	InvestigatorStrength float64
	// Baselines selects comparison managers by name; nil means
	// {"lru"}.
	Baselines []string
	// Trace reuses a pre-generated trace (sharing one generation across
	// size seeds); nil generates from Profile and WorkloadSeed.
	Trace *workload.Trace
	// Generator must accompany Trace when it is set.
	Generator *workload.Generator
}

// Machine is one replay in progress.
type Machine struct {
	Gen  *workload.Generator
	Tr   *workload.Trace
	FS   *simfs.FS
	Corr *core.Correlator

	baselines []baseline.Manager
	progOf    map[trace.PID]string
	rng       *stats.Rand
}

// NewMachine builds the shared world for one replay: generates (or
// adopts) the trace, pre-creates every ground-truth file with a
// role-scaled geometric size, and wires the correlator and baselines.
func NewMachine(opts Options) *Machine {
	gen, tr := opts.Generator, opts.Trace
	if tr == nil {
		gen = workload.NewGenerator(opts.Profile, opts.WorkloadSeed)
		tr = gen.Generate()
	}
	sizeRng := stats.NewRand(opts.SizeSeed)
	fs := simfs.New(stats.NewRand(opts.SizeSeed + 7919))
	for _, path := range gen.GroundFiles() {
		mult := gen.FileRole(path).SizeMultiplier()
		size := int64(float64(sizeRng.FileSize()) * mult)
		if size < 1 {
			size = 1
		}
		fs.Create(path, simfs.Regular, size, 0)
	}
	params := opts.Params
	if params == nil {
		p := DefaultParams()
		params = &p
	}
	corr := core.New(core.Options{
		Params:  params,
		FS:      fs,
		Seed:    opts.SizeSeed,
		DirSize: gen.DirSize,
	})
	if opts.Investigators {
		strength := opts.InvestigatorStrength
		if strength == 0 {
			strength = 3
		}
		corr.AddRelations(gen.InvestigatorRelations(strength))
	}
	names := opts.Baselines
	if names == nil {
		names = []string{"lru"}
	}
	var bls []baseline.Manager
	for _, n := range names {
		if n == "coda-managed" {
			bls = append(bls, newManagedCoda(gen))
			continue
		}
		if b := newBaseline(n); b != nil {
			bls = append(bls, b)
		}
	}
	return &Machine{
		Gen:       gen,
		Tr:        tr,
		FS:        fs,
		Corr:      corr,
		baselines: bls,
		progOf:    make(map[trace.PID]string),
		rng:       stats.NewRand(opts.SizeSeed + 104729),
	}
}

// newManagedCoda models a diligent CODA user (paper §6.2): hoard
// profiles exist for every project, with priorities matching long-run
// project popularity (the generator's Zipf ranks — project 0 is the
// hottest). This is the hand management the paper's unmanaged runs
// lacked; it recovers much of LRU's loss but still cannot follow
// attention shifts the way clustering does.
func newManagedCoda(gen *workload.Generator) baseline.Manager {
	profile := baseline.Profile{}
	projects := gen.Projects()
	for i, files := range projects {
		if len(files) == 0 {
			continue
		}
		// All files of one project share a directory.
		dir := files[0][:strings.LastIndex(files[0], "/")]
		profile[dir] = int64(len(projects) - i)
	}
	return baseline.Rename(baseline.NewCodaBounded(profile, 5000), "coda-managed")
}

func newBaseline(name string) baseline.Manager {
	switch name {
	case "lru":
		return baseline.NewLRU()
	case "coda-static":
		return baseline.NewCodaStatic(nil)
	case "coda-bounded":
		return baseline.NewCodaBounded(nil, 10000)
	case "coda-bucket":
		return baseline.NewCodaBucket(nil, 24*time.Hour)
	}
	return nil
}

// Baselines returns the configured baseline managers.
func (m *Machine) Baselines() []baseline.Manager { return m.baselines }

// feed runs one event through the correlator and all baselines.
func (m *Machine) feed(ev trace.Event) *simfs.File {
	switch ev.Op {
	case trace.OpExec:
		m.progOf[ev.PID] = ev.Prog
	case trace.OpFork:
		m.progOf[ev.PID] = m.progOf[ev.PPID]
	case trace.OpExit:
		defer delete(m.progOf, ev.PID)
	}
	m.Corr.Feed(ev)
	path := ev.Path
	if ev.Op == trace.OpRename {
		path = ev.Path2
	}
	var f *simfs.File
	if path != "" {
		f = m.FS.Lookup(path)
	}
	for _, b := range m.baselines {
		b.Observe(ev, f)
	}
	return f
}

// scannerProgs are programs whose references do not represent user
// needs: their accesses neither define the working set nor count as
// user-visible misses (a disconnected find simply sees fewer files).
var scannerProgs = map[string]bool{"find": true, "xargs": true, "ls": true}

// meaningfulRef reports whether the event is a successful user-level
// reference to a regular file, and returns the file.
func (m *Machine) meaningfulRef(ev trace.Event, f *simfs.File) bool {
	if f == nil || ev.Failed || f.Kind != simfs.Regular {
		return false
	}
	switch ev.Op {
	case trace.OpOpen, trace.OpCreate, trace.OpExec, trace.OpStat, trace.OpRename:
	default:
		return false
	}
	if scannerProgs[m.progOf[ev.PID]] {
		return false
	}
	if strings.HasPrefix(f.Path, "/tmp/") || strings.HasPrefix(f.Path, "/var/tmp/") {
		return false
	}
	return true
}

// plans snapshots the inclusion order of every manager, keyed by name.
func (m *Machine) plans() map[string]*hoard.Plan {
	out := make(map[string]*hoard.Plan, 1+len(m.baselines))
	out[SeerName] = m.Corr.Plan()
	for _, b := range m.baselines {
		out[b.Name()] = b.Plan()
	}
	return out
}
