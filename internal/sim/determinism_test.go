package sim

import (
	"fmt"
	"testing"
	"time"

	"github.com/fmg/seer/internal/hoard"
)

// Interleaving Plan() calls with replay must not perturb results, and
// two identical runs must agree exactly — this regression test guards
// the determinism bug where overlap clusters sharing a first member let
// map-iteration order leak into cluster IDs.
func TestPlanDeterminismUnderInterleavedPlans(t *testing.T) {
	run := func() (int, string) {
		m := NewMachine(lightOpts(t, "D", 30))
		r := hoard.NewRefiller(30*mb, true, 0)
		boundary := m.Tr.Start.Add(day)
		transfers := 0
		var last string
		for _, ev := range m.Tr.Events {
			for !ev.Time.Before(boundary) {
				plan := m.Corr.Plan()
				last = ""
				for _, e := range plan.Entries {
					last += fmt.Sprintf("%d,", e.File.ID)
				}
				fetch, evict := r.Refill(plan)
				transfers += len(fetch) + len(evict)
				boundary = boundary.Add(day)
			}
			m.feed(ev)
		}
		return transfers, last
	}
	t1, p1 := run()
	t2, p2 := run()
	if t1 != t2 {
		t.Fatalf("transfer counts differ across identical runs: %d vs %d", t1, t2)
	}
	if p1 != p2 {
		t.Fatal("final plans differ across identical runs")
	}
	_ = time.Second
}
