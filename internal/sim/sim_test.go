package sim

import (
	"testing"
	"time"

	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/workload"
)

const day = 24 * time.Hour

func lightOpts(t *testing.T, name string, days int) Options {
	t.Helper()
	p, ok := workload.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	return Options{Profile: p.Light(days), WorkloadSeed: 1, SizeSeed: 2}
}

// The headline result (paper §5.2.1, Figure 2): SEER's miss-free hoard
// size stays far below LRU's, and SEER's overhead beyond the working set
// is a fraction of LRU's overhead.
func TestSeerBeatsLRU(t *testing.T) {
	opts := lightOpts(t, "D", 45)
	for _, period := range []time.Duration{day, 7 * day} {
		r := MissFree(opts, period, 7*day)
		if len(r.Periods) < 3 {
			t.Fatalf("period %v: only %d periods", period, len(r.Periods))
		}
		ws, by := r.Means()
		seer, lru := by[SeerName], by["lru"]
		if seer <= ws*0.9 {
			t.Errorf("period %v: SEER %g below working set %g — impossible", period, seer, ws)
		}
		if lru < seer*1.5 {
			t.Errorf("period %v: LRU %.1fMB not ≫ SEER %.1fMB", period, lru/mb, seer/mb)
		}
		seerExtra := seer - ws
		lruExtra := lru - ws
		if lruExtra < 2*seerExtra {
			t.Errorf("period %v: LRU extra %.1fMB not ≫ SEER extra %.1fMB",
				period, lruExtra/mb, seerExtra/mb)
		}
	}
}

// Per-period invariant: every manager's miss-free size is at least the
// working set (you cannot avoid misses with less than the referenced
// bytes) minus unhoardable bytes.
func TestMissFreeInvariants(t *testing.T) {
	opts := lightOpts(t, "A", 30)
	r := MissFree(opts, day, 5*day)
	if len(r.Periods) == 0 {
		t.Fatal("no periods")
	}
	for i, p := range r.Periods {
		if p.Refs <= 0 || p.WorkingSetBytes <= 0 {
			t.Errorf("period %d: empty working set reported", i)
		}
		for name, size := range p.MissFree {
			if size < 0 {
				t.Errorf("period %d: %s negative miss-free size", i, name)
			}
			if p.Unhoardable[name] == 0 && size > 0 && size < p.WorkingSetBytes {
				t.Errorf("period %d: %s miss-free %d < working set %d with nothing unhoardable",
					i, name, size, p.WorkingSetBytes)
			}
		}
	}
}

func TestMissFreeDeterminism(t *testing.T) {
	opts := lightOpts(t, "E", 30)
	r1 := MissFree(opts, day, 5*day)
	r2 := MissFree(opts, day, 5*day)
	if len(r1.Periods) != len(r2.Periods) {
		t.Fatalf("period counts differ: %d vs %d", len(r1.Periods), len(r2.Periods))
	}
	for i := range r1.Periods {
		if r1.Periods[i].WorkingSetBytes != r2.Periods[i].WorkingSetBytes {
			t.Fatalf("period %d WS differs", i)
		}
		for name := range r1.Periods[i].MissFree {
			if r1.Periods[i].MissFree[name] != r2.Periods[i].MissFree[name] {
				t.Fatalf("period %d %s differs", i, name)
			}
		}
	}
}

func TestFig2Aggregate(t *testing.T) {
	opts := lightOpts(t, "C", 30)
	cell := Fig2Aggregate(opts, day, 5*day, []int64{1, 2, 3})
	if cell.WorkingSetMB <= 0 || cell.SeerMB <= 0 || cell.LruMB <= 0 {
		t.Fatalf("degenerate cell %+v", cell)
	}
	if cell.SeerMB < cell.WorkingSetMB {
		t.Errorf("SEER %.1f below WS %.1f", cell.SeerMB, cell.WorkingSetMB)
	}
	if cell.LruMB < cell.SeerMB {
		t.Errorf("LRU %.1f below SEER %.1f", cell.LruMB, cell.SeerMB)
	}
	if cell.SeerOverheadMB() < 0 || cell.LruOverheadMB() < 0 {
		t.Error("negative overheads")
	}
	if cell.WorkingSetCI < 0 || cell.SeerCI < 0 || cell.LruCI < 0 {
		t.Error("negative confidence intervals")
	}
	if cell.PeriodsPerSeed <= 0 {
		t.Error("no periods per seed")
	}
}

func TestFig3SeriesSorted(t *testing.T) {
	opts := lightOpts(t, "D", 45)
	series := Fig3Series(opts, 7*day, 7*day)
	if len(series) < 3 {
		t.Fatalf("series = %d points", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].WorkingSetBytes < series[i-1].WorkingSetBytes {
			t.Fatal("series not sorted by working set")
		}
	}
}

func TestLiveReplay(t *testing.T) {
	opts := lightOpts(t, "F", 60)
	r := Live(opts, 50*mb)
	if len(r.Disconnections) < 10 {
		t.Fatalf("disconnections = %d, want a realistic count", len(r.Disconnections))
	}
	t3 := r.Table3(60)
	if t3.Disconnections != len(r.Disconnections) {
		t.Errorf("Table3 count = %d, want %d", t3.Disconnections, len(r.Disconnections))
	}
	if t3.MeanHours <= 0 || t3.MaxHours < t3.MeanHours || t3.MedianHours > t3.MeanHours*2 {
		t.Errorf("Table3 stats implausible: %+v", t3)
	}
	t4 := r.Table4()
	if t4.HoardSizeMB != 50 {
		t.Errorf("hoard size = %d", t4.HoardSizeMB)
	}
	// No severity-0 failures, ever (dot files and /etc are always
	// hoarded) — the paper reports the same.
	if t4.BySeverity[0] != 0 {
		t.Errorf("severity-0 failures = %d, want 0", t4.BySeverity[0])
	}
	// AnySeverity is at most the sum of the individual severities and at
	// least the max of them.
	sum, maxSev := 0, 0
	for _, n := range t4.BySeverity {
		sum += n
		if n > maxSev {
			maxSev = n
		}
	}
	if t4.AnySeverity > sum || t4.AnySeverity < maxSev {
		t.Errorf("AnySeverity %d outside [%d, %d]", t4.AnySeverity, maxSev, sum)
	}
	if t4.AnySeverity > len(r.Disconnections) {
		t.Error("more failed disconnections than disconnections")
	}
	for _, row := range r.Table5() {
		if row.Stats.N == 0 {
			t.Errorf("empty Table5 row for severity %v", row.Severity)
		}
		if row.Stats.Min < 0 || row.Stats.Max < row.Stats.Min {
			t.Errorf("Table5 stats implausible: %+v", row)
		}
	}
	// Live miss-free statistics: every used disconnection references
	// something, so its miss-free hoard size is positive, and at least
	// one period under a 50 MB budget must need more than the budget
	// (otherwise Table4 could not report any failures).
	anyOverBudget := false
	for _, d := range r.Disconnections {
		if d.MissFreeBytes < 0 || d.Unhoardable < 0 {
			t.Fatalf("negative miss-free stats: %+v", d)
		}
		if d.Used && d.MissFreeBytes == 0 {
			t.Errorf("used disconnection with zero miss-free size")
		}
		if d.MissFreeBytes > 50*mb {
			anyOverBudget = true
		}
	}
	if t4.AnySeverity > 0 && !anyOverBudget {
		t.Error("user misses reported but no disconnection needed more than the budget")
	}
}

// With a generous budget (everything fits) there are no user misses at
// all — hoarding the whole tree is trivially miss-free.
func TestLiveNoMissesWithHugeBudget(t *testing.T) {
	opts := lightOpts(t, "E", 30)
	r := Live(opts, 100000*mb)
	t4 := r.Table4()
	if t4.AnySeverity != 0 {
		t.Errorf("user failures with unlimited budget: %+v", t4)
	}
}

// Budget pressure creates more misses: the same machine at a tiny
// budget must fail at least as often as at 50 MB.
func TestLiveBudgetMonotonicity(t *testing.T) {
	opts := lightOpts(t, "F", 45)
	big := Live(opts, 200*mb).Table4()
	small := Live(opts, 5*mb).Table4()
	if small.AnySeverity < big.AnySeverity {
		t.Errorf("smaller budget had fewer failures: %d < %d",
			small.AnySeverity, big.AnySeverity)
	}
}

func TestMergeSpans(t *testing.T) {
	t0 := time.Unix(0, 0)
	span := func(startMin, endMin int) workload.Span {
		return workload.Span{
			Start: t0.Add(time.Duration(startMin) * time.Minute),
			End:   t0.Add(time.Duration(endMin) * time.Minute),
		}
	}
	spans := []workload.Span{
		span(0, 60),    // kept
		span(70, 130),  // 10-min gap: merged into previous
		span(300, 310), // 10 min long: dropped
		span(400, 460), // kept
	}
	got := MergeSpans(spans, 15*time.Minute, 15*time.Minute)
	if len(got) != 2 {
		t.Fatalf("merged = %d spans: %v", len(got), got)
	}
	if got[0].Duration() != 130*time.Minute {
		t.Errorf("merged span duration = %v, want 130m", got[0].Duration())
	}
	if MergeSpans(nil, time.Minute, time.Minute) != nil {
		t.Error("nil spans should merge to nil")
	}
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestNewBaselineNames(t *testing.T) {
	for _, n := range []string{"lru", "coda-static", "coda-bounded", "coda-bucket"} {
		if b := newBaseline(n); b == nil || b.Name() != n {
			t.Errorf("newBaseline(%q) failed", n)
		}
	}
	if newBaseline("nope") != nil {
		t.Error("unknown baseline accepted")
	}
}

// The CODA-style schemes, unmanaged, perform no better than LRU (the
// paper observed worse and chose not to report them).
func TestCodaSchemesNoBetterThanLRU(t *testing.T) {
	opts := lightOpts(t, "D", 40)
	opts.Baselines = []string{"lru", "coda-static", "coda-bucket"}
	r := MissFree(opts, day, 5*day)
	_, by := r.Means()
	if by["coda-static"] < by["lru"]*0.8 {
		t.Errorf("unmanaged coda-static %.1fMB unexpectedly beats LRU %.1fMB",
			by["coda-static"]/mb, by["lru"]/mb)
	}
}

// Scanner pollution: disabling the meaningless-process filter must not
// make SEER better (ablation for §4.1).
func TestMeaninglessFilterAblation(t *testing.T) {
	opts := lightOpts(t, "D", 40)
	withFilter := MissFree(opts, day, 5*day)
	p := DefaultParams()
	p.MeaninglessRatio = 0.999999 // effectively off
	p.MeaninglessMinLearned = 1 << 30
	opts.Params = &p
	withoutFilter := MissFree(opts, day, 5*day)
	_, byOn := withFilter.Means()
	_, byOff := withoutFilter.Means()
	if byOff[SeerName] < byOn[SeerName]*0.7 {
		t.Errorf("disabling the meaningless filter improved SEER: %.1fMB < %.1fMB",
			byOff[SeerName]/mb, byOn[SeerName]/mb)
	}
}

func TestLiveReconciliation(t *testing.T) {
	opts := lightOpts(t, "D", 30)
	r := Live(opts, 50*mb)
	// Compile sessions during disconnections create objects locally;
	// reconnection must propagate them.
	if r.Reconciles.Propagated == 0 {
		t.Error("no updates propagated at reconnection")
	}
}

func TestSeverityMapping(t *testing.T) {
	opts := lightOpts(t, "F", 60)
	r := Live(opts, 30*mb) // tight budget to force misses
	var sawUser bool
	for _, d := range r.Disconnections {
		for _, miss := range d.Misses.Misses {
			if miss.Severity != hoard.SeverityAuto {
				sawUser = true
			}
			if miss.SinceDisconnect < 0 {
				t.Error("negative time to miss")
			}
		}
	}
	if !sawUser {
		t.Error("tight budget produced no user-severity misses")
	}
}

// A hand-managed CODA configuration (profiles for every project, §6.2)
// recovers much of unmanaged LRU's loss.
func TestManagedCodaBeatsLRU(t *testing.T) {
	opts := lightOpts(t, "D", 40)
	opts.Baselines = []string{"lru", "coda-managed"}
	r := MissFree(opts, day, 5*day)
	_, by := r.Means()
	if by["coda-managed"] == 0 {
		t.Fatal("managed coda produced no results")
	}
	if by["coda-managed"] > by["lru"] {
		t.Errorf("managed CODA %.1fMB worse than LRU %.1fMB",
			by["coda-managed"]/mb, by["lru"]/mb)
	}
	// But it still needs more than SEER's clustering.
	t.Logf("seer %.1fMB, coda-managed %.1fMB, lru %.1fMB",
		by[SeerName]/mb, by["coda-managed"]/mb, by["lru"]/mb)
}

// Cluster quality against ground truth: SEER should recover most of
// each project (high recall of the best-matching cluster), with the
// known caveat that projects fragment into a few clusters (§5.2).
func TestClusterQuality(t *testing.T) {
	opts := lightOpts(t, "D", 40)
	q := ClusterQuality(opts)
	if q.Projects < 5 {
		t.Fatalf("only %d projects evaluated", q.Projects)
	}
	t.Logf("quality: %d projects, precision %.2f recall %.2f jaccard %.2f frag %.1f (%d clusters)",
		q.Projects, q.MeanPrecision, q.MeanRecall, q.MeanJaccard, q.Fragmentation, q.Clusters)
	if q.MeanRecall < 0.5 {
		t.Errorf("mean recall %.2f < 0.5 — projects not being recovered", q.MeanRecall)
	}
	if q.MeanPrecision < 0.5 {
		t.Errorf("mean precision %.2f < 0.5 — clusters heavily polluted", q.MeanPrecision)
	}
	if q.Fragmentation < 1 || q.Fragmentation > 10 {
		t.Errorf("fragmentation %.1f implausible", q.Fragmentation)
	}
}

// Periodic hoard refilling (paper §2) with dwell damping: protecting
// recently fetched files reduces transport churn without changing the
// steady-state hoard much.
func TestRefillDamping(t *testing.T) {
	churn := func(dwell int) (transfers int) {
		m := NewMachine(lightOpts(t, "D", 40))
		r := hoard.NewRefiller(30*mb, true, dwell)
		boundary := m.Tr.Start.Add(day)
		for _, ev := range m.Tr.Events {
			for !ev.Time.Before(boundary) {
				fetch, evict := r.Refill(m.Corr.Plan())
				transfers += len(fetch) + len(evict)
				boundary = boundary.Add(day)
			}
			m.feed(ev)
		}
		return transfers
	}
	undamped := churn(0)
	damped := churn(3)
	t.Logf("daily refill transfers over 40 days: undamped %d, damped %d", undamped, damped)
	if undamped == 0 {
		t.Fatal("no refill activity")
	}
	if damped > undamped {
		t.Errorf("damping increased churn: %d > %d", damped, undamped)
	}
}
