package sim

import (
	"time"

	"github.com/fmg/seer/internal/hoard"
	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/trace"
	"github.com/fmg/seer/internal/workload"
)

// Disconnection is the outcome of one live disconnection period.
type Disconnection struct {
	Span workload.Span
	// Active is the non-suspended duration (paper §5.1.1 excludes
	// suspended time from all statistics).
	Active time.Duration
	// Used reports whether any meaningful reference happened; unused
	// disconnections (vacations) are excluded from statistics.
	Used bool
	// Misses is the period's miss log.
	Misses *hoard.MissLog
	// MissFreeBytes is the smallest hoard, following the plan's
	// inclusion order at disconnection time, that would have served
	// every meaningful reference of the period without a miss (the
	// live counterpart of the paper's §5.2 miss-free hoard size);
	// Unhoardable counts referenced files absent from that plan, which
	// would have missed at any budget.
	MissFreeBytes int64
	Unhoardable   int
}

// LiveResult is a complete live replay of one machine.
type LiveResult struct {
	Machine string
	// HoardSizeMB is the configured budget.
	HoardSizeMB int64
	// Disconnections lists every ≥15-minute disconnection with use.
	Disconnections []Disconnection
	// Reconciles accumulates the replication substrate's reports.
	Reconciles replic.ReconcileReport
}

// Live replays the machine's own disconnection schedule at a fixed
// hoard budget (the paper's Tables 4 and 5 used 50 MB, 98 MB for G):
// at each disconnection the correlator fills the hoard, the CheapRumor
// substrate fetches it, and meaningful references to unhoarded files
// during the disconnection become misses with role-derived severities.
func Live(opts Options, budgetBytes int64) *LiveResult {
	m := NewMachine(opts)
	res := &LiveResult{
		Machine:     opts.Profile.Name,
		HoardSizeMB: budgetBytes / mb,
	}
	rum := replic.NewCheapRumor(m.FS)
	for _, f := range m.FS.Files() {
		rum.ServerCreate(f.ID)
	}

	var (
		connected   = true
		suspended   = false
		contents    *hoard.Contents
		plan        *hoard.Plan
		prevIDs     []simfs.FileID
		cur         *Disconnection
		discSeq     uint64
		activeAccum time.Duration
		activeSince time.Time
		missed      map[simfs.FileID]bool
		refd        map[simfs.FileID]bool
	)

	finish := func(t time.Time) {
		if cur == nil {
			return
		}
		if !suspended {
			activeAccum += t.Sub(activeSince)
		}
		cur.Active = activeAccum
		cur.Span.End = t
		if plan != nil {
			ids := make([]simfs.FileID, 0, len(refd))
			for id := range refd {
				ids = append(ids, id)
			}
			cur.MissFreeBytes, cur.Unhoardable = plan.MissFreeSize(ids)
		}
		if cur.Span.Duration() >= 15*time.Minute {
			res.Disconnections = append(res.Disconnections, *cur)
		}
		cur = nil
	}

	for _, ev := range m.Tr.Events {
		switch ev.Op {
		case trace.OpDisconnect:
			// The hoard is filled just before disconnection (§2); the
			// substrate must fetch while the network is still up.
			plan = m.Corr.Plan()
			contents = plan.Fill(budgetBytes, m.Corr.Params().SkipUnfittingClusters)
			var prev *hoard.Contents
			if prevIDs != nil {
				prev = hoard.ContentsOf(prevIDs)
			}
			fetch, evict := hoard.Diff(prev, contents)
			rum.Sync(fetch, evict)
			prevIDs = contents.IDs()
			connected = false
			rum.SetConnected(false)
			discSeq = ev.Seq
			activeAccum = 0
			activeSince = ev.Time
			missed = make(map[simfs.FileID]bool)
			refd = make(map[simfs.FileID]bool)
			cur = &Disconnection{
				Span:   workload.Span{Start: ev.Time},
				Misses: hoard.NewMissLog(),
			}
			continue
		case trace.OpReconnect:
			connected = true
			finish(ev.Time)
			rep := rum.SetConnected(true)
			res.Reconciles.Propagated += rep.Propagated
			res.Reconciles.Conflicts += rep.Conflicts
			res.Reconciles.Refreshed += rep.Refreshed
			res.Reconciles.Evicted += rep.Evicted
			continue
		case trace.OpSuspend:
			if !suspended {
				suspended = true
				if cur != nil {
					activeAccum += ev.Time.Sub(activeSince)
				}
			}
			continue
		case trace.OpResume:
			if suspended {
				suspended = false
				activeSince = ev.Time
			}
			continue
		}

		f := m.feed(ev)
		if f != nil && ev.Op == trace.OpCreate {
			// Writes (file creations) go to the local replica; while
			// disconnected they accumulate as dirty state that the
			// substrate propagates at reconnection.
			rum.WriteLocal(f.ID)
		}
		if connected || cur == nil || f == nil {
			continue
		}
		meaningful := m.meaningfulRef(ev, f)
		if !meaningful && !isAutoCandidate(m, ev, f) {
			continue
		}
		cur.Used = cur.Used || meaningful
		if meaningful && (f.CreatedSeq < discSeq || f.CreatedSeq == 0) {
			// Files created during the disconnection are excluded from
			// the miss-free size for the same reason they are not
			// misses: no hoard filled beforehand could contain them.
			refd[f.ID] = true
		}
		if contents.Has(f.ID) || missed[f.ID] {
			continue
		}
		if f.CreatedSeq >= discSeq && f.CreatedSeq != 0 {
			// Created during the disconnection: cannot have been
			// hoarded, not a miss (§5.1.2).
			continue
		}
		missed[f.ID] = true
		elapsed := activeAccum
		if !suspended {
			elapsed += ev.Time.Sub(activeSince)
		}
		// A file the correlator had never ranked could not have been
		// hoarded at any budget; the user sees it as simply absent.
		// The automatic detector may still notice it (§4.4: a
		// reference to a file known to exist but absent).
		hoardable := plan != nil && plan.Rank(f.ID) >= 0
		sev, report := severityFor(m, ev, f, meaningful && hoardable)
		if !report {
			continue
		}
		cur.Misses.Record(hoard.Miss{
			Time:            ev.Time,
			File:            f.ID,
			Path:            f.Path,
			Severity:        sev,
			SinceDisconnect: elapsed,
		})
		// The same user action that records the miss arranges for the
		// file to be hoarded at reconnection (§4.4); model the
		// brief-reconnection servicing by treating it as present for
		// the rest of the period once recorded.
	}
	finish(m.Tr.End)
	return res
}

// isAutoCandidate reports whether a non-meaningful reference can still
// trigger the automatic miss detector (§4.4): references by background
// activity to files known to exist. Scanner stats of absent files fail
// silently and are sampled sparsely, matching the small auto counts the
// paper reports.
func isAutoCandidate(m *Machine, ev trace.Event, f *simfs.File) bool {
	if ev.Failed || f.Kind != simfs.Regular {
		return false
	}
	switch ev.Op {
	case trace.OpOpen, trace.OpStat:
	default:
		return false
	}
	return m.rng.Bool(0.01)
}

// severityFor maps a missed file to the severity a user would report
// (§4.4), or to an automatic detection. Archive and background misses
// are often "not failures from the user's point of view" and surface as
// automatic detections only.
func severityFor(m *Machine, ev trace.Event, f *simfs.File, meaningful bool) (hoard.Severity, bool) {
	if !meaningful {
		return hoard.SeverityAuto, true
	}
	role := m.Gen.FileRole(f.Path)
	switch role {
	case workload.RoleMain:
		return hoard.Severity1, true
	case workload.RoleSource:
		return hoard.Severity2, true
	case workload.RoleHeader:
		if m.rng.Bool(0.5) {
			return hoard.Severity2, true
		}
		return hoard.Severity3, true
	case workload.RoleDoc:
		return hoard.Severity3, true
	case workload.RoleData:
		if m.rng.Bool(0.5) {
			return hoard.Severity3, true
		}
		return hoard.Severity4, true
	case workload.RoleObject:
		return hoard.Severity4, true
	case workload.RoleArchive:
		// Stale data the user barely needed: mostly an automatic
		// detection, occasionally a low-severity report.
		if m.rng.Bool(0.6) {
			return hoard.SeverityAuto, true
		}
		if m.rng.Bool(0.5) {
			return hoard.Severity3, true
		}
		return hoard.Severity4, true
	default:
		return hoard.SeverityAuto, true
	}
}

// Table3Row is one machine's disconnection statistics.
type Table3Row struct {
	Machine        string
	DaysMeasured   int
	Disconnections int
	TotalHours     float64
	MeanHours      float64
	MedianHours    float64
	StddevHours    float64
	MaxHours       float64
}

// Table3 summarizes the live disconnection behaviour (paper Table 3).
func (r *LiveResult) Table3(days int) Table3Row {
	var hours []float64
	for _, d := range r.Disconnections {
		hours = append(hours, d.Span.Duration().Hours())
	}
	s := stats.Summarize(hours)
	return Table3Row{
		Machine:        r.Machine,
		DaysMeasured:   days,
		Disconnections: s.N,
		TotalHours:     s.Total,
		MeanHours:      s.Mean,
		MedianHours:    s.Median,
		StddevHours:    s.Stddev,
		MaxHours:       s.Max,
	}
}

// Table4Row is one machine's failed-disconnection summary.
type Table4Row struct {
	Machine     string
	HoardSizeMB int64
	// BySeverity counts disconnections with at least one miss at each
	// user severity 0–4.
	BySeverity [5]int
	// AnySeverity counts disconnections with at least one user miss.
	AnySeverity int
	// Auto counts disconnections with at least one automatic detection.
	Auto int
}

// Table4 summarizes failed disconnections (paper Table 4).
func (r *LiveResult) Table4() Table4Row {
	row := Table4Row{Machine: r.Machine, HoardSizeMB: r.HoardSizeMB}
	for _, d := range r.Disconnections {
		counts := d.Misses.CountBySeverity()
		userAny := false
		for sev := 0; sev < 5; sev++ {
			if counts[hoard.Severity(sev)] > 0 {
				row.BySeverity[sev]++
				userAny = true
			}
		}
		if userAny {
			row.AnySeverity++
		}
		if counts[hoard.SeverityAuto] > 0 {
			row.Auto++
		}
	}
	return row
}

// Table5Row is time-to-first-miss statistics for one machine and
// severity (paper Table 5), in hours of active use.
type Table5Row struct {
	Machine  string
	Severity hoard.Severity
	Stats    stats.Summary
}

// Table5 collects first-miss times per severity across failed
// disconnections.
func (r *LiveResult) Table5() []Table5Row {
	sevs := []hoard.Severity{
		hoard.Severity0, hoard.Severity1, hoard.Severity2,
		hoard.Severity3, hoard.Severity4, hoard.SeverityAuto,
	}
	var rows []Table5Row
	for _, sev := range sevs {
		var hours []float64
		for _, d := range r.Disconnections {
			if m, ok := d.Misses.FirstMiss(sev); ok {
				hours = append(hours, m.SinceDisconnect.Hours())
			}
		}
		if len(hours) == 0 {
			continue
		}
		rows = append(rows, Table5Row{
			Machine:  r.Machine,
			Severity: sev,
			Stats:    stats.Summarize(hours),
		})
	}
	return rows
}

// MergeSpans applies the paper's §5.1.1 post-processing to raw
// connectivity spans: disconnections shorter than minDur are dropped,
// and reconnections shorter than minGap are elided by merging the
// adjacent disconnections.
func MergeSpans(spans []workload.Span, minDur, minGap time.Duration) []workload.Span {
	if len(spans) == 0 {
		return nil
	}
	var merged []workload.Span
	cur := spans[0]
	for _, s := range spans[1:] {
		if s.Start.Sub(cur.End) < minGap {
			if s.End.After(cur.End) {
				cur.End = s.End
			}
			continue
		}
		merged = append(merged, cur)
		cur = s
	}
	merged = append(merged, cur)
	out := merged[:0]
	for _, s := range merged {
		if s.Duration() >= minDur {
			out = append(out, s)
		}
	}
	return out
}
