// Package investigate implements SEER's external investigators (paper
// §3.2, §3.3.3): auxiliary analyzers that examine selected files,
// extract application-specific relationship information, and feed it to
// the clustering algorithm as groups of related files with a strength.
// The strength is added to the shared-neighbor count of each pair in the
// group, so a sufficiently strong relation can force files into one
// cluster regardless of observed reference behaviour.
//
// Three investigators are provided: a C/C++ #include scanner (the
// paper's example), a Makefile dependency scanner (the paper's proposed
// makefile investigator), and a naming-convention investigator that
// relates files differing only in extension. The package also provides
// the directory-distance adjustment, which is subtracted from
// shared-neighbor counts so widely separated files are less likely to
// cluster.
package investigate

import (
	"sort"
	"strings"

	"github.com/fmg/seer/internal/cluster"
	"github.com/fmg/seer/internal/simfs"
)

// Relation is one investigator finding: a group of related files and
// the strength of the relation.
type Relation struct {
	Files    []string
	Strength float64
}

// ScanCIncludes extracts the #include targets of a C/C++ source file
// and resolves them to absolute paths: quoted includes relative to the
// source file's directory (then the include dirs), bracketed includes
// against the include dirs only. Unresolvable includes are resolved
// against the first include dir, or the source directory when none are
// given, so a relation is still produced for headers the tracer has not
// yet seen; exists may be nil to accept everything.
func ScanCIncludes(srcPath string, content []byte, includeDirs []string, exists func(string) bool) []string {
	var out []string
	dir := simfs.Dir(srcPath)
	for _, line := range strings.Split(string(content), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
		if !strings.HasPrefix(rest, "include") {
			continue
		}
		rest = strings.TrimSpace(strings.TrimPrefix(rest, "include"))
		if len(rest) < 2 {
			continue
		}
		var name string
		var quoted bool
		switch rest[0] {
		case '"':
			if end := strings.IndexByte(rest[1:], '"'); end >= 0 {
				name = rest[1 : 1+end]
				quoted = true
			}
		case '<':
			if end := strings.IndexByte(rest[1:], '>'); end >= 0 {
				name = rest[1 : 1+end]
			}
		}
		if name == "" {
			continue
		}
		if p := resolveInclude(name, dir, quoted, includeDirs, exists); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func resolveInclude(name, srcDir string, quoted bool, includeDirs []string, exists func(string) bool) string {
	if strings.HasPrefix(name, "/") {
		return name
	}
	var candidates []string
	if quoted {
		candidates = append(candidates, join(srcDir, name))
	}
	for _, d := range includeDirs {
		candidates = append(candidates, join(d, name))
	}
	if len(candidates) == 0 {
		candidates = append(candidates, join(srcDir, name))
	}
	if exists != nil {
		for _, c := range candidates {
			if exists(c) {
				return c
			}
		}
	}
	return candidates[0]
}

func join(dir, name string) string {
	if dir == "" || dir == "/" {
		return "/" + strings.TrimPrefix(name, "/")
	}
	return dir + "/" + name
}

// CRelations runs the #include scanner over a set of source files and
// returns one relation per source (source + its headers).
func CRelations(files map[string][]byte, includeDirs []string, strength float64, exists func(string) bool) []Relation {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var rels []Relation
	for _, p := range paths {
		incs := ScanCIncludes(p, files[p], includeDirs, exists)
		if len(incs) == 0 {
			continue
		}
		rels = append(rels, Relation{
			Files:    append([]string{p}, incs...),
			Strength: strength,
		})
	}
	return rels
}

// MakefileRelations parses a (simplified POSIX) makefile and returns one
// relation per rule: the target, its prerequisites, and the makefile
// itself. A makefile investigator "could potentially identify every file
// needed to build a particular program" (paper §3.2); rule relations
// resolve relative names against the makefile's directory.
func MakefileRelations(path string, content []byte, strength float64) []Relation {
	dir := simfs.Dir(path)
	var rels []Relation
	for _, line := range strings.Split(string(content), "\n") {
		if strings.HasPrefix(line, "\t") || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue // recipe or comment
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 || strings.Contains(line[:colon], "=") {
			continue
		}
		// Skip := style assignments and rules with no prerequisites.
		rhs := line[colon+1:]
		if strings.HasPrefix(rhs, "=") {
			continue
		}
		targets := strings.Fields(line[:colon])
		deps := strings.Fields(rhs)
		if len(targets) == 0 || len(deps) == 0 {
			continue
		}
		group := []string{path}
		for _, t := range append(targets, deps...) {
			if strings.HasPrefix(t, ".") && !strings.HasPrefix(t, "./") {
				continue // suffix rules like .c.o:
			}
			if strings.ContainsAny(t, "$%") {
				continue // unexpanded variables and pattern rules
			}
			name := t
			if !strings.HasPrefix(name, "/") {
				name = join(dir, strings.TrimPrefix(name, "./"))
			}
			group = append(group, name)
		}
		if len(group) > 2 {
			rels = append(rels, Relation{Files: group, Strength: strength})
		}
	}
	return rels
}

// SameStemRelations relates files in the same directory whose names
// differ only in extension (foo.c / foo.h / foo.o), the naming
// convention clue of paper §3.2.
func SameStemRelations(paths []string, strength float64) []Relation {
	byStem := make(map[string][]string)
	for _, p := range paths {
		dot := strings.LastIndexByte(p, '.')
		slash := strings.LastIndexByte(p, '/')
		if dot <= slash+1 { // no extension or dot file
			continue
		}
		stem := p[:dot]
		byStem[stem] = append(byStem[stem], p)
	}
	stems := make([]string, 0, len(byStem))
	for s := range byStem {
		if len(byStem[s]) > 1 {
			stems = append(stems, s)
		}
	}
	sort.Strings(stems)
	var rels []Relation
	for _, s := range stems {
		group := byStem[s]
		sort.Strings(group)
		rels = append(rels, Relation{Files: group, Strength: strength})
	}
	return rels
}

// Pairs converts relations to clustering pairs: every ordered pair
// within a relation's group, with the relation strength scaled by
// weight. resolve maps a pathname to its FileID; paths that resolve to
// NoFile are skipped.
func Pairs(rels []Relation, resolve func(string) simfs.FileID, weight float64) []cluster.Pair {
	var pairs []cluster.Pair
	for _, rel := range rels {
		ids := make([]simfs.FileID, 0, len(rel.Files))
		for _, p := range rel.Files {
			if id := resolve(p); id != simfs.NoFile {
				ids = append(ids, id)
			}
		}
		for i, a := range ids {
			for j, b := range ids {
				if i == j {
					continue
				}
				pairs = append(pairs, cluster.Pair{
					From: a, To: b, Shared: rel.Strength * weight,
				})
			}
		}
	}
	return pairs
}

// DirDistanceAdjust returns an adjustment function for the clustering
// options: the directory distance between the two files, scaled by
// weight, subtracted from the shared-neighbor count (paper §3.3.3).
// pathOf maps FileIDs back to pathnames.
func DirDistanceAdjust(weight float64, pathOf func(simfs.FileID) string) func(a, b simfs.FileID) float64 {
	return func(a, b simfs.FileID) float64 {
		pa, pb := pathOf(a), pathOf(b)
		if pa == "" || pb == "" {
			return 0
		}
		return -weight * float64(simfs.DirDistance(pa, pb))
	}
}
