package investigate

import (
	"reflect"
	"sort"
	"testing"

	"github.com/fmg/seer/internal/simfs"
)

func TestScanCIncludesQuotedAndBracketed(t *testing.T) {
	src := `// main module
#include "defs.h"
#include <stdio.h>
#  include   "sub/util.h"
#include "unterminated
#define X 1
int main() { return 0; }
`
	got := ScanCIncludes("/home/u/proj/main.c", []byte(src),
		[]string{"/usr/include"}, nil)
	want := []string{
		"/home/u/proj/defs.h",
		"/usr/include/stdio.h",
		"/home/u/proj/sub/util.h",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("includes = %v, want %v", got, want)
	}
}

func TestScanCIncludesExistsResolution(t *testing.T) {
	src := "#include \"shared.h\"\n"
	exists := func(p string) bool { return p == "/usr/include/shared.h" }
	got := ScanCIncludes("/home/u/p/main.c", []byte(src),
		[]string{"/usr/include"}, exists)
	if len(got) != 1 || got[0] != "/usr/include/shared.h" {
		t.Errorf("includes = %v, want include-dir resolution", got)
	}
}

func TestScanCIncludesAbsoluteAndNoDirs(t *testing.T) {
	src := "#include \"/abs/path.h\"\n#include <vague.h>\n"
	got := ScanCIncludes("/home/u/m.c", []byte(src), nil, nil)
	if len(got) != 2 || got[0] != "/abs/path.h" || got[1] != "/home/u/vague.h" {
		t.Errorf("includes = %v", got)
	}
}

func TestCRelations(t *testing.T) {
	files := map[string][]byte{
		"/p/a.c":   []byte("#include \"a.h\"\n"),
		"/p/b.c":   []byte("int x;\n"), // no includes: no relation
		"/p/c.c":   []byte("#include \"a.h\"\n#include \"c.h\"\n"),
		"/p/notes": []byte("#include is mentioned here but no quotes"),
		"/p/weird": []byte("#includex \"a.h\"\n"),
	}
	rels := CRelations(files, nil, 2.5, nil)
	if len(rels) != 2 {
		t.Fatalf("relations = %v, want 2", rels)
	}
	if rels[0].Strength != 2.5 {
		t.Errorf("strength = %g", rels[0].Strength)
	}
	// Sorted by path: a.c first.
	if !reflect.DeepEqual(rels[0].Files, []string{"/p/a.c", "/p/a.h"}) {
		t.Errorf("rel 0 = %v", rels[0].Files)
	}
	if !reflect.DeepEqual(rels[1].Files, []string{"/p/c.c", "/p/a.h", "/p/c.h"}) {
		t.Errorf("rel 1 = %v", rels[1].Files)
	}
}

func TestMakefileRelations(t *testing.T) {
	mk := `# build rules
CC = gcc
prog: main.o util.o
	$(CC) -o prog main.o util.o
main.o: main.c defs.h
	$(CC) -c main.c
.c.o:
	$(CC) -c $<
clean:
	rm -f *.o
$(OBJ): generated.h
`
	rels := MakefileRelations("/p/Makefile", []byte(mk), 3)
	if len(rels) != 2 {
		t.Fatalf("relations = %+v, want 2", rels)
	}
	want0 := []string{"/p/Makefile", "/p/prog", "/p/main.o", "/p/util.o"}
	if !reflect.DeepEqual(rels[0].Files, want0) {
		t.Errorf("rule 0 = %v, want %v", rels[0].Files, want0)
	}
	want1 := []string{"/p/Makefile", "/p/main.o", "/p/main.c", "/p/defs.h"}
	if !reflect.DeepEqual(rels[1].Files, want1) {
		t.Errorf("rule 1 = %v, want %v", rels[1].Files, want1)
	}
}

func TestSameStemRelations(t *testing.T) {
	paths := []string{
		"/p/widget.cc", "/p/widget.h", "/p/widget.o",
		"/p/main.c",
		"/q/main.c", // different directory: different stem
		"/p/.profile",
		"/p/README",
	}
	rels := SameStemRelations(paths, 1.5)
	if len(rels) != 1 {
		t.Fatalf("relations = %v, want 1", rels)
	}
	want := []string{"/p/widget.cc", "/p/widget.h", "/p/widget.o"}
	if !reflect.DeepEqual(rels[0].Files, want) {
		t.Errorf("group = %v, want %v", rels[0].Files, want)
	}
}

func TestPairsResolution(t *testing.T) {
	ids := map[string]simfs.FileID{"/a": 1, "/b": 2, "/c": 3}
	resolve := func(p string) simfs.FileID { return ids[p] }
	rels := []Relation{{Files: []string{"/a", "/b", "/missing"}, Strength: 2}}
	pairs := Pairs(rels, resolve, 1.5)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2 (missing path skipped)", pairs)
	}
	for _, p := range pairs {
		if p.Shared != 3 {
			t.Errorf("pair strength = %g, want 2×1.5 = 3", p.Shared)
		}
	}
	// Both directions present.
	dirs := map[[2]simfs.FileID]bool{}
	for _, p := range pairs {
		dirs[[2]simfs.FileID{p.From, p.To}] = true
	}
	if !dirs[[2]simfs.FileID{1, 2}] || !dirs[[2]simfs.FileID{2, 1}] {
		t.Errorf("pair directions = %v", dirs)
	}
}

func TestPairsThreeWayGroup(t *testing.T) {
	resolve := func(p string) simfs.FileID {
		return simfs.FileID(len(p)) // /a→2, /bb→3, /ccc→4
	}
	rels := []Relation{{Files: []string{"/a", "/bb", "/ccc"}, Strength: 1}}
	pairs := Pairs(rels, resolve, 1)
	if len(pairs) != 6 {
		t.Errorf("pairs = %d, want 6 ordered pairs", len(pairs))
	}
}

func TestDirDistanceAdjust(t *testing.T) {
	paths := map[simfs.FileID]string{
		1: "/home/u/p/a.c",
		2: "/home/u/p/b.c",
		3: "/usr/include/stdio.h",
	}
	adj := DirDistanceAdjust(0.5, func(id simfs.FileID) string { return paths[id] })
	if got := adj(1, 2); got != 0 {
		t.Errorf("same dir adjustment = %g, want 0", got)
	}
	want := -0.5 * float64(simfs.DirDistance(paths[1], paths[3]))
	if got := adj(1, 3); got != want {
		t.Errorf("cross-dir adjustment = %g, want %g", got, want)
	}
	if got := adj(1, 99); got != 0 {
		t.Errorf("unknown file adjustment = %g, want 0", got)
	}
}

func TestRelationsDeterministic(t *testing.T) {
	paths := []string{"/p/z.c", "/p/z.h", "/p/a.c", "/p/a.h"}
	r1 := SameStemRelations(paths, 1)
	// Shuffle input order.
	shuffled := []string{"/p/a.h", "/p/z.h", "/p/z.c", "/p/a.c"}
	r2 := SameStemRelations(shuffled, 1)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("relations order-dependent: %v vs %v", r1, r2)
	}
	var stems []string
	for _, r := range r1 {
		stems = append(stems, r.Files[0])
	}
	if !sort.StringsAreSorted(stems) {
		t.Errorf("relations unsorted: %v", stems)
	}
}
