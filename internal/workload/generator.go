package workload

import (
	"fmt"
	"sort"
	"time"

	"github.com/fmg/seer/internal/investigate"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/trace"
)

// Span is a time interval.
type Span struct {
	Start, End time.Time
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Contains reports whether t lies in [Start, End).
func (s Span) Contains(t time.Time) bool {
	return !t.Before(s.Start) && t.Before(s.End)
}

// Trace is a generated workload: the event stream plus the ground-truth
// disconnection schedule.
type Trace struct {
	Events         []trace.Event
	Disconnections []Span
	Start, End     time.Time
}

// Role classifies a file for severity modelling: when a hoard miss
// occurs, the impact depends on what kind of file was missing (§4.4).
type Role uint8

// The file roles.
const (
	RoleOther Role = iota
	// RoleMain is a project's primary source file — missing it changes
	// the task (severity 1).
	RoleMain
	// RoleSource is project source — activity within the task changes
	// (severity 2).
	RoleSource
	// RoleHeader is a header or auxiliary build input (severity 2–3).
	RoleHeader
	// RoleDoc is an informational file (severity 3).
	RoleDoc
	// RoleData is bulk project data (severity 3–4).
	RoleData
	// RoleObject is a derived file, regenerable (severity 4).
	RoleObject
	// RoleSystem is a tool or library.
	RoleSystem
	// RoleArchive is stale bulk data (old tarballs, datasets) that is
	// rarely touched but keeps the disk full — the paper's observation
	// that "only a small fraction of all files are actually needed by
	// the user on any given day" (§5.2.1).
	RoleArchive
)

// SizeMultiplier returns the factor applied to the base geometric file
// size (mean ≈ 14 KB, paper §5.1.2) for each role, reflecting that
// documents, datasets and libraries are larger than sources.
func (r Role) SizeMultiplier() float64 {
	switch r {
	case RoleHeader:
		return 0.5
	case RoleDoc:
		return 4
	case RoleData:
		return 20
	case RoleObject:
		return 2
	case RoleSystem:
		return 40
	case RoleArchive:
		return 150
	default:
		return 1
	}
}

// project is the generator's ground truth for one project.
type project struct {
	name    string
	dir     string
	mkfile  string
	sources []string
	headers []string
	docs    []string
	data    []string
	binary  string
	// includes maps each source to the headers it #includes.
	includes map[string][]string
}

func (p *project) object(src int) string {
	return fmt.Sprintf("%s/src%02d.o", p.dir, src)
}

// allFiles returns every pathname belonging to the project.
func (p *project) allFiles() []string {
	out := []string{p.mkfile}
	out = append(out, p.sources...)
	out = append(out, p.headers...)
	out = append(out, p.docs...)
	out = append(out, p.data...)
	return out
}

// Generator produces a Trace from a Profile. Construction is cheap;
// Generate does the work. A Generator is single-use.
type Generator struct {
	prof Profile
	rng  *stats.Rand
	zipf *stats.Zipf

	clock *trace.Clock

	projects []*project
	libs     []string
	sysHdrs  []string
	tools    map[string]string
	dotfiles []string
	mailbox  string
	mailDir  string
	archive  []string
	support  []string

	// transitions is the time-sorted connectivity schedule awaiting
	// interleaving into the event stream.
	transitions []trace.Event
	nextTrans   int

	events     []trace.Event
	discs      []Span
	curProject int
	nextPID    trace.PID
	mailPID    trace.PID

	dirSizes map[string]int
	roles    map[string]Role
	// linked tracks which projects have had their ~/bin symlink created.
	linked map[string]bool
}

// NewGenerator returns a generator for the profile with deterministic
// randomness from seed.
func NewGenerator(prof Profile, seed int64) *Generator {
	g := &Generator{
		prof:     prof,
		rng:      stats.NewRand(seed),
		zipf:     stats.NewZipf(maxInt(prof.Projects, 1), prof.ZipfS),
		nextPID:  100,
		dirSizes: make(map[string]int),
		roles:    make(map[string]Role),
		tools:    make(map[string]string),
		linked:   make(map[string]bool),
	}
	g.setup()
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// home is the simulated user's home directory.
const home = "/home/u"

func (g *Generator) setup() {
	// System tools and shared libraries.
	for _, t := range []string{"sh", "emacs", "make", "cc", "ld", "find", "mail", "ls"} {
		g.tools[t] = "/usr/bin/" + t
		g.roles["/usr/bin/"+t] = RoleSystem
	}
	g.libs = []string{"/lib/libc.so.5", "/lib/libm.so.5", "/usr/lib/libcurses.so"}
	for _, l := range g.libs {
		g.roles[l] = RoleSystem
	}
	// Editor support files, loaded at every editor startup: like shared
	// libraries they are referenced by every session and end up in the
	// frequently-referenced set, where they both stay hoarded and act as
	// the natural separation between one session's references and the
	// next's (§4.2).
	for i := 0; i < 12; i++ {
		p := fmt.Sprintf("/usr/share/emacs/lisp/lisp%02d.el", i)
		g.support = append(g.support, p)
		g.roles[p] = RoleHeader // small text files
	}
	g.sysHdrs = []string{"/usr/include/stdio.h", "/usr/include/stdlib.h", "/usr/include/string.h"}
	for _, h := range g.sysHdrs {
		g.roles[h] = RoleHeader
	}
	g.dotfiles = []string{home + "/.profile", home + "/.exrc", home + "/.mailrc"}
	g.mailbox = "/var/spool/mail/u"
	g.mailDir = home + "/Mail"
	g.roles[g.mailbox] = RoleOther

	// Stale bulk data: old tarballs and datasets that keep the disk
	// fuller than any reasonable hoard budget.
	for i := 0; i < 24; i++ {
		p := fmt.Sprintf("%s/archive/old%02d.tar", home, i)
		g.archive = append(g.archive, p)
		g.roles[p] = RoleArchive
	}
	g.dirSizes[home+"/archive"] = len(g.archive)

	// Projects.
	for i := 0; i < g.prof.Projects; i++ {
		g.projects = append(g.projects, g.makeProject(i))
	}
	// Directory fan-outs for the meaningless-process heuristic.
	g.dirSizes[home] = len(g.projects) + 5
	g.dirSizes["/usr/bin"] = 40
	g.dirSizes[g.mailDir] = 12
}

func (g *Generator) makeProject(i int) *project {
	n := g.prof.FilesPerProject
	n = n/2 + g.rng.Intn(maxInt(n, 1)) // n/2 .. 3n/2
	if n < 6 {
		n = 6
	}
	p := &project{
		name:     fmt.Sprintf("proj%02d", i),
		dir:      fmt.Sprintf("%s/proj%02d", home, i),
		includes: make(map[string][]string),
	}
	p.mkfile = p.dir + "/Makefile"
	nSrc := maxInt(n*2/5, 2)
	nHdr := maxInt(n/4, 1)
	nDoc := maxInt(n/5, 1)
	nDat := maxInt(n-nSrc-nHdr-nDoc, 0)
	for s := 0; s < nSrc; s++ {
		path := fmt.Sprintf("%s/src%02d.c", p.dir, s)
		p.sources = append(p.sources, path)
		if s == 0 {
			g.roles[path] = RoleMain
		} else {
			g.roles[path] = RoleSource
		}
	}
	for h := 0; h < nHdr; h++ {
		path := fmt.Sprintf("%s/hdr%02d.h", p.dir, h)
		p.headers = append(p.headers, path)
		g.roles[path] = RoleHeader
	}
	for d := 0; d < nDoc; d++ {
		path := fmt.Sprintf("%s/doc%02d.txt", p.dir, d)
		p.docs = append(p.docs, path)
		g.roles[path] = RoleDoc
	}
	for d := 0; d < nDat; d++ {
		path := fmt.Sprintf("%s/data%02d.dat", p.dir, d)
		p.data = append(p.data, path)
		g.roles[path] = RoleData
	}
	p.binary = p.dir + "/prog"
	g.roles[p.binary] = RoleObject
	for s, src := range p.sources {
		incs := []string{p.headers[s%nHdr]}
		if nHdr > 1 {
			incs = append(incs, p.headers[(s+1)%nHdr])
		}
		incs = append(incs, g.sysHdrs[s%len(g.sysHdrs)])
		p.includes[src] = incs
		g.roles[p.object(s)] = RoleObject
	}
	// Objects count toward the directory listing too.
	g.dirSizes[p.dir] = len(p.allFiles()) + nSrc + 1
	return p
}

// DirSize reports the fan-out of a directory; it is the generator-side
// implementation of the observer's DirSizer.
func (g *Generator) DirSize(path string) int {
	if n, ok := g.dirSizes[path]; ok {
		return n
	}
	return 8
}

// FileRole reports the ground-truth role of a pathname.
func (g *Generator) FileRole(path string) Role {
	if r, ok := g.roles[path]; ok {
		return r
	}
	return RoleOther
}

// InvestigatorRelations returns the C-include relations an external
// investigator would extract from the project sources (paper §3.2): one
// relation per source file linking it to its headers.
func (g *Generator) InvestigatorRelations(strength float64) []investigate.Relation {
	var rels []investigate.Relation
	for _, p := range g.projects {
		for _, src := range p.sources {
			rels = append(rels, investigate.Relation{
				Files:    append([]string{src}, p.includes[src]...),
				Strength: strength,
			})
		}
		// The makefile investigator's whole-project relation.
		group := append([]string{p.mkfile}, p.sources...)
		group = append(group, p.binary)
		rels = append(rels, investigate.Relation{Files: group, Strength: strength})
	}
	return rels
}

// Projects returns each project's file list (ground truth for tests).
func (g *Generator) Projects() [][]string {
	out := make([][]string, len(g.projects))
	for i, p := range g.projects {
		out[i] = p.allFiles()
	}
	return out
}

// Generate produces the full trace for the profile's measured period.
func (g *Generator) Generate() *Trace {
	start := time.Date(1997, 1, 6, 8, 0, 0, 0, time.UTC)
	g.clock = trace.NewClock(start)
	g.scheduleDisconnections(start)

	for day := 0; day < g.prof.DaysMeasured; day++ {
		dayStart := start.AddDate(0, 0, day)
		g.generateDay(day, dayStart)
	}
	// Flush any connectivity transitions after the last activity.
	g.flushTransitions(g.clock.Now().Add(365 * 24 * time.Hour))
	return &Trace{
		Events:         g.events,
		Disconnections: g.discs,
		Start:          start,
		End:            g.clock.Now(),
	}
}

// scheduleDisconnections draws the profile's disconnection periods from
// a log-normal calibrated to the Table 3 mean and median, clamped to
// [15 min, max], and spreads them over the measured period without
// overlap.
func (g *Generator) scheduleDisconnections(start time.Time) {
	mu, sigma := stats.LogNormalFromMeanMedian(g.prof.MeanDiscHours, g.prof.MedianDiscHours)
	total := time.Duration(g.prof.DaysMeasured) * 24 * time.Hour
	starts := make([]time.Duration, g.prof.Disconnections)
	for i := range starts {
		starts[i] = time.Duration(g.rng.Float64() * float64(total))
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	var prevEnd time.Time
	for _, off := range starts {
		hours := g.rng.LogNormal(mu, sigma)
		if hours < 0.25 {
			hours = 0.25
		}
		if hours > g.prof.MaxDiscHours {
			hours = g.prof.MaxDiscHours
		}
		s := start.Add(off)
		if s.Before(prevEnd.Add(15 * time.Minute)) {
			s = prevEnd.Add(15 * time.Minute)
		}
		e := s.Add(Hours(hours))
		g.discs = append(g.discs, Span{Start: s, End: e})
		prevEnd = e
	}
	for _, d := range g.discs {
		g.transitions = append(g.transitions,
			trace.Event{Time: d.Start, Op: trace.OpDisconnect},
			trace.Event{Time: d.End, Op: trace.OpReconnect})
	}
	sort.Slice(g.transitions, func(i, j int) bool {
		return g.transitions[i].Time.Before(g.transitions[j].Time)
	})
}

// flushTransitions emits connectivity markers scheduled at or before t.
func (g *Generator) flushTransitions(t time.Time) {
	for g.nextTrans < len(g.transitions) && !g.transitions[g.nextTrans].Time.After(t) {
		ev := g.transitions[g.nextTrans]
		g.nextTrans++
		g.append(ev)
	}
}

func (g *Generator) append(ev trace.Event) {
	ev.Seq = uint64(len(g.events) + 1)
	g.events = append(g.events, ev)
}

// emit stamps and appends one activity event at the current clock.
func (g *Generator) emit(op trace.Op, pid trace.PID, path string) {
	g.emitFull(trace.Event{Op: op, PID: pid, Path: path, Uid: 1000})
}

func (g *Generator) emitFull(ev trace.Event) {
	g.flushTransitions(g.clock.Now())
	ev.Time = g.clock.Now()
	g.append(ev)
	// Each call advances simulated time slightly (traced operations are
	// not instantaneous).
	g.clock.Advance(time.Duration(20+g.rng.Intn(200)) * time.Millisecond)
}

// step advances simulated time.
func (g *Generator) step(d time.Duration) { g.clock.Advance(d) }

// spawn forks a child of the shell and execs the tool, returning its pid.
func (g *Generator) spawn(tool string) trace.PID {
	g.nextPID++
	pid := g.nextPID
	g.emitFull(trace.Event{Op: trace.OpFork, PID: pid, PPID: 50, Uid: 1000})
	g.emitFull(trace.Event{Op: trace.OpExec, PID: pid, Path: g.tools[tool], Prog: tool, Uid: 1000})
	// Program startup maps the shared libraries (§4.2).
	for _, l := range g.libs {
		g.emit(trace.OpOpen, pid, l)
		g.emit(trace.OpClose, pid, l)
	}
	// The editor additionally loads its support files on every start.
	if tool == "emacs" {
		for _, sf := range g.support {
			g.emit(trace.OpOpen, pid, sf)
			g.emit(trace.OpClose, pid, sf)
		}
	}
	return pid
}

func (g *Generator) exitProc(pid trace.PID) {
	g.emitFull(trace.Event{Op: trace.OpExit, PID: pid, Uid: 1000})
}

func (g *Generator) generateDay(day int, dayStart time.Time) {
	if g.clock.Now().Before(dayStart) {
		g.clock.Advance(dayStart.Sub(g.clock.Now()))
	}
	if g.rng.Bool(g.prof.IdleDayProb) && day != 0 {
		return // machine suspended all day
	}
	g.emitFull(trace.Event{Op: trace.OpResume, Uid: 1000})
	// Login file activity on the first day and after occasional reboots
	// (§4.3: critical files are rarely referenced).
	if day == 0 || g.rng.Bool(0.05) {
		for _, df := range g.dotfiles {
			g.emit(trace.OpOpen, 50, df)
			g.emit(trace.OpClose, 50, df)
		}
	}
	sessions := int(g.prof.SessionsPerDay*(0.5+g.rng.Float64()) + 0.5)
	if sessions < 1 {
		sessions = 1
	}
	activeSpan := Hours(g.prof.ActiveHoursPerDay * (0.7 + 0.6*g.rng.Float64()))
	gap := activeSpan / time.Duration(sessions+1)
	for s := 0; s < sessions; s++ {
		g.pickProject()
		switch {
		case g.rng.Bool(g.prof.FindScansPerDay / g.prof.SessionsPerDay):
			g.findScan()
		case g.rng.Bool(g.prof.MailSessionsPerDay / g.prof.SessionsPerDay):
			g.mailSession()
		case g.rng.Bool(0.03):
			g.archiveSession()
		default:
			g.editSession()
			if g.rng.Bool(g.prof.CompileProb) {
				g.compileSession()
			}
		}
		g.step(time.Duration(g.rng.Float64() * float64(gap)))
	}
	g.emitFull(trace.Event{Op: trace.OpSuspend, Uid: 1000})
}

// pickProject applies the attention-shift model: usually stay on the
// current project, sometimes shift to a Zipf-drawn one.
func (g *Generator) pickProject() {
	if len(g.projects) == 0 {
		return
	}
	if g.rng.Bool(g.prof.AttentionShiftProb) || g.curProject >= len(g.projects) {
		g.curProject = g.zipf.Sample(g.rng)
	}
}

// editSession simulates browsing and editing project files in an editor.
func (g *Generator) editSession() {
	p := g.projects[g.curProject]
	pid := g.spawn("emacs")
	// Filename completion reads the project directory (§4.1: editors
	// read directories but stay meaningful).
	g.emit(trace.OpReadDir, pid, p.dir)
	main := p.sources[g.rng.Intn(len(p.sources))]
	g.emit(trace.OpOpen, pid, main)
	pool := p.allFiles()
	touch := int(g.prof.BrowseFraction * float64(len(pool)))
	for i := 0; i < touch; i++ {
		f := pool[g.rng.Intn(len(pool))]
		if f == main {
			continue
		}
		if g.rng.Bool(0.2) {
			// Examine attributes first (often folded into the open).
			g.emit(trace.OpStat, pid, f)
		}
		g.emit(trace.OpOpen, pid, f)
		g.step(time.Duration(g.rng.Intn(30)) * time.Second)
		g.emit(trace.OpClose, pid, f)
		// Concurrent mail stream: the user glances at mail while the
		// editor is open (§4.7).
		if g.rng.Bool(0.05) {
			g.mailGlance()
		}
	}
	// Save the file in place.
	g.emit(trace.OpClose, pid, main)
	g.exitProc(pid)
}

// compileSession simulates make driving cc over the project.
func (g *Generator) compileSession() {
	p := g.projects[g.curProject]
	makePID := g.spawn("make")
	g.emit(trace.OpOpen, makePID, p.mkfile)
	// make stats every target and prerequisite (§4.8: attribute
	// examinations with semantic meaning).
	for i, src := range p.sources {
		g.emit(trace.OpStat, makePID, src)
		g.emit(trace.OpStat, makePID, p.object(i))
	}
	rebuild := 1 + g.rng.Intn(len(p.sources))
	for i := 0; i < rebuild; i++ {
		src := i
		ccPID := g.nextPID + 1
		g.nextPID++
		g.emitFull(trace.Event{Op: trace.OpFork, PID: ccPID, PPID: makePID, Uid: 1000})
		g.emitFull(trace.Event{Op: trace.OpExec, PID: ccPID, Path: g.tools["cc"], Prog: "cc", Uid: 1000})
		for _, l := range g.libs[:1] {
			g.emit(trace.OpOpen, ccPID, l)
			g.emit(trace.OpClose, ccPID, l)
		}
		// The source stays open while its headers are read — the
		// motivating example for lifetime semantic distance (§3.1.1).
		g.emit(trace.OpOpen, ccPID, p.sources[src])
		tmp := fmt.Sprintf("/tmp/cc%05d.i", int(ccPID))
		g.emit(trace.OpCreate, ccPID, tmp)
		for _, h := range p.includes[p.sources[src]] {
			g.emit(trace.OpOpen, ccPID, h)
			g.emit(trace.OpClose, ccPID, h)
		}
		// Standard headers are pulled in by every compilation of every
		// project; like the shared libraries they must end up filtered
		// by the frequent-file heuristic or they would eventually link
		// all projects into one cluster (§4.2).
		for _, h := range g.sysHdrs {
			g.emit(trace.OpOpen, ccPID, h)
			g.emit(trace.OpClose, ccPID, h)
		}
		g.emit(trace.OpCreate, ccPID, p.object(src))
		g.emit(trace.OpClose, ccPID, p.object(src))
		g.emit(trace.OpClose, ccPID, p.sources[src])
		g.emit(trace.OpDelete, ccPID, tmp)
		g.exitProc(ccPID)
		if g.rng.Bool(0.1) {
			g.mailGlance()
		}
	}
	// Link: ld reads every object and produces the binary via a
	// temporary that is renamed into place (§4.8: renames matter).
	ldPID := g.spawn("ld")
	for i := range p.sources {
		g.emit(trace.OpOpen, ldPID, p.object(i))
	}
	tmpBin := p.dir + "/prog.tmp"
	g.emit(trace.OpCreate, ldPID, tmpBin)
	g.emit(trace.OpClose, ldPID, tmpBin)
	for i := range p.sources {
		g.emit(trace.OpClose, ldPID, p.object(i))
	}
	g.emitFull(trace.Event{Op: trace.OpRename, PID: ldPID, Path: tmpBin, Path2: p.binary, Uid: 1000})
	// The first successful build installs a convenience symlink in the
	// user's bin directory — a non-file object SEER always hoards (§4.6).
	if !g.linked[p.name] {
		g.linked[p.name] = true
		g.emitFull(trace.Event{
			Op: trace.OpSymlink, PID: ldPID,
			Path: home + "/bin/" + p.name, Path2: p.binary, Uid: 1000,
		})
	}
	g.exitProc(ldPID)
	g.emit(trace.OpClose, makePID, p.mkfile)
	g.exitProc(makePID)
}

// mailGlance emits a couple of events from the long-running mail reader,
// interleaved with whatever else is happening.
func (g *Generator) mailGlance() {
	if g.mailPID == 0 {
		g.mailPID = g.spawn("mail")
		g.emit(trace.OpOpen, g.mailPID, g.mailbox)
	}
	g.emit(trace.OpOpen, g.mailPID, fmt.Sprintf("%s/msg%03d", g.mailDir, g.rng.Intn(200)))
	g.emit(trace.OpClose, g.mailPID, fmt.Sprintf("%s/msg%03d", g.mailDir, g.rng.Intn(200)))
}

// mailSession is a dedicated mail-reading period.
func (g *Generator) mailSession() {
	pid := g.spawn("mail")
	g.emit(trace.OpReadDir, pid, g.mailDir)
	g.emit(trace.OpOpen, pid, g.mailbox)
	n := 3 + g.rng.Intn(8)
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf("%s/msg%03d", g.mailDir, g.rng.Intn(200))
		g.emit(trace.OpOpen, pid, msg)
		g.step(time.Duration(g.rng.Intn(60)) * time.Second)
		g.emit(trace.OpClose, pid, msg)
	}
	g.emit(trace.OpClose, pid, g.mailbox)
	g.exitProc(pid)
}

// archiveSession is a rare dip into stale bulk data (checking an old
// tarball, grepping an old dataset).
func (g *Generator) archiveSession() {
	pid := g.spawn("ls")
	g.emit(trace.OpReadDir, pid, home+"/archive")
	n := 1 + g.rng.Intn(2)
	for i := 0; i < n; i++ {
		f := g.archive[g.rng.Intn(len(g.archive))]
		g.emit(trace.OpOpen, pid, f)
		g.step(time.Duration(g.rng.Intn(120)) * time.Second)
		g.emit(trace.OpClose, pid, f)
	}
	g.exitProc(pid)
}

// findScan sweeps the whole home tree, touching every file — the
// meaningless activity of §4.1 that destroys LRU history.
func (g *Generator) findScan() {
	pid := g.spawn("find")
	g.emit(trace.OpReadDir, pid, home)
	for _, p := range g.projects {
		g.emit(trace.OpReadDir, pid, p.dir)
		for _, f := range p.allFiles() {
			g.emit(trace.OpStat, pid, f)
		}
		for i := range p.sources {
			g.emit(trace.OpStat, pid, p.object(i))
		}
	}
	g.emit(trace.OpReadDir, pid, home+"/archive")
	for _, f := range g.archive {
		g.emit(trace.OpStat, pid, f)
	}
	g.exitProc(pid)
}

// GroundFiles returns every pathname the generator can ever reference,
// so the simulator can pre-create them with role-appropriate sizes.
func (g *Generator) GroundFiles() []string {
	var out []string
	for _, t := range g.tools {
		out = append(out, t)
	}
	out = append(out, g.libs...)
	out = append(out, g.support...)
	out = append(out, g.sysHdrs...)
	out = append(out, g.dotfiles...)
	out = append(out, g.mailbox)
	for i := 0; i < 200; i++ {
		out = append(out, fmt.Sprintf("%s/msg%03d", g.mailDir, i))
	}
	out = append(out, g.archive...)
	for _, p := range g.projects {
		out = append(out, p.allFiles()...)
		for i := range p.sources {
			out = append(out, p.object(i))
		}
		out = append(out, p.binary)
	}
	sort.Strings(out)
	return out
}
