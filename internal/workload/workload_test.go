package workload

import (
	"testing"
	"time"

	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/trace"
)

func TestProfilesMatchTable3Calibration(t *testing.T) {
	profs := Profiles()
	if len(profs) != 9 {
		t.Fatalf("profiles = %d, want 9 machines", len(profs))
	}
	// Spot-check against Table 3 of the paper.
	want := map[string]struct {
		days, discs int
		mean        float64
	}{
		"A": {111, 38, 11.16},
		"F": {252, 184, 9.30},
		"I": {123, 116, 2.36},
	}
	for _, p := range profs {
		w, ok := want[p.Name]
		if !ok {
			continue
		}
		if p.DaysMeasured != w.days || p.Disconnections != w.discs ||
			p.MeanDiscHours != w.mean {
			t.Errorf("profile %s = %d days %d discs mean %g, want %v",
				p.Name, p.DaysMeasured, p.Disconnections, p.MeanDiscHours, w)
		}
	}
	names := map[string]bool{}
	for _, p := range profs {
		if names[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		if p.MedianDiscHours > p.MeanDiscHours {
			t.Errorf("profile %s: median %g > mean %g", p.Name, p.MedianDiscHours, p.MeanDiscHours)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("F"); !ok || p.Name != "F" {
		t.Error("ProfileByName(F) failed")
	}
	if _, ok := ProfileByName("Z"); ok {
		t.Error("ProfileByName(Z) should fail")
	}
}

func TestLightScaling(t *testing.T) {
	p, _ := ProfileByName("F")
	l := p.Light(30)
	if l.DaysMeasured != 30 {
		t.Errorf("days = %d", l.DaysMeasured)
	}
	if l.Disconnections < 15 || l.Disconnections > 30 {
		t.Errorf("scaled disconnections = %d, want ≈22", l.Disconnections)
	}
	if same := p.Light(0); same.DaysMeasured != p.DaysMeasured {
		t.Error("Light(0) should be identity")
	}
	if same := p.Light(999); same.DaysMeasured != p.DaysMeasured {
		t.Error("Light(999) should be identity")
	}
}

func lightGen(t *testing.T, name string, days int, seed int64) (*Generator, *Trace) {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	g := NewGenerator(p.Light(days), seed)
	return g, g.Generate()
}

func TestGenerateBasicShape(t *testing.T) {
	_, tr := lightGen(t, "D", 14, 1)
	if len(tr.Events) < 1000 {
		t.Fatalf("events = %d, want a substantial trace", len(tr.Events))
	}
	if len(tr.Disconnections) < 5 {
		t.Errorf("disconnections = %d, want ≥5 for 14 days of D", len(tr.Disconnections))
	}
	// Sequence numbers are strictly increasing, times non-decreasing.
	var lastSeq uint64
	lastTime := time.Time{}
	counts := map[trace.Op]int{}
	for _, ev := range tr.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not increasing at %d", ev.Seq)
		}
		lastSeq = ev.Seq
		if ev.Time.Before(lastTime) {
			t.Fatalf("time went backwards at seq %d", ev.Seq)
		}
		lastTime = ev.Time
		counts[ev.Op]++
	}
	for _, op := range []trace.Op{trace.OpOpen, trace.OpClose, trace.OpExec,
		trace.OpFork, trace.OpExit, trace.OpStat, trace.OpCreate,
		trace.OpDelete, trace.OpRename, trace.OpSymlink, trace.OpReadDir,
		trace.OpDisconnect, trace.OpReconnect, trace.OpSuspend,
		trace.OpResume} {
		if counts[op] == 0 {
			t.Errorf("no %v events generated", op)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	_, tr1 := lightGen(t, "A", 7, 42)
	_, tr2 := lightGen(t, "A", 7, 42)
	if len(tr1.Events) != len(tr2.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(tr1.Events), len(tr2.Events))
	}
	for i := range tr1.Events {
		if tr1.Events[i].String() != tr2.Events[i].String() {
			t.Fatalf("event %d differs", i)
		}
	}
	_, tr3 := lightGen(t, "A", 7, 43)
	if len(tr1.Events) == len(tr3.Events) {
		same := true
		for i := range tr1.Events {
			if tr1.Events[i].Path != tr3.Events[i].Path {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestDisconnectionsNonOverlapping(t *testing.T) {
	_, tr := lightGen(t, "F", 30, 7)
	for i := 1; i < len(tr.Disconnections); i++ {
		if tr.Disconnections[i].Start.Before(tr.Disconnections[i-1].End) {
			t.Fatalf("disconnections %d and %d overlap", i-1, i)
		}
	}
	for _, d := range tr.Disconnections {
		if d.Duration() < 15*time.Minute {
			t.Errorf("disconnection shorter than 15 min: %v", d.Duration())
		}
		maxDur := Hours(tr.Disconnections[0].Duration().Hours()) // placeholder
		_ = maxDur
	}
}

func TestDisconnectionDurationsCalibrated(t *testing.T) {
	p, _ := ProfileByName("F")
	g := NewGenerator(p, 11)
	tr := g.Generate()
	if len(tr.Disconnections) != p.Disconnections {
		t.Fatalf("disconnections = %d, want %d", len(tr.Disconnections), p.Disconnections)
	}
	var durs []float64
	for _, d := range tr.Disconnections {
		h := d.Duration().Hours()
		if h > p.MaxDiscHours+1e-9 {
			t.Errorf("duration %g exceeds max %g", h, p.MaxDiscHours)
		}
		durs = append(durs, h)
	}
	s := stats.Summarize(durs)
	// Clamping pulls the mean below the raw log-normal mean; accept a
	// broad band around the Table 3 values.
	if s.Mean < p.MeanDiscHours/3 || s.Mean > p.MeanDiscHours*3 {
		t.Errorf("mean duration = %g, want ≈%g", s.Mean, p.MeanDiscHours)
	}
	if s.Median < p.MedianDiscHours/4 || s.Median > p.MedianDiscHours*4 {
		t.Errorf("median duration = %g, want ≈%g", s.Median, p.MedianDiscHours)
	}
}

func TestConnectivityMarkersMatchSchedule(t *testing.T) {
	_, tr := lightGen(t, "D", 10, 3)
	discs, recons := 0, 0
	open := false
	for _, ev := range tr.Events {
		switch ev.Op {
		case trace.OpDisconnect:
			if open {
				t.Fatal("nested disconnect")
			}
			open = true
			discs++
		case trace.OpReconnect:
			if !open {
				t.Fatal("reconnect without disconnect")
			}
			open = false
			recons++
		}
	}
	if discs == 0 {
		t.Fatal("no disconnect markers")
	}
	if discs-recons > 1 {
		t.Errorf("unbalanced markers: %d vs %d", discs, recons)
	}
}

func TestProjectsGroundTruth(t *testing.T) {
	g, _ := lightGen(t, "A", 3, 5)
	projs := g.Projects()
	if len(projs) == 0 {
		t.Fatal("no projects")
	}
	for i, files := range projs {
		if len(files) < 5 {
			t.Errorf("project %d has %d files", i, len(files))
		}
	}
}

func TestFileRoles(t *testing.T) {
	g, _ := lightGen(t, "A", 3, 5)
	if g.FileRole(home+"/proj00/src00.c") != RoleMain {
		t.Error("src00.c not RoleMain")
	}
	if g.FileRole(home+"/proj00/src01.c") != RoleSource {
		t.Error("src01.c not RoleSource")
	}
	if g.FileRole(home+"/proj00/hdr00.h") != RoleHeader {
		t.Error("hdr00.h not RoleHeader")
	}
	if g.FileRole("/usr/bin/cc") != RoleSystem {
		t.Error("cc not RoleSystem")
	}
	if g.FileRole("/nowhere") != RoleOther {
		t.Error("unknown path not RoleOther")
	}
}

func TestInvestigatorRelations(t *testing.T) {
	g, _ := lightGen(t, "A", 3, 5)
	rels := g.InvestigatorRelations(2)
	if len(rels) == 0 {
		t.Fatal("no relations")
	}
	for _, r := range rels {
		if len(r.Files) < 2 {
			t.Errorf("relation with %d files", len(r.Files))
		}
		if r.Strength != 2 {
			t.Errorf("strength = %g", r.Strength)
		}
	}
}

func TestDirSize(t *testing.T) {
	g, _ := lightGen(t, "A", 3, 5)
	if g.DirSize(home) < 2 {
		t.Error("home dir size too small")
	}
	if g.DirSize("/unknown/dir") != 8 {
		t.Error("default dir size wrong")
	}
}

func TestHeavyProfileEventVolume(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy generation")
	}
	_, tr := lightGen(t, "F", 60, 9)
	if len(tr.Events) < 50000 {
		t.Errorf("events for 60 days of F = %d, want ≥50k", len(tr.Events))
	}
}
