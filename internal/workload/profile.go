// Package workload generates synthetic user-behaviour traces calibrated
// to the paper's deployment (nine laptops in a software development
// environment, §5.1.1).
//
// The paper's evaluation rests on structural properties of real
// reference streams, which the generator reproduces explicitly:
//
//   - semantic locality: work happens in edit/compile sessions over one
//     project at a time, so project files are co-referenced;
//   - Zipf-like project popularity with occasional attention shifts —
//     the case where clustering beats LRU (paper §6.1);
//   - directory scanners (find) that touch everything and destroy LRU
//     history (§4.1);
//   - shared libraries referenced by almost every program (§4.2);
//   - interleaved independent streams: mail reading during compilations
//     (§4.7);
//   - temporary compiler files created and renamed (§4.5, §4.8);
//   - critical dot files touched rarely, at login (§4.3);
//   - suspend/resume around idle time and disconnection periods drawn
//     from per-machine distributions calibrated to Table 3.
package workload

import "time"

// Profile describes one simulated machine/user. The nine stock profiles
// are calibrated to the paper's Table 3 (disconnection statistics) and
// the usage levels described in §5.1.1.
type Profile struct {
	// Name is the machine letter (A–I).
	Name string
	// DaysMeasured is the measurement period length.
	DaysMeasured int
	// Disconnections is the number of disconnection periods to draw.
	Disconnections int
	// MeanDiscHours/MedianDiscHours/MaxDiscHours calibrate the
	// log-normal disconnection-duration distribution.
	MeanDiscHours   float64
	MedianDiscHours float64
	MaxDiscHours    float64

	// Projects is the number of distinct projects the user owns.
	Projects int
	// FilesPerProject is the mean number of files per project (actual
	// counts vary ±50%).
	FilesPerProject int
	// SessionsPerDay is the mean number of work sessions on an active
	// day.
	SessionsPerDay float64
	// ActiveHoursPerDay is the mean span of active use per day.
	ActiveHoursPerDay float64
	// AttentionShiftProb is the probability that a session switches to
	// a different project than the previous session.
	AttentionShiftProb float64
	// ZipfS is the project-popularity exponent (larger = more skewed).
	ZipfS float64
	// FindScansPerDay is the mean number of whole-tree scans per day.
	FindScansPerDay float64
	// MailSessionsPerDay is the mean number of mail-reading periods,
	// which interleave with whatever else is running.
	MailSessionsPerDay float64
	// CompileProb is the probability an editing session ends in a
	// compile.
	CompileProb float64
	// BrowseFraction is the fraction of a project's files touched in a
	// typical session.
	BrowseFraction float64
	// IdleDayProb is the probability a day sees no activity at all
	// (weekends, outside commitments — machines B, C, E, H).
	IdleDayProb float64
}

// Hours converts profile hour values to durations.
func Hours(h float64) time.Duration {
	return time.Duration(h * float64(time.Hour))
}

// Profiles returns the nine stock machine profiles, keyed A–I,
// calibrated to Table 3 of the paper: the disconnection counts, mean and
// median durations, and measurement periods are taken directly from the
// table; activity levels follow §5.1.1 (A, B, E only occasionally
// disconnected; B, C, E, H lightly used; F and G heavily used).
func Profiles() []Profile {
	return []Profile{
		{
			Name: "A", DaysMeasured: 111, Disconnections: 38,
			MeanDiscHours: 11.16, MedianDiscHours: 3.24, MaxDiscHours: 71.89,
			Projects: 10, FilesPerProject: 40, SessionsPerDay: 5,
			ActiveHoursPerDay: 6, AttentionShiftProb: 0.15, ZipfS: 1.2,
			FindScansPerDay: 0.3, MailSessionsPerDay: 2, CompileProb: 0.5,
			BrowseFraction: 0.45, IdleDayProb: 0.25,
		},
		{
			Name: "B", DaysMeasured: 79, Disconnections: 10,
			MeanDiscHours: 43.20, MedianDiscHours: 0.57, MaxDiscHours: 404.94,
			Projects: 8, FilesPerProject: 30, SessionsPerDay: 3,
			ActiveHoursPerDay: 4, AttentionShiftProb: 0.12, ZipfS: 1.3,
			FindScansPerDay: 0.2, MailSessionsPerDay: 1, CompileProb: 0.4,
			BrowseFraction: 0.4, IdleDayProb: 0.5,
		},
		{
			Name: "C", DaysMeasured: 113, Disconnections: 75,
			MeanDiscHours: 9.94, MedianDiscHours: 1.12, MaxDiscHours: 348.20,
			Projects: 6, FilesPerProject: 25, SessionsPerDay: 2,
			ActiveHoursPerDay: 3, AttentionShiftProb: 0.1, ZipfS: 1.4,
			FindScansPerDay: 0.1, MailSessionsPerDay: 1, CompileProb: 0.3,
			BrowseFraction: 0.35, IdleDayProb: 0.6,
		},
		{
			Name: "D", DaysMeasured: 118, Disconnections: 90,
			MeanDiscHours: 3.01, MedianDiscHours: 1.38, MaxDiscHours: 26.50,
			Projects: 12, FilesPerProject: 45, SessionsPerDay: 6,
			ActiveHoursPerDay: 7, AttentionShiftProb: 0.18, ZipfS: 1.2,
			FindScansPerDay: 0.4, MailSessionsPerDay: 3, CompileProb: 0.5,
			BrowseFraction: 0.5, IdleDayProb: 0.2,
		},
		{
			Name: "E", DaysMeasured: 71, Disconnections: 25,
			MeanDiscHours: 1.87, MedianDiscHours: 0.81, MaxDiscHours: 12.08,
			Projects: 6, FilesPerProject: 25, SessionsPerDay: 2,
			ActiveHoursPerDay: 3, AttentionShiftProb: 0.1, ZipfS: 1.4,
			FindScansPerDay: 0.1, MailSessionsPerDay: 1, CompileProb: 0.35,
			BrowseFraction: 0.35, IdleDayProb: 0.55,
		},
		{
			Name: "F", DaysMeasured: 252, Disconnections: 184,
			MeanDiscHours: 9.30, MedianDiscHours: 2.00, MaxDiscHours: 90.62,
			Projects: 18, FilesPerProject: 80, SessionsPerDay: 9,
			ActiveHoursPerDay: 9, AttentionShiftProb: 0.22, ZipfS: 1.0,
			FindScansPerDay: 0.8, MailSessionsPerDay: 4, CompileProb: 0.6,
			BrowseFraction: 0.55, IdleDayProb: 0.1,
		},
		{
			Name: "G", DaysMeasured: 132, Disconnections: 107,
			MeanDiscHours: 8.06, MedianDiscHours: 1.47, MaxDiscHours: 390.60,
			Projects: 16, FilesPerProject: 70, SessionsPerDay: 10,
			ActiveHoursPerDay: 9, AttentionShiftProb: 0.2, ZipfS: 1.1,
			FindScansPerDay: 1.0, MailSessionsPerDay: 4, CompileProb: 0.6,
			BrowseFraction: 0.5, IdleDayProb: 0.1,
		},
		{
			Name: "H", DaysMeasured: 113, Disconnections: 75,
			MeanDiscHours: 10.17, MedianDiscHours: 1.12, MaxDiscHours: 348.20,
			Projects: 6, FilesPerProject: 25, SessionsPerDay: 2,
			ActiveHoursPerDay: 3, AttentionShiftProb: 0.1, ZipfS: 1.4,
			FindScansPerDay: 0.15, MailSessionsPerDay: 1, CompileProb: 0.3,
			BrowseFraction: 0.35, IdleDayProb: 0.6,
		},
		{
			Name: "I", DaysMeasured: 123, Disconnections: 116,
			MeanDiscHours: 2.36, MedianDiscHours: 0.78, MaxDiscHours: 27.68,
			Projects: 10, FilesPerProject: 40, SessionsPerDay: 5,
			ActiveHoursPerDay: 6, AttentionShiftProb: 0.15, ZipfS: 1.2,
			FindScansPerDay: 0.3, MailSessionsPerDay: 2, CompileProb: 0.45,
			BrowseFraction: 0.45, IdleDayProb: 0.25,
		},
	}
}

// ProfileByName returns the stock profile with the given name and
// whether it exists.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Light returns a scaled-down copy of the profile for fast tests and
// examples: the measured period is clamped to days and activity rates
// are preserved.
func (p Profile) Light(days int) Profile {
	if days <= 0 || days >= p.DaysMeasured {
		return p
	}
	scale := float64(days) / float64(p.DaysMeasured)
	q := p
	q.DaysMeasured = days
	q.Disconnections = int(float64(p.Disconnections)*scale + 0.5)
	if q.Disconnections < 1 {
		q.Disconnections = 1
	}
	return q
}
