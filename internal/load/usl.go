// Universal Scaling Law fitting: turn the per-step (concurrency,
// throughput) measurements of a load ramp into a capacity model.
//
// Gunther's USL models throughput at concurrency N as
//
//	X(N) = λN / (1 + σ(N−1) + κN(N−1))
//
// λ is the ideal per-unit throughput, σ the contention (serialization)
// penalty, and κ the coherency (crosstalk) penalty. σ alone bends the
// curve toward an asymptote λ/σ (Amdahl); κ > 0 makes it retrograde —
// past N* = sqrt((1−σ)/κ) adding load *reduces* throughput, which is
// exactly the knee a capacity gate needs to know about before
// production finds it.
package load

import (
	"errors"
	"fmt"
	"math"
)

// USL is a fitted Universal Scaling Law curve.
type USL struct {
	Lambda float64 `json:"lambda"` // ideal throughput per unit of concurrency
	Sigma  float64 `json:"sigma"`  // contention coefficient
	Kappa  float64 `json:"kappa"`  // coherency coefficient

	// PeakN is the concurrency where the model peaks; 0 means the fit
	// found no retrograde point (κ ≈ 0) and the curve only saturates.
	PeakN float64 `json:"peak_n,omitempty"`
	// PeakX is the predicted capacity ceiling in the measured unit
	// (req/s here): the throughput at PeakN, or the λ/σ asymptote when
	// there is no retrograde point.
	PeakX float64 `json:"peak_rps"`
	// R2 is the coefficient of determination of the fit (1 = perfect).
	R2 float64 `json:"r2"`
}

// Throughput evaluates the model at concurrency n.
func (u USL) Throughput(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return u.Lambda * n / (1 + u.Sigma*(n-1) + u.Kappa*n*(n-1))
}

func (u USL) String() string {
	s := fmt.Sprintf("λ=%.4g σ=%.4g κ=%.4g ceiling=%.4g rps", u.Lambda, u.Sigma, u.Kappa, u.PeakX)
	if u.PeakN > 0 {
		s += fmt.Sprintf(" at N≈%.1f", u.PeakN)
	}
	return s + fmt.Sprintf(" (R²=%.3f)", u.R2)
}

// kappaFloor is the smallest coherency coefficient treated as a real
// retrograde term; below it the peak would land at absurd concurrency
// from pure noise.
const kappaFloor = 1e-9

// uslShape is the model with λ divided out: X = λ · shape(N).
func uslShape(n, sigma, kappa float64) float64 {
	return n / (1 + sigma*(n-1) + kappa*n*(n-1))
}

// linearSeed solves Gunther's linearization exactly: the model
// rearranges to N/X = a + b(N−1) + cN(N−1) with a=1/λ, b=σ/λ, c=κ/λ,
// an ordinary least-squares problem in three coefficients. Points with
// zero throughput carry no information in this form and are skipped.
func linearSeed(ns, xs []float64) (sigma, kappa float64, ok bool) {
	// Normal equations A·[a b c]ᵀ = v over features f = [1, N−1, N(N−1)].
	var A [3][3]float64
	var v [3]float64
	pts := 0
	for i := range ns {
		if xs[i] <= 0 {
			continue
		}
		pts++
		f := [3]float64{1, ns[i] - 1, ns[i] * (ns[i] - 1)}
		y := ns[i] / xs[i]
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				A[r][c] += f[r] * f[c]
			}
			v[r] += f[r] * y
		}
	}
	if pts < 3 {
		return 0, 0, false
	}
	// Gaussian elimination with partial pivoting on the 3×3 system.
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-12 {
			return 0, 0, false
		}
		A[col], A[piv] = A[piv], A[col]
		v[col], v[piv] = v[piv], v[col]
		for r := col + 1; r < 3; r++ {
			m := A[r][col] / A[col][col]
			for c := col; c < 3; c++ {
				A[r][c] -= m * A[col][c]
			}
			v[r] -= m * v[col]
		}
	}
	var coef [3]float64
	for r := 2; r >= 0; r-- {
		s := v[r]
		for c := r + 1; c < 3; c++ {
			s -= A[r][c] * coef[c]
		}
		coef[r] = s / A[r][r]
	}
	a, b, c := coef[0], coef[1], coef[2]
	if a <= 0 || math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
		return 0, 0, false
	}
	return b / a, c / a, true
}

// FitUSL fits the USL to measured (concurrency, throughput) points by
// least squares. σ and κ are found with a deterministic
// multi-resolution grid search (the surface is smooth and
// low-dimensional; no random restarts, so the same measurements always
// produce the same fit); for fixed (σ, κ) the optimal λ is closed-form
// because X is linear in it. Needs at least three points with distinct
// concurrency ≥ 1 and some nonzero throughput.
//
// Points with concurrency below 1 are discarded: the model's domain is
// N ≥ 1 (below it the denominator dips under 1 and any σ, κ > 0 turn
// the curve superlinear), and a mostly-idle server — less than one
// request in flight on average — carries no contention signal anyway.
// Feeding such points to the fitter produces high-R² curves whose
// "ceiling" sits below the measured peak. If the whole ramp stayed
// under concurrency 1 the system was never pushed: ramp harder.
func FitUSL(ns, xs []float64) (USL, error) {
	if len(ns) != len(xs) {
		return USL{}, errors.New("usl: mismatched series lengths")
	}
	var pn, px []float64
	distinct := map[float64]bool{}
	anyX := false
	for i := range ns {
		if ns[i] < 1 || math.IsNaN(ns[i]) || math.IsNaN(xs[i]) || xs[i] < 0 {
			continue
		}
		pn, px = append(pn, ns[i]), append(px, xs[i])
		distinct[ns[i]] = true
		anyX = anyX || xs[i] > 0
	}
	if len(distinct) < 3 || !anyX {
		return USL{}, fmt.Errorf("usl: need ≥3 distinct concurrency points ≥1 with throughput, have %d (sub-unit concurrency means the target was never pushed — ramp harder)", len(distinct))
	}

	// sse evaluates the residual for (σ, κ) with the closed-form λ.
	sse := func(sigma, kappa float64) (float64, float64) {
		var num, den float64
		for i := range pn {
			f := uslShape(pn[i], sigma, kappa)
			num += px[i] * f
			den += f * f
		}
		if den == 0 {
			return 0, math.Inf(1)
		}
		lambda := num / den
		if lambda <= 0 {
			return 0, math.Inf(1)
		}
		var s float64
		for i := range pn {
			d := px[i] - lambda*uslShape(pn[i], sigma, kappa)
			s += d * d
		}
		return lambda, s
	}

	// Seed with Gunther's linear transform: N/X is linear in
	// [1, N−1, N(N−1)] with coefficients [1/λ, σ/λ, κ/λ], so ordinary
	// least squares lands at (or next to) the optimum in one shot. The
	// grid refinement below then polishes against the true SSE — the
	// (σ,κ) surface is a narrow diagonal valley, and a greedy
	// multi-resolution grid alone shrinks its box off the valley floor
	// and converges to a wall.
	bestSigma, bestKappa := 0.0, 0.0
	bestLambda, bestSSE := 0.0, math.Inf(1)
	if sg, kp, ok := linearSeed(pn, px); ok {
		sg = math.Min(math.Max(sg, 0), 0.999)
		kp = math.Min(math.Max(kp, 0), 1)
		if lambda, s := sse(sg, kp); s < bestSSE {
			bestSigma, bestKappa, bestLambda, bestSSE = sg, kp, lambda, s
		}
	}
	sigLo, sigHi := 0.0, 0.999
	kapLo, kapHi := 0.0, 1.0
	const gridN = 40
	for round := 0; round < 6; round++ {
		sigStep := (sigHi - sigLo) / gridN
		kapStep := (kapHi - kapLo) / gridN
		for i := 0; i <= gridN; i++ {
			for j := 0; j <= gridN; j++ {
				sigma := sigLo + float64(i)*sigStep
				kappa := kapLo + float64(j)*kapStep
				if lambda, s := sse(sigma, kappa); s < bestSSE {
					bestSigma, bestKappa, bestLambda, bestSSE = sigma, kappa, lambda, s
				}
			}
		}
		// Shrink the box around the winner for the next round.
		sigSpan := (sigHi - sigLo) / 8
		kapSpan := (kapHi - kapLo) / 8
		sigLo, sigHi = math.Max(0, bestSigma-sigSpan), math.Min(0.999, bestSigma+sigSpan)
		kapLo, kapHi = math.Max(0, bestKappa-kapSpan), math.Min(1, bestKappa+kapSpan)
	}

	u := USL{Lambda: bestLambda, Sigma: bestSigma, Kappa: bestKappa}
	if u.Kappa > kappaFloor {
		n := math.Sqrt((1 - u.Sigma) / u.Kappa)
		if n < 1 {
			n = 1
		}
		u.PeakN = n
		u.PeakX = u.Throughput(n)
	} else if u.Sigma > 0 {
		u.PeakX = u.Lambda / u.Sigma // Amdahl asymptote, no retrograde knee
	} else {
		// Linear within the measured range: the honest ceiling estimate
		// is the model at the largest observed concurrency.
		maxN := 0.0
		for _, n := range pn {
			maxN = math.Max(maxN, n)
		}
		u.PeakX = u.Throughput(maxN)
	}

	// R² against the mean.
	var mean float64
	for _, x := range px {
		mean += x
	}
	mean /= float64(len(px))
	var tot float64
	for _, x := range px {
		tot += (x - mean) * (x - mean)
	}
	if tot > 0 {
		u.R2 = 1 - bestSSE/tot
	} else {
		u.R2 = 1
	}
	return u, nil
}
