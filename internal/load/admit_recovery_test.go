package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fmg/seer/internal/admit"
	"github.com/fmg/seer/internal/obs"
)

// TestLimiterEWMARecoveryUnderLoad drives an admit.Limiter with the
// closed-loop generator through a slow→fast service transition. Under
// sustained overload the latency EWMA trips MaxLatency and the limiter
// sheds; once the service is fast again the EWMA must recover — the
// limiter always admits a lone in-flight request precisely so fresh
// samples keep flowing while everything else is refused — and the shed
// rate must return to ~zero. A limiter that stayed latched open-circuit
// after the backend healed would turn every brownout permanent.
func TestLimiterEWMARecoveryUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timed integration")
	}
	lim := admit.New("test", obs.NewRegistry(), nil)
	lim.SetLimits(admit.Limits{MaxLatency: 5 * time.Millisecond})

	var delay atomic.Int64
	delay.Store(int64(40 * time.Millisecond)) // 8× over MaxLatency
	srv := httptest.NewServer(lim.WrapFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Duration(delay.Load()))
		w.Write([]byte("ok\n"))
	}))
	defer srv.Close()

	opts := Options{
		Target:   srv.URL,
		Clients:  12,
		Seed:     3,
		Mix:      Mix{Plan: 1}, // op type is irrelevant; one handler serves all
		StartRPS: 150,
		StepRPS:  0.001, // hold the offered rate flat across phases
		MaxSteps: 2,
		StepDur:  700 * time.Millisecond,
		// The overload detector must not stop the run: the whole point
		// is to keep offering load through the shedding phase.
		FailThreshold:     1.1,
		OverloadTolerance: 1000,
		Timeout:           5 * time.Second,
		Logf:              t.Logf,
	}

	// Phase 1: sustained overload. The EWMA climbs past MaxLatency and
	// the limiter starts refusing with 429.
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	slow := res.Steps[len(res.Steps)-1]
	if slow.Shed == 0 {
		t.Fatalf("no sheds under 8× latency overload: %+v", res.Steps)
	}
	if ewma := lim.EWMALatency(); ewma < 5*time.Millisecond {
		t.Fatalf("EWMA %v did not climb past MaxLatency under overload", ewma)
	}

	// Phase 2: the backend heals. The lone-in-flight carve-out keeps
	// feeding fast samples into the EWMA, which decays below the
	// threshold; a second identical ramp must then run nearly shed-free.
	delay.Store(0)
	deadline := time.Now().Add(10 * time.Second)
	for lim.EWMALatency() >= 5*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatalf("EWMA stuck at %v after backend healed", lim.EWMALatency())
		}
		// A trickle of probes — the EWMA only moves on completed
		// requests, and only the lone in-flight one is admitted.
		resp, err := http.Get(srv.URL + "/plan")
		if err == nil {
			resp.Body.Close()
		}
		time.Sleep(5 * time.Millisecond)
	}

	res2, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	healed := res2.Steps[len(res2.Steps)-1]
	if healed.OK == 0 {
		t.Fatalf("no requests admitted after recovery: %+v", res2.Steps)
	}
	if healed.FailureRate > 0.05 {
		t.Errorf("limiter still shedding %.0f%% after recovery: %+v",
			healed.FailureRate*100, healed)
	}
	if slowRate, healedRate := slow.FailureRate, healed.FailureRate; healedRate >= slowRate {
		t.Errorf("recovery did not reduce shed rate: %.2f → %.2f", slowRate, healedRate)
	}
}
