// Bridging harness results into benchcmp baselines: a load ramp
// collapses to two capacity entries per target — the measured peak and
// the USL-predicted ceiling — so capacity regressions gate CI exactly
// the way allocation regressions already do.
package load

import (
	"fmt"

	"github.com/fmg/seer/internal/benchcmp"
)

// Benchmarks renders the run as benchcmp entries under prefix (e.g.
// "Load" or "Load/shards4"):
//
//   - {prefix}/peak_rps — measured peak throughput (RPS, higher is
//     better), with the p99 latency at peak in NsPerOp and the peak
//     step's failure rate in ErrRate for reviewer context.
//   - {prefix}/usl_ceiling_rps — the fitted capacity ceiling; only
//     emitted when the ramp produced a trustworthy fit (R² ≥ 0.9 — a
//     3-step smoke ramp fits garbage, and a garbage ceiling in the
//     baseline would gate later runs on noise).
//   - {prefix}/step{i} — each step's throughput, p99, and failure
//     rate. A shorter re-run (earlier overload stop) simply omits the
//     tail entries, which the baseline diff ignores.
func (r *Result) Benchmarks(prefix string) []benchcmp.Benchmark {
	if len(r.Steps) == 0 {
		return nil
	}
	peak := r.Steps[r.PeakStep]
	out := []benchcmp.Benchmark{{
		Name:    prefix + "/peak_rps",
		NsPerOp: float64(peak.P99),
		RPS:     r.PeakRPS,
		ErrRate: peak.FailureRate,
	}}
	if r.Fit != nil && r.Fit.R2 >= 0.9 {
		out = append(out, benchcmp.Benchmark{
			Name: prefix + "/usl_ceiling_rps",
			RPS:  r.Fit.PeakX,
		})
	}
	for i, s := range r.Steps {
		out = append(out, benchcmp.Benchmark{
			Name:    fmt.Sprintf("%s/step%d", prefix, i),
			NsPerOp: float64(s.P99),
			RPS:     s.Throughput,
			ErrRate: s.FailureRate,
		})
	}
	return out
}

// MergeInto adds the run's entries to rep, replacing same-named
// entries from an earlier run (a seerload invocation measuring plain
// and sharded targets merges both into one report).
func (r *Result) MergeInto(rep *benchcmp.Report, prefix string) {
	for _, b := range r.Benchmarks(prefix) {
		if prev := rep.Find(b.Name); prev != nil {
			*prev = b
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
}
