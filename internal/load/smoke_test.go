package load

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/fmg/seer/internal/benchcmp"
	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/shard"
	"github.com/fmg/seer/internal/supervise"

	"net/http/httptest"
)

// TestLoadSmoke is the in-process end-to-end: a real 4-shard Manager
// behind a real Gateway takes a short closed-loop ramp of mixed
// /plan + /hoard + /miss traffic (with event seeding through /events),
// and the run flows all the way into benchcmp entries the way `make
// load-smoke` does against a live daemon.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rt := config.DefaultRuntime()
	rt.Daemon.QueueCap = 512
	rt.Daemon.QueueBlockMS = 10
	rt.Admit.PlanMaxInFlight = 64
	mgr := shard.NewManager(ctx, shard.ManagerConfig{
		Shards:  4,
		Dir:     t.TempDir(),
		Runtime: rt,
		Seed:    1,
		Supervisor: supervise.Config{
			Backoff:    supervise.Backoff{Initial: 2 * time.Millisecond, Max: 20 * time.Millisecond, Factor: 2, Jitter: 0.1},
			BreakAfter: 50,
			Window:     time.Minute,
		},
		CheckpointEvery: time.Hour,
	})
	defer mgr.Close()
	gw := shard.NewGateway(mgr, shard.Policy{
		MaxAttempts: 20,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    20 * time.Millisecond,
		Timeout:     10 * time.Second,
	})
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	res, err := Run(ctx, Options{
		Target:     srv.URL,
		Clients:    16,
		Users:      8,
		Seed:       7,
		StartRPS:   50,
		StepRPS:    50,
		MaxSteps:   3,
		StepDur:    400 * time.Millisecond,
		Timeout:    8 * time.Second,
		SeedEvents: 50,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no steps measured")
	}
	var ok int64
	for _, s := range res.Steps {
		ok += s.OK
	}
	if ok == 0 {
		t.Fatalf("no successful requests against a healthy gateway: %+v", res.Steps)
	}
	if res.PeakRPS <= 0 {
		t.Fatalf("no peak throughput: %+v", res)
	}

	// The benchcmp flow: emit, round-trip through JSON, diff against a
	// baseline that predates the entries — additions, not failures.
	rep := &benchcmp.Report{}
	res.MergeInto(rep, "LoadSmoke")
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := benchcmp.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Find("LoadSmoke/peak_rps"); got == nil || got.RPS != res.PeakRPS {
		t.Fatalf("peak entry lost in round trip: %+v", got)
	}
	regs, adds := benchcmp.Diff(&benchcmp.Report{}, back, benchcmp.Tolerances{})
	if len(regs) != 0 {
		t.Fatalf("empty baseline produced regressions: %v", regs)
	}
	if len(adds) != len(back.Benchmarks) {
		t.Fatalf("additions = %d, want all %d entries", len(adds), len(back.Benchmarks))
	}
}
