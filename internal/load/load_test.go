package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fmg/seer/internal/benchcmp"
)

// fakeTarget is a controllable seerd stand-in: per-status counters, a
// switchable artificial latency, and an optional concurrency gate that
// sheds with 429 beyond a limit — enough to drive every harness path
// without a real daemon.
type fakeTarget struct {
	delay     atomic.Int64 // artificial service time, ns
	limit     atomic.Int64 // max in-flight before 429; 0 = unlimited
	shedFirst atomic.Int64 // 429 the first N load requests (count-based, timing-free)
	inflight  atomic.Int64
	requests  atomic.Int64
	events    atomic.Int64
	noEvents  bool // 404 on /events like plain seerd
}

func (f *fakeTarget) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/events") {
			if f.noEvents {
				http.NotFound(w, r)
				return
			}
			f.events.Add(1)
			w.Write([]byte("ok\n"))
			return
		}
		n := f.requests.Add(1)
		if n <= f.shedFirst.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		if lim := f.limit.Load(); lim > 0 && f.inflight.Add(1) > lim {
			f.inflight.Add(-1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		} else if lim > 0 {
			defer f.inflight.Add(-1)
		}
		if d := f.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		w.Write([]byte("ok\n"))
	})
}

func testOpts(target string) Options {
	return Options{
		Target:   target,
		Clients:  8,
		Seed:     42,
		StartRPS: 200,
		StepRPS:  200,
		MaxSteps: 3,
		StepDur:  300 * time.Millisecond,
		Timeout:  2 * time.Second,
		Logf:     func(string, ...any) {},
	}
}

func TestRunRampCollectsSteps(t *testing.T) {
	ft := &fakeTarget{}
	srv := httptest.NewServer(ft.handler())
	defer srv.Close()

	res, err := Run(context.Background(), testOpts(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(res.Steps))
	}
	if res.Overloaded {
		t.Error("healthy target flagged overloaded")
	}
	for i, s := range res.Steps {
		if s.Sent == 0 || s.OK == 0 {
			t.Errorf("step %d sent nothing: %+v", i, s)
		}
		if s.Fail != 0 || s.Shed != 0 {
			t.Errorf("step %d failures against healthy target: %+v", i, s)
		}
		if s.OK > 0 && (s.P50 <= 0 || s.P99 < s.P50) {
			t.Errorf("step %d bad quantiles: p50=%v p99=%v", i, s.P50, s.P99)
		}
		if s.Concurrency <= 0 {
			t.Errorf("step %d no Little's-law estimate: %+v", i, s)
		}
	}
	// Offered load must actually ramp.
	if res.Steps[2].Sent <= res.Steps[0].Sent {
		t.Errorf("no ramp: step0 sent %d, step2 sent %d", res.Steps[0].Sent, res.Steps[2].Sent)
	}
	if res.PeakRPS <= 0 {
		t.Error("no peak recorded")
	}
}

func TestRunStopsOnSustainedOverload(t *testing.T) {
	ft := &fakeTarget{}
	ft.limit.Store(1)                            // nearly everything sheds
	ft.delay.Store(int64(20 * time.Millisecond)) // holds the one slot busy
	srv := httptest.NewServer(ft.handler())
	defer srv.Close()

	opts := testOpts(srv.URL)
	opts.MaxSteps = 10
	opts.FailThreshold = 0.3
	opts.OverloadTolerance = 2
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overloaded {
		t.Fatalf("sustained sheds not detected as overload: %+v", res.Steps)
	}
	if len(res.Steps) != 2 {
		t.Errorf("ramp ran %d steps, want stop after tolerance of 2", len(res.Steps))
	}
	for i, s := range res.Steps {
		if !s.Overloaded {
			t.Errorf("step %d not marked overloaded: failure rate %.2f", i, s.FailureRate)
		}
		if s.Shed == 0 {
			t.Errorf("step %d recorded no sheds: %+v", i, s)
		}
	}
}

func TestRunToleratesTransientSpike(t *testing.T) {
	// One overloaded step below tolerance must not stop the ramp. The
	// gate is count-based: shedding every one of the first ~step-worth
	// of requests guarantees step 0 is overloaded and later steps see a
	// negligible tail of sheds, with no wall-clock coupling.
	ft := &fakeTarget{}
	ft.shedFirst.Store(55) // step 0 offers ~60 requests at 200 rps × 300ms
	srv := httptest.NewServer(ft.handler())
	defer srv.Close()

	opts := testOpts(srv.URL)
	opts.MaxSteps = 3
	opts.OverloadTolerance = 2
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Steps[0].Overloaded {
		t.Fatalf("spike step not overloaded: %+v", res.Steps[0])
	}
	if res.Overloaded {
		t.Errorf("transient spike stopped the ramp: %+v", res.Steps)
	}
	if len(res.Steps) != 3 {
		t.Errorf("steps = %d, want the full 3", len(res.Steps))
	}
}

func TestRunSeedsEventsAndSkipsWhenUnsupported(t *testing.T) {
	ft := &fakeTarget{}
	srv := httptest.NewServer(ft.handler())
	defer srv.Close()

	opts := testOpts(srv.URL)
	opts.MaxSteps = 1
	opts.SeedEvents = 10
	opts.Users = 4
	if _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if got := ft.events.Load(); got != 4 {
		t.Errorf("event seeding posted %d times, want one per user (4)", got)
	}

	// Plain seerd has no /events: setup logs and proceeds.
	ft2 := &fakeTarget{noEvents: true}
	srv2 := httptest.NewServer(ft2.handler())
	defer srv2.Close()
	opts2 := testOpts(srv2.URL)
	opts2.MaxSteps = 1
	opts2.SeedEvents = 10
	res, err := Run(context.Background(), opts2)
	if err != nil {
		t.Fatalf("missing /events endpoint must not fail the run: %v", err)
	}
	if len(res.Steps) != 1 || res.Steps[0].OK == 0 {
		t.Errorf("ramp did not run after skipped seeding: %+v", res.Steps)
	}
}

func TestRunDeterministicOfferedLoad(t *testing.T) {
	// Same seed, same target behavior → identical request counts (the
	// interarrival schedule is fully derived from the seed). Zero-delay
	// local responses make wall-clock jitter negligible next to the
	// exponential gaps.
	ft := &fakeTarget{}
	srv := httptest.NewServer(ft.handler())
	defer srv.Close()
	opts := testOpts(srv.URL)
	opts.MaxSteps = 1

	r1, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := float64(r1.Steps[0].Sent), float64(r2.Steps[0].Sent)
	if a == 0 || b/a < 0.8 || b/a > 1.25 {
		t.Errorf("seeded runs diverged: %v vs %v requests", a, b)
	}
}

func TestRunFitsUSLOnRamp(t *testing.T) {
	// A slow server the ramp actually saturates: 30ms service time on
	// 16 closed-loop clients caps throughput near 16/0.03 ≈ 530 req/s,
	// so the steps sweep Little's-law concurrency from ~3 up to ~16 —
	// the ≥1 regime the fitter requires.
	ft := &fakeTarget{}
	ft.delay.Store(int64(30 * time.Millisecond))
	srv := httptest.NewServer(ft.handler())
	defer srv.Close()

	opts := testOpts(srv.URL)
	opts.Clients = 16
	opts.StartRPS = 100
	opts.StepRPS = 150
	opts.MaxSteps = 6
	opts.StepDur = 300 * time.Millisecond
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit == nil {
		t.Fatalf("no USL fit from a %d-step ramp", len(res.Steps))
	}
	if res.Fit.PeakX <= 0 {
		t.Errorf("fit has no ceiling: %s", res.Fit)
	}
}

func TestResultBenchmarks(t *testing.T) {
	res := &Result{
		Steps: []StepResult{
			{Throughput: 100, P99: 5 * time.Millisecond, FailureRate: 0.01},
			{Throughput: 250, P99: 9 * time.Millisecond, FailureRate: 0.05},
		},
		PeakRPS:  250,
		PeakStep: 1,
		Fit:      &USL{Lambda: 3, Sigma: 0.1, Kappa: 0, PeakX: 300, R2: 0.97},
	}
	bs := res.Benchmarks("Load")
	if len(bs) != 4 { // peak + ceiling + one per step
		t.Fatalf("benchmarks = %+v", bs)
	}
	if bs[0].Name != "Load/peak_rps" || bs[0].RPS != 250 ||
		bs[0].NsPerOp != float64(9*time.Millisecond) || bs[0].ErrRate != 0.05 {
		t.Errorf("peak entry = %+v", bs[0])
	}
	if bs[1].Name != "Load/usl_ceiling_rps" || bs[1].RPS != 300 {
		t.Errorf("ceiling entry = %+v", bs[1])
	}
	if bs[2].Name != "Load/step0" || bs[2].RPS != 100 ||
		bs[3].Name != "Load/step1" || bs[3].RPS != 250 || bs[3].ErrRate != 0.05 {
		t.Errorf("step entries = %+v", bs[2:])
	}

	// MergeInto replaces same-named entries and appends new ones.
	rep := &benchcmp.Report{Benchmarks: []benchcmp.Benchmark{
		{Name: "Load/peak_rps", RPS: 1},
		{Name: "Other", NsPerOp: 5},
	}}
	res.MergeInto(rep, "Load")
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("merged report = %+v", rep.Benchmarks)
	}
	if got := rep.Find("Load/peak_rps"); got.RPS != 250 {
		t.Errorf("merge did not replace stale entry: %+v", got)
	}

	// A low-confidence fit must not put a ceiling in the baseline.
	res.Fit.R2 = 0.4
	for _, b := range res.Benchmarks("Load") {
		if b.Name == "Load/usl_ceiling_rps" {
			t.Errorf("R²=0.4 fit emitted a ceiling entry: %+v", b)
		}
	}
}

func TestRunValidatesOptions(t *testing.T) {
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Error("empty target accepted")
	}
	opts := testOpts("http://127.0.0.1:1") // nothing listens on port 1
	opts.Mix = Mix{Sync: 1}                // sync-only mix with no Rumor → empty table
	if _, err := Run(context.Background(), opts); err == nil {
		t.Error("empty effective op mix accepted")
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	ft := &fakeTarget{}
	srv := httptest.NewServer(ft.handler())
	defer srv.Close()
	opts := testOpts(srv.URL)
	opts.MaxSteps = 100
	opts.StepDur = 10 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, opts)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	// Either outcome is fine (a context error or a partial result), but
	// not a hang and not a fabricated full ramp.
	if err == nil && len(res.Steps) > 1 {
		t.Errorf("cancelled run claims %d steps", len(res.Steps))
	}
}
