// Package load is SEER's closed-loop load harness: a pool of simulated
// clients fires Poisson-interarrival /miss, /plan, /hoard, and
// rumor-sync traffic at a live seerd (single-tenant or sharded
// gateway) and rumord, ramps the offered rate in steps, and records
// per-step throughput, latency quantiles, and error/shed rates. A
// step whose failure rate stays above a threshold for a tolerance
// window marks the system overloaded and stops the ramp (the
// vhive-loader idiom); the measurements then feed a Universal Scaling
// Law fit (usl.go) that predicts the capacity ceiling, and the summary
// is emitted as benchcmp entries so capacity regressions gate CI like
// allocation regressions do.
//
// "Closed loop" is meant per client: each simulated client draws an
// exponential interarrival gap and then issues its request
// synchronously, so a saturated server slows its own offered load the
// way real clients do — measured throughput degrades gracefully
// instead of queueing without bound inside the harness.
package load

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/fmg/seer/internal/obs"
)

// Mix weights the operation types. Zero-valued mixes get DefaultMix;
// Sync weight is ignored unless Options.Rumor is set.
type Mix struct {
	Plan  int `json:"plan"`
	Hoard int `json:"hoard"`
	Miss  int `json:"miss"`
	Sync  int `json:"sync"`
}

// DefaultMix approximates the daemon's real request shape: misses
// dominate (every cache fault reports one), plans and hoards are
// periodic, sync rides along when a replication master is present.
var DefaultMix = Mix{Plan: 2, Hoard: 1, Miss: 5, Sync: 2}

// Options configures one harness run.
type Options struct {
	// Target is the seerd base URL (single-tenant daemon or sharded
	// gateway — every request carries ?user=, which plain seerd
	// ignores and the gateway routes on).
	Target string
	// Rumor is the replication base URL mounting the /rumor/ wire
	// protocol (rumord, or seerd -rumor). Empty disables sync traffic.
	Rumor string

	// Clients is the number of concurrent simulated clients.
	Clients int
	// Users is the number of distinct user identities spread over the
	// clients (defaults to Clients). Fewer users than clients models
	// several devices per user hitting the same shard.
	Users int
	// Seed makes the whole run reproducible: interarrival gaps, op
	// choices, and paths all derive from it.
	Seed int64
	// Mix weights the op types.
	Mix Mix

	// StartRPS is the offered load of the first step; StepRPS is added
	// for each further step, up to MaxSteps steps of StepDur each.
	StartRPS float64
	StepRPS  float64
	MaxSteps int
	StepDur  time.Duration

	// FailThreshold is the per-step failure-rate (errors + timeouts;
	// 429 sheds count too — shed capacity is capacity the user did not
	// get) above which the step is overloaded. OverloadTolerance is how
	// many consecutive overloaded steps stop the ramp.
	FailThreshold     float64
	OverloadTolerance int

	// Timeout bounds one request; a request exceeding it is a failure.
	Timeout time.Duration

	// SeedEvents, when > 0, posts that many synthetic strace events per
	// user through POST /events before the ramp so plans have something
	// to chew on. Ignored (with a log line) when the target has no
	// /events endpoint — plain seerd learns from its own strace tail.
	SeedEvents int
	// SyncFiles is the size of the replicated-file id space sync ops
	// draw from (created on the master during setup).
	SyncFiles int

	// Logf, when non-nil, receives one line per step (and setup notes).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Clients <= 0 {
		o.Clients = 64
	}
	if o.Users <= 0 {
		o.Users = o.Clients
	}
	if o.Mix == (Mix{}) {
		o.Mix = DefaultMix
	}
	if o.StartRPS <= 0 {
		o.StartRPS = 50
	}
	if o.StepRPS <= 0 {
		o.StepRPS = o.StartRPS
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 8
	}
	if o.StepDur <= 0 {
		o.StepDur = 5 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 0.3 // the vhive loader's overload threshold
	}
	if o.OverloadTolerance <= 0 {
		o.OverloadTolerance = 2
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.SyncFiles <= 0 {
		o.SyncFiles = 64
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// StepResult is one load step's measurements.
type StepResult struct {
	// TargetRPS is the offered rate the step aimed for; OfferedRPS is
	// what the closed-loop clients actually issued (they fall behind a
	// saturated server); Throughput is completed-OK per second.
	TargetRPS  float64 `json:"target_rps"`
	OfferedRPS float64 `json:"offered_rps"`
	Throughput float64 `json:"throughput_rps"`

	Sent int64 `json:"sent"`
	OK   int64 `json:"ok"`
	Shed int64 `json:"shed"` // 429 admission sheds
	Fail int64 `json:"fail"` // transport errors, timeouts, non-200/429

	// Latency quantiles over successful requests.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	// MeanLatency is the mean successful-request latency; Concurrency
	// is the Little's-law estimate Throughput × MeanLatency — the N
	// axis of the USL fit.
	MeanLatency time.Duration `json:"mean_latency_ns"`
	Concurrency float64       `json:"concurrency"`

	// FailureRate is (Shed+Fail)/Sent; Overloaded marks it above the
	// run's threshold.
	FailureRate float64 `json:"failure_rate"`
	Overloaded  bool    `json:"overloaded"`
}

// Result is a whole ramp.
type Result struct {
	Steps []StepResult `json:"steps"`
	// PeakRPS is the best measured throughput of any step.
	PeakRPS float64 `json:"peak_rps"`
	// PeakStep indexes the step that delivered PeakRPS.
	PeakStep int `json:"peak_step"`
	// Overloaded reports whether the ramp was stopped by the overload
	// detector (as opposed to running out of steps).
	Overloaded bool `json:"overloaded"`
	// Fit is the USL capacity model over the steps; nil when the ramp
	// produced too few usable points to fit.
	Fit *USL `json:"usl,omitempty"`
}

// latencyBuckets spans 100µs to ~2min exponentially — fine enough that
// interpolated p50/p95/p99 are meaningful at interactive latencies.
func latencyBuckets() []float64 {
	var b []float64
	for v := 100e-6; v < 130; v *= 1.25 {
		b = append(b, v)
	}
	return b
}

// stepAcc accumulates one step's measurements across all clients.
type stepAcc struct {
	sent, ok, shed, fail obs.Counter
	hist                 *obs.Histogram
}

func newStepAcc() *stepAcc {
	return &stepAcc{hist: obs.NewHistogram(latencyBuckets())}
}

// outcome classes for one request.
type class uint8

const (
	classOK class = iota
	classShed
	classFail
)

func (a *stepAcc) record(c class, elapsed time.Duration) {
	a.sent.Inc()
	switch c {
	case classOK:
		a.ok.Inc()
		a.hist.Observe(elapsed.Seconds())
	case classShed:
		a.shed.Inc()
	default:
		a.fail.Inc()
	}
}

func (a *stepAcc) result(target float64, elapsed time.Duration) StepResult {
	secs := elapsed.Seconds()
	sr := StepResult{
		TargetRPS: target,
		Sent:      int64(a.sent.Value()),
		OK:        int64(a.ok.Value()),
		Shed:      int64(a.shed.Value()),
		Fail:      int64(a.fail.Value()),
	}
	if secs > 0 {
		sr.OfferedRPS = float64(sr.Sent) / secs
		sr.Throughput = float64(sr.OK) / secs
	}
	if n := a.hist.Count(); n > 0 {
		sr.P50 = time.Duration(a.hist.Quantile(0.50) * float64(time.Second))
		sr.P95 = time.Duration(a.hist.Quantile(0.95) * float64(time.Second))
		sr.P99 = time.Duration(a.hist.Quantile(0.99) * float64(time.Second))
		sr.MeanLatency = time.Duration(a.hist.Sum() / float64(n) * float64(time.Second))
		sr.Concurrency = sr.Throughput * sr.MeanLatency.Seconds()
	}
	if sr.Sent > 0 {
		sr.FailureRate = float64(sr.Shed+sr.Fail) / float64(sr.Sent)
	}
	return sr
}

// Run executes the ramp: steps of rising offered load until MaxSteps
// or the overload detector trips, then the USL fit over the collected
// (concurrency, throughput) points.
func Run(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Target == "" {
		return nil, fmt.Errorf("load: no target URL")
	}
	r, err := newRunner(opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	if err := r.setup(ctx); err != nil {
		return nil, err
	}

	res := &Result{}
	overloaded := 0
	rate := opts.StartRPS
	for step := 0; step < opts.MaxSteps && ctx.Err() == nil; step++ {
		sr := r.runStep(ctx, rate)
		sr.Overloaded = sr.FailureRate > opts.FailThreshold
		res.Steps = append(res.Steps, sr)
		opts.Logf("step %d: target %.0f rps → offered %.0f, done %.0f ok/s, p50 %v p95 %v p99 %v, shed %d, fail %d (failure rate %.2f%s)",
			step, sr.TargetRPS, sr.OfferedRPS, sr.Throughput, sr.P50.Round(time.Microsecond),
			sr.P95.Round(time.Microsecond), sr.P99.Round(time.Microsecond),
			sr.Shed, sr.Fail, sr.FailureRate, map[bool]string{true: ", OVERLOADED"}[sr.Overloaded])
		if sr.Overloaded {
			// Tolerance before declaring overload (transient spikes —
			// a GC pause, one checkpoint — shouldn't end the ramp).
			if overloaded++; overloaded >= opts.OverloadTolerance {
				res.Overloaded = true
				break
			}
		} else {
			overloaded = 0
		}
		rate += opts.StepRPS
	}
	if ctx.Err() != nil && len(res.Steps) == 0 {
		return nil, ctx.Err()
	}

	for i, s := range res.Steps {
		if s.Throughput > res.PeakRPS {
			res.PeakRPS, res.PeakStep = s.Throughput, i
		}
	}
	var ns, xs []float64
	for _, s := range res.Steps {
		if s.Concurrency > 0 && s.Throughput > 0 {
			ns = append(ns, s.Concurrency)
			xs = append(xs, s.Throughput)
		}
	}
	if fit, ferr := FitUSL(ns, xs); ferr == nil {
		res.Fit = &fit
		opts.Logf("usl fit: %s", fit)
	} else {
		opts.Logf("usl fit skipped: %v", ferr)
	}
	return res, nil
}

// runStep drives all clients at the given aggregate offered rate for
// one StepDur and returns the measurements. In-flight requests at the
// step boundary are allowed to finish (bounded by Options.Timeout) and
// count toward the step that issued them.
func (r *runner) runStep(ctx context.Context, rate float64) StepResult {
	acc := newStepAcc()
	sctx, cancel := context.WithTimeout(ctx, r.opts.StepDur)
	defer cancel()
	perClient := rate / float64(len(r.clients))
	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range r.clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			c.loop(ctx, sctx, perClient, acc)
		}(c)
	}
	wg.Wait()
	return acc.result(rate, time.Since(start))
}

// loop issues requests with exponential interarrival gaps at the
// client's share of the offered rate until the step context ends. The
// step context gates only the *schedule*: a request in flight at the
// boundary finishes (bounded by the client timeout) and counts toward
// the step that issued it — cancelling it would fabricate failures the
// server never caused.
func (c *client) loop(runCtx, stepCtx context.Context, rate float64, acc *stepAcc) {
	if rate <= 0 || math.IsInf(rate, 0) {
		return
	}
	mean := 1 / rate
	for {
		gap := time.Duration(c.rng.Exp(mean) * float64(time.Second))
		if !sleepStep(stepCtx, gap) {
			return
		}
		cl, elapsed := c.fire(runCtx)
		acc.record(cl, elapsed)
	}
}

// sleepStep waits d or until the step ends, reporting whether the full
// gap elapsed.
func sleepStep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// transport returns an http.Client sized so every simulated client can
// hold a keep-alive connection (dialing per request would measure the
// kernel's accept queue, not seerd).
func transport(clients int, timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        clients * 2,
			MaxIdleConnsPerHost: clients * 2,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// userName is the routing identity of client i.
func userName(i, users int) string {
	return fmt.Sprintf("load-user-%03d", i%users)
}
