// The simulated clients: each owns its seeded RNG, its user identity,
// and (when replication is exercised) its own RemoteRumor, and fires
// one operation per interarrival gap drawn from the weighted mix.
package load

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
)

type opKind uint8

const (
	opPlan opKind = iota
	opHoard
	opMiss
	opSync
)

// client is one simulated mobile host.
type client struct {
	id   int
	user string
	rng  *stats.Rand
	hc   *http.Client

	target string
	rumor  *replic.RemoteRumor // nil when sync is out of the mix

	// ops is the weighted op table: fire picks uniformly from it, so
	// weights translate to probabilities without arithmetic per shot.
	ops       []opKind
	syncFiles int
	timeoutMS string
}

type runner struct {
	opts    Options
	hc      *http.Client
	clients []*client
}

func newRunner(opts Options) (*runner, error) {
	hc := transport(opts.Clients, opts.Timeout)
	mix := opts.Mix
	if opts.Rumor == "" {
		mix.Sync = 0
	}
	var ops []opKind
	for k, w := range map[opKind]int{
		opPlan: mix.Plan, opHoard: mix.Hoard, opMiss: mix.Miss, opSync: mix.Sync,
	} {
		for i := 0; i < w; i++ {
			ops = append(ops, k)
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("load: empty op mix")
	}
	// Map iteration order is random; sort for run-to-run determinism.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j] < ops[j-1]; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}

	r := &runner{opts: opts, hc: hc}
	for i := 0; i < opts.Clients; i++ {
		c := &client{
			id:        i,
			user:      userName(i, opts.Users),
			rng:       stats.NewRand(opts.Seed + int64(i)*0x9e3779b9),
			hc:        hc,
			target:    strings.TrimRight(opts.Target, "/"),
			ops:       ops,
			syncFiles: opts.SyncFiles,
			timeoutMS: strconv.FormatInt(opts.Timeout.Milliseconds(), 10),
		}
		if opts.Rumor != "" && mix.Sync > 0 {
			// One protocol client per simulated host — mirrors real
			// deployment (each mobile host syncs its own hoard) and keeps
			// the RemoteRumor mutex from serializing the whole pool.
			c.rumor = replic.NewRemoteRumor(opts.Rumor, hc)
		}
		r.clients = append(r.clients, c)
	}
	return r, nil
}

func (r *runner) close() {
	if t, ok := r.hc.Transport.(*http.Transport); ok {
		t.CloseIdleConnections()
	}
}

// setup primes the targets before the measured ramp: seed strace
// events per user (sharded gateways only — plain seerd watches its own
// strace spool and answers 404/405 here, which setup tolerates), and
// create the replicated-file id space on the rumor master.
func (r *runner) setup(ctx context.Context) error {
	o := r.opts
	if o.SeedEvents > 0 {
		body := eventBody(o.SeedEvents)
		seeded := true
		for u := 0; u < o.Users && seeded; u++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			status, err := r.postBody(ctx, "/events", userName(u, o.Users), body)
			switch {
			case err != nil:
				return fmt.Errorf("load: seed events for user %d: %v", u, err)
			case status == http.StatusNotFound || status == http.StatusMethodNotAllowed:
				// Plain seerd: no ingest endpoint; it learns from its own
				// strace tail, so there is nothing to seed.
				o.Logf("target has no /events endpoint; skipping event seeding")
				seeded = false
			case status != http.StatusOK:
				return fmt.Errorf("load: seed events for user %d: http %d", u, status)
			}
		}
		if seeded {
			o.Logf("seeded %d events for each of %d users", o.SeedEvents, o.Users)
		}
	}
	if o.Rumor != "" && o.Mix.Sync > 0 {
		// Push creates unknown ids at version 1, so WriteLocal through a
		// throwaway client populates the id space the sync ops draw from.
		seed := replic.NewRemoteRumor(o.Rumor, r.hc)
		for id := 1; id <= o.SyncFiles; id++ {
			seed.WriteLocal(simfs.FileID(id))
		}
		if n := seed.DirtyCount(); n > 0 {
			return fmt.Errorf("load: rumor master at %s unreachable (%d of %d creates unpropagated)",
				o.Rumor, n, o.SyncFiles)
		}
		o.Logf("created %d replicated files on %s", o.SyncFiles, o.Rumor)
	}
	return nil
}

// eventBody builds one POST /events payload of n synthetic strace open
// lines — enough referenced files that plans and misses touch a real
// working set.
func eventBody(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "100  12:00:%02d.%06d openat(AT_FDCWD, \"/home/u/proj/f%03d.c\", O_RDONLY) = 3\n",
			i/60%60, i%1_000_000, i%400)
	}
	return b.String()
}

func (r *runner) postBody(ctx context.Context, path, user, body string) (int, error) {
	u := strings.TrimRight(r.opts.Target, "/") + path + "?user=" + url.QueryEscape(user)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// fire issues one operation drawn from the mix and classifies the
// outcome. elapsed is wall time of the whole round trip.
func (c *client) fire(ctx context.Context) (class, time.Duration) {
	op := c.ops[c.rng.Intn(len(c.ops))]
	start := time.Now()
	var cl class
	switch op {
	case opSync:
		cl = c.fireSync()
	default:
		cl = c.fireHTTP(ctx, op)
	}
	return cl, time.Since(start)
}

// fireSync is one replication round trip: sync a random file id the
// setup phase created on the master.
func (c *client) fireSync() class {
	id := simfs.FileID(1 + c.rng.Intn(c.syncFiles))
	if _, err := c.rumor.SyncBatch([]simfs.FileID{id}, nil); err != nil {
		return classFail
	}
	return classOK
}

func (c *client) fireHTTP(ctx context.Context, op opKind) class {
	var method, path string
	q := url.Values{"user": {c.user}, "timeout_ms": {c.timeoutMS}}
	switch op {
	case opPlan:
		method, path = http.MethodGet, "/plan"
	case opHoard:
		method, path = http.MethodGet, "/hoard"
	default: // opMiss
		method, path = http.MethodPost, "/miss"
		q.Set("path", fmt.Sprintf("/home/u/proj/f%03d.c", c.rng.Intn(400)))
	}
	req, err := http.NewRequestWithContext(ctx, method, c.target+path+"?"+q.Encode(), nil)
	if err != nil {
		return classFail
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return classFail
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return classOK
	case resp.StatusCode == http.StatusTooManyRequests:
		return classShed
	default:
		return classFail
	}
}
