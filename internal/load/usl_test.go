package load

import (
	"math"
	"testing"

	"github.com/fmg/seer/internal/stats"
)

// genUSL samples the model at the given concurrencies with
// multiplicative noise from a seeded RNG.
func genUSL(u USL, ns []float64, noise float64, seed int64) []float64 {
	rng := stats.NewRand(seed)
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = u.Throughput(n) * (1 + noise*(2*rng.Float64()-1))
	}
	return xs
}

func TestFitUSLRecoversKnownCurve(t *testing.T) {
	truth := USL{Lambda: 995, Sigma: 0.02, Kappa: 0.0001}
	ns := []float64{1, 2, 4, 8, 16, 32, 64, 128, 192}
	xs := genUSL(truth, ns, 0.02, 7)

	fit, err := FitUSL(ns, xs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R² = %.4f, want ≥0.99 on 2%% noise", fit.R2)
	}
	// The surface is shallow in (σ,κ) so exact coefficient recovery is
	// too strict; what matters operationally is the predicted peak.
	truePeakN := math.Sqrt((1 - truth.Sigma) / truth.Kappa) // ≈ 99
	truePeakX := truth.Throughput(truePeakN)
	if fit.PeakN < truePeakN*0.7 || fit.PeakN > truePeakN*1.3 {
		t.Errorf("peak N = %.1f, want within 30%% of %.1f", fit.PeakN, truePeakN)
	}
	if fit.PeakX < truePeakX*0.9 || fit.PeakX > truePeakX*1.1 {
		t.Errorf("ceiling = %.0f, want within 10%% of %.0f", fit.PeakX, truePeakX)
	}
}

func TestFitUSLRetrogradeDetected(t *testing.T) {
	// Strong coherency penalty: throughput visibly falls past the knee.
	truth := USL{Lambda: 100, Sigma: 0.05, Kappa: 0.01}
	ns := []float64{1, 2, 4, 6, 8, 10, 12, 16, 24, 32}
	xs := genUSL(truth, ns, 0.01, 11)
	fit, err := FitUSL(ns, xs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PeakN == 0 {
		t.Fatalf("retrograde curve fitted without a peak: %s", fit)
	}
	wantN := math.Sqrt((1 - truth.Sigma) / truth.Kappa) // ≈ 9.7
	if fit.PeakN < wantN*0.6 || fit.PeakN > wantN*1.4 {
		t.Errorf("peak N = %.1f, want near %.1f", fit.PeakN, wantN)
	}
	// Past the fitted peak the model must be retrograde.
	if fit.Throughput(fit.PeakN*3) >= fit.PeakX {
		t.Errorf("model not retrograde past its own peak: %s", fit)
	}
}

func TestFitUSLContentionOnly(t *testing.T) {
	// κ = 0: Amdahl saturation, ceiling is the λ/σ asymptote.
	truth := USL{Lambda: 50, Sigma: 0.1, Kappa: 0}
	ns := []float64{1, 2, 4, 8, 16, 32}
	xs := genUSL(truth, ns, 0, 1)
	fit, err := FitUSL(ns, xs)
	if err != nil {
		t.Fatal(err)
	}
	asymptote := truth.Lambda / truth.Sigma // 500
	if fit.PeakX < asymptote*0.7 || fit.PeakX > asymptote*1.3 {
		t.Errorf("ceiling = %.0f, want near the Amdahl asymptote %.0f", fit.PeakX, asymptote)
	}
	if fit.R2 < 0.999 {
		t.Errorf("noiseless fit R² = %.5f", fit.R2)
	}
}

func TestFitUSLDeterministic(t *testing.T) {
	ns := []float64{1, 3, 9, 27, 81}
	xs := genUSL(USL{Lambda: 200, Sigma: 0.03, Kappa: 0.0005}, ns, 0.05, 3)
	a, err := FitUSL(ns, xs)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := FitUSL(ns, xs)
	if a != b {
		t.Errorf("same data, different fits: %+v vs %+v", a, b)
	}
}

func TestFitUSLRejectsDegenerate(t *testing.T) {
	cases := []struct {
		name   string
		ns, xs []float64
	}{
		{"too few", []float64{1, 2}, []float64{10, 18}},
		{"mismatched", []float64{1, 2, 3}, []float64{10}},
		{"no distinct", []float64{5, 5, 5}, []float64{10, 11, 12}},
		{"all zero throughput", []float64{1, 2, 3}, []float64{0, 0, 0}},
		{"all invalid", []float64{-1, 0, math.NaN()}, []float64{1, 2, 3}},
		{"never saturated", []float64{0.1, 0.4, 0.8}, []float64{40, 160, 300}},
	}
	for _, c := range cases {
		if _, err := FitUSL(c.ns, c.xs); err == nil {
			t.Errorf("%s: fit succeeded on degenerate input", c.name)
		}
	}
}

func TestFitUSLSkipsInvalidPoints(t *testing.T) {
	truth := USL{Lambda: 100, Sigma: 0.05, Kappa: 0.001}
	ns := []float64{1, 4, 16, 64}
	xs := genUSL(truth, ns, 0, 1)
	// Poisoned points must be ignored, not corrupt the fit — including
	// sub-unit concurrency, whose superlinear regime would otherwise
	// let the fitter claim a ceiling below the measured peak.
	ns = append(ns, 0, math.NaN(), 10, 0.3)
	xs = append(xs, 50, 60, math.NaN(), 500)
	fit, err := FitUSL(ns, xs)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.999 {
		t.Errorf("fit degraded by invalid points: %s", fit)
	}
}
