package strace

import (
	"strings"
	"testing"
	"time"

	"github.com/fmg/seer/internal/trace"
)

func parseAll(t *testing.T, src string) []trace.Event {
	t.Helper()
	evs, err := NewParser().Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestOpenCloseRoundTrip(t *testing.T) {
	src := `1234  12:00:01.000001 openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 3
1234  12:00:01.000500 close(3) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Op != trace.OpOpen || evs[0].Path != "/etc/hosts" || evs[0].PID != 1234 {
		t.Errorf("open = %+v", evs[0])
	}
	if evs[1].Op != trace.OpClose || evs[1].Path != "/etc/hosts" {
		t.Errorf("close = %+v (fd not resolved)", evs[1])
	}
	if !evs[1].Time.After(evs[0].Time) {
		t.Error("timestamps not ordered")
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Error("sequence numbers not increasing")
	}
}

func TestCreateAndDirectoryFlags(t *testing.T) {
	src := `1 openat(AT_FDCWD, "/home/u/new.c", O_WRONLY|O_CREAT|O_TRUNC, 0666) = 4
1 openat(AT_FDCWD, "/home/u", O_RDONLY|O_DIRECTORY) = 5
1 getdents64(5, 0x55..., 32768) = 120
1 close(5) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 4 {
		t.Fatalf("events = %d: %v", len(evs), evs)
	}
	if evs[0].Op != trace.OpCreate {
		t.Errorf("O_CREAT open = %v, want create", evs[0].Op)
	}
	if evs[1].Op != trace.OpReadDir {
		t.Errorf("O_DIRECTORY open = %v, want readdir", evs[1].Op)
	}
	if evs[2].Op != trace.OpReadDir || evs[2].Path != "/home/u" {
		t.Errorf("getdents = %+v", evs[2])
	}
}

func TestExecForkExit(t *testing.T) {
	src := `100 execve("/usr/bin/make", ["make"], 0x7ffe... /* 30 vars */) = 0
100 clone(child_stack=NULL, flags=CLONE_CHILD_CLEARTID|SIGCHLD) = 101
101 execve("/usr/bin/cc", ["cc", "-c", "x.c"], ...) = 0
101 +++ exited with 0 +++
100 exit_group(0) = ?
`
	evs := parseAll(t, src)
	if len(evs) != 5 {
		t.Fatalf("events = %d: %v", len(evs), evs)
	}
	if evs[0].Op != trace.OpExec || evs[0].Prog != "make" {
		t.Errorf("exec = %+v", evs[0])
	}
	if evs[1].Op != trace.OpFork || evs[1].PID != 101 || evs[1].PPID != 100 {
		t.Errorf("fork = %+v", evs[1])
	}
	if evs[3].Op != trace.OpExit || evs[3].PID != 101 {
		t.Errorf("exit marker = %+v", evs[3])
	}
	if evs[4].Op != trace.OpExit || evs[4].PID != 100 {
		t.Errorf("exit_group = %+v", evs[4])
	}
}

func TestFailedCalls(t *testing.T) {
	src := `1 openat(AT_FDCWD, "/missing", O_RDONLY) = -1 ENOENT (No such file or directory)
1 stat("/also/missing", 0x7ffd...) = -1 ENOENT (No such file or directory)
`
	evs := parseAll(t, src)
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	for _, ev := range evs {
		if !ev.Failed {
			t.Errorf("event not marked failed: %+v", ev)
		}
	}
}

func TestStatVariants(t *testing.T) {
	src := `1 stat("/a", {st_mode=S_IFREG|0644, st_size=100, ...}) = 0
1 lstat("/b", {...}) = 0
1 access("/c", F_OK) = 0
1 newfstatat(AT_FDCWD, "/d", {...}, 0) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	want := []string{"/a", "/b", "/c", "/d"}
	for i, ev := range evs {
		if ev.Op != trace.OpStat || ev.Path != want[i] {
			t.Errorf("event %d = %+v, want stat %s", i, ev, want[i])
		}
	}
}

func TestRenameUnlinkMkdirChdir(t *testing.T) {
	src := `1 rename("/tmp/x", "/home/u/x") = 0
1 renameat2(AT_FDCWD, "/a", AT_FDCWD, "/b", RENAME_NOREPLACE) = 0
1 unlink("/tmp/junk") = 0
1 unlinkat(AT_FDCWD, "/tmp/other", 0) = 0
1 mkdir("/home/u/dir", 0755) = 0
1 chdir("/home/u/dir") = 0
`
	evs := parseAll(t, src)
	if len(evs) != 6 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	if evs[0].Op != trace.OpRename || evs[0].Path != "/tmp/x" || evs[0].Path2 != "/home/u/x" {
		t.Errorf("rename = %+v", evs[0])
	}
	if evs[1].Path != "/a" || evs[1].Path2 != "/b" {
		t.Errorf("renameat2 = %+v", evs[1])
	}
	if evs[2].Op != trace.OpDelete || evs[3].Op != trace.OpDelete {
		t.Error("unlinks not deletes")
	}
	if evs[4].Op != trace.OpMkdir || evs[5].Op != trace.OpChdir {
		t.Error("mkdir/chdir wrong")
	}
}

func TestUnfinishedResumed(t *testing.T) {
	src := `100 openat(AT_FDCWD, "/slow/file", O_RDONLY <unfinished ...>
101 stat("/other", {...}) = 0
100 <... openat resumed>) = 7
100 close(7) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 3 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	if evs[0].Op != trace.OpStat || evs[0].PID != 101 {
		t.Errorf("interleaved stat = %+v", evs[0])
	}
	if evs[1].Op != trace.OpOpen || evs[1].Path != "/slow/file" || evs[1].PID != 100 {
		t.Errorf("resumed open = %+v", evs[1])
	}
	if evs[2].Op != trace.OpClose || evs[2].Path != "/slow/file" {
		t.Errorf("close after resume = %+v (fd lost)", evs[2])
	}
}

func TestNoiseSkipped(t *testing.T) {
	src := `--- SIGCHLD {si_signo=SIGCHLD, si_code=CLD_EXITED} ---
strace: Process 1234 attached

1 read(3, "data", 4096) = 4
1 write(4, "x", 1) = 1
1 <... something resumed>) = 0
garbage line
`
	evs := parseAll(t, src)
	if len(evs) != 0 {
		t.Fatalf("noise produced events: %+v", evs)
	}
}

func TestEscapedPath(t *testing.T) {
	src := `1 openat(AT_FDCWD, "/home/u/with \"quotes\" and space", O_RDONLY) = 3`
	evs := parseAll(t, src)
	if len(evs) != 1 || evs[0].Path != `/home/u/with "quotes" and space` {
		t.Fatalf("escaped path = %+v", evs)
	}
}

func TestCloseOfUnknownFdSkipped(t *testing.T) {
	evs := parseAll(t, "1 close(99) = 0\n")
	if len(evs) != 0 {
		t.Fatalf("unknown fd close produced %+v", evs)
	}
}

func TestNoPidNoTimestamp(t *testing.T) {
	evs := parseAll(t, `openat(AT_FDCWD, "/x", O_RDONLY) = 3`+"\n")
	if len(evs) != 1 || evs[0].PID != 1 {
		t.Fatalf("bare line = %+v", evs)
	}
	if evs[0].Time.IsZero() {
		t.Error("zero timestamp")
	}
}

func TestTimePreservedMonotone(t *testing.T) {
	src := `1 12:00:05.000000 stat("/a", {...}) = 0
1 12:00:04.000000 stat("/b", {...}) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 2 {
		t.Fatal("events")
	}
	if evs[1].Time.Before(evs[0].Time) {
		t.Error("time went backwards across events")
	}
}

func TestFeedsCorrelatorEndToEnd(t *testing.T) {
	// A miniature compile under strace must produce distance pairs in
	// the correlator — integration of strace → observer → semdist.
	src := `50 execve("/usr/bin/cc", ["cc"], ...) = 0
50 openat(AT_FDCWD, "/home/u/p/main.c", O_RDONLY) = 3
50 openat(AT_FDCWD, "/home/u/p/defs.h", O_RDONLY) = 4
50 close(4) = 0
50 openat(AT_FDCWD, "/home/u/p/main.o", O_WRONLY|O_CREAT) = 5
50 close(5) = 0
50 close(3) = 0
50 exit_group(0) = ?
`
	evs := parseAll(t, src)
	if len(evs) != 8 {
		t.Fatalf("events = %d", len(evs))
	}
	ops := []trace.Op{trace.OpExec, trace.OpOpen, trace.OpOpen, trace.OpClose,
		trace.OpCreate, trace.OpClose, trace.OpClose, trace.OpExit}
	for i, want := range ops {
		if evs[i].Op != want {
			t.Errorf("event %d op = %v, want %v", i, evs[i].Op, want)
		}
	}
}

func TestDupTracksDescriptor(t *testing.T) {
	src := `1 openat(AT_FDCWD, "/home/u/x", O_RDONLY) = 3
1 dup(3) = 7
1 close(3) = 0
1 dup2(7, 11) = 11
1 close(7) = 0
1 close(11) = 0
`
	evs := parseAll(t, src)
	// open + 3 closes, all resolving to the same path.
	if len(evs) != 4 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	for _, ev := range evs[1:] {
		if ev.Op != trace.OpClose || ev.Path != "/home/u/x" {
			t.Errorf("close = %+v, want /home/u/x", ev)
		}
	}
}

func TestDupOfUnknownFd(t *testing.T) {
	evs := parseAll(t, "1 dup(99) = 100\n1 close(100) = 0\n")
	if len(evs) != 0 {
		t.Fatalf("unknown dup produced events: %+v", evs)
	}
}

func TestForkInheritsFdTable(t *testing.T) {
	// A forked child inherits the parent's descriptors: close(3) and
	// getdents64(4) in the child must resolve to the paths the parent
	// opened. Before the fix both events were silently dropped.
	src := `100 openat(AT_FDCWD, "/home/u/p/main.c", O_RDONLY) = 3
100 openat(AT_FDCWD, "/home/u/p", O_RDONLY|O_DIRECTORY) = 4
100 fork() = 101
101 getdents64(4, 0x55..., 32768) = 120
101 close(3) = 0
100 close(3) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 6 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	if evs[3].Op != trace.OpReadDir || evs[3].Path != "/home/u/p" || evs[3].PID != 101 {
		t.Errorf("child getdents = %+v, want readdir /home/u/p", evs[3])
	}
	if evs[4].Op != trace.OpClose || evs[4].Path != "/home/u/p/main.c" || evs[4].PID != 101 {
		t.Errorf("child close = %+v, want close /home/u/p/main.c", evs[4])
	}
	// The parent's own table is unaffected by the child's close: the
	// tables are copies, not shared.
	if evs[5].Op != trace.OpClose || evs[5].Path != "/home/u/p/main.c" || evs[5].PID != 100 {
		t.Errorf("parent close = %+v (fd table not copied)", evs[5])
	}
}

func TestForkCopyIsIndependent(t *testing.T) {
	// After a plain fork, a descriptor opened by the child must not
	// appear in the parent.
	src := `100 openat(AT_FDCWD, "/a", O_RDONLY) = 3
100 fork() = 101
101 openat(AT_FDCWD, "/b", O_RDONLY) = 5
100 close(5) = 0
`
	evs := parseAll(t, src)
	// open, fork, open — the parent's close(5) must not resolve.
	if len(evs) != 3 {
		t.Fatalf("events = %d: %+v (child fd leaked into parent)", len(evs), evs)
	}
}

func TestCloneFilesSharesFdTable(t *testing.T) {
	// CLONE_FILES (threads) shares one fd table: a descriptor opened by
	// the child resolves in the parent.
	src := `100 openat(AT_FDCWD, "/a", O_RDONLY) = 3
100 clone(child_stack=NULL, flags=CLONE_FILES|CLONE_VM|SIGCHLD) = 101
101 openat(AT_FDCWD, "/b", O_RDONLY) = 5
100 close(5) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 4 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	if evs[3].Op != trace.OpClose || evs[3].Path != "/b" || evs[3].PID != 100 {
		t.Errorf("parent close of thread-opened fd = %+v, want /b", evs[3])
	}
}

func TestVforkInheritsFdTable(t *testing.T) {
	src := `100 openat(AT_FDCWD, "/a", O_RDONLY) = 3
100 vfork() = 102
102 close(3) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 3 || evs[2].Path != "/a" || evs[2].PID != 102 {
		t.Fatalf("vfork child close = %+v, want /a", evs)
	}
}

func TestEscapeDecoding(t *testing.T) {
	// strace escapes non-printable bytes C-style; decoding them as the
	// literal next character mangles the path. "caf\303\251" is café
	// in UTF-8; \n, \t, \x and \\ round-trip too.
	cases := []struct {
		line, want string
	}{
		{`1 openat(AT_FDCWD, "/home/u/caf\303\251/menu", O_RDONLY) = 3`, "/home/u/café/menu"},
		{`1 openat(AT_FDCWD, "/tmp/line\nbreak", O_RDONLY) = 3`, "/tmp/line\nbreak"},
		{`1 openat(AT_FDCWD, "/tmp/tab\there", O_RDONLY) = 3`, "/tmp/tab\there"},
		{`1 openat(AT_FDCWD, "/tmp/hex\x41", O_RDONLY) = 3`, "/tmp/hexA"},
		{`1 openat(AT_FDCWD, "/tmp/back\\slash", O_RDONLY) = 3`, `/tmp/back\slash`},
		{`1 openat(AT_FDCWD, "/tmp/bell\7", O_RDONLY) = 3`, "/tmp/bell\a"},
	}
	for _, c := range cases {
		evs := parseAll(t, c.line+"\n")
		if len(evs) != 1 {
			t.Errorf("%q: %d events", c.line, len(evs))
			continue
		}
		if evs[0].Path != c.want {
			t.Errorf("%q decoded to %q, want %q", c.line, evs[0].Path, c.want)
		}
	}
}

func TestMidnightRollover(t *testing.T) {
	// A trace crossing midnight wraps its time-of-day clock; events
	// after the wrap must land on the next day, not be clamped to
	// 23:59:59 forever.
	src := `1 23:59:59.500000 stat("/a", {...}) = 0
1 00:00:01.000000 stat("/b", {...}) = 0
1 00:00:02.000000 stat("/c", {...}) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	d1 := evs[1].Time.Sub(evs[0].Time)
	if d1 <= 0 || d1 > 2*time.Second {
		t.Errorf("midnight gap = %v, want ~1.5s (clamped?)", d1)
	}
	if d2 := evs[2].Time.Sub(evs[1].Time); d2 != time.Second {
		t.Errorf("post-midnight gap = %v, want 1s", d2)
	}
	if evs[1].Time.Day() == evs[0].Time.Day() {
		t.Error("date did not roll forward across midnight")
	}
}

func TestMultipleMidnights(t *testing.T) {
	src := `1 23:00:00.000000 stat("/a", {...}) = 0
1 01:00:00.000000 stat("/b", {...}) = 0
1 23:30:00.000000 stat("/c", {...}) = 0
1 00:30:00.000000 stat("/d", {...}) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if !evs[i].Time.After(evs[i-1].Time) {
			t.Errorf("event %d time %v not after %v", i, evs[i].Time, evs[i-1].Time)
		}
	}
	if got := evs[3].Time.Sub(evs[0].Time); got != 25*time.Hour+30*time.Minute {
		t.Errorf("total span = %v, want 25h30m", got)
	}
}

func TestSameDayJitterStillClamped(t *testing.T) {
	// Small backwards jumps (reordered strace buffers) are clamped
	// monotone, not treated as a day rollover.
	src := `1 12:00:05.000000 stat("/a", {...}) = 0
1 12:00:04.000000 stat("/b", {...}) = 0
1 12:00:06.000000 stat("/c", {...}) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 3 {
		t.Fatal("events")
	}
	if !evs[1].Time.Equal(evs[0].Time) {
		t.Errorf("jitter not clamped: %v vs %v", evs[1].Time, evs[0].Time)
	}
	if got := evs[2].Time.Sub(evs[0].Time); got != time.Second {
		t.Errorf("post-jitter gap = %v, want 1s (rolled a day?)", got)
	}
}

func TestSymlink(t *testing.T) {
	src := `1 symlink("/home/u/proj/prog", "/home/u/bin/prog") = 0
1 symlinkat("/a/target", AT_FDCWD, "/b/link") = 0
`
	evs := parseAll(t, src)
	if len(evs) != 2 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	if evs[0].Op != trace.OpSymlink || evs[0].Path != "/home/u/bin/prog" ||
		evs[0].Path2 != "/home/u/proj/prog" {
		t.Errorf("symlink = %+v", evs[0])
	}
	if evs[1].Path != "/b/link" || evs[1].Path2 != "/a/target" {
		t.Errorf("symlinkat = %+v", evs[1])
	}
}
