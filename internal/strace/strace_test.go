package strace

import (
	"strings"
	"testing"

	"github.com/fmg/seer/internal/trace"
)

func parseAll(t *testing.T, src string) []trace.Event {
	t.Helper()
	evs, err := NewParser().Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestOpenCloseRoundTrip(t *testing.T) {
	src := `1234  12:00:01.000001 openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 3
1234  12:00:01.000500 close(3) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Op != trace.OpOpen || evs[0].Path != "/etc/hosts" || evs[0].PID != 1234 {
		t.Errorf("open = %+v", evs[0])
	}
	if evs[1].Op != trace.OpClose || evs[1].Path != "/etc/hosts" {
		t.Errorf("close = %+v (fd not resolved)", evs[1])
	}
	if !evs[1].Time.After(evs[0].Time) {
		t.Error("timestamps not ordered")
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Error("sequence numbers not increasing")
	}
}

func TestCreateAndDirectoryFlags(t *testing.T) {
	src := `1 openat(AT_FDCWD, "/home/u/new.c", O_WRONLY|O_CREAT|O_TRUNC, 0666) = 4
1 openat(AT_FDCWD, "/home/u", O_RDONLY|O_DIRECTORY) = 5
1 getdents64(5, 0x55..., 32768) = 120
1 close(5) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 4 {
		t.Fatalf("events = %d: %v", len(evs), evs)
	}
	if evs[0].Op != trace.OpCreate {
		t.Errorf("O_CREAT open = %v, want create", evs[0].Op)
	}
	if evs[1].Op != trace.OpReadDir {
		t.Errorf("O_DIRECTORY open = %v, want readdir", evs[1].Op)
	}
	if evs[2].Op != trace.OpReadDir || evs[2].Path != "/home/u" {
		t.Errorf("getdents = %+v", evs[2])
	}
}

func TestExecForkExit(t *testing.T) {
	src := `100 execve("/usr/bin/make", ["make"], 0x7ffe... /* 30 vars */) = 0
100 clone(child_stack=NULL, flags=CLONE_CHILD_CLEARTID|SIGCHLD) = 101
101 execve("/usr/bin/cc", ["cc", "-c", "x.c"], ...) = 0
101 +++ exited with 0 +++
100 exit_group(0) = ?
`
	evs := parseAll(t, src)
	if len(evs) != 5 {
		t.Fatalf("events = %d: %v", len(evs), evs)
	}
	if evs[0].Op != trace.OpExec || evs[0].Prog != "make" {
		t.Errorf("exec = %+v", evs[0])
	}
	if evs[1].Op != trace.OpFork || evs[1].PID != 101 || evs[1].PPID != 100 {
		t.Errorf("fork = %+v", evs[1])
	}
	if evs[3].Op != trace.OpExit || evs[3].PID != 101 {
		t.Errorf("exit marker = %+v", evs[3])
	}
	if evs[4].Op != trace.OpExit || evs[4].PID != 100 {
		t.Errorf("exit_group = %+v", evs[4])
	}
}

func TestFailedCalls(t *testing.T) {
	src := `1 openat(AT_FDCWD, "/missing", O_RDONLY) = -1 ENOENT (No such file or directory)
1 stat("/also/missing", 0x7ffd...) = -1 ENOENT (No such file or directory)
`
	evs := parseAll(t, src)
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	for _, ev := range evs {
		if !ev.Failed {
			t.Errorf("event not marked failed: %+v", ev)
		}
	}
}

func TestStatVariants(t *testing.T) {
	src := `1 stat("/a", {st_mode=S_IFREG|0644, st_size=100, ...}) = 0
1 lstat("/b", {...}) = 0
1 access("/c", F_OK) = 0
1 newfstatat(AT_FDCWD, "/d", {...}, 0) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	want := []string{"/a", "/b", "/c", "/d"}
	for i, ev := range evs {
		if ev.Op != trace.OpStat || ev.Path != want[i] {
			t.Errorf("event %d = %+v, want stat %s", i, ev, want[i])
		}
	}
}

func TestRenameUnlinkMkdirChdir(t *testing.T) {
	src := `1 rename("/tmp/x", "/home/u/x") = 0
1 renameat2(AT_FDCWD, "/a", AT_FDCWD, "/b", RENAME_NOREPLACE) = 0
1 unlink("/tmp/junk") = 0
1 unlinkat(AT_FDCWD, "/tmp/other", 0) = 0
1 mkdir("/home/u/dir", 0755) = 0
1 chdir("/home/u/dir") = 0
`
	evs := parseAll(t, src)
	if len(evs) != 6 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	if evs[0].Op != trace.OpRename || evs[0].Path != "/tmp/x" || evs[0].Path2 != "/home/u/x" {
		t.Errorf("rename = %+v", evs[0])
	}
	if evs[1].Path != "/a" || evs[1].Path2 != "/b" {
		t.Errorf("renameat2 = %+v", evs[1])
	}
	if evs[2].Op != trace.OpDelete || evs[3].Op != trace.OpDelete {
		t.Error("unlinks not deletes")
	}
	if evs[4].Op != trace.OpMkdir || evs[5].Op != trace.OpChdir {
		t.Error("mkdir/chdir wrong")
	}
}

func TestUnfinishedResumed(t *testing.T) {
	src := `100 openat(AT_FDCWD, "/slow/file", O_RDONLY <unfinished ...>
101 stat("/other", {...}) = 0
100 <... openat resumed>) = 7
100 close(7) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 3 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	if evs[0].Op != trace.OpStat || evs[0].PID != 101 {
		t.Errorf("interleaved stat = %+v", evs[0])
	}
	if evs[1].Op != trace.OpOpen || evs[1].Path != "/slow/file" || evs[1].PID != 100 {
		t.Errorf("resumed open = %+v", evs[1])
	}
	if evs[2].Op != trace.OpClose || evs[2].Path != "/slow/file" {
		t.Errorf("close after resume = %+v (fd lost)", evs[2])
	}
}

func TestNoiseSkipped(t *testing.T) {
	src := `--- SIGCHLD {si_signo=SIGCHLD, si_code=CLD_EXITED} ---
strace: Process 1234 attached

1 read(3, "data", 4096) = 4
1 write(4, "x", 1) = 1
1 <... something resumed>) = 0
garbage line
`
	evs := parseAll(t, src)
	if len(evs) != 0 {
		t.Fatalf("noise produced events: %+v", evs)
	}
}

func TestEscapedPath(t *testing.T) {
	src := `1 openat(AT_FDCWD, "/home/u/with \"quotes\" and space", O_RDONLY) = 3`
	evs := parseAll(t, src)
	if len(evs) != 1 || evs[0].Path != `/home/u/with "quotes" and space` {
		t.Fatalf("escaped path = %+v", evs)
	}
}

func TestCloseOfUnknownFdSkipped(t *testing.T) {
	evs := parseAll(t, "1 close(99) = 0\n")
	if len(evs) != 0 {
		t.Fatalf("unknown fd close produced %+v", evs)
	}
}

func TestNoPidNoTimestamp(t *testing.T) {
	evs := parseAll(t, `openat(AT_FDCWD, "/x", O_RDONLY) = 3`+"\n")
	if len(evs) != 1 || evs[0].PID != 1 {
		t.Fatalf("bare line = %+v", evs)
	}
	if evs[0].Time.IsZero() {
		t.Error("zero timestamp")
	}
}

func TestTimePreservedMonotone(t *testing.T) {
	src := `1 12:00:05.000000 stat("/a", {...}) = 0
1 12:00:04.000000 stat("/b", {...}) = 0
`
	evs := parseAll(t, src)
	if len(evs) != 2 {
		t.Fatal("events")
	}
	if evs[1].Time.Before(evs[0].Time) {
		t.Error("time went backwards across events")
	}
}

func TestFeedsCorrelatorEndToEnd(t *testing.T) {
	// A miniature compile under strace must produce distance pairs in
	// the correlator — integration of strace → observer → semdist.
	src := `50 execve("/usr/bin/cc", ["cc"], ...) = 0
50 openat(AT_FDCWD, "/home/u/p/main.c", O_RDONLY) = 3
50 openat(AT_FDCWD, "/home/u/p/defs.h", O_RDONLY) = 4
50 close(4) = 0
50 openat(AT_FDCWD, "/home/u/p/main.o", O_WRONLY|O_CREAT) = 5
50 close(5) = 0
50 close(3) = 0
50 exit_group(0) = ?
`
	evs := parseAll(t, src)
	if len(evs) != 8 {
		t.Fatalf("events = %d", len(evs))
	}
	ops := []trace.Op{trace.OpExec, trace.OpOpen, trace.OpOpen, trace.OpClose,
		trace.OpCreate, trace.OpClose, trace.OpClose, trace.OpExit}
	for i, want := range ops {
		if evs[i].Op != want {
			t.Errorf("event %d op = %v, want %v", i, evs[i].Op, want)
		}
	}
}

func TestDupTracksDescriptor(t *testing.T) {
	src := `1 openat(AT_FDCWD, "/home/u/x", O_RDONLY) = 3
1 dup(3) = 7
1 close(3) = 0
1 dup2(7, 11) = 11
1 close(7) = 0
1 close(11) = 0
`
	evs := parseAll(t, src)
	// open + 3 closes, all resolving to the same path.
	if len(evs) != 4 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	for _, ev := range evs[1:] {
		if ev.Op != trace.OpClose || ev.Path != "/home/u/x" {
			t.Errorf("close = %+v, want /home/u/x", ev)
		}
	}
}

func TestDupOfUnknownFd(t *testing.T) {
	evs := parseAll(t, "1 dup(99) = 100\n1 close(100) = 0\n")
	if len(evs) != 0 {
		t.Fatalf("unknown dup produced events: %+v", evs)
	}
}

func TestSymlink(t *testing.T) {
	src := `1 symlink("/home/u/proj/prog", "/home/u/bin/prog") = 0
1 symlinkat("/a/target", AT_FDCWD, "/b/link") = 0
`
	evs := parseAll(t, src)
	if len(evs) != 2 {
		t.Fatalf("events = %d: %+v", len(evs), evs)
	}
	if evs[0].Op != trace.OpSymlink || evs[0].Path != "/home/u/bin/prog" ||
		evs[0].Path2 != "/home/u/proj/prog" {
		t.Errorf("symlink = %+v", evs[0])
	}
	if evs[1].Path != "/b/link" || evs[1].Path2 != "/a/target" {
		t.Errorf("symlinkat = %+v", evs[1])
	}
}
