package strace

import (
	"strings"
	"testing"
)

// FuzzParseLine asserts the strace parser never panics and maintains
// its invariants on arbitrary input: produced events have increasing
// sequence numbers and a valid op.
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		`1234  12:00:01.000001 openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 3`,
		`1234 close(3) = 0`,
		`100 execve("/usr/bin/cc", ["cc"], ...) = 0`,
		`100 clone(child_stack=NULL) = 101`,
		`1 rename("/a", "/b") = 0`,
		`1 symlinkat("/t", AT_FDCWD, "/l") = 0`,
		`1 openat(AT_FDCWD, "/x <unfinished ...>`,
		`1 <... openat resumed>) = 5`,
		`+++ exited with 0 +++`,
		`--- SIGCHLD ---`,
		`garbage ( with parens ) = and equals`,
		`999999999999999999999 open("/x") = 1`,
		"1 stat(\"/weird \\\" quote\", 0x0) = -1 ENOENT",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		p := NewParser()
		var lastSeq uint64
		// Feed the fuzz line between two normal lines so stashed
		// unfinished state is exercised.
		for _, l := range []string{
			`7 openat(AT_FDCWD, "/a", O_RDONLY) = 3`,
			line,
			`7 close(3) = 0`,
		} {
			ev, ok := p.ParseLine(l)
			if !ok {
				continue
			}
			if ev.Seq <= lastSeq {
				t.Fatalf("sequence not increasing: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if ev.Op.String() == "invalid" {
				t.Fatalf("invalid op emitted for %q", l)
			}
		}
	})
}

// FuzzParse runs whole inputs through the stream parser.
func FuzzParse(f *testing.F) {
	f.Add("1 open(\"/a\") = 3\n1 close(3) = 0\n")
	f.Add("")
	f.Add(strings.Repeat("x", 2000))
	f.Fuzz(func(t *testing.T, src string) {
		p := NewParser()
		if _, err := p.Parse(strings.NewReader(src)); err != nil {
			// Scanner errors (e.g. absurd line lengths) are acceptable;
			// panics are not, and would fail the test by themselves.
			t.Skip()
		}
	})
}
