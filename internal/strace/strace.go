// Package strace converts the output of strace(1) into SEER trace
// events, serving as the user-level observer on real Linux systems.
//
// The paper's observer was a kernel modification that traced system
// calls (§4.11). Without a kernel module, the same reference stream can
// be captured with
//
//	strace -f -tt -e trace=open,openat,creat,close,stat,lstat,access,
//	    execve,fork,vfork,clone,unlink,unlinkat,rename,renameat,mkdir,
//	    chdir,getdents,getdents64,exit_group -o trace.txt <shell>
//
// and fed to this parser. It tracks file descriptors per process so
// close(fd) and getdents(fd) resolve to pathnames, handles the
// `<unfinished ...>` / `<... resumed>` line splitting strace produces
// under -f, and maps each call to the corresponding trace.Op.
package strace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/fmg/seer/internal/trace"
)

// Parser converts strace output into events.
type Parser struct {
	// Uid is the user id stamped on produced events (strace output does
	// not carry one); default 1000.
	Uid int32
	// BaseTime anchors relative/absent timestamps.
	BaseTime time.Time

	seq uint64
	// fdTables maps pid → fd → path.
	fdTables map[trace.PID]map[int]string
	// unfinished stashes the prefix of an `<unfinished ...>` line until
	// the matching `<... resumed>` arrives.
	unfinished map[trace.PID]string
	lastTime   time.Time
	// anchor carries the date strace's time-of-day timestamps are
	// anchored to; it starts at BaseTime's date and rolls forward each
	// time the clock wraps past midnight.
	anchor time.Time
}

// NewParser returns a Parser with defaults.
func NewParser() *Parser {
	return &Parser{
		Uid:        1000,
		BaseTime:   time.Date(1997, 1, 6, 8, 0, 0, 0, time.UTC),
		fdTables:   make(map[trace.PID]map[int]string),
		unfinished: make(map[trace.PID]string),
	}
}

// Parse consumes strace output and returns the events it could extract.
// Unrecognized lines are skipped; a line that looks like strace output
// but cannot be parsed is skipped silently too (strace emits plenty of
// decoration: signals, exit markers, attach notices).
func (p *Parser) Parse(r io.Reader) ([]trace.Event, error) {
	var events []trace.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if ev, ok := p.ParseLine(sc.Text()); ok {
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		return events, err
	}
	return events, nil
}

// ParseLine parses one line of strace output.
func (p *Parser) ParseLine(line string) (trace.Event, bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return trace.Event{}, false
	}
	// Leading pid (present under -f); without -f assume pid 1.
	pid := trace.PID(1)
	if i := leadingDigits(line); i > 0 {
		n, _ := strconv.Atoi(line[:i])
		pid = trace.PID(n)
		line = strings.TrimSpace(line[i:])
	}
	// Optional timestamp: HH:MM:SS or HH:MM:SS.micro. Timestamps carry
	// only a time of day, so the date comes from the rolling anchor: a
	// clock that jumps backwards by more than ~12 hours is a trace
	// crossing midnight, not time travel — roll the anchored date
	// forward and keep going. (Without this, every event after
	// midnight was clamped to lastTime forever.) Small backwards
	// jitter within the same day is still clamped monotone below.
	if p.anchor.IsZero() {
		p.anchor = p.BaseTime
	}
	ts := p.lastTime
	if t, rest, ok := parseTimestamp(line, p.anchor); ok {
		if !p.lastTime.IsZero() && p.lastTime.Sub(t) > 12*time.Hour {
			p.anchor = p.anchor.AddDate(0, 0, 1)
			t = t.AddDate(0, 0, 1)
		}
		ts = t
		line = rest
	}
	if ts.IsZero() {
		ts = p.BaseTime
	}
	if ts.Before(p.lastTime) {
		ts = p.lastTime
	}
	p.lastTime = ts

	// Exit markers: `+++ exited with 0 +++`.
	if strings.HasPrefix(line, "+++") {
		if strings.Contains(line, "exited") {
			return p.emit(ts, pid, trace.Event{Op: trace.OpExit}), true
		}
		return trace.Event{}, false
	}
	// Signal lines: `--- SIGCHLD ... ---`.
	if strings.HasPrefix(line, "---") {
		return trace.Event{}, false
	}
	// Unfinished/resumed pairs.
	if strings.HasSuffix(line, "<unfinished ...>") {
		p.unfinished[pid] = strings.TrimSuffix(line, "<unfinished ...>")
		return trace.Event{}, false
	}
	if strings.HasPrefix(line, "<...") {
		prefix, ok := p.unfinished[pid]
		if !ok {
			return trace.Event{}, false
		}
		delete(p.unfinished, pid)
		end := strings.Index(line, "resumed>")
		if end < 0 {
			return trace.Event{}, false
		}
		line = prefix + strings.TrimSpace(line[end+len("resumed>"):])
	}

	call, args, result, ok := splitCall(line)
	if !ok {
		return trace.Event{}, false
	}
	failed := strings.HasPrefix(result, "-1")
	retval, _ := strconv.Atoi(firstField(result))

	switch call {
	case "open", "openat", "creat":
		path, ok := pathArg(args, call == "openat")
		if !ok {
			return trace.Event{}, false
		}
		op := trace.OpOpen
		if call == "creat" || strings.Contains(args, "O_CREAT") {
			op = trace.OpCreate
		}
		if strings.Contains(args, "O_DIRECTORY") {
			op = trace.OpReadDir
		}
		if !failed && retval >= 0 {
			p.fdTable(pid)[retval] = path
		}
		return p.emit(ts, pid, trace.Event{Op: op, Path: path, Failed: failed}), true
	case "close":
		fd, err := strconv.Atoi(firstField(args))
		if err != nil {
			return trace.Event{}, false
		}
		path, ok := p.fdTable(pid)[fd]
		if !ok {
			return trace.Event{}, false
		}
		delete(p.fdTable(pid), fd)
		return p.emit(ts, pid, trace.Event{Op: trace.OpClose, Path: path, Failed: failed}), true
	case "stat", "stat64", "lstat", "lstat64", "access", "statx", "newfstatat", "faccessat":
		path, ok := pathArg(args, call == "statx" || call == "newfstatat" || call == "faccessat")
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpStat, Path: path, Failed: failed}), true
	case "execve":
		path, ok := pathArg(args, false)
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{
			Op: trace.OpExec, Path: path, Prog: basename(path), Failed: failed,
		}), true
	case "fork", "vfork", "clone", "clone3":
		if failed || retval <= 0 {
			return trace.Event{}, false
		}
		// The child pid is the return value; the caller is the parent.
		// The child inherits the parent's file descriptors: without
		// this, close(fd)/getdents(fd) in a forked child resolve to
		// nothing and those events are silently dropped. CLONE_FILES
		// shares one fd table between parent and child; fork/vfork and
		// plain clone copy it.
		child := trace.PID(retval)
		if strings.Contains(args, "CLONE_FILES") {
			p.fdTables[child] = p.fdTable(pid)
		} else {
			parent := p.fdTable(pid)
			ct := make(map[int]string, len(parent))
			for fd, path := range parent {
				ct[fd] = path
			}
			p.fdTables[child] = ct
		}
		return p.emit(ts, child, trace.Event{Op: trace.OpFork, PPID: pid}), true
	case "unlink", "unlinkat":
		path, ok := pathArg(args, call == "unlinkat")
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpDelete, Path: path, Failed: failed}), true
	case "rename", "renameat", "renameat2":
		at := call != "rename"
		from, to, ok := twoPathArgs(args, at)
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{
			Op: trace.OpRename, Path: from, Path2: to, Failed: failed,
		}), true
	case "mkdir", "mkdirat":
		path, ok := pathArg(args, call == "mkdirat")
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpMkdir, Path: path, Failed: failed}), true
	case "chdir":
		path, ok := pathArg(args, false)
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpChdir, Path: path, Failed: failed}), true
	case "getdents", "getdents64":
		fd, err := strconv.Atoi(firstField(args))
		if err != nil {
			return trace.Event{}, false
		}
		path, ok := p.fdTable(pid)[fd]
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpReadDir, Path: path, Failed: failed}), true
	case "symlink", "symlinkat":
		// symlink(target, linkpath) / symlinkat(target, dirfd, linkpath):
		// the target string comes first in both; the quoted-string
		// scanner skips the unquoted dirfd naturally.
		target, link, ok := twoPathArgs(args, false)
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{
			Op: trace.OpSymlink, Path: link, Path2: target, Failed: failed,
		}), true
	case "dup", "dup2", "dup3":
		// Descriptor duplication: the new fd aliases the old one's file,
		// so a later close(newfd) resolves correctly.
		if failed || retval < 0 {
			return trace.Event{}, false
		}
		oldFd, err := strconv.Atoi(firstField(args))
		if err != nil {
			return trace.Event{}, false
		}
		if path, ok := p.fdTable(pid)[oldFd]; ok {
			p.fdTable(pid)[retval] = path
		}
		return trace.Event{}, false
	case "exit", "exit_group":
		return p.emit(ts, pid, trace.Event{Op: trace.OpExit}), true
	}
	return trace.Event{}, false
}

func (p *Parser) emit(ts time.Time, pid trace.PID, ev trace.Event) trace.Event {
	p.seq++
	ev.Seq = p.seq
	ev.Time = ts
	ev.PID = pid
	if ev.Uid == 0 {
		ev.Uid = p.Uid
	}
	return ev
}

func (p *Parser) fdTable(pid trace.PID) map[int]string {
	t := p.fdTables[pid]
	if t == nil {
		t = make(map[int]string)
		p.fdTables[pid] = t
	}
	return t
}

func leadingDigits(s string) int {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	// Require whitespace after the pid so `open(...)` is not mistaken.
	if i > 0 && i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		return i
	}
	return 0
}

// parseTimestamp accepts `HH:MM:SS` or `HH:MM:SS.micros` prefixes and
// anchors them to base's date.
func parseTimestamp(line string, base time.Time) (time.Time, string, bool) {
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return time.Time{}, line, false
	}
	tok := line[:sp]
	var h, m int
	var sec float64
	if n, err := fmt.Sscanf(tok, "%d:%d:%f", &h, &m, &sec); n != 3 || err != nil {
		return time.Time{}, line, false
	}
	t := time.Date(base.Year(), base.Month(), base.Day(), h, m, 0, 0, base.Location()).
		Add(time.Duration(sec * float64(time.Second)))
	return t, strings.TrimSpace(line[sp:]), true
}

// splitCall breaks `name(args) = result ...` into its parts.
func splitCall(line string) (call, args, result string, ok bool) {
	open := strings.IndexByte(line, '(')
	if open <= 0 {
		return "", "", "", false
	}
	call = line[:open]
	if strings.ContainsAny(call, " \t<") {
		return "", "", "", false
	}
	argsEnd, resStart := resultSplit(line)
	if argsEnd < open {
		return "", "", "", false
	}
	args = line[open+1 : argsEnd]
	result = strings.TrimSpace(line[resStart:])
	return call, args, result, true
}

// resultSplit locates the `) = result` separator. strace pads short
// calls so the `=` column lines up (`close(3)          = 0`), so any
// run of spaces between the closing paren and the `=` must be
// accepted, not just a single one.
func resultSplit(line string) (argsEnd, resStart int) {
	if eq := strings.LastIndex(line, ") = "); eq >= 0 {
		return eq, eq + 4
	}
	for i := len(line) - 2; i > 0; i-- {
		if line[i] != '=' || line[i+1] != ' ' {
			continue
		}
		j := i - 1
		for j >= 0 && line[j] == ' ' {
			j--
		}
		if j >= 0 && line[j] == ')' {
			return j, i + 2
		}
	}
	return -1, -1
}

// pathArg extracts the first quoted string argument; for *at calls the
// dirfd argument precedes it and is skipped.
func pathArg(args string, at bool) (string, bool) {
	s := args
	if at {
		comma := strings.IndexByte(s, ',')
		if comma < 0 {
			return "", false
		}
		s = s[comma+1:]
	}
	return quotedString(s)
}

func twoPathArgs(args string, at bool) (string, string, bool) {
	s := args
	if at {
		if comma := strings.IndexByte(s, ','); comma >= 0 {
			s = s[comma+1:]
		}
	}
	from, rest, ok := quotedStringRest(s)
	if !ok {
		return "", "", false
	}
	if at {
		// renameat: ..., newdirfd, "newpath" — skip the fd.
		if comma := strings.IndexByte(rest, ','); comma >= 0 {
			rest = rest[comma+1:]
		}
	}
	to, _, ok := quotedStringRest(rest)
	if !ok {
		return "", "", false
	}
	return from, to, true
}

func quotedString(s string) (string, bool) {
	out, _, ok := quotedStringRest(s)
	return out, ok
}

func quotedStringRest(s string) (string, string, bool) {
	start := strings.IndexByte(s, '"')
	if start < 0 {
		return "", "", false
	}
	i := start + 1
	var b strings.Builder
	for i < len(s) {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			n := decodeEscape(&b, s[i+1:])
			i += 1 + n
			continue
		}
		if c == '"' {
			return b.String(), s[i+1:], true
		}
		b.WriteByte(c)
		i++
	}
	return "", "", false
}

// decodeEscape decodes one strace string escape starting after the
// backslash, writes the decoded byte to b, and returns how many input
// bytes were consumed. strace emits C-style escapes: \n, \t and
// friends, \" and \\, and octal \NNN (1–3 digits) for everything
// non-printable — decoding them as the literal next character mangles
// any path with a newline, tab, or non-ASCII byte in it.
func decodeEscape(b *strings.Builder, s string) int {
	if len(s) == 0 {
		return 0
	}
	switch s[0] {
	case 'n':
		b.WriteByte('\n')
	case 't':
		b.WriteByte('\t')
	case 'r':
		b.WriteByte('\r')
	case 'f':
		b.WriteByte('\f')
	case 'v':
		b.WriteByte('\v')
	case 'a':
		b.WriteByte('\a')
	case 'b':
		b.WriteByte('\b')
	case 'x':
		// Hex escape (strace -xx): \xNN.
		v, n := 0, 0
		for n < 2 && 1+n < len(s) && isHexDigit(s[1+n]) {
			v = v<<4 | hexVal(s[1+n])
			n++
		}
		if n == 0 {
			b.WriteByte('x')
			return 1
		}
		b.WriteByte(byte(v))
		return 1 + n
	case '0', '1', '2', '3', '4', '5', '6', '7':
		// Octal escape: \NNN, up to three digits.
		v, n := 0, 0
		for n < 3 && n < len(s) && s[n] >= '0' && s[n] <= '7' {
			v = v<<3 | int(s[n]-'0')
			n++
		}
		b.WriteByte(byte(v))
		return n
	default:
		// \" and \\ decode to the character itself; so does anything
		// unrecognized.
		b.WriteByte(s[0])
	}
	return 1
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func firstField(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return strings.TrimSuffix(fields[0], ",")
}

func basename(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
