// Package strace converts the output of strace(1) into SEER trace
// events, serving as the user-level observer on real Linux systems.
//
// The paper's observer was a kernel modification that traced system
// calls (§4.11). Without a kernel module, the same reference stream can
// be captured with
//
//	strace -f -tt -e trace=open,openat,creat,close,stat,lstat,access,
//	    execve,fork,vfork,clone,unlink,unlinkat,rename,renameat,mkdir,
//	    chdir,getdents,getdents64,exit_group -o trace.txt <shell>
//
// and fed to this parser. It tracks file descriptors per process so
// close(fd) and getdents(fd) resolve to pathnames, handles the
// `<unfinished ...>` / `<... resumed>` line splitting strace produces
// under -f, and maps each call to the corresponding trace.Op.
package strace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/fmg/seer/internal/trace"
)

// Parser converts strace output into events.
type Parser struct {
	// Uid is the user id stamped on produced events (strace output does
	// not carry one); default 1000.
	Uid int32
	// BaseTime anchors relative/absent timestamps.
	BaseTime time.Time

	seq uint64
	// fdTables maps pid → fd → path.
	fdTables map[trace.PID]map[int]string
	// unfinished stashes the prefix of an `<unfinished ...>` line until
	// the matching `<... resumed>` arrives.
	unfinished map[trace.PID]string
	lastTime   time.Time
}

// NewParser returns a Parser with defaults.
func NewParser() *Parser {
	return &Parser{
		Uid:        1000,
		BaseTime:   time.Date(1997, 1, 6, 8, 0, 0, 0, time.UTC),
		fdTables:   make(map[trace.PID]map[int]string),
		unfinished: make(map[trace.PID]string),
	}
}

// Parse consumes strace output and returns the events it could extract.
// Unrecognized lines are skipped; a line that looks like strace output
// but cannot be parsed is skipped silently too (strace emits plenty of
// decoration: signals, exit markers, attach notices).
func (p *Parser) Parse(r io.Reader) ([]trace.Event, error) {
	var events []trace.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if ev, ok := p.ParseLine(sc.Text()); ok {
			events = append(events, ev)
		}
	}
	if err := sc.Err(); err != nil {
		return events, err
	}
	return events, nil
}

// ParseLine parses one line of strace output.
func (p *Parser) ParseLine(line string) (trace.Event, bool) {
	line = strings.TrimSpace(line)
	if line == "" {
		return trace.Event{}, false
	}
	// Leading pid (present under -f); without -f assume pid 1.
	pid := trace.PID(1)
	if i := leadingDigits(line); i > 0 {
		n, _ := strconv.Atoi(line[:i])
		pid = trace.PID(n)
		line = strings.TrimSpace(line[i:])
	}
	// Optional timestamp: HH:MM:SS or HH:MM:SS.micro.
	ts := p.lastTime
	if t, rest, ok := parseTimestamp(line, p.BaseTime); ok {
		ts = t
		line = rest
	}
	if ts.IsZero() {
		ts = p.BaseTime
	}
	if ts.Before(p.lastTime) {
		ts = p.lastTime
	}
	p.lastTime = ts

	// Exit markers: `+++ exited with 0 +++`.
	if strings.HasPrefix(line, "+++") {
		if strings.Contains(line, "exited") {
			return p.emit(ts, pid, trace.Event{Op: trace.OpExit}), true
		}
		return trace.Event{}, false
	}
	// Signal lines: `--- SIGCHLD ... ---`.
	if strings.HasPrefix(line, "---") {
		return trace.Event{}, false
	}
	// Unfinished/resumed pairs.
	if strings.HasSuffix(line, "<unfinished ...>") {
		p.unfinished[pid] = strings.TrimSuffix(line, "<unfinished ...>")
		return trace.Event{}, false
	}
	if strings.HasPrefix(line, "<...") {
		prefix, ok := p.unfinished[pid]
		if !ok {
			return trace.Event{}, false
		}
		delete(p.unfinished, pid)
		end := strings.Index(line, "resumed>")
		if end < 0 {
			return trace.Event{}, false
		}
		line = prefix + strings.TrimSpace(line[end+len("resumed>"):])
	}

	call, args, result, ok := splitCall(line)
	if !ok {
		return trace.Event{}, false
	}
	failed := strings.HasPrefix(result, "-1")
	retval, _ := strconv.Atoi(firstField(result))

	switch call {
	case "open", "openat", "creat":
		path, ok := pathArg(args, call == "openat")
		if !ok {
			return trace.Event{}, false
		}
		op := trace.OpOpen
		if call == "creat" || strings.Contains(args, "O_CREAT") {
			op = trace.OpCreate
		}
		if strings.Contains(args, "O_DIRECTORY") {
			op = trace.OpReadDir
		}
		if !failed && retval >= 0 {
			p.fdTable(pid)[retval] = path
		}
		return p.emit(ts, pid, trace.Event{Op: op, Path: path, Failed: failed}), true
	case "close":
		fd, err := strconv.Atoi(firstField(args))
		if err != nil {
			return trace.Event{}, false
		}
		path, ok := p.fdTable(pid)[fd]
		if !ok {
			return trace.Event{}, false
		}
		delete(p.fdTable(pid), fd)
		return p.emit(ts, pid, trace.Event{Op: trace.OpClose, Path: path, Failed: failed}), true
	case "stat", "stat64", "lstat", "lstat64", "access", "statx", "newfstatat", "faccessat":
		path, ok := pathArg(args, call == "statx" || call == "newfstatat" || call == "faccessat")
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpStat, Path: path, Failed: failed}), true
	case "execve":
		path, ok := pathArg(args, false)
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{
			Op: trace.OpExec, Path: path, Prog: basename(path), Failed: failed,
		}), true
	case "fork", "vfork", "clone", "clone3":
		if failed || retval <= 0 {
			return trace.Event{}, false
		}
		// The child pid is the return value; the caller is the parent.
		return p.emit(ts, trace.PID(retval), trace.Event{Op: trace.OpFork, PPID: pid}), true
	case "unlink", "unlinkat":
		path, ok := pathArg(args, call == "unlinkat")
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpDelete, Path: path, Failed: failed}), true
	case "rename", "renameat", "renameat2":
		at := call != "rename"
		from, to, ok := twoPathArgs(args, at)
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{
			Op: trace.OpRename, Path: from, Path2: to, Failed: failed,
		}), true
	case "mkdir", "mkdirat":
		path, ok := pathArg(args, call == "mkdirat")
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpMkdir, Path: path, Failed: failed}), true
	case "chdir":
		path, ok := pathArg(args, false)
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpChdir, Path: path, Failed: failed}), true
	case "getdents", "getdents64":
		fd, err := strconv.Atoi(firstField(args))
		if err != nil {
			return trace.Event{}, false
		}
		path, ok := p.fdTable(pid)[fd]
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{Op: trace.OpReadDir, Path: path, Failed: failed}), true
	case "symlink", "symlinkat":
		// symlink(target, linkpath) / symlinkat(target, dirfd, linkpath):
		// the target string comes first in both; the quoted-string
		// scanner skips the unquoted dirfd naturally.
		target, link, ok := twoPathArgs(args, false)
		if !ok {
			return trace.Event{}, false
		}
		return p.emit(ts, pid, trace.Event{
			Op: trace.OpSymlink, Path: link, Path2: target, Failed: failed,
		}), true
	case "dup", "dup2", "dup3":
		// Descriptor duplication: the new fd aliases the old one's file,
		// so a later close(newfd) resolves correctly.
		if failed || retval < 0 {
			return trace.Event{}, false
		}
		oldFd, err := strconv.Atoi(firstField(args))
		if err != nil {
			return trace.Event{}, false
		}
		if path, ok := p.fdTable(pid)[oldFd]; ok {
			p.fdTable(pid)[retval] = path
		}
		return trace.Event{}, false
	case "exit", "exit_group":
		return p.emit(ts, pid, trace.Event{Op: trace.OpExit}), true
	}
	return trace.Event{}, false
}

func (p *Parser) emit(ts time.Time, pid trace.PID, ev trace.Event) trace.Event {
	p.seq++
	ev.Seq = p.seq
	ev.Time = ts
	ev.PID = pid
	if ev.Uid == 0 {
		ev.Uid = p.Uid
	}
	return ev
}

func (p *Parser) fdTable(pid trace.PID) map[int]string {
	t := p.fdTables[pid]
	if t == nil {
		t = make(map[int]string)
		p.fdTables[pid] = t
	}
	return t
}

func leadingDigits(s string) int {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	// Require whitespace after the pid so `open(...)` is not mistaken.
	if i > 0 && i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		return i
	}
	return 0
}

// parseTimestamp accepts `HH:MM:SS` or `HH:MM:SS.micros` prefixes and
// anchors them to base's date.
func parseTimestamp(line string, base time.Time) (time.Time, string, bool) {
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return time.Time{}, line, false
	}
	tok := line[:sp]
	var h, m int
	var sec float64
	if n, err := fmt.Sscanf(tok, "%d:%d:%f", &h, &m, &sec); n != 3 || err != nil {
		return time.Time{}, line, false
	}
	t := time.Date(base.Year(), base.Month(), base.Day(), h, m, 0, 0, base.Location()).
		Add(time.Duration(sec * float64(time.Second)))
	return t, strings.TrimSpace(line[sp:]), true
}

// splitCall breaks `name(args) = result ...` into its parts.
func splitCall(line string) (call, args, result string, ok bool) {
	open := strings.IndexByte(line, '(')
	if open <= 0 {
		return "", "", "", false
	}
	call = line[:open]
	if strings.ContainsAny(call, " \t<") {
		return "", "", "", false
	}
	eq := strings.LastIndex(line, ") = ")
	if eq < 0 {
		return "", "", "", false
	}
	args = line[open+1 : eq]
	result = strings.TrimSpace(line[eq+4:])
	return call, args, result, true
}

// pathArg extracts the first quoted string argument; for *at calls the
// dirfd argument precedes it and is skipped.
func pathArg(args string, at bool) (string, bool) {
	s := args
	if at {
		comma := strings.IndexByte(s, ',')
		if comma < 0 {
			return "", false
		}
		s = s[comma+1:]
	}
	return quotedString(s)
}

func twoPathArgs(args string, at bool) (string, string, bool) {
	s := args
	if at {
		if comma := strings.IndexByte(s, ','); comma >= 0 {
			s = s[comma+1:]
		}
	}
	from, rest, ok := quotedStringRest(s)
	if !ok {
		return "", "", false
	}
	if at {
		// renameat: ..., newdirfd, "newpath" — skip the fd.
		if comma := strings.IndexByte(rest, ','); comma >= 0 {
			rest = rest[comma+1:]
		}
	}
	to, _, ok := quotedStringRest(rest)
	if !ok {
		return "", "", false
	}
	return from, to, true
}

func quotedString(s string) (string, bool) {
	out, _, ok := quotedStringRest(s)
	return out, ok
}

func quotedStringRest(s string) (string, string, bool) {
	start := strings.IndexByte(s, '"')
	if start < 0 {
		return "", "", false
	}
	i := start + 1
	var b strings.Builder
	for i < len(s) {
		c := s[i]
		if c == '\\' && i+1 < len(s) {
			b.WriteByte(s[i+1])
			i += 2
			continue
		}
		if c == '"' {
			return b.String(), s[i+1:], true
		}
		b.WriteByte(c)
		i++
	}
	return "", "", false
}

func firstField(s string) string {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return ""
	}
	return strings.TrimSuffix(fields[0], ",")
}

func basename(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
