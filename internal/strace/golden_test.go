package strace

import (
	"os"
	"testing"
	"time"

	"github.com/fmg/seer/internal/trace"
)

// TestGoldenFixture parses a committed `strace -f -tt` capture of a
// small build session end-to-end and checks the exact event sequence.
// The fixture deliberately packs the parser's hard cases into one
// realistic trace: multiple pids with fd-table inheritance across
// clone, a child closing an fd the parent opened, dup2 aliasing,
// octal/tab escapes in paths, an unfinished/resumed pair interleaved
// with another process, signal and exit decoration lines, and a
// midnight crossing.
func TestGoldenFixture(t *testing.T) {
	f, err := os.Open("testdata/golden.strace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := NewParser().Parse(f)
	if err != nil {
		t.Fatal(err)
	}

	want := []struct {
		pid    trace.PID
		op     trace.Op
		path   string
		failed bool
	}{
		{1000, trace.OpExec, "/bin/sh", false},
		{1000, trace.OpOpen, "/etc/profile", false},
		{1000, trace.OpClose, "/etc/profile", false},
		{1000, trace.OpStat, "/home/u/café/notes.txt", false}, // octal UTF-8 escapes
		{1000, trace.OpStat, "/home/u/.hushlogin", true},      // ENOENT
		{1001, trace.OpFork, "", false},
		{1001, trace.OpExec, "/usr/bin/make", false},
		{1001, trace.OpOpen, "/home/u/proj/Makefile", false},
		{1001, trace.OpReadDir, "/home/u/proj", false}, // O_DIRECTORY open
		{1001, trace.OpReadDir, "/home/u/proj", false}, // getdents64
		{1001, trace.OpClose, "/home/u/proj", false},
		{1002, trace.OpFork, "", false},
		{1002, trace.OpExec, "/usr/bin/cc", false},
		{1002, trace.OpClose, "/home/u/proj/Makefile", false}, // inherited fd 3
		{1002, trace.OpOpen, "/home/u/proj/main.c", false},
		{1002, trace.OpCreate, "/home/u/proj/main.o", false},
		{1002, trace.OpClose, "/home/u/proj/main.o", false}, // fd 4
		{1002, trace.OpClose, "/home/u/proj/main.o", false}, // fd 5 via dup2
		{1002, trace.OpClose, "/home/u/proj/main.c", false}, // after midnight
		{1002, trace.OpExit, "", false},
		{1002, trace.OpExit, "", false}, // +++ exited +++
		{1000, trace.OpStat, "/home/u/café", false},
		{1001, trace.OpOpen, "/home/u/proj/tab\tfile", false}, // resumed
		{1001, trace.OpClose, "/home/u/proj/tab\tfile", false},
		{1001, trace.OpRename, "/home/u/proj/main.o", false},
		{1001, trace.OpExit, "", false},
		{1001, trace.OpExit, "", false},
	}
	if len(evs) != len(want) {
		for i, ev := range evs {
			t.Logf("ev[%d] = pid=%d op=%v path=%q", i, ev.PID, ev.Op, ev.Path)
		}
		t.Fatalf("events = %d, want %d", len(evs), len(want))
	}
	for i, w := range want {
		ev := evs[i]
		if ev.PID != w.pid || ev.Op != w.op || ev.Path != w.path || ev.Failed != w.failed {
			t.Errorf("ev[%d] = pid=%d op=%v path=%q failed=%v, want pid=%d op=%v path=%q failed=%v",
				i, ev.PID, ev.Op, ev.Path, ev.Failed, w.pid, w.op, w.path, w.failed)
		}
	}

	// Fork parentage.
	if evs[5].PPID != 1000 {
		t.Errorf("first fork PPID = %d, want 1000", evs[5].PPID)
	}
	if evs[11].PPID != 1001 {
		t.Errorf("second fork PPID = %d, want 1001", evs[11].PPID)
	}

	// The rename's destination.
	if evs[24].Path2 != "/home/u/proj/build/main.o" {
		t.Errorf("rename dest = %q", evs[24].Path2)
	}

	// Times are monotone and the midnight crossing advanced the date:
	// 23:59:59.9 → 00:00:00.1 is 200ms, not a clamp and not a day.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time.Before(evs[i-1].Time) {
			t.Errorf("ev[%d] time %v before ev[%d] %v", i, evs[i].Time, i-1, evs[i-1].Time)
		}
	}
	preMidnight := evs[17].Time  // close(5) at 23:59:59.900000
	postMidnight := evs[18].Time // close(3) at 00:00:00.100000
	if d := postMidnight.Sub(preMidnight); d != 200*time.Millisecond {
		t.Errorf("midnight gap = %v, want 200ms", d)
	}
	if preMidnight.Day() == postMidnight.Day() {
		t.Error("midnight crossing did not advance the date")
	}
}
