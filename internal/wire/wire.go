// Package wire provides the small binary encoding layer used to persist
// SEER's correlator database (paper §5.3 notes that storing the
// database on disk "would be relatively simple"; this is that code).
//
// The format is little-endian with varint integers and length-prefixed
// strings. Writers and readers carry sticky errors so call sites stay
// linear.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// castagnoli is the CRC32-C polynomial table used for frame checksums
// (hardware-accelerated on most platforms).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer serializes values.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush completes the stream.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.bw.Write(buf[:n])
}

// I64 writes a signed varint (zig-zag).
func (w *Writer) I64(v int64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, w.err = w.bw.Write(buf[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 as its IEEE bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a boolean byte.
func (w *Writer) Bool(v bool) {
	var b uint64
	if v {
		b = 1
	}
	w.U64(b)
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.bw.WriteString(s)
}

// Frame writes a CRC32-framed section: a tag string, the payload length
// as a varint, the payload bytes produced by body, and a CRC32-C of the
// payload. Readers can verify a frame's integrity before decoding its
// contents, so a flipped bit inside a section is detected as corruption
// rather than silently misparsed.
func (w *Writer) Frame(tag string, body func(*Writer)) {
	if w.err != nil {
		return
	}
	var buf bytes.Buffer
	sub := NewWriter(&buf)
	body(sub)
	if err := sub.Flush(); err != nil {
		w.err = err
		return
	}
	payload := buf.Bytes()
	w.Str(tag)
	w.U64(uint64(len(payload)))
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = err
		return
	}
	w.U64(uint64(crc32.Checksum(payload, castagnoli)))
}

// EncodeFrame renders one CRC32-framed message to a byte slice — the
// request/response framing used by the networked replication substrate
// (each HTTP body is exactly one frame, so a truncated or corrupted
// transfer is detected before any field is trusted).
func EncodeFrame(tag string, body func(*Writer)) ([]byte, error) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Frame(tag, body)
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFrame reads one frame with the expected tag from r (typically
// an HTTP request or response body) and decodes it with body. maxFrame
// bounds the payload allocation; 0 keeps the Reader default.
func DecodeFrame(r io.Reader, tag string, maxFrame uint64, body func(*Reader) error) error {
	rd := NewReader(r)
	if maxFrame > 0 {
		rd.MaxFrame = maxFrame
	}
	return rd.Frame(tag, body)
}

// Reader deserializes values written by Writer.
type Reader struct {
	br  *bufio.Reader
	err error
	// MaxString bounds string allocations against corrupt input.
	MaxString uint64
	// MaxFrame bounds frame payload sizes against corrupt input.
	MaxFrame uint64
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r), MaxString: 1 << 20, MaxFrame: 1 << 30}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.err = err
	}
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.br)
	if err != nil {
		r.err = err
	}
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// Frame reads a section written by Writer.Frame, verifies the tag and
// the CRC32-C checksum, and invokes body with a Reader over the payload.
// Any frame-level failure (wrong tag, truncation, checksum mismatch)
// and any error returned by body become the result; the outer reader's
// sticky error is set as well so callers can stay linear.
//
// The declared payload length is read in bounded chunks, so an
// adversarial length header cannot force a huge allocation: reading
// fails as soon as the underlying stream runs dry.
func (r *Reader) Frame(tag string, body func(*Reader) error) error {
	if r.err != nil {
		return r.err
	}
	fail := func(err error) error {
		r.err = err
		return err
	}
	got := r.Str()
	if r.err != nil {
		return fmt.Errorf("wire: section %q: %w", tag, r.err)
	}
	if got != tag {
		return fail(fmt.Errorf("wire: section %q: found %q instead", tag, got))
	}
	n := r.U64()
	if r.err != nil {
		return fmt.Errorf("wire: section %q: %w", tag, r.err)
	}
	if n > r.MaxFrame {
		return fail(fmt.Errorf("wire: section %q: length %d exceeds limit %d", tag, n, r.MaxFrame))
	}
	payload, err := readBounded(r.br, n)
	if err != nil {
		return fail(fmt.Errorf("wire: section %q: %w", tag, err))
	}
	want := r.U64()
	if r.err != nil {
		return fmt.Errorf("wire: section %q: %w", tag, r.err)
	}
	if sum := uint64(crc32.Checksum(payload, castagnoli)); sum != want {
		return fail(fmt.Errorf("wire: section %q: checksum mismatch (got %#x, want %#x)", tag, sum, want))
	}
	sub := NewReader(bytes.NewReader(payload))
	sub.MaxString = r.MaxString
	sub.MaxFrame = r.MaxFrame
	if err := body(sub); err != nil {
		return fail(err)
	}
	if sub.Err() != nil {
		return fail(sub.Err())
	}
	return nil
}

// readBounded reads exactly n bytes in fixed-size chunks. Unlike a
// single make([]byte, n), a corrupt length only costs memory for bytes
// actually present in the stream.
func readBounded(br *bufio.Reader, n uint64) ([]byte, error) {
	const chunk = 64 * 1024
	cap0 := n
	if cap0 > chunk {
		cap0 = chunk
	}
	buf := make([]byte, 0, cap0)
	var tmp [chunk]byte
	for uint64(len(buf)) < n {
		want := n - uint64(len(buf))
		if want > chunk {
			want = chunk
		}
		m, err := io.ReadFull(br, tmp[:want])
		buf = append(buf, tmp[:m]...)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > r.MaxString {
		r.err = fmt.Errorf("wire: string length %d exceeds limit %d", n, r.MaxString)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		r.err = err
		return ""
	}
	return string(buf)
}
