// Package wire provides the small binary encoding layer used to persist
// SEER's correlator database (paper §5.3 notes that storing the
// database on disk "would be relatively simple"; this is that code).
//
// The format is little-endian with varint integers and length-prefixed
// strings. Writers and readers carry sticky errors so call sites stay
// linear.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer serializes values.
type Writer struct {
	bw  *bufio.Writer
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush completes the stream.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// U64 writes an unsigned varint.
func (w *Writer) U64(v uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, w.err = w.bw.Write(buf[:n])
}

// I64 writes a signed varint (zig-zag).
func (w *Writer) I64(v int64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, w.err = w.bw.Write(buf[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 as its IEEE bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes a boolean byte.
func (w *Writer) Bool(v bool) {
	var b uint64
	if v {
		b = 1
	}
	w.U64(b)
}

// Str writes a length-prefixed string.
func (w *Writer) Str(s string) {
	w.U64(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.bw.WriteString(s)
}

// Reader deserializes values written by Writer.
type Reader struct {
	br  *bufio.Reader
	err error
	// MaxString bounds string allocations against corrupt input.
	MaxString uint64
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r), MaxString: 1 << 20}
}

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.err = err
	}
	return v
}

// I64 reads a signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.br)
	if err != nil {
		r.err = err
	}
	return v
}

// Int reads an int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.U64()
	if r.err != nil {
		return ""
	}
	if n > r.MaxString {
		r.err = fmt.Errorf("wire: string length %d exceeds limit %d", n, r.MaxString)
		return ""
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		r.err = err
		return ""
	}
	return string(buf)
}
