package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(0)
	w.U64(math.MaxUint64)
	w.I64(-1)
	w.I64(math.MinInt64)
	w.Int(42)
	w.F64(3.14159)
	w.F64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.Str("")
	w.Str("héllo wörld")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if r.U64() != 0 || r.U64() != math.MaxUint64 {
		t.Error("u64")
	}
	if r.I64() != -1 || r.I64() != math.MinInt64 {
		t.Error("i64")
	}
	if r.Int() != 42 {
		t.Error("int")
	}
	if r.F64() != 3.14159 || !math.IsInf(r.F64(), -1) {
		t.Error("f64")
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool")
	}
	if r.Str() != "" || r.Str() != "héllo wörld" {
		t.Error("str")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	// Reading past the end yields an error.
	r.U64()
	if r.Err() == nil {
		t.Error("no error past end")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, fl float64, b bool, s string) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.U64(u)
		w.I64(i)
		w.F64(fl)
		w.Bool(b)
		w.Str(s)
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		gotU, gotI, gotF, gotB, gotS := r.U64(), r.I64(), r.F64(), r.Bool(), r.Str()
		if r.Err() != nil {
			return false
		}
		sameF := gotF == fl || (math.IsNaN(gotF) && math.IsNaN(fl))
		return gotU == u && gotI == i && sameF && gotB == b && gotS == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 30) // claims a gigabyte-long string
	w.Flush()
	r := NewReader(&buf)
	r.Str()
	if r.Err() == nil {
		t.Error("oversized string accepted")
	}
}

func TestStickyWriteError(t *testing.T) {
	w := NewWriter(failingWriter{})
	for i := 0; i < 100000; i++ {
		w.U64(uint64(i))
	}
	if w.Flush() == nil {
		t.Fatal("no error from failing writer")
	}
	w.Str("after error")
	if w.Err() == nil {
		t.Error("error not sticky")
	}
}

func TestStickyReadError(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	r.U64()
	if r.Err() == nil {
		t.Fatal("no error on empty input")
	}
	if r.Str() != "" || r.Bool() || r.F64() != 0 || r.Int() != 0 {
		t.Error("reads after error not zero")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func frameBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Frame("hdr", func(w *Writer) {
		w.U64(7)
		w.Str("payload")
	})
	w.Frame("tail", func(w *Writer) {
		w.Int(-3)
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	data := frameBytes(t)
	r := NewReader(bytes.NewReader(data))
	err := r.Frame("hdr", func(sr *Reader) error {
		if sr.U64() != 7 || sr.Str() != "payload" {
			t.Error("hdr payload mangled")
		}
		return sr.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Frame("tail", func(sr *Reader) error {
		if sr.Int() != -3 {
			t.Error("tail payload mangled")
		}
		return sr.Err()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameDetectsBitFlips(t *testing.T) {
	data := frameBytes(t)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			flipped := bytes.Clone(data)
			flipped[i] ^= 1 << bit
			r := NewReader(bytes.NewReader(flipped))
			err1 := r.Frame("hdr", func(sr *Reader) error {
				sr.U64()
				sr.Str()
				return sr.Err()
			})
			err2 := r.Frame("tail", func(sr *Reader) error {
				sr.Int()
				return sr.Err()
			})
			if err1 == nil && err2 == nil {
				t.Fatalf("flip of byte %d bit %d undetected", i, bit)
			}
		}
	}
}

func TestFrameDetectsTruncation(t *testing.T) {
	data := frameBytes(t)
	for n := 0; n < len(data); n++ {
		r := NewReader(bytes.NewReader(data[:n]))
		err1 := r.Frame("hdr", func(sr *Reader) error { return nil })
		err2 := r.Frame("tail", func(sr *Reader) error { return nil })
		if err1 == nil && err2 == nil {
			t.Fatalf("truncation at %d undetected", n)
		}
	}
}

func TestFrameWrongTag(t *testing.T) {
	data := frameBytes(t)
	r := NewReader(bytes.NewReader(data))
	if err := r.Frame("other", func(sr *Reader) error { return nil }); err == nil {
		t.Error("wrong tag accepted")
	}
}

func TestFrameLengthBounded(t *testing.T) {
	// A frame claiming an enormous payload must fail fast without a
	// matching allocation.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Str("hdr")
	w.U64(1 << 40)
	w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.MaxFrame = 1 << 50 // the stream, not the limit, must stop it
	if err := r.Frame("hdr", func(sr *Reader) error { return nil }); err == nil {
		t.Error("lying length accepted")
	}

	r = NewReader(bytes.NewReader(buf.Bytes()))
	if err := r.Frame("hdr", func(sr *Reader) error { return nil }); err == nil {
		t.Error("length above MaxFrame accepted")
	}
}

func TestFrameBodyErrorSticky(t *testing.T) {
	data := frameBytes(t)
	r := NewReader(bytes.NewReader(data))
	if err := r.Frame("hdr", func(sr *Reader) error { return io.ErrClosedPipe }); err != io.ErrClosedPipe {
		t.Fatalf("body error not propagated: %v", err)
	}
	if r.Err() != io.ErrClosedPipe {
		t.Error("body error not sticky on outer reader")
	}
}

func TestEncodeDecodeFrame(t *testing.T) {
	b, err := EncodeFrame("msg", func(w *Writer) {
		w.U64(7)
		w.Str("hello")
	})
	if err != nil {
		t.Fatal(err)
	}
	var v uint64
	var s string
	err = DecodeFrame(bytes.NewReader(b), "msg", 0, func(r *Reader) error {
		v = r.U64()
		s = r.Str()
		return r.Err()
	})
	if err != nil || v != 7 || s != "hello" {
		t.Errorf("round trip = %d %q %v", v, s, err)
	}

	// Wrong tag refused.
	if err := DecodeFrame(bytes.NewReader(b), "other", 0, func(r *Reader) error { return nil }); err == nil {
		t.Error("wrong tag accepted")
	}
	// Bit flip refused.
	for i := range b {
		bad := append([]byte(nil), b...)
		bad[i] ^= 0x10
		if err := DecodeFrame(bytes.NewReader(bad), "msg", 0, func(r *Reader) error {
			r.U64()
			r.Str()
			return r.Err()
		}); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	// maxFrame enforced.
	if err := DecodeFrame(bytes.NewReader(b), "msg", 1, func(r *Reader) error { return nil }); err == nil {
		t.Error("oversized frame accepted")
	}
}
