package wire

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(0)
	w.U64(math.MaxUint64)
	w.I64(-1)
	w.I64(math.MinInt64)
	w.Int(42)
	w.F64(3.14159)
	w.F64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.Str("")
	w.Str("héllo wörld")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if r.U64() != 0 || r.U64() != math.MaxUint64 {
		t.Error("u64")
	}
	if r.I64() != -1 || r.I64() != math.MinInt64 {
		t.Error("i64")
	}
	if r.Int() != 42 {
		t.Error("int")
	}
	if r.F64() != 3.14159 || !math.IsInf(r.F64(), -1) {
		t.Error("f64")
	}
	if !r.Bool() || r.Bool() {
		t.Error("bool")
	}
	if r.Str() != "" || r.Str() != "héllo wörld" {
		t.Error("str")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	// Reading past the end yields an error.
	r.U64()
	if r.Err() == nil {
		t.Error("no error past end")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, fl float64, b bool, s string) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.U64(u)
		w.I64(i)
		w.F64(fl)
		w.Bool(b)
		w.Str(s)
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		gotU, gotI, gotF, gotB, gotS := r.U64(), r.I64(), r.F64(), r.Bool(), r.Str()
		if r.Err() != nil {
			return false
		}
		sameF := gotF == fl || (math.IsNaN(gotF) && math.IsNaN(fl))
		return gotU == u && gotI == i && sameF && gotB == b && gotS == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U64(1 << 30) // claims a gigabyte-long string
	w.Flush()
	r := NewReader(&buf)
	r.Str()
	if r.Err() == nil {
		t.Error("oversized string accepted")
	}
}

func TestStickyWriteError(t *testing.T) {
	w := NewWriter(failingWriter{})
	for i := 0; i < 100000; i++ {
		w.U64(uint64(i))
	}
	if w.Flush() == nil {
		t.Fatal("no error from failing writer")
	}
	w.Str("after error")
	if w.Err() == nil {
		t.Error("error not sticky")
	}
}

func TestStickyReadError(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	r.U64()
	if r.Err() == nil {
		t.Fatal("no error on empty input")
	}
	if r.Str() != "" || r.Bool() || r.F64() != 0 || r.Int() != 0 {
		t.Error("reads after error not zero")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
