package observer

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/trace"
	"github.com/fmg/seer/internal/wire"
)

func TestObserverPersistRoundTrip(t *testing.T) {
	h := newHarness(func(p *config.Params) {
		p.FrequentFileMinRefs = 10
		p.FrequentFileFraction = 0.10
		p.AutoTempMinCreates = 5
	}, nil)
	// Build varied state: a frequent library, a meaningless program
	// history, recency, a critical file, churned temp dir.
	lib := "/lib/libc.so"
	for i := 0; i < 20; i++ {
		h.open(1, lib)
		h.close(1, lib)
		other := fmt.Sprintf("/home/u/f%02d", i)
		h.open(1, other)
		h.close(1, other)
	}
	h.open(1, "/etc/passwd")
	h.evFull(trace.Event{PID: 7, Op: trace.OpExec, Path: "/usr/bin/find", Prog: "find"})
	for d := 0; d < 3; d++ {
		dir := fmt.Sprintf("/home/u/d%d", d)
		h.ev(trace.OpReadDir, 7, dir)
		for i := 0; i < DefaultDirSize; i++ {
			h.ev(trace.OpStat, 7, fmt.Sprintf("%s/x%02d", dir, i))
		}
	}
	h.ev(trace.OpExit, 7, "")
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("/scratch/s%02d", i)
		h.ev(trace.OpCreate, 1, p)
		h.ev(trace.OpDelete, 1, p)
	}

	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	h.o.Save(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	p := config.Defaults()
	p.FrequentFileMinRefs = 10
	p.FrequentFileFraction = 0.10
	p.AutoTempMinCreates = 5
	restored := New(p, config.DefaultControl(), h.fs, nil)
	if err := restored.Load(wire.NewReader(&buf)); err != nil {
		t.Fatal(err)
	}

	if restored.Stats().Events != h.o.Stats().Events {
		t.Error("event counter lost")
	}
	libID := h.fs.Lookup(lib).ID
	if !restored.IsFrequent(libID) {
		t.Error("frequent designation lost")
	}
	if !restored.ProgramMeaningless("find") {
		t.Error("program history lost")
	}
	if restored.LastRef(libID) != h.o.LastRef(libID) {
		t.Error("recency lost")
	}
	if !restored.IsAutoTemp("/scratch/anything") {
		t.Error("auto-temp churn lost")
	}
	var critID simfs.FileID
	if f := h.fs.Lookup("/etc/passwd"); f != nil {
		critID = f.ID
	}
	if !restored.IsExcluded(critID) {
		t.Error("exclusion set lost")
	}
}

func TestObserverLoadTruncated(t *testing.T) {
	h := newHarness(nil, nil)
	h.open(1, "/a")
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	h.o.Save(w)
	w.Flush()
	data := buf.Bytes()
	fresh := New(config.Defaults(), config.DefaultControl(),
		simfs.New(stats.NewRand(1)), nil)
	if err := fresh.Load(wire.NewReader(bytes.NewReader(data[:2]))); err == nil {
		t.Error("truncated observer state accepted")
	}
}
