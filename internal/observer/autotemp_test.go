package observer

import (
	"fmt"
	"testing"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/trace"
)

// A directory with create-then-delete churn (a compiler scratch area
// not listed in any control file) is learned as transient: after the
// threshold, new files there are completely ignored (§4.5 future work).
func TestAutoTempDetection(t *testing.T) {
	h := newHarness(func(p *config.Params) {
		p.AutoTempMinCreates = 10
		p.AutoTempRatio = 0.8
	}, nil)
	const dir = "/var/cache/scratch"
	for i := 0; i < 12; i++ {
		path := fmt.Sprintf("%s/work%03d", dir, i)
		h.ev(trace.OpCreate, 1, path)
		h.ev(trace.OpClose, 1, path)
		h.ev(trace.OpDelete, 1, path)
	}
	if !h.o.IsAutoTemp(dir + "/anything") {
		t.Fatal("churning directory not learned as transient")
	}
	dirs := h.o.AutoTempDirs()
	if len(dirs) != 1 || dirs[0] != dir {
		t.Errorf("AutoTempDirs = %v", dirs)
	}
	// New files there produce no references at all.
	before := h.o.Stats().DroppedTemp
	refs := h.ev(trace.OpCreate, 1, dir+"/work999")
	if len(refs) != 0 {
		t.Errorf("transient-dir create produced refs %+v", refs)
	}
	if h.o.Stats().DroppedTemp <= before {
		t.Error("drop not counted as temp")
	}
}

// Directories where created files are kept (object directories) never
// become transient.
func TestAutoTempSparesKeptFiles(t *testing.T) {
	h := newHarness(func(p *config.Params) {
		p.AutoTempMinCreates = 10
		p.AutoTempRatio = 0.8
	}, nil)
	const dir = "/home/u/proj/obj"
	for i := 0; i < 40; i++ {
		path := fmt.Sprintf("%s/mod%03d.o", dir, i)
		h.ev(trace.OpCreate, 1, path)
		h.ev(trace.OpClose, 1, path)
	}
	// A few deletions (a make clean of 10%) stay under the ratio.
	for i := 0; i < 4; i++ {
		h.ev(trace.OpDelete, 1, fmt.Sprintf("%s/mod%03d.o", dir, i))
	}
	if h.o.IsAutoTemp(dir + "/modXXX.o") {
		t.Fatal("object directory wrongly learned as transient")
	}
}

func TestAutoTempDisabled(t *testing.T) {
	h := newHarness(func(p *config.Params) {
		p.AutoTempMinCreates = 0
	}, nil)
	const dir = "/scratch"
	for i := 0; i < 50; i++ {
		path := fmt.Sprintf("%s/f%03d", dir, i)
		h.ev(trace.OpCreate, 1, path)
		h.ev(trace.OpDelete, 1, path)
	}
	if h.o.IsAutoTemp(dir + "/x") {
		t.Fatal("detection ran while disabled")
	}
	if h.o.AutoTempDirs() != nil {
		t.Fatal("AutoTempDirs non-nil while disabled")
	}
}

// Recreation after deletion (the deletion-delay dance of §4.8) counts
// as churn only when the file is actually deleted and not recreated;
// verify the detector needs the configured volume before firing.
func TestAutoTempThresholdRespected(t *testing.T) {
	h := newHarness(func(p *config.Params) {
		p.AutoTempMinCreates = 30
		p.AutoTempRatio = 0.8
	}, nil)
	const dir = "/var/work"
	for i := 0; i < 20; i++ { // below the 30-create threshold
		path := fmt.Sprintf("%s/f%03d", dir, i)
		h.ev(trace.OpCreate, 1, path)
		h.ev(trace.OpDelete, 1, path)
	}
	if h.o.IsAutoTemp(dir + "/x") {
		t.Fatal("detector fired below the creation threshold")
	}
}
