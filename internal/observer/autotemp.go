package observer

import (
	"github.com/fmg/seer/internal/simfs"
)

// Automatic temporary-directory detection — the future work of paper
// §4.5 ("It would be much more elegant to detect temporary files
// automatically... We plan to pursue automated algorithms in the
// future").
//
// The paper's obstacle was that by the time an individual file is
// recognizably temporary it has already displaced better relationships.
// Learning at the *directory* level sidesteps that: once a directory
// has demonstrated create-then-delete churn, every future file created
// there is ignored from the start, exactly as if the administrator had
// listed it in the control file. Directories where files are created
// but kept (object directories, mail folders) never qualify because
// their delete/create ratio stays low.

// dirChurn tracks creation/deletion behaviour of one directory.
type dirChurn struct {
	creates uint64
	deletes uint64
}

// noteCreate records a file creation in the directory containing path.
func (o *Observer) noteCreate(path string) {
	if o.p.AutoTempMinCreates <= 0 {
		return
	}
	dir := simfs.Dir(path)
	c := o.churn[dir]
	if c == nil {
		c = &dirChurn{}
		o.churn[dir] = c
	}
	c.creates++
}

// noteDelete records a deletion in the directory containing path.
func (o *Observer) noteDelete(path string) {
	if o.p.AutoTempMinCreates <= 0 {
		return
	}
	dir := simfs.Dir(path)
	if c := o.churn[dir]; c != nil {
		c.deletes++
	}
}

// IsAutoTemp reports whether the directory containing path has learned
// transient behaviour: at least AutoTempMinCreates creations with a
// delete/create ratio of at least AutoTempRatio.
func (o *Observer) IsAutoTemp(path string) bool {
	if o.p.AutoTempMinCreates <= 0 {
		return false
	}
	c := o.churn[simfs.Dir(path)]
	if c == nil || c.creates < uint64(o.p.AutoTempMinCreates) {
		return false
	}
	return float64(c.deletes)/float64(c.creates) >= o.p.AutoTempRatio
}

// AutoTempDirs returns the directories currently classified transient.
func (o *Observer) AutoTempDirs() []string {
	var out []string
	for dir, c := range o.churn {
		if c.creates >= uint64(o.p.AutoTempMinCreates) &&
			float64(c.deletes)/float64(c.creates) >= o.p.AutoTempRatio {
			out = append(out, dir)
		}
	}
	return out
}
