package observer

import (
	"sort"

	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/wire"
)

// Save serializes the observer's durable state: reference counts,
// recency, the frequent/always/excluded sets, program histories, and
// the event counters. Per-process state (open files, pending stats,
// reference streams) is deliberately transient — a daemon restart looks
// like a reboot, after which live processes are re-learned, exactly as
// the paper's system behaved across restarts.
func (o *Observer) Save(w *wire.Writer) {
	w.U64(o.stats.Events)
	w.U64(o.stats.References)
	w.U64(o.totalRefs)

	saveIDMapU64 := func(m map[simfs.FileID]uint64) {
		ids := make([]simfs.FileID, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Int(len(ids))
		for _, id := range ids {
			w.U64(uint64(id))
			w.U64(m[id])
		}
	}
	saveIDSet := func(m map[simfs.FileID]bool) {
		ids := make([]simfs.FileID, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		w.Int(len(ids))
		for _, id := range ids {
			w.U64(uint64(id))
		}
	}
	saveIDMapU64(o.refCounts)
	saveIDMapU64(o.lastRef)
	saveIDSet(o.frequent)
	saveIDSet(o.always)
	saveIDSet(o.excluded)

	progs := make([]string, 0, len(o.hist))
	for p := range o.hist {
		progs = append(progs, p)
	}
	sort.Strings(progs)
	w.Int(len(progs))
	for _, p := range progs {
		h := o.hist[p]
		w.Str(p)
		w.F64(h.learned)
		w.F64(h.touched)
		w.Int(h.runs)
	}

	dirs := make([]string, 0, len(o.churn))
	for d := range o.churn {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	w.Int(len(dirs))
	for _, d := range dirs {
		c := o.churn[d]
		w.Str(d)
		w.U64(c.creates)
		w.U64(c.deletes)
	}
}

// Load restores state saved with Save into a freshly constructed
// Observer (same params, control and fs as at save time).
func (o *Observer) Load(r *wire.Reader) error {
	o.stats.Events = r.U64()
	o.stats.References = r.U64()
	o.totalRefs = r.U64()

	loadIDMapU64 := func(m map[simfs.FileID]uint64) {
		n := r.Int()
		for i := 0; i < n && r.Err() == nil; i++ {
			id := simfs.FileID(r.U64())
			m[id] = r.U64()
		}
	}
	loadIDSet := func(m map[simfs.FileID]bool) {
		n := r.Int()
		for i := 0; i < n && r.Err() == nil; i++ {
			m[simfs.FileID(r.U64())] = true
		}
	}
	loadIDMapU64(o.refCounts)
	loadIDMapU64(o.lastRef)
	loadIDSet(o.frequent)
	loadIDSet(o.always)
	loadIDSet(o.excluded)

	n := r.Int()
	for i := 0; i < n && r.Err() == nil; i++ {
		p := r.Str()
		h := &progHistory{
			learned: r.F64(),
			touched: r.F64(),
			runs:    r.Int(),
		}
		o.hist[p] = h
	}

	nd := r.Int()
	for i := 0; i < nd && r.Err() == nil; i++ {
		d := r.Str()
		o.churn[d] = &dirChurn{creates: r.U64(), deletes: r.U64()}
	}
	return r.Err()
}
