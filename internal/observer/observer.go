// Package observer implements SEER's observation layer: it watches the
// raw trace-event stream, classifies each access, converts pathnames to
// absolute form, and emits cleaned references for the correlator.
//
// Most of the paper's "real-world intrusions" (§4) live here:
//
//   - meaningless-process detection via the potential-vs-actual access
//     threshold with per-program history (§4.1, approach 4);
//   - getcwd pattern detection (§4.1);
//   - frequently-referenced files — shared libraries — excluded from
//     distance calculations but always hoarded (§4.2);
//   - critical files and the dot-file heuristic (§4.3);
//   - transient directories, completely ignored (§4.5);
//   - non-file objects, excluded from distances but always hoarded
//     (§4.6);
//   - per-process reference streams with fork inheritance and exit
//     merging (§4.7);
//   - non-open references: execs as lifetime opens, deletes with delayed
//     table removal, attribute examinations folded into a following open
//     (§4.8);
//   - superuser filtering (§4.10).
package observer

import (
	"strings"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/proc"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/trace"
)

// RefKind classifies a cleaned reference for the correlator.
type RefKind uint8

// The reference kinds.
const (
	// RefOpen is a file open; Pairs carries the distance samples.
	RefOpen RefKind = iota
	// RefPoint is a point-in-time reference (stat, rename, mkdir).
	RefPoint
	// RefCreate is a file creation (open of a fresh file); a pending
	// deletion of the same name must be revived.
	RefCreate
	// RefDelete is a deletion; the file's relationship data should be
	// marked for delayed removal.
	RefDelete
)

// Reference is one cleaned, classified file reference.
type Reference struct {
	Kind RefKind
	File *simfs.File
	// Pairs are the Definition-3 distance samples from prior references
	// in the same process stream to this one.
	Pairs []proc.RefPair
}

// Stats counts what the observer did, for tooling and tests.
type Stats struct {
	Events            uint64
	References        uint64 // cleaned references emitted
	DroppedSuperuser  uint64
	DroppedTemp       uint64
	DroppedFailed     uint64
	DroppedMeaningles uint64
	DroppedGetcwd     uint64
	DroppedExcluded   uint64
	StatsFolded       uint64 // attribute examinations folded into opens
}

// progHistory accumulates the potential-vs-actual access behaviour of a
// program across process lifetimes (§4.1, approach 4).
type progHistory struct {
	learned float64
	touched float64
	runs    int
}

// pidState is the observer's per-process bookkeeping beyond what
// proc.Process holds.
type pidState struct {
	learned     int // files learned about from directory reads
	touched     int // files actually referenced
	meaningless bool
	inGetcwd    bool
	lastReadDir string
	// pendingStat delays an attribute examination one event so that an
	// immediately following open absorbs it (§4.8).
	pendingStat *simfs.File
	// execFile is the program image held open for the process lifetime.
	execFile *simfs.File
}

// Observer is the observation layer. It is not safe for concurrent use.
type Observer struct {
	p       config.Params
	ctl     *config.Control
	fs      *simfs.FS
	procs   *proc.Table
	dirSize func(path string) int

	refCounts map[simfs.FileID]uint64
	totalRefs uint64
	// lastRef records the most recent meaningful reference per file on
	// the observer's event clock; hoard ranking consumes it. Unlike
	// LRU's raw history it is NOT updated by meaningless processes.
	lastRef map[simfs.FileID]uint64
	// frequent is the sticky frequently-referenced set (§4.2). A file
	// is promoted when its share of references exceeds
	// FrequentFileFraction and demoted only when it falls below half
	// the threshold, so borderline files do not oscillate.
	frequent map[simfs.FileID]bool
	// always contains files hoarded regardless of reference behaviour
	// for path-based reasons: critical files and non-file objects.
	// Frequent files are added dynamically by AlwaysHoard.
	always map[simfs.FileID]bool
	// excluded files generate no semantic-distance relationships for
	// path-based reasons; frequent files are excluded dynamically.
	excluded map[simfs.FileID]bool

	hist  map[string]*progHistory
	state map[trace.PID]*pidState
	// churn tracks per-directory create/delete behaviour for automatic
	// temporary-directory detection (§4.5 future work).
	churn map[string]*dirChurn

	// exclChanged journals files newly added to the exclusion set
	// (frequent promotions, critical/non-file discoveries) since the last
	// TakeExclusionChanges drain; exclSeen dedups it. exclDirty is set
	// when a file LEAVES the exclusion set (a frequent demotion): the
	// file's old relationships reappear everywhere at once, which an
	// incremental clustering cannot localize, so the drain reports it as
	// a full-rebuild signal.
	exclChanged []simfs.FileID
	exclSeen    map[simfs.FileID]bool
	exclDirty   bool

	stats Stats
}

// DefaultDirSize is the directory fan-out assumed when no DirSizer is
// provided (real traces do not say how many entries a readdir saw).
const DefaultDirSize = 20

// New returns an Observer writing file state into fs. dirSize reports
// how many entries a directory read learns about; nil uses
// DefaultDirSize.
func New(p config.Params, ctl *config.Control, fs *simfs.FS, dirSize func(path string) int) *Observer {
	if ctl == nil {
		ctl = config.EmptyControl()
	}
	if dirSize == nil {
		dirSize = func(string) int { return DefaultDirSize }
	}
	procs := proc.NewTable(p.Window)
	procs.Mode = proc.Mode(p.DistanceMode)
	return &Observer{
		p:         p,
		ctl:       ctl,
		fs:        fs,
		procs:     procs,
		dirSize:   dirSize,
		refCounts: make(map[simfs.FileID]uint64),
		lastRef:   make(map[simfs.FileID]uint64),
		frequent:  make(map[simfs.FileID]bool),
		always:    make(map[simfs.FileID]bool),
		excluded:  make(map[simfs.FileID]bool),
		hist:      make(map[string]*progHistory),
		state:     make(map[trace.PID]*pidState),
		churn:     make(map[string]*dirChurn),
		exclSeen:  make(map[simfs.FileID]bool),
	}
}

// noteExcluded journals a file that just joined the exclusion set.
func (o *Observer) noteExcluded(id simfs.FileID) {
	if !o.exclSeen[id] {
		o.exclSeen[id] = true
		o.exclChanged = append(o.exclChanged, id)
	}
}

// TakeExclusionChanges appends the files that joined the exclusion set
// since the previous call to dst and reports (via full) whether any file
// LEFT it — an un-exclusion resurfaces relationships an incremental
// clustering never saw, so the caller must fall back to a full rebuild.
// Both journals reset.
func (o *Observer) TakeExclusionChanges(dst []simfs.FileID) (_ []simfs.FileID, full bool) {
	dst = append(dst, o.exclChanged...)
	o.exclChanged = o.exclChanged[:0]
	clear(o.exclSeen)
	full = o.exclDirty
	o.exclDirty = false
	return dst, full
}

// Stats returns the event accounting so far.
func (o *Observer) Stats() Stats { return o.stats }

// Procs exposes the process table (inspection tooling).
func (o *Observer) Procs() *proc.Table { return o.procs }

// AlwaysHoard returns the ids of files that must be hoarded regardless
// of reference behaviour: frequent files, critical files and non-file
// objects (§4.2, §4.3, §4.6).
func (o *Observer) AlwaysHoard() []simfs.FileID {
	out := make([]simfs.FileID, 0, len(o.always))
	for id := range o.always {
		out = append(out, id)
	}
	for _, id := range o.FrequentFiles() {
		if !o.always[id] {
			out = append(out, id)
		}
	}
	return out
}

// IsExcluded reports whether the file is excluded from semantic-distance
// and clustering calculations.
func (o *Observer) IsExcluded(id simfs.FileID) bool {
	return o.excluded[id] || o.IsFrequent(id)
}

// IsFrequent reports whether the file is currently designated
// frequently-referenced (§4.2).
func (o *Observer) IsFrequent(id simfs.FileID) bool { return o.frequent[id] }

// FrequentFiles returns the current frequently-referenced set.
func (o *Observer) FrequentFiles() []simfs.FileID {
	out := make([]simfs.FileID, 0, len(o.frequent))
	for id := range o.frequent {
		out = append(out, id)
	}
	return out
}

// updateFrequent applies the promotion/demotion hysteresis after a
// reference to f. A file that was merely hot during a burst early in
// the trace loses the designation as the denominator grows.
func (o *Observer) updateFrequent(id simfs.FileID) {
	if o.totalRefs < uint64(o.p.FrequentFileMinRefs) {
		return
	}
	ratio := float64(o.refCounts[id]) / float64(o.totalRefs)
	switch {
	case !o.frequent[id] && ratio > o.p.FrequentFileFraction:
		o.frequent[id] = true
		o.noteExcluded(id)
	case o.frequent[id] && ratio < o.p.FrequentFileFraction/2:
		delete(o.frequent, id)
		// Demotion un-excludes: its stored relationships come back into
		// view everywhere at once, which only a full rebuild can honour.
		o.exclDirty = true
	}
}

// LastRef returns the observer-clock position of the file's most recent
// meaningful reference (0 if never meaningfully referenced).
func (o *Observer) LastRef(id simfs.FileID) uint64 { return o.lastRef[id] }

// LastRefs exposes the recency table. The returned map is live; callers
// must treat it as read-only.
func (o *Observer) LastRefs() map[simfs.FileID]uint64 { return o.lastRef }

// ProgramMeaningless reports whether the program's history marks it
// meaningless (it habitually touches most files it learns about).
func (o *Observer) ProgramMeaningless(prog string) bool {
	if o.ctl.IsMeaninglessProgram(prog) {
		return true
	}
	h := o.hist[prog]
	if h == nil || h.learned < float64(o.p.MeaninglessMinLearned) {
		return false
	}
	return h.touched/h.learned >= o.p.MeaninglessRatio
}

func (o *Observer) pid(pid trace.PID) *pidState {
	s := o.state[pid]
	if s == nil {
		s = &pidState{}
		o.state[pid] = s
	}
	return s
}

// Observe processes one trace event and returns the cleaned references
// it produced (possibly none, possibly several: a flushed pending stat
// plus the current reference).
func (o *Observer) Observe(ev trace.Event) []Reference {
	o.stats.Events++
	if ev.Op.IsConnectivity() {
		return nil
	}
	switch ev.Op {
	case trace.OpFork:
		o.fork(ev)
		return nil
	case trace.OpExit:
		return o.exit(ev)
	}
	// Superuser calls are mostly not traced (§4.10).
	if ev.Uid == 0 {
		o.stats.DroppedSuperuser++
		return nil
	}
	p := o.procs.Get(ev.PID)
	p.Stream.SetNow(float64(ev.Time.UnixNano()) / 1e9)
	ps := o.pid(ev.PID)
	path := o.absolutize(p, ev.Path)

	var out []Reference
	// An attribute examination immediately followed by an open of the
	// same file is discarded; anything else flushes it as a point
	// reference (§4.8).
	if ps.pendingStat != nil {
		pending := ps.pendingStat
		ps.pendingStat = nil
		if ev.Op == trace.OpOpen && pending.Path == path {
			o.stats.StatsFolded++
		} else if ref, ok := o.emitRef(p, ps, pending, RefPoint); ok {
			out = append(out, ref)
		}
	}

	switch ev.Op {
	case trace.OpChdir:
		p.Cwd = path
		o.endGetcwd(ps)
		return out
	case trace.OpReadDir:
		o.readDir(p, ps, path)
		return out
	case trace.OpExec:
		out = append(out, o.exec(ev, p, ps, path)...)
		return out
	}

	// Anything else ends a getcwd climb (§4.1).
	o.endGetcwd(ps)

	if ev.Failed {
		// Accesses to nonexistent files are common and meaningless for
		// relationship inference (§4.4).
		o.stats.DroppedFailed++
		return out
	}

	switch ev.Op {
	case trace.OpOpen, trace.OpCreate:
		prev := o.fs.Lookup(path)
		kind := RefOpen
		if prev == nil || !prev.Exists {
			// A fresh file, or a recreation within the deletion delay:
			// the correlator revives any pending relationship removal.
			kind = RefCreate
		}
		f := o.fs.Intern(path, simfs.Regular, ev.Seq)
		if kind == RefCreate {
			o.noteCreate(path)
		}
		if ref, ok := o.emitRef(p, ps, f, kind); ok {
			out = append(out, ref)
		}
	case trace.OpClose:
		if f := o.fs.Lookup(path); f != nil {
			p.Stream.Close(f.ID)
		}
	case trace.OpStat:
		f := o.fs.Intern(path, simfs.Regular, ev.Seq)
		// Defer: the examination is counted only if it is not absorbed
		// by an immediately following open (§4.8).
		if !o.ctl.IsTemp(path) && !o.filteredPath(f) {
			ps.pendingStat = f
		}
	case trace.OpDelete:
		if f := o.fs.Lookup(path); f != nil && f.Exists {
			o.noteDelete(path)
			if ref, ok := o.emitRef(p, ps, f, RefDelete); ok {
				out = append(out, ref)
			}
			o.fs.Remove(path)
		}
	case trace.OpRename:
		if f := o.fs.Lookup(path); f != nil && f.Exists {
			newPath := o.absolutize(p, ev.Path2)
			o.fs.Rename(path, newPath, ev.Seq)
			if ref, ok := o.emitRef(p, ps, f, RefPoint); ok {
				out = append(out, ref)
			}
		}
	case trace.OpMkdir:
		o.fs.Intern(path, simfs.Directory, ev.Seq)
	case trace.OpSymlink:
		// Symbolic links are non-file objects: nearly free to store and
		// critical when present, so always hoarded and never related
		// (§4.6).
		f := o.fs.Intern(path, simfs.Symlink, ev.Seq)
		o.always[f.ID] = true
		if !o.excluded[f.ID] {
			o.excluded[f.ID] = true
			o.noteExcluded(f.ID)
		}
	}
	return out
}

// emitRef runs the shared filtering (temp, critical, non-file, frequent,
// meaningless) and, when the reference survives, drives the process
// stream and produces the Reference. It returns ok=false when filtered.
func (o *Observer) emitRef(p *proc.Process, ps *pidState, f *simfs.File, kind RefKind) (Reference, bool) {
	switch o.countAndFilter(p, ps, f) {
	case verdictAllow:
	case verdictExcluded:
		// Excluded files still count as intervening opens for the
		// lifetime distance measure (Definition 3): a run of shared
		// library references genuinely separates what comes before it
		// from what comes after, even though the library itself forms
		// no relationships.
		p.Stream.Skip()
		return Reference{}, false
	default:
		return Reference{}, false
	}
	var pairs []proc.RefPair
	switch kind {
	case RefOpen, RefCreate:
		pairs = p.Stream.Open(f.ID)
	default:
		pairs = p.Stream.PointRef(f.ID)
	}
	o.stats.References++
	return Reference{Kind: kind, File: f, Pairs: o.filterPairs(pairs)}, true
}

// filterPairs drops samples whose source file is excluded (frequent
// files must not link unrelated projects, §4.2).
func (o *Observer) filterPairs(pairs []proc.RefPair) []proc.RefPair {
	kept := pairs[:0]
	for _, pr := range pairs {
		if o.IsExcluded(pr.From) {
			continue
		}
		kept = append(kept, pr)
	}
	return kept
}

// filteredPath applies the path-based exclusion filters (non-file,
// critical), recording always-hoard and exclusion state as a side
// effect, and reports whether the file is excluded.
func (o *Observer) filteredPath(f *simfs.File) bool {
	path := f.Path
	if o.ctl.IsIgnored(path) || o.ctl.IsCritical(path) {
		// Non-file objects: always hoarded, never related (§4.6).
		// Critical files: outside SEER's control, always hoarded (§4.3).
		o.always[f.ID] = true
		if !o.excluded[f.ID] {
			o.excluded[f.ID] = true
			o.noteExcluded(f.ID)
		}
		o.stats.DroppedExcluded++
		return true
	}
	return false
}

// verdict is the outcome of per-reference filtering.
type verdict uint8

const (
	verdictAllow verdict = iota
	// verdictExcluded drops the relationship but the open still counts
	// as an intervening reference (frequent, critical, non-file).
	verdictExcluded
	// verdictIgnore drops the reference entirely (temporary files,
	// meaningless processes).
	verdictIgnore
)

// countAndFilter applies the per-reference bookkeeping and decides
// whether the reference should produce relationship data.
func (o *Observer) countAndFilter(p *proc.Process, ps *pidState, f *simfs.File) verdict {
	if o.ctl.IsTemp(f.Path) || o.IsAutoTemp(f.Path) {
		o.stats.DroppedTemp++
		return verdictIgnore
	}
	if o.filteredPath(f) {
		return verdictExcluded
	}

	// Meaninglessness accounting (§4.1): the process touched a file.
	ps.touched++
	if !ps.meaningless && ps.learned >= o.p.MeaninglessMinLearned &&
		float64(ps.touched)/float64(ps.learned) >= o.p.MeaninglessRatio {
		ps.meaningless = true
	}
	if ps.meaningless {
		o.stats.DroppedMeaningles++
		return verdictIgnore
	}

	// Frequent-file accounting (§4.2) and recency for hoard ranking.
	o.totalRefs++
	o.refCounts[f.ID]++
	o.lastRef[f.ID] = o.stats.Events
	o.updateFrequent(f.ID)
	if o.frequent[f.ID] {
		o.stats.DroppedExcluded++
		return verdictExcluded
	}
	return verdictAllow
}

func (o *Observer) fork(ev trace.Event) {
	// OpFork carries the child in PID and the parent in PPID.
	o.procs.Fork(ev.PPID, ev.PID)
	parentState := o.pid(ev.PPID)
	o.state[ev.PID] = &pidState{
		execFile:    parentState.execFile,
		meaningless: parentState.meaningless,
	}
}

func (o *Observer) exit(ev trace.Event) []Reference {
	ps := o.state[ev.PID]
	var out []Reference
	if ps != nil {
		p := o.procs.Get(ev.PID)
		if ps.pendingStat != nil {
			pending := ps.pendingStat
			ps.pendingStat = nil
			if ref, ok := o.emitRef(p, ps, pending, RefPoint); ok {
				out = append(out, ref)
			}
		}
		if ps.execFile != nil {
			p.Stream.Close(ps.execFile.ID)
		}
		o.foldHistory(p.Prog, ps)
		delete(o.state, ev.PID)
	}
	o.procs.Exit(ev.PID)
	return out
}

func (o *Observer) exec(ev trace.Event, p *proc.Process, ps *pidState, path string) []Reference {
	// Exec replaces the process image: close the previous one (§4.8) and
	// fold the old image's meaninglessness counters into its history.
	if ps.execFile != nil {
		p.Stream.Close(ps.execFile.ID)
		ps.execFile = nil
	}
	o.foldHistory(p.Prog, ps)
	ps.learned, ps.touched = 0, 0
	prog := ev.Prog
	if prog == "" {
		prog = basename(path)
	}
	p.Prog = prog
	// A fresh image gets a fresh meaninglessness verdict from the new
	// program's history.
	ps.meaningless = o.ProgramMeaningless(prog)
	if ev.Failed {
		o.stats.DroppedFailed++
		return nil
	}
	f := o.fs.Intern(path, simfs.Regular, ev.Seq)
	ref, ok := o.emitRef(p, ps, f, RefOpen)
	if !ok {
		return nil
	}
	ps.execFile = f
	return []Reference{ref}
}

// foldHistory accumulates a finished run's potential-vs-actual counters
// into the program's history (§4.1).
func (o *Observer) foldHistory(prog string, ps *pidState) {
	if prog == "" || ps.learned == 0 {
		return
	}
	h := o.hist[prog]
	if h == nil {
		h = &progHistory{}
		o.hist[prog] = h
	}
	h.learned += float64(ps.learned)
	h.touched += float64(ps.touched)
	h.runs++
}

func (o *Observer) readDir(p *proc.Process, ps *pidState, path string) {
	o.fs.Intern(path, simfs.Directory, 0)
	// getcwd climbs the tree reading each parent directory (§4.1): a
	// directory read of the parent of the previous directory read.
	if ps.lastReadDir != "" && path == simfs.Dir(ps.lastReadDir) {
		ps.inGetcwd = true
	}
	ps.lastReadDir = path
	if ps.inGetcwd {
		// All references during a getcwd are ignored, even for
		// inferring meaninglessness.
		o.stats.DroppedGetcwd++
		return
	}
	if o.ctl.IsTemp(path) || o.ctl.IsIgnored(path) {
		return
	}
	ps.learned += o.dirSize(path)
}

func (o *Observer) endGetcwd(ps *pidState) {
	ps.inGetcwd = false
	ps.lastReadDir = ""
}

// absolutize converts a possibly relative pathname to absolute form
// using the process working directory, and normalizes "." and ".."
// components.
func (o *Observer) absolutize(p *proc.Process, path string) string {
	if path == "" {
		return p.Cwd
	}
	if !strings.HasPrefix(path, "/") {
		cwd := p.Cwd
		if cwd == "" {
			cwd = "/"
		}
		if cwd == "/" {
			path = "/" + path
		} else {
			path = cwd + "/" + path
		}
	}
	return Clean(path)
}

// Clean normalizes an absolute path: collapses repeated slashes and
// resolves "." and ".." components.
func Clean(path string) string {
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		switch part {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, part)
		}
	}
	return "/" + strings.Join(out, "/")
}

func basename(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
