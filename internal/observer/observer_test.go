package observer

import (
	"testing"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
	"github.com/fmg/seer/internal/trace"
)

type harness struct {
	o   *Observer
	fs  *simfs.FS
	seq uint64
}

func newHarness(mutate func(*config.Params), ctl *config.Control) *harness {
	p := config.Defaults()
	p.MeaninglessMinLearned = 10
	if mutate != nil {
		mutate(&p)
	}
	if ctl == nil {
		ctl = config.DefaultControl()
	}
	fs := simfs.New(stats.NewRand(1))
	return &harness{o: New(p, ctl, fs, nil), fs: fs}
}

func (h *harness) ev(op trace.Op, pid trace.PID, path string) []Reference {
	h.seq++
	return h.o.Observe(trace.Event{Seq: h.seq, PID: pid, Op: op, Path: path, Uid: 1000})
}

func (h *harness) evFull(e trace.Event) []Reference {
	h.seq++
	e.Seq = h.seq
	if e.Uid == 0 && !e.Op.IsConnectivity() {
		e.Uid = 1000
	}
	return h.o.Observe(e)
}

func (h *harness) open(pid trace.PID, path string) []Reference {
	return h.ev(trace.OpOpen, pid, path)
}

func (h *harness) close(pid trace.PID, path string) {
	h.ev(trace.OpClose, pid, path)
}

func TestOpenEmitsReferenceWithPairs(t *testing.T) {
	h := newHarness(nil, nil)
	r1 := h.open(1, "/home/u/a")
	if len(r1) != 1 || r1[0].Kind != RefCreate {
		t.Fatalf("first open refs = %+v, want one RefCreate", r1)
	}
	h.close(1, "/home/u/a")
	r2 := h.open(1, "/home/u/b")
	if len(r2) != 1 {
		t.Fatalf("second open refs = %+v", r2)
	}
	if len(r2[0].Pairs) != 1 || r2[0].Pairs[0].Dist != 1 {
		t.Errorf("pairs = %+v, want one pair at distance 1", r2[0].Pairs)
	}
	// Reopening an existing file is RefOpen, not RefCreate.
	r3 := h.open(1, "/home/u/a")
	if len(r3) != 1 || r3[0].Kind != RefOpen {
		t.Errorf("reopen = %+v, want RefOpen", r3)
	}
}

func TestRelativePathsAbsolutized(t *testing.T) {
	h := newHarness(nil, nil)
	h.ev(trace.OpChdir, 1, "/home/u/proj")
	refs := h.open(1, "main.c")
	if len(refs) != 1 || refs[0].File.Path != "/home/u/proj/main.c" {
		t.Fatalf("refs = %+v, want /home/u/proj/main.c", refs)
	}
	refs = h.open(1, "../other/x.c")
	if len(refs) != 1 || refs[0].File.Path != "/home/u/other/x.c" {
		t.Fatalf("refs = %+v, want /home/u/other/x.c", refs)
	}
}

func TestCleanPaths(t *testing.T) {
	cases := []struct{ in, want string }{
		{"/a//b", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/b/../c", "/a/c"},
		{"/../x", "/x"},
		{"/", "/"},
		{"/a/b/..", "/a"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSuperuserDropped(t *testing.T) {
	h := newHarness(nil, nil)
	refs := h.evFull(trace.Event{PID: 1, Op: trace.OpOpen, Path: "/root/x", Uid: 0})
	_ = refs
	h.seq++
	got := h.o.Observe(trace.Event{Seq: h.seq, PID: 1, Op: trace.OpOpen, Path: "/root/x", Uid: 0})
	if len(got) != 0 {
		t.Errorf("superuser open produced refs %+v", got)
	}
	if h.o.Stats().DroppedSuperuser == 0 {
		t.Error("superuser drop not counted")
	}
}

func TestTempFilesCompletelyIgnored(t *testing.T) {
	h := newHarness(nil, nil)
	refs := h.open(1, "/tmp/cc001.o")
	if len(refs) != 0 {
		t.Fatalf("temp open produced refs %+v", refs)
	}
	// Temp files must not displace relationships: open a,temp,b — the
	// a→b distance skips the temp file? No: the temp file never entered
	// the stream, so a→b sees distance 1.
	h.open(1, "/home/u/a")
	h.close(1, "/home/u/a")
	h.open(1, "/tmp/t1")
	h.ev(trace.OpClose, 1, "/tmp/t1")
	refs = h.open(1, "/home/u/b")
	if len(refs) != 1 || len(refs[0].Pairs) != 1 || refs[0].Pairs[0].Dist != 1 {
		t.Errorf("pairs after temp interleave = %+v, want a→b dist 1", refs)
	}
}

func TestCriticalFilesAlwaysHoardedAndExcluded(t *testing.T) {
	h := newHarness(nil, nil)
	if refs := h.open(1, "/etc/passwd"); len(refs) != 0 {
		t.Errorf("critical file produced refs %+v", refs)
	}
	if refs := h.open(1, "/home/u/.login"); len(refs) != 0 {
		t.Errorf("dot file produced refs %+v", refs)
	}
	always := h.o.AlwaysHoard()
	if len(always) != 2 {
		t.Fatalf("always hoard = %v, want 2 entries", always)
	}
	for _, id := range always {
		if !h.o.IsExcluded(id) {
			t.Error("always-hoard file not excluded from distances")
		}
	}
}

func TestNonFilesAlwaysHoarded(t *testing.T) {
	h := newHarness(nil, nil)
	if refs := h.open(1, "/dev/tty1"); len(refs) != 0 {
		t.Errorf("device produced refs %+v", refs)
	}
	if len(h.o.AlwaysHoard()) != 1 {
		t.Error("device not in always-hoard set")
	}
}

// A shared library crossing the 1% threshold becomes frequent: excluded
// from distances, filtered from pair lists, but always hoarded (§4.2).
func TestFrequentFileDetection(t *testing.T) {
	h := newHarness(func(p *config.Params) {
		p.FrequentFileMinRefs = 10
		p.FrequentFileFraction = 0.10
	}, nil)
	lib := "/lib/libc.so"
	// Interleave: every other access is the library.
	for i := 0; i < 30; i++ {
		h.open(1, lib)
		h.close(1, lib)
		other := "/home/u/f" + string(rune('a'+i%26))
		h.open(1, other)
		h.close(1, other)
	}
	libID := h.fs.Lookup(lib).ID
	if !h.o.IsFrequent(libID) {
		t.Fatal("library not marked frequent")
	}
	if !h.o.IsExcluded(libID) {
		t.Error("frequent file not excluded")
	}
	found := false
	for _, id := range h.o.FrequentFiles() {
		if id == libID {
			found = true
		}
	}
	if !found {
		t.Error("FrequentFiles missing the library")
	}
	// New references must not carry pairs from the library.
	refs := h.open(1, "/home/u/new")
	for _, r := range refs {
		for _, pr := range r.Pairs {
			if pr.From == libID {
				t.Error("pair from frequent file leaked through")
			}
		}
	}
}

// A find-like process that reads directories and touches most files it
// learns about becomes meaningless; its references are dropped (§4.1).
func TestMeaninglessProcessDetection(t *testing.T) {
	h := newHarness(nil, nil)
	const pid = 7
	h.evFull(trace.Event{PID: pid, Op: trace.OpExec, Path: "/usr/bin/find", Prog: "find"})
	dropped := 0
	for d := 0; d < 5; d++ {
		dir := "/home/u/dir" + string(rune('a'+d))
		h.ev(trace.OpReadDir, pid, dir)
		for i := 0; i < DefaultDirSize; i++ {
			refs := h.ev(trace.OpStat, pid, dir+"/f"+string(rune('a'+i)))
			if len(refs) == 0 {
				dropped++
			}
		}
	}
	if dropped == 0 {
		t.Error("no find references were dropped")
	}
	// After enough touches the process must be meaningless.
	refs := h.open(pid, "/home/u/dira/extra2")
	if len(refs) != 0 {
		t.Errorf("meaningless process still produced refs: %+v", refs)
	}
	// On exit the history records find as meaningless for next time.
	h.ev(trace.OpExit, pid, "")
	if !h.o.ProgramMeaningless("find") {
		t.Error("program history did not mark find meaningless")
	}
	// A second run of find is meaningless from the first reference.
	h.evFull(trace.Event{PID: 8, Op: trace.OpExec, Path: "/usr/bin/find", Prog: "find"})
	if refs := h.open(8, "/home/u/x1"); len(refs) != 0 {
		t.Errorf("second find run produced refs %+v", refs)
	}
	_ = refs
}

// An editor reads a directory for filename completion but touches only a
// few files: it must stay meaningful (§4.1 rejects approach 2).
func TestEditorStaysMeaningful(t *testing.T) {
	h := newHarness(nil, nil)
	const pid = 9
	h.evFull(trace.Event{PID: pid, Op: trace.OpExec, Path: "/usr/bin/emacs", Prog: "emacs"})
	h.ev(trace.OpReadDir, pid, "/home/u/proj")
	h.ev(trace.OpReadDir, pid, "/home/u/proj/sub")
	refs := h.open(pid, "/home/u/proj/main.c")
	if len(refs) != 1 {
		t.Fatalf("editor open dropped: %+v", refs)
	}
	h.ev(trace.OpExit, pid, "")
	if h.o.ProgramMeaningless("emacs") {
		t.Error("editor wrongly marked meaningless")
	}
}

// Hand-listed programs are meaningless immediately (§4.1 approach 1 is
// retained as an override).
func TestHandListedMeaningless(t *testing.T) {
	h := newHarness(nil, nil)
	h.evFull(trace.Event{PID: 3, Op: trace.OpExec, Path: "/usr/bin/xargs", Prog: "xargs"})
	if refs := h.open(3, "/home/u/file"); len(refs) != 0 {
		t.Errorf("xargs produced refs %+v", refs)
	}
}

// getcwd's climb (reading each parent directory) is detected and its
// references ignored without poisoning meaninglessness (§4.1).
func TestGetcwdDetection(t *testing.T) {
	h := newHarness(nil, nil)
	const pid = 4
	h.evFull(trace.Event{PID: pid, Op: trace.OpExec, Path: "/bin/sh", Prog: "sh"})
	h.ev(trace.OpReadDir, pid, "/home/u/proj/sub")
	h.ev(trace.OpReadDir, pid, "/home/u/proj") // parent: getcwd begins
	h.ev(trace.OpReadDir, pid, "/home/u")
	h.ev(trace.OpReadDir, pid, "/home")
	if h.o.Stats().DroppedGetcwd < 3 {
		t.Errorf("getcwd drops = %d, want ≥3", h.o.Stats().DroppedGetcwd)
	}
	// The learned counter must not have grown unboundedly: only the two
	// reads before detection count.
	refs := h.open(pid, "/home/u/proj/main.c")
	if len(refs) != 1 {
		t.Errorf("post-getcwd open dropped: %+v", refs)
	}
	h.ev(trace.OpExit, pid, "")
	if h.o.ProgramMeaningless("sh") {
		t.Error("getcwd climb marked the shell meaningless")
	}
}

// An attribute examination immediately followed by an open of the same
// file is folded into the open (§4.8).
func TestStatFoldedIntoOpen(t *testing.T) {
	h := newHarness(nil, nil)
	h.ev(trace.OpStat, 1, "/home/u/a")
	refs := h.open(1, "/home/u/a")
	if len(refs) != 1 || refs[0].Kind == RefPoint {
		t.Fatalf("refs = %+v, want single open", refs)
	}
	if h.o.Stats().StatsFolded != 1 {
		t.Errorf("folded = %d, want 1", h.o.Stats().StatsFolded)
	}
}

// A stat not followed by an open of the same file is a point reference
// (make's dependency checks, §4.8).
func TestStatEmittedAsPointRef(t *testing.T) {
	h := newHarness(nil, nil)
	h.ev(trace.OpStat, 1, "/home/u/a")
	refs := h.open(1, "/home/u/b")
	if len(refs) != 2 {
		t.Fatalf("refs = %+v, want flushed stat + open", refs)
	}
	if refs[0].Kind != RefPoint || refs[0].File.Path != "/home/u/a" {
		t.Errorf("first ref = %+v, want point ref to /home/u/a", refs[0])
	}
	if refs[1].Kind != RefCreate || refs[1].File.Path != "/home/u/b" {
		t.Errorf("second ref = %+v, want create of /home/u/b", refs[1])
	}
	// The stat and open are related at distance 1.
	if len(refs[1].Pairs) != 1 || refs[1].Pairs[0].Dist != 1 {
		t.Errorf("pairs = %+v", refs[1].Pairs)
	}
}

func TestPendingStatFlushedAtExit(t *testing.T) {
	h := newHarness(nil, nil)
	h.ev(trace.OpStat, 1, "/home/u/a")
	refs := h.ev(trace.OpExit, 1, "")
	if len(refs) != 1 || refs[0].Kind != RefPoint {
		t.Errorf("exit refs = %+v, want flushed stat", refs)
	}
}

func TestDeleteAndRecreate(t *testing.T) {
	h := newHarness(nil, nil)
	h.open(1, "/home/u/a")
	h.close(1, "/home/u/a")
	refs := h.ev(trace.OpDelete, 1, "/home/u/a")
	if len(refs) != 1 || refs[0].Kind != RefDelete {
		t.Fatalf("delete refs = %+v", refs)
	}
	if h.fs.Lookup("/home/u/a").Exists {
		t.Error("file still exists after delete")
	}
	// Deleting a nonexistent file produces nothing.
	if refs := h.ev(trace.OpDelete, 1, "/home/u/nope"); len(refs) != 0 {
		t.Errorf("phantom delete refs = %+v", refs)
	}
	// Recreation is a RefCreate with the same FileID.
	id := h.fs.Lookup("/home/u/a").ID
	refs = h.ev(trace.OpCreate, 1, "/home/u/a")
	if len(refs) != 1 || refs[0].Kind != RefCreate || refs[0].File.ID != id {
		t.Errorf("recreate refs = %+v, want RefCreate of id %d", refs, id)
	}
}

func TestRenameIsPointRefAndMovesFile(t *testing.T) {
	h := newHarness(nil, nil)
	h.ev(trace.OpCreate, 1, "/home/u/cc001.o")
	refs := h.evFull(trace.Event{
		PID: 1, Op: trace.OpRename,
		Path: "/home/u/cc001.o", Path2: "/home/u/main.o",
	})
	if len(refs) != 1 || refs[0].Kind != RefPoint {
		t.Fatalf("rename refs = %+v", refs)
	}
	if h.fs.Lookup("/home/u/main.o") == nil {
		t.Error("rename target missing")
	}
}

func TestExecHoldsBinaryOpen(t *testing.T) {
	h := newHarness(nil, nil)
	const pid = 2
	refs := h.evFull(trace.Event{PID: pid, Op: trace.OpExec, Path: "/usr/bin/cc", Prog: "cc"})
	if len(refs) != 1 || refs[0].Kind != RefOpen {
		t.Fatalf("exec refs = %+v, want RefOpen of the binary", refs)
	}
	ccID := refs[0].File.ID
	// Many opens later the binary is still related at distance 0.
	for i := 0; i < 50; i++ {
		p := "/home/u/hdr" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		h.open(pid, p)
		h.close(pid, p)
	}
	got := h.open(pid, "/home/u/last.c")
	var found bool
	for _, pr := range got[0].Pairs {
		if pr.From == ccID {
			found = true
			if pr.Dist != 0 {
				t.Errorf("cc distance = %g, want 0 while executing", pr.Dist)
			}
		}
	}
	if !found {
		t.Error("executing binary missing from pairs")
	}
	h.ev(trace.OpExit, pid, "")
}

func TestForkInheritanceThroughObserver(t *testing.T) {
	h := newHarness(nil, nil)
	h.open(1, "/home/u/Makefile")
	h.close(1, "/home/u/Makefile")
	h.evFull(trace.Event{PID: 10, PPID: 1, Op: trace.OpFork})
	refs := h.open(10, "/home/u/main.c")
	if len(refs) != 1 || len(refs[0].Pairs) == 0 {
		t.Fatalf("child refs = %+v, want inherited relationship", refs)
	}
	if refs[0].Pairs[0].Dist != 1 {
		t.Errorf("Makefile→main.c = %g, want 1", refs[0].Pairs[0].Dist)
	}
	// Child activity merges back into the parent at exit.
	h.close(10, "/home/u/main.c")
	h.ev(trace.OpExit, 10, "")
	refs = h.open(1, "/home/u/main.o")
	found := false
	for _, pr := range refs[0].Pairs {
		if pr.From == h.fs.Lookup("/home/u/main.c").ID {
			found = true
		}
	}
	if !found {
		t.Error("child's file not related to parent's later reference")
	}
}

func TestFailedReferencesDropped(t *testing.T) {
	h := newHarness(nil, nil)
	h.seq++
	refs := h.o.Observe(trace.Event{
		Seq: h.seq, PID: 1, Op: trace.OpOpen, Path: "/home/u/missing",
		Failed: true, Uid: 1000,
	})
	if len(refs) != 0 {
		t.Errorf("failed open produced refs %+v", refs)
	}
	if h.o.Stats().DroppedFailed != 1 {
		t.Error("failed drop not counted")
	}
}

func TestConnectivityEventsIgnored(t *testing.T) {
	h := newHarness(nil, nil)
	for _, op := range []trace.Op{trace.OpDisconnect, trace.OpReconnect, trace.OpSuspend, trace.OpResume} {
		if refs := h.ev(op, 0, ""); len(refs) != 0 {
			t.Errorf("%v produced refs", op)
		}
	}
}

func TestStatsCounting(t *testing.T) {
	h := newHarness(nil, nil)
	h.open(1, "/home/u/a")
	h.close(1, "/home/u/a")
	h.open(1, "/tmp/x")
	s := h.o.Stats()
	if s.Events != 3 {
		t.Errorf("events = %d, want 3", s.Events)
	}
	if s.References != 1 {
		t.Errorf("references = %d, want 1", s.References)
	}
	if s.DroppedTemp != 1 {
		t.Errorf("dropped temp = %d, want 1", s.DroppedTemp)
	}
}

// Symbolic links are non-file objects: always hoarded, never related
// (§4.6).
func TestSymlinkAlwaysHoarded(t *testing.T) {
	h := newHarness(nil, nil)
	h.evFull(trace.Event{PID: 1, Op: trace.OpSymlink,
		Path: "/home/u/bin/prog", Path2: "/home/u/proj/prog"})
	f := h.fs.Lookup("/home/u/bin/prog")
	if f == nil || f.Kind != simfs.Symlink {
		t.Fatalf("symlink not interned: %+v", f)
	}
	var found bool
	for _, id := range h.o.AlwaysHoard() {
		if id == f.ID {
			found = true
		}
	}
	if !found {
		t.Error("symlink not in always-hoard set")
	}
	if !h.o.IsExcluded(f.ID) {
		t.Error("symlink not excluded from distances")
	}
}

func TestLastRefTracking(t *testing.T) {
	h := newHarness(nil, nil)
	h.open(1, "/home/u/a")
	id := h.fs.Lookup("/home/u/a").ID
	if h.o.LastRef(id) == 0 {
		t.Fatal("LastRef not recorded")
	}
	first := h.o.LastRef(id)
	h.close(1, "/home/u/a")
	h.open(1, "/home/u/b")
	h.open(1, "/home/u/a")
	if h.o.LastRef(id) <= first {
		t.Error("LastRef not refreshed")
	}
	if len(h.o.LastRefs()) < 2 {
		t.Error("LastRefs incomplete")
	}
	// Meaningless-process references must NOT refresh recency — this is
	// what protects SEER's ranking from find scans.
	h.evFull(trace.Event{PID: 6, Op: trace.OpExec, Path: "/usr/bin/xargs", Prog: "xargs"})
	before := h.o.LastRef(id)
	h.open(6, "/home/u/a")
	if h.o.LastRef(id) != before {
		t.Error("meaningless process refreshed recency")
	}
}

func TestExecEdgeCases(t *testing.T) {
	h := newHarness(nil, nil)
	// Failed exec: no reference, no held binary.
	refs := h.evFull(trace.Event{PID: 3, Op: trace.OpExec, Path: "/usr/bin/cc", Failed: true})
	if len(refs) != 0 {
		t.Errorf("failed exec produced refs %+v", refs)
	}
	// Exec with no Prog falls back to the basename.
	h.evFull(trace.Event{PID: 3, Op: trace.OpExec, Path: "/usr/bin/emacs"})
	if p := h.o.Procs().Lookup(3); p == nil || p.Prog != "emacs" {
		t.Errorf("prog fallback = %+v", p)
	}
	// Re-exec closes the previous image.
	h.evFull(trace.Event{PID: 3, Op: trace.OpExec, Path: "/usr/bin/cc", Prog: "cc"})
	emacs := h.fs.Lookup("/usr/bin/emacs")
	if h.o.Procs().Lookup(3).Stream.OpenCount(emacs.ID) != 0 {
		t.Error("previous image still open after re-exec")
	}
}

func TestAbsolutizeEdgeCases(t *testing.T) {
	h := newHarness(nil, nil)
	// Empty path resolves to the cwd.
	h.ev(trace.OpChdir, 1, "/home/u")
	refs := h.open(1, "")
	if len(refs) != 1 || refs[0].File.Path != "/home/u" {
		t.Errorf("empty path = %+v", refs)
	}
	// Relative path with root cwd.
	refs = h.open(2, "rootfile")
	if len(refs) != 1 || refs[0].File.Path != "/rootfile" {
		t.Errorf("root-cwd relative = %+v", refs)
	}
}
