package fault

import (
	"fmt"
	"net/http"
	"sync"

	"github.com/fmg/seer/internal/stats"
)

// FlakyTransport decorates an http.RoundTripper with injected request
// failures: probabilistically (a lossy link), for a deterministic
// window of calls (an outage), or hard-down until healed (a network
// partition). Failures are injected BEFORE the request is sent, so the
// server never observes the lost request — the semantics of a dropped
// or unroutable packet, which is what makes retrying the request safe
// for non-idempotent operations.
//
// Safe for concurrent use, as http.Client requires of its transport.
type FlakyTransport struct {
	// Inner is the decorated transport; nil means
	// http.DefaultTransport.
	Inner http.RoundTripper
	// FailProb is the probability in [0,1] that a request fails with
	// ErrTransient.
	FailProb float64
	// Rand drives probabilistic failures; required when FailProb > 0.
	Rand *stats.Rand
	// FailFrom and FailTo fail every request whose zero-based call
	// index lies in [FailFrom, FailTo) — a deterministic outage window.
	// FailTo 0 disables the window.
	FailFrom, FailTo int

	mu       sync.Mutex
	down     bool
	calls    int
	injected int
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	call := t.calls
	t.calls++
	fail := t.down ||
		(t.FailTo > 0 && call >= t.FailFrom && call < t.FailTo) ||
		(t.FailProb > 0 && t.Rand != nil && t.Rand.Bool(t.FailProb))
	if fail {
		t.injected++
	}
	t.mu.Unlock()
	if fail {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("%s %s (call %d): %w", req.Method, req.URL.Path, call, ErrTransient)
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}

// SetDown partitions (true) or heals (false) the link: while down every
// request fails.
func (t *FlakyTransport) SetDown(down bool) {
	t.mu.Lock()
	t.down = down
	t.mu.Unlock()
}

// Calls returns the number of requests seen.
func (t *FlakyTransport) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// Injected returns the number of failures injected.
func (t *FlakyTransport) Injected() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}
