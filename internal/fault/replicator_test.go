package fault

import (
	"errors"
	"testing"

	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
)

func newPair() (*replic.CheapRumor, simfs.FileID) {
	fs := simfs.New(stats.NewRand(1))
	f := fs.Create("/f", simfs.Regular, 10, 1)
	r := replic.NewCheapRumor(fs)
	r.ServerCreate(f.ID)
	return r, f.ID
}

func TestFlakyReplicatorWindow(t *testing.T) {
	inner, id := newPair()
	fr := &FlakyReplicator{Inner: inner, FailFrom: 1, FailTo: 3}
	results := []error{fr.Fetch(id), fr.Fetch(id), fr.Fetch(id), fr.Fetch(id)}
	for i, want := range []bool{false, true, true, false} {
		if got := errors.Is(results[i], ErrTransient); got != want {
			t.Errorf("fetch %d transient = %v, want %v (%v)", i, got, want, results[i])
		}
	}
	if fr.Fetches() != 4 || fr.Injected() != 2 {
		t.Errorf("fetches=%d injected=%d", fr.Fetches(), fr.Injected())
	}
	if !inner.HasLocal(id) {
		t.Error("successful fetch not applied to inner substrate")
	}
}

func TestFlakyReplicatorProbabilistic(t *testing.T) {
	inner, id := newPair()
	fr := &FlakyReplicator{Inner: inner, FailProb: 0.3, Rand: stats.NewRand(7)}
	const n = 2000
	for i := 0; i < n; i++ {
		fr.Fetch(id)
	}
	rate := float64(fr.Injected()) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("injection rate %.3f far from 0.3", rate)
	}
	// Same seed, same outcome: the flakiness is reproducible.
	inner2, id2 := newPair()
	fr2 := &FlakyReplicator{Inner: inner2, FailProb: 0.3, Rand: stats.NewRand(7)}
	for i := 0; i < n; i++ {
		fr2.Fetch(id2)
	}
	if fr2.Injected() != fr.Injected() {
		t.Errorf("same seed diverged: %d vs %d", fr2.Injected(), fr.Injected())
	}
}

func TestFlakyReplicatorPassthrough(t *testing.T) {
	inner, id := newPair()
	fr := &FlakyReplicator{Inner: inner}
	if err := fr.Fetch(id); err != nil {
		t.Fatal(err)
	}
	if !fr.HasLocal(id) || fr.Access(id) != replic.AccessLocal {
		t.Error("passthrough reads wrong")
	}
	if !fr.Connected() {
		t.Error("connected state wrong")
	}
	fr.SetConnected(false)
	if fr.Connected() {
		t.Error("disconnect not forwarded")
	}
	fr.SetConnected(true)
	fr.Evict(id)
	if fr.HasLocal(id) {
		t.Error("evict not forwarded")
	}
}
