package fault

import (
	"fmt"

	"github.com/fmg/seer/internal/replic"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
)

// FlakyReplicator decorates a replic.Replicator with injected Fetch
// failures: probabilistically (a lossy link) or for a deterministic
// window of fetch calls (an outage). All other operations pass through
// untouched. Randomness comes from a seeded stats.Rand, so flaky tests
// are reproducible.
type FlakyReplicator struct {
	// Inner is the decorated substrate.
	Inner replic.Replicator
	// FailProb is the probability in [0,1] that any given Fetch fails
	// with ErrTransient.
	FailProb float64
	// Rand drives probabilistic failures; required when FailProb > 0.
	Rand *stats.Rand
	// FailFrom and FailTo fail every Fetch whose zero-based call index
	// lies in [FailFrom, FailTo) — a deterministic outage window.
	// FailTo 0 disables the window.
	FailFrom, FailTo int

	fetches  int
	injected int
}

var _ replic.Replicator = (*FlakyReplicator)(nil)

// Fetch implements replic.Replicator, possibly failing by injection.
func (f *FlakyReplicator) Fetch(id simfs.FileID) error {
	call := f.fetches
	f.fetches++
	if f.FailTo > 0 && call >= f.FailFrom && call < f.FailTo {
		f.injected++
		return fmt.Errorf("fetch %v (outage window, call %d): %w", id, call, ErrTransient)
	}
	if f.FailProb > 0 && f.Rand != nil && f.Rand.Bool(f.FailProb) {
		f.injected++
		return fmt.Errorf("fetch %v: %w", id, ErrTransient)
	}
	return f.Inner.Fetch(id)
}

// Evict implements replic.Replicator.
func (f *FlakyReplicator) Evict(id simfs.FileID) { f.Inner.Evict(id) }

// HasLocal implements replic.Replicator.
func (f *FlakyReplicator) HasLocal(id simfs.FileID) bool { return f.Inner.HasLocal(id) }

// Access implements replic.Replicator.
func (f *FlakyReplicator) Access(id simfs.FileID) replic.AccessResult { return f.Inner.Access(id) }

// Connected implements replic.Replicator.
func (f *FlakyReplicator) Connected() bool { return f.Inner.Connected() }

// SetConnected implements replic.Replicator.
func (f *FlakyReplicator) SetConnected(up bool) replic.ReconcileReport {
	return f.Inner.SetConnected(up)
}

// Fetches returns the number of Fetch calls seen.
func (f *FlakyReplicator) Fetches() int { return f.fetches }

// Injected returns the number of failures injected.
func (f *FlakyReplicator) Injected() int { return f.injected }
