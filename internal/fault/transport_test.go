package fault

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/fmg/seer/internal/stats"
)

func TestFlakyTransportWindow(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	ft := &FlakyTransport{FailFrom: 1, FailTo: 3}
	hc := &http.Client{Transport: ft}
	wantErr := []bool{false, true, true, false}
	for i, want := range wantErr {
		resp, err := hc.Get(ts.URL)
		if got := err != nil; got != want {
			t.Errorf("call %d: err = %v, want failure %v", i, err, want)
		}
		if err == nil {
			resp.Body.Close()
		} else if !errors.Is(err, ErrTransient) {
			t.Errorf("call %d: error %v does not wrap ErrTransient", i, err)
		}
	}
	if ft.Calls() != 4 || ft.Injected() != 2 {
		t.Errorf("calls/injected = %d/%d, want 4/2", ft.Calls(), ft.Injected())
	}
}

func TestFlakyTransportPartition(t *testing.T) {
	served := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer ts.Close()

	ft := &FlakyTransport{}
	hc := &http.Client{Transport: ft}
	ft.SetDown(true)
	if _, err := hc.Get(ts.URL); err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if served != 0 {
		t.Fatal("server observed a request injected as failed — retry safety broken")
	}
	ft.SetDown(false)
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	resp.Body.Close()
	if served != 1 {
		t.Errorf("served = %d, want 1", served)
	}
}

func TestFlakyTransportProbabilistic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()

	ft := &FlakyTransport{FailProb: 0.3, Rand: stats.NewRand(1)}
	hc := &http.Client{Transport: ft}
	for i := 0; i < 200; i++ {
		if resp, err := hc.Get(ts.URL); err == nil {
			resp.Body.Close()
		}
	}
	inj := ft.Injected()
	if inj < 30 || inj > 90 {
		t.Errorf("injected = %d of 200, want ≈60", inj)
	}
}
