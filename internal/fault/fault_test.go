package fault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestTruncateReader(t *testing.T) {
	got, err := io.ReadAll(TruncateReader(strings.NewReader("snapshot"), 4))
	if err != nil || string(got) != "snap" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestBitFlipReader(t *testing.T) {
	src := []byte{0x00, 0x00, 0x00, 0x00}
	r := &BitFlipReader{R: bytes.NewReader(src), Offset: 2, Mask: 1 << 3}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x00, 0x00, 0x08, 0x00}
	if !bytes.Equal(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestBitFlipReaderAcrossSmallReads(t *testing.T) {
	// The flip must land even when the target byte arrives in a later
	// Read call.
	r := &BitFlipReader{R: iotest(strings.NewReader("abcdef")), Offset: 4, Mask: 0xff}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if got[4] == 'e' {
		t.Error("flip missed under one-byte reads")
	}
	if string(got[:4]) != "abcd" || got[5] != 'f' {
		t.Errorf("neighbors damaged: %q", got)
	}
}

// iotest returns a reader that delivers one byte per Read.
func iotest(r io.Reader) io.Reader { return oneByteReader{r} }

type oneByteReader struct{ r io.Reader }

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestFlakyReader(t *testing.T) {
	r := &FlakyReader{R: iotest(strings.NewReader("xyz")), FailEvery: 2}
	var got []byte
	transients := 0
	for {
		buf := make([]byte, 1)
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if errors.Is(err, ErrTransient) {
			transients++
			continue
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(got) != "xyz" {
		t.Errorf("data lost across transients: %q", got)
	}
	if transients == 0 {
		t.Error("no transient failures injected")
	}
}

func TestShortWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &ShortWriter{W: &buf, N: 5}
	n, err := w.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	n, err = w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("overflow write: %d, %v", n, err)
	}
	if buf.String() != "abcde" {
		t.Errorf("sink holds %q, want abcde", buf.String())
	}
	if _, err := w.Write([]byte("h")); !errors.Is(err, ErrInjected) {
		t.Error("writes after exhaustion succeed")
	}
	if w.Written() != 5 {
		t.Errorf("written = %d", w.Written())
	}
}

func TestFlakyWriter(t *testing.T) {
	var buf bytes.Buffer
	w := &FlakyWriter{W: &buf, FailEvery: 3}
	fails := 0
	for i := 0; i < 9; i++ {
		if _, err := w.Write([]byte{'a'}); errors.Is(err, ErrTransient) {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("fails = %d, want 3", fails)
	}
	if buf.Len() != 6 {
		t.Errorf("sink holds %d bytes, want 6", buf.Len())
	}
}
