package fault

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestPanicAfterFiresOnceThenDisarms(t *testing.T) {
	p := NewPanicAfter(3)
	p.Hit()
	p.Hit()
	func() {
		defer func() {
			if r := recover(); r != ErrPanicInjected {
				t.Fatalf("recover = %v, want ErrPanicInjected", r)
			}
		}()
		p.Hit()
		t.Fatal("third Hit did not panic")
	}()
	p.Hit() // fired: further hits are no-ops until re-armed
	p.Arm(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("re-armed trigger did not panic")
			}
		}()
		p.Hit()
	}()
}

func TestPanicReaderPassesThroughThenPanics(t *testing.T) {
	pr := &PanicReader{R: strings.NewReader("abcdef"), After: NewPanicAfter(2)}
	buf := make([]byte, 3)
	if n, err := pr.Read(buf); err != nil || n != 3 {
		t.Fatalf("first read: n=%d err=%v", n, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second read did not panic")
		}
	}()
	pr.Read(buf)
}

func TestStallReaderBlocksAndReleases(t *testing.T) {
	sr := NewStallReader(strings.NewReader("hello"))
	sr.Stall()
	got := make(chan string, 1)
	go func() {
		buf := make([]byte, 5)
		n, _ := sr.Read(buf)
		got <- string(buf[:n])
	}()
	select {
	case v := <-got:
		t.Fatalf("stalled read returned %q", v)
	case <-time.After(20 * time.Millisecond):
	}
	sr.Release()
	select {
	case v := <-got:
		if v != "hello" {
			t.Fatalf("read %q after release, want hello", v)
		}
	case <-time.After(time.Second):
		t.Fatal("read still blocked after Release")
	}
}

func TestStallReaderCloseUnblocksWithEOF(t *testing.T) {
	sr := NewStallReader(strings.NewReader("x"))
	sr.Stall()
	errc := make(chan error, 1)
	go func() {
		_, err := sr.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sr.Close()
	select {
	case err := <-errc:
		if err != io.EOF {
			t.Fatalf("err = %v, want io.EOF", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock the stalled read")
	}
}

func TestSinkFailureModes(t *testing.T) {
	var s Sink
	ran := 0
	op := func() error { ran++; return nil }

	if err := s.Do(op); err != nil || ran != 1 {
		t.Fatalf("clean Do: err=%v ran=%d", err, ran)
	}
	s.FailNext(2)
	for i := 0; i < 2; i++ {
		if err := s.Do(op); !errors.Is(err, ErrInjected) {
			t.Fatalf("FailNext call %d: err=%v", i, err)
		}
	}
	if err := s.Do(op); err != nil || ran != 2 {
		t.Fatalf("after FailNext exhausted: err=%v ran=%d", err, ran)
	}
	s.Break()
	if err := s.Do(op); !errors.Is(err, ErrInjected) {
		t.Fatalf("Break: err=%v", err)
	}
	s.Heal()
	if err := s.Do(op); err != nil {
		t.Fatalf("after Heal: err=%v", err)
	}
	calls, failures := s.Stats()
	if calls != 6 || failures != 3 {
		t.Fatalf("Stats = %d,%d want 6,3", calls, failures)
	}
	if ran != 3 {
		t.Fatalf("op ran %d times, want 3 (injected failures must not run it)", ran)
	}
}
