package fault

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Chaos-harness primitives: where fault.go injects errors a caller can
// handle, these injectors model the failures a *supervisor* must
// handle — a stage panicking mid-read, a tail blocking on a dead NFS
// mount, a checkpoint sink failing for a stretch of wall-clock time.

// ErrPanicInjected is the value PanicAfter panics with, so recover
// sites (and supervisor health reports) can recognize induced panics.
var ErrPanicInjected = errors.New("fault: injected panic")

// PanicAfter panics with ErrPanicInjected once n more calls have been
// made, shared across everything created from it. It is the arming
// counter behind PanicReader and can be called directly from any hook
// a test wants to blow up ("panic on the 5th event"). n <= 0 disarms.
// Safe for concurrent use.
type PanicAfter struct {
	remaining atomic.Int64
}

// NewPanicAfter returns a trigger that panics on the n'th Hit.
func NewPanicAfter(n int64) *PanicAfter {
	p := &PanicAfter{}
	p.remaining.Store(n)
	return p
}

// Arm re-arms the trigger to panic after n more hits (n <= 0 disarms).
func (p *PanicAfter) Arm(n int64) { p.remaining.Store(n) }

// Hit counts one operation and panics when the trigger fires.
func (p *PanicAfter) Hit() {
	// Decrement unconditionally: once fired (or disarmed) the counter
	// goes negative and never fires again until re-armed.
	if p.remaining.Load() <= 0 {
		return
	}
	if p.remaining.Add(-1) == 0 {
		panic(ErrPanicInjected)
	}
}

// PanicReader panics with ErrPanicInjected on the After'th Read call,
// simulating a bug in a stream-processing stage that a supervisor must
// catch and restart. Reads before that pass through.
type PanicReader struct {
	R io.Reader
	// After triggers the panic; nil never panics. Sharing one trigger
	// across readers panics once across all of them until re-armed.
	After *PanicAfter
}

// Read implements io.Reader.
func (p *PanicReader) Read(b []byte) (int, error) {
	if p.After != nil {
		p.After.Hit()
	}
	return p.R.Read(b)
}

// StallReader blocks Read calls while stalled, simulating a tail on a
// hung mount or a producer that stopped mid-line. Stall engages the
// stall; Release lets all blocked and future Reads proceed. A stalled
// Read also unblocks (returning io.EOF) when Close is called, so a
// stalled pipeline can still shut down.
type StallReader struct {
	R io.Reader

	mu      sync.Mutex
	blocked chan struct{} // non-nil while stalled; closed on release
	closed  chan struct{}
	once    sync.Once
}

// NewStallReader wraps r, initially unstalled.
func NewStallReader(r io.Reader) *StallReader {
	return &StallReader{R: r, closed: make(chan struct{})}
}

// Stall makes subsequent Reads block until Release or Close.
func (s *StallReader) Stall() {
	s.mu.Lock()
	if s.blocked == nil {
		s.blocked = make(chan struct{})
	}
	s.mu.Unlock()
}

// Release unblocks every stalled Read.
func (s *StallReader) Release() {
	s.mu.Lock()
	if s.blocked != nil {
		close(s.blocked)
		s.blocked = nil
	}
	s.mu.Unlock()
}

// Close releases stalled readers permanently; blocked and subsequent
// Reads return io.EOF.
func (s *StallReader) Close() error {
	s.once.Do(func() { close(s.closed) })
	return nil
}

// Read implements io.Reader.
func (s *StallReader) Read(p []byte) (int, error) {
	s.mu.Lock()
	blocked := s.blocked
	s.mu.Unlock()
	if blocked != nil {
		select {
		case <-blocked:
		case <-s.closed:
			return 0, io.EOF
		}
	}
	select {
	case <-s.closed:
		return 0, io.EOF
	default:
	}
	return s.R.Read(p)
}

// Sink injects failures into a side-effecting operation like a
// database checkpoint: while failing, Do returns ErrInjected without
// invoking the wrapped operation (the checkpoint never happened, as
// with a full disk), and callers observe consecutive failures until
// Heal. Safe for concurrent use.
type Sink struct {
	mu       sync.Mutex
	failN    int64 // fail the next N calls
	failing  bool  // fail until Heal
	calls    int64
	failures int64
}

// FailNext makes the next n calls fail.
func (s *Sink) FailNext(n int64) {
	s.mu.Lock()
	s.failN = n
	s.mu.Unlock()
}

// Break makes every call fail until Heal.
func (s *Sink) Break() {
	s.mu.Lock()
	s.failing = true
	s.mu.Unlock()
}

// Heal clears both failure modes.
func (s *Sink) Heal() {
	s.mu.Lock()
	s.failing = false
	s.failN = 0
	s.mu.Unlock()
}

// Do runs op unless a failure is injected.
func (s *Sink) Do(op func() error) error {
	s.mu.Lock()
	s.calls++
	fail := s.failing
	if !fail && s.failN > 0 {
		s.failN--
		fail = true
	}
	if fail {
		s.failures++
		s.mu.Unlock()
		return ErrInjected
	}
	s.mu.Unlock()
	return op()
}

// Stats returns total calls and injected failures.
func (s *Sink) Stats() (calls, failures int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls, s.failures
}

// SlowReader delays every Read by Delay, modelling a saturated or
// throttled input without fully stalling it.
type SlowReader struct {
	R     io.Reader
	Delay time.Duration
}

// Read implements io.Reader.
func (s *SlowReader) Read(p []byte) (int, error) {
	time.Sleep(s.Delay)
	return s.R.Read(p)
}
