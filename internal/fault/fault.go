// Package fault provides fault-injection wrappers for testing SEER's
// durability and degradation paths: io.Reader/io.Writer decorators that
// truncate, flip bits, short-write, or fail transiently, and a
// Replicator decorator that makes fetches flaky.
//
// A daemon for mobile, crash-prone machines earns its keep on the bad
// days — battery death mid-checkpoint, a radio link dropping packets,
// a disk returning EIO. These wrappers make those days reproducible in
// unit tests, so every recovery path in the tree is exercised by code,
// not just claimed in comments.
package fault

import (
	"errors"
	"io"
)

// ErrInjected is the permanent error returned by failing wrappers.
var ErrInjected = errors.New("fault: injected failure")

// ErrTransient is the error returned for injected failures that a
// retry may clear (the moral equivalent of a dropped packet).
var ErrTransient = errors.New("fault: transient failure")

// TruncateReader returns a reader that yields at most n bytes of r and
// then reports io.EOF, simulating a snapshot cut short by a crash.
func TruncateReader(r io.Reader, n int64) io.Reader {
	return io.LimitReader(r, n)
}

// BitFlipReader flips bits in a byte stream at a fixed offset,
// simulating at-rest corruption.
type BitFlipReader struct {
	R io.Reader
	// Offset is the zero-based byte position to corrupt.
	Offset int64
	// Mask is XORed into the byte at Offset (0 disables the flip; use
	// 1<<k to flip bit k).
	Mask byte

	pos int64
}

// Read implements io.Reader.
func (b *BitFlipReader) Read(p []byte) (int, error) {
	n, err := b.R.Read(p)
	if n > 0 && b.Offset >= b.pos && b.Offset < b.pos+int64(n) {
		p[b.Offset-b.pos] ^= b.Mask
	}
	b.pos += int64(n)
	return n, err
}

// FlakyReader fails every FailEvery'th Read call with ErrTransient,
// simulating a link that drops intermittently but recovers.
type FlakyReader struct {
	R io.Reader
	// FailEvery makes every FailEvery'th Read fail (0 disables).
	FailEvery int

	calls int
}

// Read implements io.Reader.
func (f *FlakyReader) Read(p []byte) (int, error) {
	f.calls++
	if f.FailEvery > 0 && f.calls%f.FailEvery == 0 {
		return 0, ErrTransient
	}
	return f.R.Read(p)
}

// ShortWriter accepts at most N bytes and then fails with ErrInjected,
// simulating a disk filling up (or a battery dying) mid-checkpoint. A
// final partial write delivers the prefix that fits, as a real short
// write would.
type ShortWriter struct {
	W io.Writer
	// N is the byte budget; writes beyond it fail.
	N int64

	written int64
}

// Write implements io.Writer.
func (s *ShortWriter) Write(p []byte) (int, error) {
	room := s.N - s.written
	if room <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) <= room {
		n, err := s.W.Write(p)
		s.written += int64(n)
		return n, err
	}
	n, err := s.W.Write(p[:room])
	s.written += int64(n)
	if err == nil {
		err = ErrInjected
	}
	return n, err
}

// Written returns the bytes accepted so far.
func (s *ShortWriter) Written() int64 { return s.written }

// FlakyWriter fails every FailEvery'th Write call with ErrTransient
// without consuming the payload.
type FlakyWriter struct {
	W io.Writer
	// FailEvery makes every FailEvery'th Write fail (0 disables).
	FailEvery int

	calls int
}

// Write implements io.Writer.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	f.calls++
	if f.FailEvery > 0 && f.calls%f.FailEvery == 0 {
		return 0, ErrTransient
	}
	return f.W.Write(p)
}
