package webcache

import (
	"fmt"
	"testing"

	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/simfs"
)

func testParams() config.Params {
	p := config.Defaults()
	p.Window = 10
	p.KNear = 4
	p.KFar = 2
	return p
}

func TestPredictorLearnsSessionLocality(t *testing.T) {
	pred := NewPredictor(testParams(), 1)
	// One site browsed repeatedly in a session.
	pages := []string{"http://a/x", "http://a/y", "http://a/z", "http://a/w", "http://a/v"}
	var ids []simfs.FileID
	for round := 0; round < 6; round++ {
		for _, u := range pages {
			ids = append(ids[:0], ids...)
			pred.Observe(1, u, 1000)
		}
	}
	first := pred.Intern(pages[0], 1000)
	rel := pred.Related(first)
	got := map[string]bool{}
	for _, id := range rel {
		got[pred.URL(id)] = true
	}
	for _, u := range pages[1:] {
		if !got[u] {
			t.Errorf("co-browsed page %s not related to %s", u, pages[0])
		}
	}
}

func TestPredictorSeparatesSessions(t *testing.T) {
	pred := NewPredictor(testParams(), 1)
	for round := 0; round < 6; round++ {
		for i := 0; i < 4; i++ {
			pred.Observe(1, fmt.Sprintf("http://a/p%d", i), 1000)
			pred.Observe(2, fmt.Sprintf("http://b/p%d", i), 1000)
		}
	}
	aID := pred.Intern("http://a/p0", 1000)
	for _, id := range pred.Related(aID) {
		if u := pred.URL(id); len(u) > 8 && u[7] == 'b' {
			t.Errorf("cross-session relation leaked: %s", u)
		}
	}
	pred.EndSession(1)
	pred.EndSession(2)
}

func TestCacheLRUBasics(t *testing.T) {
	c := NewCache(3000, nil)
	if c.Request(1, "http://a/1", 1000) {
		t.Fatal("cold fetch hit")
	}
	if !c.Request(1, "http://a/1", 1000) {
		t.Fatal("warm fetch missed")
	}
	c.Request(1, "http://a/2", 1000)
	c.Request(1, "http://a/3", 1000)
	// Cache full (3 × 1000); oldest is /1 unless touched... /1 was
	// touched most recently before /2,/3, so /1 is LRU-middle. Insert a
	// fourth page: /1 evicted? Order: 3(front),2,1(back) → evict /1.
	c.Request(1, "http://a/4", 1000)
	if c.Request(1, "http://a/1", 1000) {
		t.Fatal("evicted page still cached")
	}
	if c.UsedBytes() > 3000 {
		t.Fatalf("budget exceeded: %d", c.UsedBytes())
	}
	if c.Len() == 0 || c.HitRate() <= 0 {
		t.Fatal("stats broken")
	}
}

func TestCacheOversizedPage(t *testing.T) {
	c := NewCache(500, nil)
	c.Request(1, "http://a/huge", 1000)
	if c.Len() != 0 {
		t.Fatal("page larger than the cache was inserted")
	}
	// Second request is still a miss but must not corrupt accounting.
	c.Request(1, "http://a/huge", 1000)
	if c.UsedBytes() != 0 {
		t.Fatalf("used = %d", c.UsedBytes())
	}
}

func TestZeroHitRateOnEmpty(t *testing.T) {
	c := NewCache(1000, nil)
	if c.HitRate() != 0 {
		t.Fatal("hit rate on no requests")
	}
}

func TestPrefetchingBeatsLRU(t *testing.T) {
	prof := DefaultBrowseProfile()
	fetches := GenerateBrowsing(prof, 7)
	if len(fetches) < 2000 {
		t.Fatalf("fetch stream too short: %d", len(fetches))
	}
	const budget = 2 << 20
	plain := Evaluate(fetches, budget, nil)
	pred := NewPredictor(testParams(), 3)
	predictive := Evaluate(fetches, budget, pred)
	t.Logf("plain LRU hit rate %.3f, predictive %.3f (prefetches %d, prefetch hits %d)",
		plain.HitRate(), predictive.HitRate(),
		predictive.Prefetches, predictive.PrefetchHit)
	if predictive.HitRate() <= plain.HitRate() {
		t.Errorf("prefetching did not improve hit rate: %.3f vs %.3f",
			predictive.HitRate(), plain.HitRate())
	}
	if predictive.PrefetchHit == 0 {
		t.Error("no prefetched page was ever hit")
	}
}

func TestPrefetchRespectsBudget(t *testing.T) {
	prof := DefaultBrowseProfile()
	prof.Sessions = 100
	fetches := GenerateBrowsing(prof, 9)
	pred := NewPredictor(testParams(), 4)
	c := Evaluate(fetches, 256<<10, pred)
	if c.UsedBytes() > 256<<10 {
		t.Fatalf("budget exceeded: %d", c.UsedBytes())
	}
}

func TestGenerateBrowsingDeterministic(t *testing.T) {
	a := GenerateBrowsing(DefaultBrowseProfile(), 5)
	b := GenerateBrowsing(DefaultBrowseProfile(), 5)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("streams differ")
		}
	}
}

func TestPredictorAccessors(t *testing.T) {
	pred := NewPredictor(testParams(), 1)
	id := pred.Intern("http://a/x", 777)
	if pred.URL(id) != "http://a/x" || pred.Size(id) != 777 {
		t.Error("accessors wrong")
	}
	if pred.URL(9999) != "" || pred.Size(9999) != 0 {
		t.Error("unknown id accessors wrong")
	}
	// Re-intern keeps the id.
	if pred.Intern("http://a/x", 777) != id {
		t.Error("re-intern changed id")
	}
}
