package webcache

import (
	"fmt"

	"github.com/fmg/seer/internal/stats"
)

// BrowseProfile parameterizes a synthetic browsing workload: sites with
// stable page sets, Zipf site popularity, and session locality (a
// session navigates within one site before moving on) — the Web
// analogue of projects and attention shifts.
type BrowseProfile struct {
	Sites        int
	PagesPerSite int
	// Sessions is the number of browsing sessions to generate.
	Sessions int
	// PagesPerSession is the mean pages fetched in one session.
	PagesPerSession int
	// SiteSwitchProb is the chance a session hops to another site
	// mid-stream (following an external link).
	SiteSwitchProb float64
	// ZipfS skews site popularity.
	ZipfS float64
}

// DefaultBrowseProfile returns a workload with strong revisit locality.
func DefaultBrowseProfile() BrowseProfile {
	return BrowseProfile{
		Sites:           30,
		PagesPerSite:    25,
		Sessions:        400,
		PagesPerSession: 12,
		SiteSwitchProb:  0.08,
		ZipfS:           1.1,
	}
}

// Fetch is one page request.
type Fetch struct {
	Session int
	URL     string
	Size    int64
}

// GenerateBrowsing produces a fetch stream for the profile.
func GenerateBrowsing(p BrowseProfile, seed int64) []Fetch {
	rng := stats.NewRand(seed)
	zipf := stats.NewZipf(p.Sites, p.ZipfS)
	// Stable page sizes per URL (HTML + assets; mean ~12 KB).
	sizes := make(map[string]int64)
	urlOf := func(site, page int) string {
		return fmt.Sprintf("http://site%02d.example.com/page%03d.html", site, page)
	}
	sizeOf := func(u string) int64 {
		if s, ok := sizes[u]; ok {
			return s
		}
		s := rng.Geometric(0.00008)
		sizes[u] = s
		return s
	}
	var out []Fetch
	for sess := 0; sess < p.Sessions; sess++ {
		site := zipf.Sample(rng)
		n := p.PagesPerSession/2 + rng.Intn(p.PagesPerSession+1)
		// Sessions start at the site's entry page and walk a biased
		// path over its pages: entry pages and low-numbered pages are
		// hotter, like real navigation hierarchies.
		page := 0
		for i := 0; i < n; i++ {
			if rng.Bool(p.SiteSwitchProb) {
				site = zipf.Sample(rng)
				page = 0
			}
			u := urlOf(site, page)
			out = append(out, Fetch{Session: sess, URL: u, Size: sizeOf(u)})
			// Next page: mostly near the current one.
			step := rng.Intn(5) - 1
			page += step
			if page < 0 {
				page = 0
			}
			if page >= p.PagesPerSite {
				page = p.PagesPerSite - 1
			}
		}
	}
	return out
}

// Evaluate replays a fetch stream through a cache and returns it for
// stats inspection.
func Evaluate(fetches []Fetch, budget int64, pred *Predictor) *Cache {
	c := NewCache(budget, pred)
	for _, f := range fetches {
		c.Request(f.Session, f.URL, f.Size)
	}
	return c
}
