// Package webcache applies SEER's predictive machinery to Web caching —
// the first of the future applications the paper proposes in §7 ("the
// predictive and inferential methods pioneered by SEER hold promise for
// other applications, such as Web caching, network file systems, and
// directory reorganization").
//
// The mapping is direct: URLs play the role of files, a browsing
// session plays the role of a process reference stream, lifetime
// semantic distance relates pages fetched near each other, and the
// shared-neighbor clustering groups pages into "sites" or "tasks". A
// predictive cache then prefetches the cluster mates of each demand
// fetch, exactly as SEER hoards whole projects rather than single
// files.
package webcache

import (
	"container/list"

	"github.com/fmg/seer/internal/cluster"
	"github.com/fmg/seer/internal/config"
	"github.com/fmg/seer/internal/proc"
	"github.com/fmg/seer/internal/semdist"
	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/stats"
)

// Predictor learns URL relationships from the fetch stream.
type Predictor struct {
	p       config.Params
	fs      *simfs.FS
	tbl     *semdist.Table
	streams map[int]*proc.Stream
	// res is the cached clustering, invalidated on observation.
	res   *cluster.Result
	dirty bool
}

// NewPredictor returns a predictor. Sizes of unknown pages are drawn
// from the same geometric distribution as files; seed fixes them.
func NewPredictor(p config.Params, seed int64) *Predictor {
	return &Predictor{
		p:       p,
		fs:      simfs.New(stats.NewRand(seed)),
		tbl:     semdist.NewTable(p, stats.NewRand(seed+1)),
		streams: make(map[int]*proc.Stream),
		dirty:   true,
	}
}

// Intern registers a URL with a known size.
func (p *Predictor) Intern(url string, size int64) simfs.FileID {
	f := p.fs.Lookup(url)
	if f == nil {
		f = p.fs.Create(url, simfs.Regular, size, 0)
	}
	return f.ID
}

// URL returns the URL for an id.
func (p *Predictor) URL(id simfs.FileID) string {
	if f := p.fs.Get(id); f != nil {
		return f.Path
	}
	return ""
}

// Size returns the page size.
func (p *Predictor) Size(id simfs.FileID) int64 {
	if f := p.fs.Get(id); f != nil {
		return f.Size
	}
	return 0
}

// Observe records a fetch of url within a browsing session. A page
// fetch is a point reference: it "opens and closes" instantly, so
// Definition 3 degrades to sequence distance within the session — which
// is the natural measure for page streams.
func (p *Predictor) Observe(session int, url string, size int64) simfs.FileID {
	id := p.Intern(url, size)
	s := p.streams[session]
	if s == nil {
		s = proc.NewStream(p.p.Window)
		p.streams[session] = s
	}
	p.tbl.TickOpen()
	for _, pair := range s.PointRef(id) {
		p.tbl.Observe(pair.From, id, pair.Dist, pair.Clamped)
	}
	p.dirty = true
	return id
}

// EndSession discards a session's stream (a closed browser tab).
func (p *Predictor) EndSession(session int) {
	delete(p.streams, session)
}

// Related returns the cluster mates of a URL — the pages to prefetch
// when it is fetched.
func (p *Predictor) Related(id simfs.FileID) []simfs.FileID {
	if p.dirty {
		p.res = cluster.Build(p.tbl, cluster.Options{},
			float64(p.p.KNear), float64(p.p.KFar))
		p.dirty = false
	}
	var out []simfs.FileID
	seen := map[simfs.FileID]bool{id: true}
	for _, ci := range p.res.ClustersOf(id) {
		for _, m := range p.res.Clusters[ci].Members {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// Cache is a byte-budgeted LRU page cache with optional prediction.
type Cache struct {
	budget int64
	used   int64
	lru    *list.List // front = most recent
	items  map[simfs.FileID]*list.Element
	pred   *Predictor
	// anon interns URLs when no predictor is attached.
	anon *simfs.FS

	// Stats.
	Hits        uint64
	Misses      uint64
	Prefetches  uint64
	PrefetchHit uint64 // hits on pages that were brought in by prefetch
	FetchBytes  int64  // bytes transferred (demand + prefetch)
}

type cacheItem struct {
	id         simfs.FileID
	size       int64
	prefetched bool
}

// NewCache returns a cache with the given byte budget. pred may be nil
// for a plain LRU cache.
func NewCache(budget int64, pred *Predictor) *Cache {
	return &Cache{
		budget: budget,
		lru:    list.New(),
		items:  make(map[simfs.FileID]*list.Element),
		pred:   pred,
	}
}

// Contains reports whether the page is cached.
func (c *Cache) Contains(id simfs.FileID) bool {
	_, ok := c.items[id]
	return ok
}

// UsedBytes returns the bytes cached.
func (c *Cache) UsedBytes() int64 { return c.used }

// Len returns the number of cached pages.
func (c *Cache) Len() int { return len(c.items) }

// HitRate returns hits/(hits+misses), 0 when no requests were made.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Request services a page fetch: a hit touches the page; a miss
// "transfers" it and inserts it. With a predictor, a miss (or a hit on
// a prefetched page — evidence the prediction stream is live) also
// prefetches the page's cluster mates that fit in the budget.
func (c *Cache) Request(session int, url string, size int64) (hit bool) {
	var id simfs.FileID
	if c.pred != nil {
		id = c.pred.Observe(session, url, size)
	} else {
		id = internAnon(c, url, size)
	}
	if el, ok := c.items[id]; ok {
		c.Hits++
		item := el.Value.(*cacheItem)
		if item.prefetched {
			c.PrefetchHit++
			item.prefetched = false
		}
		c.lru.MoveToFront(el)
		return true
	}
	c.Misses++
	c.insert(id, size, false)
	c.FetchBytes += size
	if c.pred != nil {
		c.prefetchRelated(id)
	}
	return false
}

// internAnon assigns stable ids per URL for the predictor-less cache.
func internAnon(c *Cache, url string, size int64) simfs.FileID {
	if c.anon == nil {
		c.anon = simfs.New(stats.NewRand(0))
	}
	f := c.anon.Lookup(url)
	if f == nil {
		f = c.anon.Create(url, simfs.Regular, size, 0)
	}
	return f.ID
}

func (c *Cache) prefetchRelated(id simfs.FileID) {
	for _, rel := range c.pred.Related(id) {
		if c.Contains(rel) {
			continue
		}
		size := c.pred.Size(rel)
		if size <= 0 || c.used+size > c.budget {
			continue
		}
		c.insert(rel, size, true)
		c.Prefetches++
		c.FetchBytes += size
	}
}

func (c *Cache) insert(id simfs.FileID, size int64, prefetched bool) {
	for c.used+size > c.budget && c.lru.Len() > 0 {
		back := c.lru.Back()
		item := back.Value.(*cacheItem)
		c.used -= item.size
		delete(c.items, item.id)
		c.lru.Remove(back)
	}
	if c.used+size > c.budget {
		return // page larger than the whole cache
	}
	c.items[id] = c.lru.PushFront(&cacheItem{id: id, size: size, prefetched: prefetched})
	c.used += size
}
