package proc

import (
	"github.com/fmg/seer/internal/trace"
)

// Process is one live traced process.
type Process struct {
	PID    trace.PID
	Parent trace.PID
	// Prog is the program name (from exec); the meaningless-process
	// history is keyed by it.
	Prog string
	// Cwd is the current working directory used to absolutize relative
	// pathnames.
	Cwd string
	// Stream is the process's reference history.
	Stream *Stream
}

// Table tracks live processes, creating them lazily on first reference
// (traces may begin mid-lifetime) and wiring fork inheritance and exit
// merging.
type Table struct {
	window int
	// Mode selects the distance definition for newly created streams.
	Mode  Mode
	procs map[trace.PID]*Process
	// DefaultCwd seeds the working directory of processes first seen
	// without a chdir, so relative paths still absolutize somewhere
	// deterministic.
	DefaultCwd string
}

// NewTable returns an empty process table; window is the semantic
// distance lookback M for newly created streams.
func NewTable(window int) *Table {
	return &Table{
		window:     window,
		procs:      make(map[trace.PID]*Process),
		DefaultCwd: "/",
	}
}

// Len returns the number of live processes.
func (t *Table) Len() int { return len(t.procs) }

// Get returns the process for pid, creating it (with an empty history
// and the default cwd) if unknown.
func (t *Table) Get(pid trace.PID) *Process {
	if p := t.procs[pid]; p != nil {
		return p
	}
	p := &Process{
		PID:    pid,
		Cwd:    t.DefaultCwd,
		Stream: NewStreamMode(t.window, t.Mode),
	}
	t.procs[pid] = p
	return p
}

// Lookup returns the process for pid without creating it.
func (t *Table) Lookup(pid trace.PID) *Process { return t.procs[pid] }

// Fork creates child as a copy-on-write image of parent: inherited
// reference history, open files, cwd and program name (paper §4.7).
func (t *Table) Fork(parent, child trace.PID) *Process {
	pp := t.Get(parent)
	cp := &Process{
		PID:    child,
		Parent: parent,
		Prog:   pp.Prog,
		Cwd:    pp.Cwd,
		Stream: pp.Stream.Fork(),
	}
	t.procs[child] = cp
	return cp
}

// Exit removes pid, merging its post-fork history into its parent if the
// parent is still live (paper §4.7).
func (t *Table) Exit(pid trace.PID) {
	p := t.procs[pid]
	if p == nil {
		return
	}
	delete(t.procs, pid)
	if parent := t.procs[p.Parent]; parent != nil {
		parent.Stream.MergeChild(p.Stream)
	}
}

// PIDs returns the live process ids in unspecified order.
func (t *Table) PIDs() []trace.PID {
	out := make([]trace.PID, 0, len(t.procs))
	for pid := range t.procs {
		out = append(out, pid)
	}
	return out
}
