package proc

import (
	"testing"
	"testing/quick"

	"github.com/fmg/seer/internal/simfs"
	"github.com/fmg/seer/internal/trace"
)

const (
	fA simfs.FileID = iota + 1
	fB
	fC
	fD
	fE
)

func pairMap(pairs []RefPair) map[simfs.FileID]RefPair {
	m := make(map[simfs.FileID]RefPair, len(pairs))
	for _, p := range pairs {
		m[p.From] = p
	}
	return m
}

// TestFigure1 verifies the paper's worked example (§3.1.1, Figure 1):
// the sequence {Ao, Bo, Bc, Co, Cc, Ac, Do, Dc} must yield distances
// A→B=0, A→C=0, A→D=3, B→C=1, B→D=2, C→D=1.
func TestFigure1(t *testing.T) {
	s := NewStream(100)
	if got := s.Open(fA); len(got) != 0 {
		t.Fatalf("open A produced pairs %v", got)
	}
	toB := pairMap(s.Open(fB))
	s.Close(fB)
	toC := pairMap(s.Open(fC))
	s.Close(fC)
	s.Close(fA)
	toD := pairMap(s.Open(fD))
	s.Close(fD)

	want := []struct {
		name string
		m    map[simfs.FileID]RefPair
		from simfs.FileID
		dist float64
	}{
		{"A→B", toB, fA, 0},
		{"A→C", toC, fA, 0},
		{"B→C", toC, fB, 1},
		{"A→D", toD, fA, 3},
		{"B→D", toD, fB, 2},
		{"C→D", toD, fC, 1},
	}
	for _, w := range want {
		p, ok := w.m[w.from]
		if !ok {
			t.Errorf("%s: missing pair", w.name)
			continue
		}
		if p.Dist != w.dist {
			t.Errorf("%s = %g, want %g", w.name, p.Dist, w.dist)
		}
		if p.Clamped {
			t.Errorf("%s unexpectedly clamped", w.name)
		}
	}
	if len(toB) != 1 || len(toC) != 2 || len(toD) != 3 {
		t.Errorf("pair counts = %d,%d,%d want 1,2,3", len(toB), len(toC), len(toD))
	}
}

// A file that stays open yields distance 0 regardless of how many opens
// intervene — the compile-with-headers case.
func TestLongOpenFileStaysAtZero(t *testing.T) {
	s := NewStream(10)
	s.Open(fA) // source file stays open
	var last []RefPair
	for i := 0; i < 100; i++ {
		hdr := simfs.FileID(100 + i)
		last = s.Open(hdr)
		s.Close(hdr)
	}
	m := pairMap(last)
	p, ok := m[fA]
	if !ok {
		t.Fatal("open file A missing from pairs after 100 intervening opens")
	}
	if p.Dist != 0 || p.Clamped {
		t.Errorf("A pair = %+v, want dist 0 unclamped", p)
	}
}

func TestClosestPairRuleUsesMostRecentReference(t *testing.T) {
	// Sequence {A,A,B}: the distance from A to B uses the closest
	// (second) reference of A (paper §3.1.1 footnote 1).
	s := NewStream(100)
	s.Open(fA)
	s.Close(fA)
	s.Open(fA)
	s.Close(fA)
	m := pairMap(s.Open(fB))
	if p := m[fA]; p.Dist != 1 {
		t.Errorf("A→B = %g, want 1 (closest pair)", p.Dist)
	}
}

func TestRepeatedIntermediateRefsNotElided(t *testing.T) {
	// Sequence {A,C,C,C,B}: strict interpretation gives distance 4 from
	// A to B... the paper counts intervening file opens, so A→B = 4
	// (opens of C,C,C,B). Repeats are deliberately not elided.
	s := NewStream(100)
	for _, f := range []simfs.FileID{fA, fC, fC, fC} {
		s.Open(f)
		s.Close(f)
	}
	m := pairMap(s.Open(fB))
	if p := m[fA]; p.Dist != 4 {
		t.Errorf("A→B = %g, want 4 (repeats not elided)", p.Dist)
	}
	if p := m[fC]; p.Dist != 1 {
		t.Errorf("C→B = %g, want 1 (closest C)", p.Dist)
	}
}

func TestWindowClampingAndCompensation(t *testing.T) {
	const window = 5
	s := NewStream(window)
	s.Open(fA)
	s.Close(fA)
	// 7 distinct intervening files: A is now 8 opens back, beyond the
	// window but within the compensation region (4*5 = 20).
	for i := 0; i < 7; i++ {
		f := simfs.FileID(100 + i)
		s.Open(f)
		s.Close(f)
	}
	m := pairMap(s.Open(fB))
	p, ok := m[fA]
	if !ok {
		t.Fatal("A missing from compensation region")
	}
	if !p.Clamped || p.Dist != window {
		t.Errorf("A pair = %+v, want clamped dist %d", p, window)
	}
}

func TestBeyondCompensationRegionForgotten(t *testing.T) {
	const window = 3
	s := NewStream(window)
	s.Open(fA)
	s.Close(fA)
	for i := 0; i < 4*window+5; i++ {
		f := simfs.FileID(100 + i)
		s.Open(f)
		s.Close(f)
	}
	m := pairMap(s.Open(fB))
	if _, ok := m[fA]; ok {
		t.Error("A should be beyond the compensation region")
	}
}

func TestPointRefLeavesNothingOpen(t *testing.T) {
	s := NewStream(100)
	s.PointRef(fA)
	if s.OpenCount(fA) != 0 {
		t.Error("PointRef left the file open")
	}
	m := pairMap(s.Open(fB))
	if p := m[fA]; p.Dist != 1 {
		t.Errorf("A→B after point ref = %g, want 1", p.Dist)
	}
}

func TestNestedOpensRequireMatchingCloses(t *testing.T) {
	s := NewStream(100)
	s.Open(fA)
	s.Open(fA)
	s.Close(fA)
	if s.OpenCount(fA) != 1 {
		t.Fatalf("open count = %d, want 1", s.OpenCount(fA))
	}
	// Still open: distance 0.
	m := pairMap(s.Open(fB))
	if p := m[fA]; p.Dist != 0 {
		t.Errorf("A→B = %g, want 0 while still open", p.Dist)
	}
	s.Close(fA)
	s.Close(fA) // extra close ignored
	if s.OpenCount(fA) != 0 {
		t.Error("extra close corrupted the open table")
	}
}

func TestSelfReferenceProducesNoSelfPair(t *testing.T) {
	s := NewStream(100)
	s.Open(fA)
	s.Close(fA)
	m := pairMap(s.Open(fA))
	if _, ok := m[fA]; ok {
		t.Error("self pair generated")
	}
}

func TestForkInheritsHistory(t *testing.T) {
	parent := NewStream(100)
	parent.Open(fA) // stays open, like a shell's script file
	parent.Open(fB)
	parent.Close(fB)
	child := parent.Fork()
	m := pairMap(child.Open(fC))
	if p := m[fA]; p.Dist != 0 {
		t.Errorf("inherited open file A→C = %+v, want 0", p)
	}
	if p := m[fB]; p.Dist != 1 {
		t.Errorf("inherited history B→C = %g, want 1", p.Dist)
	}
	// The child's activity must not disturb the parent's counters.
	if parent.Opens() != 2 {
		t.Errorf("parent opens = %d, want 2", parent.Opens())
	}
}

func TestMergeChildExtendsParentHistory(t *testing.T) {
	parent := NewStream(100)
	parent.Open(fA)
	parent.Close(fA)
	child := parent.Fork()
	child.Open(fB)
	child.Close(fB)
	child.Open(fC)
	child.Close(fC)
	parent.MergeChild(child)
	// Parent's next reference should relate to the child's files.
	m := pairMap(parent.Open(fD))
	if p, ok := m[fC]; !ok || p.Dist != 1 {
		t.Errorf("C→D after merge = %+v, want dist 1", p)
	}
	if p, ok := m[fB]; !ok || p.Dist != 2 {
		t.Errorf("B→D after merge = %+v, want dist 2", p)
	}
	if p, ok := m[fA]; !ok || p.Dist != 3 {
		t.Errorf("A→D after merge = %+v, want dist 3", p)
	}
	parent.MergeChild(nil) // must not panic
}

func TestRecentOrder(t *testing.T) {
	s := NewStream(100)
	for _, f := range []simfs.FileID{fA, fB, fC, fA} {
		s.Open(f)
		s.Close(f)
	}
	got := s.Recent()
	if len(got) != 3 || got[0] != fA || got[1] != fC || got[2] != fB {
		t.Errorf("Recent() = %v, want [A C B]", got)
	}
}

func TestDegenerateWindow(t *testing.T) {
	s := NewStream(0)
	s.Open(fA)
	s.Close(fA)
	m := pairMap(s.Open(fB))
	if p := m[fA]; p.Dist != 1 {
		t.Errorf("window clamped to 1: A→B = %+v", p)
	}
}

// Property: distances are always in [0, window], clamped pairs are
// exactly window, and no pair references the opened file itself.
func TestStreamPairInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewStream(7)
		open := map[simfs.FileID]int{}
		for _, op := range ops {
			id := simfs.FileID(op%13 + 1)
			if op%3 == 0 && open[id] > 0 {
				s.Close(id)
				open[id]--
				continue
			}
			pairs := s.Open(id)
			open[id]++
			for _, p := range pairs {
				if p.From == id {
					return false
				}
				if p.Dist < 0 || p.Dist > 7 {
					return false
				}
				if p.Clamped && p.Dist != 7 {
					return false
				}
				if open[p.From] > 0 && p.Dist != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTableForkExitLifecycle(t *testing.T) {
	tb := NewTable(100)
	p1 := tb.Get(1)
	p1.Prog = "make"
	p1.Stream.Open(fA)
	p1.Stream.Close(fA)
	child := tb.Fork(1, 2)
	if child.Prog != "make" || child.Parent != 1 {
		t.Errorf("child = %+v", child)
	}
	child.Stream.Open(fB)
	child.Stream.Close(fB)
	tb.Exit(2)
	if tb.Lookup(2) != nil {
		t.Error("exited child still in table")
	}
	// Parent history must now include the child's file.
	m := pairMap(p1.Stream.Open(fC))
	if _, ok := m[fB]; !ok {
		t.Error("child history not merged into parent")
	}
	tb.Exit(99) // unknown pid: no-op
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestTableOrphanExit(t *testing.T) {
	tb := NewTable(100)
	tb.Fork(1, 2)
	tb.Exit(1) // parent dies first
	tb.Exit(2) // orphan exit: no parent to merge into, must not panic
	if tb.Len() != 0 {
		t.Errorf("Len = %d, want 0", tb.Len())
	}
}

func TestTableDefaultCwd(t *testing.T) {
	tb := NewTable(100)
	tb.DefaultCwd = "/home/u"
	if p := tb.Get(5); p.Cwd != "/home/u" {
		t.Errorf("cwd = %q", p.Cwd)
	}
	if got := tb.PIDs(); len(got) != 1 || got[0] != trace.PID(5) {
		t.Errorf("PIDs = %v", got)
	}
}

// Definition 2 (sequence distance) loses the compile case: a source
// file held open across many header opens is NOT at distance 0.
func TestSequenceModeNoLifetimeZero(t *testing.T) {
	s := NewStreamMode(100, Sequence)
	s.Open(fA) // stays open
	for i := 0; i < 5; i++ {
		h := simfs.FileID(100 + i)
		s.Open(h)
		s.Close(h)
	}
	m := pairMap(s.Open(fB))
	p, ok := m[fA]
	if !ok {
		t.Fatal("A missing from sequence-mode pairs")
	}
	if p.Dist != 6 {
		t.Errorf("sequence A→B = %g, want 6 intervening opens", p.Dist)
	}
}

// Definition 1 (temporal distance) reports elapsed seconds and is
// distorted by interruptions: a pause between edits inflates distance.
func TestTemporalMode(t *testing.T) {
	s := NewStreamMode(100, Temporal)
	s.SetNow(1000)
	s.Open(fA)
	s.Close(fA)
	s.SetNow(1002)
	m := pairMap(s.Open(fB))
	if p := m[fA]; p.Dist != 2 {
		t.Errorf("temporal A→B = %g, want 2 seconds", p.Dist)
	}
	s.Close(fB)
	// A telephone interruption: 30 minutes pass.
	s.SetNow(1002 + 1800)
	m = pairMap(s.Open(fC))
	if p := m[fB]; p.Dist != 1800 {
		t.Errorf("temporal B→C = %g, want 1800 seconds", p.Dist)
	}
	// Clock going backwards is clamped at zero.
	s.SetNow(0)
	m = pairMap(s.Open(fD))
	if p := m[fC]; p.Dist != 0 {
		t.Errorf("backwards clock distance = %g, want clamp to 0", p.Dist)
	}
}

func TestModeString(t *testing.T) {
	if Lifetime.String() != "lifetime" || Sequence.String() != "sequence" ||
		Temporal.String() != "temporal" {
		t.Error("mode names wrong")
	}
}

func TestTableModePropagation(t *testing.T) {
	tb := NewTable(50)
	tb.Mode = Sequence
	p := tb.Get(1)
	p.Stream.Open(fA) // held open
	tb.Fork(1, 2)
	child := tb.Lookup(2)
	m := pairMap(child.Stream.Open(fB))
	// Sequence mode in the child too: the held-open A is at distance 1,
	// not 0.
	if pr := m[fA]; pr.Dist != 1 {
		t.Errorf("child sequence A→B = %g, want 1", pr.Dist)
	}
}
