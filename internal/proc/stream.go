// Package proc maintains per-process reference streams.
//
// A modern multitasking user generates multiple independent reference
// streams at once (reading mail while a compilation runs), and feeding
// the interleaved stream to the semantic-distance calculation creates
// spurious relationships (paper §4.7). SEER therefore keeps a separate
// reference history per process, computes lifetime semantic distance
// (paper Definition 3) on a process-local basis, inherits histories from
// parent processes on fork, and merges them back when children exit.
package proc

import (
	"container/list"
	"sort"

	"github.com/fmg/seer/internal/simfs"
)

// compensationFactor extends the lookback beyond the window M: pairs at
// distance (M, compensationFactor*M] are reported clamped to M so the
// semantic-distance table can apply the paper's partial-adjustment rule
// ("inserting M whenever a value larger than M would have occurred",
// §3.1.3) to already-known neighbors.
const compensationFactor = 4

// Mode selects which of the paper's semantic-distance definitions the
// stream computes (§3.1.1).
type Mode uint8

// The distance modes.
const (
	// Lifetime is Definition 3, the paper's choice: 0 while the earlier
	// file is still open, otherwise the count of intervening opens.
	Lifetime Mode = iota
	// Sequence is Definition 2: the count of intervening opens, with no
	// special treatment of files still open. The compile case (a source
	// held open across its headers) degrades under it.
	Sequence
	// Temporal is Definition 1: elapsed clock time between references,
	// in seconds. Subject to human-vs-computer time-scale distortion
	// (telephone interruptions, system load).
	Temporal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Lifetime:
		return "lifetime"
	case Sequence:
		return "sequence"
	case Temporal:
		return "temporal"
	}
	return "mode?"
}

// RefPair is one directed distance sample produced by an open: the
// reference stream observed that From was referenced Dist opens before
// the file just opened.
type RefPair struct {
	From simfs.FileID
	Dist float64
	// Clamped marks compensation pairs (true distance exceeded the
	// window M and was clamped); the distance table only applies these
	// to neighbor relationships that already exist.
	Clamped bool
}

// distinctRef is a node in the recency list: the most recent open of a
// file in this stream.
type distinctRef struct {
	file simfs.FileID
	seq  uint64 // stream-local open sequence number of that open
	// sec is the wall-clock second of that open (Temporal mode).
	sec float64
}

// Stream is the reference history of one process.
type Stream struct {
	window int
	mode   Mode
	// now is the wall-clock position (seconds) of the current event,
	// used by the Temporal mode; callers set it via SetNow.
	now float64
	// opens counts file opens in this stream; lifetime semantic
	// distance is a difference of these counts (Definition 3).
	opens uint64
	// recency lists distinct files by most-recent open, newest first.
	recency *list.List
	nodes   map[simfs.FileID]*list.Element
	// openFiles counts outstanding opens per file: a file that is still
	// open when another is opened yields distance 0 no matter how long
	// ago its open happened (the compilation example of §3.1.1).
	openFiles map[simfs.FileID]int
	// forkSeq is the value of opens when this stream was forked from a
	// parent; opens after this point are replayed into the parent when
	// the child exits.
	forkSeq uint64
}

// NewStream returns an empty stream with lookback window M computing
// lifetime distance (Definition 3).
func NewStream(window int) *Stream {
	return NewStreamMode(window, Lifetime)
}

// NewStreamMode returns an empty stream computing the given definition.
func NewStreamMode(window int, mode Mode) *Stream {
	if window < 1 {
		window = 1
	}
	return &Stream{
		window:    window,
		mode:      mode,
		recency:   list.New(),
		nodes:     make(map[simfs.FileID]*list.Element),
		openFiles: make(map[simfs.FileID]int),
	}
}

// SetNow positions the stream's wall clock (seconds); only the Temporal
// mode (Definition 1) consumes it.
func (s *Stream) SetNow(sec float64) { s.now = sec }

// Opens returns the number of opens recorded in this stream.
func (s *Stream) Opens() uint64 { return s.opens }

// OpenCount returns the number of outstanding opens of f.
func (s *Stream) OpenCount(f simfs.FileID) int { return s.openFiles[f] }

// Open records an open of f and returns the distance samples from prior
// references to this one: 0 for every file still open, the open-count
// difference for files closed within the window, and clamped samples
// within the compensation region.
func (s *Stream) Open(f simfs.FileID) []RefPair {
	s.opens++
	seq := s.opens
	pairs := s.collectPairs(f, seq)
	s.record(f, seq)
	s.openFiles[f]++
	return pairs
}

// record moves f to the front of the recency list with the given seq and
// prunes entries that have receded beyond the compensation region.
func (s *Stream) record(f simfs.FileID, seq uint64) {
	if el, ok := s.nodes[f]; ok {
		ref := el.Value.(*distinctRef)
		ref.seq = seq
		ref.sec = s.now
		s.recency.MoveToFront(el)
	} else {
		s.nodes[f] = s.recency.PushFront(&distinctRef{file: f, seq: seq, sec: s.now})
	}
	s.prune(seq)
}

func (s *Stream) prune(now uint64) {
	horizon := uint64(compensationFactor * s.window)
	for back := s.recency.Back(); back != nil; back = s.recency.Back() {
		ref := back.Value.(*distinctRef)
		if now-ref.seq <= horizon {
			return
		}
		// Files still open must survive pruning: they produce distance
		// 0 however old their open is.
		if s.openFiles[ref.file] > 0 {
			// Move it just before the horizon boundary conceptually by
			// leaving it; stop pruning to keep the list ordered.
			return
		}
		s.recency.Remove(back)
		delete(s.nodes, ref.file)
	}
}

func (s *Stream) collectPairs(f simfs.FileID, seq uint64) []RefPair {
	var pairs []RefPair
	seen := make(map[simfs.FileID]bool, len(s.openFiles)+8)
	seen[f] = true
	// Definition 3 only: every currently open file relates at distance
	// 0 no matter how long ago its open was. Iterate in id order — map
	// order would randomize neighbor-table insertion order and with it
	// the whole downstream clustering.
	if s.mode == Lifetime && len(s.openFiles) > 0 {
		ids := make([]simfs.FileID, 0, len(s.openFiles))
		for of, n := range s.openFiles {
			if n > 0 && of != f {
				ids = append(ids, of)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, of := range ids {
			pairs = append(pairs, RefPair{From: of, Dist: 0})
			seen[of] = true
		}
	}
	window := uint64(s.window)
	horizon := uint64(compensationFactor * s.window)
	for el := s.recency.Front(); el != nil; el = el.Next() {
		ref := el.Value.(*distinctRef)
		if seen[ref.file] {
			continue
		}
		delta := seq - ref.seq
		switch {
		case delta <= window:
			pairs = append(pairs, RefPair{From: ref.file, Dist: s.distance(ref, delta)})
		case delta <= horizon:
			pairs = append(pairs, RefPair{From: ref.file, Dist: s.distance(ref, window), Clamped: true})
		default:
			// Recency-ordered: everything further back is older still,
			// except possibly stale open-file nodes already handled.
			if s.openFiles[ref.file] == 0 {
				return pairs
			}
		}
		seen[ref.file] = true
	}
	return pairs
}

// distance converts an open-count delta into the mode's distance value.
func (s *Stream) distance(ref *distinctRef, delta uint64) float64 {
	if s.mode == Temporal {
		// Definition 1: elapsed clock time, in seconds.
		d := s.now - ref.sec
		if d < 0 {
			d = 0
		}
		return d
	}
	return float64(delta)
}

// Skip records an open that must count as an intervening reference for
// Definition 3 without itself forming relationships: opens of
// frequently-referenced files such as shared libraries (§4.2) and other
// excluded objects. The open advances the stream's counter — pushing
// later pairs farther apart — but the file never enters the recency
// list.
func (s *Stream) Skip() { s.opens++ }

// Close records a close of f. Extra closes are ignored.
func (s *Stream) Close(f simfs.FileID) {
	if s.openFiles[f] > 0 {
		s.openFiles[f]--
		if s.openFiles[f] == 0 {
			delete(s.openFiles, f)
		}
	}
}

// PointRef records an instantaneous reference (open immediately followed
// by close): renames, attribute examinations, deletions (paper §4.8).
func (s *Stream) PointRef(f simfs.FileID) []RefPair {
	pairs := s.Open(f)
	s.Close(f)
	return pairs
}

// Fork returns a child stream that inherits this stream's reference
// history and open-file table (paper §4.7).
func (s *Stream) Fork() *Stream {
	c := NewStreamMode(s.window, s.mode)
	c.opens = s.opens
	c.now = s.now
	c.forkSeq = s.opens
	for el := s.recency.Back(); el != nil; el = el.Prev() {
		ref := el.Value.(*distinctRef)
		c.nodes[ref.file] = c.recency.PushFront(&distinctRef{file: ref.file, seq: ref.seq})
	}
	for f, n := range s.openFiles {
		c.openFiles[f] = n
	}
	return c
}

// MergeChild folds an exited child's post-fork references into this
// stream so later parent references can relate to files the child
// touched. Distances were already computed inside the child; the merge
// is bookkeeping only and generates no new samples.
func (s *Stream) MergeChild(c *Stream) {
	if c == nil {
		return
	}
	type rec struct {
		file simfs.FileID
		seq  uint64
	}
	var recs []rec
	for el := c.recency.Front(); el != nil; el = el.Next() {
		ref := el.Value.(*distinctRef)
		if ref.seq > c.forkSeq {
			recs = append(recs, rec{ref.file, ref.seq})
		}
	}
	// Replay in the child's chronological order, preserving the child's
	// open-count spacing so its activity does not compact into an
	// artificially tight run at the parent's session boundary.
	sort.Slice(recs, func(i, j int) bool { return recs[i].seq < recs[j].seq })
	base := s.opens
	for _, r := range recs {
		s.record(r.file, base+(r.seq-c.forkSeq))
	}
	if c.opens > c.forkSeq {
		s.opens = base + (c.opens - c.forkSeq)
	}
}

// Recent returns the distinct files in the stream's lookback region,
// newest first. Used by inspection tooling.
func (s *Stream) Recent() []simfs.FileID {
	out := make([]simfs.FileID, 0, s.recency.Len())
	for el := s.recency.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*distinctRef).file)
	}
	return out
}
