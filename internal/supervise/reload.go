package supervise

import (
	"bytes"
	"context"
	"os"
	"time"
)

// Watcher polls a config file and hands changed contents to an Apply
// callback — the supervised half of hot reload. It deliberately avoids
// inotify-style APIs: a poll every second is free at config-file sizes,
// works on every platform and filesystem (NFS home directories were
// SEER's natural habitat), and survives editors that replace rather
// than rewrite the file.
//
// Change detection is by content, not mtime: each poll reads the file
// and compares bytes against the last content handed to Apply, so
// same-second rewrites and mtime-preserving copies are still caught. A
// torn read of a non-atomically-written file simply fails validation in
// Apply and is retried on the next poll; writers should still prefer
// write-to-temp-then-rename.
//
// Apply errors do not stop the watcher: the caller logs/counts the
// rejection and the old configuration keeps serving. A missing file is
// not an error — the watcher waits for it to appear (and re-applies
// when it reappears after deletion).
type Watcher struct {
	path  string
	poll  time.Duration
	apply func(data []byte) error
	kick  chan struct{}

	// last is the most recent content handed to Apply (nil = none yet);
	// owned by the stage goroutine.
	last []byte
}

// NewWatcher returns a watcher for path polling at the given interval
// (≤ 0 means one second). apply receives the full file contents on
// every change; it must parse, validate, and swap — returning an error
// leaves the previous configuration active.
func NewWatcher(path string, poll time.Duration, apply func(data []byte) error) *Watcher {
	if poll <= 0 {
		poll = time.Second
	}
	return &Watcher{path: path, poll: poll, apply: apply, kick: make(chan struct{}, 1)}
}

// Kick forces an immediate check on the next loop iteration (SIGHUP
// handling); safe from any goroutine.
func (w *Watcher) Kick() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

// MarkApplied seeds the change detector with contents already applied
// at startup, so the first poll does not re-apply the same bytes. Call
// before Stage runs.
func (w *Watcher) MarkApplied(data []byte) {
	w.last = append([]byte(nil), data...)
}

// Stage returns the StageFunc to register under a Supervisor. It polls
// until ctx ends; a panicking Apply bubbles to the supervisor like any
// stage failure and the watcher restarts with backoff.
func (w *Watcher) Stage() StageFunc {
	return func(ctx context.Context) error {
		t := time.NewTicker(w.poll)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return nil
			case <-t.C:
			case <-w.kick:
			}
			w.check()
		}
	}
}

// check reads the file and applies changed content. Read errors
// (missing file, permissions) leave the last-applied state untouched.
func (w *Watcher) check() {
	data, err := os.ReadFile(w.path)
	if err != nil {
		return
	}
	if w.last != nil && bytes.Equal(data, w.last) {
		return
	}
	// Record the content as seen whether or not Apply accepts it: a
	// rejected file should be re-applied only when it changes again,
	// not re-rejected (and re-logged) every poll.
	w.last = data
	w.apply(data)
}
