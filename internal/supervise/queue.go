package supervise

import (
	"context"
	"sync/atomic"
	"time"
)

// Queue is a fixed-capacity event queue decoupling a producer (the
// strace tailer) from a consumer (the correlator feeder). The overflow
// policy is explicit: Put blocks up to BlockFor while the queue is
// full, then sheds the oldest queued item (counting the drop) and
// enqueues the new one — fresh activity is worth more to a hoarding
// daemon than the oldest unprocessed event, and the tail loop must
// never stall behind a wedged consumer for long.
type Queue[T any] struct {
	ch    chan T
	block time.Duration
	drops atomic.Uint64
}

// NewQueue returns a queue holding up to capacity items whose Put
// blocks at most blockFor when full before shedding the oldest item.
// capacity must be ≥ 1; blockFor ≤ 0 sheds immediately when full.
func NewQueue[T any](capacity int, blockFor time.Duration) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity), block: blockFor}
}

// Put enqueues v, applying the overflow policy when full. It returns
// false only when ctx ended before the item could be enqueued (that
// loss is shutdown, not overload, so it is not counted as a drop).
func (q *Queue[T]) Put(ctx context.Context, v T) bool {
	select {
	case q.ch <- v:
		return true
	default:
	}
	if q.block > 0 {
		t := time.NewTimer(q.block)
		select {
		case q.ch <- v:
			t.Stop()
			return true
		case <-ctx.Done():
			t.Stop()
			return false
		case <-t.C:
		}
	} else if ctx.Err() != nil {
		return false
	}
	// Deadline passed and still full: shed the oldest, keep the newest.
	select {
	case <-q.ch:
		q.drops.Add(1)
	default:
	}
	select {
	case q.ch <- v:
		return true
	default:
		// Another producer won the freed slot; the new item is the drop.
		q.drops.Add(1)
		return true
	}
}

// Get dequeues the oldest item, blocking until one arrives or ctx
// ends. ok is false only on context end.
func (q *Queue[T]) Get(ctx context.Context) (v T, ok bool) {
	// Drain pending items even when ctx is already done: the feeder
	// uses this to empty the queue before the final checkpoint.
	select {
	case v = <-q.ch:
		return v, true
	default:
	}
	select {
	case v = <-q.ch:
		return v, true
	case <-ctx.Done():
		return v, false
	}
}

// TryGet dequeues without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	select {
	case v = <-q.ch:
		return v, true
	default:
		return v, false
	}
}

// Len returns the current queue depth.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap returns the configured capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Drops returns how many items the overflow policy has shed.
func (q *Queue[T]) Drops() uint64 { return q.drops.Load() }
