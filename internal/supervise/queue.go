package supervise

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Queue is a bounded event queue decoupling a producer (the strace
// tailer) from a consumer (the correlator feeder). The overflow policy
// is explicit: Put blocks up to BlockFor while the queue is full, then
// sheds the oldest queued item (counting the drop) and enqueues the new
// one — fresh activity is worth more to a hoarding daemon than the
// oldest unprocessed event, and the tail loop must never stall behind a
// wedged consumer for long.
//
// Unlike a raw channel, the capacity bound is a live setting: SetCap
// resizes the queue without dropping queued items or disturbing blocked
// producers/consumers, which is what lets a config reload retune the
// ingestion buffer on a running daemon.
type Queue[T any] struct {
	// block is the overflow-blocking duration in nanoseconds, atomic so
	// SetBlock can retune it while producers are mid-Put.
	block atomic.Int64
	drops atomic.Uint64

	mu    sync.Mutex
	ring  []T // circular buffer; grows lazily up to capv
	head  int // index of oldest item
	count int
	capv  int
	// nonEmpty/space are broadcast channels: a waiter snapshots the
	// current channel under mu and selects on it; the state change that
	// would unblock it closes the channel (and clears the field) under
	// the same mutex, so wakeups are never lost across resizes.
	nonEmpty chan struct{}
	space    chan struct{}
}

// NewQueue returns a queue holding up to capacity items whose Put
// blocks at most blockFor when full before shedding the oldest item.
// capacity must be ≥ 1; blockFor ≤ 0 sheds immediately when full.
func NewQueue[T any](capacity int, blockFor time.Duration) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{capv: capacity}
	q.block.Store(int64(blockFor))
	return q
}

// SetBlock changes how long a Put on a full queue blocks before
// shedding (≤ 0 sheds immediately). Puts already blocking keep their
// original deadline.
func (q *Queue[T]) SetBlock(d time.Duration) { q.block.Store(int64(d)) }

// pushLocked appends v (caller holds mu and has checked count < capv)
// and wakes any waiting consumer.
func (q *Queue[T]) pushLocked(v T) {
	if q.count == len(q.ring) {
		// Grow toward capv: double, bounded by the configured capacity.
		n := 2 * len(q.ring)
		if n < 8 {
			n = 8
		}
		if n > q.capv {
			n = q.capv
		}
		next := make([]T, n)
		for i := 0; i < q.count; i++ {
			next[i] = q.ring[(q.head+i)%len(q.ring)]
		}
		q.ring, q.head = next, 0
	}
	q.ring[(q.head+q.count)%len(q.ring)] = v
	q.count++
	if q.nonEmpty != nil {
		close(q.nonEmpty)
		q.nonEmpty = nil
	}
}

// popLocked removes and returns the oldest item (caller holds mu) and
// wakes any producer waiting for room.
func (q *Queue[T]) popLocked() (v T, ok bool) {
	if q.count == 0 {
		return v, false
	}
	var zero T
	v = q.ring[q.head]
	q.ring[q.head] = zero // release the reference
	q.head = (q.head + 1) % len(q.ring)
	q.count--
	if q.space != nil && q.count < q.capv {
		close(q.space)
		q.space = nil
	}
	return v, true
}

// Put enqueues v, applying the overflow policy when full. It returns
// false only when ctx ended before the item could be enqueued (that
// loss is shutdown, not overload, so it is not counted as a drop).
func (q *Queue[T]) Put(ctx context.Context, v T) bool {
	q.mu.Lock()
	if q.count < q.capv {
		q.pushLocked(v)
		q.mu.Unlock()
		return true
	}
	q.mu.Unlock()

	if block := time.Duration(q.block.Load()); block > 0 {
		t := time.NewTimer(block)
		defer t.Stop()
		for {
			q.mu.Lock()
			if q.count < q.capv {
				q.pushLocked(v)
				q.mu.Unlock()
				return true
			}
			if q.space == nil {
				q.space = make(chan struct{})
			}
			sp := q.space
			q.mu.Unlock()
			select {
			case <-sp:
				continue
			case <-ctx.Done():
				return false
			case <-t.C:
			}
			break
		}
	} else if ctx.Err() != nil {
		return false
	}

	// Deadline passed and still full: shed the oldest, keep the newest.
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count >= q.capv {
		q.popLocked()
		q.drops.Add(1)
	}
	q.pushLocked(v)
	return true
}

// Get dequeues the oldest item, blocking until one arrives or ctx
// ends. ok is false only on context end.
func (q *Queue[T]) Get(ctx context.Context) (v T, ok bool) {
	for {
		q.mu.Lock()
		if v, ok = q.popLocked(); ok {
			q.mu.Unlock()
			return v, true
		}
		if q.nonEmpty == nil {
			q.nonEmpty = make(chan struct{})
		}
		ne := q.nonEmpty
		q.mu.Unlock()
		select {
		case <-ne:
		case <-ctx.Done():
			// Drain pending items even when ctx is already done: the
			// feeder uses this to empty the queue before the final
			// checkpoint.
			q.mu.Lock()
			v, ok = q.popLocked()
			q.mu.Unlock()
			return v, ok
		}
	}
}

// TryGet dequeues without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	q.mu.Lock()
	v, ok = q.popLocked()
	q.mu.Unlock()
	return v, ok
}

// Len returns the current queue depth.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Cap returns the configured capacity.
func (q *Queue[T]) Cap() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.capv
}

// SetCap changes the capacity bound on a live queue (n < 1 is clamped
// to 1). Growing wakes producers blocked on a full queue. Shrinking
// below the current depth never discards queued items: the queue simply
// runs over-capacity until the consumer drains it, with the overflow
// policy applying to new Puts in the meantime.
func (q *Queue[T]) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	q.capv = n
	if q.space != nil && q.count < q.capv {
		close(q.space)
		q.space = nil
	}
	q.mu.Unlock()
}

// FillPct returns how full the queue is, in whole percent (0-100+;
// values above 100 are possible transiently after a shrink).
func (q *Queue[T]) FillPct() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.capv <= 0 {
		return 0
	}
	return q.count * 100 / q.capv
}

// Drops returns how many items the overflow policy has shed.
func (q *Queue[T]) Drops() uint64 { return q.drops.Load() }
