package supervise

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastCfg is a backoff policy tight enough for tests.
func fastCfg() Config {
	return Config{
		Backoff:    Backoff{Initial: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2, Jitter: 0.1},
		BreakAfter: 4,
		Window:     time.Minute,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestStageRecoversFromPanics(t *testing.T) {
	sup := New(fastCfg())
	var runs atomic.Int64
	sup.Add("flappy", func(ctx context.Context) error {
		n := runs.Add(1)
		if n <= 2 {
			panic("injected")
		}
		<-ctx.Done()
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup.Start(ctx)

	waitFor(t, "stage to settle after two panics", func() bool {
		return runs.Load() >= 3 && sup.Health() == Healthy
	})
	if got := sup.Restarts(); got < 2 {
		t.Errorf("Restarts() = %d, want >= 2", got)
	}
	rep := sup.Report()
	if rep.Stages[0].State != "running" {
		t.Errorf("stage state = %s, want running", rep.Stages[0].State)
	}
	if !strings.HasPrefix(rep.Stages[0].LastErr, "panic: injected") {
		t.Errorf("last_error = %q, want panic: injected prefix", rep.Stages[0].LastErr)
	}
	if strings.Contains(rep.Stages[0].LastErr, "\n") {
		t.Errorf("last_error contains a stack trace; want one line")
	}
	cancel()
	sup.Wait()
	if st := sup.Report().Stages[0].State; st != "stopped" {
		t.Errorf("state after Wait = %s, want stopped", st)
	}
}

func TestCircuitBreakerStopsRestarting(t *testing.T) {
	sup := New(fastCfg())
	var runs atomic.Int64
	sup.Add("doomed", func(ctx context.Context) error {
		runs.Add(1)
		return errors.New("always fails")
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup.Start(ctx)

	waitFor(t, "breaker to trip", func() bool {
		return sup.Report().Stages[0].State == "broken"
	})
	if h := sup.Health(); h != Degraded {
		t.Fatalf("health with broken non-critical stage = %v, want degraded", h)
	}
	at := runs.Load()
	if at != 4 {
		t.Errorf("breaker tripped after %d runs, want 4", at)
	}
	time.Sleep(30 * time.Millisecond)
	if got := runs.Load(); got != at {
		t.Errorf("broken stage kept running: %d -> %d", at, got)
	}
}

func TestCriticalBrokenIsUnavailable(t *testing.T) {
	sup := New(fastCfg())
	sup.Add("listener", func(ctx context.Context) error {
		return errors.New("bind: address in use")
	}, Critical())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup.Start(ctx)
	waitFor(t, "unavailable", func() bool { return sup.Health() == Unavailable })
}

func TestBreakerResetGivesFreshRun(t *testing.T) {
	cfg := fastCfg()
	cfg.ResetAfter = 10 * time.Millisecond
	sup := New(cfg)
	var runs atomic.Int64
	sup.Add("healing", func(ctx context.Context) error {
		if runs.Add(1) <= 4 {
			return errors.New("still sick")
		}
		<-ctx.Done()
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup.Start(ctx)
	// Trips at 4 failures, resets after 10ms, then the 5th run succeeds.
	waitFor(t, "recovery after breaker reset", func() bool {
		return sup.Health() == Healthy && runs.Load() >= 5
	})
}

func TestNoRestartStageStopsCleanly(t *testing.T) {
	sup := New(fastCfg())
	sup.Add("bootstrap", func(ctx context.Context) error { return nil }, NoRestart())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup.Start(ctx)
	waitFor(t, "clean stop", func() bool {
		return sup.Report().Stages[0].State == "stopped"
	})
	if h := sup.Health(); h != Healthy {
		t.Errorf("health = %v, want healthy", h)
	}
}

func TestProbesFeedHealth(t *testing.T) {
	sup := New(fastCfg())
	var state atomic.Int64
	sup.AddProbe("queue", func() Probe {
		return Probe{State: HealthState(state.Load()), Detail: "depth=9/10"}
	})
	if sup.Health() != Healthy {
		t.Fatal("expected healthy with no stages and a healthy probe")
	}
	state.Store(int64(Degraded))
	if sup.Health() != Degraded {
		t.Fatal("degraded probe did not degrade health")
	}
	rep := sup.Report()
	if len(rep.Probes) != 1 || rep.Probes[0].Detail != "depth=9/10" {
		t.Fatalf("probe report = %+v", rep.Probes)
	}
}

func TestHealthHandlerCodes(t *testing.T) {
	sup := New(fastCfg())
	var state atomic.Int64
	sup.AddProbe("p", func() Probe { return Probe{State: HealthState(state.Load())} })

	get := func(ready bool) (int, Report) {
		rr := httptest.NewRecorder()
		sup.HealthHandler(ready)(rr, httptest.NewRequest("GET", "/healthz", nil))
		var rep Report
		if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
			t.Fatalf("bad health JSON: %v", err)
		}
		return rr.Code, rep
	}

	if code, rep := get(false); code != 200 || rep.State != "healthy" {
		t.Errorf("healthy: code=%d state=%s", code, rep.State)
	}
	state.Store(int64(Degraded))
	if code, _ := get(false); code != 200 {
		t.Errorf("degraded /healthz code = %d, want 200", code)
	}
	if code, _ := get(true); code != 503 {
		t.Errorf("degraded /readyz code = %d, want 503", code)
	}
	state.Store(int64(Unavailable))
	if code, rep := get(false); code != 503 || rep.State != "unavailable" {
		t.Errorf("unavailable: code=%d state=%s", code, rep.State)
	}
}

func TestQueueFIFOAndDepth(t *testing.T) {
	q := NewQueue[int](4, 0)
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		q.Put(ctx, i)
	}
	if q.Len() != 3 || q.Cap() != 4 {
		t.Fatalf("Len=%d Cap=%d", q.Len(), q.Cap())
	}
	for i := 1; i <= 3; i++ {
		v, ok := q.Get(ctx)
		if !ok || v != i {
			t.Fatalf("Get = %d,%v want %d", v, ok, i)
		}
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
}

func TestQueueShedsOldestWhenFull(t *testing.T) {
	q := NewQueue[int](2, 0)
	ctx := context.Background()
	q.Put(ctx, 1)
	q.Put(ctx, 2)
	q.Put(ctx, 3) // full: sheds 1, keeps 3
	if q.Drops() != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops())
	}
	v1, _ := q.Get(ctx)
	v2, _ := q.Get(ctx)
	if v1 != 2 || v2 != 3 {
		t.Fatalf("got %d,%d want 2,3", v1, v2)
	}
}

func TestQueuePutBlocksUntilConsumerFrees(t *testing.T) {
	q := NewQueue[int](1, time.Second)
	ctx := context.Background()
	q.Put(ctx, 1)
	done := make(chan bool)
	go func() {
		done <- q.Put(ctx, 2)
	}()
	time.Sleep(10 * time.Millisecond)
	if v, _ := q.Get(ctx); v != 1 {
		t.Fatalf("got %d, want 1", v)
	}
	if ok := <-done; !ok {
		t.Fatal("blocked Put failed")
	}
	if q.Drops() != 0 {
		t.Fatalf("Drops = %d, want 0 (consumer freed a slot in time)", q.Drops())
	}
}

func TestQueueGetHonorsContext(t *testing.T) {
	q := NewQueue[int](1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, ok := q.Get(ctx); ok {
		t.Fatal("Get on empty queue with dead context succeeded")
	}
	// A dead context still drains pending items (shutdown flush).
	q.Put(context.Background(), 7)
	if v, ok := q.Get(ctx); !ok || v != 7 {
		t.Fatalf("drain with dead context = %d,%v want 7,true", v, ok)
	}
}

// SetCap racing concurrent shed-oldest overflow (run under -race): a
// reload flapping the capacity while producers overflow and a consumer
// drains must never lose an accepted item without counting it as a
// shed. The conservation law pinned here: every Put that returned true
// is either consumed or in Drops — resizes cannot silently discard.
func TestQueueResizeRacesShedOldest(t *testing.T) {
	const (
		producers   = 4
		perProducer = 2000
	)
	q := NewQueue[int](4, 0) // tiny cap + no blocking: constant shedding
	ctx := context.Background()

	var accepted, consumed atomic.Int64
	var wg sync.WaitGroup
	stopResize := make(chan struct{})
	resizerDone := make(chan struct{})

	// The resizer: flap the capacity through the shrink-below-depth and
	// grow-wakes-producers paths as fast as possible.
	go func() {
		defer close(resizerDone)
		caps := []int{1, 64, 2, 512, 8}
		for i := 0; ; i++ {
			select {
			case <-stopResize:
				return
			default:
			}
			q.SetCap(caps[i%len(caps)])
			q.SetBlock(time.Duration(i%2) * time.Millisecond)
		}
	}()

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if q.Put(ctx, p*perProducer+i) {
					accepted.Add(1)
				}
			}
		}(p)
	}

	// The consumer drains until every producer is done and the queue is
	// empty.
	prodDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(prodDone)
	}()
	defer func() {
		close(stopResize)
		<-resizerDone
	}()
	for {
		if v, ok := q.TryGet(); ok {
			_ = v
			consumed.Add(1)
			continue
		}
		select {
		case <-prodDone:
			// Producers finished; one final drain pass below.
		default:
			continue
		}
		if _, ok := q.TryGet(); ok {
			consumed.Add(1)
			continue
		}
		break
	}

	if got := accepted.Load(); got != producers*perProducer {
		// Background-context Puts can only return false on ctx end.
		t.Fatalf("accepted %d of %d Puts", got, producers*perProducer)
	}
	total := consumed.Load() + int64(q.Drops())
	if total != accepted.Load() {
		t.Fatalf("lost events without a shed: accepted %d, consumed %d + drops %d = %d",
			accepted.Load(), consumed.Load(), q.Drops(), total)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}
