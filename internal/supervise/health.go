package supervise

import (
	"encoding/json"
	"net/http"
	"time"
)

// StageStatus is one stage's externally visible state.
type StageStatus struct {
	Name     string    `json:"name"`
	State    string    `json:"state"`
	Critical bool      `json:"critical,omitempty"`
	Restarts uint64    `json:"restarts"`
	LastErr  string    `json:"last_error,omitempty"`
	Since    time.Time `json:"since"`
}

// ProbeStatus is one probe's contribution to the report.
type ProbeStatus struct {
	Name   string `json:"name"`
	State  string `json:"state"`
	Detail string `json:"detail,omitempty"`
}

// Report is the full health document served by /healthz.
type Report struct {
	State  string        `json:"state"`
	Stages []StageStatus `json:"stages"`
	Probes []ProbeStatus `json:"probes,omitempty"`
}

// healthOf maps one stage's state to its health contribution.
func healthOf(st *stage) HealthState {
	switch st.state {
	case StageBroken:
		if st.critical {
			return Unavailable
		}
		return Degraded
	case StageBackoff:
		return Degraded
	default:
		return Healthy
	}
}

// Health returns the aggregate health: the maximum severity over every
// stage and probe.
func (s *Supervisor) Health() HealthState {
	return s.report(false).health
}

// Report returns the full health document: aggregate state, per-stage
// status (state, restart count, last error, transition time), and
// per-probe status.
func (s *Supervisor) Report() Report {
	return s.report(true).rep
}

type reported struct {
	health HealthState
	rep    Report
}

func (s *Supervisor) report(full bool) reported {
	s.mu.Lock()
	h := Healthy
	var stages []StageStatus
	for _, st := range s.stages {
		if sh := healthOf(st); sh > h {
			h = sh
		}
		if full {
			ss := StageStatus{
				Name:     st.name,
				State:    st.state.String(),
				Critical: st.critical,
				Restarts: st.restarts,
				Since:    st.since,
			}
			if st.lastErr != nil {
				msg := st.lastErr.Error()
				// Panic errors carry a full stack; one line is enough for
				// a health document.
				for i := 0; i < len(msg); i++ {
					if msg[i] == '\n' {
						msg = msg[:i]
						break
					}
				}
				ss.LastErr = msg
			}
			stages = append(stages, ss)
		}
	}
	probes := s.probes
	s.mu.Unlock()

	// Probes run outside the lock: they may consult state that stage
	// bodies update, and a slow probe must not block stage transitions.
	var pss []ProbeStatus
	for _, pe := range probes {
		p := pe.fn()
		if p.State > h {
			h = p.State
		}
		if full {
			pss = append(pss, ProbeStatus{Name: pe.name, State: p.State.String(), Detail: p.Detail})
		}
	}
	out := reported{health: h}
	if full {
		out.rep = Report{State: h.String(), Stages: stages, Probes: pss}
	}
	return out
}

// HealthHandler serves the full report as JSON: 200 while healthy or
// degraded (the daemon is still answering), 503 when unavailable.
// Suitable for both /healthz and, with ready=true, a stricter /readyz
// that also refuses while degraded.
func (s *Supervisor) HealthHandler(ready bool) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		rep := s.Report()
		code := http.StatusOK
		if rep.State == Unavailable.String() || (ready && rep.State != Healthy.String()) {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	}
}
