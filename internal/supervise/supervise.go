// Package supervise runs a daemon's stages as a supervised goroutine
// tree: each stage executes under panic capture and is restarted with
// exponential backoff and jitter when it fails, a circuit breaker stops
// restarting a stage that fails too often in a window (flipping overall
// health instead of crash-looping), and the aggregate stage state plus
// caller-registered probes drive a three-level health state machine
// (healthy → degraded → unavailable) that HTTP health endpoints can
// serve directly.
//
// SEER's observer ran unattended on user laptops for months (paper
// §4.11); the results depend on the daemon never dying quietly. This
// package is how seerd earns that: a wedged or panicking stage degrades
// service and reports itself instead of taking the process down.
package supervise

import (
	"context"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"
)

// HealthState is the overall (or per-probe) health level. Ordering
// matters: higher values are worse, and the aggregate is the maximum
// over stages and probes.
type HealthState int

const (
	// Healthy means every stage is running and every probe is content.
	Healthy HealthState = iota
	// Degraded means the daemon is serving but impaired: a stage is
	// restarting or broken, a queue is backed up, checkpoints are
	// failing. Read paths should serve (possibly stale) answers.
	Degraded
	// Unavailable means a critical stage is broken; read paths should
	// refuse with 503.
	Unavailable
)

// String returns the lowercase wire name used in health JSON.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Unavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("HealthState(%d)", int(h))
	}
}

// StageState is one stage's lifecycle state.
type StageState int

const (
	// StageIdle is the state before Start.
	StageIdle StageState = iota
	// StageRunning means the stage function is executing.
	StageRunning
	// StageBackoff means the stage failed and is waiting to restart.
	StageBackoff
	// StageBroken means the circuit breaker tripped: the stage failed
	// BreakAfter times within Window and is no longer being restarted
	// (until ResetAfter elapses, when configured).
	StageBroken
	// StageStopped means the stage completed: its function returned nil
	// on a non-restarting stage, or the supervisor context ended.
	StageStopped
)

// String returns the lowercase wire name used in health JSON.
func (s StageState) String() string {
	switch s {
	case StageIdle:
		return "idle"
	case StageRunning:
		return "running"
	case StageBackoff:
		return "backoff"
	case StageBroken:
		return "broken"
	case StageStopped:
		return "stopped"
	default:
		return fmt.Sprintf("StageState(%d)", int(s))
	}
}

// StageFunc is a stage body. It should run until ctx is cancelled (or
// its work is done) and return nil for a clean stop. A returned error
// or a panic counts as a failure and triggers restart-with-backoff.
type StageFunc func(ctx context.Context) error

// Backoff shapes the restart delay: Initial doubling by Factor up to
// Max, with ±Jitter fraction of randomization so a fleet of daemons
// does not restart in lockstep.
type Backoff struct {
	Initial time.Duration
	Max     time.Duration
	Factor  float64
	Jitter  float64
}

// withDefaults fills zero fields.
func (b Backoff) withDefaults() Backoff {
	if b.Initial <= 0 {
		b.Initial = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	} else if b.Jitter == 0 {
		b.Jitter = 0.25
	}
	return b
}

// Event describes a stage lifecycle transition, delivered to
// Config.OnEvent for logging.
type Event struct {
	Stage    string
	Kind     string // "error", "panic", "restart", "broken", "reset", "stopped"
	Err      error
	Restarts uint64
}

// Config tunes a Supervisor.
type Config struct {
	// Backoff is the restart delay policy; zero fields get defaults
	// (50ms initial, 5s max, ×2, ±25% jitter).
	Backoff Backoff
	// BreakAfter trips the circuit breaker after this many failures
	// within Window (default 8; negative disables the breaker).
	BreakAfter int
	// Window is the failure-counting window (default 1 minute). A stage
	// that stays up longer than Window also has its backoff reset.
	Window time.Duration
	// ResetAfter re-arms a broken stage after this long, giving it one
	// fresh run (half-open). Zero means broken stages stay broken.
	ResetAfter time.Duration
	// OnEvent, when non-nil, receives stage lifecycle events. It is
	// called from stage goroutines and must be safe for concurrent use.
	OnEvent func(Event)
}

func (c Config) withDefaults() Config {
	c.Backoff = c.Backoff.withDefaults()
	if c.BreakAfter == 0 {
		c.BreakAfter = 8
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	return c
}

// StageOption customizes one stage.
type StageOption func(*stage)

// Critical marks a stage whose breakage makes the whole daemon
// Unavailable rather than merely Degraded (e.g. the HTTP listener).
func Critical() StageOption { return func(st *stage) { st.critical = true } }

// NoRestart marks a run-to-completion stage: a nil return stops it
// cleanly instead of restarting it. Errors and panics still restart.
func NoRestart() StageOption { return func(st *stage) { st.restart = false } }

type stage struct {
	name     string
	fn       StageFunc
	critical bool
	restart  bool

	// Mutable state below is guarded by the supervisor mutex.
	state    StageState
	restarts uint64
	failures []time.Time
	lastErr  error
	since    time.Time
}

// Probe is a caller-registered health contribution (queue depth,
// checkpoint failures, staleness...).
type Probe struct {
	State  HealthState
	Detail string
}

type probeEntry struct {
	name string
	fn   func() Probe
}

// Supervisor owns a set of stages and derives overall health from
// them. Configure with Add/AddProbe, then Start once.
type Supervisor struct {
	cfg Config

	mu      sync.Mutex
	stages  []*stage
	probes  []probeEntry
	started bool
	ctx     context.Context
	wg      sync.WaitGroup
	rng     *rand.Rand
}

// New returns an empty Supervisor.
func New(cfg Config) *Supervisor {
	return &Supervisor{
		cfg: cfg.withDefaults(),
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Add registers a stage. It panics if called after Start — the tree is
// fixed at startup so health reports are stable.
func (s *Supervisor) Add(name string, fn StageFunc, opts ...StageOption) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		panic("supervise: Add after Start")
	}
	st := &stage{name: name, fn: fn, restart: true, state: StageIdle, since: time.Now()}
	for _, o := range opts {
		o(st)
	}
	s.stages = append(s.stages, st)
}

// AddProbe registers a health probe evaluated on every Health/Report
// call. fn must be safe for concurrent use and fast (it runs inside
// health requests); it must not take locks that stages hold across
// long operations.
func (s *Supervisor) AddProbe(name string, fn func() Probe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = append(s.probes, probeEntry{name: name, fn: fn})
}

// Start launches every registered stage. The stages stop when ctx is
// cancelled; Wait blocks until they have.
func (s *Supervisor) Start(ctx context.Context) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("supervise: Start twice")
	}
	s.started = true
	s.ctx = ctx
	stages := s.stages
	s.mu.Unlock()
	for _, st := range stages {
		s.wg.Add(1)
		go s.runStage(st)
	}
}

// Wait blocks until every stage has stopped (after the Start context
// is cancelled or every stage broke/completed).
func (s *Supervisor) Wait() { s.wg.Wait() }

// emit delivers a lifecycle event to the configured hook.
func (s *Supervisor) emit(st *stage, kind string, err error, restarts uint64) {
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(Event{Stage: st.name, Kind: kind, Err: err, Restarts: restarts})
	}
}

// setState transitions a stage under the lock.
func (s *Supervisor) setState(st *stage, to StageState, err error) {
	s.mu.Lock()
	st.state = to
	st.since = time.Now()
	if err != nil {
		st.lastErr = err
	}
	s.mu.Unlock()
}

// panicError marks a failure that was a recovered panic rather than a
// returned error.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", p.val, p.stack)
}

// invoke runs the stage body once, converting a panic into an error.
func (s *Supervisor) invoke(st *stage) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	return st.fn(s.ctx)
}

// sleep waits d or until the supervisor context ends; it reports false
// when the context ended first.
func (s *Supervisor) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// jittered randomizes d by ±Jitter.
func (s *Supervisor) jittered(d time.Duration) time.Duration {
	j := s.cfg.Backoff.Jitter
	if j <= 0 {
		return d
	}
	s.mu.Lock()
	f := 1 + j*(2*s.rng.Float64()-1)
	s.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// runStage is the per-stage restart loop: run, capture, back off,
// restart, break the circuit on sustained failure.
func (s *Supervisor) runStage(st *stage) {
	defer s.wg.Done()
	backoff := s.cfg.Backoff.Initial
	var restarts uint64
	for {
		s.setState(st, StageRunning, nil)
		began := time.Now()
		err := s.invoke(st)
		if s.ctx.Err() != nil {
			s.setState(st, StageStopped, err)
			s.emit(st, "stopped", err, restarts)
			return
		}
		if err == nil && !st.restart {
			s.setState(st, StageStopped, nil)
			s.emit(st, "stopped", nil, restarts)
			return
		}
		if err == nil {
			// A restarting stage should only return on context end; an
			// early nil return is itself a failure mode.
			err = fmt.Errorf("stage %s returned before shutdown", st.name)
		}
		kind := "error"
		if _, ok := err.(*panicError); ok {
			kind = "panic"
		}
		s.emit(st, kind, err, restarts)

		// A stage that stayed up longer than Window earned a fresh
		// backoff and failure count.
		if time.Since(began) > s.cfg.Window {
			backoff = s.cfg.Backoff.Initial
			s.mu.Lock()
			st.failures = st.failures[:0]
			s.mu.Unlock()
		}

		s.mu.Lock()
		now := time.Now()
		st.lastErr = err
		st.failures = append(st.failures, now)
		kept := st.failures[:0]
		for _, t := range st.failures {
			if now.Sub(t) <= s.cfg.Window {
				kept = append(kept, t)
			}
		}
		st.failures = kept
		tripped := s.cfg.BreakAfter > 0 && len(st.failures) >= s.cfg.BreakAfter
		s.mu.Unlock()

		if tripped {
			s.setState(st, StageBroken, err)
			s.emit(st, "broken", err, restarts)
			if s.cfg.ResetAfter <= 0 {
				return
			}
			if !s.sleep(s.cfg.ResetAfter) {
				s.setState(st, StageStopped, nil)
				return
			}
			s.mu.Lock()
			st.failures = st.failures[:0]
			s.mu.Unlock()
			backoff = s.cfg.Backoff.Initial
			s.emit(st, "reset", nil, restarts)
			continue
		}

		s.setState(st, StageBackoff, err)
		if !s.sleep(s.jittered(backoff)) {
			s.setState(st, StageStopped, nil)
			return
		}
		backoff = time.Duration(float64(backoff) * s.cfg.Backoff.Factor)
		if backoff > s.cfg.Backoff.Max {
			backoff = s.cfg.Backoff.Max
		}
		restarts++
		s.mu.Lock()
		st.restarts = restarts
		s.mu.Unlock()
		s.emit(st, "restart", nil, restarts)
	}
}

// Restarts returns the total restart count across all stages (an
// expvar-friendly aggregate).
func (s *Supervisor) Restarts() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, st := range s.stages {
		n += st.restarts
	}
	return n
}

// StageRestarts returns the restart count per stage name, the
// per-series breakdown behind the seer_stage_restarts_total metric.
func (s *Supervisor) StageRestarts() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.stages))
	for _, st := range s.stages {
		out[st.name] = st.restarts
	}
	return out
}
