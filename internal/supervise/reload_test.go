package supervise

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestWatcherAppliesChanges(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seerd.conf")
	if err := os.WriteFile(path, []byte("queue 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var applied []string
	w := NewWatcher(path, time.Millisecond, func(data []byte) error {
		mu.Lock()
		applied = append(applied, string(data))
		mu.Unlock()
		return nil
	})
	w.MarkApplied([]byte("queue 100\n"))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Stage()(ctx) }()

	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(applied)
	}
	// Unchanged content is never re-applied.
	time.Sleep(20 * time.Millisecond)
	if count() != 0 {
		t.Fatalf("unchanged file applied %d times", count())
	}
	// A rewrite is picked up.
	if err := os.WriteFile(path, []byte("queue 200\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "first apply", func() bool { return count() == 1 })
	// The same content again is not re-applied.
	time.Sleep(20 * time.Millisecond)
	if count() != 1 {
		t.Fatalf("same content re-applied: %d", count())
	}
	// An atomic rename-style replace is picked up too.
	tmp := filepath.Join(dir, "seerd.conf.tmp")
	if err := os.WriteFile(tmp, []byte("queue 300\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "apply after rename", func() bool { return count() == 2 })
	mu.Lock()
	got := applied[1]
	mu.Unlock()
	if got != "queue 300\n" {
		t.Fatalf("applied %q", got)
	}
	cancel()
	<-done
}

func TestWatcherRejectionNotRetriedUntilChange(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seerd.conf")
	var calls atomic.Int64
	w := NewWatcher(path, time.Millisecond, func(data []byte) error {
		calls.Add(1)
		return fmt.Errorf("invalid")
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Stage()(ctx) }()

	// Missing file: nothing applied.
	time.Sleep(10 * time.Millisecond)
	if calls.Load() != 0 {
		t.Fatal("apply called with no file")
	}
	// A bad file is applied (and rejected) exactly once, not every poll.
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "rejection", func() bool { return calls.Load() == 1 })
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatalf("rejected content re-applied: %d", calls.Load())
	}
	// Kick forces a check but unchanged content still applies nothing.
	w.Kick()
	time.Sleep(10 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatalf("kick re-applied unchanged content: %d", calls.Load())
	}
	// New content is tried again.
	if err := os.WriteFile(path, []byte("garbage 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "second rejection", func() bool { return calls.Load() == 2 })
	cancel()
	<-done
}

func TestQueueSetCapGrowWakesBlockedProducer(t *testing.T) {
	q := NewQueue[int](1, time.Minute)
	if !q.Put(context.Background(), 1) {
		t.Fatal("first put failed")
	}
	done := make(chan bool, 1)
	go func() { done <- q.Put(context.Background(), 2) }()
	select {
	case <-done:
		t.Fatal("put returned while queue full")
	case <-time.After(20 * time.Millisecond):
	}
	q.SetCap(4)
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("put failed after grow")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("grow did not wake blocked producer")
	}
	if q.Len() != 2 || q.Cap() != 4 || q.Drops() != 0 {
		t.Fatalf("len=%d cap=%d drops=%d", q.Len(), q.Cap(), q.Drops())
	}
}

func TestQueueSetCapShrinkKeepsItems(t *testing.T) {
	q := NewQueue[int](8, 0)
	for i := 0; i < 6; i++ {
		q.Put(context.Background(), i)
	}
	q.SetCap(2)
	if q.Len() != 6 || q.Cap() != 2 {
		t.Fatalf("after shrink: len=%d cap=%d", q.Len(), q.Cap())
	}
	if q.FillPct() != 300 {
		t.Fatalf("FillPct = %d, want 300", q.FillPct())
	}
	// A Put while over-capacity sheds the oldest, keeping depth level.
	if !q.Put(context.Background(), 6) {
		t.Fatal("put failed")
	}
	if q.Len() != 6 || q.Drops() != 1 {
		t.Fatalf("after over-capacity put: len=%d drops=%d", q.Len(), q.Drops())
	}
	// FIFO order is preserved minus the shed head.
	want := []int{1, 2, 3, 4, 5, 6}
	for _, exp := range want {
		v, ok := q.TryGet()
		if !ok || v != exp {
			t.Fatalf("TryGet = %d,%v want %d", v, ok, exp)
		}
	}
}

func TestQueueResizeUnderConcurrency(t *testing.T) {
	q := NewQueue[int](64, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const total = 20000
	var consumed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			_, ok := q.Get(ctx)
			if !ok {
				return
			}
			consumed.Add(1)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			switch i % 4 {
			case 0:
				q.SetCap(16)
			case 1:
				q.SetCap(1024)
			case 2:
				q.SetCap(1)
			default:
				q.SetCap(256)
			}
			select {
			case <-ctx.Done():
				return
			default:
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for i := 0; i < total; i++ {
		if !q.Put(context.Background(), i) {
			t.Fatalf("put %d failed", i)
		}
	}
	// Every produced item was either consumed or shed; nothing vanished.
	waitCond(t, "drain", func() bool {
		return consumed.Load()+int64(q.Drops())+int64(q.Len()) >= total
	})
	cancel()
	wg.Wait()
	for {
		if _, ok := q.TryGet(); !ok {
			break
		}
		consumed.Add(1)
	}
	if got := consumed.Load() + int64(q.Drops()); got != total {
		t.Fatalf("consumed+shed = %d, want %d", got, total)
	}
}
