package cluster

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"github.com/fmg/seer/internal/simfs"
)

// randomSource builds a pseudo-random neighbor graph: file ids are
// sparse (multiples of 3 plus 1) so the dense interning is exercised,
// lists may repeat entries and may point at neighbor-only ids.
func randomSource(rng *rand.Rand, nFiles int) fakeSource {
	src := fakeSource{}
	for i := 0; i < nFiles; i++ {
		id := simfs.FileID(3*i + 1)
		n := rng.Intn(12)
		list := make([]simfs.FileID, 0, n)
		for j := 0; j < n; j++ {
			if rng.Intn(5) == 0 {
				// Neighbor-only id outside the file set.
				list = append(list, simfs.FileID(1000+rng.Intn(40)))
			} else {
				list = append(list, simfs.FileID(3*rng.Intn(nFiles)+1))
			}
			if rng.Intn(8) == 0 && len(list) > 0 {
				list = append(list, list[rng.Intn(len(list))]) // duplicate
			}
		}
		src[id] = list
	}
	return src
}

// TestParallelDeterminism is the property the sharded pair generation
// guarantees: for every worker count, BuildPairs and Build return
// byte-identical results — including the Adjust and ExtraPairs
// branches, which are the paths where per-worker state could leak.
func TestParallelDeterminism(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := randomSource(rng, 30+int(seed)*17)
		opts := Options{Workers: 1}
		if seed%2 == 0 {
			opts.Adjust = func(a, b simfs.FileID) float64 {
				return float64((int(a)+int(b))%3) - 1
			}
		}
		if seed%3 == 0 {
			opts.ExtraPairs = []Pair{
				{From: 1, To: 4, Shared: 2.5},
				{From: 9999, To: 1, Shared: 10}, // unknown endpoint
			}
		}
		wantPairs := BuildPairs(src, opts)
		wantRes := Build(src, opts, kn, kf)
		for _, workers := range []int{0, 2, 3, 8} {
			o := opts
			o.Workers = workers
			if got := BuildPairs(src, o); !reflect.DeepEqual(got, wantPairs) {
				t.Fatalf("seed %d workers %d: BuildPairs differs from serial", seed, workers)
			}
			got := Build(src, o, kn, kf)
			if !reflect.DeepEqual(got.Clusters, wantRes.Clusters) {
				t.Fatalf("seed %d workers %d: Build clusters differ from serial", seed, workers)
			}
		}
		// The split pipeline must agree with the composed public API.
		viaRun := Run(src.Files(), wantPairs, kn, kf)
		if !reflect.DeepEqual(viaRun.Clusters, wantRes.Clusters) {
			t.Fatalf("seed %d: Build != Run(Files, BuildPairs)", seed)
		}
	}
}

// TestSharedSortedMatchesCounter pins the two shared-count
// implementations (merge for ExtraPairs, stamped counter for the bulk
// path) to the same semantics: multiplicity from the first list,
// distinct membership in the second.
func TestSharedSortedMatchesCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 20
		mk := func() []int32 {
			l := make([]int32, rng.Intn(10))
			for i := range l {
				l[i] = int32(rng.Intn(n))
			}
			return l
		}
		a, b := mk(), mk()
		sortedA := append([]int32(nil), a...)
		sortedB := append([]int32(nil), b...)
		slices.Sort(sortedA)
		slices.Sort(sortedB)
		c := newCounter(n)
		c.mark(a)
		if got, want := c.countIn(sortedB), sharedSorted(sortedA, sortedB); got != want {
			t.Fatalf("a=%v b=%v: counter %g, merge %g", a, b, got, want)
		}
	}
}
