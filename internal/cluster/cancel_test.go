package cluster

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fmg/seer/internal/simfs"
)

// slowSource is a synthetic neighbor source big enough that a
// clustering takes real time, with an Adjust hook the tests use to
// slow workers down deterministically.
type slowSource struct {
	files [][]simfs.FileID
	ids   []simfs.FileID
}

func newSlowSource(n, neighbors int) *slowSource {
	s := &slowSource{}
	s.ids = make([]simfs.FileID, n)
	s.files = make([][]simfs.FileID, n)
	for i := 0; i < n; i++ {
		s.ids[i] = simfs.FileID(i + 1)
	}
	for i := 0; i < n; i++ {
		nb := make([]simfs.FileID, 0, neighbors)
		for k := 1; k <= neighbors; k++ {
			nb = append(nb, s.ids[(i+k)%n])
		}
		s.files[i] = nb
	}
	return s
}

func (s *slowSource) Files() []simfs.FileID { return s.ids }
func (s *slowSource) Neighbors(id simfs.FileID) []simfs.FileID {
	return s.files[int(id)-1]
}

func TestBuildCanceledReturnsNil(t *testing.T) {
	src := newSlowSource(2000, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead before the build starts
	res := Build(src, Options{Ctx: ctx, Workers: 4}, 3, 2)
	if res != nil {
		t.Fatal("Build with dead context returned a result")
	}
	if p := BuildPairs(src, Options{Ctx: ctx, Workers: 4}); p != nil {
		t.Fatal("BuildPairs with dead context returned pairs")
	}
}

func TestBuildNilContextRunsToCompletion(t *testing.T) {
	src := newSlowSource(200, 8)
	want := Build(src, Options{Workers: 1}, 3, 2)
	got := Build(src, Options{Ctx: context.Background(), Workers: 4}, 3, 2)
	if got == nil || len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("context-carrying build diverged: got %v clusters", got)
	}
}

// TestCancelMidBuildStopsWorkers cancels while the worker pool is
// mid-flight (a slow Adjust makes each pair expensive) and asserts the
// build aborts promptly and no worker goroutines leak.
func TestCancelMidBuildStopsWorkers(t *testing.T) {
	src := newSlowSource(1500, 8)
	ctx, cancel := context.WithCancel(context.Background())
	var adjusts atomic.Int64
	opts := Options{
		Ctx:     ctx,
		Workers: 4,
		Adjust: func(a, b simfs.FileID) float64 {
			if adjusts.Add(1) == 50 {
				cancel() // cancel from inside the pool, mid-build
			}
			time.Sleep(5 * time.Microsecond)
			return 0
		},
	}
	before := runtime.NumGoroutine()
	start := time.Now()
	if res := Build(src, opts, 3, 2); res != nil {
		t.Fatal("canceled build returned a result")
	}
	elapsed := time.Since(start)
	// 1500 files × 8 pairs of sleepy Adjust ≈ seconds serial;
	// cancellation after ~50 pairs must come back far sooner.
	if elapsed > 3*time.Second {
		t.Fatalf("canceled build took %v", elapsed)
	}
	// Workers are joined before Build returns: the goroutine count
	// settles back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

func TestDeadlineExpiredBuild(t *testing.T) {
	src := newSlowSource(3000, 16)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	opts := Options{
		Ctx:     ctx,
		Workers: 2,
		Adjust: func(a, b simfs.FileID) float64 {
			time.Sleep(5 * time.Microsecond)
			return 0
		},
	}
	if res := Build(src, opts, 3, 2); res != nil {
		t.Fatal("deadline-expired build returned a result")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}
}
