// Incremental maintenance of a cluster Result (ISSUE 7). A full Build
// over n files pays O(n·k²) even when a single neighbor list moved;
// Patch instead re-scores only the directed pairs incident to the
// changed files, replays phase 1 locally where a strong edge vanished,
// and splices the re-materialized clusters into the sorted cluster
// array. Steady-state plan updates become O(changed edges), with the
// full rebuild kept as the fallback for large churn.
package cluster

import (
	"slices"
	"sort"
	"time"

	"github.com/fmg/seer/internal/simfs"
)

// MembershipSource extends NeighborSource with a presence test. The
// incremental path needs it to distinguish "the file left Files()"
// (its pairs die) from "the file's list emptied" (the file remains a
// singleton); a full build sees the difference implicitly by walking
// Files(), which a patch never does.
type MembershipSource interface {
	NeighborSource
	Has(id simfs.FileID) bool
}

// incExtra is one investigator-reported pair over dense indices with
// its base (relation-strength) share.
type incExtra struct {
	from, to int32
	base     float64
}

// incState is the machinery Build retains behind a Result when
// Options.Incremental is set: enough of the edge structure to re-score
// any pair, plus the live union-find and per-root bookkeeping, so Patch
// can edit the Result without touching unchanged components.
//
// Invariants between patches, for every dense id v:
//   - sorted[v] is v's current neighbor list, ascending, multiplicity
//     kept (sharedSorted over two of these matches the counter used by
//     the full build exactly);
//   - rev[v] holds the distinct ids whose neighbor list names v;
//   - v is "alive" iff present[v] (v ∈ src.Files()), rev[v] is
//     non-empty, or an investigator relation pins it — exactly the ids
//     a fresh build would intern. Dead ids are singleton roots with nil
//     content and materialize nothing;
//   - every union-find root r has a non-nil members[r] bucket, and
//     content[r] is its materialized cluster (nil while invalidated or
//     when r is a dead singleton);
//   - refs[i] counts the roots whose member set equals
//     Result.Clusters[i].Members (mutual overlap makes twins).
type incState struct {
	kn, kf  float64
	present []bool
	sorted  [][]int32
	rev     [][]int32
	isExtra []bool
	extras  []incExtra
	// extraByV indexes extras by endpoint (dense id → extras indices).
	extraByV map[int32][]int32
	uf       *unionFind
	members  [][]int32
	content  [][]simfs.FileID
	refs     []int32
	// vmark/vgen implement O(1)-reset membership marks over dense ids.
	vmark []uint32
	vgen  uint32
}

// newIncState snapshots the interned edge structure. It runs after
// buildDense so ExtraPairs endpoints are already interned; runDense
// fills uf, members, content, and refs.
func newIncState(d *denseLists, extraPairs []Pair, kn, kf float64) *incState {
	n := d.in.Len()
	inc := &incState{
		kn:       kn,
		kf:       kf,
		present:  make([]bool, n),
		sorted:   make([][]int32, n),
		rev:      make([][]int32, n),
		isExtra:  make([]bool, n),
		extraByV: make(map[int32][]int32),
		content:  make([][]simfs.FileID, n),
		vmark:    make([]uint32, n),
	}
	for i := range d.files {
		inc.present[i] = true
		inc.sorted[i] = d.sorted[i]
	}
	// Reverse index over distinct neighbors: count, carve spans of one
	// backing array, fill.
	cnt := make([]int32, n)
	for i := range d.files {
		var last int32 = -1
		for _, b := range d.sorted[i] {
			if b == last {
				continue
			}
			last = b
			cnt[b]++
		}
	}
	total := 0
	for _, c := range cnt {
		total += int(c)
	}
	backing := make([]int32, total)
	pos := 0
	for v := 0; v < n; v++ {
		c := int(cnt[v])
		inc.rev[v] = backing[pos : pos : pos+c]
		pos += c
	}
	for i := range d.files {
		var last int32 = -1
		for _, b := range d.sorted[i] {
			if b == last {
				continue
			}
			last = b
			inc.rev[b] = append(inc.rev[b], int32(i))
		}
	}
	for _, ep := range extraPairs {
		fi := d.in.Intern(ep.From)
		ti := d.in.Intern(ep.To)
		ei := int32(len(inc.extras))
		inc.extras = append(inc.extras, incExtra{from: fi, to: ti, base: ep.Shared})
		inc.isExtra[fi] = true
		inc.isExtra[ti] = true
		inc.extraByV[fi] = append(inc.extraByV[fi], ei)
		if ti != fi {
			inc.extraByV[ti] = append(inc.extraByV[ti], ei)
		}
	}
	return inc
}

// grow extends every per-id array to n ids. New ids start absent, with
// empty lists, as their own singleton roots.
func (inc *incState) grow(n int) {
	if inc.uf != nil {
		inc.uf.grow(n)
	}
	for v := len(inc.present); v < n; v++ {
		inc.present = append(inc.present, false)
		inc.sorted = append(inc.sorted, nil)
		inc.rev = append(inc.rev, nil)
		inc.isExtra = append(inc.isExtra, false)
		inc.content = append(inc.content, nil)
		inc.vmark = append(inc.vmark, 0)
		inc.members = append(inc.members, []int32{int32(v)})
	}
}

// Patch applies the neighbor-list changes of the given files to prev in
// place and reports whether it succeeded; on false the caller must
// discard prev and run a full Build (prev may have been partially
// mutated). prev must come from Build with Options.Incremental, src
// must implement MembershipSource, and kn/kf and the Adjust/ExtraPairs
// configuration must be unchanged since that build — callers invalidate
// wholesale (full rebuild) when relations or adjustment inputs move, so
// Patch only ever sees neighbor-list and presence churn.
//
// The patched Result is byte-identical to what a full Build over the
// same source would produce, member lists, cluster order, and IDs
// included. Cancellation via opts.Ctx is honored only on entry: a
// patch is microseconds of straight-line work, so once it starts it
// runs to completion rather than risking a half-mutated Result.
func Patch(prev *Result, src NeighborSource, changed []simfs.FileID, opts Options, kn, kf float64) bool {
	if prev == nil || prev.inc == nil || prev.in == nil {
		return false
	}
	inc := prev.inc
	if inc.kn != kn || inc.kf != kf {
		return false
	}
	ms, ok := src.(MembershipSource)
	if !ok {
		return false
	}
	if canceled(doneOf(opts.Ctx)) {
		return false
	}
	if len(changed) == 0 {
		return true
	}
	start := time.Now()
	in := prev.in
	adj := opts.Adjust
	// score mirrors the full build's arithmetic exactly, float operation
	// order included, so classification cannot drift between the paths.
	score := func(a, b int32) float64 {
		s := sharedSorted(inc.sorted[a], inc.sorted[b])
		if adj != nil {
			s += adj(in.ID(a), in.ID(b))
		}
		return s
	}
	exScore := func(e incExtra) float64 {
		s := e.base
		s += sharedSorted(inc.sorted[e.from], inc.sorted[e.to])
		if adj != nil {
			s += adj(in.ID(e.from), in.ID(e.to))
		}
		return s
	}
	alive := func(v int32) bool {
		return inc.present[v] || len(inc.rev[v]) > 0 || inc.isExtra[v]
	}

	// R: the distinct changed ids, interned.
	rlist := make([]int32, 0, len(changed))
	inR := make(map[int32]bool, len(changed))
	addR := func(v int32) {
		if !inR[v] {
			inR[v] = true
			rlist = append(rlist, v)
		}
	}
	for _, f := range changed {
		addR(in.Intern(f))
	}
	inc.grow(in.Len())
	// A forgotten file is scrubbed from every list that names it — even
	// a neighbor-only id that never had a list of its own — which shifts
	// the shared counts of pairs AMONG those listing files: second-order
	// damage the journal does not record. Pull the reverse neighborhood
	// of every absent changed id into R so those lists are re-read and
	// their pairs re-scored. (Listing files have lists, hence presence,
	// so the expansion never cascades; at worst a spuriously journaled
	// absent id re-reads lists that turn out unchanged.)
	for i := 0; i < len(rlist); i++ {
		v := rlist[i]
		if !ms.Has(in.ID(v)) && len(inc.rev[v]) > 0 {
			for _, x := range inc.rev[v] {
				addR(x)
			}
		}
	}
	if opts.MaxPatch > 0 && len(rlist) > opts.MaxPatch {
		return false
	}

	// Old-side scores, all taken before any list swap: the out-pairs of
	// R (keyed for matching against the new side), the in-pairs (x, v)
	// from unchanged files x whose lists name a changed id (their pair
	// set cannot change, only its scores), and investigator extras
	// incident to R.
	oldOut := make(map[[2]int32]float64)
	for _, v := range rlist {
		var last int32 = -1
		for _, b := range inc.sorted[v] {
			if b == last {
				continue
			}
			last = b
			oldOut[[2]int32{v, b}] = score(v, b)
		}
	}
	type inPair struct {
		x, v int32
		sOld float64
	}
	var inPairs []inPair
	for _, v := range rlist {
		for _, x := range inc.rev[v] {
			if inR[x] {
				continue
			}
			inPairs = append(inPairs, inPair{x: x, v: v, sOld: score(x, v)})
		}
	}
	type exPair struct {
		ei   int32
		sOld float64
	}
	var exPairs []exPair
	seenEx := make(map[int32]bool)
	for _, v := range rlist {
		for _, ei := range inc.extraByV[v] {
			if seenEx[ei] {
				continue
			}
			seenEx[ei] = true
			exPairs = append(exPairs, exPair{ei: ei, sOld: exScore(inc.extras[ei])})
		}
	}

	// Swap in the new lists, maintaining the reverse index. Alive status
	// is snapshotted lazily the first time an id is touched and
	// re-checked after the swap; a flip either way re-seeds the id's
	// component (a fresh build would intern a newly alive id and skip a
	// dead one entirely).
	oldAlive := make(map[int32]bool)
	snap := func(v int32) {
		if _, ok := oldAlive[v]; !ok {
			oldAlive[v] = alive(v)
		}
	}
	revRemove := func(b, v int32) {
		rv := inc.rev[b]
		for i, x := range rv {
			if x == v {
				rv[i] = rv[len(rv)-1]
				inc.rev[b] = rv[:len(rv)-1]
				return
			}
		}
	}
	var buf []simfs.FileID
	as, isAppend := src.(AppendSource)
	for _, v := range rlist {
		snap(v)
		id := in.ID(v)
		has := ms.Has(id)
		var nl []int32
		if has {
			buf = buf[:0]
			if isAppend {
				buf = as.AppendNeighbors(id, buf)
			} else {
				buf = append(buf, src.Neighbors(id)...)
			}
			if len(buf) > 0 {
				nl = make([]int32, len(buf))
				for i, nb := range buf {
					nl[i] = in.Intern(nb)
				}
				inc.grow(in.Len())
				slices.Sort(nl)
			}
		}
		// Linear diff of the distinct ids in old vs new list.
		old := inc.sorted[v]
		i, j := 0, 0
		for i < len(old) || j < len(nl) {
			switch {
			case j >= len(nl) || (i < len(old) && old[i] < nl[j]):
				b := old[i]
				for i < len(old) && old[i] == b {
					i++
				}
				snap(b)
				revRemove(b, v)
			case i >= len(old) || nl[j] < old[i]:
				b := nl[j]
				for j < len(nl) && nl[j] == b {
					j++
				}
				snap(b)
				inc.rev[b] = append(inc.rev[b], v)
			default:
				b := old[i]
				for i < len(old) && old[i] == b {
					i++
				}
				for j < len(nl) && nl[j] == b {
					j++
				}
			}
		}
		inc.sorted[v] = nl
		inc.present[v] = has
	}

	// New-side scores and classification. Union-find queries here run
	// against the pre-patch forest: old roots identify the components to
	// re-run and the contents to retire.
	const (
		clsNone = iota
		clsWeak
		clsStrong
	)
	classify := func(s float64) int {
		switch {
		case s >= kn:
			return clsStrong
		case s >= kf:
			return clsWeak
		default:
			return clsNone
		}
	}
	var dirtyRoots []int32
	dirtySet := make(map[int32]bool)
	addDirty := func(v int32) {
		r := inc.uf.find(v)
		if !dirtySet[r] {
			dirtySet[r] = true
			dirtyRoots = append(dirtyRoots, r)
		}
	}
	// removed accumulates every cluster content retired this patch;
	// additions are collected during re-materialization. The two edit
	// lists meet in the refcounted splice at the end.
	var removed [][]simfs.FileID
	oSet := make(map[int32]bool)
	invalidate := func(v int32) {
		r := inc.uf.find(v)
		if oSet[r] {
			return
		}
		oSet[r] = true
		if inc.content[r] != nil {
			removed = append(removed, inc.content[r])
			inc.content[r] = nil
		}
	}
	var eplus [][2]int32
	var seeds []int32
	handle := func(from, to int32, oldP, newP bool, sOld, sNew float64) {
		co, cn := clsNone, clsNone
		if oldP {
			co = classify(sOld)
		}
		if newP {
			cn = classify(sNew)
		}
		if co == cn {
			return
		}
		if co == clsStrong {
			// A strong edge vanished: the old component may split, so it
			// is re-run from scratch (both endpoints share the old root).
			addDirty(from)
		}
		if cn == clsStrong {
			eplus = append(eplus, [2]int32{from, to})
			seeds = append(seeds, from, to)
		}
		if co == clsWeak || cn == clsWeak {
			// A cross-inserted (overlap) membership appeared or vanished:
			// both endpoints' clusters change content with no union-find
			// motion.
			invalidate(from)
			invalidate(to)
			seeds = append(seeds, from, to)
		}
	}
	for _, v := range rlist {
		var last int32 = -1
		for _, b := range inc.sorted[v] {
			if b == last {
				continue
			}
			last = b
			key := [2]int32{v, b}
			sOld, oldP := oldOut[key]
			delete(oldOut, key)
			handle(v, b, oldP, true, sOld, score(v, b))
		}
	}
	for key, sOld := range oldOut {
		// Old out-pairs with no new counterpart: the pair is gone.
		handle(key[0], key[1], true, false, sOld, 0)
	}
	for _, p := range inPairs {
		handle(p.x, p.v, true, true, p.sOld, score(p.x, p.v))
	}
	for _, p := range exPairs {
		e := inc.extras[p.ei]
		handle(e.from, e.to, true, true, p.sOld, exScore(e))
	}
	for v, was := range oldAlive {
		if alive(v) == was {
			continue
		}
		invalidate(v)
		addDirty(v)
		seeds = append(seeds, v)
	}

	// Localized re-run: dissolve the dirty components into singletons
	// and replay their current strong edges — a full build's phase 1
	// restricted to these vertices. Edges leaving a dirty component are
	// either newly strong (they sit in eplus) or not strong at all, so
	// the replay never needs to look outside V.
	var V []int32
	for _, r := range dirtyRoots {
		invalidate(r)
		V = append(V, inc.members[r]...)
		inc.members[r] = nil
	}
	seeds = append(seeds, V...)
	inc.vgen++
	vg := inc.vgen
	for _, v := range V {
		inc.vmark[v] = vg
	}
	singles := make([]int32, len(V))
	for i, v := range V {
		inc.uf.parent[v] = v
		inc.uf.size[v] = 1
		singles[i] = v
		inc.members[v] = singles[i : i+1 : i+1]
	}
	punion := func(a, b int32) {
		ra, rb := inc.uf.find(a), inc.uf.find(b)
		if ra == rb {
			return
		}
		if inc.uf.size[ra] < inc.uf.size[rb] {
			ra, rb = rb, ra
		}
		// Merging retires both sides' contents; the survivor
		// re-materializes under the winning root.
		for _, r := range [2]int32{ra, rb} {
			if inc.content[r] != nil {
				removed = append(removed, inc.content[r])
				inc.content[r] = nil
			}
		}
		inc.uf.parent[rb] = ra
		inc.uf.size[ra] += inc.uf.size[rb]
		inc.members[ra] = append(inc.members[ra], inc.members[rb]...)
		inc.members[rb] = nil
	}
	for _, v := range V {
		var last int32 = -1
		for _, b := range inc.sorted[v] {
			if b == last {
				continue
			}
			last = b
			if inc.vmark[b] != vg {
				continue
			}
			if score(v, b) >= kn {
				punion(v, b)
			}
		}
		for _, ei := range inc.extraByV[v] {
			e := inc.extras[ei]
			o := e.from
			if o == v {
				o = e.to
			}
			if inc.vmark[o] != vg {
				continue
			}
			if exScore(e) >= kn {
				punion(e.from, e.to)
			}
		}
	}
	for _, e := range eplus {
		punion(e[0], e[1])
	}

	// Re-materialize every component a seed landed in. A component whose
	// content survived all invalidations is untouched; the rest rebuild
	// their member list (core members plus weak overlaps from out-pairs,
	// in-pairs, and extras) exactly as the full build's phase 2 would.
	inc.vgen++
	ag := inc.vgen
	var ar []int32
	for _, s := range seeds {
		r := inc.uf.find(s)
		if inc.vmark[r] != ag {
			inc.vmark[r] = ag
			ar = append(ar, r)
		}
	}
	var added [][]simfs.FileID
	for _, r := range ar {
		if inc.content[r] != nil {
			continue
		}
		mem := inc.members[r]
		if len(mem) == 0 {
			continue
		}
		if len(mem) == 1 && !alive(mem[0]) {
			// Dead ids are not interned by a fresh build; no cluster.
			continue
		}
		out := make([]simfs.FileID, 0, len(mem)+4)
		for _, v := range mem {
			out = append(out, in.ID(v))
		}
		for _, v := range mem {
			var last int32 = -1
			for _, b := range inc.sorted[v] {
				if b == last {
					continue
				}
				last = b
				if inc.uf.find(b) == r {
					continue
				}
				if s := score(v, b); s >= kf && s < kn {
					out = append(out, in.ID(b))
				}
			}
			for _, x := range inc.rev[v] {
				if inc.uf.find(x) == r {
					continue
				}
				if s := score(x, v); s >= kf && s < kn {
					out = append(out, in.ID(x))
				}
			}
			for _, ei := range inc.extraByV[v] {
				e := inc.extras[ei]
				if inc.uf.find(e.from) == inc.uf.find(e.to) {
					continue
				}
				if s := exScore(e); s >= kf && s < kn {
					if e.from == v {
						out = append(out, in.ID(e.to))
					} else {
						out = append(out, in.ID(e.from))
					}
				}
			}
		}
		slices.Sort(out)
		out = slices.Compact(out)
		inc.content[r] = out
		added = append(added, out)
	}

	// Splice the edits into the sorted cluster array. Refcounts absorb
	// twin-root churn; only a net structural change (a cluster appearing
	// or disappearing) pays the O(clusters) rebuild and ID renumbering.
	finish := func() bool {
		if opts.OnPhase != nil {
			opts.OnPhase("patch", time.Since(start))
		}
		return true
	}
	if len(removed) == 0 && len(added) == 0 {
		return finish()
	}
	search := func(members []simfs.FileID) int {
		lo, hi := 0, len(prev.Clusters)
		for lo < hi {
			mid := (lo + hi) / 2
			if lessMembers(prev.Clusters[mid].Members, members) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(prev.Clusters) && slices.Equal(prev.Clusters[lo].Members, members) {
			return lo
		}
		return -1
	}
	dels := 0
	for _, m := range removed {
		i := search(m)
		if i < 0 || inc.refs[i] <= 0 {
			return false
		}
		inc.refs[i]--
		if inc.refs[i] == 0 {
			dels++
		}
	}
	var inserts [][]simfs.FileID
	for _, m := range added {
		if i := search(m); i >= 0 {
			inc.refs[i]++
			if inc.refs[i] == 1 {
				dels--
			}
		} else {
			inserts = append(inserts, m)
		}
	}
	if dels == 0 && len(inserts) == 0 {
		return finish()
	}
	sort.Slice(inserts, func(i, j int) bool {
		return lessMembers(inserts[i], inserts[j])
	})
	newClusters := make([]Cluster, 0, len(prev.Clusters)+len(inserts)-dels)
	newRefs := make([]int32, 0, len(prev.Clusters)+len(inserts)-dels)
	oi, ii := 0, 0
	for oi < len(prev.Clusters) || ii < len(inserts) {
		takeIns := false
		switch {
		case oi >= len(prev.Clusters):
			takeIns = true
		case ii >= len(inserts):
		default:
			takeIns = lessMembers(inserts[ii], prev.Clusters[oi].Members)
		}
		if takeIns {
			m := inserts[ii]
			var rc int32
			for ii < len(inserts) && slices.Equal(inserts[ii], m) {
				rc++
				ii++
			}
			newClusters = append(newClusters, Cluster{ID: len(newClusters), Members: m})
			newRefs = append(newRefs, rc)
		} else {
			if inc.refs[oi] == 0 {
				oi++
				continue
			}
			c := prev.Clusters[oi]
			c.ID = len(newClusters)
			newClusters = append(newClusters, c)
			newRefs = append(newRefs, inc.refs[oi])
			oi++
		}
	}
	prev.Clusters = newClusters
	inc.refs = newRefs
	prev.byIdxStale = true
	return finish()
}
