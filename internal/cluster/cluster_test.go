package cluster

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/fmg/seer/internal/simfs"
)

const (
	fA simfs.FileID = iota + 1
	fB
	fC
	fD
	fE
	fF
	fG
)

const (
	kn = 4.0
	kf = 2.0
)

func members(c Cluster) []simfs.FileID { return c.Members }

func findCluster(t *testing.T, res *Result, want []simfs.FileID) *Cluster {
	t.Helper()
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range res.Clusters {
		if reflect.DeepEqual(res.Clusters[i].Members, want) {
			return &res.Clusters[i]
		}
	}
	t.Fatalf("no cluster with members %v in %v", want, res.Clusters)
	return nil
}

// TestPaperExample reproduces the worked example of paper §3.3.2
// (Tables 1 and 2): seven files whose pairwise shared-neighbor counts
// must produce the final clusters {A,B,C,D} and {C,D,E,F,G}.
func TestPaperExample(t *testing.T) {
	files := []simfs.FileID{fA, fB, fC, fD, fE, fF, fG}
	pairs := []Pair{
		{From: fA, To: fB, Shared: kn},
		{From: fA, To: fC, Shared: kf},
		{From: fB, To: fC, Shared: kn},
		{From: fC, To: fD, Shared: kf},
		{From: fD, To: fE, Shared: kn},
		{From: fF, To: fG, Shared: kn},
		{From: fG, To: fD, Shared: kn},
	}
	res := Run(files, pairs, kn, kf)
	if len(res.Clusters) != 2 {
		t.Fatalf("cluster count = %d, want 2: %v", len(res.Clusters), res.Clusters)
	}
	findCluster(t, res, []simfs.FileID{fA, fB, fC, fD})
	findCluster(t, res, []simfs.FileID{fC, fD, fE, fF, fG})
	// C and D are in both clusters — the overlapping membership that
	// distinguishes SEER's variant from plain Jarvis–Patrick.
	if got := res.ClustersOf(fC); len(got) != 2 {
		t.Errorf("C in %d clusters, want 2", len(got))
	}
	if got := res.ClustersOf(fD); len(got) != 2 {
		t.Errorf("D in %d clusters, want 2", len(got))
	}
	if got := res.ClustersOf(fA); len(got) != 1 {
		t.Errorf("A in %d clusters, want 1", len(got))
	}
}

// Transitive combination: A–B at kn and B–C at kn puts A and C in one
// cluster even with no direct relationship (paper: "This step also
// clusters A with C").
func TestTransitiveCombination(t *testing.T) {
	files := []simfs.FileID{fA, fB, fC}
	pairs := []Pair{
		{From: fA, To: fB, Shared: kn},
		{From: fB, To: fC, Shared: kn},
	}
	res := Run(files, pairs, kn, kf)
	if len(res.Clusters) != 1 || res.Clusters[0].Size() != 3 {
		t.Fatalf("clusters = %v, want one 3-file cluster", res.Clusters)
	}
}

func TestBelowKfNoAction(t *testing.T) {
	files := []simfs.FileID{fA, fB}
	pairs := []Pair{{From: fA, To: fB, Shared: kf - 1}}
	res := Run(files, pairs, kn, kf)
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v, want two singletons", res.Clusters)
	}
}

func TestSingletonsForUnrelatedFiles(t *testing.T) {
	files := []simfs.FileID{fA, fB, fC}
	res := Run(files, nil, kn, kf)
	if len(res.Clusters) != 3 {
		t.Fatalf("clusters = %d, want 3 singletons", len(res.Clusters))
	}
	for _, c := range res.Clusters {
		if c.Size() != 1 {
			t.Errorf("cluster %v not singleton", c)
		}
	}
}

// Overlap between files already in the same cluster is a no-op (the
// paper's pair {A,C}).
func TestOverlapWithinClusterIsNoop(t *testing.T) {
	files := []simfs.FileID{fA, fB}
	pairs := []Pair{
		{From: fA, To: fB, Shared: kn},
		{From: fB, To: fA, Shared: kf},
	}
	res := Run(files, pairs, kn, kf)
	if len(res.Clusters) != 1 || res.Clusters[0].Size() != 2 {
		t.Fatalf("clusters = %v", res.Clusters)
	}
}

func TestResultDeterministic(t *testing.T) {
	files := []simfs.FileID{fG, fC, fA, fE, fB, fD, fF}
	pairs := []Pair{
		{From: fF, To: fG, Shared: kn},
		{From: fA, To: fB, Shared: kn},
		{From: fC, To: fD, Shared: kf},
	}
	r1 := Run(files, pairs, kn, kf)
	r2 := Run(files, pairs, kn, kf)
	if !reflect.DeepEqual(r1.Clusters, r2.Clusters) {
		t.Error("two runs differ")
	}
	for i, c := range r1.Clusters {
		if c.ID != i {
			t.Errorf("cluster %d has ID %d", i, c.ID)
		}
		if !sort.SliceIsSorted(c.Members, func(a, b int) bool { return c.Members[a] < c.Members[b] }) {
			t.Errorf("cluster %d members unsorted: %v", i, c.Members)
		}
	}
}

// fakeSource provides hand-built neighbor lists.
type fakeSource map[simfs.FileID][]simfs.FileID

func (s fakeSource) Files() []simfs.FileID {
	out := make([]simfs.FileID, 0, len(s))
	for f := range s {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s fakeSource) Neighbors(id simfs.FileID) []simfs.FileID { return s[id] }

func TestBuildPairsSharedCounts(t *testing.T) {
	// A and B share neighbors {10, 11, 12}; A lists B.
	src := fakeSource{
		fA: {fB, 10, 11, 12},
		fB: {10, 11, 12, 13},
	}
	pairs := BuildPairs(src, Options{})
	var ab *Pair
	for i := range pairs {
		if pairs[i].From == fA && pairs[i].To == fB {
			ab = &pairs[i]
		}
	}
	if ab == nil {
		t.Fatal("pair A→B missing")
	}
	if ab.Shared != 3 {
		t.Errorf("shared(A,B) = %g, want 3", ab.Shared)
	}
}

func TestBuildPairsAdjustment(t *testing.T) {
	src := fakeSource{
		fA: {fB, 10, 11},
		fB: {10, 11},
	}
	opts := Options{Adjust: func(a, b simfs.FileID) float64 { return -1.5 }}
	pairs := BuildPairs(src, opts)
	for _, p := range pairs {
		if p.From == fA && p.To == fB && p.Shared != 0.5 {
			t.Errorf("adjusted shared = %g, want 0.5", p.Shared)
		}
	}
}

// An investigator can force clustering of files the distance table has
// never related (paper §3.3.3).
func TestExtraPairsForceClustering(t *testing.T) {
	src := fakeSource{
		fA: {},
		fB: {},
	}
	opts := Options{ExtraPairs: []Pair{{From: fA, To: fB, Shared: 100}}}
	res := Build(src, opts, kn, kf)
	if len(res.Clusters) != 1 || res.Clusters[0].Size() != 2 {
		t.Fatalf("clusters = %v, want forced {A,B}", res.Clusters)
	}
}

func TestExtraPairsAddToObservedCounts(t *testing.T) {
	// Base shared count 1 (below kf); investigator strength 1.5 lifts it
	// to 2.5, enough for overlap but not combination.
	src := fakeSource{
		fA: {10},
		fB: {10},
	}
	opts := Options{ExtraPairs: []Pair{{From: fA, To: fB, Shared: 1.5}}}
	res := Build(src, opts, kn, kf)
	// Mutual overlap yields identical member sets {A,B}, deduplicated to
	// one cluster; the neighbor-only file 10 becomes a singleton.
	findCluster(t, res, []simfs.FileID{fA, fB})
	findCluster(t, res, []simfs.FileID{10})
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %v, want {A,B} and {10}", res.Clusters)
	}
}

func TestBuildEndToEnd(t *testing.T) {
	// Project 1: files 1,2,3 list each other plus common auxiliary
	// neighbors 8,9, so every in-project pair shares ≥2 neighbors;
	// project 2: files 5,6,7 with auxiliaries 10,11. kn=2 here.
	src := fakeSource{
		1: {2, 3, 8, 9},
		2: {1, 3, 8, 9},
		3: {1, 2, 8, 9},
		5: {6, 7, 10, 11},
		6: {5, 7, 10, 11},
		7: {5, 6, 10, 11},
	}
	res := Build(src, Options{}, 2, 1)
	findCluster(t, res, []simfs.FileID{1, 2, 3})
	findCluster(t, res, []simfs.FileID{5, 6, 7})
	// The auxiliary neighbor-only files remain singletons.
	if len(res.Clusters) != 6 {
		t.Fatalf("clusters = %v, want 2 projects + 4 singletons", res.Clusters)
	}
}

// Property: every input file appears in at least one cluster; members
// are sorted and unique; ClustersOf agrees with the cluster lists.
func TestRunInvariants(t *testing.T) {
	f := func(raw []uint8, knRaw, kfRaw uint8) bool {
		knV := float64(knRaw%5) + 2
		kfV := knV - 1 - float64(kfRaw%2)
		var files []simfs.FileID
		for i := 0; i < 10; i++ {
			files = append(files, simfs.FileID(i+1))
		}
		var pairs []Pair
		for i := 0; i+2 < len(raw); i += 3 {
			pairs = append(pairs, Pair{
				From:   simfs.FileID(raw[i]%10 + 1),
				To:     simfs.FileID(raw[i+1]%10 + 1),
				Shared: float64(raw[i+2] % 8),
			})
		}
		res := Run(files, pairs, knV, kfV)
		seen := map[simfs.FileID]bool{}
		for ci, c := range res.Clusters {
			prev := simfs.FileID(-1)
			for _, m := range c.Members {
				if m <= prev {
					return false // unsorted or duplicate
				}
				prev = m
				seen[m] = true
				found := false
				for _, id := range res.ClustersOf(m) {
					if id == ci {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		for _, f := range files {
			if !seen[f] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestUnionFind(t *testing.T) {
	u := newUnionFind(6)
	u.union(0, 1)
	u.union(2, 3)
	u.union(1, 2)
	if u.find(0) != u.find(3) {
		t.Error("0 and 3 should share a root")
	}
	if u.find(4) == u.find(0) {
		t.Error("4 should be separate")
	}
	u.union(0, 3) // already joined: no-op
	if u.find(0) != u.find(3) {
		t.Error("repeated union broke the forest")
	}
}
