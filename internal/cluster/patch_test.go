package cluster

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"github.com/fmg/seer/internal/simfs"
)

// mutSource is a mutable NeighborSource+MembershipSource for patch
// tests, modeled on semdist.Table's semantics: per-file neighbor lists
// with multiplicity, and permanently-forgotten files that are filtered
// out of every list they still appear on (the lazy cleanForgotten
// behaviour whose second-order effects the patch's reverse-index
// expansion must cover).
type mutSource struct {
	lists map[simfs.FileID][]simfs.FileID
	dead  map[simfs.FileID]bool
}

func newMutSource() *mutSource {
	return &mutSource{
		lists: make(map[simfs.FileID][]simfs.FileID),
		dead:  make(map[simfs.FileID]bool),
	}
}

func (s *mutSource) forget(id simfs.FileID) {
	delete(s.lists, id)
	s.dead[id] = true
}

func (s *mutSource) Files() []simfs.FileID {
	out := make([]simfs.FileID, 0, len(s.lists))
	for f := range s.lists {
		out = append(out, f)
	}
	slices.Sort(out)
	return out
}

func (s *mutSource) Neighbors(id simfs.FileID) []simfs.FileID {
	var out []simfs.FileID
	for _, nb := range s.lists[id] {
		if !s.dead[nb] {
			out = append(out, nb)
		}
	}
	return out
}

func (s *mutSource) Has(id simfs.FileID) bool {
	_, ok := s.lists[id]
	return ok
}

// requireEqualResults fails unless the two results are byte-identical:
// same clusters in the same order with the same IDs, and the same
// membership index answers.
func requireEqualResults(t *testing.T, got, want *Result, ids []simfs.FileID, ctx string) {
	t.Helper()
	if len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("%s: %d clusters, want %d\ngot:  %v\nwant: %v",
			ctx, len(got.Clusters), len(want.Clusters), got.Clusters, want.Clusters)
	}
	for i := range want.Clusters {
		if got.Clusters[i].ID != want.Clusters[i].ID ||
			!slices.Equal(got.Clusters[i].Members, want.Clusters[i].Members) {
			t.Fatalf("%s: cluster %d = %v, want %v", ctx, i, got.Clusters[i], want.Clusters[i])
		}
	}
	for _, f := range ids {
		g, w := got.ClustersOf(f), want.ClustersOf(f)
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !slices.Equal(g, w) {
			t.Fatalf("%s: ClustersOf(%d) = %v, want %v", ctx, f, g, w)
		}
	}
}

// runPatchSchedule drives one randomized mutation schedule: build once
// incrementally, then patch through rounds of random add/remove/
// re-weight/presence churn, comparing against a fresh full build after
// every round.
func runPatchSchedule(t *testing.T, seed int64, opts Options) {
	rng := rand.New(rand.NewSource(seed))
	const pool = 80
	src := newMutSource()
	randList := func() []simfs.FileID {
		n := rng.Intn(7)
		var l []simfs.FileID
		for i := 0; i < n; i++ {
			nb := simfs.FileID(1 + rng.Intn(pool))
			if src.dead[nb] {
				// Like semdist, a forgotten file never re-enters a list.
				continue
			}
			// Duplicates model edge weight: multiplicity raises the
			// shared count, so re-weighting is list mutation too.
			reps := 1 + rng.Intn(2)
			for r := 0; r < reps; r++ {
				l = append(l, nb)
			}
		}
		return l
	}
	for f := simfs.FileID(1); f <= 60; f++ {
		src.lists[f] = randList()
	}
	const kn, kf = 4, 2

	full := func() *Result {
		o := opts
		o.Incremental = false
		return Build(src, o, kn, kf)
	}
	incOpts := opts
	incOpts.Incremental = true
	res := Build(src, incOpts, kn, kf)
	allIDs := make([]simfs.FileID, pool+20)
	for i := range allIDs {
		allIDs[i] = simfs.FileID(i + 1)
	}
	requireEqualResults(t, res, full(), allIDs, "initial build")

	for round := 0; round < 40; round++ {
		churn := 1 + rng.Intn(5)
		var changed []simfs.FileID
		for c := 0; c < churn; c++ {
			f := simfs.FileID(1 + rng.Intn(pool+10))
			if src.dead[f] {
				// Forgetting is permanent (FileIDs are never reused by a
				// recreated path's table state); churn a live id instead.
				continue
			}
			switch op := rng.Intn(10); {
			case op < 5: // rewrite the list (add/remove/re-weight edges)
				src.lists[f] = randList()
			case op < 7: // forget the file outright
				src.forget(f)
			case op < 9: // (re)create with a fresh list
				src.lists[f] = randList()
			default: // empty the list but keep the file
				src.lists[f] = nil
			}
			changed = append(changed, f)
		}
		if len(changed) == 0 {
			continue
		}
		// Report some ids twice and some unchanged ones: the journal the
		// correlator drains can over-report, and Patch must not care.
		if rng.Intn(2) == 0 {
			changed = append(changed, changed[0], simfs.FileID(1+rng.Intn(pool)))
		}
		ctx := fmt.Sprintf("seed %d round %d changed %v", seed, round, changed)
		if !Patch(res, src, changed, incOpts, kn, kf) {
			t.Fatalf("%s: Patch refused", ctx)
		}
		requireEqualResults(t, res, full(), allIDs, ctx)
	}
}

func TestPatchMatchesFullBuild(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runPatchSchedule(t, seed, Options{Workers: 1})
		})
	}
}

func TestPatchMatchesFullBuildAdjusted(t *testing.T) {
	// Directory-distance-like adjustment plus investigator extras: the
	// adjusted score paths and the extra-pair bookkeeping must stay
	// identical under patching too.
	adjust := func(a, b simfs.FileID) float64 {
		return float64((uint32(a)*31+uint32(b)*17)%5) - 2
	}
	extras := []Pair{
		{From: 3, To: 91, Shared: 5},
		{From: 12, To: 40, Shared: 2.5},
		{From: 92, To: 93, Shared: 6},
	}
	for seed := int64(5); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runPatchSchedule(t, seed, Options{Workers: 1, Adjust: adjust, ExtraPairs: extras})
		})
	}
}

func TestPatchRefusals(t *testing.T) {
	src := newMutSource()
	for f := simfs.FileID(1); f <= 10; f++ {
		src.lists[f] = []simfs.FileID{f%10 + 1, f%10 + 2}
	}
	const kn, kf = 4, 2
	opts := Options{Workers: 1, Incremental: true}
	res := Build(src, opts, kn, kf)

	if Patch(res, src, nil, opts, kn, kf) != true {
		t.Fatal("empty change set should be a trivial success")
	}
	if Patch(res, src, []simfs.FileID{1}, opts, kn+1, kf) {
		t.Fatal("threshold mismatch must refuse")
	}
	// A source without a presence test cannot be patched against.
	plain := struct{ NeighborSource }{src}
	if Patch(res, plain, []simfs.FileID{1}, opts, kn, kf) {
		t.Fatal("non-MembershipSource must refuse")
	}
	limited := opts
	limited.MaxPatch = 2
	if Patch(res, src, []simfs.FileID{1, 2, 3}, limited, kn, kf) {
		t.Fatal("churn above MaxPatch must refuse")
	}
	// A result built without Incremental has nothing to patch.
	bare := Build(src, Options{Workers: 1}, kn, kf)
	if Patch(bare, src, []simfs.FileID{1}, opts, kn, kf) {
		t.Fatal("non-incremental result must refuse")
	}
}

func TestPatchSplitsAndMerges(t *testing.T) {
	// Deterministic split/merge exercise: two chains share enough
	// neighbors to fuse, then the bridge file's list is cut and the
	// component must fall apart exactly as a full rebuild says.
	src := newMutSource()
	shared := []simfs.FileID{100, 101, 102, 103}
	for f := simfs.FileID(1); f <= 8; f++ {
		src.lists[f] = append([]simfs.FileID{}, shared...)
	}
	const kn, kf = 4, 2
	opts := Options{Workers: 1, Incremental: true}
	res := Build(src, opts, kn, kf)
	if len(res.Clusters) == 0 {
		t.Fatal("expected clusters")
	}

	// Split: file 4 loses the shared vocabulary.
	src.lists[4] = []simfs.FileID{200, 201}
	if !Patch(res, src, []simfs.FileID{4}, opts, kn, kf) {
		t.Fatal("patch refused")
	}
	requireEqualResults(t, res, Build(src, Options{Workers: 1}, kn, kf),
		src.Files(), "after split")

	// Merge it back.
	src.lists[4] = append([]simfs.FileID{}, shared...)
	if !Patch(res, src, []simfs.FileID{4}, opts, kn, kf) {
		t.Fatal("patch refused")
	}
	requireEqualResults(t, res, Build(src, Options{Workers: 1}, kn, kf),
		src.Files(), "after merge")

	sort.Slice(res.Clusters, func(i, j int) bool {
		return res.Clusters[i].ID < res.Clusters[j].ID
	})
}
