// Package cluster implements SEER's modified Jarvis–Patrick clustering
// (paper §3.3). The original algorithm compares the n-nearest-neighbor
// lists of every pair of points (O(N²) time); SEER achieves O(N) by only
// examining pairs that already appear on each other's semantic-distance
// neighbor lists, and splits the single threshold k into two:
//
//	shared ≥ kn          → the two files' clusters are combined
//	kf ≤ shared < kn     → each file is inserted into the other's
//	                       cluster, but the clusters stay separate
//	shared < kf          → no action
//
// yielding the overlapping clusters that hoarding requires (a compiler
// belongs to every project that uses it). External information —
// directory distance and investigator-reported relations — adjusts the
// shared-neighbor count before thresholding (paper §3.3.3).
package cluster

import (
	"sort"

	"github.com/fmg/seer/internal/simfs"
)

// Pair is one directed candidate relationship with its (possibly
// adjusted) shared-neighbor count.
type Pair struct {
	From, To simfs.FileID
	Shared   float64
}

// NeighborSource supplies the semantic-distance neighbor lists; it is
// implemented by semdist.Table.
type NeighborSource interface {
	// Files lists every file with relationship state.
	Files() []simfs.FileID
	// Neighbors lists the files on id's closest-neighbor list.
	Neighbors(id simfs.FileID) []simfs.FileID
}

// Options configures pair generation.
type Options struct {
	// Adjust, when non-nil, returns an additive adjustment to the
	// shared-neighbor count of a pair: negative for directory distance,
	// positive for investigator relations (paper §3.3.3).
	Adjust func(a, b simfs.FileID) float64
	// ExtraPairs lists investigator-reported pairs that are tested even
	// when no semantic distance is stored between the files: a strong
	// enough relation can force files into one cluster regardless of
	// observed behaviour (paper §3.3.3).
	ExtraPairs []Pair
}

// Cluster is one project: a sorted list of member files. Because
// clusters overlap, a file may appear in several.
type Cluster struct {
	ID      int
	Members []simfs.FileID
}

// Size returns the number of member files.
func (c *Cluster) Size() int { return len(c.Members) }

// Result is a complete cluster assignment.
type Result struct {
	Clusters []Cluster
	byFile   map[simfs.FileID][]int
}

// ClustersOf returns the IDs of the clusters containing f (indexes into
// Result.Clusters).
func (r *Result) ClustersOf(f simfs.FileID) []int { return r.byFile[f] }

// BuildPairs generates the scored candidate pairs from the neighbor
// lists: for every file A and every B on A's list, the count of
// neighbors the two lists share, plus any adjustment.
func BuildPairs(src NeighborSource, opts Options) []Pair {
	files := src.Files()
	// Precompute neighbor sets for membership testing.
	sets := make(map[simfs.FileID]map[simfs.FileID]bool, len(files))
	lists := make(map[simfs.FileID][]simfs.FileID, len(files))
	for _, f := range files {
		nbs := src.Neighbors(f)
		lists[f] = nbs
		set := make(map[simfs.FileID]bool, len(nbs))
		for _, nb := range nbs {
			set[nb] = true
		}
		sets[f] = set
	}
	var pairs []Pair
	for _, a := range files {
		for _, b := range lists[a] {
			shared := sharedCount(lists[a], sets[b])
			if opts.Adjust != nil {
				shared += opts.Adjust(a, b)
			}
			pairs = append(pairs, Pair{From: a, To: b, Shared: shared})
		}
	}
	for _, ep := range opts.ExtraPairs {
		shared := ep.Shared
		// Investigator relations add to whatever shared count the
		// neighbor lists produce; when the files are unknown to the
		// distance table the base count is zero.
		shared += sharedCount(lists[ep.From], sets[ep.To])
		if opts.Adjust != nil {
			shared += opts.Adjust(ep.From, ep.To)
		}
		pairs = append(pairs, Pair{From: ep.From, To: ep.To, Shared: shared})
	}
	return pairs
}

func sharedCount(listA []simfs.FileID, setB map[simfs.FileID]bool) float64 {
	if len(listA) == 0 || len(setB) == 0 {
		return 0
	}
	n := 0
	for _, x := range listA {
		if setB[x] {
			n++
		}
	}
	return float64(n)
}

// Run executes the two-phase clustering over the given files and scored
// pairs. Files never mentioned in a qualifying pair become singleton
// clusters (the agglomerative starting point).
func Run(files []simfs.FileID, pairs []Pair, kn, kf float64) *Result {
	uf := newUnionFind()
	for _, f := range files {
		uf.add(f)
	}
	for _, p := range pairs {
		uf.add(p.From)
		uf.add(p.To)
	}
	// Phase 1: combine clusters for strongly related pairs.
	for _, p := range pairs {
		if p.Shared >= kn {
			uf.union(p.From, p.To)
		}
	}
	// Phase 2: overlap clusters for weakly related pairs. Membership is
	// root → extra members; insertion does not merge the clusters.
	extra := make(map[simfs.FileID]map[simfs.FileID]bool)
	addExtra := func(root, member simfs.FileID) {
		if uf.find(member) == root {
			return // already a core member
		}
		m := extra[root]
		if m == nil {
			m = make(map[simfs.FileID]bool)
			extra[root] = m
		}
		m[member] = true
	}
	for _, p := range pairs {
		if p.Shared >= kf && p.Shared < kn {
			ra, rb := uf.find(p.From), uf.find(p.To)
			if ra == rb {
				continue
			}
			addExtra(ra, p.To)
			addExtra(rb, p.From)
		}
	}
	// Materialize clusters.
	core := make(map[simfs.FileID][]simfs.FileID)
	for f := range uf.parent {
		r := uf.find(f)
		core[r] = append(core[r], f)
	}
	roots := make([]simfs.FileID, 0, len(core))
	for r := range core {
		roots = append(roots, r)
	}
	res := &Result{byFile: make(map[simfs.FileID][]int)}
	seen := make(map[string]bool, len(roots))
	for _, r := range roots {
		members := core[r]
		for m := range extra[r] {
			members = append(members, m)
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		// Mutual overlap can make two clusters' member sets identical;
		// keep only one of each distinct set.
		sig := signature(members)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		res.Clusters = append(res.Clusters, Cluster{Members: members})
	}
	// Deterministic order: lexicographic over the full member lists.
	// Overlap can give two clusters the same first member, and sorting
	// on it alone would let map-iteration order leak into cluster IDs
	// (and from there into hoard plans).
	sort.Slice(res.Clusters, func(i, j int) bool {
		return lessMembers(res.Clusters[i].Members, res.Clusters[j].Members)
	})
	for i := range res.Clusters {
		res.Clusters[i].ID = i
		for _, m := range res.Clusters[i].Members {
			res.byFile[m] = append(res.byFile[m], i)
		}
	}
	return res
}

// Build is the full pipeline: generate pairs from the neighbor source
// and run the two-phase algorithm.
func Build(src NeighborSource, opts Options, kn, kf float64) *Result {
	return Run(src.Files(), BuildPairs(src, opts), kn, kf)
}

// lessMembers compares two sorted member lists lexicographically.
func lessMembers(a, b []simfs.FileID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// signature builds a map key identifying a member set.
func signature(members []simfs.FileID) string {
	b := make([]byte, 0, 4*len(members))
	for _, m := range members {
		b = append(b, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(b)
}

// unionFind is a standard disjoint-set forest with path compression and
// union by size.
type unionFind struct {
	parent map[simfs.FileID]simfs.FileID
	size   map[simfs.FileID]int
}

func newUnionFind() *unionFind {
	return &unionFind{
		parent: make(map[simfs.FileID]simfs.FileID),
		size:   make(map[simfs.FileID]int),
	}
}

func (u *unionFind) add(f simfs.FileID) {
	if _, ok := u.parent[f]; !ok {
		u.parent[f] = f
		u.size[f] = 1
	}
}

func (u *unionFind) find(f simfs.FileID) simfs.FileID {
	root := f
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[f] != root {
		u.parent[f], f = root, u.parent[f]
	}
	return root
}

func (u *unionFind) union(a, b simfs.FileID) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
