// Package cluster implements SEER's modified Jarvis–Patrick clustering
// (paper §3.3). The original algorithm compares the n-nearest-neighbor
// lists of every pair of points (O(N²) time); SEER achieves O(N) by only
// examining pairs that already appear on each other's semantic-distance
// neighbor lists, and splits the single threshold k into two:
//
//	shared ≥ kn          → the two files' clusters are combined
//	kf ≤ shared < kn     → each file is inserted into the other's
//	                       cluster, but the clusters stay separate
//	shared < kf          → no action
//
// yielding the overlapping clusters that hoarding requires (a compiler
// belongs to every project that uses it). External information —
// directory distance and investigator-reported relations — adjusts the
// shared-neighbor count before thresholding (paper §3.3.3).
//
// The implementation interns the sparse FileIDs into a dense 0..n-1
// space once per run (simfs.Interner) and then works entirely on
// slice-indexed state: shared-neighbor counts come from an
// epoch-stamped counter array rather than per-file membership maps, and
// the union-find parent/size tables are flat slices. Pair generation
// shards across a worker pool; each worker writes into a pre-computed
// span of the output slice, so the result is byte-identical for every
// worker count.
package cluster

import (
	"context"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"github.com/fmg/seer/internal/simfs"
)

// Pair is one directed candidate relationship with its (possibly
// adjusted) shared-neighbor count.
type Pair struct {
	From, To simfs.FileID
	Shared   float64
}

// NeighborSource supplies the semantic-distance neighbor lists; it is
// implemented by semdist.Table.
type NeighborSource interface {
	// Files lists every file with relationship state. The returned slice
	// is read, never mutated.
	Files() []simfs.FileID
	// Neighbors lists the files on id's closest-neighbor list.
	Neighbors(id simfs.FileID) []simfs.FileID
}

// AppendSource is an optional NeighborSource extension: AppendNeighbors
// appends id's neighbor list to dst and returns the extended slice,
// letting the clustering pass gather every list into one buffer instead
// of allocating a slice per file.
type AppendSource interface {
	AppendNeighbors(id simfs.FileID, dst []simfs.FileID) []simfs.FileID
}

// Options configures pair generation.
type Options struct {
	// Adjust, when non-nil, returns an additive adjustment to the
	// shared-neighbor count of a pair: negative for directory distance,
	// positive for investigator relations (paper §3.3.3). BuildPairs
	// calls Adjust from several goroutines when Workers != 1, so it must
	// be safe for concurrent use (read-only adjusters, like the directory
	// distance over an otherwise idle file table, qualify).
	Adjust func(a, b simfs.FileID) float64
	// ExtraPairs lists investigator-reported pairs that are tested even
	// when no semantic distance is stored between the files: a strong
	// enough relation can force files into one cluster regardless of
	// observed behaviour (paper §3.3.3).
	ExtraPairs []Pair
	// Workers is the number of goroutines pair generation shards across:
	// 0 means runtime.GOMAXPROCS(0), 1 forces the serial path. The
	// output is identical for every value.
	Workers int
	// Ctx, when non-nil, cancels an in-flight clustering: every worker
	// observes Ctx.Done() and bails out, and Build/BuildPairs return nil
	// so a deadline-bound plan request cannot leak a worker pool behind
	// a client that has given up. Nil means run to completion.
	Ctx context.Context
	// OnPhase, when non-nil, receives the wall time of each completed
	// Build phase ("pairs" for pair generation, "assign" for the
	// two-phase assignment, "patch" for an incremental Patch) — the hook
	// telemetry hangs latency histograms on without the cluster package
	// knowing about metrics. It is called from the goroutine running
	// Build or Patch, never concurrently.
	OnPhase func(phase string, d time.Duration)
	// Incremental makes Build retain the edge/union-find state that
	// Patch needs to update the Result in place later. It costs extra
	// memory proportional to the neighbor-list volume; plain one-shot
	// builds should leave it off.
	Incremental bool
	// MaxPatch bounds the number of files a single Patch may re-read
	// after reverse-edge expansion; past it Patch refuses (returns
	// false) so the caller falls back to a full Build. 0 means no bound.
	MaxPatch int
}

// doneOf extracts the cancellation channel (nil when no context is
// configured, keeping the common path free of context machinery).
func doneOf(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// canceledEvery is how many loop iterations pass between cancellation
// checks in the hot loops: frequent enough that cancellation lands
// quickly even when per-file work is expensive, rare enough that the
// check cannot show up in profiles.
const canceledEvery = 64

// canceled reports whether done is closed; a nil done never is.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Cluster is one project: a sorted list of member files. Because
// clusters overlap, a file may appear in several.
type Cluster struct {
	ID      int
	Members []simfs.FileID
}

// Size returns the number of member files.
func (c *Cluster) Size() int { return len(c.Members) }

// Result is a complete cluster assignment.
type Result struct {
	Clusters []Cluster
	// in maps member FileIDs to dense indices into byIdx.
	in    *simfs.Interner
	byIdx [][]int
	// byIdxStale marks the inverted index as outdated after a Patch
	// rewrote the cluster list; ClustersOf rebuilds it on demand so a
	// run of pure patches never pays for inversions nobody reads.
	byIdxStale bool
	// inc is the retained incremental state (nil unless the Result was
	// built with Options.Incremental).
	inc *incState
}

// ClustersOf returns the IDs of the clusters containing f (indexes into
// Result.Clusters).
func (r *Result) ClustersOf(f simfs.FileID) []int {
	if r.in == nil {
		return nil
	}
	if r.byIdxStale {
		r.buildByIdx()
	}
	i, ok := r.in.Lookup(f)
	if !ok {
		return nil
	}
	if int(i) >= len(r.byIdx) {
		return nil
	}
	return r.byIdx[i]
}

// buildByIdx inverts membership into one backing array: count, carve
// spans, fill. Appends stay within each span's capacity, so the whole
// index costs two allocations.
func (r *Result) buildByIdx() {
	n := r.in.Len()
	memberCounts := make([]int32, n)
	totalMembers := 0
	for i := range r.Clusters {
		totalMembers += len(r.Clusters[i].Members)
		for _, m := range r.Clusters[i].Members {
			mi, _ := r.in.Lookup(m)
			memberCounts[mi]++
		}
	}
	backing := make([]int, totalMembers)
	r.byIdx = make([][]int, n)
	pos := 0
	for v := 0; v < n; v++ {
		c := int(memberCounts[v])
		r.byIdx[v] = backing[pos : pos : pos+c]
		pos += c
	}
	for i := range r.Clusters {
		for _, m := range r.Clusters[i].Members {
			mi, _ := r.in.Lookup(m)
			r.byIdx[mi] = append(r.byIdx[mi], i)
		}
	}
	r.byIdxStale = false
}

// densePair is a scored pair over dense indices.
type densePair struct {
	from, to int32
	shared   float64
}

// denseLists is the interned form of a NeighborSource: files hold dense
// indices 0..len(files)-1 in Files() order, neighbor-only ids follow in
// first-encounter order.
type denseLists struct {
	in    *simfs.Interner
	files []simfs.FileID
	// offs[i]..offs[i+1] delimits file i's span in the backing arrays;
	// lists[i] holds the neighbors in original list order, sorted[i] the
	// same set sorted ascending.
	offs   []int
	lists  [][]int32
	sorted [][]int32
}

// intern runs the single-threaded interning pass over the source.
func intern(src NeighborSource) *denseLists {
	files := src.Files()
	d := &denseLists{
		in:     simfs.NewInterner(len(files)),
		files:  files,
		offs:   make([]int, len(files)+1),
		lists:  make([][]int32, len(files)),
		sorted: make([][]int32, len(files)),
	}
	for _, f := range files {
		d.in.Intern(f)
	}
	var flat []simfs.FileID
	if as, ok := src.(AppendSource); ok {
		flat = make([]simfs.FileID, 0, 16*len(files))
		for i, f := range files {
			flat = as.AppendNeighbors(f, flat)
			d.offs[i+1] = len(flat)
		}
	} else {
		for i, f := range files {
			flat = append(flat, src.Neighbors(f)...)
			d.offs[i+1] = len(flat)
		}
	}
	back := make([]int32, len(flat))
	for j, nb := range flat {
		back[j] = d.in.Intern(nb)
	}
	backSorted := make([]int32, len(flat))
	copy(backSorted, back)
	for i := range files {
		lo, hi := d.offs[i], d.offs[i+1]
		d.lists[i] = back[lo:hi:hi]
		s := backSorted[lo:hi:hi]
		slices.Sort(s)
		d.sorted[i] = s
	}
	return d
}

// sortedOf returns the sorted neighbor list of the file with dense
// index i, or nil when i is a neighbor-only id without a list.
func (d *denseLists) sortedOf(i int32) []int32 {
	if int(i) < len(d.files) {
		return d.sorted[i]
	}
	return nil
}

// counter is an epoch-stamped multiset over dense indices: mark loads
// one file's neighbor list, countIn then answers "how many elements of
// that list (with multiplicity) appear in this other list" in a single
// scan, with no per-pair merge. Each worker owns one.
type counter struct {
	cnt, stamp []int32
	epoch      int32
}

func newCounter(n int) *counter {
	return &counter{cnt: make([]int32, n), stamp: make([]int32, n)}
}

// mark loads list as the current multiset.
func (c *counter) mark(list []int32) {
	c.epoch++
	for _, x := range list {
		if c.stamp[x] != c.epoch {
			c.stamp[x] = c.epoch
			c.cnt[x] = 1
		} else {
			c.cnt[x]++
		}
	}
}

// countIn sums the marked multiplicities over the distinct elements of
// the sorted list.
func (c *counter) countIn(sorted []int32) float64 {
	n := int32(0)
	prev := int32(-1)
	for _, v := range sorted {
		if v == prev {
			continue
		}
		prev = v
		if c.stamp[v] == c.epoch {
			n += c.cnt[v]
		}
	}
	return float64(n)
}

// buildDense generates the scored pairs over dense indices. The main
// loop shards across opts.Workers goroutines; every file's pairs land
// in a pre-computed span of the output, so the result does not depend
// on the worker count. ExtraPairs are appended serially afterwards
// (interning their possibly-unknown endpoints mutates the interner).
func buildDense(d *denseLists, opts Options) []densePair {
	total := d.offs[len(d.files)]
	if total == 0 && len(opts.ExtraPairs) == 0 {
		return nil
	}
	pairs := make([]densePair, total, total+len(opts.ExtraPairs))
	n := d.in.Len()
	done := doneOf(opts.Ctx)
	fill := func(lo, hi int, c *counter) {
		for i := lo; i < hi; i++ {
			if done != nil && i%canceledEvery == 0 && canceled(done) {
				return
			}
			list := d.lists[i]
			if len(list) == 0 {
				continue
			}
			c.mark(list)
			a := d.files[i]
			span := pairs[d.offs[i]:d.offs[i+1]]
			for k, bIdx := range list {
				shared := c.countIn(d.sortedOf(bIdx))
				if opts.Adjust != nil {
					shared += opts.Adjust(a, d.in.ID(bIdx))
				}
				span[k] = densePair{from: int32(i), to: bIdx, shared: shared}
			}
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(d.files) {
		workers = len(d.files)
	}
	if workers <= 1 {
		fill(0, len(d.files), newCounter(n))
	} else {
		// Contiguous shards balanced by pair count, not file count, so a
		// few files with long lists cannot serialize the pool.
		var wg sync.WaitGroup
		lo := 0
		for w := 1; w <= workers && lo < len(d.files); w++ {
			target := total * w / workers
			hi := lo
			for hi < len(d.files) && d.offs[hi+1] <= target {
				hi++
			}
			if w == workers {
				hi = len(d.files)
			}
			if hi == lo {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fill(lo, hi, newCounter(n))
			}(lo, hi)
			lo = hi
		}
		wg.Wait()
	}
	if canceled(done) {
		return nil
	}
	for _, ep := range opts.ExtraPairs {
		shared := ep.Shared
		// Investigator relations add to whatever shared count the
		// neighbor lists produce; when the files are unknown to the
		// distance table the base count is zero.
		fi := d.in.Intern(ep.From)
		ti := d.in.Intern(ep.To)
		shared += sharedSorted(d.sortedOf(fi), d.sortedOf(ti))
		if opts.Adjust != nil {
			shared += opts.Adjust(ep.From, ep.To)
		}
		pairs = append(pairs, densePair{from: fi, to: ti, shared: shared})
	}
	return pairs
}

// BuildPairs generates the scored candidate pairs from the neighbor
// lists: for every file A and every B on A's list, the count of
// neighbors the two lists share, plus any adjustment. When opts.Ctx is
// cancelled mid-run it returns nil after the workers have exited.
func BuildPairs(src NeighborSource, opts Options) []Pair {
	d := intern(src)
	dense := buildDense(d, opts)
	if len(dense) == 0 || canceled(doneOf(opts.Ctx)) {
		return nil
	}
	pairs := make([]Pair, len(dense))
	for i, p := range dense {
		pairs[i] = Pair{From: d.in.ID(p.from), To: d.in.ID(p.to), Shared: p.shared}
	}
	return pairs
}

// sharedSorted counts the elements of sorted list a (with multiplicity)
// that occur in sorted list b, by linear merge. The bulk path uses the
// stamped counter; this handles the few ExtraPairs.
func sharedSorted(a, b []int32) float64 {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			v := a[i]
			for i < len(a) && a[i] == v {
				n++
				i++
			}
			j++
		}
	}
	return float64(n)
}

// Run executes the two-phase clustering over the given files and scored
// pairs. Files never mentioned in a qualifying pair become singleton
// clusters (the agglomerative starting point).
func Run(files []simfs.FileID, pairs []Pair, kn, kf float64) *Result {
	in := simfs.NewInterner(len(files))
	for _, f := range files {
		in.Intern(f)
	}
	dense := make([]densePair, len(pairs))
	for i, p := range pairs {
		dense[i] = densePair{from: in.Intern(p.From), to: in.Intern(p.To), shared: p.Shared}
	}
	return runDense(in, dense, kn, kf, nil, nil)
}

// Build is the full pipeline: generate pairs from the neighbor source
// and run the two-phase algorithm. It stays on dense indices end to
// end; the result is identical to Run(src.Files(), BuildPairs(src,
// opts), kn, kf). When opts.Ctx is cancelled mid-run it returns nil
// after every worker has exited — never a partial result.
func Build(src NeighborSource, opts Options, kn, kf float64) *Result {
	done := doneOf(opts.Ctx)
	d := intern(src)
	if canceled(done) {
		return nil
	}
	start := time.Now()
	pairs := buildDense(d, opts)
	if opts.OnPhase != nil {
		opts.OnPhase("pairs", time.Since(start))
	}
	if canceled(done) {
		return nil
	}
	var inc *incState
	if opts.Incremental {
		// Built after buildDense so ExtraPairs endpoints are interned.
		inc = newIncState(d, opts.ExtraPairs, kn, kf)
	}
	start = time.Now()
	res := runDense(d.in, pairs, kn, kf, done, inc)
	if opts.OnPhase != nil && res != nil {
		opts.OnPhase("assign", time.Since(start))
	}
	return res
}

// runDense is the two-phase algorithm over interned pairs. Every id in
// the interner becomes a cluster member (singletons included). A close
// of done aborts between phases with a nil result. A non-nil inc
// additionally captures the union-find, per-root member buckets, and
// per-root materialized contents that Patch later edits in place.
func runDense(in *simfs.Interner, pairs []densePair, kn, kf float64, done <-chan struct{}, inc *incState) *Result {
	n := in.Len()
	uf := newUnionFind(n)
	// Phase 1: combine clusters for strongly related pairs.
	for _, p := range pairs {
		if p.shared >= kn {
			uf.union(p.from, p.to)
		}
	}
	if canceled(done) {
		return nil
	}
	// Phase 2: overlap clusters for weakly related pairs. Membership is
	// root → extra members; insertion does not merge the clusters.
	// Phase 1 is complete, so roots are final and the inserted member
	// can never be a core member of the target root; duplicates from
	// repeated weak pairs are removed during materialization.
	extra := make([][]int32, n)
	for _, p := range pairs {
		if p.shared >= kf && p.shared < kn {
			ra, rb := uf.find(p.from), uf.find(p.to)
			if ra == rb {
				continue
			}
			extra[ra] = append(extra[ra], p.to)
			extra[rb] = append(extra[rb], p.from)
		}
	}
	if canceled(done) {
		return nil
	}
	// Materialize: bucket the core members by root in two passes over a
	// single backing array.
	rootOf := make([]int32, n)
	counts := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		r := uf.find(v)
		rootOf[v] = r
		counts[r]++
	}
	starts := make([]int32, n+1)
	for r := 0; r < n; r++ {
		starts[r+1] = starts[r] + counts[r]
	}
	fillPos := make([]int32, n)
	copy(fillPos, starts[:n])
	core := make([]int32, n)
	for v := int32(0); v < int32(n); v++ {
		r := rootOf[v]
		core[fillPos[r]] = v
		fillPos[r]++
	}
	res := &Result{in: in}
	// Materialize one member list per root, then sort lexicographically
	// and drop adjacent duplicates: mutual overlap can make two roots'
	// member sets identical, and only one of each distinct set survives.
	// (The full member lists are the sort key — overlap can give two
	// clusters the same first member, and sorting on it alone would let
	// iteration order leak into cluster IDs and from there into hoard
	// plans.) When inc is set, the duplicates are refcounted instead of
	// forgotten so Patch can tell "one of two twin roots dissolved" from
	// "the cluster is gone".
	type mat struct {
		root    int32
		members []simfs.FileID
	}
	mats := make([]mat, 0, 64)
	for r := int32(0); r < int32(n); r++ {
		if done != nil && r%canceledEvery == 0 && canceled(done) {
			return nil
		}
		cnt := int(counts[r])
		if cnt == 0 {
			continue
		}
		members := make([]simfs.FileID, 0, cnt+len(extra[r]))
		for _, v := range core[starts[r] : int(starts[r])+cnt] {
			members = append(members, in.ID(v))
		}
		for _, v := range extra[r] {
			members = append(members, in.ID(v))
		}
		slices.Sort(members)
		members = slices.Compact(members)
		mats = append(mats, mat{root: r, members: members})
	}
	sort.Slice(mats, func(i, j int) bool {
		return lessMembers(mats[i].members, mats[j].members)
	})
	res.Clusters = make([]Cluster, 0, len(mats))
	var refs []int32
	for i := range mats {
		if i > 0 && slices.Equal(mats[i].members, mats[i-1].members) {
			if inc != nil {
				refs[len(refs)-1]++
				// Twin roots share one backing so removal capture always
				// hands Patch the canonical slice.
				inc.content[mats[i].root] = res.Clusters[len(res.Clusters)-1].Members
			}
			continue
		}
		res.Clusters = append(res.Clusters, Cluster{ID: len(res.Clusters), Members: mats[i].members})
		if inc != nil {
			refs = append(refs, 1)
			inc.content[mats[i].root] = mats[i].members
		}
	}
	res.buildByIdx()
	if inc != nil {
		inc.uf = uf
		inc.refs = refs
		// Capped sub-slices of the shared core backing: a root's member
		// bucket can be handed around without aliasing its neighbors'.
		inc.members = make([][]int32, n)
		for r := int32(0); r < int32(n); r++ {
			if c := counts[r]; c > 0 {
				lo := starts[r]
				inc.members[r] = core[lo : lo+c : lo+c]
			}
		}
		res.inc = inc
	}
	return res
}

// lessMembers compares two sorted member lists lexicographically.
func lessMembers(a, b []simfs.FileID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// unionFind is a standard disjoint-set forest over dense indices with
// path compression and union by size.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(f int32) int32 {
	root := f
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[f] != root {
		u.parent[f], f = root, u.parent[f]
	}
	return root
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// grow extends the forest to n elements, each new one its own root.
func (u *unionFind) grow(n int) {
	for i := len(u.parent); i < n; i++ {
		u.parent = append(u.parent, int32(i))
		u.size = append(u.size, 1)
	}
}
