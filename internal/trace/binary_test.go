package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestBinaryRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(events) {
		t.Errorf("count = %d", w.Count())
	}
	got, err := NewBinaryReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i].String() != events[i].String() {
			t.Errorf("event %d:\n got %s\nwant %s", i, got[i].String(), events[i].String())
		}
	}
}

func TestBinaryCompactness(t *testing.T) {
	// A realistic stream re-references the same paths; the binary
	// format's string interning should beat the text format by a wide
	// margin.
	clk := NewClock(time.Unix(1000, 0))
	var events []Event
	for i := 0; i < 2000; i++ {
		path := "/home/u/project/file" + string(rune('a'+i%20))
		events = append(events, clk.Stamp(Event{PID: 100, Op: OpOpen, Path: path, Prog: "emacs", Uid: 1000}))
		clk.Advance(time.Second)
		events = append(events, clk.Stamp(Event{PID: 100, Op: OpClose, Path: path, Prog: "emacs", Uid: 1000}))
	}
	var text, bin bytes.Buffer
	tw := NewWriter(&text)
	bw := NewBinaryWriter(&bin)
	for _, e := range events {
		if err := tw.Write(e); err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	tw.Flush()
	bw.Flush()
	if bin.Len()*3 > text.Len() {
		t.Errorf("binary %d B not ≤ 1/3 of text %d B", bin.Len(), text.Len())
	}
	got, err := NewBinaryReader(&bin).ReadAll()
	if err != nil || len(got) != len(events) {
		t.Fatalf("reread: %v (%d events)", err, len(got))
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewBinaryReader(&buf).ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v, %d events", err, len(got))
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := NewBinaryReader(strings.NewReader("not a trace file")).Read(); err == nil || err == io.EOF {
		t.Error("garbage accepted")
	}
	if _, err := NewBinaryReader(strings.NewReader("")).Read(); err == nil {
		t.Error("empty input gave no error")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, e := range sampleEvents() {
		w.Write(e)
	}
	w.Flush()
	full := buf.Bytes()
	r := NewBinaryReader(bytes.NewReader(full[:len(full)-3]))
	_, err := r.ReadAll()
	if err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestBinaryStickyError(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(sampleEvents()[0])
	w.Flush()
	// Corrupt a string index deep in the stream: flip the last byte to
	// a large varint fragment is fiddly; instead append a bogus event
	// with an out-of-range string reference manually.
	r := NewBinaryReader(&buf)
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	r.err = io.ErrUnexpectedEOF
	if _, err := r.Read(); err == nil {
		t.Error("sticky error not honored")
	}
}
