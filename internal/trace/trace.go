// Package trace defines the file-reference event model that the SEER
// observer consumes and everything downstream (correlator, simulator,
// baselines) is driven by.
//
// An event corresponds to one traced system call (paper §4.11): SEER does
// not track individual reads and writes, only whole-file operations such
// as opens, closes, status inquiries, renames, process executions and
// exits. Events carry a process id and parent process id so that the
// correlator can separate the interleaved reference streams of a
// multitasking user (paper §4.7) and inherit/merge reference histories
// across fork and exit.
package trace

import (
	"fmt"
	"time"
)

// Op is the kind of file reference or process event observed.
type Op uint8

// The operation kinds. The set mirrors the whole-file operations SEER
// traces on Linux (paper §4.8 and §4.11).
const (
	// OpInvalid is the zero Op and never appears in a valid trace.
	OpInvalid Op = iota
	// OpOpen is a file open for reading or writing.
	OpOpen
	// OpClose closes a previously opened file.
	OpClose
	// OpExec is the execution of a program image; treated as an open
	// that lasts for the process lifetime (paper §4.8).
	OpExec
	// OpExit is process termination; closes the exec "open" and merges
	// the child's reference history into the parent (paper §4.7).
	OpExit
	// OpFork creates a child process that inherits its parent's
	// reference history (paper §4.7).
	OpFork
	// OpStat is an attribute examination (stat/access); treated as a
	// simultaneous open/close pair unless immediately followed by an
	// open of the same file (paper §4.8).
	OpStat
	// OpCreate creates a new regular file (also implies an open).
	OpCreate
	// OpDelete removes a file. Removal from internal tables is delayed
	// (paper §4.8, File Deletion).
	OpDelete
	// OpRename renames Path to Path2; treated as a point-in-time
	// reference to both names.
	OpRename
	// OpMkdir creates a directory.
	OpMkdir
	// OpReadDir is a directory open for reading entries. It is the key
	// signal for the meaningless-process heuristic (paper §4.1).
	OpReadDir
	// OpChdir changes the process working directory; used by the
	// observer to absolutize relative pathnames.
	OpChdir
	// OpDisconnect marks the beginning of a network disconnection in a
	// trace. Synthetic traces and the simulator use these markers to
	// delimit disconnection periods (paper §5.1).
	OpDisconnect
	// OpReconnect marks the end of a disconnection.
	OpReconnect
	// OpSuspend marks the machine entering power-saving suspension
	// (paper §5.1.1: suspended time is excluded from statistics).
	OpSuspend
	// OpResume marks the machine resuming from suspension.
	OpResume
	// OpSymlink creates a symbolic link: Path is the new link, Path2 its
	// target. Symlinks are non-file objects that take almost no space
	// and are always hoarded (paper §4.6).
	OpSymlink
	nOps
)

var opNames = [nOps]string{
	OpInvalid:    "invalid",
	OpOpen:       "open",
	OpClose:      "close",
	OpExec:       "exec",
	OpExit:       "exit",
	OpFork:       "fork",
	OpStat:       "stat",
	OpCreate:     "create",
	OpDelete:     "delete",
	OpRename:     "rename",
	OpMkdir:      "mkdir",
	OpReadDir:    "readdir",
	OpChdir:      "chdir",
	OpDisconnect: "disconnect",
	OpReconnect:  "reconnect",
	OpSuspend:    "suspend",
	OpResume:     "resume",
	OpSymlink:    "symlink",
}

// String returns the lower-case operation name used by the text codec.
func (o Op) String() string {
	if o >= nOps {
		return fmt.Sprintf("op(%d)", uint8(o))
	}
	return opNames[o]
}

// ParseOp converts an operation name produced by Op.String back to the
// Op value. It reports false for unknown names.
func ParseOp(s string) (Op, bool) {
	for i, n := range opNames {
		if n == s && Op(i) != OpInvalid {
			return Op(i), true
		}
	}
	return OpInvalid, false
}

// IsFileRef reports whether the operation references a file path (as
// opposed to pure process or connectivity events).
func (o Op) IsFileRef() bool {
	switch o {
	case OpOpen, OpClose, OpExec, OpStat, OpCreate, OpDelete, OpRename,
		OpMkdir, OpReadDir, OpChdir, OpSymlink:
		return true
	}
	return false
}

// IsConnectivity reports whether the operation is a disconnection,
// reconnection, suspend or resume marker.
func (o Op) IsConnectivity() bool {
	switch o {
	case OpDisconnect, OpReconnect, OpSuspend, OpResume:
		return true
	}
	return false
}

// PID identifies a traced process.
type PID int32

// Event is one observed reference. Fields that do not apply to a given
// Op are left zero: for example connectivity markers carry no PID or
// path, and only OpRename uses Path2.
type Event struct {
	// Seq is a monotonically increasing sequence number assigned by the
	// trace source. The correlator relies on Seq ordering, not on Time,
	// to compute sequence-based measures (paper Definition 2/3).
	Seq uint64
	// Time is the (possibly simulated) wall-clock instant of the event.
	Time time.Time
	// PID is the process issuing the reference.
	PID PID
	// PPID is the parent process id; meaningful on OpFork (the forked
	// child is PID, the parent PPID) and OpExec.
	PPID PID
	// Op is the operation kind.
	Op Op
	// Path is the (possibly relative) pathname referenced.
	Path string
	// Path2 is the rename destination for OpRename.
	Path2 string
	// Prog is the program name of the issuing process when known; used
	// by the meaningless-process history (paper §4.1).
	Prog string
	// Failed records that the traced call returned an error. Calls are
	// traced after completion so success is known (paper §4.11).
	Failed bool
	// Uid is the numeric user id of the caller; superuser (0) calls are
	// mostly ignored to avoid deadlock-style feedback (paper §4.10).
	Uid int32
}

// String renders the event in the single-line text-codec form.
func (e Event) String() string {
	return fmt.Sprintf("%d %d %d %d %s %q %q %q %t %d",
		e.Seq, e.Time.UnixNano(), e.PID, e.PPID, e.Op,
		e.Path, e.Path2, e.Prog, e.Failed, e.Uid)
}

// Clock generates monotonically increasing simulated time and sequence
// numbers for synthetic trace construction.
type Clock struct {
	seq uint64
	now time.Time
}

// NewClock returns a Clock starting at the given instant.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time { return c.now }

// Seq returns the last sequence number issued.
func (c *Clock) Seq() uint64 { return c.seq }

// Advance moves simulated time forward by d.
func (c *Clock) Advance(d time.Duration) { c.now = c.now.Add(d) }

// Stamp fills in the next sequence number and current time on e and
// returns it.
func (c *Clock) Stamp(e Event) Event {
	c.seq++
	e.Seq = c.seq
	e.Time = c.now
	return e
}
