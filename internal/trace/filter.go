package trace

import "time"

// Stream filters: utilities for slicing traces by time, process, or
// predicate. The analysis tooling (cmd/seertrace) and tests use these
// to isolate sub-traces — e.g. one disconnection period or one
// process tree — without re-reading files.

// Filter returns the events for which keep returns true, preserving
// order. The input slice is not modified.
func Filter(events []Event, keep func(Event) bool) []Event {
	var out []Event
	for _, ev := range events {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Between returns the events with Time in [from, to).
func Between(events []Event, from, to time.Time) []Event {
	return Filter(events, func(ev Event) bool {
		return !ev.Time.Before(from) && ev.Time.Before(to)
	})
}

// ByPID returns the events of one process.
func ByPID(events []Event, pid PID) []Event {
	return Filter(events, func(ev Event) bool { return ev.PID == pid })
}

// ProcessTree returns the events of a process and all its descendants
// (following OpFork edges in trace order).
func ProcessTree(events []Event, root PID) []Event {
	member := map[PID]bool{root: true}
	return Filter(events, func(ev Event) bool {
		if ev.Op == OpFork && member[ev.PPID] {
			member[ev.PID] = true
		}
		return member[ev.PID]
	})
}

// FileRefs returns only successful file references (the inputs that
// matter to hoarding analysis), dropping connectivity markers, process
// lifecycle events and failed calls.
func FileRefs(events []Event) []Event {
	return Filter(events, func(ev Event) bool {
		return ev.Op.IsFileRef() && !ev.Failed
	})
}

// Paths returns the distinct pathnames referenced, in first-seen order.
func Paths(events []Event) []string {
	seen := make(map[string]bool)
	var out []string
	for _, ev := range events {
		if !ev.Op.IsFileRef() || ev.Path == "" || seen[ev.Path] {
			continue
		}
		seen[ev.Path] = true
		out = append(out, ev.Path)
	}
	return out
}

// Disconnections extracts the [disconnect, reconnect) spans from a
// trace's connectivity markers. An unterminated final disconnection is
// closed at the last event's time.
func Disconnections(events []Event) [][2]time.Time {
	var out [][2]time.Time
	var start time.Time
	open := false
	for _, ev := range events {
		switch ev.Op {
		case OpDisconnect:
			if !open {
				start = ev.Time
				open = true
			}
		case OpReconnect:
			if open {
				out = append(out, [2]time.Time{start, ev.Time})
				open = false
			}
		}
	}
	if open && len(events) > 0 {
		out = append(out, [2]time.Time{start, events[len(events)-1].Time})
	}
	return out
}
