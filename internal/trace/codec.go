package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The text codec stores one event per line:
//
//	seq timeNanos pid ppid op "path" "path2" "prog" failed uid
//
// Paths and program names are quoted with strconv.Quote so embedded
// spaces and non-ASCII names round-trip. Lines beginning with '#' and
// blank lines are ignored on read, so traces can carry comments.

// Writer serializes events to an io.Writer in the text codec.
type Writer struct {
	bw  *bufio.Writer
	err error
	n   int
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Write appends one event. Errors are sticky and returned from Write
// and Flush.
func (w *Writer) Write(e Event) error {
	if w.err != nil {
		return w.err
	}
	_, w.err = fmt.Fprintf(w.bw, "%d %d %d %d %s %s %s %s %t %d\n",
		e.Seq, e.Time.UnixNano(), e.PID, e.PPID, e.Op,
		strconv.Quote(e.Path), strconv.Quote(e.Path2),
		strconv.Quote(e.Prog), e.Failed, e.Uid)
	if w.err == nil {
		w.n++
	}
	return w.err
}

// Count returns the number of events successfully written.
func (w *Writer) Count() int { return w.n }

// Flush writes any buffered data to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Reader parses events from an io.Reader in the text codec.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader consuming r. Long pathnames are supported
// up to 1 MiB per line.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Read returns the next event, or io.EOF after the last one.
func (r *Reader) Read() (Event, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseLine(line)
		if err != nil {
			return Event{}, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		return ev, nil
	}
	if err := r.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// ReadAll consumes the remaining events.
func (r *Reader) ReadAll() ([]Event, error) {
	var evs []Event
	for {
		ev, err := r.Read()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
}

func parseLine(line string) (Event, error) {
	var e Event
	fields, err := splitQuoted(line)
	if err != nil {
		return e, err
	}
	if len(fields) != 10 {
		return e, fmt.Errorf("want 10 fields, got %d", len(fields))
	}
	seq, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return e, fmt.Errorf("seq: %w", err)
	}
	nanos, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return e, fmt.Errorf("time: %w", err)
	}
	pid, err := strconv.ParseInt(fields[2], 10, 32)
	if err != nil {
		return e, fmt.Errorf("pid: %w", err)
	}
	ppid, err := strconv.ParseInt(fields[3], 10, 32)
	if err != nil {
		return e, fmt.Errorf("ppid: %w", err)
	}
	op, ok := ParseOp(fields[4])
	if !ok {
		return e, fmt.Errorf("unknown op %q", fields[4])
	}
	path, err := strconv.Unquote(fields[5])
	if err != nil {
		return e, fmt.Errorf("path: %w", err)
	}
	path2, err := strconv.Unquote(fields[6])
	if err != nil {
		return e, fmt.Errorf("path2: %w", err)
	}
	prog, err := strconv.Unquote(fields[7])
	if err != nil {
		return e, fmt.Errorf("prog: %w", err)
	}
	failed, err := strconv.ParseBool(fields[8])
	if err != nil {
		return e, fmt.Errorf("failed: %w", err)
	}
	uid, err := strconv.ParseInt(fields[9], 10, 32)
	if err != nil {
		return e, fmt.Errorf("uid: %w", err)
	}
	e = Event{
		Seq:    seq,
		Time:   time.Unix(0, nanos),
		PID:    PID(pid),
		PPID:   PID(ppid),
		Op:     op,
		Path:   path,
		Path2:  path2,
		Prog:   prog,
		Failed: failed,
		Uid:    int32(uid),
	}
	return e, nil
}

// splitQuoted splits on spaces while keeping strconv.Quote-d strings as
// single fields.
func splitQuoted(line string) ([]string, error) {
	var fields []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated quote")
			}
			fields = append(fields, line[i:j+1])
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' {
			j++
		}
		fields = append(fields, line[i:j])
		i = j
	}
	return fields, nil
}
