package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTextReader asserts the text codec reader never panics and either
// errors or round-trips cleanly.
func FuzzTextReader(f *testing.F) {
	f.Add(`1 1000 2 3 open "/a" "" "cc" false 1000`)
	f.Add("# comment\n\n")
	f.Add(`1 1000 2 3 open "unterminated`)
	f.Add(`x y z`)
	f.Fuzz(func(t *testing.T, src string) {
		evs, err := NewReader(strings.NewReader(src)).ReadAll()
		if err != nil {
			return
		}
		// Whatever parsed must re-encode and re-parse identically.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, ev := range evs {
			if err := w.Write(ev); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(again) != len(evs) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(evs))
		}
		for i := range evs {
			if again[i].String() != evs[i].String() {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}

// FuzzBinaryReader asserts the binary codec reader never panics on
// corrupt input.
func FuzzBinaryReader(f *testing.F) {
	var valid bytes.Buffer
	bw := NewBinaryWriter(&valid)
	for _, e := range sampleEvents() {
		bw.Write(e)
	}
	bw.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("\x07SEERTRC\x01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := NewBinaryReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq < evs[i-1].Seq {
				t.Fatal("binary reader produced decreasing sequence")
			}
		}
	})
}
