package trace

import (
	"testing"
	"time"
)

func filterFixture() []Event {
	clk := NewClock(time.Unix(0, 0))
	mk := func(pid PID, ppid PID, op Op, path string, gap time.Duration) Event {
		clk.Advance(gap)
		return clk.Stamp(Event{PID: pid, PPID: ppid, Op: op, Path: path, Uid: 1000})
	}
	return []Event{
		mk(1, 0, OpOpen, "/a", time.Second),
		mk(1, 0, OpClose, "/a", time.Second),
		mk(0, 0, OpDisconnect, "", time.Second),
		mk(2, 1, OpFork, "", time.Second),
		mk(2, 0, OpOpen, "/b", time.Second),
		mk(3, 2, OpFork, "", time.Second),
		mk(3, 0, OpStat, "/c", time.Second),
		mk(3, 0, OpStat, "/c", time.Second), // duplicate path
		mk(9, 0, OpOpen, "/fail", time.Second),
		mk(0, 0, OpReconnect, "", time.Second),
		mk(0, 0, OpDisconnect, "", time.Second),
	}
}

func TestBetween(t *testing.T) {
	evs := filterFixture()
	got := Between(evs, time.Unix(2, 0), time.Unix(5, 0))
	if len(got) != 3 {
		t.Fatalf("Between = %d events, want 3", len(got))
	}
}

func TestByPID(t *testing.T) {
	evs := filterFixture()
	if got := ByPID(evs, 3); len(got) != 3 {
		t.Fatalf("ByPID(3) = %d events, want fork + 2 stats", len(got))
	}
	if got := ByPID(evs, 42); len(got) != 0 {
		t.Fatal("phantom pid events")
	}
}

func TestProcessTree(t *testing.T) {
	evs := filterFixture()
	got := ProcessTree(evs, 1)
	// pid 1 (2 events) + fork of 2 + open /b + fork of 3 + 2 stats = 7.
	if len(got) != 7 {
		t.Fatalf("ProcessTree(1) = %d events, want 7", len(got))
	}
	got = ProcessTree(evs, 2)
	if len(got) != 5 {
		t.Fatalf("ProcessTree(2) = %d events, want 5 (2's fork arrival included)", len(got))
	}
}

func TestFileRefsAndPaths(t *testing.T) {
	evs := filterFixture()
	evs[8].Failed = true // the /fail open
	refs := FileRefs(evs)
	for _, ev := range refs {
		if ev.Op.IsConnectivity() || ev.Failed || ev.Op == OpFork {
			t.Fatalf("non-file ref leaked: %+v", ev)
		}
	}
	paths := Paths(evs)
	want := []string{"/a", "/b", "/c", "/fail"}
	if len(paths) != len(want) {
		t.Fatalf("Paths = %v, want %v", paths, want)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("Paths[%d] = %s, want %s", i, paths[i], want[i])
		}
	}
}

func TestDisconnectionsSpans(t *testing.T) {
	evs := filterFixture()
	spans := Disconnections(evs)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want closed + unterminated", len(spans))
	}
	if !spans[0][0].Equal(time.Unix(3, 0)) || !spans[0][1].Equal(time.Unix(10, 0)) {
		t.Errorf("first span = %v", spans[0])
	}
	// The unterminated disconnection closes at the last event.
	if !spans[1][1].Equal(evs[len(evs)-1].Time) {
		t.Errorf("unterminated span end = %v", spans[1][1])
	}
	if Disconnections(nil) != nil {
		t.Error("nil events should yield nil spans")
	}
}

func TestFilterDoesNotMutate(t *testing.T) {
	evs := filterFixture()
	n := len(evs)
	Filter(evs, func(Event) bool { return false })
	if len(evs) != n {
		t.Fatal("Filter mutated input")
	}
}
