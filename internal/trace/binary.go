package trace

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"github.com/fmg/seer/internal/wire"
)

// The binary trace codec: a compact alternative to the text format for
// month-scale traces (the paper's machine G logged ~326 million
// operations; text encoding such traces is painful). The format
// delta-encodes sequence numbers and timestamps and interns pathnames
// in a string table, so steady-state events cost a few bytes each.
const (
	binMagic   = "SEERTRC"
	binVersion = 1
)

// BinaryWriter serializes events in the binary trace format.
type BinaryWriter struct {
	w       *wire.Writer
	started bool
	lastSeq uint64
	lastNs  int64
	strings map[string]uint64
	n       int
}

// NewBinaryWriter returns a BinaryWriter emitting to w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{
		w:       wire.NewWriter(w),
		strings: make(map[string]uint64),
	}
}

// intern writes a string reference: index for known strings, index+
// literal for new ones.
func (bw *BinaryWriter) intern(s string) {
	if idx, ok := bw.strings[s]; ok {
		bw.w.U64(idx)
		return
	}
	idx := uint64(len(bw.strings)) + 1
	bw.strings[s] = idx
	bw.w.U64(0) // 0 marks a new string
	bw.w.Str(s)
}

// Write appends one event.
func (bw *BinaryWriter) Write(e Event) error {
	if !bw.started {
		bw.started = true
		bw.w.Str(binMagic)
		bw.w.U64(binVersion)
	}
	bw.w.U64(e.Seq - bw.lastSeq)
	bw.lastSeq = e.Seq
	ns := e.Time.UnixNano()
	bw.w.I64(ns - bw.lastNs)
	bw.lastNs = ns
	bw.w.U64(uint64(e.Op))
	bw.w.I64(int64(e.PID))
	bw.w.I64(int64(e.PPID))
	bw.intern(e.Path)
	bw.intern(e.Path2)
	bw.intern(e.Prog)
	bw.w.Bool(e.Failed)
	bw.w.I64(int64(e.Uid))
	if err := bw.w.Err(); err != nil {
		return err
	}
	bw.n++
	return nil
}

// Count returns the number of events written.
func (bw *BinaryWriter) Count() int { return bw.n }

// Flush completes the stream.
func (bw *BinaryWriter) Flush() error {
	if !bw.started {
		bw.started = true
		bw.w.Str(binMagic)
		bw.w.U64(binVersion)
	}
	return bw.w.Flush()
}

// BinaryReader parses the binary trace format.
type BinaryReader struct {
	r       *wire.Reader
	started bool
	lastSeq uint64
	lastNs  int64
	strings []string
	// err is the sticky decode-level error (bad string index, invalid
	// op); IO/format errors live in the wire reader.
	err error
}

// NewBinaryReader returns a BinaryReader consuming r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: wire.NewReader(r)}
}

func (br *BinaryReader) internedString() string {
	idx := br.r.U64()
	if idx == 0 {
		s := br.r.Str()
		br.strings = append(br.strings, s)
		return s
	}
	if idx > uint64(len(br.strings)) {
		if br.r.Err() == nil && br.err == nil {
			br.err = fmt.Errorf("trace: bad string index %d", idx)
		}
		return ""
	}
	return br.strings[idx-1]
}

// Read returns the next event or io.EOF.
func (br *BinaryReader) Read() (Event, error) {
	if br.err != nil {
		return Event{}, br.err
	}
	if !br.started {
		magic := br.r.Str()
		if err := br.r.Err(); err != nil {
			return Event{}, err
		}
		if magic != binMagic {
			return Event{}, fmt.Errorf("trace: not a binary trace (magic %q)", magic)
		}
		if v := br.r.U64(); v != binVersion {
			return Event{}, fmt.Errorf("trace: unsupported binary trace version %d", v)
		}
		br.started = true
	}
	dseq := br.r.U64()
	if err := br.r.Err(); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, err
	}
	br.lastSeq += dseq
	br.lastNs += br.r.I64()
	e := Event{
		Seq:  br.lastSeq,
		Time: time.Unix(0, br.lastNs),
		Op:   Op(br.r.U64()),
		PID:  PID(br.r.I64()),
		PPID: PID(br.r.I64()),
	}
	e.Path = br.internedString()
	e.Path2 = br.internedString()
	e.Prog = br.internedString()
	e.Failed = br.r.Bool()
	e.Uid = int32(br.r.I64())
	if br.err != nil {
		return Event{}, br.err
	}
	if err := br.r.Err(); err != nil {
		return Event{}, fmt.Errorf("trace: truncated binary event: %w", err)
	}
	if e.Op == OpInvalid || e.Op >= nOps {
		return Event{}, fmt.Errorf("trace: invalid op %d", uint8(e.Op))
	}
	return e, nil
}

// ReadAuto detects the trace format (the binary format begins with a
// 7-byte length prefix, text traces with a digit or '#') and reads all
// events.
func ReadAuto(r io.Reader) ([]Event, error) {
	br := make([]byte, 1)
	if _, err := io.ReadFull(r, br); err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, err
	}
	rest := io.MultiReader(bytes.NewReader(br), r)
	if br[0] == byte(len(binMagic)) {
		return NewBinaryReader(rest).ReadAll()
	}
	return NewReader(rest).ReadAll()
}

// ReadAll consumes the remaining events.
func (br *BinaryReader) ReadAll() ([]Event, error) {
	var evs []Event
	for {
		ev, err := br.Read()
		if err == io.EOF {
			return evs, nil
		}
		if err != nil {
			return evs, err
		}
		evs = append(evs, ev)
	}
}
