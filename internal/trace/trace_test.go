package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestOpStringParseRoundTrip(t *testing.T) {
	for op := OpOpen; op < nOps; op++ {
		got, ok := ParseOp(op.String())
		if !ok {
			t.Fatalf("ParseOp(%q) not recognized", op.String())
		}
		if got != op {
			t.Errorf("ParseOp(%q) = %v, want %v", op.String(), got, op)
		}
	}
}

func TestParseOpRejectsUnknown(t *testing.T) {
	if _, ok := ParseOp("frobnicate"); ok {
		t.Error("ParseOp accepted unknown op")
	}
	if _, ok := ParseOp("invalid"); ok {
		t.Error("ParseOp accepted the invalid sentinel")
	}
}

func TestOpClassification(t *testing.T) {
	fileRefs := []Op{OpOpen, OpClose, OpExec, OpStat, OpCreate, OpDelete,
		OpRename, OpMkdir, OpReadDir, OpChdir}
	for _, op := range fileRefs {
		if !op.IsFileRef() {
			t.Errorf("%v.IsFileRef() = false, want true", op)
		}
		if op.IsConnectivity() {
			t.Errorf("%v.IsConnectivity() = true, want false", op)
		}
	}
	conns := []Op{OpDisconnect, OpReconnect, OpSuspend, OpResume}
	for _, op := range conns {
		if op.IsFileRef() {
			t.Errorf("%v.IsFileRef() = true, want false", op)
		}
		if !op.IsConnectivity() {
			t.Errorf("%v.IsConnectivity() = false, want true", op)
		}
	}
	if OpExit.IsFileRef() || OpFork.IsFileRef() {
		t.Error("exit/fork should not be file references")
	}
}

func TestClockStamping(t *testing.T) {
	start := time.Unix(1000, 0)
	c := NewClock(start)
	e1 := c.Stamp(Event{Op: OpOpen, Path: "/a"})
	if e1.Seq != 1 || !e1.Time.Equal(start) {
		t.Fatalf("first stamp = seq %d time %v", e1.Seq, e1.Time)
	}
	c.Advance(3 * time.Second)
	e2 := c.Stamp(Event{Op: OpClose, Path: "/a"})
	if e2.Seq != 2 {
		t.Errorf("second seq = %d, want 2", e2.Seq)
	}
	if want := start.Add(3 * time.Second); !e2.Time.Equal(want) {
		t.Errorf("second time = %v, want %v", e2.Time, want)
	}
	if c.Seq() != 2 {
		t.Errorf("Seq() = %d, want 2", c.Seq())
	}
}

func sampleEvents() []Event {
	base := time.Unix(500, 123456789)
	return []Event{
		{Seq: 1, Time: base, PID: 100, PPID: 1, Op: OpExec,
			Path: "/usr/bin/cc", Prog: "cc", Uid: 1000},
		{Seq: 2, Time: base.Add(time.Millisecond), PID: 100, Op: OpOpen,
			Path: "/home/u/main file.c", Prog: "cc", Uid: 1000},
		{Seq: 3, Time: base.Add(2 * time.Millisecond), PID: 100, Op: OpRename,
			Path: "/tmp/cc001.o", Path2: "/home/u/main.o", Prog: "cc", Uid: 1000},
		{Seq: 4, Time: base.Add(3 * time.Millisecond), PID: 100, Op: OpStat,
			Path: "/home/u/üñïçödé.h", Prog: "cc", Failed: true, Uid: 1000},
		{Seq: 5, Time: base.Add(time.Second), Op: OpDisconnect},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != len(events) {
		t.Errorf("Count = %d, want %d", w.Count(), len(events))
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if !got[i].Time.Equal(events[i].Time) {
			t.Errorf("event %d time = %v, want %v", i, got[i].Time, events[i].Time)
		}
		got[i].Time = events[i].Time // Equal but different monotonic/loc repr.
		if !reflect.DeepEqual(got[i], events[i]) {
			t.Errorf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n" + sampleEvents()[0].String() + "\n   \n# end\n"
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d events, want 1", len(got))
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []struct {
		name, line string
	}{
		{"too few fields", `1 2 3 4 open "/a" "" "x" false`},
		{"bad op", `1 2 3 4 explode "/a" "" "x" false 0`},
		{"bad seq", `x 2 3 4 open "/a" "" "x" false 0`},
		{"bad bool", `1 2 3 4 open "/a" "" "x" maybe 0`},
		{"unterminated quote", `1 2 3 4 open "/a "" "x" false 0`},
		{"bad pid", `1 2 x 4 open "/a" "" "x" false 0`},
	}
	for _, c := range cases {
		_, err := NewReader(strings.NewReader(c.line)).Read()
		if err == nil || err == io.EOF {
			t.Errorf("%s: Read() err = %v, want parse error", c.name, err)
		}
	}
}

func TestReadAfterEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("second err = %v, want io.EOF", err)
	}
}

// TestCodecQuick property: any event with printable or not path strings
// survives a write/read cycle.
func TestCodecQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seq uint64, pid, ppid int32, pathBytes, path2Bytes []byte, failed bool, uid int32) bool {
		op := Op(1 + rng.Intn(int(nOps)-1))
		e := Event{
			Seq:    seq,
			Time:   time.Unix(0, rng.Int63()),
			PID:    PID(pid),
			PPID:   PID(ppid),
			Op:     op,
			Path:   string(pathBytes),
			Path2:  string(path2Bytes),
			Prog:   "p",
			Failed: failed,
			Uid:    uid,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(e) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).Read()
		if err != nil {
			return false
		}
		return got.Seq == e.Seq && got.PID == e.PID && got.PPID == e.PPID &&
			got.Op == e.Op && got.Path == e.Path && got.Path2 == e.Path2 &&
			got.Failed == e.Failed && got.Uid == e.Uid &&
			got.Time.Equal(e.Time)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWriterStickyError(t *testing.T) {
	w := NewWriter(failWriter{})
	e := sampleEvents()[0]
	// Fill the buffer until the underlying writer is hit.
	var err error
	for i := 0; i < 100000; i++ {
		if err = w.Write(e); err != nil {
			break
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		t.Fatal("expected error from failing writer")
	}
	if got := w.Write(e); got == nil {
		t.Error("Write after error = nil, want sticky error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }
