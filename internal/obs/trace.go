package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one traced unit of work — for seerd, one request
// entering the gateway or one batch of strace events from ingestion
// through correlation to the plan built over them. Zero means "no
// trace".
type TraceID uint64

// String renders the id as fixed-width hex, the form logs and the
// /debug/traces query parameter use.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID parses the hex form back into an id. A 32-digit W3C
// trace id (the wire form) is accepted by taking its low 64 bits.
func ParseTraceID(s string) (TraceID, error) {
	if len(s) > 16 {
		s = s[len(s)-16:]
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %v", s, err)
	}
	return TraceID(v), nil
}

// SpanID identifies one span within a trace; children reference their
// parent span's id across process boundaries. Zero means "no span".
type SpanID uint64

// String renders the id as fixed-width hex, the traceparent wire form.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// SpanContext is the propagated portion of a span: the trace it
// belongs to and the span's own id, which child spans on either side
// of an HTTP hop record as their parent.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// TraceparentHeader carries trace context across process boundaries in
// the W3C trace-context form "00-<32 hex trace>-<16 hex span>-01".
// Trace and span ids are 64-bit here, so the trace id is zero-padded
// to 32 hex digits on the wire and the low 64 bits are taken back on
// extraction.
const TraceparentHeader = "traceparent"

// Inject writes sc into h as a traceparent header; an invalid context
// writes nothing.
func Inject(h http.Header, sc SpanContext) {
	if !sc.Valid() {
		return
	}
	h.Set(TraceparentHeader,
		fmt.Sprintf("00-%032x-%016x-01", uint64(sc.Trace), uint64(sc.Span)))
}

// Extract parses the traceparent header from h; ok reports whether a
// usable context was found.
func Extract(h http.Header) (SpanContext, bool) {
	return ParseTraceparent(h.Get(TraceparentHeader))
}

// ParseTraceparent parses one traceparent value. Unknown versions are
// tolerated (the fields we need sit in the same positions); a zero
// trace id or malformed field rejects the whole header.
func ParseTraceparent(v string) (SpanContext, bool) {
	parts := strings.Split(v, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || parts[0] == "ff" ||
		len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	tr, err := strconv.ParseUint(parts[1][16:], 16, 64)
	if err != nil || tr == 0 {
		return SpanContext{}, false
	}
	sp, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	return SpanContext{Trace: TraceID(tr), Span: SpanID(sp)}, true
}

// spanCtxKey keys the SpanContext carried by a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc, for handing trace context
// through call chains that already take a context.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context carried by ctx, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// Attr is one span attribute (an event count, a cache disposition).
// Values are strings from small sets or rendered numbers — never file
// paths or other unbounded user data.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed stage of a trace. Parent is the id of the span
// that caused this one (zero for roots), possibly recorded by a tracer
// in another process.
type Span struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID
	Stage    string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Tracer hands out trace ids and keeps the most recent completed spans
// in a fixed ring buffer, cheap enough to leave on in production and
// inspectable at /debug/traces. All methods are safe for concurrent
// use.
type Tracer struct {
	next     atomic.Uint64
	nextSpan atomic.Uint64
	disabled atomic.Bool

	mu    sync.Mutex
	ring  []Span
	pos   int
	count uint64 // total spans ever recorded
	// pinned refcounts traces exempt from ring eviction (exemplar-
	// referenced traces); bounded by the number of exemplar slots.
	pinned map[TraceID]int
}

// NewTracer returns a tracer remembering the last capacity spans
// (minimum 16). Trace and span ids start from random bases so ids
// minted by different processes (gateway, shards, rumord) land in
// disjoint ranges and a propagated id never collides with a local one.
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	t := &Tracer{
		ring:   make([]Span, 0, capacity),
		pinned: make(map[TraceID]int),
	}
	t.next.Store(rand.Uint64())
	t.nextSpan.Store(rand.Uint64())
	return t
}

// NewTrace allocates a fresh trace id (monotonic within the process,
// never zero).
func (t *Tracer) NewTrace() TraceID {
	for {
		if id := TraceID(t.next.Add(1)); id != 0 {
			return id
		}
	}
}

// newSpanID allocates a fresh span id (never zero).
func (t *Tracer) newSpanID() SpanID {
	for {
		if id := SpanID(t.nextSpan.Add(1)); id != 0 {
			return id
		}
	}
}

// SetEnabled turns span recording on or off (on by default). While
// disabled, StartSpan and friends return nil — already a no-op at
// every call site — so the disabled hot path pays one atomic load.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.disabled.Store(!on)
	}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil && !t.disabled.Load() }

// Pin exempts a trace's spans from ring eviction (refcounted), so a
// trace referenced by a histogram exemplar stays reconstructable even
// while hotter traces churn the ring. Unpin releases one reference.
func (t *Tracer) Pin(id TraceID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	t.pinned[id]++
	t.mu.Unlock()
}

// Unpin releases one Pin reference on a trace.
func (t *Tracer) Unpin(id TraceID) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	if n := t.pinned[id]; n > 1 {
		t.pinned[id] = n - 1
	} else {
		delete(t.pinned, id)
	}
	t.mu.Unlock()
}

// Record stores a completed span in the ring. When full it evicts the
// oldest span of a non-pinned trace, shifting any older pinned spans
// up one slot so ring order stays oldest-first; if every buffered span
// is pinned it falls back to blind eviction rather than dropping the
// new span.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	n := len(t.ring)
	evict := 0
	if len(t.pinned) > 0 {
		evict = -1
		for i := 0; i < n; i++ {
			if t.pinned[t.ring[(t.pos+i)%n].Trace] == 0 {
				evict = i
				break
			}
		}
		if evict < 0 {
			evict = 0 // everything pinned: blind eviction
		}
	}
	for i := evict; i > 0; i-- {
		t.ring[(t.pos+i)%n] = t.ring[(t.pos+i-1)%n]
	}
	t.ring[t.pos] = s
	t.pos = (t.pos + 1) % n
}

// Count returns the total number of spans ever recorded (including
// those already evicted from the ring).
func (t *Tracer) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Spans returns the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.pos:]...)
	out = append(out, t.ring[:t.pos]...)
	return out
}

// TraceSpans returns the buffered spans of one trace, oldest first.
func (t *Tracer) TraceSpans(id TraceID) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// ActiveSpan is an in-progress span; End records it.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	ended atomic.Bool
}

// StartSpan begins a root-less span of the given trace and stage. A
// nil or disabled Tracer, or a zero id, returns a no-op nil span, so
// call sites need no guards.
func (t *Tracer) StartSpan(id TraceID, stage string) *ActiveSpan {
	if t == nil || id == 0 || t.disabled.Load() {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{
		Trace: id, ID: t.newSpanID(), Stage: stage, Start: time.Now()}}
}

// StartChild begins a span of sc's trace parented under sc's span —
// the receiving half of cross-process propagation, and the in-process
// way to nest work under an enclosing span.
func (t *Tracer) StartChild(sc SpanContext, stage string) *ActiveSpan {
	sp := t.StartSpan(sc.Trace, stage)
	if sp != nil {
		sp.span.Parent = sc.Span
	}
	return sp
}

// StartRoot allocates a fresh trace and begins its root span — the
// edge of a distributed trace (gateway request, ingestion batch).
func (t *Tracer) StartRoot(stage string) *ActiveSpan {
	if t == nil || t.disabled.Load() {
		return nil
	}
	return t.StartSpan(t.NewTrace(), stage)
}

// Context returns the span's propagation context (inject it into an
// outbound request, or parent a child under it); zero on a nil span.
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.span.Trace, Span: s.span.ID}
}

// Attr adds one attribute; it returns the span for chaining.
func (s *ActiveSpan) Attr(key, value string) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
	return s
}

// AttrInt adds one integer attribute.
func (s *ActiveSpan) AttrInt(key string, value int64) *ActiveSpan {
	return s.Attr(key, strconv.FormatInt(value, 10))
}

// End completes the span and records it; safe to call on a nil span and
// idempotent on double End.
func (s *ActiveSpan) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.span.Duration = time.Since(s.span.Start)
	s.t.Record(s.span)
}

// spanJSON is the /debug/traces wire form of one span.
type spanJSON struct {
	Trace      string  `json:"trace"`
	Span       string  `json:"span,omitempty"`
	Parent     string  `json:"parent,omitempty"`
	Stage      string  `json:"stage"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

// Handler serves the ring buffer as JSON: spans oldest first.
// ?trace=<hex id> filters to one trace; ?limit=<n> bounds the span
// count (default all buffered).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Spans()
		if q := req.URL.Query().Get("trace"); q != "" {
			id, err := ParseTraceID(q)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, s := range spans {
				if s.Trace == id {
					kept = append(kept, s)
				}
			}
			spans = kept
		}
		if q := req.URL.Query().Get("limit"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(spansJSON(spans))
	})
}

// spansJSON converts spans to the /debug/traces wire form.
func spansJSON(spans []Span) []spanJSON {
	out := make([]spanJSON, len(spans))
	for i, s := range spans {
		out[i] = spanJSON{
			Trace:      s.Trace.String(),
			Stage:      s.Stage,
			Start:      s.Start.UTC().Format(time.RFC3339Nano),
			DurationMS: float64(s.Duration) / float64(time.Millisecond),
			Attrs:      s.Attrs,
		}
		if s.ID != 0 {
			out[i].Span = s.ID.String()
		}
		if s.Parent != 0 {
			out[i].Parent = s.Parent.String()
		}
	}
	return out
}

// WriteJSON dumps the buffered spans (oldest first) in the
// /debug/traces wire form — the flight recorder's trace source.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spansJSON(t.Spans()))
}
