package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one traced unit of work — for seerd, one batch of
// strace events from ingestion through correlation to the plan built
// over them. Zero means "no trace".
type TraceID uint64

// String renders the id as fixed-width hex, the form logs and the
// /debug/traces query parameter use.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// ParseTraceID parses the hex form back into an id.
func ParseTraceID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %v", s, err)
	}
	return TraceID(v), nil
}

// Attr is one span attribute (an event count, a cache disposition).
// Values are strings from small sets or rendered numbers — never file
// paths or other unbounded user data.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one completed stage of a trace.
type Span struct {
	Trace    TraceID
	Stage    string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// Tracer hands out trace ids and keeps the most recent completed spans
// in a fixed ring buffer, cheap enough to leave on in production and
// inspectable at /debug/traces. All methods are safe for concurrent
// use.
type Tracer struct {
	next atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	pos   int
	count uint64 // total spans ever recorded
}

// NewTracer returns a tracer remembering the last capacity spans
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// NewTrace allocates a fresh trace id (monotonic within the process).
func (t *Tracer) NewTrace() TraceID { return TraceID(t.next.Add(1)) }

// Record stores a completed span in the ring, evicting the oldest when
// full.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.pos] = s
	t.pos = (t.pos + 1) % len(t.ring)
}

// Count returns the total number of spans ever recorded (including
// those already evicted from the ring).
func (t *Tracer) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Spans returns the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.pos:]...)
	out = append(out, t.ring[:t.pos]...)
	return out
}

// TraceSpans returns the buffered spans of one trace, oldest first.
func (t *Tracer) TraceSpans(id TraceID) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out
}

// ActiveSpan is an in-progress span; End records it.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	ended atomic.Bool
}

// StartSpan begins a span of the given trace and stage. A nil Tracer or
// zero id returns a no-op span, so call sites need no guards.
func (t *Tracer) StartSpan(id TraceID, stage string) *ActiveSpan {
	if t == nil || id == 0 {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{Trace: id, Stage: stage, Start: time.Now()}}
}

// Attr adds one attribute; it returns the span for chaining.
func (s *ActiveSpan) Attr(key, value string) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.span.Attrs = append(s.span.Attrs, Attr{Key: key, Value: value})
	return s
}

// AttrInt adds one integer attribute.
func (s *ActiveSpan) AttrInt(key string, value int64) *ActiveSpan {
	return s.Attr(key, strconv.FormatInt(value, 10))
}

// End completes the span and records it; safe to call on a nil span and
// idempotent on double End.
func (s *ActiveSpan) End() {
	if s == nil || s.ended.Swap(true) {
		return
	}
	s.span.Duration = time.Since(s.span.Start)
	s.t.Record(s.span)
}

// spanJSON is the /debug/traces wire form of one span.
type spanJSON struct {
	Trace      string  `json:"trace"`
	Stage      string  `json:"stage"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

// Handler serves the ring buffer as JSON: newest trace first, spans of
// a trace oldest first. ?trace=<hex id> filters to one trace;
// ?limit=<n> bounds the span count (default all buffered).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		spans := t.Spans()
		if q := req.URL.Query().Get("trace"); q != "" {
			id, err := ParseTraceID(q)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, s := range spans {
				if s.Trace == id {
					kept = append(kept, s)
				}
			}
			spans = kept
		}
		if q := req.URL.Query().Get("limit"); q != "" {
			if n, err := strconv.Atoi(q); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		out := make([]spanJSON, len(spans))
		for i, s := range spans {
			out[i] = spanJSON{
				Trace:      s.Trace.String(),
				Stage:      s.Stage,
				Start:      s.Start.UTC().Format(time.RFC3339Nano),
				DurationMS: float64(s.Duration) / float64(time.Millisecond),
				Attrs:      s.Attrs,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
}
