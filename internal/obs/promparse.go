package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its sorted
// rendered label set (`{k="v",...}` or empty), and the sample value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Key returns the name with the label set appended, the form scrape
// maps are keyed by.
func (s Sample) Key() string { return s.Name + s.Labels }

// ParseProm parses Prometheus text-format exposition (the subset
// /metrics emits: HELP/TYPE comments, samples with optional labels, no
// timestamps) into a key → value map. It is the consuming half of
// WritePrometheus, used by seerctl and by tests asserting on scrapes.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: /metrics line %d: %v", lineNo, err)
		}
		out[s.Key()] = s.Value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// stripExemplar removes an OpenMetrics exemplar suffix
// (` # {trace_id="…"} value`) from a sample line. Label values here
// come from small closed sets that never contain " # " (DESIGN.md §12
// cardinality rules), so splitting on the marker is safe.
func stripExemplar(line string) string {
	if i := strings.Index(line, " # "); i >= 0 {
		return line[:i]
	}
	return line
}

// ExemplarTraceID extracts the exemplar trace id from a raw exposition
// line, if it carries one.
func ExemplarTraceID(line string) (TraceID, bool) {
	i := strings.Index(line, `# {trace_id="`)
	if i < 0 {
		return 0, false
	}
	rest := line[i+len(`# {trace_id="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	id, err := ParseTraceID(rest[:j])
	if err != nil {
		return 0, false
	}
	return id, true
}

// parseSample parses one sample line into name, canonical label string,
// and value.
func parseSample(line string) (Sample, error) {
	line = stripExemplar(line)
	var name, rest string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return Sample{}, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := canonLabels(line[i+1 : j])
		if err != nil {
			return Sample{}, err
		}
		rest = strings.TrimSpace(line[j+1:])
		v, err := parseValue(rest)
		if err != nil {
			return Sample{}, err
		}
		return Sample{Name: name, Labels: labels, Value: v}, nil
	}
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return Sample{}, fmt.Errorf("no value in %q", line)
	}
	name = line[:i]
	v, err := parseValue(strings.TrimSpace(line[i:]))
	if err != nil {
		return Sample{}, err
	}
	return Sample{Name: name, Value: v}, nil
}

func parseValue(s string) (float64, error) {
	// A trailing timestamp (which we never emit) would appear as a
	// second field; take the first.
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		s = s[:i]
	}
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

// canonLabels re-renders a label body with pairs sorted by key so that
// scrapes from different writers compare equal.
func canonLabels(body string) (string, error) {
	if strings.TrimSpace(body) == "" {
		return "", nil
	}
	var pairs []string
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return "", fmt.Errorf("bad label pair in %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return "", fmt.Errorf("unquoted label value in %q", body)
		}
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return "", fmt.Errorf("unterminated label value in %q", body)
		}
		pairs = append(pairs, fmt.Sprintf(`%s="%s"`, key, rest[1:end]))
		body = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		body = strings.TrimSpace(body)
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}", nil
}
