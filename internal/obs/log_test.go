package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
}

func newTestLogger() (*Logger, *strings.Builder) {
	var b strings.Builder
	l := NewLogger(&syncBuilder{b: &b})
	l.st.now = fixedClock
	return l, &b
}

// syncBuilder serializes writes so the test can read the builder after
// concurrent logging without a race.
type syncBuilder struct {
	mu sync.Mutex
	b  *strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func TestLoggerText(t *testing.T) {
	l, b := newTestLogger()
	l.Info("plan built", "files", 12, "dur", "40ms")
	got := b.String()
	want := `ts=2026-08-05T12:00:00.000Z level=info msg="plan built" files=12 dur=40ms` + "\n"
	if got != want {
		t.Fatalf("got %q\nwant %q", got, want)
	}
}

func TestLoggerWithTags(t *testing.T) {
	l, b := newTestLogger()
	tl := l.With("component", "tailer")
	tl.Warn("shed", "n", 3)
	if got := b.String(); !strings.Contains(got, "component=tailer") || !strings.Contains(got, "level=warn") {
		t.Fatalf("got %q", got)
	}
	// Child shares the parent's level.
	l.SetLevel(LevelError)
	b.Reset()
	tl.Warn("dropped")
	if b.Len() != 0 {
		t.Fatalf("warn emitted past error level: %q", b.String())
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	l, b := newTestLogger()
	l.Debug("hidden")
	if b.Len() != 0 {
		t.Fatalf("debug emitted at info level: %q", b.String())
	}
	l.SetLevel(LevelDebug)
	l.Debug("shown")
	if !strings.Contains(b.String(), "level=debug") {
		t.Fatalf("debug missing: %q", b.String())
	}
	if !l.Enabled(LevelDebug) {
		t.Fatal("Enabled(debug) = false at debug level")
	}
}

func TestLoggerJSON(t *testing.T) {
	l, b := newTestLogger()
	l.SetJSON(true)
	l.Error("boom", "err", errors.New("bad\nstack"), "stage", "feeder")
	var m map[string]string
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("not valid JSON: %v\n%q", err, b.String())
	}
	if m["level"] != "error" || m["msg"] != "boom" || m["stage"] != "feeder" {
		t.Fatalf("parsed %v", m)
	}
	// Error values truncate at the first newline.
	if m["err"] != "bad" {
		t.Fatalf("err = %q, want %q", m["err"], "bad")
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, b := newTestLogger()
	l.Info("x", "path", "/tmp/a b", "empty", "")
	got := b.String()
	if !strings.Contains(got, `path="/tmp/a b"`) || !strings.Contains(got, `empty=""`) {
		t.Fatalf("got %q", got)
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"WARN": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	l, b := newTestLogger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := l.With("worker", Level(i).String())
			for j := 0; j < 200; j++ {
				cl.Info("tick", "j", j)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 1600 {
		t.Fatalf("got %d lines, want 1600", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "ts=") || !strings.Contains(ln, "msg=tick") {
			t.Fatalf("torn line %q", ln)
		}
	}
}
