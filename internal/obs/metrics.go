// Package obs is SEER's telemetry substrate: a dependency-free metrics
// registry with Prometheus text-format exposition, a structured leveled
// logger, and lightweight trace spans kept in a ring buffer.
//
// The paper's evaluation (§5) is entirely about measured behaviour —
// miss-free hoard size, time to first miss, live usage statistics — so
// a running seerd must expose the same quantities. Every layer of the
// pipeline (observer, correlator, clusterer, hoard manager, replication
// substrate, supervisor) registers its instruments on one Registry, and
// /metrics serves them all in a form any Prometheus-compatible scraper
// understands. Nothing here imports anything outside the standard
// library, so any internal package may depend on obs without cycles.
//
// Naming and cardinality rules (enforced by convention, documented in
// DESIGN.md §12): every series is prefixed seer_, counters end in
// _total, sizes in _bytes, durations are histograms in seconds ending
// in _seconds, and label values come from small closed sets (stage
// names, protocol endpoints, severities) — never from user data such as
// file paths.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 instrument, safe for
// concurrent use. Methods on a nil Counter are no-ops, so optionally
// instrumented components need no guards.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instrument for current values (depths, sizes,
// states), safe for concurrent use. Values are int64: every SEER gauge
// is a count, a byte size, or a small enum. Methods on a nil Gauge are
// no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency histogram buckets, in seconds:
// 100µs to 10s, wide enough for both a cheap BuildPairs over a small
// table and a wedged clustering bumping into the plan deadline.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// exemplar links one histogram bucket to the trace of its most recent
// traced observation, so a latency spike in the exposition points at a
// reconstructable trace.
type exemplar struct {
	trace TraceID
	value float64
	at    time.Time
}

// Histogram is a fixed-bucket histogram with atomic counters: Observe
// is lock-free, making it safe on hot paths. Bucket bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64

	// exemplars holds the per-bucket most recent traced observation
	// (nil until one lands); tracer, when set via RetainExemplars,
	// pins referenced traces against span-ring eviction.
	exemplars []atomic.Pointer[exemplar]
	tracer    atomic.Pointer[Tracer]
}

// NewHistogram returns a standalone histogram with the given bucket
// upper bounds (sorted internally, +Inf implied). Registry.Histogram is
// the registered variant; this one is for throwaway aggregation — the
// load harness builds a fresh histogram per measurement step so each
// step's quantiles are independent.
func NewHistogram(bounds []float64) *Histogram {
	return newHistogram(bounds)
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(b)+1),
	}
}

// Observe records one sample; a nil Histogram drops it.
func (h *Histogram) Observe(v float64) { h.ObserveTrace(v, 0) }

// ObserveTrace records one sample and, when id is nonzero, retains it
// as the bucket's exemplar: the exposition's bucket line then carries
// the trace id of its most recent observation (OpenMetrics
// `# {trace_id=...}` syntax). With a tracer attached via
// RetainExemplars, the referenced trace is pinned in the span ring
// until a newer traced observation displaces it.
func (h *Histogram) ObserveTrace(v float64, id TraceID) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	if id == 0 {
		return
	}
	prev := h.exemplars[i].Swap(&exemplar{trace: id, value: v, at: time.Now()})
	if tr := h.tracer.Load(); tr != nil {
		tr.Pin(id)
		if prev != nil {
			tr.Unpin(prev.trace)
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// RetainExemplars ties the histogram's exemplars to t: every trace
// referenced by a bucket exemplar is pinned against t's span-ring
// eviction until displaced, so following an exemplar from /metrics to
// /debug/traces never comes back empty.
func (h *Histogram) RetainExemplars(t *Tracer) {
	if h != nil {
		h.tracer.Store(t)
	}
}

// Exemplars returns the per-bucket exemplar trace ids (zero where no
// traced observation has landed); index len(bounds) is +Inf.
func (h *Histogram) Exemplars() []TraceID {
	if h == nil {
		return nil
	}
	out := make([]TraceID, len(h.exemplars))
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out[i] = e.trace
		}
	}
	return out
}

// CountUnder returns the number of observations at or below bound,
// read off the cumulative bucket counts (bound rounds up to the next
// bucket boundary). SLO monitors diff this against Count to get the
// bad-event rate without retaining per-request state.
func (h *Histogram) CountUnder(bound float64) uint64 {
	if h == nil {
		return 0
	}
	i := sort.SearchFloat64s(h.bounds, bound)
	var cum uint64
	for j := 0; j <= i && j < len(h.counts); j++ {
		cum += h.counts[j].Load()
	}
	return cum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0..1) from the bucket counts with
// linear interpolation inside the containing bucket. The estimate for
// samples in the +Inf bucket is the highest finite bound. It returns 0
// with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: the best available answer is the last bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*((rank-cum)/n)
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// series is one (label values → instrument) entry of a family.
type series struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	// fn backs func instruments; atomic so re-registration (which
	// replaces the closure) cannot race a concurrent scrape.
	fn atomic.Pointer[func() float64]
}

// family is one named metric with a fixed type and label-key set.
type family struct {
	name      string
	help      string
	typ       string // "counter", "gauge", "histogram"
	labelKeys []string
	buckets   []float64
	isFunc    bool

	mu     sync.Mutex
	series map[string]*series
}

func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelKeys), len(vals)))
	}
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labelVals: append([]string(nil), vals...)}
		switch f.typ {
		case "counter":
			s.counter = &Counter{}
		case "gauge":
			s.gauge = &Gauge{}
		case "histogram":
			s.hist = newHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// Registry holds a process's (or one daemon instance's) instruments.
// Registration is idempotent: asking for an existing name returns the
// already-registered instrument, so independently constructed layers
// can share a registry without coordination. Re-registering a name as a
// different type panics — that is a programming error, not a runtime
// condition.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// lookup returns the family for name, creating it with the given shape,
// and panics on a type or label mismatch with an existing family.
func (r *Registry) lookup(name, help, typ string, isFunc bool, buckets []float64, labelKeys []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{
			name:      name,
			help:      help,
			typ:       typ,
			isFunc:    isFunc,
			labelKeys: append([]string(nil), labelKeys...),
			buckets:   buckets,
			series:    make(map[string]*series),
		}
		r.fams[name] = f
		return f
	}
	if f.typ != typ || f.isFunc != isFunc || len(f.labelKeys) != len(labelKeys) {
		panic(fmt.Sprintf("obs: metric %s re-registered as a different type", name))
	}
	for i, k := range labelKeys {
		if f.labelKeys[i] != k {
			panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
		}
	}
	return f
}

// Counter returns the (unlabeled) counter registered under name,
// creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, "counter", false, nil, nil).get(nil).counter
}

// Gauge returns the (unlabeled) gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, "gauge", false, nil, nil).get(nil).gauge
}

// Histogram returns the histogram registered under name; buckets are
// upper bounds (nil means DefBuckets). The bucket layout is fixed by
// the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(name, help, "histogram", false, buckets, nil).get(nil).hist
}

// CounterFunc registers a counter whose value is computed at scrape
// time — the bridge for counters that already live elsewhere (queue
// drops, supervisor restarts). Re-registration replaces the function,
// so a restarted daemon instance does not serve a stale closure.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.lookup(name, help, "counter", true, nil, nil).get(nil).fn.Store(&fn)
}

// GaugeFunc registers a gauge computed at scrape time (queue depth,
// health state, dirty replicas). Re-registration replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookup(name, help, "gauge", true, nil, nil).get(nil).fn.Store(&fn)
}

// CounterFuncVec is a labeled family of scrape-time counters: each
// label set owns a value function (per-stage restart counts read off
// the supervisor at scrape time).
type CounterFuncVec struct{ f *family }

// CounterFuncVec returns the labeled func-counter family registered
// under name.
func (r *Registry) CounterFuncVec(name, help string, labelKeys ...string) *CounterFuncVec {
	return &CounterFuncVec{f: r.lookup(name, help, "counter", true, nil, labelKeys)}
}

// Register binds fn as the value of the series with the given label
// values, replacing any previous function.
func (v *CounterFuncVec) Register(fn func() float64, labelVals ...string) {
	v.f.get(labelVals).fn.Store(&fn)
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family registered under name
// with the given label keys.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, "counter", false, nil, labelKeys)}
}

// With returns the counter for the given label values (one per key, in
// key order), creating it on first use.
func (v *CounterVec) With(labelVals ...string) *Counter {
	return v.f.get(labelVals).counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family registered under name.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, "gauge", false, nil, labelKeys)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	return v.f.get(labelVals).gauge
}

// GaugeFuncVec is a labeled family of scrape-time gauges: each label
// set owns a value function (per-window SLO burn rates read off the
// monitor at scrape time).
type GaugeFuncVec struct{ f *family }

// GaugeFuncVec returns the labeled func-gauge family registered under
// name.
func (r *Registry) GaugeFuncVec(name, help string, labelKeys ...string) *GaugeFuncVec {
	return &GaugeFuncVec{f: r.lookup(name, help, "gauge", true, nil, labelKeys)}
}

// Register binds fn as the value of the series with the given label
// values, replacing any previous function.
func (v *GaugeFuncVec) Register(fn func() float64, labelVals ...string) {
	v.f.get(labelVals).fn.Store(&fn)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family registered under
// name; buckets are upper bounds (nil means DefBuckets), fixed by the
// first registration.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.lookup(name, help, "histogram", false, buckets, labelKeys)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	return v.f.get(labelVals).hist
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// labelString renders {k="v",...} for the series, with extra appended
// (used for histogram le bounds). Empty when there are no labels.
func labelString(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(vals[i]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value: integral values without exponent
// noise, +Inf as the literal the format requires.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// by label values, so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sers := make([]*series, 0, len(keys))
		for _, k := range keys {
			sers = append(sers, f.series[k])
		}
		f.mu.Unlock()
		if len(sers) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range sers {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	ls := labelString(f.labelKeys, s.labelVals, "", "")
	switch {
	case s.hist != nil:
		// Bucket lines append the OpenMetrics exemplar suffix
		// (`# {trace_id=...} value`) when a traced observation landed in
		// that bucket; scrapers of the classic 0.0.4 format that balk at
		// it get the same series via ParseProm-style suffix stripping.
		exm := func(i int) string {
			e := s.hist.exemplars[i].Load()
			if e == nil {
				return ""
			}
			return fmt.Sprintf(" # {trace_id=\"%s\"} %s", e.trace, formatFloat(e.value))
		}
		var cum uint64
		for i, bound := range s.hist.bounds {
			cum += s.hist.counts[i].Load()
			bl := labelString(f.labelKeys, s.labelVals, "le", formatFloat(bound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, bl, cum, exm(i)); err != nil {
				return err
			}
		}
		cum += s.hist.counts[len(s.hist.bounds)].Load()
		bl := labelString(f.labelKeys, s.labelVals, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, bl, cum, exm(len(s.hist.bounds))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, ls, formatFloat(s.hist.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, ls, s.hist.Count())
		return err
	case f.isFunc:
		var v float64
		if fn := s.fn.Load(); fn != nil {
			v = (*fn)()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, ls, formatFloat(v))
		return err
	case s.counter != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, s.counter.Value())
		return err
	case s.gauge != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ls, s.gauge.Value())
		return err
	}
	return nil
}

// Handler returns the /metrics HTTP handler for the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
